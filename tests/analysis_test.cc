// Tests for the analysis toolkit (PCA, k-means, t-SNE): each method must
// recover planted cluster structure.

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/kmeans.h"
#include "analysis/pca.h"
#include "analysis/tsne.h"
#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace analysis {
namespace {

/// Two well-separated Gaussian blobs in d dimensions; rows 0..half-1 are
/// blob 0.
Tensor TwoBlobs(int64_t n, int64_t d, float separation, Rng& rng) {
  Tensor x(Shape{n, d});
  for (int64_t i = 0; i < n; ++i) {
    const float centre = i < n / 2 ? 0.0f : separation;
    for (int64_t j = 0; j < d; ++j) {
      x({i, j}) = centre + rng.Normal(0.0f, 0.5f);
    }
  }
  return x;
}

std::vector<int> BlobLabels(int64_t n) {
  std::vector<int> labels(n);
  for (int64_t i = 0; i < n; ++i) labels[i] = i < n / 2 ? 0 : 1;
  return labels;
}

// --- PCA ------------------------------------------------------------------

TEST(PcaTest, ProjectsOntoMaxVarianceDirection) {
  // Points along the diagonal y = x with tiny noise: PC1 scores must have
  // far more variance than PC2 scores.
  Rng rng(1);
  Tensor x(Shape{50, 2});
  for (int64_t i = 0; i < 50; ++i) {
    const float t = static_cast<float>(i) - 25.0f;
    x({i, 0}) = t + rng.Normal(0.0f, 0.05f);
    x({i, 1}) = t + rng.Normal(0.0f, 0.05f);
  }
  Tensor proj = Pca(x, 2);
  ASSERT_EQ(proj.shape(), (Shape{50, 2}));
  double var1 = 0.0;
  double var2 = 0.0;
  for (int64_t i = 0; i < 50; ++i) {
    var1 += static_cast<double>(proj({i, 0})) * proj({i, 0});
    var2 += static_cast<double>(proj({i, 1})) * proj({i, 1});
  }
  EXPECT_GT(var1, 100.0 * var2);
}

TEST(PcaTest, SeparatesBlobsInOneComponent) {
  Rng rng(2);
  Tensor x = TwoBlobs(40, 8, 10.0f, rng);
  Tensor proj = Pca(x, 1);
  // Blob means must be far apart on PC1.
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (int64_t i = 0; i < 20; ++i) mean_a += proj({i, 0});
  for (int64_t i = 20; i < 40; ++i) mean_b += proj({i, 0});
  EXPECT_GT(std::fabs(mean_a - mean_b) / 20.0, 5.0);
}

TEST(PcaTest, BadComponentCountThrows) {
  Tensor x = Tensor::Zeros({5, 3});
  EXPECT_THROW(Pca(x, 4), Error);
  EXPECT_THROW(Pca(x, 0), Error);
}

// --- KMeans ---------------------------------------------------------------

TEST(KMeansTest, RecoversPlantedBlobs) {
  Rng rng(3);
  Tensor x = TwoBlobs(60, 4, 8.0f, rng);
  KMeansResult result = KMeans(x, 2, rng);
  const double purity = ClusterPurity(result.assignment, BlobLabels(60));
  EXPECT_GT(purity, 0.95);
  EXPECT_GT(result.inertia, 0.0);
}

TEST(KMeansTest, SingleClusterGetsEveryPoint) {
  Rng rng(4);
  Tensor x = TwoBlobs(10, 2, 3.0f, rng);
  KMeansResult result = KMeans(x, 1, rng);
  for (int a : result.assignment) EXPECT_EQ(a, 0);
}

TEST(KMeansTest, KLargerThanNThrows) {
  Rng rng(5);
  Tensor x = Tensor::Zeros({3, 2});
  EXPECT_THROW(KMeans(x, 4, rng), Error);
}

TEST(PurityTest, PerfectAndWorstCase) {
  EXPECT_EQ(ClusterPurity({0, 0, 1, 1}, {5, 5, 7, 7}), 1.0);
  // Clusters that mix labels half-half give purity 0.5.
  EXPECT_EQ(ClusterPurity({0, 0, 0, 0}, {1, 1, 2, 2}), 0.5);
}

TEST(SilhouetteTest, SeparatedBlobsScoreHigh) {
  Rng rng(6);
  Tensor x = TwoBlobs(30, 3, 10.0f, rng);
  const double good = Silhouette(x, BlobLabels(30));
  EXPECT_GT(good, 0.7);
  // Random assignment scores much worse.
  std::vector<int> random_assign(30);
  for (int i = 0; i < 30; ++i) random_assign[i] = i % 2;
  const double bad = Silhouette(x, random_assign);
  EXPECT_LT(bad, good - 0.3);
}

// --- t-SNE -----------------------------------------------------------------

TEST(TsneTest, OutputShape) {
  Rng rng(7);
  Tensor x = TwoBlobs(20, 6, 5.0f, rng);
  TsneOptions opt;
  opt.perplexity = 5.0;
  opt.iterations = 150;
  Tensor y = Tsne(x, opt);
  EXPECT_EQ(y.shape(), (Shape{20, 2}));
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_FALSE(std::isnan(y.at(i)));
  }
}

TEST(TsneTest, PreservesPlantedClusters) {
  Rng rng(8);
  const int64_t n = 40;
  Tensor x = TwoBlobs(n, 10, 12.0f, rng);
  TsneOptions opt;
  opt.perplexity = 8.0;
  opt.iterations = 400;
  opt.seed = 9;
  Tensor y = Tsne(x, opt);
  // The embedding must keep the two blobs separable: k-means purity high.
  Rng km_rng(10);
  KMeansResult clusters = KMeans(y, 2, km_rng);
  EXPECT_GT(ClusterPurity(clusters.assignment, BlobLabels(n)), 0.9);
  EXPECT_GT(Silhouette(y, BlobLabels(n)), 0.3);
}

TEST(TsneTest, DeterministicFromSeed) {
  Rng rng(11);
  Tensor x = TwoBlobs(15, 4, 6.0f, rng);
  TsneOptions opt;
  opt.perplexity = 4.0;
  opt.iterations = 100;
  Tensor a = Tsne(x, opt);
  Tensor b = Tsne(x, opt);
  EXPECT_TRUE(ops::AllClose(a, b, 0.0f, 0.0f));
}

TEST(TsneTest, PerplexityMustBeBelowN) {
  Tensor x = Tensor::Zeros({5, 2});
  TsneOptions opt;
  opt.perplexity = 10.0;
  EXPECT_THROW(Tsne(x, opt), Error);
}

}  // namespace
}  // namespace analysis
}  // namespace stwa
