// Tests for incremental streaming inference: the time-slice plan
// analysis (ir/time_slice.h), the per-stream activation cache
// (serve/stream_cache.h), the InferenceSession::ForecastStream paths,
// server/fleet wiring, and invalidation on hot reload and online
// publish. The load-bearing property throughout is byte identity: the
// incremental path must serve exactly the bytes the cold path would.

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/no_grad.h"
#include "baselines/registry.h"
#include "data/scaler.h"
#include "data/traffic_generator.h"
#include "fleet/profile.h"
#include "ir/plan.h"
#include "ir/time_slice.h"
#include "online/adaptation.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "serve/server.h"
#include "serve/stream_cache.h"
#include "tensor/ops.h"

namespace stwa {
namespace serve {
namespace {

std::string TempPath(const std::string& name) { return "/tmp/" + name; }

struct Fixture {
  data::TrafficDataset dataset;
  baselines::ModelSettings settings;
  std::unique_ptr<train::ForecastModel> model;
  ServingInfo info;
  std::string path;
};

Fixture MakeFixture(const std::string& file, const std::string& model_name,
                    uint64_t weight_seed = 3) {
  Fixture f;
  data::GeneratorOptions gen;
  gen.num_roads = 2;
  gen.sensors_per_road = 2;
  gen.num_days = 2;
  gen.steps_per_day = 96;
  gen.seed = 11;
  f.dataset = data::GenerateTraffic(gen);
  f.settings.history = 12;
  f.settings.horizon = 4;
  f.settings.d_model = 8;
  f.settings.window_sizes = {3, 2, 2};
  f.settings.latent_dim = 4;
  f.settings.predictor_hidden = 16;
  f.settings.seed = weight_seed;
  f.model = baselines::MakeModel(model_name, f.dataset, f.settings);
  f.info.model = model_name;
  f.info.settings = f.settings;
  f.info.num_sensors = f.dataset.num_sensors();
  f.info.num_features = f.dataset.num_features();
  f.info.scaler_mean = 200.0f;
  f.info.scaler_std = 55.0f;
  f.info.ckpt_version = 1;
  f.path = TempPath(file);
  SaveServingCheckpoint(*f.model, f.info, f.path);
  return f;
}

bool SameBytes(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

// ---------------------------------------------------------------------------
// Time-slice plan analysis

std::unique_ptr<ir::ExecutionPlan> CapturePlan(const Fixture& f,
                                               Tensor* norm_out) {
  data::StandardScaler scaler(f.info.scaler_mean, f.info.scaler_std);
  Tensor w = ops::Slice(f.dataset.values, 1, 20, f.settings.history);
  Tensor norm = scaler.Transform(
      w.Reshape({1, w.dim(0), w.dim(1), w.dim(2)}));
  ag::NoGradMode no_grad;
  ir::GraphCapture capture(ir::SnapshotPlanModes());
  ag::Var pred = f.model->Forward(norm, /*training=*/false);
  *norm_out = norm;
  return capture.Finish(pred, {norm}, /*with_backward=*/false);
}

TEST(TimeSliceAnalysisTest, ClassifiesQuickstartPlans) {
  for (const std::string name : {"ST-WA", "S-WA"}) {
    Fixture f = MakeFixture("stwa_sc_analysis.bin", name);
    Tensor norm;
    auto plan = CapturePlan(f, &norm);
    ASSERT_NE(plan, nullptr) << name;
    ir::TimeSliceInfo info =
        ir::AnalyzeTimeSlice(*plan, /*feed_index=*/0, /*time_axis=*/2);
    EXPECT_TRUE(info.feasible) << name;
    EXPECT_FALSE(info.has_rng) << name;
    EXPECT_EQ(info.window, f.settings.history) << name;
    // Model parameters are window-invariant, so param-only chains must
    // classify invariant, and the feed embedding chain sliced.
    EXPECT_GT(info.invariant_count, 0) << name;
    EXPECT_GT(info.sliced_count, 0) << name;
    EXPECT_FALSE(info.frontier_steps.empty()) << name;
    const size_t steps = plan->forward_steps().size();
    EXPECT_EQ(info.invariant_count + info.sliced_count + info.global_count,
              static_cast<int64_t>(steps))
        << name;
    // Masks mirror the classification: global_mask runs only globals,
    // non_invariant_mask runs globals + sliced.
    int64_t global_on = 0, non_inv_on = 0;
    for (size_t i = 0; i < steps; ++i) {
      global_on += info.global_mask[i];
      non_inv_on += info.non_invariant_mask[i];
    }
    EXPECT_EQ(global_on, info.global_count) << name;
    EXPECT_EQ(non_inv_on, info.global_count + info.sliced_count) << name;
    std::remove(f.path.c_str());
  }
}

TEST(TimeSliceAnalysisTest, SlicedStepsSatisfyShiftProperty) {
  // Capture the same model over two windows one step apart: for every
  // step classified sliced, columns 0..H-2 of the later capture must be
  // byte-identical to columns 1..H-1 of the earlier one. This is the
  // physical property the shift path's splice relies on.
  Fixture f = MakeFixture("stwa_sc_shiftprop.bin", "ST-WA");
  data::StandardScaler scaler(f.info.scaler_mean, f.info.scaler_std);
  auto capture_at = [&](int64_t t) {
    Tensor w = ops::Slice(f.dataset.values, 1, t, f.settings.history);
    Tensor norm = scaler.Transform(
        w.Reshape({1, w.dim(0), w.dim(1), w.dim(2)}));
    ag::NoGradMode no_grad;
    ir::GraphCapture capture(ir::SnapshotPlanModes());
    ag::Var pred = f.model->Forward(norm, false);
    return capture.Finish(pred, {norm}, false);
  };
  auto plan1 = capture_at(20);
  auto plan2 = capture_at(21);
  ASSERT_NE(plan1, nullptr);
  ASSERT_NE(plan2, nullptr);
  ir::TimeSliceInfo info = ir::AnalyzeTimeSlice(*plan1, 0, 2);
  ASSERT_TRUE(info.feasible);
  const auto& s1 = plan1->forward_steps();
  const auto& s2 = plan2->forward_steps();
  ASSERT_EQ(s1.size(), s2.size());
  int checked = 0;
  for (size_t i = 0; i < s1.size(); ++i) {
    if (info.step_class[i] != ir::TimeClass::kSliced) continue;
    const int64_t a = info.step_axis[i];
    ASSERT_EQ(s1[i]->value.shape(), s2[i]->value.shape());
    Tensor head2 = ops::Slice(s2[i]->value, a, 0, info.window - 1);
    Tensor tail1 = ops::Slice(s1[i]->value, a, 1, info.window - 1);
    EXPECT_TRUE(SameBytes(head2, tail1)) << "sliced step " << i;
    ++checked;
  }
  EXPECT_GT(checked, 0);
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// StreamCache bookkeeping

StreamCache::Entry MakeEntry(int64_t anchor, uint64_t generation,
                             simd::Precision precision) {
  StreamCache::Entry e;
  e.anchor = anchor;
  e.generation = generation;
  e.precision = precision;
  e.window = Tensor::Zeros({1, 2, 3, 1});
  e.output = Tensor::Zeros({2, 2, 1});
  e.segments.push_back(Tensor::Zeros({1, 2, 3}));
  return e;
}

TEST(StreamCacheTest, LookupMatchesTagsAndCountsStale) {
  StreamCache cache(/*generation=*/1);
  cache.Update(7, MakeEntry(5, 1, simd::Precision::kFp32));
  StreamCache::Entry got;
  EXPECT_TRUE(cache.Lookup(7, 1, simd::Precision::kFp32, &got));
  EXPECT_EQ(got.anchor, 5);
  // Unknown stream: plain miss, not stale.
  EXPECT_FALSE(cache.Lookup(8, 1, simd::Precision::kFp32, &got));
  // Generation mismatch: stale, entry stays for old-generation drains.
  EXPECT_FALSE(cache.Lookup(7, 2, simd::Precision::kFp32, &got));
  // Precision mismatch: stale as well.
  EXPECT_FALSE(cache.Lookup(7, 1, simd::Precision::kBf16, &got));
  EXPECT_TRUE(cache.Lookup(7, 1, simd::Precision::kFp32, &got));
  const StreamCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_rejected, 2);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
}

TEST(StreamCacheTest, InvalidateFlushesAndRetags) {
  StreamCache cache(1);
  cache.Update(1, MakeEntry(5, 1, simd::Precision::kFp32));
  cache.Update(2, MakeEntry(9, 1, simd::Precision::kFp32));
  EXPECT_EQ(cache.Stats().entries, 2);
  cache.Invalidate(2);
  EXPECT_EQ(cache.generation(), 2u);
  const StreamCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(stats.flushes, 1);
  StreamCache::Entry got;
  EXPECT_FALSE(cache.Lookup(1, 2, simd::Precision::kFp32, &got));
}

// ---------------------------------------------------------------------------
// ForecastStream byte identity

TEST(ForecastStreamTest, ShiftPathMatchesColdForecastBitExactly) {
  for (const std::string name : {"ST-WA", "S-WA"}) {
    Fixture f = MakeFixture("stwa_sc_shift.bin", name);
    auto session = InferenceSession::Open(f.path);
    auto reference = InferenceSession::Open(f.path);
    StreamCache cache(1);
    const int64_t h = f.settings.history;
    for (int64_t t = 0; t < 20; ++t) {
      Tensor w = ops::Slice(f.dataset.values, 1, t, h);
      Tensor got = session->ForecastStream(w, /*stream_id=*/0,
                                           /*anchor=*/t + h - 1, &cache, 1);
      Tensor want = reference->Forecast(w);
      ASSERT_TRUE(SameBytes(got, want)) << name << " t=" << t;
    }
    const StreamCacheStats stats = cache.Stats();
    EXPECT_GT(stats.shift_hits, 0) << name;
    EXPECT_EQ(stats.stale_rejected, 0) << name;
    std::remove(f.path.c_str());
  }
}

TEST(ForecastStreamTest, ShiftAnswerMatchesHandRecomputedReference) {
  // The strictest form of the shift check: a dedicated session serves
  // windows [t, t+1] through the stream path while a fresh session
  // recomputes window t+1 from scratch — the shift-hit answer must be
  // bitwise the cold answer, not merely close.
  Fixture f = MakeFixture("stwa_sc_handref.bin", "ST-WA");
  auto session = InferenceSession::Open(f.path);
  StreamCache cache(1);
  const int64_t h = f.settings.history;
  Tensor w0 = ops::Slice(f.dataset.values, 1, 30, h);
  Tensor w1 = ops::Slice(f.dataset.values, 1, 31, h);
  session->ForecastStream(w0, 0, h - 1, &cache, 1);
  Tensor shifted = session->ForecastStream(w1, 0, h, &cache, 1);
  EXPECT_GT(cache.Stats().shift_hits, 0);
  Tensor cold = InferenceSession::Open(f.path)->Forecast(w1);
  EXPECT_TRUE(SameBytes(shifted, cold));
  std::remove(f.path.c_str());
}

TEST(ForecastStreamTest, InterleavedStreamsStayByteExact) {
  // Regression: harvested frontier segments used to alias the plan's
  // feed buffer, which BindFeeds rewrites in place — interleaving a
  // second stream between one stream's harvest and its next shift served
  // the wrong bytes. Three round-robin streams through one session must
  // all stay bit-identical to the cold path.
  Fixture f = MakeFixture("stwa_sc_interleave.bin", "ST-WA");
  auto session = InferenceSession::Open(f.path);
  auto reference = InferenceSession::Open(f.path);
  StreamCache cache(1);
  const int64_t h = f.settings.history;
  for (int64_t t = 0; t < 12; ++t) {
    for (int64_t s = 0; s < 3; ++s) {
      Tensor w = ops::Slice(f.dataset.values, 1, t + s * 29, h);
      Tensor got = session->ForecastStream(w, s, t + h - 1, &cache, 1);
      Tensor want = reference->Forecast(w);
      ASSERT_TRUE(SameBytes(got, want)) << "t=" << t << " s=" << s;
    }
  }
  EXPECT_GT(cache.Stats().shift_hits, 0);
  std::remove(f.path.c_str());
}

TEST(ForecastStreamTest, OutputHitServesRepeatWithoutRecompute) {
  Fixture f = MakeFixture("stwa_sc_outputhit.bin", "ST-WA");
  auto session = InferenceSession::Open(f.path);
  StreamCache cache(1);
  const int64_t h = f.settings.history;
  Tensor w = ops::Slice(f.dataset.values, 1, 10, h);
  Tensor first = session->ForecastStream(w, 0, h - 1, &cache, 1);
  const int64_t before = session->forward_count();
  Tensor repeat = session->ForecastStream(w, 0, h - 1, &cache, 1);
  EXPECT_EQ(session->forward_count(), before);  // no model work
  EXPECT_TRUE(SameBytes(first, repeat));
  EXPECT_EQ(cache.Stats().output_hits, 1);
  std::remove(f.path.c_str());
}

TEST(ForecastStreamTest, RewoundWindowDegradesToMissNotWrongAnswer) {
  // Anchor says "one ahead" but the bytes do not overlap: the memcmp
  // gate must reject the shift and recompute.
  Fixture f = MakeFixture("stwa_sc_rewind.bin", "ST-WA");
  auto session = InferenceSession::Open(f.path);
  auto reference = InferenceSession::Open(f.path);
  StreamCache cache(1);
  const int64_t h = f.settings.history;
  session->ForecastStream(ops::Slice(f.dataset.values, 1, 10, h), 0, h - 1,
                          &cache, 1);
  session->ForecastStream(ops::Slice(f.dataset.values, 1, 11, h), 0, h,
                          &cache, 1);
  // Claimed anchor h+1, but the window jumps 40 steps: overlap fails.
  Tensor jump = ops::Slice(f.dataset.values, 1, 52, h);
  Tensor got = session->ForecastStream(jump, 0, h + 1, &cache, 1);
  EXPECT_TRUE(SameBytes(got, reference->Forecast(jump)));
  EXPECT_GE(cache.Stats().misses, 2);  // first contact + the jump
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// Server wiring: cache on/off bit identity across threads, batching and
// precision tiers

// Pins the global stream-cache gate for one test and restores the
// pre-test value even when an assertion bails out early — cache-behavior
// tests stay meaningful under the CI STWA_NO_STREAM_CACHE=1 leg, and the
// gate test cannot leak its override into later tests.
struct CacheModeGuard {
  explicit CacheModeGuard(bool enabled) : saved(StreamCacheEnabled()) {
    SetStreamCacheMode(enabled);
  }
  ~CacheModeGuard() { SetStreamCacheMode(saved); }
  bool saved;
};

TEST(ServerStreamCacheTest, OnOffBitIdentityAcrossWorkersBatchingTiers) {
  CacheModeGuard guard(true);
  Fixture f = MakeFixture("stwa_sc_server.bin", "ST-WA");
  const int64_t h = f.settings.history;
  const int64_t streams = 3;
  const int64_t steps = 10;
  for (const simd::Precision tier :
       {simd::Precision::kFp32, simd::Precision::kBf16,
        simd::Precision::kInt8}) {
    // Reference bytes for this tier from a plain offline session.
    SessionConfig ref_cfg;
    ref_cfg.precision = tier;
    auto reference = InferenceSession::Open(f.path, ref_cfg);
    for (const int workers : {1, 4}) {
      for (const int64_t max_batch : {int64_t{1}, int64_t{8}}) {
        for (const bool cache_on : {false, true}) {
          ServerOptions opts;
          opts.workers = workers;
          opts.batching.max_batch = max_batch;
          opts.session.precision = tier;
          opts.stream_cache = cache_on;
          opts.default_deadline = std::chrono::seconds(120);
          Server server(f.path, opts);
          for (int64_t t = 0; t < steps; ++t) {
            std::vector<std::future<Response>> futures;
            std::vector<Tensor> windows;
            for (int64_t s = 0; s < streams; ++s) {
              windows.push_back(
                  ops::Slice(f.dataset.values, 1, t + s * 29, h));
              futures.push_back(
                  server.Submit(windows.back(), s, t + h - 1));
            }
            for (int64_t s = 0; s < streams; ++s) {
              Response resp = futures[static_cast<size_t>(s)].get();
              ASSERT_TRUE(resp.ok);
              Tensor want =
                  reference->Forecast(windows[static_cast<size_t>(s)]);
              ASSERT_TRUE(SameBytes(resp.forecast, want))
                  << "tier=" << static_cast<int>(tier)
                  << " workers=" << workers << " batch=" << max_batch
                  << " cache=" << cache_on << " t=" << t << " s=" << s;
            }
          }
          const ServerStats stats = server.Stats();
          if (!cache_on) {
            EXPECT_EQ(stats.stream_cache.output_hits +
                          stats.stream_cache.shift_hits,
                      0);
          }
          EXPECT_EQ(stats.stream_cache.stale_rejected, 0);
        }
      }
    }
  }
  std::remove(f.path.c_str());
}

TEST(ServerStreamCacheTest, SingletonStreamSubmitsHitTheCache) {
  CacheModeGuard guard(true);
  Fixture f = MakeFixture("stwa_sc_hits.bin", "ST-WA");
  const int64_t h = f.settings.history;
  ServerOptions opts;
  opts.workers = 1;
  opts.batching.max_batch = 1;
  opts.default_deadline = std::chrono::seconds(120);
  Server server(f.path, opts);
  for (int64_t t = 0; t < 8; ++t) {
    Tensor w = ops::Slice(f.dataset.values, 1, t, h);
    ASSERT_TRUE(server.Submit(w, /*stream_id=*/0, t + h - 1).get().ok);
  }
  const ServerStats stats = server.Stats();
  EXPECT_GT(stats.stream_cache.shift_hits, 0);
  EXPECT_EQ(stats.stream_cache.stale_rejected, 0);
}

TEST(ServerStreamCacheTest, DisabledModeRunsCacheFree) {
  Fixture f = MakeFixture("stwa_sc_gate.bin", "ST-WA");
  CacheModeGuard guard(false);
  ASSERT_FALSE(StreamCacheEnabled());
  {
    ServerOptions opts;
    opts.default_deadline = std::chrono::seconds(120);
    Server server(f.path, opts);  // stream_cache=true, but the gate wins
    EXPECT_EQ(server.stream_cache(), nullptr);
    Tensor w = ops::Slice(f.dataset.values, 1, 3, f.settings.history);
    Response resp = server.Submit(w, /*stream_id=*/0,
                                  f.settings.history - 1).get();
    ASSERT_TRUE(resp.ok);
    EXPECT_TRUE(
        SameBytes(resp.forecast, InferenceSession::Open(f.path)->Forecast(w)));
    const ServerStats stats = server.Stats();
    EXPECT_EQ(stats.stream_cache.output_hits + stats.stream_cache.shift_hits +
                  stats.stream_cache.misses,
              0);
  }
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// Invalidation: hot reload and online publish

TEST(StreamCacheInvalidationTest, ReloadWithNewWeightsNeverServesStale) {
  CacheModeGuard guard(true);
  Fixture f = MakeFixture("stwa_sc_reload.bin", "ST-WA", /*weight_seed=*/3);
  fleet::FleetProfileConfig cfg;
  cfg.name = "city";
  cfg.checkpoint = f.path;
  cfg.tiles = 2;
  cfg.shards = 1;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.deadline_us = 120'000'000;
  fleet::ModelProfile profile(cfg);
  ASSERT_NE(profile.stream_cache(), nullptr);

  const int64_t n = f.dataset.num_sensors();
  const int64_t f_dim = f.dataset.num_features();
  const int64_t steps = f.dataset.num_steps();
  std::vector<float> row(static_cast<size_t>(n * f_dim));
  auto push_step = [&](int64_t tile, int64_t at) {
    const float* v = f.dataset.values.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < f_dim; ++j) {
        row[static_cast<size_t>(i * f_dim + j)] =
            v[i * steps * f_dim + at * f_dim + j];
      }
    }
    profile.PushTile(tile, row);
  };
  for (int64_t s = 0; s < f.settings.history; ++s) push_step(0, s);

  // Warm the cache on generation 1 and verify bytes against the old
  // weights.
  auto old_session = InferenceSession::Open(f.path);
  Tensor w0 = ops::Slice(f.dataset.values, 1, 0, f.settings.history);
  for (int i = 0; i < 3; ++i) {
    Response resp = profile.ForecastTile(0).get();
    ASSERT_TRUE(resp.ok);
    EXPECT_TRUE(SameBytes(resp.forecast, old_session->Forecast(w0)));
  }
  EXPECT_GT(profile.Stats().stream_cache.output_hits, 0);

  // New weights, same geometry, at a new path; reload must flush.
  Fixture g = MakeFixture("stwa_sc_reload_v2.bin", "ST-WA",
                          /*weight_seed=*/17);
  fleet::ReloadResult reload = profile.Reload(g.path);
  EXPECT_EQ(reload.version, 2);
  EXPECT_GE(profile.Stats().stream_cache.flushes, 1);

  // Same tile, same window: the cached generation-1 output would be a
  // stale read — the served bytes must come from the new weights.
  auto new_session = InferenceSession::Open(g.path);
  Tensor old_answer = old_session->Forecast(w0);
  Tensor new_answer = new_session->Forecast(w0);
  ASSERT_FALSE(SameBytes(old_answer, new_answer));  // weights did change
  for (int i = 0; i < 2; ++i) {
    Response resp = profile.ForecastTile(0).get();
    ASSERT_TRUE(resp.ok);
    EXPECT_TRUE(SameBytes(resp.forecast, new_answer));
  }
  std::remove(f.path.c_str());
  std::remove(g.path.c_str());
}

TEST(StreamCacheInvalidationTest, OnlinePublishRideReloadAndFlushes) {
  CacheModeGuard guard(true);
  Fixture f = MakeFixture("stwa_sc_publish.bin", "ST-WA");
  fleet::FleetProfileConfig cfg;
  cfg.name = "city";
  cfg.checkpoint = f.path;
  cfg.tiles = 1;
  cfg.shards = 1;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.deadline_us = 120'000'000;
  fleet::ModelProfile profile(cfg);
  ASSERT_NE(profile.stream_cache(), nullptr);

  const int64_t n = f.dataset.num_sensors();
  const int64_t f_dim = f.dataset.num_features();
  const int64_t steps = f.dataset.num_steps();
  std::vector<float> row(static_cast<size_t>(n * f_dim));
  for (int64_t s = 0; s < f.settings.history; ++s) {
    const float* v = f.dataset.values.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < f_dim; ++j) {
        row[static_cast<size_t>(i * f_dim + j)] =
            v[i * steps * f_dim + s * f_dim + j];
      }
    }
    profile.PushTile(0, row);
  }
  ASSERT_TRUE(profile.ForecastTile(0).get().ok);
  ASSERT_TRUE(profile.ForecastTile(0).get().ok);
  EXPECT_GT(profile.Stats().stream_cache.output_hits, 0);
  const int64_t flushes_before = profile.Stats().stream_cache.flushes;

  // Zero-delta publish through the learner, then the documented reload.
  online::OnlineConfig ocfg;
  ocfg.publish_path = TempPath("stwa_sc_publish_v2.bin");
  online::OnlineLearner learner(f.path, ocfg);
  learner.Publish();
  fleet::ReloadResult reload = profile.Reload(learner.publish_path());
  EXPECT_EQ(reload.version, 2);
  EXPECT_EQ(profile.Stats().stream_cache.flushes, flushes_before + 1);
  EXPECT_EQ(profile.Stats().stream_cache.entries, 0);

  // Zero-delta weights: post-publish bytes equal the originals, served
  // from a fresh (generation-2) compute rather than a stale entry.
  Response resp = profile.ForecastTile(0).get();
  ASSERT_TRUE(resp.ok);
  Tensor w0 = ops::Slice(f.dataset.values, 1, 0, f.settings.history);
  EXPECT_TRUE(
      SameBytes(resp.forecast, InferenceSession::Open(f.path)->Forecast(w0)));
  EXPECT_EQ(profile.Stats().stream_cache.stale_rejected, 0);
  std::remove(f.path.c_str());
  std::remove(ocfg.publish_path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace stwa
