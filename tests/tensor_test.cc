// Unit and property tests for the dense tensor and its kernels.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace stwa {
namespace {

using ops::AllClose;

TEST(TensorBasics, DefaultConstructedIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

TEST(TensorBasics, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorBasics, FullFillsValue) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5f);
}

TEST(TensorBasics, InitializerListIsOneD) {
  Tensor t{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(t.shape(), (Shape{3}));
  EXPECT_EQ(t.at(1), 2.0f);
}

TEST(TensorBasics, MultiIndexAccessRowMajor) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ((t({0, 0})), 0.0f);
  EXPECT_EQ((t({0, 2})), 2.0f);
  EXPECT_EQ((t({1, 0})), 3.0f);
  EXPECT_EQ((t({1, 2})), 5.0f);
}

TEST(TensorBasics, OutOfRangeIndexThrows) {
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_THROW((t({2, 0})), Error);
  EXPECT_THROW(t.at(4), Error);
}

TEST(TensorBasics, ValueCountMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), Error);
}

TEST(TensorBasics, NegativeDimThrows) {
  EXPECT_THROW(Tensor(Shape{-1, 2}), Error);
}

TEST(TensorBasics, SharedBufferCopySemantics) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;
  b.at(0) = 7.0f;
  EXPECT_EQ(a.at(0), 7.0f) << "copies alias the same buffer";
  Tensor c = a.Clone();
  c.at(1) = 9.0f;
  EXPECT_EQ(a.at(1), 0.0f) << "Clone must deep copy";
}

TEST(TensorBasics, ReshapeSharesBuffer) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor b = a.Reshape({3, 2});
  EXPECT_EQ((b({2, 1})), 5.0f);
  b.at(0) = 42.0f;
  EXPECT_EQ(a.at(0), 42.0f);
  EXPECT_THROW(a.Reshape({4, 2}), Error);
}

TEST(TensorBasics, ItemRequiresSingleElement) {
  EXPECT_EQ(Tensor({1}, {3.5f}).item(), 3.5f);
  EXPECT_THROW(Tensor::Zeros({2}).item(), Error);
}

TEST(TensorBasics, ArangeAndEye) {
  Tensor r = Tensor::Arange(4, 1.0f, 0.5f);
  EXPECT_EQ(r.at(0), 1.0f);
  EXPECT_EQ(r.at(3), 2.5f);
  Tensor eye = Tensor::Eye(3);
  EXPECT_EQ((eye({1, 1})), 1.0f);
  EXPECT_EQ((eye({1, 2})), 0.0f);
}

TEST(TensorBasics, RandnIsDeterministicFromSeed) {
  Rng rng1(42);
  Rng rng2(42);
  Tensor a = Tensor::Randn({16}, rng1);
  Tensor b = Tensor::Randn({16}, rng2);
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
}

// --- Elementwise / broadcasting -------------------------------------------

TEST(TensorOps, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = ops::Add(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2}, {11, 22, 33, 44})));
}

TEST(TensorOps, BroadcastRowVector) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  Tensor c = ops::Add(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(TensorOps, BroadcastColumnVector) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({2, 1}, {100, 200});
  Tensor c = ops::Add(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 3}, {101, 102, 103, 204, 205, 206})));
}

TEST(TensorOps, BroadcastBothSides) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({1, 3}, {10, 20, 30});
  Tensor c = ops::Mul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 3}, {10, 20, 30, 20, 40, 60})));
}

TEST(TensorOps, BroadcastScalarTensor) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor s(Shape{}, 2.0f);
  Tensor c = ops::Mul(a, s);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2}, {2, 4, 6, 8})));
}

TEST(TensorOps, IncompatibleBroadcastThrows) {
  EXPECT_THROW(ops::Add(Tensor::Zeros({2, 3}), Tensor::Zeros({2, 4})),
               Error);
}

TEST(TensorOps, SubDivMaximum) {
  Tensor a({3}, {4, 9, -2});
  Tensor b({3}, {2, 3, 5});
  EXPECT_TRUE(AllClose(ops::Sub(a, b), Tensor({3}, {2, 6, -7})));
  EXPECT_TRUE(AllClose(ops::Div(a, b), Tensor({3}, {2, 3, -0.4f})));
  EXPECT_TRUE(AllClose(ops::Maximum(a, b), Tensor({3}, {4, 9, 5})));
  EXPECT_TRUE(AllClose(ops::Minimum(a, b), Tensor({3}, {2, 3, -2})));
}

TEST(TensorOps, UnaryFunctions) {
  Tensor a({3}, {0.0f, 1.0f, -1.0f});
  EXPECT_TRUE(AllClose(ops::Relu(a), Tensor({3}, {0, 1, 0})));
  EXPECT_TRUE(AllClose(ops::Neg(a), Tensor({3}, {0, -1, 1})));
  EXPECT_TRUE(AllClose(ops::Abs(a), Tensor({3}, {0, 1, 1})));
  EXPECT_TRUE(AllClose(ops::Square(a), Tensor({3}, {0, 1, 1})));
  EXPECT_NEAR(ops::Exp(a).at(1), std::exp(1.0f), 1e-5f);
  EXPECT_NEAR(ops::Sigmoid(a).at(0), 0.5f, 1e-6f);
  EXPECT_NEAR(ops::Tanh(a).at(2), std::tanh(-1.0f), 1e-6f);
}

// Randomised property sweep: broadcasting Add/Mul against a naive
// reference computed with explicit index arithmetic.
class BroadcastSweep : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastSweep, MatchesNaiveReference) {
  Rng rng(500 + GetParam());
  // Draw a random output shape of rank 1..4 with small extents, then
  // derive two input shapes by dropping leading axes / squashing random
  // axes to 1.
  const int64_t rank = 1 + rng.UniformInt(4);
  Shape out_shape(rank);
  for (int64_t d = 0; d < rank; ++d) out_shape[d] = 1 + rng.UniformInt(4);
  auto derive = [&]() {
    int64_t drop = rng.UniformInt(rank);
    Shape s(out_shape.begin() + drop, out_shape.end());
    for (auto& e : s) {
      if (rng.Uniform() < 0.3f) e = 1;
    }
    if (s.empty()) s.push_back(1);
    return s;
  };
  Shape sa = derive();
  Shape sb = derive();
  Tensor a = Tensor::Randn(sa, rng);
  Tensor b = Tensor::Randn(sb, rng);
  Shape result_shape = ops::BroadcastShapes(sa, sb);
  Tensor got = ops::Add(a, b);
  ASSERT_EQ(got.shape(), result_shape);

  // Naive reference: explicit coordinate mapping.
  auto fetch = [](const Tensor& t, const Shape& out,
                  const std::vector<int64_t>& coord) {
    const Shape& shape = t.shape();
    int64_t flat = 0;
    const int64_t offset = static_cast<int64_t>(out.size()) -
                           static_cast<int64_t>(shape.size());
    for (size_t d = 0; d < shape.size(); ++d) {
      const int64_t c = shape[d] == 1 ? 0 : coord[d + offset];
      flat = flat * shape[d] + c;
    }
    return t.at(flat);
  };
  const int64_t total = NumElements(result_shape);
  std::vector<int64_t> coord(result_shape.size(), 0);
  for (int64_t flat = 0; flat < total; ++flat) {
    int64_t rem = flat;
    for (int64_t d = static_cast<int64_t>(result_shape.size()) - 1; d >= 0;
         --d) {
      coord[d] = rem % result_shape[d];
      rem /= result_shape[d];
    }
    const float expected = fetch(a, result_shape, coord) +
                           fetch(b, result_shape, coord);
    ASSERT_NEAR(got.at(flat), expected, 1e-5f)
        << "shape a=" << ShapeToString(sa) << " b=" << ShapeToString(sb)
        << " flat=" << flat;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, BroadcastSweep,
                         ::testing::Range(0, 20));

// --- MatMul ------------------------------------------------------------

TEST(TensorOps, MatMul2DKnownValues) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul2D(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(TensorOps, MatMulInnerMismatchThrows) {
  EXPECT_THROW(ops::MatMul(Tensor::Zeros({2, 3}), Tensor::Zeros({2, 3})),
               Error);
}

TEST(TensorOps, BatchedMatMulEqualBatches) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 3, 5}, rng);
  Tensor b = Tensor::Randn({4, 5, 2}, rng);
  Tensor c = ops::MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{4, 3, 2}));
  // Check batch 2 against the 2-D kernel.
  Tensor a2 = ops::Slice(a, 0, 2, 1).Reshape({3, 5});
  Tensor b2 = ops::Slice(b, 0, 2, 1).Reshape({5, 2});
  Tensor c2 = ops::Slice(c, 0, 2, 1).Reshape({3, 2});
  EXPECT_TRUE(AllClose(c2, ops::MatMul2D(a2, b2)));
}

TEST(TensorOps, MatMulNTMatchesTransposeThenMatMul) {
  Rng rng(11);
  Tensor a = Tensor::Randn({4, 3, 5}, rng);
  Tensor b = Tensor::Randn({4, 7, 5}, rng);
  Tensor fused = ops::MatMulNT(a, b);
  Tensor ref = ops::MatMul(a, ops::TransposeLast2(b));
  ASSERT_EQ(fused.shape(), (Shape{4, 3, 7}));
  EXPECT_TRUE(AllClose(fused, ref));
  // Odd inner extent exercises the scalar tail of the blocked dot.
  Tensor a2 = Tensor::Randn({3, 13}, rng);
  Tensor b2 = Tensor::Randn({6, 13}, rng);
  EXPECT_TRUE(AllClose(ops::MatMulNT(a2, b2),
                       ops::MatMul2D(a2, ops::TransposeLast2(b2))));
}

TEST(TensorOps, MatMulTNMatchesTransposeThenMatMul) {
  Rng rng(12);
  Tensor a = Tensor::Randn({4, 5, 3}, rng);
  Tensor b = Tensor::Randn({4, 5, 7}, rng);
  Tensor fused = ops::MatMulTN(a, b);
  Tensor ref = ops::MatMul(ops::TransposeLast2(a), b);
  ASSERT_EQ(fused.shape(), (Shape{4, 3, 7}));
  EXPECT_TRUE(AllClose(fused, ref));
}

TEST(TensorOps, MatMulNTSharedRank2Operand) {
  Rng rng(13);
  Tensor g = Tensor::Randn({3, 2, 5}, rng);
  Tensor w = Tensor::Randn({4, 5}, rng);  // shared across the batch
  Tensor fused = ops::MatMulNT(g, w);
  ASSERT_EQ(fused.shape(), (Shape{3, 2, 4}));
  EXPECT_TRUE(AllClose(fused, ops::MatMul(g, ops::TransposeLast2(w))));
}

TEST(TensorOps, MatMulNTInnerMismatchThrows) {
  EXPECT_THROW(ops::MatMulNT(Tensor::Zeros({2, 3}), Tensor::Zeros({4, 5})),
               Error);
  EXPECT_THROW(ops::MatMulTN(Tensor::Zeros({3, 2}), Tensor::Zeros({5, 4})),
               Error);
}

TEST(TensorOps, BatchedMatMulSharedRhs) {
  Rng rng(2);
  Tensor a = Tensor::Randn({3, 2, 4}, rng);
  Tensor w = Tensor::Randn({4, 5}, rng);
  Tensor c = ops::MatMul(a, w);
  ASSERT_EQ(c.shape(), (Shape{3, 2, 5}));
  Tensor a0 = ops::Slice(a, 0, 1, 1).Reshape({2, 4});
  Tensor c0 = ops::Slice(c, 0, 1, 1).Reshape({2, 5});
  EXPECT_TRUE(AllClose(c0, ops::MatMul2D(a0, w)));
}

TEST(TensorOps, BatchedMatMulSharedLhs) {
  Rng rng(3);
  Tensor a = Tensor::Randn({2, 4}, rng);
  Tensor b = Tensor::Randn({3, 4, 5}, rng);
  Tensor c = ops::MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{3, 2, 5}));
  Tensor b1 = ops::Slice(b, 0, 1, 1).Reshape({4, 5});
  Tensor c1 = ops::Slice(c, 0, 1, 1).Reshape({2, 5});
  EXPECT_TRUE(AllClose(c1, ops::MatMul2D(a, b1)));
}

TEST(TensorOps, BatchedMatMulBroadcastBatchDims) {
  Rng rng(4);
  // [2, 1, 3, 4] x [1, 5, 4, 2] -> [2, 5, 3, 2]
  Tensor a = Tensor::Randn({2, 1, 3, 4}, rng);
  Tensor b = Tensor::Randn({1, 5, 4, 2}, rng);
  Tensor c = ops::MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 5, 3, 2}));
}

// Property sweep: batched MatMul equals per-slice MatMul2D.
class MatMulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(MatMulSweep, MatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(100 + m * 7 + k * 3 + n);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c = ops::MatMul2D(a, b);
  // Naive triple loop.
  Tensor expected(Shape{m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        acc += a({i, kk}) * b({kk, j});
      }
      expected({i, j}) = acc;
    }
  }
  EXPECT_TRUE(AllClose(c, expected, 1e-4f, 1e-4f))
      << "m=" << m << " k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 5),
                      std::make_tuple(8, 1, 8), std::make_tuple(5, 9, 3),
                      std::make_tuple(16, 16, 16), std::make_tuple(3, 32, 2),
                      std::make_tuple(33, 17, 9)));

// --- Structure ------------------------------------------------------------

TEST(TensorOps, TransposeLast2) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = ops::TransposeLast2(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ((t({0, 1})), 4.0f);
  EXPECT_EQ((t({2, 0})), 3.0f);
}

TEST(TensorOps, PermuteRoundTrip) {
  Rng rng(7);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor p = ops::Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  Tensor back = ops::Permute(p, {1, 2, 0});
  EXPECT_TRUE(AllClose(back, a, 0.0f, 0.0f));
}

TEST(TensorOps, PermuteValues) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor p = ops::Permute(a, {1, 0});
  EXPECT_TRUE(AllClose(p, Tensor({2, 2}, {1, 3, 2, 4})));
}

TEST(TensorOps, InvalidPermutationThrows) {
  Tensor a = Tensor::Zeros({2, 2});
  EXPECT_THROW(ops::Permute(a, {0, 0}), Error);
  EXPECT_THROW(ops::Permute(a, {0}), Error);
}

TEST(TensorOps, ConcatAxis0And1) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({1, 2}, {5, 6});
  Tensor c0 = ops::Concat({a, b}, 0);
  EXPECT_TRUE(AllClose(c0, Tensor({3, 2}, {1, 2, 3, 4, 5, 6})));
  Tensor d({2, 1}, {7, 8});
  Tensor c1 = ops::Concat({a, d}, 1);
  EXPECT_TRUE(AllClose(c1, Tensor({2, 3}, {1, 2, 7, 3, 4, 8})));
}

TEST(TensorOps, ConcatMismatchThrows) {
  EXPECT_THROW(ops::Concat({Tensor::Zeros({2, 2}), Tensor::Zeros({2, 3})},
                           0),
               Error);
}

TEST(TensorOps, SliceMiddle) {
  Tensor a({2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor s = ops::Slice(a, 1, 1, 2);
  EXPECT_TRUE(AllClose(s, Tensor({2, 2}, {1, 2, 5, 6})));
  EXPECT_THROW(ops::Slice(a, 1, 3, 2), Error);
}

TEST(TensorOps, SliceConcatRoundTrip) {
  Rng rng(11);
  Tensor a = Tensor::Randn({3, 5, 2}, rng);
  Tensor s0 = ops::Slice(a, 1, 0, 2);
  Tensor s1 = ops::Slice(a, 1, 2, 3);
  Tensor joined = ops::Concat({s0, s1}, 1);
  EXPECT_TRUE(AllClose(joined, a, 0.0f, 0.0f));
}

TEST(TensorOps, StackAddsLeadingAxis) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  Tensor s = ops::Stack({a, b});
  EXPECT_TRUE(AllClose(s, Tensor({2, 2}, {1, 2, 3, 4})));
}

TEST(TensorOps, IndexSelectAndScatterAdd) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor sel = ops::IndexSelect0(a, {2, 0, 2});
  EXPECT_TRUE(AllClose(sel, Tensor({3, 2}, {5, 6, 1, 2, 5, 6})));

  Tensor dst = Tensor::Zeros({3, 2});
  ops::ScatterAddRows(dst, {2, 0, 2}, sel);
  EXPECT_TRUE(AllClose(dst, Tensor({3, 2}, {1, 2, 0, 0, 10, 12})));
  EXPECT_THROW(ops::IndexSelect0(a, {3}), Error);
}

// --- Reductions ---------------------------------------------------------

TEST(TensorOps, SumAllMeanAll) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(ops::SumAll(a).item(), 10.0f);
  EXPECT_EQ(ops::MeanAll(a).item(), 2.5f);
}

TEST(TensorOps, SumAxisKeepAndSqueeze) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = ops::Sum(a, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_TRUE(AllClose(s0, Tensor({3}, {5, 7, 9})));
  Tensor s1 = ops::Sum(a, 1, /*keepdims=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_TRUE(AllClose(s1, Tensor({2, 1}, {6, 15})));
  Tensor m1 = ops::Mean(a, -1);
  EXPECT_TRUE(AllClose(m1, Tensor({2}, {2, 5})));
}

TEST(TensorOps, MaxAndArgMax) {
  Tensor a({2, 3}, {1, 9, 3, 7, 5, 6});
  Tensor mx = ops::Max(a, 1);
  EXPECT_TRUE(AllClose(mx, Tensor({2}, {9, 7})));
  Tensor am = ops::ArgMaxLast(a);
  EXPECT_TRUE(AllClose(am, Tensor({2}, {1, 0})));
}

TEST(TensorOps, ReduceToShapeSumsBroadcastAxes) {
  Tensor g({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = ops::ReduceToShape(g, {3});
  EXPECT_TRUE(AllClose(r, Tensor({3}, {5, 7, 9})));
  Tensor r2 = ops::ReduceToShape(g, {2, 1});
  EXPECT_TRUE(AllClose(r2, Tensor({2, 1}, {6, 15})));
  Tensor r3 = ops::ReduceToShape(g, {});
  EXPECT_EQ(r3.item(), 21.0f);
  Tensor same = ops::ReduceToShape(g, {2, 3});
  EXPECT_TRUE(AllClose(same, g, 0.0f, 0.0f));
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor a = Tensor::Randn({4, 7}, rng);
  Tensor s = ops::SoftmaxLast(a);
  for (int64_t r = 0; r < 4; ++r) {
    float total = 0.0f;
    for (int64_t j = 0; j < 7; ++j) total += s({r, j});
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(TensorOps, SoftmaxIsShiftInvariantAndStable) {
  Tensor a({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor s = ops::SoftmaxLast(a);
  EXPECT_FALSE(std::isnan(s.at(0)));
  Tensor b({1, 3}, {0.0f, 1.0f, 2.0f});
  EXPECT_TRUE(AllClose(s, ops::SoftmaxLast(b), 1e-5f, 1e-6f));
}

TEST(TensorOps, AllCloseDetectsDifferences) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.1f});
  EXPECT_FALSE(AllClose(a, b, 1e-3f, 1e-3f));
  EXPECT_TRUE(AllClose(a, b, 0.1f, 0.0f));
  EXPECT_FALSE(AllClose(a, Tensor::Zeros({3})));
  EXPECT_NEAR(ops::MaxAbsDiff(a, b), 0.1f, 1e-6f);
}

// --- Rng -----------------------------------------------------------------

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    float u = rng.Uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(10);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    float x = rng.Normal();
    sum += x;
    sum_sq += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(11);
  auto perm = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int64_t v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng rng(12);
  Rng child = rng.Fork();
  EXPECT_NE(rng.NextU64(), child.NextU64());
}

}  // namespace
}  // namespace stwa
