// Tests of the data pipeline: generator invariants, splits, scaler,
// sampler windowing, CSV round trips.

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "data/scaler.h"
#include "data/traffic_generator.h"
#include "tensor/ops.h"

namespace stwa {
namespace data {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions o;
  o.num_roads = 3;
  o.sensors_per_road = 4;
  o.num_days = 14;  // two full weeks: weekday/weekend structure present
  o.seed = 99;
  return o;
}

TEST(GeneratorTest, ShapesAndMetadata) {
  TrafficDataset d = GenerateTraffic(SmallOptions());
  EXPECT_EQ(d.num_sensors(), 12);
  EXPECT_EQ(d.num_steps(), 14 * 288);
  EXPECT_EQ(d.num_features(), 1);
  EXPECT_EQ(d.road_of_sensor.size(), 12u);
  EXPECT_EQ(d.coords.size(), 12u);
  EXPECT_EQ(d.graph.num_nodes(), 12);
  EXPECT_EQ(d.road_of_sensor[0], 0);
  EXPECT_EQ(d.road_of_sensor[11], 2);
}

TEST(GeneratorTest, FlowsAreNonNegative) {
  TrafficDataset d = GenerateTraffic(SmallOptions());
  const float* p = d.values.data();
  for (int64_t i = 0; i < d.values.size(); ++i) {
    EXPECT_GE(p[i], 0.0f);
  }
}

TEST(GeneratorTest, DeterministicFromSeed) {
  TrafficDataset a = GenerateTraffic(SmallOptions());
  TrafficDataset b = GenerateTraffic(SmallOptions());
  EXPECT_TRUE(ops::AllClose(a.values, b.values, 0.0f, 0.0f));
  GeneratorOptions other = SmallOptions();
  other.seed = 100;
  TrafficDataset c = GenerateTraffic(other);
  EXPECT_GT(ops::MaxAbsDiff(a.values, c.values), 1.0f);
}

TEST(GeneratorTest, DailyPeriodicityDominates) {
  // Correlation between one weekday's profile and the next weekday's
  // profile should be strongly positive.
  GeneratorOptions o = SmallOptions();
  o.noise_std = 4.0f;
  TrafficDataset d = GenerateTraffic(o);
  const int64_t spd = d.steps_per_day;
  // Compare Tuesday (day 1) vs Wednesday (day 2) for sensor 0.
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (int64_t s = 0; s < spd; ++s) {
    mean_a += d.values({0, spd + s, 0});
    mean_b += d.values({0, 2 * spd + s, 0});
  }
  mean_a /= spd;
  mean_b /= spd;
  for (int64_t s = 0; s < spd; ++s) {
    const double a = d.values({0, spd + s, 0}) - mean_a;
    const double b = d.values({0, 2 * spd + s, 0}) - mean_b;
    num += a * b;
    da += a * a;
    db += b * b;
  }
  const double corr = num / std::sqrt(da * db);
  EXPECT_GT(corr, 0.8) << "consecutive weekdays should correlate strongly";
}

TEST(GeneratorTest, WeekendRegimeDiffersFromWeekdays) {
  GeneratorOptions o = SmallOptions();
  o.noise_std = 2.0f;
  o.incident_prob = 0.0f;
  TrafficDataset d = GenerateTraffic(o);
  const int64_t spd = d.steps_per_day;
  // Mean absolute profile difference weekday-vs-weekday should be much
  // smaller than weekday-vs-weekend (day 1 = Tue, day 2 = Wed, day 5 = Sat).
  double wd_wd = 0.0;
  double wd_we = 0.0;
  for (int64_t s = 0; s < spd; ++s) {
    wd_wd += std::fabs(d.values({0, spd + s, 0}) -
                       d.values({0, 2 * spd + s, 0}));
    wd_we += std::fabs(d.values({0, spd + s, 0}) -
                       d.values({0, 5 * spd + s, 0}));
  }
  EXPECT_GT(wd_we, 1.5 * wd_wd);
}

TEST(GeneratorTest, SameRoadSensorsCorrelateMoreThanCrossRoad) {
  GeneratorOptions o = SmallOptions();
  o.seed = 123;
  TrafficDataset d = GenerateTraffic(o);
  auto corr = [&](int64_t a, int64_t b) {
    const int64_t steps = d.num_steps();
    double ma = 0.0;
    double mb = 0.0;
    for (int64_t t = 0; t < steps; ++t) {
      ma += d.values({a, t, 0});
      mb += d.values({b, t, 0});
    }
    ma /= steps;
    mb /= steps;
    double num = 0.0;
    double da = 0.0;
    double db = 0.0;
    for (int64_t t = 0; t < steps; ++t) {
      const double xa = d.values({a, t, 0}) - ma;
      const double xb = d.values({b, t, 0}) - mb;
      num += xa * xb;
      da += xa * xa;
      db += xb * xb;
    }
    return num / std::sqrt(da * db);
  };
  // Sensors 0 and 1 share road 0; sensor 4 is on road 1.
  double avg_same = 0.0;
  double avg_cross = 0.0;
  int same_count = 0;
  int cross_count = 0;
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = i + 1; j < 4; ++j) {
      avg_same += corr(i, j);
      ++same_count;
    }
    for (int64_t j = 4; j < 8; ++j) {
      avg_cross += corr(i, j);
      ++cross_count;
    }
  }
  avg_same /= same_count;
  avg_cross /= cross_count;
  EXPECT_GT(avg_same, avg_cross)
      << "same-road correlation should exceed cross-road correlation";
}

TEST(GeneratorTest, DayOfWeekHelpers) {
  EXPECT_EQ(DayOfWeek(0, 288), 0);
  EXPECT_EQ(DayOfWeek(287, 288), 0);
  EXPECT_EQ(DayOfWeek(288, 288), 1);
  EXPECT_EQ(DayOfWeek(7 * 288, 288), 0);
  EXPECT_FALSE(IsWeekend(0, 288));
  EXPECT_TRUE(IsWeekend(5 * 288, 288));
  EXPECT_TRUE(IsWeekend(6 * 288 + 100, 288));
  EXPECT_FALSE(IsWeekend(7 * 288, 288));
}

TEST(GeneratorTest, ProfilesKeepPaperSizeOrdering) {
  auto n = [](const GeneratorOptions& o) {
    return o.num_roads * o.sensors_per_road;
  };
  // Paper: PEMS07 (883) > PEMS03 (358) > PEMS04 (307) > PEMS08 (170).
  EXPECT_GT(n(Pems07Profile()), n(Pems03Profile()));
  EXPECT_GT(n(Pems03Profile()), n(Pems04Profile()));
  EXPECT_GT(n(Pems04Profile()), n(Pems08Profile()));
  EXPECT_EQ(n(Pems03Profile(2)), 2 * n(Pems03Profile()));
}

TEST(GeneratorTest, InvalidOptionsThrow) {
  GeneratorOptions o = SmallOptions();
  o.num_roads = 0;
  EXPECT_THROW(GenerateTraffic(o), Error);
}

TEST(GeneratorTest, IncidentsDepressFlows) {
  GeneratorOptions base = SmallOptions();
  base.incident_prob = 0.0f;
  base.noise_std = 2.0f;
  GeneratorOptions heavy = base;
  heavy.incident_prob = 0.9f;  // nearly one incident per road per day
  TrafficDataset clean = GenerateTraffic(base);
  TrafficDataset hit = GenerateTraffic(heavy);
  // Same seed => identical profiles; incidents only remove flow.
  double mean_clean = 0.0;
  double mean_hit = 0.0;
  for (int64_t i = 0; i < clean.values.size(); ++i) {
    mean_clean += clean.values.at(i);
    mean_hit += hit.values.at(i);
  }
  EXPECT_LT(mean_hit, mean_clean)
      << "capacity drops must reduce total flow";
}

TEST(GeneratorTest, WeekendEffectCanBeDisabled) {
  GeneratorOptions o = SmallOptions();
  o.noise_std = 1.0f;
  o.incident_prob = 0.0f;
  o.weekend_effect = false;
  TrafficDataset d = GenerateTraffic(o);
  const int64_t spd = d.steps_per_day;
  // Without the weekend regime, Saturday looks like Tuesday.
  double diff = 0.0;
  for (int64_t s = 0; s < spd; ++s) {
    diff += std::fabs(d.values({0, spd + s, 0}) -
                      d.values({0, 5 * spd + s, 0}));
  }
  EXPECT_LT(diff / spd, 10.0) << "profiles should match up to noise";
}

// --- Split -------------------------------------------------------------

TEST(SplitTest, SixtyTwentyTwenty) {
  SplitBounds b = ChronologicalSplit(1000);
  EXPECT_EQ(b.train_end, 600);
  EXPECT_EQ(b.val_end, 800);
  EXPECT_EQ(b.num_steps, 1000);
}

TEST(SplitTest, TinyDatasetThrows) {
  EXPECT_THROW(ChronologicalSplit(1), Error);
}

// --- Scaler -------------------------------------------------------------

TEST(ScalerTest, NormalisesTrainSliceToZeroMeanUnitVar) {
  Rng rng(5);
  Tensor values = Tensor::Rand({3, 100, 1}, rng, 50.0f, 150.0f);
  StandardScaler scaler;
  scaler.Fit(values, 60);
  Tensor train = ops::Slice(values, 1, 0, 60);
  Tensor norm = scaler.Transform(train);
  EXPECT_NEAR(ops::MeanAll(norm).item(), 0.0f, 1e-4f);
  double var = 0.0;
  for (int64_t i = 0; i < norm.size(); ++i) {
    var += static_cast<double>(norm.at(i)) * norm.at(i);
  }
  EXPECT_NEAR(var / norm.size(), 1.0, 1e-3);
}

TEST(ScalerTest, InverseUndoesTransform) {
  Rng rng(6);
  Tensor values = Tensor::Rand({2, 50, 1}, rng, 0.0f, 300.0f);
  StandardScaler scaler;
  scaler.Fit(values, 30);
  Tensor round = scaler.InverseTransform(scaler.Transform(values));
  EXPECT_TRUE(ops::AllClose(round, values, 1e-4f, 1e-2f));
}

TEST(ScalerTest, UseBeforeFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.Transform(Tensor::Ones({2, 2})), Error);
}

TEST(ScalerTest, FitIgnoresValTestStatistics) {
  // Put a huge shift in the "future" region; the scaler must not see it.
  Tensor values = Tensor::Zeros({1, 100, 1});
  for (int64_t t = 60; t < 100; ++t) values({0, t, 0}) = 1e6f;
  StandardScaler scaler;
  scaler.Fit(values, 60);
  EXPECT_NEAR(scaler.mean(), 0.0f, 1e-3f);
}

// --- Sampler ------------------------------------------------------------

TEST(SamplerTest, WindowContentsMatchSource) {
  // values[i, t] = 1000*i + t makes windows easy to verify.
  const int64_t sensors = 2;
  const int64_t steps = 40;
  Tensor values(Shape{sensors, steps, 1});
  for (int64_t i = 0; i < sensors; ++i) {
    for (int64_t t = 0; t < steps; ++t) {
      values({i, t, 0}) = 1000.0f * i + t;
    }
  }
  WindowSampler sampler(values, values, /*history=*/4, /*horizon=*/3,
                        /*range_begin=*/0, /*range_end=*/steps);
  Batch batch = sampler.MakeBatch({0, 1});
  ASSERT_EQ(batch.x.shape(), (Shape{2, 2, 4, 1}));
  ASSERT_EQ(batch.y.shape(), (Shape{2, 2, 3, 1}));
  // Anchor 0 is t = 3: inputs are 0..3, targets 4..6.
  EXPECT_EQ((batch.x({0, 0, 0, 0})), 0.0f);
  EXPECT_EQ((batch.x({0, 0, 3, 0})), 3.0f);
  EXPECT_EQ((batch.y({0, 0, 0, 0})), 4.0f);
  EXPECT_EQ((batch.y({0, 0, 2, 0})), 6.0f);
  // Sensor 1 of anchor 1 (t = 4).
  EXPECT_EQ((batch.x({1, 1, 0, 0})), 1001.0f);
  EXPECT_EQ((batch.y({1, 1, 0, 0})), 1005.0f);
}

TEST(SamplerTest, AnchorsRespectRangeBoundaries) {
  Tensor values = Tensor::Zeros({1, 100, 1});
  WindowSampler sampler(values, values, 12, 12, 20, 60);
  // First anchor: 20+12-1 = 31; last anchor t satisfies t+12 <= 59 (the
  // largest valid target index in the half-open range [20, 60)) => 47.
  EXPECT_EQ(sampler.num_samples(), 47 - 31 + 1);
}

TEST(SamplerTest, StrideSkipsAnchors) {
  Tensor values = Tensor::Zeros({1, 100, 1});
  WindowSampler dense(values, values, 6, 6, 0, 100, 1);
  WindowSampler strided(values, values, 6, 6, 0, 100, 3);
  EXPECT_NEAR(static_cast<double>(dense.num_samples()) /
                  strided.num_samples(),
              3.0, 0.2);
}

TEST(SamplerTest, NoValidAnchorsThrows) {
  Tensor values = Tensor::Zeros({1, 10, 1});
  EXPECT_THROW(WindowSampler(values, values, 8, 8, 0, 10), Error);
}

TEST(SamplerTest, EpochBatchesCoverAllSamplesOnce) {
  Tensor values = Tensor::Zeros({1, 60, 1});
  WindowSampler sampler(values, values, 5, 5, 0, 60);
  Rng rng(7);
  auto batches = sampler.EpochBatches(8, &rng);
  std::vector<int> seen(sampler.num_samples(), 0);
  for (const auto& b : batches) {
    EXPECT_LE(static_cast<int64_t>(b.size()), 8);
    for (int64_t idx : b) seen[idx]++;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

// --- CSV round trip -------------------------------------------------------

TEST(CsvTest, SaveLoadRoundTrip) {
  GeneratorOptions o = SmallOptions();
  o.num_days = 2;
  TrafficDataset d = GenerateTraffic(o);
  const std::string path = "/tmp/stwa_test_series.csv";
  SaveSeriesCsv(d, path);
  TrafficDataset loaded = LoadSeriesCsv(path);
  EXPECT_EQ(loaded.num_sensors(), d.num_sensors());
  EXPECT_EQ(loaded.num_steps(), d.num_steps());
  EXPECT_TRUE(ops::AllClose(loaded.values, d.values, 1e-4f, 1e-3f));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(LoadSeriesCsv("/tmp/definitely_missing_stwa.csv"), Error);
}

}  // namespace
}  // namespace data
}  // namespace stwa
