// Checkpoint round-trip tests for nn::SaveParameters / LoadParameters.

#include <cstdint>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/check.h"
#include "data/traffic_generator.h"
#include "nn/mlp.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace stwa {
namespace nn {
namespace {

std::string TempPath(const std::string& name) { return "/tmp/" + name; }

TEST(SerializeTest, RoundTripRestoresExactValues) {
  Rng rng(1);
  Mlp a({4, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  const std::string path = TempPath("stwa_ckpt_mlp.bin");
  SaveParameters(a, path);

  Rng rng2(99);  // different init
  Mlp b({4, 8, 2}, Activation::kRelu, Activation::kNone, &rng2);
  // Confirm they differ before loading.
  EXPECT_GT(ops::MaxAbsDiff(a.Parameters()[0].value(),
                            b.Parameters()[0].value()),
            1e-4f);
  LoadParameters(b, path);
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(pa[i].second.value(), pb[i].second.value(),
                              0.0f, 0.0f))
        << pa[i].first;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RestoredModelPredictsIdentically) {
  const data::TrafficDataset dataset = [] {
    data::GeneratorOptions o;
    o.num_roads = 2;
    o.sensors_per_road = 2;
    o.num_days = 2;
    o.steps_per_day = 48;
    return data::GenerateTraffic(o);
  }();
  baselines::ModelSettings s;
  s.history = 12;
  s.horizon = 3;
  s.d_model = 8;
  s.latent_dim = 4;
  s.predictor_hidden = 16;
  auto a = baselines::MakeModel("ST-WA", dataset, s);
  const std::string path = TempPath("stwa_ckpt_model.bin");
  SaveParameters(*a, path);

  baselines::ModelSettings s2 = s;
  s2.seed = 123;  // different init seed
  auto b = baselines::MakeModel("ST-WA", dataset, s2);
  LoadParameters(*b, path);

  Rng rng(5);
  Tensor x = Tensor::Randn({1, dataset.num_sensors(), 12, 1}, rng);
  Tensor ya = a->Forward(x, /*training=*/false).value();
  Tensor yb = b->Forward(x, /*training=*/false).value();
  EXPECT_TRUE(ops::AllClose(ya, yb, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchThrows) {
  Rng rng(2);
  Mlp a({4, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  const std::string path = TempPath("stwa_ckpt_shape.bin");
  SaveParameters(a, path);
  Mlp wider({4, 16, 2}, Activation::kRelu, Activation::kNone, &rng);
  EXPECT_THROW(LoadParameters(wider, path), Error);
  std::remove(path.c_str());
}

TEST(SerializeTest, ParameterCountMismatchThrows) {
  Rng rng(3);
  Mlp a({4, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  const std::string path = TempPath("stwa_ckpt_count.bin");
  SaveParameters(a, path);
  Mlp deeper({4, 8, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  EXPECT_THROW(LoadParameters(deeper, path), Error);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows) {
  Rng rng(4);
  Mlp a({2, 2}, Activation::kNone, Activation::kNone, &rng);
  EXPECT_THROW(LoadParameters(a, "/tmp/definitely_missing_ckpt.bin"),
               Error);
}

TEST(SerializeTest, SaveLeavesNoTempFileBehind) {
  Rng rng(6);
  Mlp a({3, 3}, Activation::kNone, Activation::kNone, &rng);
  const std::string path = TempPath("stwa_ckpt_atomic.bin");
  SaveParameters(a, path);
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "temporary file was not renamed away";
  std::ifstream final_file(path, std::ios::binary);
  EXPECT_TRUE(final_file.good());
  std::remove(path.c_str());
}

TEST(SerializeTest, MetadataRoundTrips) {
  Rng rng(7);
  Mlp a({3, 3}, Activation::kNone, Activation::kNone, &rng);
  const std::string path = TempPath("stwa_ckpt_meta.bin");
  CheckpointMeta meta;
  meta.Set("model", "ST-WA");
  meta.SetInt("num_sensors", 307);
  meta.SetFloat("scaler_mean", 211.70089f);
  SaveParameters(a, path, meta);
  CheckpointMeta got = LoadCheckpointMeta(path);
  EXPECT_EQ(got.Get("model"), "ST-WA");
  EXPECT_EQ(got.GetInt("num_sensors"), 307);
  // %.9g formatting makes float round-trips bit-exact.
  EXPECT_EQ(got.GetFloat("scaler_mean"), 211.70089f);
  EXPECT_FALSE(got.Has("absent"));
  EXPECT_EQ(got.GetOr("absent", "fallback"), "fallback");
  EXPECT_THROW(got.Get("absent"), Error);
  std::remove(path.c_str());
}

TEST(SerializeTest, ArchMismatchReportsEveryDifferenceAtOnce) {
  Rng rng(8);
  Mlp a({4, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  const std::string path = TempPath("stwa_ckpt_mismatch.bin");
  CheckpointMeta meta;
  meta.Set("model", "demo-mlp");
  SaveParameters(a, path, meta);
  Mlp other({4, 16, 4}, Activation::kRelu, Activation::kNone, &rng);
  // Keep a copy of the original weights to prove the module is untouched
  // after a failed load.
  Tensor before = other.Parameters()[0].value().Clone();
  try {
    LoadParameters(other, path);
    FAIL() << "expected architecture mismatch";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("architecture mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("demo-mlp"), std::string::npos)
        << "error should name the checkpoint's model: " << msg;
    EXPECT_NE(msg.find("shape mismatch"), std::string::npos) << msg;
  }
  EXPECT_TRUE(ops::AllClose(other.Parameters()[0].value(), before, 0.0f,
                            0.0f))
      << "failed load must leave the module untouched";
  std::remove(path.c_str());
}

TEST(SerializeTest, UnsupportedVersionRejectedWithClearMessage) {
  const std::string path = TempPath("stwa_ckpt_oldver.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const uint32_t magic = 0x53545741, version = 1;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  Rng rng(9);
  Mlp a({2, 2}, Activation::kNone, Activation::kNone, &rng);
  try {
    LoadParameters(a, path);
    FAIL() << "expected version rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

// Rewrites the u32 version word (byte offset 4, after the magic) in an
// already-saved checkpoint. The v2 -> v3 bump added only optional metadata
// entries, so the byte layout is identical and this fabricates a faithful
// v2-era file.
void PatchCheckpointVersion(const std::string& path, uint32_t version) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekp(4);
  f.write(reinterpret_cast<const char*>(&version), sizeof(version));
}

TEST(SerializeTest, V2CheckpointStillLoads) {
  Rng rng(10);
  Mlp a({4, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  const std::string path = TempPath("stwa_ckpt_v2compat.bin");
  CheckpointMeta meta;
  meta.Set("model", "demo-mlp");
  SaveParameters(a, path, meta);
  PatchCheckpointVersion(path, 2);

  Rng rng2(77);
  Mlp b({4, 8, 2}, Activation::kRelu, Activation::kNone, &rng2);
  LoadParameters(b, path);  // must not throw
  EXPECT_TRUE(ops::AllClose(a.Parameters()[0].value(),
                            b.Parameters()[0].value(), 0.0f, 0.0f));
  CheckpointMeta got = LoadCheckpointMeta(path);
  EXPECT_EQ(got.Get("model"), "demo-mlp");
  std::remove(path.c_str());
}

TEST(SerializeTest, V3RejectedByV2EraReaderWithActionableError) {
  // Simulate an old binary whose reader tops out at version 2 opening a
  // current (v3) checkpoint: it must fail cleanly and tell the user what
  // to do, not misparse the extra metadata.
  Rng rng(11);
  Mlp a({3, 3}, Activation::kNone, Activation::kNone, &rng);
  const std::string path = TempPath("stwa_ckpt_v3new.bin");
  SaveParameters(a, path);

  internal::SetMaxCheckpointReadVersionForTest(2);
  try {
    LoadParameters(a, path);
    internal::SetMaxCheckpointReadVersionForTest(0);
    FAIL() << "v2-era reader accepted a v3 checkpoint";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
    EXPECT_NE(msg.find("upgrade"), std::string::npos)
        << "error should tell the user how to recover: " << msg;
  }
  internal::SetMaxCheckpointReadVersionForTest(0);
  LoadParameters(a, path);  // back to the real reader, loads fine
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileThrows) {
  const std::string path = TempPath("stwa_ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  Rng rng(5);
  Mlp a({2, 2}, Activation::kNone, Activation::kNone, &rng);
  EXPECT_THROW(LoadParameters(a, path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace stwa
