// Tests for the fleet serving layer: shard routing arithmetic, token-bucket
// admission control, fleet config parsing, hot checkpoint reload (drain
// guarantee + bit-identity + geometry validation), the multi-profile
// registry, and the profile-routed line protocol.

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/check.h"
#include "data/traffic_generator.h"
#include "fleet/admission.h"
#include "fleet/config.h"
#include "fleet/profile.h"
#include "fleet/protocol.h"
#include "fleet/registry.h"
#include "fleet/shard_router.h"
#include "runtime/parallel.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace stwa {
namespace fleet {
namespace {

std::string TempPath(const std::string& name) { return "/tmp/" + name; }

// ---------------------------------------------------------------------------
// ShardRouter

TEST(ShardRouterTest, BalancedPartitionCoversAllTilesOnce) {
  const ShardRouter router(/*num_sensors=*/5, /*tiles=*/10, /*shards=*/4);
  EXPECT_EQ(router.global_sensors(), 50);
  // Balanced split of 10 tiles over 4 shards: 2/3/2/3.
  EXPECT_EQ(router.ShardBegin(0), 0);
  EXPECT_EQ(router.ShardEnd(0), 2);
  EXPECT_EQ(router.ShardBegin(1), 2);
  EXPECT_EQ(router.ShardEnd(1), 5);
  EXPECT_EQ(router.ShardBegin(2), 5);
  EXPECT_EQ(router.ShardEnd(2), 7);
  EXPECT_EQ(router.ShardBegin(3), 7);
  EXPECT_EQ(router.ShardEnd(3), 10);
  int64_t total = 0;
  for (int64_t k = 0; k < router.shards(); ++k) {
    total += router.ShardTileCount(k);
    EXPECT_GE(router.ShardTileCount(k), router.tiles() / router.shards());
  }
  EXPECT_EQ(total, router.tiles());
  // TileToShard is the inverse of the range split, and TileInShard is the
  // offset inside the owning range.
  for (int64_t t = 0; t < router.tiles(); ++t) {
    const int64_t k = router.TileToShard(t);
    EXPECT_GE(t, router.ShardBegin(k));
    EXPECT_LT(t, router.ShardEnd(k));
    EXPECT_EQ(router.TileInShard(t), t - router.ShardBegin(k));
  }
}

TEST(ShardRouterTest, SensorIndexMath) {
  const ShardRouter router(/*num_sensors=*/4, /*tiles=*/6, /*shards=*/3);
  EXPECT_EQ(router.global_sensors(), 24);
  EXPECT_EQ(router.SensorToTile(0), 0);
  EXPECT_EQ(router.SensorToTile(3), 0);
  EXPECT_EQ(router.SensorToTile(4), 1);
  EXPECT_EQ(router.SensorToTile(23), 5);
  EXPECT_EQ(router.SensorInTile(0), 0);
  EXPECT_EQ(router.SensorInTile(7), 3);
  EXPECT_EQ(router.SensorInTile(23), 3);
}

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  const ShardRouter router(/*num_sensors=*/3, /*tiles=*/7, /*shards=*/1);
  for (int64_t t = 0; t < 7; ++t) EXPECT_EQ(router.TileToShard(t), 0);
  EXPECT_EQ(router.ShardTileCount(0), 7);
}

TEST(ShardRouterTest, RejectsBadGeometry) {
  EXPECT_THROW(ShardRouter(0, 4, 2), Error);
  EXPECT_THROW(ShardRouter(4, 0, 1), Error);
  EXPECT_THROW(ShardRouter(4, 4, 0), Error);
  EXPECT_THROW(ShardRouter(4, 4, 5), Error);  // more shards than tiles
}

// ---------------------------------------------------------------------------
// Admission control

TEST(TokenBucketTest, BurstThenContinuousRefill) {
  TokenBucket bucket(TenantQuota{/*rate=*/2.0, /*burst=*/3.0});
  // A fresh bucket starts full: the whole burst admits at one instant.
  EXPECT_TRUE(bucket.TryAdmitAt(0));
  EXPECT_TRUE(bucket.TryAdmitAt(0));
  EXPECT_TRUE(bucket.TryAdmitAt(0));
  EXPECT_FALSE(bucket.TryAdmitAt(0));
  // 2 tokens/s -> one token after 500 ms, not two.
  EXPECT_TRUE(bucket.TryAdmitAt(500'000));
  EXPECT_FALSE(bucket.TryAdmitAt(500'000));
  // A long idle stretch refills to the cap, never past it.
  EXPECT_TRUE(bucket.TryAdmitAt(60'000'000));
  EXPECT_TRUE(bucket.TryAdmitAt(60'000'000));
  EXPECT_TRUE(bucket.TryAdmitAt(60'000'000));
  EXPECT_FALSE(bucket.TryAdmitAt(60'000'000));
}

TEST(TokenBucketTest, NonPositiveRateIsUnlimited) {
  TokenBucket bucket(TenantQuota{/*rate=*/0.0, /*burst=*/1.0});
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAdmitAt(0));
}

TEST(AdmissionControllerTest, DefaultQuotaAppliesToUnknownTenants) {
  AdmissionController ctrl;  // default default: unlimited
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ctrl.TryAdmitAt("anyone", 0));
  EXPECT_EQ(ctrl.admitted(), 10);
  EXPECT_EQ(ctrl.throttled(), 0);

  AdmissionController capped(TenantQuota{/*rate=*/1.0, /*burst=*/2.0});
  EXPECT_TRUE(capped.TryAdmitAt("t", 0));
  EXPECT_TRUE(capped.TryAdmitAt("t", 0));
  EXPECT_FALSE(capped.TryAdmitAt("t", 0));
  // Buckets are per tenant: a different tenant still has its burst.
  EXPECT_TRUE(capped.TryAdmitAt("u", 0));
  EXPECT_EQ(capped.admitted(), 3);
  EXPECT_EQ(capped.throttled(), 1);
}

TEST(AdmissionControllerTest, SetQuotaRestartsBucketFull) {
  AdmissionController ctrl;
  ctrl.SetQuota("gold", TenantQuota{/*rate=*/1.0, /*burst=*/1.0});
  EXPECT_TRUE(ctrl.TryAdmitAt("gold", 0));
  EXPECT_FALSE(ctrl.TryAdmitAt("gold", 0));
  // Replacing the quota restarts the bucket at its (new) burst.
  ctrl.SetQuota("gold", TenantQuota{/*rate=*/1.0, /*burst=*/2.0});
  EXPECT_TRUE(ctrl.TryAdmitAt("gold", 0));
  EXPECT_TRUE(ctrl.TryAdmitAt("gold", 0));
  EXPECT_FALSE(ctrl.TryAdmitAt("gold", 0));
}

// ---------------------------------------------------------------------------
// Fleet config

TEST(FleetConfigTest, ParsesProfilesAndQuotas) {
  const FleetConfig config = ParseFleetConfig(
      "# fleet node\n"
      "profile cityA ckpt=/tmp/a.bin tiles=8 shards=2 workers=3 "
      "max_batch=4 max_delay_us=100 capacity=64 deadline_us=5000 "
      "precision=int8 serial_kernels=0\n"
      "\n"
      "profile cityB ckpt=/tmp/b.bin\n"
      "quota gold rate=100 burst=20\n"
      "default_quota rate=5\n");
  ASSERT_EQ(config.profiles.size(), 2u);
  const FleetProfileConfig& a = config.profiles[0];
  EXPECT_EQ(a.name, "cityA");
  EXPECT_EQ(a.checkpoint, "/tmp/a.bin");
  EXPECT_EQ(a.tiles, 8);
  EXPECT_EQ(a.shards, 2);
  EXPECT_EQ(a.workers, 3);
  EXPECT_EQ(a.max_batch, 4);
  EXPECT_EQ(a.max_delay_us, 100);
  EXPECT_EQ(a.capacity, 64);
  EXPECT_EQ(a.deadline_us, 5000);
  EXPECT_EQ(a.precision, simd::Precision::kInt8);
  EXPECT_FALSE(a.serial_kernels);
  // cityB keeps every default.
  const FleetProfileConfig& b = config.profiles[1];
  EXPECT_EQ(b.tiles, 1);
  EXPECT_EQ(b.shards, 1);
  EXPECT_TRUE(b.serial_kernels);
  ASSERT_EQ(config.quotas.size(), 1u);
  EXPECT_EQ(config.quotas[0].first, "gold");
  EXPECT_DOUBLE_EQ(config.quotas[0].second.rate, 100.0);
  EXPECT_DOUBLE_EQ(config.quotas[0].second.burst, 20.0);
  EXPECT_DOUBLE_EQ(config.default_quota.rate, 5.0);
}

TEST(FleetConfigTest, RejectsTyposInsteadOfServingDefaults) {
  EXPECT_THROW(ParseFleetConfig("frobnicate cityA\n"), Error);
  EXPECT_THROW(ParseFleetConfig("profile cityA\n"), Error);  // no ckpt
  EXPECT_THROW(ParseFleetConfig("profile cityA ckpt=/a tilse=4\n"), Error);
  EXPECT_THROW(ParseFleetConfig("profile cityA ckpt=/a tiles=many\n"),
               Error);
  EXPECT_THROW(ParseFleetConfig("quota gold burst=5\n"), Error);  // no rate
  EXPECT_THROW(ParseFleetConfig("quota gold rate=1 color=red\n"), Error);
}

TEST(FleetConfigTest, QuotaBurstClampedToAdmitAtLeastOne) {
  const FleetConfig config =
      ParseFleetConfig("quota tiny rate=1 burst=0.2\n");
  EXPECT_DOUBLE_EQ(config.quotas[0].second.burst, 1.0);
}

// ---------------------------------------------------------------------------
// ModelProfile fixtures

struct Fixture {
  data::TrafficDataset dataset;
  baselines::ModelSettings settings;
  std::unique_ptr<train::ForecastModel> model;
  serve::ServingInfo info;
  std::string path;
};

/// Builds and saves a small ST-WA serving checkpoint (N = 2*roads
/// sensors, history 12, horizon 3). `scaler_std` changes the served
/// outputs without touching the model geometry — two saves with
/// different values act as "different weights" for reload tests.
Fixture MakeFixture(const std::string& file, float scaler_std = 55.0f,
                    int64_t roads = 2) {
  Fixture f;
  data::GeneratorOptions gen;
  gen.num_roads = roads;
  gen.sensors_per_road = 2;
  gen.num_days = 2;
  gen.steps_per_day = 48;
  gen.seed = 7;
  f.dataset = data::GenerateTraffic(gen);
  f.settings.history = 12;
  f.settings.horizon = 3;
  f.settings.d_model = 8;
  f.settings.window_sizes = {3, 2, 2};
  f.settings.latent_dim = 4;
  f.settings.predictor_hidden = 16;
  f.model = baselines::MakeModel("ST-WA", f.dataset, f.settings);
  f.info.model = "ST-WA";
  f.info.settings = f.settings;
  f.info.num_sensors = f.dataset.num_sensors();
  f.info.num_features = f.dataset.num_features();
  f.info.scaler_mean = 200.0f;
  f.info.scaler_std = scaler_std;
  f.path = TempPath(file);
  serve::SaveServingCheckpoint(*f.model, f.info, f.path);
  return f;
}

/// Default profile config over `path`: small tiles/shards, fast batching.
FleetProfileConfig SmallProfile(const std::string& name,
                                const std::string& path) {
  FleetProfileConfig config;
  config.name = name;
  config.checkpoint = path;
  config.tiles = 5;
  config.shards = 2;
  config.workers = 1;
  config.max_batch = 4;
  config.max_delay_us = 200;
  config.deadline_us = 30'000'000;
  return config;
}

/// Feeds `window` ([N, H, F]) into `tile` one timestep at a time.
void WarmTile(ModelProfile& profile, int64_t tile, const Tensor& window) {
  const int64_t n = window.dim(0), h = window.dim(1), f = window.dim(2);
  std::vector<float> row(static_cast<size_t>(n * f));
  const float* w = window.data();
  for (int64_t s = 0; s < h; ++s) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < f; ++j) {
        row[static_cast<size_t>(i * f + j)] = w[i * h * f + s * f + j];
      }
    }
    profile.PushTile(tile, row);
  }
}

void ExpectSameBits(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        sizeof(float) * static_cast<size_t>(want.size())),
            0);
}

// ---------------------------------------------------------------------------
// ModelProfile

TEST(ModelProfileTest, ShardedForecastMatchesStandaloneServerBitExactly) {
  Fixture f = MakeFixture("stwa_fleet_profile.bin");
  ModelProfile profile(SmallProfile("cityA", f.path));
  EXPECT_EQ(profile.Version(), 1);
  EXPECT_EQ(profile.num_sensors(), f.info.num_sensors);
  EXPECT_EQ(profile.router().global_sensors(), 5 * f.info.num_sensors);

  // Two tiles on different shards, fed different windows.
  const Tensor w0 = ops::Slice(f.dataset.values, 1, 0, f.settings.history);
  const Tensor w4 = ops::Slice(f.dataset.values, 1, 9, f.settings.history);
  EXPECT_FALSE(profile.TileReady(0));
  EXPECT_EQ(profile.TileMinFilled(0), 0);
  WarmTile(profile, 0, w0);
  WarmTile(profile, 4, w4);
  EXPECT_TRUE(profile.TileReady(0));
  EXPECT_TRUE(profile.TileReady(4));
  EXPECT_FALSE(profile.TileReady(2));
  EXPECT_NE(profile.router().TileToShard(0), profile.router().TileToShard(4));

  serve::Response r0 = profile.ForecastTile(0).get();
  serve::Response r4 = profile.ForecastTile(4).get();
  ASSERT_TRUE(r0.ok);
  ASSERT_TRUE(r4.ok);

  // Reference 1: an offline session over the same file.
  auto session = serve::InferenceSession::Open(f.path);
  ExpectSameBits(r0.forecast, session->Forecast(w0));
  ExpectSameBits(r4.forecast, session->Forecast(w4));

  // Reference 2: a standalone serve::Server (the pre-fleet serving path).
  serve::ServerOptions opts;
  opts.workers = 1;
  serve::Server standalone(f.path, opts);
  serve::Response rs = standalone.Submit(w0).get();
  ASSERT_TRUE(rs.ok);
  ExpectSameBits(r0.forecast, rs.forecast);
  standalone.Stop();

  // Per-sensor ingestion reaches the same tile state: global sensor g of
  // tile 2 is tile*N + local.
  const int64_t n = f.info.num_sensors;
  for (int64_t s = 0; s < f.settings.history; ++s) {
    for (int64_t i = 0; i < n; ++i) {
      const float v = w0.data()[i * f.settings.history + s];
      profile.PushSensor(2 * n + i, &v);
    }
  }
  ASSERT_TRUE(profile.TileReady(2));
  serve::Response r2 = profile.ForecastTile(2).get();
  ASSERT_TRUE(r2.ok);
  ExpectSameBits(r2.forecast, r0.forecast);

  const serve::ServerStats stats = profile.Stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(profile.ShardStats().size(), 2u);
  std::remove(f.path.c_str());
}

TEST(ModelProfileTest, ReloadDrainsInFlightRequestsOnOldWeights) {
  Fixture f = MakeFixture("stwa_fleet_reload_a.bin", /*scaler_std=*/55.0f);
  // Same model, different scaler -> different output bytes, identical
  // geometry. ckpt_version records producer provenance.
  const std::string path_b = TempPath("stwa_fleet_reload_b.bin");
  f.info.scaler_std = 70.0f;
  f.info.ckpt_version = 2;
  serve::SaveServingCheckpoint(*f.model, f.info, path_b);

  FleetProfileConfig config = SmallProfile("cityA", f.path);
  // A long batching delay keeps submissions queued (batch of 8 never
  // fills), so the reload swap happens while they are in flight.
  config.max_batch = 8;
  config.max_delay_us = 400'000;
  ModelProfile profile(config);

  const Tensor window =
      ops::Slice(f.dataset.values, 1, 3, f.settings.history);
  WarmTile(profile, 1, window);

  auto session_a = serve::InferenceSession::Open(f.path);
  auto session_b = serve::InferenceSession::Open(path_b);
  const Tensor want_old = session_a->Forecast(window);
  const Tensor want_new = session_b->Forecast(window);
  ASSERT_NE(std::memcmp(want_old.data(), want_new.data(),
                        sizeof(float) * static_cast<size_t>(want_old.size())),
            0);

  // Enqueue three forecasts, then reload before their delay expires.
  std::vector<std::future<serve::Response>> in_flight;
  for (int i = 0; i < 3; ++i) in_flight.push_back(profile.ForecastTile(1));
  const ReloadResult reload = profile.Reload(path_b);
  EXPECT_EQ(reload.version, 2);
  EXPECT_EQ(reload.ckpt_version, 2);
  EXPECT_GT(reload.prepare_us, 0.0);
  EXPECT_GE(reload.swap_us, 0.0);
  EXPECT_GE(reload.drain_us, 0.0);
  EXPECT_EQ(profile.Version(), 2);
  EXPECT_EQ(profile.Info().ckpt_version, 2);

  // Drain-before-retire: every in-flight request completed (nothing
  // dropped) on the OLD generation's weights.
  for (auto& future : in_flight) {
    serve::Response resp = future.get();
    ASSERT_TRUE(resp.ok);
    EXPECT_FALSE(resp.degraded);
    ExpectSameBits(resp.forecast, want_old);
  }
  // The warmed ring survived the swap; new forecasts use the new bytes.
  ASSERT_TRUE(profile.TileReady(1));
  serve::Response after = profile.ForecastTile(1).get();
  ASSERT_TRUE(after.ok);
  ExpectSameBits(after.forecast, want_new);

  // Stats continuity: completions before the swap are merged from the
  // retired generation, not lost.
  const serve::ServerStats stats = profile.Stats();
  EXPECT_EQ(stats.completed, 4);
  EXPECT_EQ(stats.shed, 0);
  std::remove(f.path.c_str());
  std::remove(path_b.c_str());
}

TEST(ModelProfileTest, ReloadUnchangedFileIsBitIdentical) {
  Fixture f = MakeFixture("stwa_fleet_reload_same.bin");
  ModelProfile profile(SmallProfile("cityA", f.path));
  const Tensor window =
      ops::Slice(f.dataset.values, 1, 6, f.settings.history);
  WarmTile(profile, 3, window);
  serve::Response before = profile.ForecastTile(3).get();
  ASSERT_TRUE(before.ok);
  const ReloadResult reload = profile.Reload(f.path);
  EXPECT_EQ(reload.version, 2);
  serve::Response after = profile.ForecastTile(3).get();
  ASSERT_TRUE(after.ok);
  ExpectSameBits(after.forecast, before.forecast);
  std::remove(f.path.c_str());
}

TEST(ModelProfileTest, ReloadRejectsGeometryMismatchAndKeepsServing) {
  Fixture f = MakeFixture("stwa_fleet_geom_a.bin");
  Fixture wide = MakeFixture("stwa_fleet_geom_b.bin", 55.0f, /*roads=*/3);
  ModelProfile profile(SmallProfile("cityA", f.path));
  const Tensor window =
      ops::Slice(f.dataset.values, 1, 2, f.settings.history);
  WarmTile(profile, 0, window);

  EXPECT_THROW(profile.Reload(wide.path), Error);          // wrong N
  EXPECT_THROW(profile.Reload("/nonexistent/ckpt"), Error);
  EXPECT_EQ(profile.Version(), 1);  // old generation keeps serving
  serve::Response resp = profile.ForecastTile(0).get();
  EXPECT_TRUE(resp.ok);
  std::remove(f.path.c_str());
  std::remove(wide.path.c_str());
}

// ---------------------------------------------------------------------------
// ModelRegistry

TEST(ModelRegistryTest, LoadsProfilesConcurrentlyAndRoutesByName) {
  Fixture fa = MakeFixture("stwa_fleet_reg_a.bin");
  Fixture fb = MakeFixture("stwa_fleet_reg_b.bin", /*scaler_std=*/70.0f);
  std::vector<FleetProfileConfig> configs = {
      SmallProfile("cityA", fa.path), SmallProfile("cityB", fb.path)};
  ModelRegistry registry(configs);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"cityA", "cityB"}));
  ASSERT_NE(registry.Find("cityA"), nullptr);
  ASSERT_NE(registry.Find("cityB"), nullptr);
  EXPECT_EQ(registry.Find("cityC"), nullptr);
  EXPECT_THROW(registry.Get("cityC"), Error);
  EXPECT_EQ(&registry.Get("cityA"), registry.Find("cityA"));
  // The two profiles serve different checkpoints.
  EXPECT_NE(registry.Get("cityA").Info().scaler_std,
            registry.Get("cityB").Info().scaler_std);
  std::remove(fa.path.c_str());
  std::remove(fb.path.c_str());
}

TEST(ModelRegistryTest, RejectsDuplicateNamesAndPropagatesLoadErrors) {
  Fixture f = MakeFixture("stwa_fleet_reg_dup.bin");
  std::vector<FleetProfileConfig> dup = {SmallProfile("cityA", f.path),
                                         SmallProfile("cityA", f.path)};
  EXPECT_THROW(ModelRegistry{dup}, Error);
  // One good + one bad profile: the loader thread's exception reaches the
  // caller and the good profile is torn down cleanly.
  std::vector<FleetProfileConfig> bad = {
      SmallProfile("cityA", f.path),
      SmallProfile("cityB", "/nonexistent/ckpt")};
  EXPECT_THROW(ModelRegistry{bad}, Error);
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// Fleet line protocol

TEST(FleetLineSessionTest, RoutesProfilesAndCountsMalformedLines) {
  Fixture f = MakeFixture("stwa_fleet_proto.bin");
  FleetConfig config;
  FleetProfileConfig profile = SmallProfile("cityX", f.path);
  profile.tiles = 2;
  profile.shards = 1;
  config.profiles.push_back(profile);
  FleetNode node(config);
  FleetLineSession session(node);
  bool quit = false;

  EXPECT_FALSE(session.Handle("", &quit).has_value());
  EXPECT_FALSE(session.Handle("# comment", &quit).has_value());

  // Every malformed line gets an "err ..." response — wrong profile,
  // wrong verb, out-of-range tile/sensor, wrong value count, bad number —
  // and is counted, never forwarded to a shard worker.
  const std::vector<std::string> bad = {
      "nosuch forecast 0",
      "cityX frobnicate",
      "cityX obs 99 1 2 3 4",
      "cityX obs 0 1 2 3",          // needs N*F = 4 values
      "cityX obs 0 1 2 three 4",
      "cityX obs1 999 1",
      "cityX forecast 99",
      "tenant",
  };
  for (const std::string& line : bad) {
    auto resp = session.Handle(line, &quit);
    ASSERT_TRUE(resp.has_value()) << line;
    EXPECT_EQ(resp->rfind("err ", 0), 0u) << line << " -> " << *resp;
  }
  EXPECT_EQ(session.protocol_errors(),
            static_cast<int64_t>(bad.size()));
  EXPECT_EQ(node.Stats().protocol_errors,
            static_cast<int64_t>(bad.size()));

  // A forecast before warm-up reports progress, not an error.
  auto warming = session.Handle("cityX forecast 0", &quit);
  ASSERT_TRUE(warming.has_value());
  EXPECT_NE(warming->find("warming_up"), std::string::npos);

  // Warm tile 0 through the protocol, then forecast it.
  const int64_t n = f.info.num_sensors;
  const Tensor window =
      ops::Slice(f.dataset.values, 1, 0, f.settings.history);
  for (int64_t s = 0; s < f.settings.history; ++s) {
    std::string line = "cityX obs 0";
    for (int64_t i = 0; i < n; ++i) {
      line += ' ' + std::to_string(window.data()[i * f.settings.history + s]);
    }
    auto resp = session.Handle(line, &quit);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(*resp, "ok");
  }
  auto forecast = session.Handle("cityX forecast 0", &quit);
  ASSERT_TRUE(forecast.has_value());
  EXPECT_EQ(forecast->rfind("forecast ok=1", 0), 0u) << *forecast;

  auto profiles = session.Handle("profiles", &quit);
  ASSERT_TRUE(profiles.has_value());
  EXPECT_NE(profiles->find("cityX:gen=1"), std::string::npos);

  auto pstats = session.Handle("cityX stats", &quit);
  ASSERT_TRUE(pstats.has_value());
  EXPECT_EQ(pstats->rfind("stats ", 0), 0u);
  EXPECT_NE(pstats->find(" gen=1"), std::string::npos);
  EXPECT_NE(pstats->find(" s0.completed=1"), std::string::npos);

  auto nstats = session.Handle("stats", &quit);
  ASSERT_TRUE(nstats.has_value());
  EXPECT_EQ(nstats->rfind("fleetstats ", 0), 0u);
  EXPECT_NE(nstats->find("t.default.count=1"), std::string::npos);

  EXPECT_FALSE(quit);
  auto bye = session.Handle("quit", &quit);
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(*bye, "bye");
  EXPECT_TRUE(quit);
  std::remove(f.path.c_str());
}

TEST(FleetLineSessionTest, ThrottledForecastHasDistinctFirstToken) {
  Fixture f = MakeFixture("stwa_fleet_throttle.bin");
  FleetConfig config;
  FleetProfileConfig profile = SmallProfile("cityX", f.path);
  profile.tiles = 1;
  profile.shards = 1;
  config.profiles.push_back(profile);
  // One token, essentially no refill: second forecast must throttle.
  config.quotas.emplace_back("capped",
                             TenantQuota{/*rate=*/1e-9, /*burst=*/1.0});
  FleetNode node(config);
  FleetLineSession session(node);
  bool quit = false;

  auto hello = session.Handle("tenant capped", &quit);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(*hello, "ok tenant=capped");
  EXPECT_EQ(session.tenant(), "capped");

  const Tensor window =
      ops::Slice(f.dataset.values, 1, 1, f.settings.history);
  ModelProfile& cityx = node.registry().Get("cityX");
  WarmTile(cityx, 0, window);

  auto first = session.Handle("cityX forecast 0", &quit);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->rfind("forecast ok=1", 0), 0u) << *first;
  auto second = session.Handle("cityX forecast 0", &quit);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "throttled tenant=capped profile=cityX");

  const FleetNodeStats stats = node.Stats();
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.throttled, 1);
  // Throttled requests are not protocol errors.
  EXPECT_EQ(stats.protocol_errors, 0);
  std::remove(f.path.c_str());
}

TEST(FleetLineSessionTest, ReloadCommandSwapsAndReportsFailuresSoftly) {
  Fixture f = MakeFixture("stwa_fleet_proto_reload.bin");
  FleetConfig config;
  FleetProfileConfig profile = SmallProfile("cityX", f.path);
  profile.tiles = 1;
  profile.shards = 1;
  config.profiles.push_back(profile);
  FleetNode node(config);
  FleetLineSession session(node);
  bool quit = false;

  auto ok = session.Handle("reload cityX " + f.path, &quit);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->rfind("reload ok=1 profile=cityX version=2", 0), 0u) << *ok;
  EXPECT_EQ(node.registry().Get("cityX").Version(), 2);

  // A well-formed reload of a bad file fails softly: ok=0, the old
  // generation keeps serving, and it is NOT a protocol error.
  auto bad = session.Handle("reload cityX /nonexistent/ckpt", &quit);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->rfind("reload ok=0 profile=cityX", 0), 0u) << *bad;
  EXPECT_EQ(node.registry().Get("cityX").Version(), 2);
  EXPECT_EQ(node.Stats().protocol_errors, 0);

  auto unknown = session.Handle("reload nosuch /tmp/x", &quit);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->rfind("err ", 0), 0u);
  EXPECT_EQ(node.Stats().protocol_errors, 1);
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// Serial-kernel pinning (the fleet worker execution mode)

TEST(ScopedSerialRegionTest, PinsAndRestoresNested) {
  EXPECT_FALSE(runtime::InParallelRegion());
  {
    runtime::ScopedSerialRegion outer;
    EXPECT_TRUE(runtime::InParallelRegion());
    {
      runtime::ScopedSerialRegion inner;
      EXPECT_TRUE(runtime::InParallelRegion());
    }
    EXPECT_TRUE(runtime::InParallelRegion());
  }
  EXPECT_FALSE(runtime::InParallelRegion());
}

}  // namespace
}  // namespace fleet
}  // namespace stwa
