// SIMD kernel layer tests (src/simd).
//
// Covers the determinism contract from DESIGN.md §4e:
//   * GEMM (NN / NT / TN) against a naive reference over a shape grid that
//     exercises every tail case and both the row and packed kernels. On
//     SIMD builds the NN/TN comparisons are BIT-exact against a
//     k-ascending simd::MulAddRef chain — the kernels promise that exact
//     accumulation order regardless of blocking;
//   * batched MatMul vs the rank-2 entry point (row kernel vs packed
//     kernel must agree bitwise);
//   * vectorized transcendentals (Exp/Tanh/Sigmoid) against libm under
//     tolerance, with exactness pinned at x = 0;
//   * elementwise / softmax / reduction kernels against scalar references;
//   * bit-identity across thread counts, including a short end-to-end
//     ST-WA Fit at 1 vs 4 workers.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/rng.h"
#include "data/traffic_generator.h"
#include "runtime/parallel.h"
#include "simd/gemm.h"
#include "simd/simd.h"
#include "simd/vec_math.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "train/trainer.h"

namespace stwa {
namespace {

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(),
                                       static_cast<size_t>(a.size()) *
                                           sizeof(float)) == 0);
}

// --- Naive GEMM references ------------------------------------------------
// Accumulate with simd::MulAddRef in ascending-k order: on the active tier
// that is the exact chain the NN/TN kernels promise per output element, so
// those comparisons can be bitwise on SIMD builds.

Tensor RefMatMul(const Tensor& a, const Tensor& b, int64_t m, int64_t n,
                 int64_t k) {
  Tensor c(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = simd::MulAddRef(a.data()[i * k + kk], b.data()[kk * n + j],
                              acc);
      }
      c.data()[i * n + j] = acc;
    }
  }
  return c;
}

Tensor RefMatMulNT(const Tensor& a, const Tensor& b, int64_t m, int64_t n,
                   int64_t k) {
  Tensor c(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = simd::MulAddRef(a.data()[i * k + kk], b.data()[j * k + kk],
                              acc);
      }
      c.data()[i * n + j] = acc;
    }
  }
  return c;
}

Tensor RefMatMulTN(const Tensor& a, const Tensor& b, int64_t m, int64_t n,
                   int64_t k) {
  Tensor c(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = simd::MulAddRef(a.data()[kk * m + i], b.data()[kk * n + j],
                              acc);
      }
      c.data()[i * n + j] = acc;
    }
  }
  return c;
}

void ExpectClose(const Tensor& ref, const Tensor& out, bool bit_exact,
                 const char* what) {
  ASSERT_EQ(ref.shape(), out.shape()) << what;
  if (bit_exact) {
    EXPECT_TRUE(BitIdentical(ref, out)) << what;
    return;
  }
  for (int64_t i = 0; i < ref.size(); ++i) {
    const float r = ref.data()[i];
    EXPECT_NEAR(out.data()[i], r, 1e-4f + 1e-4f * std::fabs(r))
        << what << " flat index " << i;
  }
}

// Dimensions straddling every vector width, the 6-row microkernel tile and
// the packed-path threshold (64^3 and 65^3 take the packed kernel on SIMD
// builds; the rest take the row kernel).
const std::vector<int64_t> kDims = {1, 2, 3, 7, 8, 9, 16, 17, 64, 65};

TEST(SimdGemmTest, MatMul2DMatchesReferenceOverGrid) {
  Rng rng(101);
  for (int64_t m : kDims) {
    for (int64_t n : kDims) {
      for (int64_t k : kDims) {
        Tensor a = Tensor::Randn({m, k}, rng);
        Tensor b = Tensor::Randn({k, n}, rng);
        ExpectClose(RefMatMul(a, b, m, n, k), ops::MatMul2D(a, b),
                    simd::kEnabled, "NN");
      }
    }
  }
}

TEST(SimdGemmTest, TransposedVariantsMatchReferenceOverGrid) {
  Rng rng(102);
  for (int64_t m : kDims) {
    for (int64_t n : kDims) {
      for (int64_t k : kDims) {
        Tensor a = Tensor::Randn({m, k}, rng);       // NT lhs: [m, k]
        Tensor bt = Tensor::Randn({n, k}, rng);      // NT rhs: [n, k]
        Tensor at = Tensor::Randn({k, m}, rng);      // TN lhs: [k, m]
        Tensor b = Tensor::Randn({k, n}, rng);       // TN rhs: [k, n]
        // NT uses lane-accumulator dot products (a different but fixed
        // summation order), so it is tolerance-compared even on SIMD
        // builds; TN keeps the scalar chain and is bit-exact there.
        ExpectClose(RefMatMulNT(a, bt, m, n, k), ops::MatMulNT(a, bt),
                    false, "NT");
        ExpectClose(RefMatMulTN(at, b, m, n, k), ops::MatMulTN(at, b),
                    simd::kEnabled, "TN");
      }
    }
  }
}

TEST(SimdGemmTest, BatchedMatMulBitMatchesRank2Kernel) {
  // The batched driver dispatches per-row GemmRows* kernels while the
  // rank-2 entry point may take the packed kernel; both must produce the
  // same bits (identical per-element accumulation chains).
  Rng rng(103);
  for (auto [m, k, n] : std::vector<std::array<int64_t, 3>>{
           {5, 7, 3}, {64, 64, 64}, {65, 33, 17}}) {
    Tensor a = Tensor::Randn({2, m, k}, rng);
    Tensor b = Tensor::Randn({2, k, n}, rng);
    Tensor batched = ops::MatMul(a, b);
    for (int64_t s = 0; s < 2; ++s) {
      Tensor a2 = ops::Slice(a, 0, s, 1).Reshape({m, k});
      Tensor b2 = ops::Slice(b, 0, s, 1).Reshape({k, n});
      Tensor c2 = ops::MatMul2D(a2, b2);
      Tensor cs = ops::Slice(batched, 0, s, 1).Reshape({m, n});
      EXPECT_TRUE(BitIdentical(c2, cs)) << m << "x" << k << "x" << n
                                        << " slice " << s;
    }
  }
}

TEST(SimdVecMathTest, TranscendentalsTrackLibm) {
  // Dense sweep over the numerically interesting range plus the clamp
  // edges of the vectorized exp.
  std::vector<float> xs;
  for (float x = -12.0f; x <= 12.0f; x += 0.037f) xs.push_back(x);
  for (float x : {-90.0f, -87.4f, 80.0f, 88.0f, 89.0f}) xs.push_back(x);
  Tensor t(Shape{static_cast<int64_t>(xs.size())}, xs);

  Tensor e = ops::Exp(t);
  Tensor th = ops::Tanh(t);
  Tensor sg = ops::Sigmoid(t);
  for (size_t i = 0; i < xs.size(); ++i) {
    const float x = xs[i];
    const double re = std::exp(static_cast<double>(x));
    if (re < 1e37) {  // skip overflow-to-inf comparisons
      EXPECT_NEAR(e.data()[i], re, 2e-6 * re + 1e-37) << "exp(" << x << ")";
    }
    EXPECT_NEAR(th.data()[i], std::tanh(static_cast<double>(x)), 2e-6)
        << "tanh(" << x << ")";
    EXPECT_NEAR(sg.data()[i],
                1.0 / (1.0 + std::exp(-static_cast<double>(x))), 2e-6)
        << "sigmoid(" << x << ")";
  }

  // Exactness at the identity points several tests and modules rely on.
  Tensor zero(Shape{3});
  EXPECT_EQ(ops::Exp(zero).data()[0], 1.0f);
  EXPECT_EQ(ops::Sigmoid(zero).data()[0], 0.5f);
  EXPECT_EQ(ops::Tanh(zero).data()[0], 0.0f);
}

TEST(SimdElementwiseTest, ExactOpsBitMatchScalarReference) {
  // +, -, *, /, min/max, abs, relu, sqrt are correctly rounded per lane,
  // so the vectorized kernels must reproduce the scalar results bitwise.
  Rng rng(104);
  for (int64_t size : {1, 7, 8, 9, 31, 1000}) {
    Tensor a = Tensor::Randn({size}, rng);
    Tensor b = ops::AddScalar(Tensor::Randn({size}, rng), 3.0f);  // no /0
    Tensor sum = ops::Add(a, b);
    Tensor prod = ops::Mul(a, b);
    Tensor quot = ops::Div(a, b);
    Tensor relu = ops::Relu(a);
    for (int64_t i = 0; i < size; ++i) {
      EXPECT_EQ(sum.data()[i], a.data()[i] + b.data()[i]);
      EXPECT_EQ(prod.data()[i], a.data()[i] * b.data()[i]);
      EXPECT_EQ(quot.data()[i], a.data()[i] / b.data()[i]);
      EXPECT_EQ(relu.data()[i], a.data()[i] > 0.0f ? a.data()[i] : 0.0f);
    }
  }
}

TEST(SimdSoftmaxReductionTest, AgreeWithScalarReferences) {
  Rng rng(105);
  // Rows both below the vector width (scalar row path) and well above it.
  for (int64_t last : {2, 3, 8, 17, 64}) {
    Tensor a = Tensor::Randn({5, last}, rng);
    Tensor y = ops::SoftmaxLast(a);
    Tensor s = ops::Sum(a, 1);
    Tensor mx = ops::Max(a, 1);
    for (int64_t r = 0; r < 5; ++r) {
      const float* row = a.data() + r * last;
      float m = row[0];
      for (int64_t j = 1; j < last; ++j) m = std::max(m, row[j]);
      // Max selection is exact in any order.
      EXPECT_EQ(mx.data()[r], m);
      double den = 0.0, total = 0.0;
      for (int64_t j = 0; j < last; ++j) {
        den += std::exp(static_cast<double>(row[j] - m));
        total += row[j];
      }
      EXPECT_NEAR(s.data()[r], total, 1e-5 * (1.0 + std::fabs(total)));
      double ysum = 0.0;
      for (int64_t j = 0; j < last; ++j) {
        const double want = std::exp(static_cast<double>(row[j] - m)) / den;
        EXPECT_NEAR(y.data()[r * last + j], want, 1e-5);
        ysum += y.data()[r * last + j];
      }
      EXPECT_NEAR(ysum, 1.0, 1e-5);
    }
  }
  // Reducing a non-last axis (inner > 1) exercises the columnwise path.
  Tensor b = Tensor::Randn({4, 9, 6}, rng);
  Tensor s0 = ops::Sum(b, 0);
  for (int64_t i = 0; i < 9 * 6; ++i) {
    float acc = 0.0f;
    for (int64_t o = 0; o < 4; ++o) acc += b.data()[o * 9 * 6 + i];
    EXPECT_EQ(s0.data()[i], acc);  // serial order preserved: bit-exact
  }
}

class ThreadRestore {
 public:
  ~ThreadRestore() { runtime::SetNumThreads(0); }
};

TEST(SimdDeterminismTest, KernelsBitIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  Rng rng(106);
  Tensor a = Tensor::Randn({65, 65}, rng);
  Tensor b = Tensor::Randn({65, 65}, rng);
  Tensor big = Tensor::Randn({37, 129}, rng);
  auto run_all = [&] {
    std::vector<Tensor> outs;
    outs.push_back(ops::MatMul2D(a, b));
    outs.push_back(ops::MatMulNT(a, b));
    outs.push_back(ops::MatMulTN(a, b));
    outs.push_back(ops::SoftmaxLast(big));
    outs.push_back(ops::Tanh(big));
    outs.push_back(ops::Sigmoid(big));
    outs.push_back(ops::Sum(big, 1));
    outs.push_back(ops::Mul(a, b));
    return outs;
  };
  runtime::SetNumThreads(1);
  std::vector<Tensor> ref = run_all();
  runtime::SetNumThreads(4);
  std::vector<Tensor> out = run_all();
  ASSERT_EQ(ref.size(), out.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(BitIdentical(ref[i], out[i])) << "kernel " << i;
  }
}

// End-to-end: a short ST-WA training run must produce bit-identical
// losses and metrics at 1 vs 4 worker threads with the SIMD kernels
// active (ragged ParallelFor chunk tails are handled with partial-vector
// loads, never scalar remainder loops — see simd/simd.h).
TEST(SimdDeterminismTest, TrainingBitIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  data::GeneratorOptions o;
  o.num_roads = 2;
  o.sensors_per_road = 2;
  o.num_days = 5;
  o.steps_per_day = 96;
  o.seed = 77;
  data::TrafficDataset dataset = data::GenerateTraffic(o);

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 3;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  settings.seed = 7;

  train::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.stride = 4;
  config.eval_stride = 4;

  std::vector<std::vector<double>> histories;
  std::vector<double> maes;
  for (int threads : {1, 4}) {
    config.num_threads = threads;
    auto model = baselines::MakeModel("ST-WA", dataset, settings);
    train::Trainer trainer(dataset, settings.history, settings.horizon,
                           config);
    train::TrainResult r = trainer.Fit(*model);
    histories.push_back(r.val_mae_history);
    maes.push_back(r.test.mae);
  }
  ASSERT_EQ(histories[0].size(), histories[1].size());
  for (size_t e = 0; e < histories[0].size(); ++e) {
    EXPECT_EQ(histories[0][e], histories[1][e]) << "epoch " << e;
  }
  EXPECT_EQ(maes[0], maes[1]);
}

}  // namespace
}  // namespace stwa
