// Tests for the typed graph IR and captured execution plans (src/ir).
//
// The load-bearing property is bit-identity: a replayed plan must produce
// exactly the floats eager tracing produces — same loss, same gradients,
// same trained weights, same metrics, same served forecasts — at any
// thread count and with the buffer pool on or off. Everything else (plan
// cache keying, liveness, registry invariants, iterative teardown) rides
// on top of that contract.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/no_grad.h"
#include "autograd/ops.h"
#include "baselines/registry.h"
#include "common/rng.h"
#include "data/traffic_generator.h"
#include "ir/op_kind.h"
#include "ir/plan.h"
#include "ir/registry.h"
#include "runtime/parallel.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace stwa {
namespace {

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(), sizeof(float) * a.size()) == 0;
}

// --- Registry invariants --------------------------------------------------

TEST(IrRegistryTest, EveryKindIsRegisteredWithAName) {
  for (int k = 0; k < ir::kNumOpKinds; ++k) {
    const ir::OpKind kind = static_cast<ir::OpKind>(k);
    EXPECT_NE(ir::OpKindName(kind), nullptr);
    EXPECT_GT(std::strlen(ir::OpKindName(kind)), 0u);
  }
  // Leaves are storage, not computation; every other kind recomputes.
  EXPECT_EQ(ir::Kernel(ir::OpKind::kLeaf).forward, nullptr);
  for (int k = 1; k < ir::kNumOpKinds; ++k) {
    EXPECT_NE(ir::Kernel(static_cast<ir::OpKind>(k)).forward, nullptr)
        << ir::OpKindName(static_cast<ir::OpKind>(k));
  }
}

TEST(IrRegistryTest, GradcheckCoversEveryDifferentiableKind) {
  std::vector<std::string> failures;
  const int checked = ag::CheckAllOpKinds(&failures);
  for (const std::string& f : failures) ADD_FAILURE() << f;
  // Every kind except kLeaf, kDetach and the sampling sources carries a
  // backward kernel and must have been finite-difference checked.
  EXPECT_EQ(checked, ir::kNumOpKinds - 4);
}

// --- Node mechanics -------------------------------------------------------

TEST(IrNodeTest, DeepTapeTeardownDoesNotRecurse) {
  // 200k chained ops would overflow the stack under recursive shared_ptr
  // teardown (~one frame per node); the iterative destructor must drain
  // the chain flat.
  ag::Var v = ag::Parameter(Tensor(Shape{4}, 1.0f));
  for (int i = 0; i < 200000; ++i) v = ag::AddScalar(v, 1e-3f);
  SUCCEED();  // reaching scope exit without a crash is the assertion
}

TEST(IrNodeTest, NoGradModeStillPrunesParentsOutsideCapture) {
  ag::NoGradMode no_grad;
  ag::Var a = ag::Parameter(Tensor(Shape{2, 2}, 1.0f));
  ag::Var b = ag::Mul(a, a);
  EXPECT_FALSE(b.requires_grad());
  EXPECT_TRUE(b.node()->parents.empty());
  EXPECT_EQ(b.node()->kind, ir::OpKind::kMul);
}

// --- Plan capture / replay, direct ---------------------------------------

struct StepResult {
  float loss = 0.0f;
  Tensor grad;
};

StepResult EagerStep(ag::Var& w, const Tensor& x, const Tensor& y) {
  w.ZeroGrad();
  ag::Var pred = ag::Tanh(ag::MatMul(ag::Var(x), w));
  ag::Var loss = ag::HuberLoss(pred, ag::Var(y), 1.0f);
  loss.Backward();
  return {loss.value().item(), w.grad().Clone()};
}

TEST(ExecutionPlanTest, ReplayMatchesEagerBitForBit) {
  Rng rng(42);
  ag::Var w = ag::Parameter(Tensor::Randn({3, 2}, rng));
  Tensor x0 = Tensor::Randn({4, 3}, rng);
  Tensor y0 = Tensor::Randn({4, 2}, rng);

  // Capture while tracing the first step.
  std::unique_ptr<ir::ExecutionPlan> plan;
  {
    ir::GraphCapture capture;
    w.ZeroGrad();
    ag::Var pred = ag::Tanh(ag::MatMul(ag::Var(x0), w));
    ag::Var loss = ag::HuberLoss(pred, ag::Var(y0), 1.0f);
    loss.Backward();
    plan = capture.Finish(loss, {x0, y0}, /*with_backward=*/true);
  }
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->stats().forward_ops, 0);
  EXPECT_GT(plan->stats().backward_ops, 0);
  EXPECT_GT(plan->stats().released_buffers, 0);
  // Liveness must beat the traced tape's keep-everything footprint.
  EXPECT_GT(plan->stats().tape_value_bytes, 0);
  EXPECT_LT(plan->stats().peak_live_bytes,
            2 * plan->stats().tape_value_bytes);

  // Replay with fresh feeds; an eager step on an identical parameter must
  // agree bit-for-bit.
  ag::Var w_ref = ag::Parameter(w.value().Clone());
  for (int step = 0; step < 3; ++step) {
    Tensor x = Tensor::Randn({4, 3}, rng);
    Tensor y = Tensor::Randn({4, 2}, rng);
    w.ZeroGrad();
    const float replayed = plan->ReplayTrainStep({x, y});
    StepResult eager = EagerStep(w_ref, x, y);
    EXPECT_EQ(replayed, eager.loss) << "step " << step;
    EXPECT_TRUE(BitIdentical(w.grad(), eager.grad)) << "step " << step;
  }
}

TEST(ExecutionPlanTest, ReplayIsBitIdenticalWithPoolDisabled) {
  // Liveness releases must be correct when released buffers are truly
  // freed (no pool recycling): any premature release becomes a crash or a
  // wrong float here.
  pool::SetEnabled(false);
  Rng rng(7);
  ag::Var w = ag::Parameter(Tensor::Randn({5, 3}, rng));
  Tensor x0 = Tensor::Randn({2, 5}, rng);
  Tensor y0 = Tensor::Randn({2, 3}, rng);
  std::unique_ptr<ir::ExecutionPlan> plan;
  {
    ir::GraphCapture capture;
    w.ZeroGrad();
    ag::Var loss =
        ag::MseLoss(ag::Sigmoid(ag::MatMul(ag::Var(x0), w)), ag::Var(y0));
    loss.Backward();
    plan = capture.Finish(loss, {x0, y0}, /*with_backward=*/true);
  }
  ASSERT_NE(plan, nullptr);
  ag::Var w_ref = ag::Parameter(w.value().Clone());
  Tensor x1 = Tensor::Randn({2, 5}, rng);
  Tensor y1 = Tensor::Randn({2, 3}, rng);
  w.ZeroGrad();
  const float replayed = plan->ReplayTrainStep({x1, y1});
  w_ref.ZeroGrad();
  ag::Var loss =
      ag::MseLoss(ag::Sigmoid(ag::MatMul(ag::Var(x1), w_ref)), ag::Var(y1));
  loss.Backward();
  EXPECT_EQ(replayed, loss.value().item());
  EXPECT_TRUE(BitIdentical(w.grad(), w_ref.grad()));
  pool::SetEnabled(true);
}

TEST(ExecutionPlanTest, SamplingOpsRedrawTheStreamOnReplay) {
  // A plan over a graph with a kRandn source must consume the generator
  // exactly like eager tracing: same draws, same order.
  Rng plan_rng(99);
  Rng eager_rng(99);
  Rng data_rng(5);
  Tensor x0 = Tensor::Randn({3, 3}, data_rng);
  std::unique_ptr<ir::ExecutionPlan> plan;
  Tensor first;
  {
    ir::GraphCapture capture;
    ag::Var out = ag::Add(ag::Var(x0), ag::RandnVar({3, 3}, plan_rng));
    first = out.value();
    plan = capture.Finish(out, {x0}, /*with_backward=*/false);
  }
  ASSERT_NE(plan, nullptr);
  // Eager reference: same data, fresh generator with the same seed.
  Tensor eager0 = ops::Add(x0, Tensor::Randn({3, 3}, eager_rng));
  EXPECT_TRUE(BitIdentical(first, eager0));
  Tensor x1 = Tensor::Randn({3, 3}, data_rng);
  Tensor replayed = plan->ReplayForward({x1});
  Tensor eager1 = ops::Add(x1, Tensor::Randn({3, 3}, eager_rng));
  EXPECT_TRUE(BitIdentical(replayed, eager1));
  // The replay advanced the generator — a second replay draws new noise.
  Tensor replayed2 = plan->ReplayForward({x1});
  EXPECT_FALSE(BitIdentical(replayed, replayed2));
}

TEST(ExecutionPlanTest, UnplannableCaptureFallsBackToNull) {
  Rng rng(3);
  Tensor x = Tensor::Randn({2, 2}, rng);
  ir::GraphCapture capture;
  ag::Var w = ag::Parameter(Tensor::Randn({2, 2}, rng));
  // The feed is cloned before wrapping, so no captured leaf aliases x's
  // buffer — the capture cannot be replayed with swapped feeds.
  ag::Var loss = ag::MeanAll(ag::MatMul(ag::Var(x.Clone()), w));
  loss.Backward();
  EXPECT_EQ(capture.Finish(loss, {x}, /*with_backward=*/true), nullptr);
}

// --- End-to-end training bit-identity ------------------------------------

data::TrafficDataset PlanDataset() {
  data::GeneratorOptions o;
  o.num_roads = 2;
  o.sensors_per_road = 2;
  o.num_days = 3;
  o.steps_per_day = 96;
  o.noise_std = 5.0f;
  o.seed = 21;
  return data::GenerateTraffic(o);
}

baselines::ModelSettings PlanSettings() {
  baselines::ModelSettings s;
  s.history = 12;
  s.horizon = 3;
  s.d_model = 8;
  s.window_sizes = {3, 2, 2};
  s.latent_dim = 4;
  s.predictor_hidden = 16;
  s.seed = 11;
  return s;
}

struct FitOutcome {
  train::TrainResult result;
  std::vector<Tensor> params;
};

FitOutcome RunFit(const data::TrafficDataset& dataset, int use_plan,
                  int threads) {
  baselines::ModelSettings s = PlanSettings();
  SetGlobalSeed(123);
  auto model = baselines::MakeModel("ST-WA", dataset, s);
  train::TrainConfig c;
  c.epochs = 2;
  c.batch_size = 8;
  c.stride = 3;
  c.eval_stride = 4;
  c.use_plan = use_plan;
  c.num_threads = threads;
  train::Trainer trainer(dataset, s.history, s.horizon, c);
  FitOutcome out;
  out.result = trainer.Fit(*model);
  for (const ag::Var& p : model->Parameters()) {
    out.params.push_back(p.value().Clone());
  }
  return out;
}

void ExpectSameTraining(const FitOutcome& a, const FitOutcome& b) {
  ASSERT_EQ(a.result.val_mae_history.size(), b.result.val_mae_history.size());
  for (size_t i = 0; i < a.result.val_mae_history.size(); ++i) {
    EXPECT_EQ(a.result.val_mae_history[i], b.result.val_mae_history[i])
        << "epoch " << i;
  }
  EXPECT_EQ(a.result.test.mae, b.result.test.mae);
  EXPECT_EQ(a.result.test.rmse, b.result.test.rmse);
  EXPECT_EQ(a.result.val.mae, b.result.val.mae);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_TRUE(BitIdentical(a.params[i], b.params[i])) << "param " << i;
  }
}

TEST(PlanTrainingTest, FitIsBitIdenticalPlanOnVsOffSingleThread) {
  data::TrafficDataset d = PlanDataset();
  FitOutcome off = RunFit(d, /*use_plan=*/0, /*threads=*/1);
  FitOutcome on = RunFit(d, /*use_plan=*/1, /*threads=*/1);
  runtime::SetNumThreads(0);
  EXPECT_EQ(off.result.plan.plans_captured, 0);
  EXPECT_EQ(off.result.plan.replayed_steps, 0);
  EXPECT_GT(on.result.plan.plans_captured, 0);
  EXPECT_GT(on.result.plan.replayed_steps, 0);
  EXPECT_GT(on.result.plan.captured_nodes, 0);
  EXPECT_GT(on.result.plan.backward_ops, 0);
  ExpectSameTraining(off, on);
}

TEST(PlanTrainingTest, FitIsBitIdenticalPlanOnVsOffFourThreads) {
  data::TrafficDataset d = PlanDataset();
  FitOutcome off = RunFit(d, /*use_plan=*/0, /*threads=*/4);
  FitOutcome on = RunFit(d, /*use_plan=*/1, /*threads=*/4);
  // And the runtime's thread-count determinism must hold through replays.
  FitOutcome on1 = RunFit(d, /*use_plan=*/1, /*threads=*/1);
  runtime::SetNumThreads(0);
  ExpectSameTraining(off, on);
  ExpectSameTraining(on, on1);
}

TEST(PlanTrainingTest, PlanCacheCapturesPerBatchShape) {
  data::TrafficDataset d = PlanDataset();
  baselines::ModelSettings s = PlanSettings();
  train::TrainConfig c;
  c.epochs = 2;
  c.batch_size = 8;
  c.stride = 3;
  c.eval_stride = 4;
  c.use_plan = 1;
  c.num_threads = 1;
  train::Trainer trainer(d, s.history, s.horizon, c);
  auto batches =
      trainer.train_sampler().EpochBatches(c.batch_size, nullptr);
  ASSERT_GT(batches.size(), 1u);
  // The fixture must end in a partial batch, or this test checks nothing.
  ASSERT_NE(static_cast<int64_t>(batches.back().size()), c.batch_size);

  SetGlobalSeed(123);
  auto model = baselines::MakeModel("ST-WA", d, s);
  train::TrainResult r = trainer.Fit(*model);
  runtime::SetNumThreads(0);
  // One plan per distinct batch shape: full batches + the trailing rest.
  EXPECT_EQ(r.plan.plans_captured, 2);
  EXPECT_EQ(r.plan.traced_steps, 2);
  const int64_t steps_per_epoch = static_cast<int64_t>(batches.size());
  EXPECT_EQ(r.plan.traced_steps + r.plan.replayed_steps,
            steps_per_epoch * r.epochs_run);
}

// --- Serving bit-identity -------------------------------------------------

TEST(PlanServeTest, ForecastsAreBitIdenticalPlanOnVsOff) {
  data::TrafficDataset d = PlanDataset();
  baselines::ModelSettings s = PlanSettings();
  SetGlobalSeed(123);
  auto model = baselines::MakeModel("ST-WA", d, s);
  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = s;
  info.num_sensors = d.num_sensors();
  info.num_features = d.num_features();
  info.scaler_mean = 180.0f;
  info.scaler_std = 42.0f;
  const std::string path = "/tmp/stwa_ir_test_ckpt.bin";
  serve::SaveServingCheckpoint(*model, info, path);

  // Sessions snapshot the plan gates at Open (a mid-stream toggle must not
  // split one session across modes), so each mode is set before its Open.
  ir::SetPlanMode(true);
  auto planned = serve::InferenceSession::Open(path);
  ir::SetPlanMode(false);
  auto eager = serve::InferenceSession::Open(path);
  ir::SetPlanMode(true);
  ASSERT_NE(planned, nullptr);
  ASSERT_NE(eager, nullptr);

  Rng rng(31);
  for (int i = 0; i < 3; ++i) {
    Tensor window = Tensor::Rand(
        {2, d.num_sensors(), s.history, d.num_features()}, rng, 50.0f,
        400.0f);
    Tensor with_plan = planned->Forecast(window);
    Tensor without_plan = eager->Forecast(window);
    EXPECT_TRUE(BitIdentical(with_plan, without_plan)) << "request " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stwa
