// Tests for the reduced-precision serving tiers (simd/lowp.h,
// simd/gemm_lowp.h, tensor/lowp_cache.h): conversion error bounds,
// quantiser edge cases, kernel-vs-reference bit-exactness, the weight
// cache, MatMul routing and cross-thread determinism.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "runtime/parallel.h"
#include "simd/gemm_lowp.h"
#include "simd/lowp.h"
#include "tensor/lowp_cache.h"
#include "tensor/ops.h"

namespace stwa {
namespace simd {
namespace {

// ---------------------------------------------------------------------------
// bf16 conversion

TEST(LowpBf16Test, RoundTripErrorWithinHalfUlp) {
  // bf16 stores 7 explicit mantissa bits, so the RNE round-trip error is
  // at most half an ulp: 2^-8 relative for normal values.
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.Normal() * 100.0f;
    if (x == 0.0f) continue;
    const float back = F32FromBf16(Bf16FromF32(x));
    EXPECT_LE(std::abs(back - x), std::abs(x) * (1.0f / 256.0f)) << x;
  }
}

TEST(LowpBf16Test, ValuesWithShortMantissaAreExact) {
  // Anything representable in 8 mantissa bits survives both pack modes
  // unchanged.
  for (float x : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -96.0f, 1.5f, 0.15625f}) {
    EXPECT_EQ(F32FromBf16(Bf16FromF32(x)), x);
    EXPECT_EQ(F32FromBf16(Bf16FromF32Trunc(x)), x);
  }
}

TEST(LowpBf16Test, TruncationBiasesTowardZeroRneDoesNot) {
  // Truncation drops mantissa bits, so |trunc(x)| <= |x| always — a
  // one-sided error that compounds across layers. RNE rounds both ways;
  // over many values its mean signed error is an order of magnitude
  // smaller. This is why RNE is the pack default (lowp.h header).
  Rng rng(12);
  double trunc_signed = 0.0, rne_signed = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float x = rng.Normal() + 3.0f;  // positive-heavy
    const float t = F32FromBf16(Bf16FromF32Trunc(x));
    const float r = F32FromBf16(Bf16FromF32(x));
    EXPECT_LE(std::abs(t), std::abs(x));  // toward zero, every time
    trunc_signed += t - x;
    rne_signed += r - x;
  }
  // Truncation's aggregate bias is strictly negative and much larger in
  // magnitude than RNE's.
  EXPECT_LT(trunc_signed / n, 0.0);
  EXPECT_LT(std::abs(rne_signed), std::abs(trunc_signed) / 10.0);
}

TEST(LowpBf16Test, NanStaysNanAndInfStaysInf) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isnan(F32FromBf16(Bf16FromF32(nan))));
  EXPECT_TRUE(std::isnan(F32FromBf16(Bf16FromF32Trunc(nan))));
  EXPECT_EQ(F32FromBf16(Bf16FromF32(inf)), inf);
  EXPECT_EQ(F32FromBf16(Bf16FromF32(-inf)), -inf);
}

// ---------------------------------------------------------------------------
// int8 quantisation

TEST(LowpInt8Test, PerChannelRoundTripWithinHalfScale)  {
  // RNE quantisation: |x - dequant(quant(x))| <= scale / 2 for in-range x.
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<float> channel(64);
    float absmax = 0.0f;
    for (float& v : channel) {
      v = rng.Normal() * (trial + 1);
      absmax = std::max(absmax, std::abs(v));
    }
    const float scale = Int8Scale(absmax, kInt8QMax);
    ASSERT_GT(scale, 0.0f);
    for (float v : channel) {
      const int8_t q = QuantizeInt8(v, scale, kInt8QMax);
      EXPECT_LE(std::abs(v - static_cast<float>(q) * scale),
                scale * 0.5f + 1e-6f)
          << v;
    }
  }
}

TEST(LowpInt8Test, ZeroRangeChannelQuantisesToExactZero) {
  // A constant-zero channel has absmax 0 -> scale 0; the quantiser maps
  // everything to 0 and dequant reproduces the zero channel exactly,
  // without ever dividing by the scale.
  EXPECT_EQ(Int8Scale(0.0f, kInt8QMax), 0.0f);
  EXPECT_EQ(QuantizeInt8(0.0f, 0.0f, kInt8QMax), 0);
  EXPECT_EQ(QuantizeInt8(123.0f, 0.0f, kInt8QMax), 0);
}

TEST(LowpInt8Test, DenormalAndNonFiniteAbsmaxYieldZeroScale) {
  // A denormal absmax would underflow absmax/127 to 0 or a denormal —
  // either way the channel is treated as zero instead of producing inf
  // on dequant. Non-finite absmax (a corrupted weight) likewise.
  const float denormal = std::numeric_limits<float>::denorm_min();
  EXPECT_EQ(Int8Scale(denormal, kInt8QMax), 0.0f);
  EXPECT_EQ(Int8Scale(std::numeric_limits<float>::infinity(), kInt8QMax),
            0.0f);
  EXPECT_EQ(Int8Scale(std::numeric_limits<float>::quiet_NaN(), kInt8QMax),
            0.0f);
  EXPECT_EQ(Int8Scale(-1.0f, kInt8QMax), 0.0f);
}

TEST(LowpInt8Test, OverflowSaturatesAndNanQuantisesToZero) {
  const float scale = Int8Scale(1.0f, kInt8QMax);  // grid for [-1, 1]
  EXPECT_EQ(QuantizeInt8(1e30f, scale, kInt8QMax), 127);
  EXPECT_EQ(QuantizeInt8(-1e30f, scale, kInt8QMax), -127);
  EXPECT_EQ(QuantizeInt8(std::numeric_limits<float>::quiet_NaN(), scale,
                         kInt8QMax),
            0);
}

TEST(LowpInt8Test, ChannelScalesMatchAbsMaxFormula) {
  Rng rng(14);
  const int64_t k = 17, n = 9;
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& v : b) v = rng.Normal();
  b[3] = 0.0f;  // keep one extreme in play
  const std::vector<float> absmax = ChannelAbsMax(b.data(), k, n, false);
  const std::vector<float> scales = Int8ChannelScales(b.data(), k, n, false);
  ASSERT_EQ(absmax.size(), static_cast<size_t>(n));
  ASSERT_EQ(scales.size(), static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    float want = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      want = std::max(want, std::abs(b[static_cast<size_t>(kk * n + j)]));
    }
    EXPECT_EQ(absmax[static_cast<size_t>(j)], want);
    EXPECT_EQ(scales[static_cast<size_t>(j)], Int8Scale(want, kInt8QMax));
  }
}

// ---------------------------------------------------------------------------
// Kernel vs scalar reference bit-exactness

struct GemmCase {
  int64_t m, n, k;
};

// Shapes straddling the microkernel tile boundaries (MR multiples, NR
// multiples, ragged edges, odd k).
const GemmCase kCases[] = {{1, 1, 1},   {3, 5, 7},    {6, 16, 8},
                           {12, 32, 4}, {13, 33, 17}, {7, 31, 33},
                           {24, 64, 40}, {5, 130, 3}};

TEST(LowpGemmTest, Bf16KernelBitExactVsReference) {
  Rng rng(15);
  for (const GemmCase& c : kCases) {
    std::vector<float> a(static_cast<size_t>(c.m * c.k));
    std::vector<float> b(static_cast<size_t>(c.k * c.n));
    for (float& v : a) v = rng.Normal();
    for (float& v : b) v = rng.Normal();
    const auto w = PackWeights(b.data(), c.k, c.n, false, Precision::kBf16,
                               nullptr, false);
    std::vector<float> got(static_cast<size_t>(c.m * c.n), -1.0f);
    std::vector<float> want(static_cast<size_t>(c.m * c.n), -2.0f);
    GemmLowp(a.data(), *w, got.data(), c.m, false);
    GemmBf16Ref(a.data(), *w, want.data(), c.m, false);
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          sizeof(float) * got.size()),
              0)
        << c.m << "x" << c.n << "x" << c.k;
  }
}

TEST(LowpGemmTest, Int8KernelBitExactVsReference) {
  Rng rng(16);
  for (const GemmCase& c : kCases) {
    std::vector<float> a(static_cast<size_t>(c.m * c.k));
    std::vector<float> b(static_cast<size_t>(c.k * c.n));
    for (float& v : a) v = rng.Normal();
    for (float& v : b) v = rng.Normal();
    const auto w = PackWeights(b.data(), c.k, c.n, false, Precision::kInt8,
                               nullptr, false);
    std::vector<float> got(static_cast<size_t>(c.m * c.n), -1.0f);
    std::vector<float> want(static_cast<size_t>(c.m * c.n), -2.0f);
    GemmLowp(a.data(), *w, got.data(), c.m, false);
    GemmInt8Ref(a.data(), *w, want.data(), c.m, false);
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          sizeof(float) * got.size()),
              0)
        << c.m << "x" << c.n << "x" << c.k;
  }
}

TEST(LowpGemmTest, TransposedOperandsBitExactVsReference) {
  Rng rng(17);
  const int64_t m = 13, n = 33, k = 21;
  std::vector<float> at(static_cast<size_t>(k * m));  // op(A) via trans_a
  std::vector<float> bt(static_cast<size_t>(n * k));  // op(B) via trans
  for (float& v : at) v = rng.Normal();
  for (float& v : bt) v = rng.Normal();
  for (const Precision tier : {Precision::kBf16, Precision::kInt8}) {
    const auto w = PackWeights(bt.data(), k, n, /*trans=*/true, tier,
                               nullptr, false);
    std::vector<float> got(static_cast<size_t>(m * n), -1.0f);
    std::vector<float> want(static_cast<size_t>(m * n), -2.0f);
    GemmLowp(at.data(), *w, got.data(), m, /*trans_a=*/true);
    if (tier == Precision::kBf16) {
      GemmBf16Ref(at.data(), *w, want.data(), m, true);
    } else {
      GemmInt8Ref(at.data(), *w, want.data(), m, true);
    }
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          sizeof(float) * got.size()),
              0)
        << PrecisionName(tier);
  }
}

TEST(LowpGemmTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(18);
  const int64_t m = 96, n = 80, k = 64;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& v : a) v = rng.Normal();
  for (float& v : b) v = rng.Normal();
  for (const Precision tier : {Precision::kBf16, Precision::kInt8}) {
    const auto w = PackWeights(b.data(), k, n, false, tier, nullptr, false);
    std::vector<float> ref(static_cast<size_t>(m * n));
    runtime::SetNumThreads(1);
    GemmLowp(a.data(), *w, ref.data(), m, false);
    for (const int threads : {2, 4}) {
      runtime::SetNumThreads(threads);
      std::vector<float> got(static_cast<size_t>(m * n), -1.0f);
      GemmLowp(a.data(), *w, got.data(), m, false);
      EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                            sizeof(float) * got.size()),
                0)
          << PrecisionName(tier) << " at " << threads << " threads";
    }
    runtime::SetNumThreads(0);
  }
}

TEST(LowpGemmTest, BakedScalesReproduceComputedScalesBitExactly) {
  // The checkpoint bakes Int8ChannelScales at save; a session passes them
  // into PackWeights. Both routes must produce identical panels.
  Rng rng(19);
  const int64_t k = 40, n = 24, m = 9;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& v : a) v = rng.Normal();
  for (float& v : b) v = rng.Normal();
  const std::vector<float> baked = Int8ChannelScales(b.data(), k, n, false);
  const auto w_baked =
      PackWeights(b.data(), k, n, false, Precision::kInt8, &baked, false);
  const auto w_fresh =
      PackWeights(b.data(), k, n, false, Precision::kInt8, nullptr, false);
  std::vector<float> c_baked(static_cast<size_t>(m * n));
  std::vector<float> c_fresh(static_cast<size_t>(m * n));
  GemmLowp(a.data(), *w_baked, c_baked.data(), m, false);
  GemmLowp(a.data(), *w_fresh, c_fresh.data(), m, false);
  EXPECT_EQ(std::memcmp(c_baked.data(), c_fresh.data(),
                        sizeof(float) * c_baked.size()),
            0);
}

// ---------------------------------------------------------------------------
// Precision parsing / sizing

TEST(LowpPrecisionTest, NamesParseAndRoundTrip) {
  EXPECT_EQ(ParsePrecision("fp32"), Precision::kFp32);
  EXPECT_EQ(ParsePrecision("bf16"), Precision::kBf16);
  EXPECT_EQ(ParsePrecision("int8"), Precision::kInt8);
  EXPECT_STREQ(PrecisionName(Precision::kBf16), "bf16");
  EXPECT_THROW(ParsePrecision("fp16"), Error);
  EXPECT_THROW(ParsePrecision(""), Error);
}

TEST(LowpPrecisionTest, WeightBytesPerTier) {
  EXPECT_EQ(WeightBytes(Precision::kFp32), 4);
  EXPECT_EQ(WeightBytes(Precision::kBf16), 2);
  EXPECT_EQ(WeightBytes(Precision::kInt8), 1);
}

}  // namespace
}  // namespace simd

// ---------------------------------------------------------------------------
// Weight cache + MatMul routing (tensor layer)

namespace lowp {
namespace {

TEST(LowpCacheTest, RegisterFindUnregister) {
  Rng rng(20);
  const int64_t k = 12, n = 20;
  Tensor b = Tensor::Randn({k, n}, rng);
  ASSERT_EQ(Find(b.data(), k, n, false), nullptr);
  const int64_t before = ActiveCount();
  Register(b.data(), simd::PackWeights(b.data(), k, n, false,
                                       simd::Precision::kBf16, nullptr,
                                       false));
  EXPECT_EQ(ActiveCount(), before + 1);
  EXPECT_GT(TotalPanelBytes(), 0);
  auto hit = Find(b.data(), k, n, false);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->tier, simd::Precision::kBf16);
  // Any dimension or orientation mismatch is a miss, never a wrong hit.
  EXPECT_EQ(Find(b.data(), k + 1, n, false), nullptr);
  EXPECT_EQ(Find(b.data(), k, n - 1, false), nullptr);
  EXPECT_EQ(Find(b.data(), k, n, true), nullptr);
  Unregister(b.data());
  EXPECT_EQ(ActiveCount(), before);
  EXPECT_EQ(Find(b.data(), k, n, false), nullptr);
}

TEST(LowpCacheTest, MatMulRoutesThroughRegisteredPack) {
  Rng rng(21);
  const int64_t m = 10, k = 24, n = 18;
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor fp32_out = ops::MatMul2D(a, b).Clone();

  const auto pack = simd::PackWeights(b.data(), k, n, false,
                                      simd::Precision::kBf16, nullptr,
                                      false);
  Tensor want = Tensor::Uninit({m, n});
  simd::GemmBf16Ref(a.data(), *pack, want.data(), m, false);

  Register(b.data(), pack);
  Tensor got = ops::MatMul2D(a, b);
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        sizeof(float) * static_cast<size_t>(got.size())),
            0)
      << "MatMul2D did not dispatch to the registered bf16 pack";
  Unregister(b.data());

  // After unregistering, the fp32 path is back, bit-for-bit.
  Tensor again = ops::MatMul2D(a, b);
  EXPECT_EQ(std::memcmp(again.data(), fp32_out.data(),
                        sizeof(float) * static_cast<size_t>(again.size())),
            0);
}

TEST(LowpCacheTest, BatchedMatMulWithRankTwoWeightRoutes) {
  // The nn::Linear pattern: x is [B, T, k], the weight is rank-2 [k, n].
  Rng rng(22);
  const int64_t batch = 3, t = 5, k = 16, n = 12;
  Tensor x = Tensor::Randn({batch, t, k}, rng);
  Tensor w = Tensor::Randn({k, n}, rng);
  const auto pack = simd::PackWeights(w.data(), k, n, false,
                                      simd::Precision::kInt8, nullptr,
                                      false);
  Tensor want = Tensor::Uninit({batch * t, n});
  simd::GemmInt8Ref(x.data(), *pack, want.data(), batch * t, false);

  Register(w.data(), pack);
  Tensor got = ops::MatMul(x, w);
  Unregister(w.data());
  ASSERT_EQ(got.shape(), (Shape{batch, t, n}));
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        sizeof(float) * static_cast<size_t>(got.size())),
            0)
      << "batched MatMul did not flatten onto the registered int8 pack";
}

}  // namespace
}  // namespace lowp
}  // namespace stwa
