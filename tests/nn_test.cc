// Tests for the NN module system: parameter registration, Linear/MLP,
// GRU/LSTM semantics, attention shapes and masking, layer norm.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "common/check.h"
#include "autograd/ops.h"
#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/rnn.h"
#include "tensor/ops.h"

namespace stwa {
namespace nn {
namespace {

TEST(ModuleTest, ParameterRegistrationAndCount) {
  Linear layer(4, 3);
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
  auto named = layer.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

TEST(ModuleTest, DuplicateParameterNameThrows) {
  struct Bad : Module {
    Bad() {
      RegisterParameter("w", Tensor::Zeros({1}));
      RegisterParameter("w", Tensor::Zeros({1}));
    }
  };
  EXPECT_THROW(Bad bad, Error);
}

TEST(ModuleTest, ChildParametersAreCollectedWithDottedNames) {
  struct Parent : Module {
    Linear child{2, 2};
    Parent() { RegisterModule("child", &child); }
  };
  Parent p;
  auto named = p.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "child.weight");
}

TEST(ModuleTest, ZeroGradClearsGradients) {
  Linear layer(2, 2);
  ag::Var x(Tensor::Ones({1, 2}));
  ag::SumAll(layer.Forward(x)).Backward();
  bool any_nonzero = false;
  for (const ag::Var& p : layer.Parameters()) {
    for (int64_t i = 0; i < p.grad().size(); ++i) {
      if (p.grad().at(i) != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  layer.ZeroGrad();
  for (const ag::Var& p : layer.Parameters()) {
    for (int64_t i = 0; i < p.grad().size(); ++i) {
      EXPECT_EQ(p.grad().at(i), 0.0f);
    }
  }
}

TEST(LinearTest, KnownValues) {
  Linear layer(2, 2);
  // Overwrite parameters deterministically: y = x @ [[1,2],[3,4]] + [10,20]
  layer.Parameters()[0].node()->value.CopyDataFrom(
      Tensor({2, 2}, {1, 2, 3, 4}));
  layer.Parameters()[1].node()->value.CopyDataFrom(Tensor({2}, {10, 20}));
  ag::Var x(Tensor({1, 2}, {1, 1}));
  Tensor y = layer.Forward(x).value();
  EXPECT_TRUE(ops::AllClose(y, Tensor({1, 2}, {14, 26})));
}

TEST(LinearTest, BatchedLeadingDims) {
  Linear layer(3, 5);
  ag::Var x(Tensor::Randn({2, 4, 6, 3}, GlobalRng()));
  Tensor y = layer.Forward(x).value();
  EXPECT_EQ(y.shape(), (Shape{2, 4, 6, 5}));
}

TEST(LinearTest, WrongInputWidthThrows) {
  Linear layer(3, 5);
  ag::Var x(Tensor::Zeros({2, 4}));
  EXPECT_THROW(layer.Forward(x), Error);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(7);
  Linear layer(3, 2, true, &rng);
  ag::Var x(Tensor::Randn({4, 3}, rng));
  auto params = layer.Parameters();
  auto res = ag::CheckGradients(
      [&] { return ag::SumAll(ag::Square(layer.Forward(x))); }, params);
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(MlpTest, ShapesAndActivation) {
  Rng rng(8);
  Mlp mlp({4, 16, 16, 2}, Activation::kRelu, Activation::kNone, &rng);
  ag::Var x(Tensor::Randn({5, 4}, rng));
  Tensor y = mlp.Forward(x).value();
  EXPECT_EQ(y.shape(), (Shape{5, 2}));
  EXPECT_EQ(mlp.ParameterCount(), 4 * 16 + 16 + 16 * 16 + 16 + 16 * 2 + 2);
}

TEST(MlpTest, SigmoidOutputIsBounded) {
  Rng rng(9);
  Mlp mlp({3, 8, 4}, Activation::kTanh, Activation::kSigmoid, &rng);
  ag::Var x(Tensor::Randn({10, 3}, rng));
  Tensor y = mlp.Forward(x).value();
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y.at(i), 0.0f);
    EXPECT_LT(y.at(i), 1.0f);
  }
}

TEST(MlpTest, TooFewDimsThrows) {
  EXPECT_THROW(Mlp mlp({4}), Error);
}

// --- GRU ------------------------------------------------------------------

TEST(GruTest, CellMatchesManualGateMath) {
  Rng rng(10);
  GruCell cell(2, 3, &rng);
  Tensor x = Tensor::Randn({1, 2}, rng);
  Tensor h = Tensor::Randn({1, 3}, rng);
  Tensor out = cell.Forward(ag::Var(x), ag::Var(h)).value();

  // Manual recomputation with the same weights.
  auto params = cell.NamedParameters();
  Tensor w_ih = params[0].second.value();
  Tensor w_hh = params[1].second.value();
  Tensor b_ih = params[2].second.value();
  Tensor b_hh = params[3].second.value();
  Tensor gi = ops::Add(ops::MatMul(x, w_ih), b_ih);
  Tensor gh = ops::Add(ops::MatMul(h, w_hh), b_hh);
  for (int64_t j = 0; j < 3; ++j) {
    float r = 1.0f / (1.0f + std::exp(-(gi.at(j) + gh.at(j))));
    float z = 1.0f / (1.0f + std::exp(-(gi.at(3 + j) + gh.at(3 + j))));
    float n = std::tanh(gi.at(6 + j) + r * gh.at(6 + j));
    float expected = (1.0f - z) * n + z * h.at(j);
    EXPECT_NEAR(out.at(j), expected, 1e-5f) << "unit " << j;
  }
}

TEST(GruTest, SequenceShapesAndFinalState) {
  Rng rng(11);
  Gru gru(3, 5, &rng);
  ag::Var x(Tensor::Randn({2, 7, 3}, rng));
  ag::Var final_state;
  Tensor out = gru.ForwardWithState(x, &final_state).value();
  EXPECT_EQ(out.shape(), (Shape{2, 7, 5}));
  // Final state equals the last output step.
  Tensor last = ops::Slice(out, 1, 6, 1).Reshape({2, 5});
  EXPECT_TRUE(ops::AllClose(final_state.value(), last, 0.0f, 0.0f));
}

TEST(GruTest, ZeroInputZeroStateStaysSmall) {
  Rng rng(12);
  Gru gru(2, 4, &rng);
  ag::Var x(Tensor::Zeros({1, 3, 2}));
  Tensor out = gru.Forward(x).value();
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_LT(std::fabs(out.at(i)), 1.0f);
  }
}

TEST(GruTest, GradientsFlowThroughTime) {
  Rng rng(13);
  GruCell cell(2, 2, &rng);
  ag::Var x(Tensor::Randn({1, 2}, rng));
  ag::Var h0(Tensor::Randn({1, 2}, rng));
  auto params = cell.Parameters();
  auto res = ag::CheckGradients(
      [&] {
        ag::Var h = cell.Forward(x, h0);
        h = cell.Forward(x, h);
        return ag::SumAll(ag::Square(h));
      },
      params);
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(GruTest, StepAcceptsPerSensorGeneratedWeights) {
  // Per-sensor weights [N, in, 3h] broadcast against x [B, N, 1, in]: the
  // singleton row dim makes each sensor a 1-row matmul against its own
  // generated weight matrix. This is the layout the ST-aware GRU uses.
  Rng rng(14);
  const int64_t batch = 2;
  const int64_t sensors = 3;
  ag::Var x(Tensor::Randn({batch, sensors, 1, 2}, rng));
  ag::Var h(Tensor::Randn({batch, sensors, 1, 4}, rng));
  ag::Var w_ih(Tensor::Randn({sensors, 2, 12}, rng));
  ag::Var w_hh(Tensor::Randn({sensors, 4, 12}, rng));
  ag::Var b(Tensor::Zeros({12}));
  ag::Var out = GruCell::Step(x, h, w_ih, w_hh, b, b, 4);
  ASSERT_EQ(out.value().shape(), (Shape{batch, sensors, 1, 4}));

  // Sensor 1 of batch 0 must match a plain 2-D step with that sensor's
  // weights.
  Tensor x1 = ops::Slice(ops::Slice(x.value(), 0, 0, 1), 1, 1, 1)
                  .Reshape({1, 2});
  Tensor h1 = ops::Slice(ops::Slice(h.value(), 0, 0, 1), 1, 1, 1)
                  .Reshape({1, 4});
  Tensor w_ih1 = ops::Slice(w_ih.value(), 0, 1, 1).Reshape({2, 12});
  Tensor w_hh1 = ops::Slice(w_hh.value(), 0, 1, 1).Reshape({4, 12});
  ag::Var ref = GruCell::Step(ag::Var(x1), ag::Var(h1), ag::Var(w_ih1),
                              ag::Var(w_hh1), b, b, 4);
  Tensor got = ops::Slice(ops::Slice(out.value(), 0, 0, 1), 1, 1, 1)
                   .Reshape({1, 4});
  EXPECT_TRUE(ops::AllClose(got, ref.value(), 1e-4f, 1e-5f));
}

// --- LSTM ------------------------------------------------------------------

TEST(LstmTest, SequenceShapes) {
  Rng rng(15);
  Lstm lstm(3, 6, &rng);
  ag::Var x(Tensor::Randn({2, 5, 3}, rng));
  Tensor out = lstm.Forward(x).value();
  EXPECT_EQ(out.shape(), (Shape{2, 5, 6}));
}

TEST(LstmTest, CellStateEvolves) {
  Rng rng(16);
  LstmCell cell(2, 3, &rng);
  ag::Var h(Tensor::Zeros({1, 3}));
  ag::Var c(Tensor::Zeros({1, 3}));
  ag::Var x(Tensor::Randn({1, 2}, rng));
  cell.Forward(x, &h, &c);
  float norm1 = ops::SumAll(ops::Abs(c.value())).item();
  cell.Forward(x, &h, &c);
  float norm2 = ops::SumAll(ops::Abs(c.value())).item();
  EXPECT_GT(norm1, 0.0f);
  EXPECT_NE(norm1, norm2);
}

TEST(LstmTest, GradientsFlow) {
  Rng rng(17);
  LstmCell cell(2, 2, &rng);
  ag::Var x(Tensor::Randn({1, 2}, rng));
  auto params = cell.Parameters();
  auto res = ag::CheckGradients(
      [&] {
        ag::Var h(Tensor::Zeros({1, 2}));
        ag::Var c(Tensor::Zeros({1, 2}));
        cell.Forward(x, &h, &c);
        cell.Forward(x, &h, &c);
        return ag::SumAll(ag::Square(h));
      },
      params);
  EXPECT_TRUE(res.ok) << res.message;
}

// --- Attention ----------------------------------------------------------

TEST(AttentionTest, OutputShapeMatchesInput) {
  Rng rng(18);
  MultiHeadSelfAttention attn({.d_model = 8, .num_heads = 2}, &rng);
  ag::Var x(Tensor::Randn({3, 6, 8}, rng));
  EXPECT_EQ(attn.Forward(x).value().shape(), (Shape{3, 6, 8}));
}

TEST(AttentionTest, HeadsMustDivideModel) {
  EXPECT_THROW(MultiHeadSelfAttention attn({.d_model = 8, .num_heads = 3}),
               Error);
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  Rng rng(19);
  MultiHeadSelfAttention attn(
      {.d_model = 4, .num_heads = 1, .causal = true}, &rng);
  // Changing the future must not change the first output position.
  Tensor x1 = Tensor::Randn({1, 5, 4}, rng);
  Tensor x2 = x1.Clone();
  for (int64_t t = 2; t < 5; ++t) {
    for (int64_t f = 0; f < 4; ++f) x2({0, t, f}) += 10.0f;
  }
  Tensor y1 = attn.Forward(ag::Var(x1)).value();
  Tensor y2 = attn.Forward(ag::Var(x2)).value();
  for (int64_t f = 0; f < 4; ++f) {
    EXPECT_NEAR((y1({0, 0, f})), (y2({0, 0, f})), 1e-4f);
    EXPECT_NEAR((y1({0, 1, f})), (y2({0, 1, f})), 1e-4f);
  }
}

TEST(AttentionTest, SlidingWindowLimitsReceptiveField) {
  Rng rng(20);
  MultiHeadSelfAttention attn(
      {.d_model = 4, .num_heads = 1, .window_radius = 1}, &rng);
  Tensor x1 = Tensor::Randn({1, 8, 4}, rng);
  Tensor x2 = x1.Clone();
  // Perturb position 7; positions 0..5 must be unaffected (radius 1).
  for (int64_t f = 0; f < 4; ++f) x2({0, 7, f}) += 5.0f;
  Tensor y1 = attn.Forward(ag::Var(x1)).value();
  Tensor y2 = attn.Forward(ag::Var(x2)).value();
  for (int64_t t = 0; t <= 5; ++t) {
    for (int64_t f = 0; f < 4; ++f) {
      EXPECT_NEAR((y1({0, t, f})), (y2({0, t, f})), 1e-4f)
          << "t=" << t << " f=" << f;
    }
  }
  // Position 6 and 7 should change.
  EXPECT_GT(ops::MaxAbsDiff(ops::Slice(y1, 1, 6, 2), ops::Slice(y2, 1, 6, 2)),
            1e-4f);
}

TEST(AttentionTest, GradientsFlowToAllProjections) {
  Rng rng(21);
  MultiHeadSelfAttention attn({.d_model = 4, .num_heads = 2}, &rng);
  ag::Var x(Tensor::Randn({1, 3, 4}, rng));
  ag::SumAll(ag::Square(attn.Forward(x))).Backward();
  for (const auto& [name, p] : attn.NamedParameters()) {
    float norm = ops::SumAll(ops::Abs(p.grad())).item();
    EXPECT_GT(norm, 0.0f) << name << " received no gradient";
  }
}

// --- LayerNorm -----------------------------------------------------------

TEST(LayerNormTest, NormalisesLastAxis) {
  Rng rng(22);
  LayerNorm ln(8);
  ag::Var x(Tensor::Randn({4, 8}, rng));
  Tensor y = ln.Forward(x).value();
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int64_t j = 0; j < 8; ++j) mean += y({r, j});
    mean /= 8;
    for (int64_t j = 0; j < 8; ++j) {
      var += (y({r, j}) - mean) * (y({r, j}) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(23);
  LayerNorm ln(4);
  ag::Var x(Tensor::Randn({2, 4}, rng));
  auto res = ag::CheckGradients(
      [&] { return ag::SumAll(ag::Square(ln.Forward(x))); },
      ln.Parameters());
  EXPECT_TRUE(res.ok) << res.message;
}

// Parameterised sweep: attention output shape across head counts.
class HeadSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeadSweep, ShapePreserved) {
  Rng rng(24);
  const int heads = GetParam();
  MultiHeadSelfAttention attn({.d_model = 24, .num_heads = heads}, &rng);
  ag::Var x(Tensor::Randn({2, 5, 24}, rng));
  EXPECT_EQ(attn.Forward(x).value().shape(), (Shape{2, 5, 24}));
}

INSTANTIATE_TEST_SUITE_P(Heads, HeadSweep, ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace nn
}  // namespace stwa
