// Tests for MAE/RMSE/MAPE and the streaming accumulator.

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace stwa {
namespace metrics {
namespace {

TEST(MetricsTest, PerfectPredictionIsZero) {
  Tensor t({4}, {10, 20, 30, 40});
  ForecastMetrics m = Evaluate(t, t);
  EXPECT_EQ(m.mae, 0.0);
  EXPECT_EQ(m.rmse, 0.0);
  EXPECT_EQ(m.mape, 0.0);
}

TEST(MetricsTest, KnownValues) {
  Tensor pred({2}, {12.0f, 18.0f});
  Tensor target({2}, {10.0f, 20.0f});
  ForecastMetrics m = Evaluate(pred, target);
  EXPECT_NEAR(m.mae, 2.0, 1e-9);
  EXPECT_NEAR(m.rmse, 2.0, 1e-9);
  // MAPE = mean(2/10, 2/20) * 100 = 15%.
  EXPECT_NEAR(m.mape, 15.0, 1e-6);
}

TEST(MetricsTest, RmsePenalisesOutliersMoreThanMae) {
  Tensor pred({4}, {0, 0, 0, 10});
  Tensor target({4}, {0, 0, 0, 0});
  ForecastMetrics m = Evaluate(pred, target);
  EXPECT_NEAR(m.mae, 2.5, 1e-9);
  EXPECT_NEAR(m.rmse, 5.0, 1e-9);
}

TEST(MetricsTest, MapeMasksNearZeroTargets) {
  Tensor pred({3}, {5.0f, 100.0f, 110.0f});
  Tensor target({3}, {0.0f, 100.0f, 100.0f});
  ForecastMetrics m = Evaluate(pred, target);
  // Position 0 excluded: MAPE = mean(0, 10%) = 5%.
  EXPECT_NEAR(m.mape, 5.0, 1e-6);
  // MAE still counts the masked position.
  EXPECT_NEAR(m.mae, (5.0 + 0.0 + 10.0) / 3.0, 1e-9);
}

TEST(MetricsTest, MaskZerosExcludesFromAllMetrics) {
  Tensor pred({2}, {5.0f, 101.0f});
  Tensor target({2}, {0.0f, 100.0f});
  ForecastMetrics m = Evaluate(pred, target, 0.1f, /*mask_zeros=*/true);
  EXPECT_NEAR(m.mae, 1.0, 1e-9);
}

TEST(MetricsTest, ShapeMismatchThrows) {
  EXPECT_THROW(Evaluate(Tensor::Zeros({2}), Tensor::Zeros({3})), Error);
}

TEST(MetricsTest, PerHorizonSlicesCorrectly) {
  // [B=1, N=1, U=2, F=1]: horizon 1 perfect, horizon 2 off by 6.
  Tensor pred({1, 1, 2, 1}, {10.0f, 26.0f});
  Tensor target({1, 1, 2, 1}, {10.0f, 20.0f});
  auto per = EvaluatePerHorizon(pred, target);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_NEAR(per[0].mae, 0.0, 1e-9);
  EXPECT_NEAR(per[1].mae, 6.0, 1e-9);
  EXPECT_NEAR(per[1].mape, 30.0, 1e-6);
}

TEST(MetricsTest, AccumulatorMatchesSinglePass) {
  Rng rng(3);
  Tensor pred = Tensor::Rand({4, 5}, rng, 50.0f, 150.0f);
  Tensor target = Tensor::Rand({4, 5}, rng, 50.0f, 150.0f);
  ForecastMetrics whole = Evaluate(pred, target);

  MetricAccumulator acc;
  for (int64_t r = 0; r < 4; ++r) {
    acc.Add(ops::Slice(pred, 0, r, 1), ops::Slice(target, 0, r, 1));
  }
  ForecastMetrics streamed = acc.Result();
  EXPECT_NEAR(streamed.mae, whole.mae, 1e-9);
  EXPECT_NEAR(streamed.rmse, whole.rmse, 1e-9);
  EXPECT_NEAR(streamed.mape, whole.mape, 1e-9);
  EXPECT_EQ(acc.count(), 20);
}

TEST(MetricsTest, EmptyAccumulatorIsZero) {
  MetricAccumulator acc;
  ForecastMetrics m = acc.Result();
  EXPECT_EQ(m.mae, 0.0);
  EXPECT_EQ(m.rmse, 0.0);
  EXPECT_EQ(m.mape, 0.0);
}

}  // namespace
}  // namespace metrics
}  // namespace stwa
