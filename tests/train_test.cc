// Integration tests of the training harness: end-to-end fits on small
// synthetic datasets, early stopping, evaluation plumbing, table printing.

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/enhanced_models.h"
#include "core/stwa_model.h"
#include "data/traffic_generator.h"
#include "train/grid_search.h"
#include "train/table.h"
#include "train/trainer.h"

namespace stwa {
namespace train {
namespace {

data::TrafficDataset TinyDataset() {
  data::GeneratorOptions o;
  o.num_roads = 2;
  o.sensors_per_road = 2;
  o.num_days = 5;
  o.steps_per_day = 96;  // 15-minute sampling keeps the test fast
  o.noise_std = 5.0f;
  o.seed = 77;
  return data::GenerateTraffic(o);
}

TrainConfig FastConfig() {
  TrainConfig c;
  c.epochs = 3;
  c.batch_size = 8;
  c.stride = 4;
  c.eval_stride = 4;
  c.patience = 10;
  return c;
}

/// A trivial persistence-style baseline: predicts the last observed value
/// for every horizon step. Needs no training; useful for harness plumbing
/// and as a sanity floor for the learned models.
class LastValueModel : public ForecastModel {
 public:
  LastValueModel(int64_t horizon) : horizon_(horizon) {}

  ag::Var Forward(const Tensor& x, bool /*training*/) override {
    const int64_t batch = x.dim(0);
    const int64_t sensors = x.dim(1);
    const int64_t features = x.dim(3);
    ag::Var input(x);
    ag::Var last = ag::Slice(input, 2, x.dim(2) - 1, 1);  // [B,N,1,F]
    // Tile across the horizon via broadcast add.
    ag::Var tile{Tensor(Shape{1, 1, horizon_, 1})};
    ag::Var out = ag::Add(last, tile);
    return ag::Reshape(out, {batch, sensors, horizon_, features});
  }

  std::string name() const override { return "LastValue"; }

 private:
  int64_t horizon_;
};

TEST(TrainerTest, EvaluateLastValueBaseline) {
  data::TrafficDataset d = TinyDataset();
  Trainer trainer(d, /*history=*/12, /*horizon=*/3, FastConfig());
  LastValueModel model(3);
  metrics::ForecastMetrics m =
      trainer.Evaluate(model, trainer.test_sampler());
  // Persistence on smooth traffic should be decent but not perfect.
  EXPECT_GT(m.mae, 0.1);
  EXPECT_LT(m.mae, 120.0);
  EXPECT_GE(m.rmse, m.mae);
}

TEST(TrainerTest, TrainingImprovesGruOverInit) {
  data::TrafficDataset d = TinyDataset();
  Trainer trainer(d, 12, 3, FastConfig());
  core::EnhancedConfig mc;
  mc.num_sensors = d.num_sensors();
  mc.history = 12;
  mc.horizon = 3;
  mc.d_model = 8;
  mc.predictor_hidden = 16;
  Rng rng(1);
  core::GruForecaster model(mc, &rng);
  metrics::ForecastMetrics before =
      trainer.Evaluate(model, trainer.test_sampler());
  TrainResult result = trainer.Fit(model);
  EXPECT_LT(result.test.mae, before.mae)
      << "training must beat the random init";
  EXPECT_GT(result.epochs_run, 0);
  EXPECT_GT(result.seconds_per_epoch, 0.0);
  EXPECT_EQ(result.param_count, model.ParameterCount());
  EXPECT_EQ(result.val_mae_history.size(),
            static_cast<size_t>(result.epochs_run));
}

TEST(TrainerTest, StwaModelTrainsEndToEnd) {
  data::TrafficDataset d = TinyDataset();
  TrainConfig tc = FastConfig();
  tc.epochs = 2;
  Trainer trainer(d, 12, 3, tc);
  core::StwaConfig mc;
  mc.num_sensors = d.num_sensors();
  mc.history = 12;
  mc.horizon = 3;
  mc.window_sizes = {3, 2, 2};
  mc.d_model = 8;
  mc.latent_dim = 4;
  mc.predictor_hidden = 16;
  Rng rng(2);
  core::StwaModel model(mc, &rng);
  metrics::ForecastMetrics before =
      trainer.Evaluate(model, trainer.test_sampler());
  TrainResult result = trainer.Fit(model);
  EXPECT_LT(result.test.mae, before.mae);
  EXPECT_GT(result.test.mae, 0.0);
}

TEST(TrainerTest, MaxBatchesCapsEpochWork) {
  data::TrafficDataset d = TinyDataset();
  TrainConfig tc = FastConfig();
  tc.epochs = 1;
  tc.max_batches_per_epoch = 2;
  Trainer trainer(d, 12, 3, tc);
  core::EnhancedConfig mc;
  mc.num_sensors = d.num_sensors();
  mc.history = 12;
  mc.horizon = 3;
  mc.d_model = 8;
  mc.predictor_hidden = 16;
  Rng rng(3);
  core::GruForecaster model(mc, &rng);
  TrainResult result = trainer.Fit(model);
  EXPECT_EQ(result.epochs_run, 1);
}

TEST(TrainerTest, ModelOutputShapeMismatchIsReported) {
  data::TrafficDataset d = TinyDataset();
  Trainer trainer(d, 12, 3, FastConfig());
  LastValueModel wrong_horizon(5);  // trainer expects horizon 3
  EXPECT_THROW(trainer.Evaluate(wrong_horizon, trainer.test_sampler()),
               Error);
}

TEST(GridSearchTest, PicksBestValidationCandidate) {
  data::TrafficDataset d = TinyDataset();
  Trainer trainer(d, 12, 3, FastConfig());
  // A deliberately broken candidate (wrong-scale constant model) vs a real
  // GRU: the GRU must win on validation MAE.
  std::vector<GridCandidate> candidates;
  candidates.push_back(
      {"constant-zero", [&] {
         struct Zero : ForecastModel {
           ag::Var Forward(const Tensor& x, bool) override {
             // A trainable bias far from the data keeps val MAE high for
             // the few epochs of this test.
             if (!bias_.defined()) {
               bias_ = RegisterParameter("bias",
                                         Tensor::Full({1}, 25.0f));
             }
             ag::Var tile{Tensor(Shape{x.dim(0), x.dim(1), 3, x.dim(3)})};
             return ag::Add(bias_, tile);
           }
           std::string name() const override { return "zero"; }
           ag::Var bias_;
         };
         return std::make_unique<Zero>();
       }});
  candidates.push_back({"gru-d8", [&] {
                          core::EnhancedConfig mc;
                          mc.num_sensors = d.num_sensors();
                          mc.history = 12;
                          mc.horizon = 3;
                          mc.d_model = 8;
                          mc.predictor_hidden = 16;
                          Rng rng(4);
                          return std::make_unique<core::GruForecaster>(
                              mc, &rng);
                        }});
  GridSearchResult result = GridSearch(trainer, candidates);
  EXPECT_EQ(result.best_index, 1u);
  EXPECT_EQ(result.best_label, "gru-d8");
  ASSERT_EQ(result.val_mae.size(), 2u);
  EXPECT_LT(result.val_mae[1], result.val_mae[0]);
}

TEST(GridSearchTest, EmptyGridThrows) {
  data::TrafficDataset d = TinyDataset();
  Trainer trainer(d, 12, 3, FastConfig());
  EXPECT_THROW(GridSearch(trainer, {}), Error);
}

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter table("Table T: Demo");
  table.SetHeader({"Model", "MAE", "RMSE"});
  table.AddRow({"GRU", "19.97", "32.77"});
  table.AddSeparator();
  table.AddRow({"ST-WA", "15.17", "26.63"});
  std::string s = table.Render();
  EXPECT_NE(s.find("Table T: Demo"), std::string::npos);
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("ST-WA"), std::string::npos);
  // Aligned: every data line has the same length as the header line.
  EXPECT_NE(s.find("-----"), std::string::npos);
}

}  // namespace
}  // namespace train
}  // namespace stwa
