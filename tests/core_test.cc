// Tests for the paper's core contribution: stochastic latents (Eq. 4-7),
// the parameter decoder (Eq. 8), window attention with proxies (Eq. 10-14),
// the proxy aggregator (Eq. 12-13), sensor correlation attention
// (Eq. 15-16), the full ST-WA model, and the memory model.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "common/check.h"
#include "core/enhanced_models.h"
#include "core/latent.h"
#include "core/loss.h"
#include "core/mc_forecast.h"
#include "core/memory_model.h"
#include "core/param_decoder.h"
#include "core/proxy_aggregator.h"
#include "core/sensor_attention.h"
#include "core/stwa_model.h"
#include "core/window_attention.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace stwa {
namespace core {
namespace {

LatentConfig SmallLatentConfig() {
  LatentConfig c;
  c.num_sensors = 3;
  c.history = 4;
  c.features = 1;
  c.latent_dim = 5;
  c.encoder_hidden = 8;
  return c;
}

TEST(LatentTest, ThetaShape) {
  Rng rng(1);
  StLatent latent(SmallLatentConfig(), &rng);
  Rng noise(2);
  ag::Var x(Tensor::Randn({2, 3, 4, 1}, rng));
  ag::Var theta = latent.Forward(x, /*training=*/true, noise);
  EXPECT_EQ(theta.value().shape(), (Shape{2, 3, 5}));
  EXPECT_EQ(latent.last_kl().value().size(), 1);
}

TEST(LatentTest, EvalModeIsDeterministic) {
  Rng rng(3);
  StLatent latent(SmallLatentConfig(), &rng);
  Rng noise_a(11);
  Rng noise_b(99);
  ag::Var x(Tensor::Randn({2, 3, 4, 1}, rng));
  Tensor a = latent.Forward(x, /*training=*/false, noise_a).value();
  Tensor b = latent.Forward(x, /*training=*/false, noise_b).value();
  EXPECT_TRUE(ops::AllClose(a, b, 0.0f, 0.0f))
      << "eval mode must use the mean, independent of the noise stream";
}

TEST(LatentTest, TrainingSamplesVary) {
  Rng rng(4);
  StLatent latent(SmallLatentConfig(), &rng);
  Rng noise(5);
  ag::Var x(Tensor::Randn({2, 3, 4, 1}, rng));
  Tensor a = latent.Forward(x, /*training=*/true, noise).value();
  Tensor b = latent.Forward(x, /*training=*/true, noise).value();
  EXPECT_GT(ops::MaxAbsDiff(a, b), 1e-5f)
      << "reparameterised samples must differ across draws";
}

TEST(LatentTest, SpatialModeIgnoresInputWindow) {
  LatentConfig c = SmallLatentConfig();
  c.mode = LatentMode::kSpatial;
  Rng rng(6);
  StLatent latent(c, &rng);
  Rng noise(7);
  ag::Var x1(Tensor::Randn({1, 3, 4, 1}, rng));
  ag::Var x2(Tensor::Randn({1, 3, 4, 1}, rng));
  Tensor a = latent.Forward(x1, /*training=*/false, noise).value();
  Tensor b = latent.Forward(x2, /*training=*/false, noise).value();
  EXPECT_TRUE(ops::AllClose(a, b, 0.0f, 0.0f))
      << "z^(i) is input independent";
}

TEST(LatentTest, TemporalModeReactsToInputWindow) {
  Rng rng(8);
  StLatent latent(SmallLatentConfig(), &rng);
  Rng noise(9);
  ag::Var x1(Tensor::Randn({1, 3, 4, 1}, rng));
  ag::Var x2(Tensor::Randn({1, 3, 4, 1}, rng));
  Tensor a = latent.Forward(x1, /*training=*/false, noise).value();
  Tensor b = latent.Forward(x2, /*training=*/false, noise).value();
  EXPECT_GT(ops::MaxAbsDiff(a, b), 1e-5f)
      << "z_t^(i) must adapt to the recent window";
}

TEST(LatentTest, DeterministicVariantHasZeroKl) {
  LatentConfig c = SmallLatentConfig();
  c.stochastic = false;
  Rng rng(10);
  StLatent latent(c, &rng);
  Rng noise(11);
  ag::Var x(Tensor::Randn({1, 3, 4, 1}, rng));
  Tensor a = latent.Forward(x, /*training=*/true, noise).value();
  Tensor b = latent.Forward(x, /*training=*/true, noise).value();
  EXPECT_TRUE(ops::AllClose(a, b, 0.0f, 0.0f));
  EXPECT_EQ(latent.last_kl().value().item(), 0.0f);
}

TEST(LatentTest, KlPullsTowardStandardNormal) {
  // KL of exactly N(0, I) is 0; grows with |mean| and with var away from 1.
  ag::Var mean0(Tensor::Zeros({4}), true);
  ag::Var var1(Tensor::Ones({4}), true);
  EXPECT_NEAR(GaussianKlToStdNormal(mean0, var1).value().item(), 0.0f,
              1e-6f);
  ag::Var mean2(Tensor::Full({4}, 2.0f), true);
  EXPECT_GT(GaussianKlToStdNormal(mean2, var1).value().item(), 1.0f);
  ag::Var var_small(Tensor::Full({4}, 0.01f), true);
  EXPECT_GT(GaussianKlToStdNormal(mean0, var_small).value().item(), 1.0f);
}

TEST(LatentTest, AnalyticKlMatchesMonteCarlo) {
  // KL(N(m, s^2) || N(0,1)) estimated by sampling log q(z) - log p(z).
  const float m = 0.7f;
  const float s2 = 0.5f;
  ag::Var mean(Tensor({1}, {m}), true);
  ag::Var var(Tensor({1}, {s2}), true);
  const float analytic = GaussianKlToStdNormal(mean, var).value().item();
  Rng rng(12);
  double mc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const float z = m + std::sqrt(s2) * rng.Normal();
    const float logq = -0.5f * (std::log(2.0f * 3.14159265f * s2) +
                                (z - m) * (z - m) / s2);
    const float logp = -0.5f * (std::log(2.0f * 3.14159265f) + z * z);
    mc += logq - logp;
  }
  EXPECT_NEAR(analytic, mc / n, 0.02);
}

TEST(LatentTest, GradientsReachLatentParameters) {
  Rng rng(13);
  StLatent latent(SmallLatentConfig(), &rng);
  Rng noise(14);
  ag::Var x(Tensor::Randn({2, 3, 4, 1}, rng));
  ag::Var theta = latent.Forward(x, /*training=*/true, noise);
  ag::Var loss = ag::Add(ag::SumAll(ag::Square(theta)),
                         latent.last_kl());
  loss.Backward();
  for (const auto& [name, p] : latent.NamedParameters()) {
    EXPECT_GT(ops::SumAll(ops::Abs(p.grad())).item(), 0.0f)
        << name << " got no gradient";
  }
}

// --- Decoder ---------------------------------------------------------------

TEST(DecoderTest, OutputShapeAndParamComplexity) {
  DecoderConfig dc;
  dc.latent_dim = 6;
  dc.hidden1 = 8;
  dc.hidden2 = 12;
  Rng rng(15);
  ParamDecoder dec(dc, 3, 7, &rng);
  ag::Var theta(Tensor::Randn({2, 4, 6}, rng));
  EXPECT_EQ(dec.Forward(theta).value().shape(), (Shape{2, 4, 3, 7}));
  // O(k*m1 + m1*m2 + m2*rows*cols) + biases + base: independent of N.
  const int64_t expected = (6 * 8 + 8) + (8 * 12 + 12) + 12 * 21 + 21;
  EXPECT_EQ(dec.ParameterCount(), expected);
}

TEST(DecoderTest, DistinctThetasGiveDistinctParameters) {
  DecoderConfig dc;
  dc.latent_dim = 4;
  Rng rng(16);
  ParamDecoder dec(dc, 2, 3, &rng);
  Rng data_rng(17);
  ag::Var theta(Tensor::Randn({1, 2, 4}, data_rng));
  Tensor out = dec.Forward(theta).value();
  Tensor s0 = ops::Slice(out, 1, 0, 1);
  Tensor s1 = ops::Slice(out, 1, 1, 1);
  EXPECT_GT(ops::MaxAbsDiff(s0, s1), 1e-5f)
      << "different sensors must receive different generated parameters";
}

TEST(DecoderTest, GradCheckThroughDecoder) {
  DecoderConfig dc;
  dc.latent_dim = 3;
  dc.hidden1 = 4;
  dc.hidden2 = 5;
  Rng rng(18);
  ParamDecoder dec(dc, 2, 2, &rng);
  ag::Var theta(Tensor::Randn({1, 2, 3}, rng), true);
  std::vector<ag::Var> params = dec.Parameters();
  params.push_back(theta);
  auto res = ag::CheckGradients(
      [&] { return ag::SumAll(ag::Square(dec.Forward(theta))); }, params);
  EXPECT_TRUE(res.ok) << res.message;
}

// --- Proxy aggregator ---------------------------------------------------

TEST(AggregatorTest, MeanAggregatorAverages) {
  ProxyAggregator agg(AggregatorKind::kMean, 2);
  ag::Var h(Tensor({1, 1, 2, 2}, {1, 2, 3, 4}));
  Tensor out = agg.Forward(h).value();
  EXPECT_TRUE(ops::AllClose(out, Tensor({1, 1, 2}, {2, 3})));
  EXPECT_EQ(agg.ParameterCount(), 0);
}

TEST(AggregatorTest, WeightedGateIsBounded) {
  Rng rng(19);
  ProxyAggregator agg(AggregatorKind::kWeighted, 4, &rng);
  ag::Var h(Tensor::Randn({2, 3, 5, 4}, rng));
  Tensor out = agg.Forward(h).value();
  EXPECT_EQ(out.shape(), (Shape{2, 3, 4}));
  // Output magnitude cannot exceed the sum of |proxy| values (gates <= 1).
  Tensor bound = ops::Sum(ops::Abs(h.value()), 2);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_LE(std::fabs(out.at(i)), bound.at(i) + 1e-4f);
  }
}

TEST(AggregatorTest, SingleProxyWeightedStillGates) {
  Rng rng(20);
  ProxyAggregator agg(AggregatorKind::kWeighted, 3, &rng);
  ag::Var h(Tensor::Ones({1, 1, 1, 3}));
  Tensor out = agg.Forward(h).value();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_GT(out.at(i), 0.0f);
    EXPECT_LT(out.at(i), 1.0f);
  }
}

// --- Window attention -------------------------------------------------------

WindowAttentionConfig SmallWaConfig() {
  WindowAttentionConfig c;
  c.num_sensors = 2;
  c.input_len = 6;
  c.window = 3;
  c.proxies = 2;
  c.d_in = 1;
  c.d_model = 4;
  return c;
}

TEST(WindowAttentionTest, OutputShape) {
  Rng rng(21);
  WindowAttentionLayer layer(SmallWaConfig(), &rng);
  ag::Var x(Tensor::Randn({3, 2, 6, 1}, rng));
  EXPECT_EQ(layer.Forward(x).value().shape(), (Shape{3, 2, 2, 4}));
  EXPECT_EQ(layer.num_windows(), 2);
}

TEST(WindowAttentionTest, WindowMustDivideLength) {
  WindowAttentionConfig c = SmallWaConfig();
  c.window = 4;
  EXPECT_THROW(WindowAttentionLayer layer(c), Error);
}

TEST(WindowAttentionTest, StAwareRequiresProjections) {
  WindowAttentionConfig c = SmallWaConfig();
  c.st_aware = true;
  Rng rng(22);
  WindowAttentionLayer layer(c, &rng);
  ag::Var x(Tensor::Randn({1, 2, 6, 1}, rng));
  EXPECT_THROW(layer.Forward(x), Error);
  ag::Var k(Tensor::Randn({1, 2, 1, 4}, rng));
  ag::Var v(Tensor::Randn({1, 2, 1, 4}, rng));
  EXPECT_EQ(layer.Forward(x, k, v).value().shape(), (Shape{1, 2, 2, 4}));
}

TEST(WindowAttentionTest, StaticRejectsProjections) {
  Rng rng(23);
  WindowAttentionLayer layer(SmallWaConfig(), &rng);
  ag::Var x(Tensor::Randn({1, 2, 6, 1}, rng));
  ag::Var k(Tensor::Randn({1, 2, 1, 4}, rng));
  EXPECT_THROW(layer.Forward(x, k, k), Error);
}

TEST(WindowAttentionTest, FirstWindowMatchesManualProxyAttention) {
  // With p proxies and no previous window, window 0's output must equal
  // softmax(P_0 (x_0 K)^T / sqrt(d)) (x_0 V) followed by the aggregator.
  WindowAttentionConfig c = SmallWaConfig();
  c.aggregator = AggregatorKind::kMean;  // removes the gate network
  Rng rng(24);
  WindowAttentionLayer layer(c, &rng);
  ag::Var x(Tensor::Randn({1, 2, 6, 1}, rng));
  Tensor out = layer.Forward(x).value();  // [1, 2, 2, 4]

  // Recompute window 0 for sensor 0 by hand.
  auto named = layer.NamedParameters();
  Tensor proxy;  // [W, N, p, d]
  Tensor k_w;
  Tensor v_w;
  for (const auto& [name, p] : named) {
    if (name == "proxy") proxy = p.value();
    if (name == "k_static.weight") k_w = p.value();
    if (name == "v_static.weight") v_w = p.value();
  }
  ASSERT_FALSE(proxy.empty());
  Tensor x0 = ops::Slice(ops::Slice(x.value(), 1, 0, 1), 2, 0, 3)
                  .Reshape({3, 1});                      // [S, F]
  Tensor keys = ops::MatMul2D(x0, k_w);                  // [S, d]
  Tensor values = ops::MatMul2D(x0, v_w);                // [S, d]
  Tensor p0 = ops::Slice(ops::Slice(proxy, 0, 0, 1), 1, 0, 1)
                  .Reshape({2, 4});                      // [p, d]
  Tensor scores = ops::MulScalar(
      ops::MatMul2D(p0, ops::TransposeLast2(keys)), 1.0f / 2.0f);
  Tensor h = ops::MatMul2D(ops::SoftmaxLast(scores), values);  // [p, d]
  Tensor manual = ops::Mean(h, 0);                             // [d]
  Tensor got = ops::Slice(ops::Slice(ops::Slice(out, 0, 0, 1), 1, 0, 1),
                          2, 0, 1)
                   .Reshape({4});
  EXPECT_TRUE(ops::AllClose(got, manual, 1e-4f, 1e-5f));
}

TEST(WindowAttentionTest, ChainPropagatesAcrossWindows) {
  // Perturbing window 0's input must change window 1's output (Eq. 14);
  // without chaining it could not, since attention is per window.
  Rng rng(25);
  WindowAttentionLayer layer(SmallWaConfig(), &rng);
  Tensor x1 = Tensor::Randn({1, 2, 6, 1}, rng);
  Tensor x2 = x1.Clone();
  x2({0, 0, 0, 0}) += 3.0f;  // perturb inside window 0
  Tensor y1 = layer.Forward(ag::Var(x1)).value();
  Tensor y2 = layer.Forward(ag::Var(x2)).value();
  Tensor w1_a = ops::Slice(y1, 2, 1, 1);
  Tensor w1_b = ops::Slice(y2, 2, 1, 1);
  EXPECT_GT(ops::MaxAbsDiff(w1_a, w1_b), 1e-6f)
      << "previous-window information must flow into the next window";
}

TEST(WindowAttentionTest, LaterWindowDoesNotLeakBackward) {
  Rng rng(26);
  WindowAttentionLayer layer(SmallWaConfig(), &rng);
  Tensor x1 = Tensor::Randn({1, 2, 6, 1}, rng);
  Tensor x2 = x1.Clone();
  x2({0, 0, 5, 0}) += 3.0f;  // perturb inside window 1
  Tensor y1 = layer.Forward(ag::Var(x1)).value();
  Tensor y2 = layer.Forward(ag::Var(x2)).value();
  Tensor w0_a = ops::Slice(y1, 2, 0, 1);
  Tensor w0_b = ops::Slice(y2, 2, 0, 1);
  EXPECT_LT(ops::MaxAbsDiff(w0_a, w0_b), 1e-6f)
      << "window 0 must not see window 1 (causal window chain)";
}

TEST(WindowAttentionTest, GradientsFlowToProxies) {
  Rng rng(27);
  WindowAttentionLayer layer(SmallWaConfig(), &rng);
  ag::Var x(Tensor::Randn({1, 2, 6, 1}, rng));
  ag::SumAll(ag::Square(layer.Forward(x))).Backward();
  for (const auto& [name, p] : layer.NamedParameters()) {
    EXPECT_GT(ops::SumAll(ops::Abs(p.grad())).item(), 0.0f)
        << name << " got no gradient";
  }
}

TEST(WindowAttentionTest, MultiHeadPreservesShapeAndDiffers) {
  WindowAttentionConfig c = SmallWaConfig();
  Rng rng1(91);
  WindowAttentionLayer single(c, &rng1);
  c.heads = 2;
  Rng rng2(91);
  WindowAttentionLayer multi(c, &rng2);
  Rng data_rng(92);
  ag::Var x(Tensor::Randn({2, 2, 6, 1}, data_rng));
  Tensor y1 = single.Forward(x).value();
  Tensor y2 = multi.Forward(x).value();
  EXPECT_EQ(y1.shape(), y2.shape());
  // Same parameters (same seed) but per-head softmax normalisation makes
  // the outputs differ.
  EXPECT_GT(ops::MaxAbsDiff(y1, y2), 1e-6f);
  EXPECT_EQ(single.ParameterCount(), multi.ParameterCount())
      << "heads reslice d; they add no parameters";
}

TEST(WindowAttentionTest, HeadsMustDivideModel) {
  WindowAttentionConfig c = SmallWaConfig();
  c.heads = 3;  // d_model = 4
  EXPECT_THROW(WindowAttentionLayer layer(c), Error);
}

TEST(WindowAttentionTest, MultiHeadGradientsFlow) {
  WindowAttentionConfig c = SmallWaConfig();
  c.heads = 2;
  Rng rng(93);
  WindowAttentionLayer layer(c, &rng);
  ag::Var x(Tensor::Randn({1, 2, 6, 1}, rng));
  ag::SumAll(ag::Square(layer.Forward(x))).Backward();
  for (const auto& [name, p] : layer.NamedParameters()) {
    EXPECT_GT(ops::SumAll(ops::Abs(p.grad())).item(), 0.0f)
        << name << " got no gradient";
  }
}

// Property sweep: window attention output shape over (S, p, heads).
class WaGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WaGeometrySweep, OutputShape) {
  auto [window, proxies, heads] = GetParam();
  WindowAttentionConfig c;
  c.num_sensors = 3;
  c.input_len = 12;
  c.window = window;
  c.proxies = proxies;
  c.d_in = 2;
  c.d_model = 8;
  c.heads = heads;
  Rng rng(200 + window * 10 + proxies * 3 + heads);
  WindowAttentionLayer layer(c, &rng);
  ag::Var x(Tensor::Randn({2, 3, 12, 2}, rng));
  Tensor out = layer.Forward(x).value();
  EXPECT_EQ(out.shape(), (Shape{2, 3, 12 / window, 8}));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WaGeometrySweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 12),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2)));

TEST(WindowAttentionTest, FullLayerGradCheck) {
  WindowAttentionConfig c;
  c.num_sensors = 2;
  c.input_len = 4;
  c.window = 2;
  c.proxies = 2;
  c.d_in = 1;
  c.d_model = 2;
  Rng rng(94);
  WindowAttentionLayer layer(c, &rng);
  ag::Var x(Tensor::Randn({1, 2, 4, 1}, rng), true);
  std::vector<ag::Var> params = layer.Parameters();
  params.push_back(x);
  auto res = ag::CheckGradients(
      [&] { return ag::SumAll(ag::Square(layer.Forward(x))); }, params);
  EXPECT_TRUE(res.ok) << res.message;
}

// Property sweep over latent mode x stochastic flag.
class LatentModeSweep
    : public ::testing::TestWithParam<std::tuple<LatentMode, bool>> {};

TEST_P(LatentModeSweep, ThetaShapeAndKlSign) {
  auto [mode, stochastic] = GetParam();
  LatentConfig c = SmallLatentConfig();
  c.mode = mode;
  c.stochastic = stochastic;
  Rng rng(95);
  StLatent latent(c, &rng);
  Rng noise(96);
  ag::Var x(Tensor::Randn({2, 3, 4, 1}, rng));
  ag::Var theta = latent.Forward(x, /*training=*/true, noise);
  EXPECT_EQ(theta.value().shape(), (Shape{2, 3, 5}));
  const float kl = latent.last_kl().value().item();
  if (stochastic) {
    EXPECT_GE(kl, 0.0f) << "KL divergence is non-negative";
  } else {
    EXPECT_EQ(kl, 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LatentModeSweep,
    ::testing::Combine(::testing::Values(LatentMode::kSpatial,
                                         LatentMode::kSpatioTemporal),
                       ::testing::Bool()));

// --- Sensor correlation attention ----------------------------------------

TEST(SensorAttentionTest, ShapeAndMixing) {
  Rng rng(28);
  SensorCorrelationAttention attn(4, /*st_aware=*/false, &rng);
  ag::Var h(Tensor::Randn({2, 5, 4}, rng));
  Tensor out = attn.Forward(h).value();
  EXPECT_EQ(out.shape(), (Shape{2, 5, 4}));
}

TEST(SensorAttentionTest, SensorsInfluenceEachOther) {
  Rng rng(29);
  SensorCorrelationAttention attn(4, /*st_aware=*/false, &rng);
  Tensor h1 = Tensor::Randn({1, 3, 4}, rng);
  Tensor h2 = h1.Clone();
  for (int64_t f = 0; f < 4; ++f) h2({0, 2, f}) += 2.0f;  // change sensor 2
  Tensor y1 = attn.Forward(ag::Var(h1)).value();
  Tensor y2 = attn.Forward(ag::Var(h2)).value();
  // Sensor 0's representation must change (it attends to sensor 2).
  Tensor s0_a = ops::Slice(y1, 1, 0, 1);
  Tensor s0_b = ops::Slice(y2, 1, 0, 1);
  EXPECT_GT(ops::MaxAbsDiff(s0_a, s0_b), 1e-6f);
}

TEST(SensorAttentionTest, RowsAreConvexCombinations) {
  // With softmax weights, each output lies within the convex hull of the
  // value vectors: the per-coordinate max over sensors bounds each output.
  Rng rng(30);
  SensorCorrelationAttention attn(3, /*st_aware=*/false, &rng);
  Tensor h = Tensor::Randn({1, 4, 3}, rng);
  Tensor out = attn.Forward(ag::Var(h)).value();
  Tensor mx = ops::Max(h, 1, true);   // [1, 1, 3]
  Tensor mn = ops::MulScalar(ops::Max(ops::Neg(h), 1, true), -1.0f);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t f = 0; f < 3; ++f) {
      EXPECT_LE((out({0, i, f})), (mx({0, 0, f})) + 1e-4f);
      EXPECT_GE((out({0, i, f})), (mn({0, 0, f})) - 1e-4f);
    }
  }
}

TEST(SensorAttentionTest, StAwareVariantUsesGeneratedThetas) {
  Rng rng(31);
  SensorCorrelationAttention attn(3, /*st_aware=*/true, &rng);
  ag::Var h(Tensor::Randn({1, 2, 3}, rng));
  EXPECT_THROW(attn.Forward(h), Error);
  ag::Var t1(Tensor::Randn({1, 2, 3, 3}, rng));
  ag::Var t2(Tensor::Randn({1, 2, 3, 3}, rng));
  EXPECT_EQ(attn.Forward(h, t1, t2).value().shape(), (Shape{1, 2, 3}));
  EXPECT_EQ(attn.ParameterCount(), 0) << "generated variant owns no thetas";
}

TEST(SensorAttentionTest, GradCheckStaticVariant) {
  Rng rng(97);
  SensorCorrelationAttention attn(3, /*st_aware=*/false, &rng);
  ag::Var h(Tensor::Randn({1, 3, 3}, rng), true);
  std::vector<ag::Var> params = attn.Parameters();
  params.push_back(h);
  auto res = ag::CheckGradients(
      [&] { return ag::SumAll(ag::Square(attn.Forward(h))); }, params);
  EXPECT_TRUE(res.ok) << res.message;
}

// --- Full model ----------------------------------------------------------

StwaConfig SmallModelConfig() {
  StwaConfig c;
  c.num_sensors = 4;
  c.history = 12;
  c.horizon = 3;
  c.window_sizes = {3, 2, 2};
  c.proxies = 1;
  c.d_model = 8;
  c.latent_dim = 4;
  c.encoder_hidden = 8;
  c.predictor_hidden = 16;
  return c;
}

TEST(StwaModelTest, ForwardShape) {
  Rng rng(32);
  StwaModel model(SmallModelConfig(), &rng);
  Tensor x = Tensor::Randn({2, 4, 12, 1}, rng);
  ag::Var pred = model.Forward(x, /*training=*/true);
  EXPECT_EQ(pred.value().shape(), (Shape{2, 4, 3, 1}));
  EXPECT_TRUE(model.RegularizationLoss().defined());
}

TEST(StwaModelTest, AllVariantsForwardAndName) {
  StwaConfig base = SmallModelConfig();
  const std::vector<std::pair<std::string, std::string>> variants = {
      {"WA-1", "WA-1"},          {"WA", "WA"},
      {"S-WA", "S-WA"},          {"ST-WA", "ST-WA"},
      {"Det-ST-WA", "Det-ST-WA"}, {"ST-WA-mean", "ST-WA(mean)"},
  };
  Rng data_rng(33);
  Tensor x = Tensor::Randn({1, 4, 12, 1}, data_rng);
  for (const auto& [key, expected_name] : variants) {
    Rng rng(34);
    StwaModel model(MakeVariantConfig(base, key), &rng);
    EXPECT_EQ(model.name(), expected_name);
    EXPECT_EQ(model.Forward(x, true).value().shape(), (Shape{1, 4, 3, 1}))
        << key;
  }
}

TEST(StwaModelTest, AgnosticVariantHasNoRegulariser) {
  Rng rng(35);
  StwaModel model(MakeVariantConfig(SmallModelConfig(), "WA"), &rng);
  Tensor x = Tensor::Randn({1, 4, 12, 1}, rng);
  model.Forward(x, true);
  EXPECT_FALSE(model.RegularizationLoss().defined());
}

TEST(StwaModelTest, StAwareHasMoreParamsThanAgnosticButNoNFactor) {
  StwaConfig base = SmallModelConfig();
  Rng r1(36);
  Rng r2(36);
  StwaModel agnostic(MakeVariantConfig(base, "WA"), &r1);
  StwaModel st(MakeVariantConfig(base, "ST-WA"), &r2);
  EXPECT_GT(st.ParameterCount(), agnostic.ParameterCount());
  // Doubling N must not double the ST parameters (only mu/logvar/proxies
  // scale with N, not the decoders).
  StwaConfig big = base;
  big.num_sensors = 8;
  Rng r3(36);
  StwaModel st_big(MakeVariantConfig(big, "ST-WA"), &r3);
  const int64_t delta = st_big.ParameterCount() - st.ParameterCount();
  // Extra cost per sensor: 2k (mu, logvar) + proxies (sum_l W_l * p * d).
  const int64_t per_sensor =
      2 * base.latent_dim + (4 + 2 + 1) * base.proxies * base.d_model;
  EXPECT_EQ(delta, 4 * per_sensor);
}

TEST(StwaModelTest, GradientsReachEveryParameter) {
  Rng rng(37);
  StwaModel model(SmallModelConfig(), &rng);
  Tensor x = Tensor::Randn({2, 4, 12, 1}, rng);
  Tensor y = Tensor::Randn({2, 4, 3, 1}, rng);
  ag::Var pred = model.Forward(x, true);
  ag::Var loss = ag::Add(ag::HuberLoss(pred, ag::Var(y)),
                         model.RegularizationLoss());
  loss.Backward();
  for (const auto& [name, p] : model.NamedParameters()) {
    EXPECT_GT(ops::SumAll(ops::Abs(p.grad())).item(), 0.0f)
        << name << " got no gradient";
  }
}

TEST(StwaModelTest, OverfitsTinyDataset) {
  // The full model must be able to memorise a single batch.
  Rng rng(38);
  StwaConfig c = SmallModelConfig();
  c.kl_weight = 0.0f;
  StwaModel model(c, &rng);
  Tensor x = Tensor::Randn({2, 4, 12, 1}, rng);
  Tensor y = ops::MulScalar(Tensor::Randn({2, 4, 3, 1}, rng), 0.5f);
  optim::Adam opt(model.Parameters(), 5e-3f);
  float first = -1.0f;
  float last = 0.0f;
  for (int step = 0; step < 150; ++step) {
    opt.ZeroGrad();
    ag::Var loss = ag::MseLoss(model.Forward(x, /*training=*/false),
                               ag::Var(y));
    loss.Backward();
    opt.Step();
    if (step == 0) first = loss.value().item();
    last = loss.value().item();
  }
  EXPECT_LT(last, 0.15f * first)
      << "loss should drop by >85% when overfitting one batch (from "
      << first << " to " << last << ")";
}

TEST(StwaModelTest, GeneratedProjectionsVaryAcrossSensorsAndWindows) {
  Rng rng(39);
  StwaModel model(SmallModelConfig(), &rng);
  Rng data_rng(40);
  Tensor x1 = Tensor::Randn({1, 4, 12, 1}, data_rng);
  Tensor x2 = Tensor::Randn({1, 4, 12, 1}, data_rng);
  Tensor phi1 = model.GeneratedProjections(x1, 0);
  Tensor phi2 = model.GeneratedProjections(x2, 0);
  // [N, d_in*d]; with the input embedding the first layer's generated
  // projections are d_model x d_model.
  EXPECT_EQ(phi1.shape(), (Shape{4, 8 * 8}));
  // Spatial: different sensors get different matrices.
  EXPECT_GT(ops::MaxAbsDiff(ops::Slice(phi1, 0, 0, 1),
                            ops::Slice(phi1, 0, 1, 1)),
            1e-6f);
  // Temporal: the same sensor gets different matrices for different recent
  // windows — the heart of temporal-aware modeling.
  EXPECT_GT(ops::MaxAbsDiff(phi1, phi2), 1e-6f);
}

TEST(StwaModelTest, InvalidWindowConfigThrows) {
  StwaConfig c = SmallModelConfig();
  c.window_sizes = {5};  // does not divide 12
  EXPECT_THROW(StwaModel model(c), Error);
}

TEST(McForecastTest, MeanCloseToDeterministicAndSpreadPositive) {
  Rng rng(60);
  StwaConfig c = SmallModelConfig();
  StwaModel model(c, &rng);
  Rng data_rng(61);
  Tensor x = Tensor::Randn({1, 4, 12, 1}, data_rng);
  McForecast mc = MonteCarloForecast(model, x, 24);
  EXPECT_EQ(mc.mean.shape(), (Shape{1, 4, 3, 1}));
  EXPECT_EQ(mc.stddev.shape(), (Shape{1, 4, 3, 1}));
  EXPECT_EQ(mc.num_samples, 24);
  // Spread is strictly positive somewhere (latents are sampled).
  EXPECT_GT(ops::SumAll(mc.stddev).item(), 0.0f);
  // The ensemble mean should hover near the deterministic (latent-mean)
  // forecast.
  Tensor det = model.Forward(x, /*training=*/false).value();
  EXPECT_LT(ops::MaxAbsDiff(mc.mean, det), 1.0f);
}

TEST(McForecastTest, RejectsDeterministicModels) {
  Rng rng(62);
  StwaModel agnostic(MakeVariantConfig(SmallModelConfig(), "WA"), &rng);
  Tensor x = Tensor::Zeros({1, 4, 12, 1});
  EXPECT_THROW(MonteCarloForecast(agnostic, x, 4), Error);
  StwaModel det(MakeVariantConfig(SmallModelConfig(), "Det-ST-WA"), &rng);
  EXPECT_THROW(MonteCarloForecast(det, x, 4), Error);
  StwaModel ok(SmallModelConfig(), &rng);
  EXPECT_THROW(MonteCarloForecast(ok, x, 1), Error)
      << "a single sample has no spread";
}

// --- Enhanced models ------------------------------------------------------

EnhancedConfig SmallEnhancedConfig() {
  EnhancedConfig c;
  c.num_sensors = 3;
  c.history = 6;
  c.horizon = 2;
  c.d_model = 8;
  c.latent_dim = 4;
  c.encoder_hidden = 8;
  c.predictor_hidden = 16;
  c.num_layers = 2;
  return c;
}

TEST(EnhancedTest, GruVariantsForward) {
  for (LatentMode mode : {LatentMode::kNone, LatentMode::kSpatial,
                          LatentMode::kSpatioTemporal}) {
    EnhancedConfig c = SmallEnhancedConfig();
    c.latent_mode = mode;
    Rng rng(41);
    GruForecaster model(c, &rng);
    Tensor x = Tensor::Randn({2, 3, 6, 1}, rng);
    EXPECT_EQ(model.Forward(x, true).value().shape(), (Shape{2, 3, 2, 1}));
  }
}

TEST(EnhancedTest, AttVariantsForward) {
  for (LatentMode mode : {LatentMode::kNone, LatentMode::kSpatial,
                          LatentMode::kSpatioTemporal}) {
    EnhancedConfig c = SmallEnhancedConfig();
    c.latent_mode = mode;
    Rng rng(42);
    AttForecaster model(c, &rng);
    Tensor x = Tensor::Randn({2, 3, 6, 1}, rng);
    EXPECT_EQ(model.Forward(x, true).value().shape(), (Shape{2, 3, 2, 1}));
  }
}

TEST(EnhancedTest, NamesEncodeVariant) {
  EnhancedConfig c = SmallEnhancedConfig();
  Rng rng(43);
  EXPECT_EQ(GruForecaster(c, &rng).name(), "GRU");
  c.latent_mode = LatentMode::kSpatial;
  EXPECT_EQ(GruForecaster(c, &rng).name(), "GRU+S");
  c.latent_mode = LatentMode::kSpatioTemporal;
  EXPECT_EQ(AttForecaster(c, &rng).name(), "ATT+ST");
}

TEST(EnhancedTest, StVariantsProduceRegulariser) {
  EnhancedConfig c = SmallEnhancedConfig();
  c.latent_mode = LatentMode::kSpatioTemporal;
  Rng rng(44);
  GruForecaster model(c, &rng);
  Tensor x = Tensor::Randn({1, 3, 6, 1}, rng);
  model.Forward(x, true);
  ASSERT_TRUE(model.RegularizationLoss().defined());
  EXPECT_GE(model.RegularizationLoss().value().item(), 0.0f);
}

TEST(EnhancedTest, GruGradientsFlow) {
  EnhancedConfig c = SmallEnhancedConfig();
  c.latent_mode = LatentMode::kSpatioTemporal;
  Rng rng(45);
  GruForecaster model(c, &rng);
  Tensor x = Tensor::Randn({1, 3, 6, 1}, rng);
  ag::Var pred = model.Forward(x, true);
  ag::Add(ag::SumAll(ag::Square(pred)), model.RegularizationLoss())
      .Backward();
  for (const auto& [name, p] : model.NamedParameters()) {
    EXPECT_GT(ops::SumAll(ops::Abs(p.grad())).item(), 0.0f)
        << name << " got no gradient";
  }
}

// --- Memory model -----------------------------------------------------------

TEST(MemoryModelTest, CanonicalIsQuadraticWindowIsLinearInH) {
  MemoryWorkload w;
  w.sensors = 300;
  MemoryWorkload w2 = w;
  w2.history = w.history * 4;
  const double ca1 = CanonicalAttentionGb(w);
  const double ca2 = CanonicalAttentionGb(w2);
  const double wa1 = WindowAttentionGb(w, {3, 2, 2}, 1);
  MemoryWorkload w3 = w2;
  const double wa2 = WindowAttentionGb(w3, {3, 2, 2}, 1);
  // Quadratic growth ~16x (score term dominates); linear growth ~4x.
  EXPECT_GT(ca2 / ca1, 8.0);
  EXPECT_LT(wa2 / wa1, 5.0);
  EXPECT_LT(wa1, ca1);
}

TEST(MemoryModelTest, Table6OomPatternAtPaperScale) {
  // H = U = 72 at the paper's real sensor counts: EnhanceNet and STFGNN
  // exceed 16 GB only on PEMS07 (N = 883); AGCRN and ST-WA never do.
  auto workload = [](int64_t n) {
    MemoryWorkload w;
    w.sensors = n;
    w.history = 72;
    w.horizon = 72;
    return w;
  };
  for (int64_t n : {358, 307, 170}) {
    EXPECT_FALSE(WouldOom(EnhanceNetGb(workload(n)))) << "N=" << n;
    EXPECT_FALSE(WouldOom(FusionGraphGb(workload(n)))) << "N=" << n;
  }
  EXPECT_TRUE(WouldOom(EnhanceNetGb(workload(883))));
  EXPECT_TRUE(WouldOom(FusionGraphGb(workload(883))));
  for (int64_t n : {358, 307, 170, 883}) {
    EXPECT_FALSE(WouldOom(AdaptiveGraphRnnGb(workload(n)))) << "N=" << n;
    EXPECT_FALSE(WouldOom(WindowAttentionGb(workload(n), {6, 6}, 2)))
        << "N=" << n;
  }
}

TEST(MemoryModelTest, SlidingWindowBetweenFullAndWindowAttention) {
  MemoryWorkload w;
  w.sensors = 300;
  w.history = 72;
  const double full = CanonicalAttentionGb(w);
  const double sliding = SlidingWindowAttentionGb(w, 12);
  const double window = WindowAttentionGb(w, {6, 6}, 2);
  EXPECT_LT(sliding, full);
  EXPECT_LT(window, sliding);
}

}  // namespace
}  // namespace core
}  // namespace stwa
