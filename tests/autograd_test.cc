// Gradient correctness tests: every differentiable op is verified against
// central finite differences, plus composite expressions and broadcast
// backward reductions.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "common/check.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace stwa {
namespace ag {
namespace {

Var RandParam(Shape shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(std::move(shape), rng);
  if (scale != 1.0f) t = ops::MulScalar(t, scale);
  return Parameter(std::move(t));
}

void ExpectGradOk(const std::function<Var()>& fn,
                  const std::vector<Var>& params) {
  GradCheckResult res = CheckGradients(fn, params);
  EXPECT_TRUE(res.ok) << res.message
                      << " (max_abs_error=" << res.max_abs_error << ")";
}

TEST(AutogradBasics, BackwardOfSumIsOnes) {
  Var x = RandParam({2, 3}, 1);
  Var loss = SumAll(x);
  loss.Backward();
  EXPECT_TRUE(ops::AllClose(x.grad(), Tensor::Ones({2, 3}), 0.0f, 0.0f));
}

TEST(AutogradBasics, GradAccumulatesAcrossUses) {
  Var x = RandParam({2}, 2);
  // loss = sum(x) + sum(x) => grad = 2.
  Var loss = Add(SumAll(x), SumAll(x));
  loss.Backward();
  EXPECT_TRUE(ops::AllClose(x.grad(), Tensor::Full({2}, 2.0f), 0.0f, 0.0f));
}

TEST(AutogradBasics, BackwardOnNonScalarThrows) {
  Var x = RandParam({2}, 3);
  EXPECT_THROW(x.Backward(), Error);
}

TEST(AutogradBasics, DetachCutsTape) {
  Var x = RandParam({2}, 4);
  Var y = MulScalar(x, 3.0f).Detach();
  EXPECT_FALSE(y.requires_grad());
  Var z = Add(SumAll(x), SumAll(y));
  z.Backward();
  EXPECT_TRUE(ops::AllClose(x.grad(), Tensor::Ones({2}), 0.0f, 0.0f));
}

TEST(AutogradBasics, ConstantInputsPruneTape) {
  Var c(Tensor::Ones({3}));
  Var d(Tensor::Ones({3}));
  Var sum = Add(c, d);
  EXPECT_FALSE(sum.requires_grad());
  EXPECT_TRUE(sum.node()->parents.empty()) << "tape should be pruned";
}

TEST(AutogradBasics, DiamondGraphGradIsCorrect) {
  // y = a*a; loss = sum(y + y) — node y consumed twice.
  Var a = RandParam({3}, 5);
  ExpectGradOk(
      [&] {
        Var y = Mul(a, a);
        return SumAll(Add(y, y));
      },
      {a});
}

TEST(AutogradBasics, DeepChainDoesNotOverflow) {
  // 3000 chained adds exercise the iterative topological sort.
  Var x = RandParam({1}, 6);
  Var h = x;
  for (int i = 0; i < 3000; ++i) h = AddScalar(h, 0.001f);
  Var loss = SumAll(h);
  loss.Backward();
  EXPECT_NEAR(x.grad().at(0), 1.0f, 1e-5f);
}

// --- Per-op gradient checks -------------------------------------------------

TEST(AutogradGrad, Add) {
  Var a = RandParam({2, 3}, 10);
  Var b = RandParam({2, 3}, 11);
  ExpectGradOk([&] { return SumAll(Mul(Add(a, b), Add(a, b))); }, {a, b});
}

TEST(AutogradGrad, AddBroadcast) {
  Var a = RandParam({2, 3}, 12);
  Var b = RandParam({3}, 13);
  ExpectGradOk([&] { return SumAll(Square(Add(a, b))); }, {a, b});
}

TEST(AutogradGrad, SubBroadcastColumn) {
  Var a = RandParam({2, 3}, 14);
  Var b = RandParam({2, 1}, 15);
  ExpectGradOk([&] { return SumAll(Square(Sub(a, b))); }, {a, b});
}

TEST(AutogradGrad, MulBroadcastBoth) {
  Var a = RandParam({2, 1}, 16);
  Var b = RandParam({1, 3}, 17);
  ExpectGradOk([&] { return SumAll(Square(Mul(a, b))); }, {a, b});
}

TEST(AutogradGrad, Div) {
  Var a = RandParam({2, 2}, 18);
  // Keep denominators away from zero.
  Var b = Parameter(ops::AddScalar(ops::Abs(RandParam({2, 2}, 19).value()),
                                   1.0f));
  ExpectGradOk([&] { return SumAll(Div(a, b)); }, {a, b});
}

TEST(AutogradGrad, ScalarOps) {
  Var a = RandParam({4}, 20);
  ExpectGradOk([&] { return SumAll(MulScalar(AddScalar(a, 2.0f), 3.0f)); },
               {a});
}

TEST(AutogradGrad, ExpLogSqrt) {
  Var a = Parameter(ops::AddScalar(ops::Abs(RandParam({5}, 21).value()),
                                   0.5f));
  ExpectGradOk([&] { return SumAll(Exp(MulScalar(a, 0.3f))); }, {a});
  ExpectGradOk([&] { return SumAll(Log(a)); }, {a});
  ExpectGradOk([&] { return SumAll(Sqrt(a)); }, {a});
}

TEST(AutogradGrad, SquareTanhSigmoid) {
  Var a = RandParam({6}, 22);
  ExpectGradOk([&] { return SumAll(Square(a)); }, {a});
  ExpectGradOk([&] { return SumAll(Tanh(a)); }, {a});
  ExpectGradOk([&] { return SumAll(Sigmoid(a)); }, {a});
}

TEST(AutogradGrad, ReluAwayFromKink) {
  // Offset values away from 0 where the subgradient is ambiguous.
  Rng rng(23);
  Tensor t = Tensor::Randn({8}, rng);
  for (int64_t i = 0; i < t.size(); ++i) {
    if (std::fabs(t.at(i)) < 0.2f) t.at(i) += t.at(i) >= 0 ? 0.3f : -0.3f;
  }
  Var a = Parameter(t);
  ExpectGradOk([&] { return SumAll(Relu(a)); }, {a});
}

TEST(AutogradGrad, AbsAwayFromKink) {
  Rng rng(24);
  Tensor t = Tensor::Randn({8}, rng);
  for (int64_t i = 0; i < t.size(); ++i) {
    if (std::fabs(t.at(i)) < 0.2f) t.at(i) += t.at(i) >= 0 ? 0.3f : -0.3f;
  }
  Var a = Parameter(t);
  ExpectGradOk([&] { return SumAll(Abs(a)); }, {a});
}

TEST(AutogradGrad, MatMul2D) {
  Var a = RandParam({3, 4}, 25, 0.5f);
  Var b = RandParam({4, 2}, 26, 0.5f);
  ExpectGradOk([&] { return SumAll(Square(MatMul(a, b))); }, {a, b});
}

TEST(AutogradGrad, MatMulBatchedSharedRhs) {
  Var a = RandParam({2, 3, 4}, 27, 0.5f);
  Var w = RandParam({4, 2}, 28, 0.5f);
  ExpectGradOk([&] { return SumAll(Square(MatMul(a, w))); }, {a, w});
}

TEST(AutogradGrad, MatMulBatchedBroadcast) {
  Var a = RandParam({2, 1, 3, 4}, 29, 0.5f);
  Var b = RandParam({1, 2, 4, 2}, 30, 0.5f);
  ExpectGradOk([&] { return SumAll(Square(MatMul(a, b))); }, {a, b});
}

TEST(AutogradGrad, TransposeAndPermute) {
  Var a = RandParam({2, 3, 4}, 31);
  ExpectGradOk([&] { return SumAll(Square(TransposeLast2(a))); }, {a});
  ExpectGradOk([&] { return SumAll(Square(Permute(a, {2, 0, 1}))); }, {a});
}

TEST(AutogradGrad, ReshapeSliceConcat) {
  Var a = RandParam({2, 6}, 32);
  ExpectGradOk([&] { return SumAll(Square(Reshape(a, {3, 4}))); }, {a});
  ExpectGradOk([&] { return SumAll(Square(Slice(a, 1, 2, 3))); }, {a});
  Var b = RandParam({2, 2}, 33);
  ExpectGradOk(
      [&] { return SumAll(Square(Concat({Slice(a, 1, 0, 2), b}, 1))); },
      {a, b});
}

TEST(AutogradGrad, StackAndIndexSelect) {
  Var a = RandParam({3}, 34);
  Var b = RandParam({3}, 35);
  ExpectGradOk([&] { return SumAll(Square(Stack({a, b}))); }, {a, b});
  Var table = RandParam({4, 3}, 36);
  ExpectGradOk(
      [&] { return SumAll(Square(IndexSelect0(table, {1, 3, 1}))); },
      {table});
}

TEST(AutogradGrad, Reductions) {
  Var a = RandParam({3, 4}, 37);
  ExpectGradOk([&] { return MeanAll(Square(a)); }, {a});
  ExpectGradOk([&] { return SumAll(Square(Sum(a, 0))); }, {a});
  ExpectGradOk([&] { return SumAll(Square(Sum(a, 1, true))); }, {a});
  ExpectGradOk([&] { return SumAll(Square(Mean(a, -1))); }, {a});
}

TEST(AutogradGrad, Softmax) {
  Var a = RandParam({3, 5}, 38);
  Var target(Tensor::Rand({3, 5}, GlobalRng()));
  ExpectGradOk([&] { return SumAll(Square(Sub(SoftmaxLast(a), target))); },
               {a});
}

TEST(AutogradGrad, Losses) {
  Var pred = RandParam({4, 3}, 39);
  Var target(Tensor::Randn({4, 3}, GlobalRng()));
  ExpectGradOk([&] { return MseLoss(pred, target); }, {pred});
  ExpectGradOk([&] { return HuberLoss(pred, target, 0.7f); }, {pred});
}

TEST(AutogradGrad, HuberMatchesMseInQuadraticRegion) {
  // With delta much larger than any |error|, Huber == 0.5 * MSE.
  Rng rng(40);
  Var pred = Parameter(ops::MulScalar(Tensor::Randn({5}, rng), 0.1f));
  Var target(ops::MulScalar(Tensor::Randn({5}, rng), 0.1f));
  float huber = HuberLoss(pred, target, 100.0f).value().item();
  float mse = MseLoss(pred, target).value().item();
  EXPECT_NEAR(huber, 0.5f * mse, 1e-6f);
}

TEST(AutogradGrad, HuberIsLinearFarOutside) {
  Var pred = Parameter(Tensor({1}, {10.0f}));
  Var target(Tensor({1}, {0.0f}));
  // delta*(|e| - delta/2) with delta=1, e=10 → 9.5
  EXPECT_NEAR(HuberLoss(pred, target, 1.0f).value().item(), 9.5f, 1e-5f);
}

TEST(AutogradGrad, CompositeExpression) {
  // A small MLP-like composite: softmax(tanh(x W1) W2) compared to target.
  Var x = RandParam({2, 4}, 41, 0.5f);
  Var w1 = RandParam({4, 8}, 42, 0.5f);
  Var w2 = RandParam({8, 3}, 43, 0.5f);
  Var target(Tensor::Rand({2, 3}, GlobalRng()));
  ExpectGradOk(
      [&] {
        Var h = Tanh(MatMul(x, w1));
        Var y = SoftmaxLast(MatMul(h, w2));
        return MseLoss(y, target);
      },
      {x, w1, w2});
}

TEST(AutogradDropout, IdentityInEval) {
  Rng rng(44);
  Var a = RandParam({10}, 45);
  Var out = Dropout(a, 0.5f, /*training=*/false, rng);
  EXPECT_TRUE(ops::AllClose(out.value(), a.value(), 0.0f, 0.0f));
}

TEST(AutogradDropout, ZeroesAndRescalesInTraining) {
  Rng rng(46);
  Var a(Tensor::Ones({1000}), true);
  Var out = Dropout(a, 0.25f, /*training=*/true, rng);
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < 1000; ++i) {
    float v = out.value().at(i);
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5f);
    }
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.25, 0.06);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.08) << "inverted dropout keeps the mean";
}

// Parameterised sweep: gradcheck SoftmaxLast over varying widths.
class SoftmaxWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxWidthSweep, Gradients) {
  const int width = GetParam();
  Var a = RandParam({2, width}, 100 + width);
  ExpectGradOk([&] { return SumAll(Square(SoftmaxLast(a))); }, {a});
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxWidthSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace ag
}  // namespace stwa
