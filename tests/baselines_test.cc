// Tests for the eleven baseline models and the registry: construction,
// forward shapes, gradient flow, determinism, and light convergence checks.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/agcrn.h"
#include "baselines/common.h"
#include "baselines/gwn.h"
#include "baselines/registry.h"
#include "baselines/stfgnn.h"
#include "baselines/var.h"
#include "common/check.h"
#include "data/traffic_generator.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace stwa {
namespace baselines {
namespace {

const data::TrafficDataset& SharedDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::GeneratorOptions o;
    o.num_roads = 2;
    o.sensors_per_road = 3;
    o.num_days = 3;
    o.steps_per_day = 96;
    o.seed = 5;
    return new data::TrafficDataset(data::GenerateTraffic(o));
  }();
  return *dataset;
}

ModelSettings SmallSettings() {
  ModelSettings s;
  s.history = 12;
  s.horizon = 4;
  s.d_model = 8;
  s.num_layers = 2;
  s.predictor_hidden = 16;
  s.latent_dim = 4;
  return s;
}

// --- Common helpers -----------------------------------------------------

TEST(CommonTest, GraphMixAppliesAdjacency) {
  Tensor a({2, 2}, {0.0f, 1.0f, 1.0f, 0.0f});  // swap two nodes
  ag::Var h(Tensor({1, 2, 3}, {1, 2, 3, 4, 5, 6}));
  Tensor out = GraphMix(a, h).value();
  EXPECT_TRUE(ops::AllClose(out, Tensor({1, 2, 3}, {4, 5, 6, 1, 2, 3})));
}

TEST(CommonTest, TemporalConvLengthAndValues) {
  Rng rng(1);
  TemporalConv conv(1, 1, /*taps=*/2, /*dilation=*/1, &rng);
  // Set taps to [1], [2] and bias 0: out[t] = x[t] + 2 x[t+1].
  auto params = conv.NamedParameters();
  params[0].second.node()->value.CopyDataFrom(Tensor({1, 1}, {1.0f}));
  params[1].second.node()->value.CopyDataFrom(Tensor({1, 1}, {2.0f}));
  ag::Var x(Tensor({1, 1, 3, 1}, {1, 2, 3}));
  Tensor out = conv.Forward(x).value();
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 1}));
  EXPECT_EQ(out.at(0), 5.0f);   // 1 + 2*2
  EXPECT_EQ(out.at(1), 8.0f);   // 2 + 2*3
}

TEST(CommonTest, DilatedConvSkipsSteps) {
  Rng rng(2);
  TemporalConv conv(1, 1, /*taps=*/2, /*dilation=*/2, &rng);
  auto params = conv.NamedParameters();
  params[0].second.node()->value.CopyDataFrom(Tensor({1, 1}, {1.0f}));
  params[1].second.node()->value.CopyDataFrom(Tensor({1, 1}, {1.0f}));
  ag::Var x(Tensor({1, 1, 5, 1}, {1, 2, 3, 4, 5}));
  Tensor out = conv.Forward(x).value();
  EXPECT_EQ(out.shape(), (Shape{1, 1, 3, 1}));
  EXPECT_EQ(out.at(0), 4.0f);  // x[0] + x[2]
  EXPECT_EQ(out.at(2), 8.0f);  // x[2] + x[4]
}

TEST(CommonTest, TemporalConvTooShortThrows) {
  TemporalConv conv(1, 1, 4, 1);
  ag::Var x(Tensor::Zeros({1, 1, 3, 1}));
  EXPECT_THROW(conv.Forward(x), Error);
}

// --- Every model through the registry ------------------------------------

class ModelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelSweep, ForwardShapeIsCorrect) {
  const data::TrafficDataset& d = SharedDataset();
  ModelSettings s = SmallSettings();
  auto model = MakeModel(GetParam(), d, s);
  Rng rng(3);
  Tensor x = Tensor::Randn({2, d.num_sensors(), s.history, 1}, rng);
  ag::Var pred = model->Forward(x, /*training=*/true);
  EXPECT_EQ(pred.value().shape(),
            (Shape{2, d.num_sensors(), s.horizon, 1}));
}

TEST_P(ModelSweep, GradientsFlowToEveryParameter) {
  const data::TrafficDataset& d = SharedDataset();
  ModelSettings s = SmallSettings();
  auto model = MakeModel(GetParam(), d, s);
  Rng rng(4);
  Tensor x = Tensor::Randn({1, d.num_sensors(), s.history, 1}, rng);
  ag::Var pred = model->Forward(x, /*training=*/true);
  ag::Var loss = ag::SumAll(ag::Square(pred));
  ag::Var reg = model->RegularizationLoss();
  if (reg.defined()) loss = ag::Add(loss, reg);
  loss.Backward();
  for (const auto& [name, p] : model->NamedParameters()) {
    EXPECT_GT(ops::SumAll(ops::Abs(p.grad())).item(), 0.0f)
        << GetParam() << ": " << name << " got no gradient";
  }
}

TEST_P(ModelSweep, EvalForwardIsDeterministic) {
  const data::TrafficDataset& d = SharedDataset();
  ModelSettings s = SmallSettings();
  auto model = MakeModel(GetParam(), d, s);
  Rng rng(5);
  Tensor x = Tensor::Randn({1, d.num_sensors(), s.history, 1}, rng);
  Tensor a = model->Forward(x, /*training=*/false).value();
  Tensor b = model->Forward(x, /*training=*/false).value();
  EXPECT_TRUE(ops::AllClose(a, b, 0.0f, 0.0f)) << GetParam();
}

TEST_P(ModelSweep, FewStepsReduceLossOnFixedBatch) {
  const data::TrafficDataset& d = SharedDataset();
  ModelSettings s = SmallSettings();
  auto model = MakeModel(GetParam(), d, s);
  Rng rng(6);
  Tensor x = Tensor::Randn({2, d.num_sensors(), s.history, 1}, rng);
  Tensor y = ops::MulScalar(Tensor::Randn({2, d.num_sensors(), s.horizon,
                                           1},
                                          rng),
                            0.5f);
  optim::Adam opt(model->Parameters(), 5e-3f);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    opt.ZeroGrad();
    ag::Var loss = ag::MseLoss(model->Forward(x, /*training=*/false),
                               ag::Var(y));
    loss.Backward();
    opt.Step();
    if (step == 0) first = loss.value().item();
    last = loss.value().item();
  }
  EXPECT_LT(last, first) << GetParam()
                         << " did not reduce the loss in 30 steps";
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelSweep,
    ::testing::Values("LongFormer", "DCRNN", "STGCN", "STG2Seq", "GWN",
                      "STSGCN", "ASTGNN", "STFGNN", "EnhanceNet", "AGCRN",
                      "meta-LSTM", "ST-WA", "S-WA", "WA", "WA-1",
                      "Det-ST-WA", "ST-WA-mean", "GRU", "GRU+S", "GRU+ST",
                      "ATT", "ATT+S", "ATT+ST", "VAR"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(MakeModel("NoSuchModel", SharedDataset(), SmallSettings()),
               Error);
}

TEST(RegistryTest, AllBaselineNamesAreConstructible) {
  for (const std::string& name : AllBaselineNames()) {
    EXPECT_NO_THROW(MakeModel(name, SharedDataset(), SmallSettings()))
        << name;
  }
  EXPECT_EQ(AllBaselineNames().size(), 11u) << "the paper has 11 baselines";
}

TEST(RegistryTest, SameSeedSameInit) {
  ModelSettings s = SmallSettings();
  auto a = MakeModel("DCRNN", SharedDataset(), s);
  auto b = MakeModel("DCRNN", SharedDataset(), s);
  auto pa = a->Parameters();
  auto pb = b->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(pa[i].value(), pb[i].value(), 0.0f, 0.0f));
  }
}

TEST(VarTest, IsExactlyLinear) {
  // f(a x1 + b x2) - f(0) == a (f(x1) - f(0)) + b (f(x2) - f(0)).
  BaselineConfig c;
  c.num_sensors = 3;
  c.history = 4;
  c.horizon = 2;
  Rng rng(50);
  VarModel model(c, &rng);
  Tensor zero = Tensor::Zeros({1, 3, 4, 1});
  Tensor x1 = Tensor::Randn({1, 3, 4, 1}, rng);
  Tensor x2 = Tensor::Randn({1, 3, 4, 1}, rng);
  Tensor f0 = model.Forward(zero, false).value();
  Tensor f1 = ops::Sub(model.Forward(x1, false).value(), f0);
  Tensor f2 = ops::Sub(model.Forward(x2, false).value(), f0);
  Tensor combo = ops::Add(ops::MulScalar(x1, 2.0f),
                          ops::MulScalar(x2, -0.5f));
  Tensor fc = ops::Sub(model.Forward(combo, false).value(), f0);
  Tensor expected = ops::Add(ops::MulScalar(f1, 2.0f),
                             ops::MulScalar(f2, -0.5f));
  EXPECT_TRUE(ops::AllClose(fc, expected, 1e-3f, 1e-4f));
}

// --- Model-specific behaviours ---------------------------------------------

TEST(GwnTest, AdaptiveAdjacencyIsRowStochastic) {
  BaselineConfig c;
  c.num_sensors = 5;
  c.history = 12;
  c.horizon = 3;
  c.d_model = 8;
  c.num_layers = 2;
  c.predictor_hidden = 16;
  Rng rng(7);
  GraphWaveNet gwn(c, &rng);
  Tensor adj = gwn.AdaptiveAdjacency();
  ASSERT_EQ(adj.shape(), (Shape{5, 5}));
  for (int64_t i = 0; i < 5; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_GE((adj({i, j})), 0.0f);
      row += adj({i, j});
    }
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(StfgnnTest, TemporalGraphConnectsSimilarProfiles) {
  // Two groups of sensors with very different daily profiles: the
  // similarity graph should connect within groups, not across.
  const int64_t n = 6;
  const int64_t spd = 48;
  Tensor values(Shape{n, spd * 2, 1});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t t = 0; t < spd * 2; ++t) {
      const float phase = 2.0f * 3.14159265f * (t % spd) / spd;
      values({i, t, 0}) =
          i < 3 ? std::sin(phase) : std::cos(2.0f * phase);
    }
  }
  Tensor g = TemporalSimilarityGraph(values, spd, /*top_k=*/2);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 3; j < 6; ++j) {
      EXPECT_EQ((g({i, j})), 0.0f) << i << "-" << j;
      EXPECT_EQ((g({j, i})), 0.0f) << j << "-" << i;
    }
  }
  // Each sensor has exactly top_k outgoing edges.
  for (int64_t i = 0; i < n; ++i) {
    float out_deg = 0.0f;
    for (int64_t j = 0; j < n; ++j) out_deg += g({i, j});
    EXPECT_EQ(out_deg, 2.0f);
  }
}

TEST(AgcrnTest, NodeEmbeddingsDriveDistinctBehaviour) {
  BaselineConfig c;
  c.num_sensors = 4;
  c.history = 6;
  c.horizon = 2;
  c.d_model = 8;
  c.predictor_hidden = 16;
  Rng rng(8);
  Agcrn model(c, &rng);
  // Identical inputs for every sensor must still produce different
  // predictions per sensor (NAPL weights differ) — the spatial-aware
  // property the paper's Table II assigns to AGCRN.
  Tensor x(Shape{1, 4, 6, 1});
  for (int64_t t = 0; t < 6; ++t) {
    for (int64_t i = 0; i < 4; ++i) x({0, i, t, 0}) = 0.3f * t;
  }
  Tensor pred = model.Forward(x, false).value();
  Tensor s0 = ops::Slice(pred, 1, 0, 1);
  Tensor s1 = ops::Slice(pred, 1, 1, 1);
  EXPECT_GT(ops::MaxAbsDiff(s0, s1), 1e-6f);
}

}  // namespace
}  // namespace baselines
}  // namespace stwa
