// Tests for the pooled tensor-buffer allocator: counter behaviour, buffer
// recycling safety under a randomized tensor workload, and the headline
// guarantee that training results are bit-identical with the pool on or
// off, at any thread count.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/rng.h"
#include "data/traffic_generator.h"
#include "runtime/parallel.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "train/trainer.h"

namespace stwa {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = pool::Enabled();
    pool::SetEnabled(true);
    pool::Trim();
    pool::ResetStats();
  }
  void TearDown() override {
    pool::SetEnabled(was_enabled_);
    pool::Trim();
  }
  bool was_enabled_ = false;
};

TEST_F(PoolTest, AcquireReturnsBigEnoughBuffer) {
  for (int64_t n : {1, 7, 255, 256, 257, 5000, 100000}) {
    auto buf = pool::Acquire(n);
    ASSERT_NE(buf, nullptr);
    EXPECT_GE(static_cast<int64_t>(buf->size()), n);
  }
}

TEST_F(PoolTest, BuffersAre64ByteAligned) {
  // Every acquired buffer must start on a 64-byte boundary (a cache line,
  // and a full vector for any SIMD tier) across all bucket sizes — and
  // with the pool disabled, since the SIMD kernels assume the guarantee
  // unconditionally.
  for (const bool pool_on : {true, false}) {
    pool::SetEnabled(pool_on);
    for (int64_t n : {1, 7, 255, 256, 257, 5000, 100000}) {
      auto buf = pool::Acquire(n);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(buf->data()) % 64, 0u)
          << "n=" << n << " pool_on=" << pool_on;
    }
  }
}

TEST_F(PoolTest, TensorStorageIs64ByteAligned) {
  // All Tensor construction paths route through pooled aligned storage,
  // including the explicit-values constructor (which copies rather than
  // adopting the caller's unaligned vector).
  auto aligned = [](const Tensor& t) {
    return reinterpret_cast<uintptr_t>(t.data()) % 64 == 0;
  };
  EXPECT_TRUE(aligned(Tensor(Shape{3, 5})));
  EXPECT_TRUE(aligned(Tensor::Uninit(Shape{129})));
  EXPECT_TRUE(aligned(Tensor(Shape{4}, std::vector<float>{1, 2, 3, 4})));
  EXPECT_TRUE(aligned(Tensor{1.0f, 2.0f, 3.0f}));
  Rng rng(5);
  EXPECT_TRUE(aligned(Tensor::Randn({17, 3}, rng)));
}

TEST_F(PoolTest, ReleasedBufferIsRecycled) {
  float* first = nullptr;
  {
    auto buf = pool::Acquire(1000);
    first = buf->data();
  }  // released back to the free list
  auto buf2 = pool::Acquire(1000);
  EXPECT_EQ(buf2->data(), first);
  const pool::PoolStats s = pool::Stats();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST_F(PoolTest, CountersTrackOutstandingBytes) {
  const pool::PoolStats before = pool::Stats();
  auto buf = pool::Acquire(1 << 12);
  const pool::PoolStats during = pool::Stats();
  EXPECT_GT(during.outstanding_bytes, before.outstanding_bytes);
  EXPECT_GE(during.peak_outstanding_bytes, during.outstanding_bytes);
  buf.reset();
  const pool::PoolStats after = pool::Stats();
  EXPECT_EQ(after.outstanding_bytes, before.outstanding_bytes);
}

TEST_F(PoolTest, DisabledPoolStillServesBuffers) {
  pool::SetEnabled(false);
  float* first = nullptr;
  {
    auto buf = pool::Acquire(1000);
    first = buf->data();
    EXPECT_GE(buf->size(), 1000u);
    (void)first;
  }
  // No recycling guarantee when disabled; just correctness of the handle.
  auto buf2 = pool::Acquire(1000);
  EXPECT_GE(buf2->size(), 1000u);
}

TEST_F(PoolTest, TrimFreesIdleBuffers) {
  { auto a = pool::Acquire(4096); }
  EXPECT_GT(pool::Stats().pooled_bytes, 0u);
  pool::Trim();
  EXPECT_EQ(pool::Stats().pooled_bytes, 0u);
}

// Randomized stress: interleaves tensor allocation, destruction, cloning,
// slicing and arithmetic, and asserts the pool never hands out a buffer
// that is still referenced by a live tensor.
TEST_F(PoolTest, StressNeverAliasesLiveBuffers) {
  Rng rng(1234);
  std::vector<Tensor> live;
  // data() pointer -> number of live tensors sharing that buffer.
  std::unordered_map<const float*, int> refcount;

  auto track = [&](Tensor t) {
    const float* p = t.data();
    if (p != nullptr) ++refcount[p];
    live.push_back(std::move(t));
  };
  auto untrack = [&](size_t idx) {
    const float* p = live[idx].data();
    if (p != nullptr) {
      auto it = refcount.find(p);
      ASSERT_NE(it, refcount.end());
      if (--it->second == 0) refcount.erase(it);
    }
    live.erase(live.begin() + static_cast<int64_t>(idx));
  };
  // A fresh allocation must not be backed by a buffer some live tensor
  // still references (shared copies are tracked and therefore allowed).
  auto assert_fresh = [&](const Tensor& t) {
    ASSERT_TRUE(refcount.find(t.data()) == refcount.end())
        << "pool handed out a live buffer";
  };

  for (int step = 0; step < 2000; ++step) {
    const uint64_t action = static_cast<uint64_t>(rng.UniformInt(6));
    const int64_t n = 1 + static_cast<int64_t>(static_cast<uint64_t>(rng.UniformInt(4000)));
    if (action == 0 || live.empty()) {
      Tensor t = Tensor::Uninit({n});
      assert_fresh(t);
      track(std::move(t));
    } else if (action == 1) {
      untrack(static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(live.size()))));
    } else if (action == 2) {
      const Tensor& src = live[static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(live.size())))];
      Tensor c = src.Clone();
      if (!src.empty()) {
        ASSERT_NE(c.data(), src.data());
        assert_fresh(c);
      }
      track(std::move(c));
    } else if (action == 3) {
      // Shared copy: aliases the same buffer by design.
      track(live[static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(live.size())))]);
    } else if (action == 4) {
      const Tensor& src = live[static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(live.size())))];
      if (src.rank() == 1 && src.size() >= 2) {
        Tensor s = ops::Slice(src, 0, 0, src.size() / 2);
        assert_fresh(s);
        track(std::move(s));
      }
    } else {
      const Tensor& src = live[static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(live.size())))];
      if (!src.empty()) {
        Tensor r = ops::MulScalar(src, 2.0f);
        assert_fresh(r);
        track(std::move(r));
      }
    }
    if (live.size() > 64) untrack(static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(live.size()))));
  }
}

// The headline determinism guarantee: a short ST-WA training run produces
// bit-identical losses and metrics with the pool on vs off, at one worker
// thread and at four.
TEST(PoolDeterminismTest, TrainingBitIdenticalPoolOnOffAcrossThreads) {
  data::GeneratorOptions o;
  o.num_roads = 2;
  o.sensors_per_road = 2;
  o.num_days = 5;
  o.steps_per_day = 96;
  o.seed = 77;
  data::TrafficDataset dataset = data::GenerateTraffic(o);

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 3;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  settings.seed = 7;

  train::TrainConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  config.stride = 4;
  config.eval_stride = 4;

  const bool pool_was_enabled = pool::Enabled();
  std::vector<std::vector<double>> histories;
  std::vector<double> maes, rmses;
  for (int threads : {1, 4}) {
    for (const bool pool_on : {true, false}) {
      pool::SetEnabled(pool_on);
      config.num_threads = threads;
      auto model = baselines::MakeModel("ST-WA", dataset, settings);
      train::Trainer trainer(dataset, settings.history, settings.horizon,
                             config);
      train::TrainResult r = trainer.Fit(*model);
      histories.push_back(r.val_mae_history);
      maes.push_back(r.test.mae);
      rmses.push_back(r.test.rmse);
    }
  }
  pool::SetEnabled(pool_was_enabled);
  runtime::SetNumThreads(0);

  for (size_t i = 1; i < histories.size(); ++i) {
    ASSERT_EQ(histories[i].size(), histories[0].size());
    for (size_t e = 0; e < histories[0].size(); ++e) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(histories[i][e], histories[0][e])
          << "config " << i << " epoch " << e;
    }
    EXPECT_EQ(maes[i], maes[0]) << "config " << i;
    EXPECT_EQ(rmses[i], rmses[0]) << "config " << i;
  }
}

}  // namespace
}  // namespace stwa
