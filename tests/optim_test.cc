// Optimizer behaviour: convergence on convex problems, clipping, early
// stopping semantics.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "optim/early_stopping.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace stwa {
namespace optim {
namespace {

// Minimise ||x - target||^2 with the given optimizer; returns final distance.
template <typename Opt, typename... Args>
float MinimiseQuadratic(int steps, Args&&... args) {
  ag::Var x = ag::Parameter(Tensor({3}, {5.0f, -4.0f, 2.0f}));
  Tensor target({3}, {1.0f, 2.0f, 3.0f});
  Opt opt({x}, std::forward<Args>(args)...);
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    ag::Var loss = ag::SumAll(ag::Square(ag::Sub(x, ag::Var(target))));
    loss.Backward();
    opt.Step();
  }
  return ops::MaxAbsDiff(x.value(), target);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimiseQuadratic<Sgd>(200, 0.1f), 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  EXPECT_LT(MinimiseQuadratic<Sgd>(200, 0.05f, 0.9f), 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  EXPECT_LT(MinimiseQuadratic<Adam>(800, 0.05f), 1e-2f);
}

TEST(AdamTest, FitsLinearRegression) {
  // y = X w* + b*; recover w*, b* with Adam on MSE.
  Rng rng(1);
  Tensor x_data = Tensor::Randn({64, 3}, rng);
  Tensor w_star({3, 1}, {1.5f, -2.0f, 0.5f});
  Tensor y_data = ops::MatMul(x_data, w_star);
  y_data = ops::AddScalar(y_data, 0.7f);

  nn::Linear model(3, 1, true, &rng);
  Adam opt(model.Parameters(), 0.05f);
  ag::Var x(x_data);
  ag::Var y(y_data);
  float loss_value = 0.0f;
  for (int epoch = 0; epoch < 300; ++epoch) {
    opt.ZeroGrad();
    ag::Var loss = ag::MseLoss(model.Forward(x), y);
    loss.Backward();
    opt.Step();
    loss_value = loss.value().item();
  }
  EXPECT_LT(loss_value, 1e-3f);
  EXPECT_TRUE(ops::AllClose(model.Parameters()[0].value(), w_star, 0.05f,
                            0.05f));
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  ag::Var x = ag::Parameter(Tensor({1}, {10.0f}));
  Adam opt({x}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    // No data term: pure decay should pull the weight toward 0.
    ag::Var loss = ag::MulScalar(ag::SumAll(x), 0.0f);
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(std::fabs(x.value().at(0)), 1.0f);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  ag::Var x = ag::Parameter(Tensor({4}, {1, 1, 1, 1}));
  ag::MulScalar(ag::SumAll(ag::Square(x)), 50.0f).Backward();
  float pre_norm = ClipGradNorm({x}, 1.0f);
  EXPECT_GT(pre_norm, 1.0f);
  double total = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    total += static_cast<double>(x.grad().at(i)) * x.grad().at(i);
  }
  EXPECT_NEAR(std::sqrt(total), 1.0, 1e-4);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ag::Var x = ag::Parameter(Tensor({2}, {0.01f, 0.01f}));
  ag::SumAll(ag::Square(x)).Backward();
  Tensor before = x.grad().Clone();
  ClipGradNorm({x}, 10.0f);
  EXPECT_TRUE(ops::AllClose(x.grad(), before, 0.0f, 0.0f));
}

TEST(EarlyStoppingTest, StopsAfterPatienceExhausted) {
  EarlyStopping es(3);
  EXPECT_TRUE(es.Update(1.0f));
  EXPECT_FALSE(es.ShouldStop());
  EXPECT_FALSE(es.Update(1.1f));
  EXPECT_FALSE(es.Update(1.2f));
  EXPECT_FALSE(es.ShouldStop());
  EXPECT_FALSE(es.Update(1.3f));
  EXPECT_TRUE(es.ShouldStop());
  EXPECT_EQ(es.best_epoch(), 0);
  EXPECT_EQ(es.best(), 1.0f);
}

TEST(EarlyStoppingTest, ImprovementResetsPatience) {
  EarlyStopping es(2);
  es.Update(1.0f);
  es.Update(1.5f);
  EXPECT_TRUE(es.Update(0.5f));
  EXPECT_FALSE(es.ShouldStop());
  es.Update(0.6f);
  es.Update(0.7f);
  EXPECT_TRUE(es.ShouldStop());
  EXPECT_EQ(es.best(), 0.5f);
}

TEST(EarlyStoppingTest, MinDeltaIgnoresTinyImprovements) {
  EarlyStopping es(1, /*min_delta=*/0.1f);
  es.Update(1.0f);
  EXPECT_FALSE(es.Update(0.95f)) << "within min_delta: not an improvement";
  EXPECT_TRUE(es.ShouldStop());
}

}  // namespace
}  // namespace optim
}  // namespace stwa
