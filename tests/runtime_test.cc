// Tests for the parallel execution runtime (src/runtime) and the
// NoGradMode autograd switch.
//
// The determinism contract is the load-bearing property: every parallel
// kernel must produce results bit-identical to the threads=1 serial path,
// and to a hand-written naive reference, regardless of thread count.
// Running this binary under STWA_NUM_THREADS=1 and again at the default
// exercises both sides of the contract (the tests also switch thread
// counts explicitly via SetNumThreads).

#include <array>
#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/no_grad.h"
#include "autograd/ops.h"
#include "common/check.h"
#include "common/rng.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace stwa {
namespace {

/// True when the tensors have the same shape and bit-identical contents.
bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(), sizeof(float) * a.size()) == 0;
}

// --- ParallelFor mechanics ------------------------------------------------

TEST(ParallelForTest, EmptyRangeCallsNothing) {
  std::atomic<int> calls{0};
  runtime::ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  runtime::ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  std::atomic<int> calls{0};
  int64_t seen_begin = -1;
  int64_t seen_end = -1;
  runtime::ParallelFor(2, 10, 100, [&](int64_t b, int64_t e) {
    ++calls;
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 2);
  EXPECT_EQ(seen_end, 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  runtime::SetNumThreads(4);
  const int64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  runtime::ParallelFor(0, n, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  runtime::SetNumThreads(0);
}

TEST(ParallelForTest, NestedCallsDegradeToSerial) {
  runtime::SetNumThreads(4);
  std::atomic<int> inner_chunks{0};
  runtime::ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
    EXPECT_TRUE(runtime::InParallelRegion());
    // A nested region must run inline as one chunk per outer call.
    int local = 0;
    runtime::ParallelFor(0, 1000, 1, [&](int64_t, int64_t) { ++local; });
    EXPECT_EQ(local, 1);
    inner_chunks += local;
    (void)b;
    (void)e;
  });
  EXPECT_FALSE(runtime::InParallelRegion());
  EXPECT_GE(inner_chunks.load(), 1);
  runtime::SetNumThreads(0);
}

TEST(ParallelForTest, PropagatesExceptions) {
  runtime::SetNumThreads(4);
  EXPECT_THROW(
      runtime::ParallelFor(0, 1000, 1,
                           [&](int64_t b, int64_t) {
                             if (b >= 0) {
                               STWA_FAIL("chunk failure at ", b);
                             }
                           }),
      stwa::Error);
  runtime::SetNumThreads(0);
}

TEST(ParallelForTest, SetNumThreadsRoundTrips) {
  runtime::SetNumThreads(3);
  EXPECT_EQ(runtime::NumThreads(), 3);
  runtime::SetNumThreads(1);
  EXPECT_EQ(runtime::NumThreads(), 1);
  runtime::SetNumThreads(0);  // back to the environment default
  EXPECT_EQ(runtime::NumThreads(), runtime::DefaultNumThreads());
}

// --- Parallel kernels == serial kernels ----------------------------------

/// Runs `compute` at 1 thread and at 4 threads and expects bit-identical
/// outputs.
template <typename ComputeFn>
void ExpectThreadInvariant(ComputeFn&& compute) {
  runtime::SetNumThreads(1);
  Tensor serial = compute();
  runtime::SetNumThreads(4);
  Tensor parallel = compute();
  runtime::SetNumThreads(0);
  EXPECT_TRUE(BitIdentical(serial, parallel));
}

TEST(ParallelKernelTest, ElementwiseMatchesSerial) {
  Rng rng(11);
  for (const Shape& shape :
       {Shape{}, Shape{1}, Shape{3}, Shape{64, 33}, Shape{2, 7, 5, 3}}) {
    Tensor a = Tensor::Randn(shape, rng);
    Tensor b = Tensor::Randn(shape, rng);
    ExpectThreadInvariant([&] { return ops::Add(a, b); });
    ExpectThreadInvariant([&] { return ops::Mul(a, b); });
    ExpectThreadInvariant([&] { return ops::Tanh(a); });
    ExpectThreadInvariant([&] { return ops::Sigmoid(a); });
  }
}

TEST(ParallelKernelTest, EmptyTensorsSurvive) {
  Tensor a(Shape{0});
  Tensor b(Shape{0});
  ExpectThreadInvariant([&] { return ops::Add(a, b); });
  ExpectThreadInvariant([&] { return ops::Relu(a); });
  Tensor m(Shape{0, 5});
  Tensor n(Shape{5, 3});
  ExpectThreadInvariant([&] { return ops::MatMul2D(m, n); });
}

TEST(ParallelKernelTest, BroadcastBinaryMatchesSerial) {
  Rng rng(12);
  Tensor a = Tensor::Randn({8, 1, 6}, rng);
  Tensor b = Tensor::Randn({1, 5, 6}, rng);
  ExpectThreadInvariant([&] { return ops::Add(a, b); });
  ExpectThreadInvariant([&] { return ops::Div(a, b); });
  Tensor scalar = Tensor::Randn({1}, rng);
  Tensor big = Tensor::Randn({4, 100, 9}, rng);
  ExpectThreadInvariant([&] { return ops::Mul(big, scalar); });
}

TEST(ParallelKernelTest, MatMulMatchesNaiveReference) {
  Rng rng(13);
  for (auto [m, k, n] : std::vector<std::array<int64_t, 3>>{
           {1, 1, 1}, {3, 5, 2}, {17, 300, 9}, {64, 64, 64}}) {
    Tensor a = Tensor::Randn({m, k}, rng);
    Tensor b = Tensor::Randn({k, n}, rng);
    // Naive i-k-j reference: identical accumulation order to the blocked
    // kernel (k ascending per output element).
    Tensor ref(Shape{m, n});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = a.data()[i * k + kk];
        if (aik == 0.0f) continue;
        for (int64_t j = 0; j < n; ++j) {
          ref.data()[i * n + j] += aik * b.data()[kk * n + j];
        }
      }
    }
    runtime::SetNumThreads(4);
    EXPECT_TRUE(BitIdentical(ref, ops::MatMul2D(a, b)));
    runtime::SetNumThreads(0);
    ExpectThreadInvariant([&] { return ops::MatMul2D(a, b); });
  }
}

TEST(ParallelKernelTest, BatchedMatMulMatchesSerial) {
  Rng rng(14);
  Tensor a = Tensor::Randn({6, 4, 9, 7}, rng);
  Tensor b = Tensor::Randn({6, 4, 7, 5}, rng);
  ExpectThreadInvariant([&] { return ops::MatMul(a, b); });
  // Broadcast batch dims and a shared rank-2 operand.
  Tensor c = Tensor::Randn({1, 4, 9, 7}, rng);
  ExpectThreadInvariant([&] { return ops::MatMul(c, b); });
  Tensor d = Tensor::Randn({7, 5}, rng);
  ExpectThreadInvariant([&] { return ops::MatMul(a, d); });
}

TEST(ParallelKernelTest, SoftmaxReductionsPermuteMatchSerial) {
  Rng rng(15);
  Tensor a = Tensor::Randn({33, 20, 17}, rng);
  ExpectThreadInvariant([&] { return ops::SoftmaxLast(a); });
  for (int64_t axis = 0; axis < 3; ++axis) {
    ExpectThreadInvariant([&] { return ops::Sum(a, axis); });
    ExpectThreadInvariant([&] { return ops::Mean(a, axis, true); });
    ExpectThreadInvariant([&] { return ops::Max(a, axis); });
  }
  ExpectThreadInvariant([&] { return ops::Permute(a, {2, 0, 1}); });
  ExpectThreadInvariant([&] { return ops::TransposeLast2(a); });
  Tensor row(Shape{1, 1});
  row.data()[0] = 3.0f;
  ExpectThreadInvariant([&] { return ops::SoftmaxLast(row); });
}

// --- NoGradMode ----------------------------------------------------------

TEST(NoGradModeTest, OpsUnderNoGradBuildNoTape) {
  ag::Var w = ag::Parameter(Tensor(Shape{2, 2}, 1.5f));
  ASSERT_TRUE(ag::GradEnabled());
  {
    ag::NoGradMode no_grad;
    EXPECT_FALSE(ag::GradEnabled());
    ag::Var y = ag::MeanAll(ag::Mul(w, w));
    // The result is a detached constant: no grad flow, Backward is a
    // checked error rather than a silent no-op.
    EXPECT_FALSE(y.requires_grad());
    EXPECT_TRUE(y.node()->parents.empty());
    EXPECT_THROW(y.Backward(), stwa::Error);
  }
  EXPECT_TRUE(ag::GradEnabled());
  // Recording resumes after the scope: the same graph now backprops.
  ag::Var y = ag::MeanAll(ag::Mul(w, w));
  EXPECT_TRUE(y.requires_grad());
  y.Backward();
  EXPECT_FLOAT_EQ(w.grad().data()[0], 2.0f * 1.5f / 4.0f);
}

TEST(NoGradModeTest, ScopesNest) {
  {
    ag::NoGradMode outer;
    {
      ag::NoGradMode inner;
      EXPECT_FALSE(ag::GradEnabled());
    }
    // Still disabled: the outer scope is alive.
    EXPECT_FALSE(ag::GradEnabled());
  }
  EXPECT_TRUE(ag::GradEnabled());
}

TEST(NoGradModeTest, ForwardValuesUnchanged) {
  Rng rng(16);
  Tensor xt = Tensor::Randn({4, 6}, rng);
  ag::Var w = ag::Parameter(Tensor::Randn({6, 3}, rng));
  ag::Var x(xt);
  Tensor with_grad = ag::MatMul(x, w).value();
  Tensor without_grad;
  {
    ag::NoGradMode no_grad;
    without_grad = ag::MatMul(x, w).value();
  }
  EXPECT_TRUE(BitIdentical(with_grad, without_grad));
}

}  // namespace
}  // namespace stwa
