// Online continual learning tests: replay buffer eviction/determinism,
// drift detection on planted vs flat error streams, the
// publish-then-hot-reload swap path perturbing nothing when adaptation is
// disabled, and Trainer::Fit staying equivalent to a hand-rolled
// StepEngine loop (the refactor contract).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "data/traffic_generator.h"
#include "fleet/profile.h"
#include "online/adaptation.h"
#include "online/drift_detector.h"
#include "online/replay_buffer.h"
#include "runtime/parallel.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace stwa {
namespace online {
namespace {

Example MakeExample(int64_t sensors, int64_t history, int64_t horizon,
                    float fill) {
  Example e;
  e.x = Tensor(Shape{sensors, history, 1});
  e.y = Tensor(Shape{sensors, horizon, 1});
  for (int64_t k = 0; k < e.x.size(); ++k) {
    e.x.data()[k] = fill + static_cast<float>(k);
  }
  for (int64_t k = 0; k < e.y.size(); ++k) {
    e.y.data()[k] = fill - static_cast<float>(k);
  }
  e.anchor_step = static_cast<int64_t>(fill);
  return e;
}

TEST(ReplayBufferTest, FifoEvictionAndAccessors) {
  ReplayBuffer buffer(4);
  for (int i = 0; i < 7; ++i) {
    buffer.Add(MakeExample(2, 3, 2, static_cast<float>(i)));
  }
  EXPECT_EQ(buffer.size(), 4);
  EXPECT_EQ(buffer.total_added(), 7);
  EXPECT_EQ(buffer.evicted(), 3);
  EXPECT_EQ(buffer.capacity(), 4);
  // Oldest survivor is example 3 (0..2 evicted in order).
  EXPECT_EQ(buffer.at(0).anchor_step, 3);
  EXPECT_EQ(buffer.at(3).anchor_step, 6);
}

TEST(ReplayBufferTest, SeededSamplingIsReproducible) {
  ReplayBuffer buffer(8);
  for (int i = 0; i < 8; ++i) {
    buffer.Add(MakeExample(2, 3, 2, static_cast<float>(i)));
  }
  Rng rng_a(42), rng_b(42), rng_c(43);
  const auto a = buffer.SampleIndices(16, rng_a);
  const auto b = buffer.SampleIndices(16, rng_b);
  const auto c = buffer.SampleIndices(16, rng_c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (int64_t i : a) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, buffer.size());
  }
}

TEST(ReplayBufferTest, BatchesAreNormalisedAndThreadCountInvariant) {
  const data::StandardScaler scaler(100.0f, 25.0f);
  auto build_batch = [&](int threads, data::Batch* out) {
    runtime::SetNumThreads(threads);
    ReplayBuffer buffer(6);
    for (int i = 0; i < 6; ++i) {
      buffer.Add(MakeExample(3, 4, 2, 50.0f * static_cast<float>(i)));
    }
    Rng rng(7);
    buffer.MakeBatchInto(buffer.SampleIndices(5, rng), scaler, out);
  };
  data::Batch one, four;
  build_batch(1, &one);
  build_batch(4, &four);
  runtime::SetNumThreads(1);
  ASSERT_EQ(one.x.shape(), (Shape{5, 3, 4, 1}));
  ASSERT_EQ(one.y.shape(), (Shape{5, 3, 2, 1}));
  EXPECT_EQ(std::memcmp(one.x.data(), four.x.data(),
                        sizeof(float) * static_cast<size_t>(one.x.size())),
            0);
  EXPECT_EQ(std::memcmp(one.y.data(), four.y.data(),
                        sizeof(float) * static_cast<size_t>(one.y.size())),
            0);
  // Spot-check the z-score convention on both x and y (the offline
  // Trainer normalises targets too).
  ReplayBuffer buffer(2);
  buffer.Add(MakeExample(1, 2, 1, 150.0f));
  data::Batch batch;
  buffer.MakeBatchInto({0}, scaler, &batch);
  EXPECT_FLOAT_EQ(batch.x.data()[0], (150.0f - 100.0f) / 25.0f);
  EXPECT_FLOAT_EQ(batch.y.data()[0], (150.0f - 100.0f) / 25.0f);
}

TEST(ExampleAssemblerTest, CutsAlignedWindowsOnStride) {
  const int64_t sensors = 2, history = 3, horizon = 2;
  ExampleAssembler assembler(sensors, history, horizon, /*features=*/1,
                             /*emit_stride=*/2);
  std::vector<float> row(static_cast<size_t>(sensors));
  std::vector<int64_t> emit_steps;
  for (int64_t t = 0; t < 10; ++t) {
    for (int64_t i = 0; i < sensors; ++i) {
      row[static_cast<size_t>(i)] = static_cast<float>(t * 10 + i);
    }
    Example example;
    if (assembler.Push(row, &example)) {
      emit_steps.push_back(t);
      ASSERT_EQ(example.x.shape(), (Shape{sensors, history, 1}));
      ASSERT_EQ(example.y.shape(), (Shape{sensors, horizon, 1}));
      // x covers rows t-4..t-2, y covers rows t-1..t (oldest first).
      for (int64_t i = 0; i < sensors; ++i) {
        for (int64_t s = 0; s < history; ++s) {
          EXPECT_EQ(example.x({i, s, 0}),
                    static_cast<float>((t - 4 + s) * 10 + i));
        }
        for (int64_t s = 0; s < horizon; ++s) {
          EXPECT_EQ(example.y({i, s, 0}),
                    static_cast<float>((t - 1 + s) * 10 + i));
        }
      }
      EXPECT_EQ(example.anchor_step, t - horizon);
    }
  }
  // Warm at row 4 (history + horizon rows seen), then every 2 rows.
  EXPECT_EQ(emit_steps, (std::vector<int64_t>{4, 6, 8}));
  EXPECT_EQ(assembler.emitted(), 3);
  EXPECT_EQ(assembler.steps_seen(), 10);
}

TEST(DriftDetectorTest, TriggersOnPlantedErrorShift) {
  DriftConfig config;
  config.baseline_window = 32;
  config.recent_window = 8;
  DriftDetector detector(config);
  Rng rng(5);
  int64_t trigger_at = -1;
  for (int64_t i = 0; i < 80; ++i) {
    const float base = i < 50 ? 1.0f : 3.0f;  // planted shift at 50
    if (detector.AddError(base + rng.Normal(0.0f, 0.05f)) &&
        trigger_at < 0) {
      trigger_at = i;
    }
  }
  EXPECT_TRUE(detector.drifted());
  EXPECT_EQ(detector.triggers(), 1);
  // Must fire shortly after the shift, not at warm-up and not late.
  EXPECT_GE(trigger_at, 50);
  EXPECT_LE(trigger_at, 60);
  EXPECT_GT(detector.recent_mean(), detector.baseline_mean());
}

TEST(DriftDetectorTest, StaysQuietOnFlatStream) {
  DriftConfig config;
  config.baseline_window = 32;
  config.recent_window = 8;
  DriftDetector detector(config);
  Rng rng(6);
  for (int64_t i = 0; i < 400; ++i) {
    EXPECT_FALSE(detector.AddError(1.0f + rng.Normal(0.0f, 0.05f)));
  }
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.triggers(), 0);
}

TEST(DriftDetectorTest, ResetClearsStateButKeepsTriggerCount) {
  DriftConfig config;
  config.baseline_window = 4;
  config.recent_window = 2;
  DriftDetector detector(config);
  for (int i = 0; i < 4; ++i) detector.AddError(1.0f);
  detector.AddError(10.0f);
  detector.AddError(10.0f);
  EXPECT_TRUE(detector.drifted());
  EXPECT_EQ(detector.triggers(), 1);
  detector.Reset();
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.observed(), 0);
  EXPECT_EQ(detector.triggers(), 1);  // lifetime count survives
  EXPECT_FALSE(detector.warm());
}

// --- Checkpoint-backed tests -------------------------------------------

data::TrafficDataset OnlineTestDataset() {
  data::GeneratorOptions o;
  o.name = "online-test";
  o.num_roads = 2;
  o.sensors_per_road = 2;
  o.num_days = 2;
  o.steps_per_day = 96;
  o.seed = 31;
  return data::GenerateTraffic(o);
}

baselines::ModelSettings OnlineTestSettings() {
  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  settings.seed = 11;
  return settings;
}

/// Random-init serving checkpoint over the test dataset (bit-identity
/// checks are equally strict for any weights; skipping training keeps the
/// test fast).
std::string WriteTestCheckpoint(const data::TrafficDataset& dataset,
                                const std::string& filename) {
  const baselines::ModelSettings settings = OnlineTestSettings();
  auto model = baselines::MakeModel("ST-WA", dataset, settings);
  data::StandardScaler scaler;
  scaler.Fit(dataset.values, dataset.num_steps() * 6 / 10);
  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = settings;
  info.num_sensors = dataset.num_sensors();
  info.num_features = dataset.num_features();
  info.scaler_mean = scaler.mean();
  info.scaler_std = scaler.stddev();
  const std::string path = "/tmp/" + filename;
  serve::SaveServingCheckpoint(*model, info, path);
  return path;
}

TEST(OnlineLearnerTest, PublishWithoutAdaptationIsBitIdenticalThroughSwap) {
  const data::TrafficDataset dataset = OnlineTestDataset();
  const std::string base =
      WriteTestCheckpoint(dataset, "online_swap_base.bin");
  const Tensor window =
      ops::Slice(dataset.values, 1, 5, OnlineTestSettings().history);
  const Tensor reference = serve::InferenceSession::Open(base)->Forecast(window);

  // Adaptation disabled: the learner observes but never steps, so a
  // publish re-saves the loaded weights unchanged (modulo ckpt_version).
  OnlineConfig config;
  config.adapt_enabled = false;
  config.publish_path = "/tmp/online_swap_pub.bin";
  OnlineLearner learner(base, config);
  std::vector<float> row(static_cast<size_t>(dataset.num_sensors()));
  for (int64_t t = 0; t < 40; ++t) {
    for (int64_t i = 0; i < dataset.num_sensors(); ++i) {
      row[static_cast<size_t>(i)] = dataset.values({i, t, 0});
    }
    EXPECT_FALSE(learner.Observe(row));
  }
  EXPECT_GT(learner.replay().size(), 0);
  EXPECT_FALSE(learner.Adapt());  // disabled
  learner.Publish();
  EXPECT_EQ(learner.stats().cycles, 0);
  EXPECT_EQ(learner.stats().publishes, 1);
  EXPECT_EQ(serve::ReadServingInfo(config.publish_path).ckpt_version, 2);

  const Tensor republished =
      serve::InferenceSession::Open(config.publish_path)->Forecast(window);
  ASSERT_EQ(republished.shape(), reference.shape());
  EXPECT_EQ(std::memcmp(republished.data(), reference.data(),
                        sizeof(float) *
                            static_cast<size_t>(reference.size())),
            0);

  // And through the fleet: warm a profile on the base generation, swap in
  // the republished file, and the served bytes must not move.
  fleet::FleetProfileConfig profile_config;
  profile_config.name = "online-test";
  profile_config.checkpoint = base;
  fleet::ModelProfile profile(profile_config);
  const int64_t history = OnlineTestSettings().history;
  for (int64_t s = 0; s < history; ++s) {
    for (int64_t i = 0; i < dataset.num_sensors(); ++i) {
      row[static_cast<size_t>(i)] = dataset.values({i, 5 + s, 0});
    }
    profile.PushTile(0, row);
  }
  const Tensor before = profile.ForecastTile(0).get().forecast;
  ASSERT_EQ(before.size(), reference.size());
  const fleet::ReloadResult reload = profile.Reload(config.publish_path);
  EXPECT_EQ(reload.version, 2);
  EXPECT_EQ(reload.ckpt_version, 2);
  const Tensor after = profile.ForecastTile(0).get().forecast;
  EXPECT_EQ(std::memcmp(before.data(), reference.data(),
                        sizeof(float) *
                            static_cast<size_t>(reference.size())),
            0);
  EXPECT_EQ(std::memcmp(after.data(), reference.data(),
                        sizeof(float) *
                            static_cast<size_t>(reference.size())),
            0);
  EXPECT_EQ(profile.Stats().shed, 0);
  std::remove(base.c_str());
  std::remove(config.publish_path.c_str());
}

TEST(OnlineLearnerTest, ForcedAdaptationMovesWeightsAndPublishes) {
  const data::TrafficDataset dataset = OnlineTestDataset();
  const std::string base =
      WriteTestCheckpoint(dataset, "online_adapt_base.bin");
  const Tensor window =
      ops::Slice(dataset.values, 1, 5, OnlineTestSettings().history);
  const Tensor reference = serve::InferenceSession::Open(base)->Forecast(window);

  OnlineConfig config;
  config.adapt_steps = 4;
  config.adapt_batch_size = 4;
  config.min_examples = 8;
  config.publish_path = "/tmp/online_adapt_pub.bin";
  OnlineLearner learner(base, config);
  std::vector<float> row(static_cast<size_t>(dataset.num_sensors()));
  for (int64_t t = 0; t < 40; ++t) {
    for (int64_t i = 0; i < dataset.num_sensors(); ++i) {
      row[static_cast<size_t>(i)] = dataset.values({i, t, 0});
    }
    learner.Observe(row);
  }
  ASSERT_GE(learner.replay().size(), config.min_examples);
  EXPECT_TRUE(learner.Adapt());
  EXPECT_EQ(learner.stats().cycles, 1);
  EXPECT_EQ(learner.stats().fine_tune_steps, 4);
  EXPECT_EQ(learner.engine().steps(), 4);
  EXPECT_EQ(serve::ReadServingInfo(config.publish_path).ckpt_version, 2);

  // Fine-tuning on real windows must actually move the forecasts.
  const Tensor adapted =
      serve::InferenceSession::Open(config.publish_path)->Forecast(window);
  EXPECT_NE(std::memcmp(adapted.data(), reference.data(),
                        sizeof(float) *
                            static_cast<size_t>(reference.size())),
            0);
  std::remove(base.c_str());
  std::remove(config.publish_path.c_str());
}

}  // namespace
}  // namespace online

// --- Refactor contract --------------------------------------------------

namespace train {
namespace {

TEST(StepEngineTest, FitMatchesManualEngineLoop) {
  data::GeneratorOptions gen;
  gen.num_roads = 2;
  gen.sensors_per_road = 2;
  gen.num_days = 3;
  gen.steps_per_day = 96;
  gen.seed = 77;
  const data::TrafficDataset dataset = data::GenerateTraffic(gen);

  baselines::ModelSettings settings = online::OnlineTestSettings();
  settings.horizon = 3;
  TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.stride = 4;
  config.eval_stride = 4;
  config.use_plan = 1;

  // Arm 1: the refactored Trainer::Fit.
  auto model_fit =
      baselines::MakeModel("ST-WA", dataset, settings);
  Trainer trainer(dataset, settings.history, settings.horizon, config);
  const TrainResult fit = trainer.Fit(*model_fit);

  // Arm 2: the same protocol written out against the StepEngine directly
  // (what Trainer::Fit used to inline). Identical seeds everywhere.
  auto model_manual =
      baselines::MakeModel("ST-WA", dataset, settings);
  Trainer sampler_owner(dataset, settings.history, settings.horizon,
                        config);
  StepEngineConfig engine_config;
  engine_config.lr = config.lr;
  engine_config.clip_norm = config.clip_norm;
  engine_config.huber_delta = config.huber_delta;
  engine_config.use_plan = 1;
  StepEngine engine(*model_manual, engine_config);
  Rng shuffle_rng(config.seed);
  data::Batch batch;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& indices : sampler_owner.train_sampler().EpochBatches(
             config.batch_size, &shuffle_rng)) {
      sampler_owner.train_sampler().MakeBatchInto(indices, &batch);
      engine.Step(batch);
    }
    // Fit evaluates validation each epoch; replay it to keep any
    // model-internal state identical.
    engine.EvaluateOn(sampler_owner.val_sampler(), sampler_owner.scaler(),
                      config.batch_size);
  }
  const metrics::ForecastMetrics val = engine.EvaluateOn(
      sampler_owner.val_sampler(), sampler_owner.scaler(),
      config.batch_size);
  const metrics::ForecastMetrics test = engine.EvaluateOn(
      sampler_owner.test_sampler(), sampler_owner.scaler(),
      config.batch_size);

  // Bit-identical, not approximately equal: the refactor moved the step
  // into the engine without changing a single float.
  EXPECT_EQ(fit.epochs_run, config.epochs);
  EXPECT_EQ(fit.val.mae, val.mae);
  EXPECT_EQ(fit.val.rmse, val.rmse);
  EXPECT_EQ(fit.val.mape, val.mape);
  EXPECT_EQ(fit.test.mae, test.mae);
  EXPECT_EQ(fit.test.rmse, test.rmse);
  EXPECT_EQ(fit.test.mape, test.mape);
  EXPECT_EQ(fit.plan.replayed_steps + fit.plan.traced_steps,
            engine.steps());
}

}  // namespace
}  // namespace train
}  // namespace stwa
