// Tests for the plan-rewrite fusion passes (ir/rewrite.h), the region
// schedule (ir/regions.h) and region-parallel replay.
//
// The load-bearing property is unchanged from ir_test: bit-identity.
// Fusion must never change a replayed float — fused kernels reuse the
// unfused per-element paths — and region-parallel replay must produce the
// serial schedule's exact bits at every thread count. On top of that, the
// pattern matchers must fire exactly where the legality rules allow:
// single-consumer chains fuse, fan-outs block, attention quads fuse,
// an externally observed softmax blocks.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/no_grad.h"
#include "autograd/ops.h"
#include "baselines/registry.h"
#include "common/rng.h"
#include "data/traffic_generator.h"
#include "ir/op_kind.h"
#include "ir/plan.h"
#include "runtime/parallel.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace stwa {
namespace {

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(), sizeof(float) * a.size()) == 0;
}

/// Restores every plan gate to the on-state the test binary assumes.
void ResetModes() {
  ir::SetPlanMode(true);
  ir::SetFuseMode(true);
  ir::SetRegionParMode(true);
}

// --- Elementwise-chain fuser ----------------------------------------------

TEST(RewriteChainTest, SingleConsumerChainFusesIntoOneNode) {
  ResetModes();
  Rng rng(5);
  Tensor x0 = Tensor::Randn({4, 8}, rng);
  std::unique_ptr<ir::ExecutionPlan> plan;
  {
    ag::NoGradMode no_grad;
    ir::GraphCapture capture;
    ag::Var h = ag::Tanh(ag::Var(x0));
    h = ag::AddScalar(h, 0.5f);
    h = ag::MulScalar(h, 2.0f);
    ag::Var out = ag::Relu(h);  // kRelu is the root: excluded from chains
    plan = capture.Finish(out, {x0}, /*with_backward=*/false);
  }
  ASSERT_NE(plan, nullptr);
  // tanh → add_scalar → mul_scalar collapses; relu (the root) survives.
  EXPECT_EQ(plan->stats().fused_map_nodes, 1);
  EXPECT_EQ(plan->stats().fused_attention_nodes, 0);
  EXPECT_EQ(plan->stats().fused_away_ops, 2);
  EXPECT_EQ(plan->stats().forward_ops, 2);

  Tensor x1 = Tensor::Randn({4, 8}, rng);
  Tensor replayed = plan->ReplayForward({x1});
  Tensor eager = ops::Relu(
      ops::MulScalar(ops::AddScalar(ops::Tanh(x1), 0.5f), 2.0f));
  EXPECT_TRUE(BitIdentical(replayed, eager));
}

TEST(RewriteChainTest, BinaryStagesCarrySidesAndSwap) {
  ResetModes();
  Rng rng(6);
  Tensor x0 = Tensor::Randn({3, 5}, rng);
  Tensor s0 = Tensor::Randn({3, 5}, rng);
  std::unique_ptr<ir::ExecutionPlan> plan;
  {
    ag::NoGradMode no_grad;
    ir::GraphCapture capture;
    ag::Var side(s0);
    ag::Var h = ag::Exp(ag::Var(x0));
    h = ag::Sub(side, h);  // swapped: chain value is the right operand
    h = ag::Mul(h, side);  // same side leaf reused through one slot
    ag::Var out = ag::MeanAll(h);
    plan = capture.Finish(out, {x0}, /*with_backward=*/false);
  }
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->stats().fused_map_nodes, 1);
  EXPECT_EQ(plan->stats().fused_away_ops, 2);
  EXPECT_EQ(plan->stats().forward_ops, 2);  // fused_map + mean_all

  Tensor x1 = Tensor::Randn({3, 5}, rng);
  Tensor replayed = plan->ReplayForward({x1});
  Tensor eager = ops::MeanAll(ops::Mul(ops::Sub(s0, ops::Exp(x1)), s0));
  EXPECT_TRUE(BitIdentical(replayed, eager));
}

TEST(RewriteChainTest, FanOutBlocksTheChain) {
  ResetModes();
  Rng rng(7);
  Tensor x0 = Tensor::Randn({4, 4}, rng);
  std::unique_ptr<ir::ExecutionPlan> plan;
  {
    ag::NoGradMode no_grad;
    ir::GraphCapture capture;
    ag::Var e = ag::Exp(ag::Var(x0));
    // Two consumers: e is observable, so no chain may absorb it.
    ag::Var y1 = ag::AddScalar(e, 1.0f);
    ag::Var y2 = ag::MulScalar(e, 2.0f);
    ag::Var out = ag::Add(y1, y2);  // root: excluded from chains as well
    plan = capture.Finish(out, {x0}, /*with_backward=*/false);
  }
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->stats().fused_map_nodes, 0);
  EXPECT_EQ(plan->stats().fused_away_ops, 0);
  EXPECT_EQ(plan->stats().forward_ops, 4);

  Tensor x1 = Tensor::Randn({4, 4}, rng);
  Tensor replayed = plan->ReplayForward({x1});
  Tensor e = ops::Exp(x1);
  Tensor eager = ops::Add(ops::AddScalar(e, 1.0f), ops::MulScalar(e, 2.0f));
  EXPECT_TRUE(BitIdentical(replayed, eager));
}

// --- Attention-quad fuser -------------------------------------------------

TEST(RewriteAttentionTest, QuadFusesIntoOneNode) {
  ResetModes();
  Rng rng(8);
  Tensor q0 = Tensor::Randn({2, 5, 3}, rng);
  Tensor k0 = Tensor::Randn({2, 5, 3}, rng);
  Tensor v0 = Tensor::Randn({2, 5, 4}, rng);
  std::unique_ptr<ir::ExecutionPlan> plan;
  {
    ag::NoGradMode no_grad;
    ir::GraphCapture capture;
    ag::Var kt = ag::TransposeLast2(ag::Var(k0));
    ag::Var scores = ag::MulScalar(ag::MatMul(ag::Var(q0), kt), 0.25f);
    ag::Var out = ag::MatMul(ag::SoftmaxLast(scores), ag::Var(v0));
    ag::Var root = ag::AddScalar(out, 0.0f);  // keeps the quad off the root
    plan = capture.Finish(root, {q0, k0, v0}, /*with_backward=*/false);
  }
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->stats().fused_attention_nodes, 1);
  EXPECT_EQ(plan->stats().fused_away_ops, 3);
  // transpose_last2 + fused_attention + add_scalar; the key transpose
  // stays a plan node by design (kernel bit-compatibility).
  EXPECT_EQ(plan->stats().forward_ops, 3);

  Tensor q1 = Tensor::Randn({2, 5, 3}, rng);
  Tensor k1 = Tensor::Randn({2, 5, 3}, rng);
  Tensor v1 = Tensor::Randn({2, 5, 4}, rng);
  Tensor replayed = plan->ReplayForward({q1, k1, v1});
  Tensor eager = ops::MatMul(
      ops::SoftmaxLast(ops::MulScalar(
          ops::MatMul(q1, ops::TransposeLast2(k1)), 0.25f)),
      v1);
  EXPECT_TRUE(BitIdentical(replayed, eager));
}

TEST(RewriteAttentionTest, ObservedSoftmaxBlocksTheQuad) {
  ResetModes();
  Rng rng(9);
  // n == d so the attention output and the softmax share a shape and can
  // be added — giving the softmax a second consumer.
  Tensor q0 = Tensor::Randn({2, 4}, rng);
  Tensor k0 = Tensor::Randn({4, 4}, rng);  // pre-transposed key
  Tensor v0 = Tensor::Randn({4, 4}, rng);
  std::unique_ptr<ir::ExecutionPlan> plan;
  {
    ag::NoGradMode no_grad;
    ir::GraphCapture capture;
    ag::Var sm = ag::SoftmaxLast(
        ag::MulScalar(ag::MatMul(ag::Var(q0), ag::Var(k0)), 0.5f));
    ag::Var out = ag::MatMul(sm, ag::Var(v0));
    ag::Var root = ag::Add(out, sm);  // the intervening consumer
    plan = capture.Finish(root, {q0, k0, v0}, /*with_backward=*/false);
  }
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->stats().fused_attention_nodes, 0);
  EXPECT_EQ(plan->stats().fused_away_ops, 0);

  Tensor q1 = Tensor::Randn({2, 4}, rng);
  Tensor replayed = plan->ReplayForward({q1, k0, v0});
  Tensor sm = ops::SoftmaxLast(ops::MulScalar(ops::MatMul(q1, k0), 0.5f));
  Tensor eager = ops::Add(ops::MatMul(sm, v0), sm);
  EXPECT_TRUE(BitIdentical(replayed, eager));
}

// --- ST-WA eval plan: fusion payoff + region determinism ------------------

data::TrafficDataset RewriteDataset() {
  data::GeneratorOptions o;
  o.num_roads = 2;
  o.sensors_per_road = 2;
  o.num_days = 3;
  o.steps_per_day = 96;
  o.noise_std = 5.0f;
  o.seed = 21;
  return data::GenerateTraffic(o);
}

baselines::ModelSettings RewriteSettings() {
  baselines::ModelSettings s;
  s.history = 12;
  s.horizon = 3;
  s.d_model = 8;
  s.window_sizes = {3, 2, 2};
  s.latent_dim = 4;
  s.predictor_hidden = 16;
  s.seed = 11;
  return s;
}

/// Captures a forward-only plan of the ST-WA eval step under the current
/// fuse gate, tracing on `x0`.
std::unique_ptr<ir::ExecutionPlan> CaptureEvalPlan(
    train::ForecastModel& model, const Tensor& x0) {
  ag::NoGradMode no_grad;
  ir::GraphCapture capture;
  ag::Var pred = model.Forward(x0, /*training=*/false);
  return capture.Finish(pred, {x0}, /*with_backward=*/false);
}

TEST(RewriteStwaTest, EvalPlanFusesBothPatternsAndStaysBitIdentical) {
  ResetModes();
  data::TrafficDataset d = RewriteDataset();
  baselines::ModelSettings s = RewriteSettings();
  SetGlobalSeed(123);
  auto model = baselines::MakeModel("ST-WA", d, s);
  Rng rng(17);
  Tensor x0 = Tensor::Rand(
      {2, d.num_sensors(), s.history, d.num_features()}, rng, -1.5f, 1.5f);

  ir::SetFuseMode(false);
  auto unfused = CaptureEvalPlan(*model, x0);
  ir::SetFuseMode(true);
  auto fused = CaptureEvalPlan(*model, x0);
  ASSERT_NE(unfused, nullptr);
  ASSERT_NE(fused, nullptr);

  // Both fuser patterns must fire on the real ST-WA step, and together
  // they must shave >= 20% off the executed schedule.
  EXPECT_GT(fused->stats().fused_map_nodes, 0);
  EXPECT_GT(fused->stats().fused_attention_nodes, 0);
  EXPECT_EQ(fused->stats().forward_ops + fused->stats().fused_away_ops,
            unfused->stats().forward_ops);
  EXPECT_LE(fused->stats().forward_ops * 5,
            unfused->stats().forward_ops * 4);

  Tensor x1 = Tensor::Rand(
      {2, d.num_sensors(), s.history, d.num_features()}, rng, -1.5f, 1.5f);
  Tensor a = unfused->ReplayForward({x1}).Clone();
  Tensor b = fused->ReplayForward({x1}).Clone();
  EXPECT_TRUE(BitIdentical(a, b));
}

TEST(RewriteStwaTest, RegionScheduleIsDeterministicAcrossCaptures) {
  ResetModes();
  data::TrafficDataset d = RewriteDataset();
  baselines::ModelSettings s = RewriteSettings();
  SetGlobalSeed(123);
  auto model = baselines::MakeModel("ST-WA", d, s);
  Rng rng(18);
  Tensor x0 = Tensor::Rand(
      {2, d.num_sensors(), s.history, d.num_features()}, rng, -1.5f, 1.5f);

  auto plan_a = CaptureEvalPlan(*model, x0);
  auto plan_b = CaptureEvalPlan(*model, x0);
  ASSERT_NE(plan_a, nullptr);
  ASSERT_NE(plan_b, nullptr);
  EXPECT_GT(plan_a->stats().regions, 1);
  EXPECT_GT(plan_a->stats().region_stages, 1);
  // The ST-WA windows are independent subgraphs: the schedule must expose
  // real width for the region-parallel replay to use.
  EXPECT_GT(plan_a->stats().max_stage_width, 1);
  EXPECT_EQ(plan_a->RegionSignature(), plan_b->RegionSignature());
  EXPECT_FALSE(plan_a->RegionSignature().empty());
}

TEST(RewriteStwaTest, RegionParallelReplayIsBitIdenticalAcrossThreads) {
  ResetModes();
  data::TrafficDataset d = RewriteDataset();
  baselines::ModelSettings s = RewriteSettings();
  SetGlobalSeed(123);
  auto model = baselines::MakeModel("ST-WA", d, s);
  Rng rng(19);
  Tensor x0 = Tensor::Rand(
      {2, d.num_sensors(), s.history, d.num_features()}, rng, -1.5f, 1.5f);

  ir::SetRegionParMode(false);
  auto serial_plan = CaptureEvalPlan(*model, x0);
  ir::SetRegionParMode(true);
  auto par_plan = CaptureEvalPlan(*model, x0);
  ASSERT_NE(serial_plan, nullptr);
  ASSERT_NE(par_plan, nullptr);

  Tensor x1 = Tensor::Rand(
      {2, d.num_sensors(), s.history, d.num_features()}, rng, -1.5f, 1.5f);
  runtime::SetNumThreads(1);
  Tensor reference = serial_plan->ReplayForward({x1}).Clone();
  for (int threads : {1, 2, 4}) {
    runtime::SetNumThreads(threads);
    Tensor serial = serial_plan->ReplayForward({x1}).Clone();
    Tensor parallel = par_plan->ReplayForward({x1}).Clone();
    EXPECT_TRUE(BitIdentical(serial, reference)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(parallel, reference)) << threads << " threads";
  }
  runtime::SetNumThreads(0);
}

// --- End-to-end bit-identity: Fit and serving -----------------------------

struct FitOutcome {
  train::TrainResult result;
  std::vector<Tensor> params;
};

FitOutcome RunFit(const data::TrafficDataset& dataset, bool fuse,
                  bool region_par, int threads) {
  ir::SetFuseMode(fuse);
  ir::SetRegionParMode(region_par);
  baselines::ModelSettings s = RewriteSettings();
  SetGlobalSeed(123);
  auto model = baselines::MakeModel("ST-WA", dataset, s);
  train::TrainConfig c;
  c.epochs = 2;
  c.batch_size = 8;
  c.stride = 3;
  c.eval_stride = 4;
  c.use_plan = 1;
  c.num_threads = threads;
  train::Trainer trainer(dataset, s.history, s.horizon, c);
  FitOutcome out;
  out.result = trainer.Fit(*model);
  for (const ag::Var& p : model->Parameters()) {
    out.params.push_back(p.value().Clone());
  }
  ResetModes();
  return out;
}

void ExpectSameTraining(const FitOutcome& a, const FitOutcome& b) {
  ASSERT_EQ(a.result.val_mae_history.size(), b.result.val_mae_history.size());
  for (size_t i = 0; i < a.result.val_mae_history.size(); ++i) {
    EXPECT_EQ(a.result.val_mae_history[i], b.result.val_mae_history[i])
        << "epoch " << i;
  }
  EXPECT_EQ(a.result.test.mae, b.result.test.mae);
  EXPECT_EQ(a.result.test.rmse, b.result.test.rmse);
  EXPECT_EQ(a.result.val.mae, b.result.val.mae);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_TRUE(BitIdentical(a.params[i], b.params[i])) << "param " << i;
  }
}

TEST(RewriteTrainingTest, FitIsBitIdenticalFuseOnVsOffAtOneAndFourThreads) {
  data::TrafficDataset d = RewriteDataset();
  FitOutcome fused1 = RunFit(d, /*fuse=*/true, /*region_par=*/true, 1);
  FitOutcome plain1 = RunFit(d, /*fuse=*/false, /*region_par=*/false, 1);
  FitOutcome fused4 = RunFit(d, /*fuse=*/true, /*region_par=*/true, 4);
  FitOutcome plain4 = RunFit(d, /*fuse=*/false, /*region_par=*/false, 4);
  runtime::SetNumThreads(0);
  ExpectSameTraining(plain1, fused1);
  ExpectSameTraining(plain1, plain4);
  ExpectSameTraining(plain1, fused4);
}

TEST(RewriteServeTest, ForecastsAreBitIdenticalFuseOnVsOff) {
  ResetModes();
  data::TrafficDataset d = RewriteDataset();
  baselines::ModelSettings s = RewriteSettings();
  SetGlobalSeed(123);
  auto model = baselines::MakeModel("ST-WA", d, s);
  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = s;
  info.num_sensors = d.num_sensors();
  info.num_features = d.num_features();
  info.scaler_mean = 180.0f;
  info.scaler_std = 42.0f;
  const std::string path = "/tmp/stwa_ir_rewrite_test_ckpt.bin";
  serve::SaveServingCheckpoint(*model, info, path);

  // Sessions snapshot the gates at Open; set each mode before its Open.
  ir::SetFuseMode(true);
  ir::SetRegionParMode(true);
  auto fused = serve::InferenceSession::Open(path);
  ir::SetFuseMode(false);
  ir::SetRegionParMode(false);
  auto plain = serve::InferenceSession::Open(path);
  ResetModes();
  ASSERT_NE(fused, nullptr);
  ASSERT_NE(plain, nullptr);

  Rng rng(31);
  for (int threads : {1, 4}) {
    runtime::SetNumThreads(threads);
    for (int i = 0; i < 2; ++i) {
      Tensor window = Tensor::Rand(
          {2, d.num_sensors(), s.history, d.num_features()}, rng, 50.0f,
          400.0f);
      Tensor with_fusion = fused->Forecast(window);
      Tensor without_fusion = plain->Forecast(window);
      EXPECT_TRUE(BitIdentical(with_fusion, without_fusion))
          << "request " << i << " at " << threads << " threads";
    }
  }
  runtime::SetNumThreads(0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stwa
