// Tests for the serving subsystem: latency histogram, streaming state,
// serving checkpoints, inference sessions, micro-batching determinism and
// overload shedding, and the line protocol.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/no_grad.h"
#include "baselines/registry.h"
#include "common/check.h"
#include "data/traffic_generator.h"
#include "metrics/latency.h"
#include "nn/serialize.h"
#include "serve/batching_queue.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stream_state.h"
#include "simd/lowp.h"
#include "tensor/lowp_cache.h"
#include "tensor/ops.h"

namespace stwa {
namespace serve {
namespace {

std::string TempPath(const std::string& name) { return "/tmp/" + name; }

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  metrics::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean_micros(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(LatencyHistogramTest, SingleValueIsExact) {
  metrics::LatencyHistogram h;
  h.Record(500.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.mean_micros(), 500.0);
  // Percentiles clamp to the observed extremes, so a single value is
  // reported exactly at every percentile.
  EXPECT_DOUBLE_EQ(h.p50(), 500.0);
  EXPECT_DOUBLE_EQ(h.p99(), 500.0);
}

TEST(LatencyHistogramTest, PercentilesOrderedAndBounded) {
  metrics::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_NEAR(h.mean_micros(), 500.5, 1e-9);
  const double p50 = h.p50(), p95 = h.p95(), p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucketing bounds the relative error by one bucket (~9%).
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.10);
  EXPECT_NEAR(p95, 950.0, 950.0 * 0.10);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.10);
  EXPECT_GE(p50, h.min_micros());
  EXPECT_LE(p99, h.max_micros());
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  metrics::LatencyHistogram a, b, both;
  for (int i = 1; i <= 100; ++i) {
    a.Record(static_cast<double>(i));
    both.Record(static_cast<double>(i));
  }
  for (int i = 1000; i <= 1100; ++i) {
    b.Record(static_cast<double>(i));
    both.Record(static_cast<double>(i));
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.mean_micros(), both.mean_micros());
  EXPECT_DOUBLE_EQ(a.min_micros(), both.min_micros());
  EXPECT_DOUBLE_EQ(a.max_micros(), both.max_micros());
  EXPECT_DOUBLE_EQ(a.p95(), both.p95());
}

TEST(LatencyHistogramTest, OutOfRangeValuesClampInsteadOfCrashing) {
  metrics::LatencyHistogram h;
  h.Record(-5.0);
  h.Record(0.0);
  h.Record(1e12);  // far past the last bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_GT(h.p99(), 0.0);
}

// ---------------------------------------------------------------------------
// StreamState

TEST(StreamStateTest, WarmupProgressAndReady) {
  StreamState state(/*num_sensors=*/2, /*history=*/3);
  EXPECT_FALSE(state.ready());
  EXPECT_EQ(state.min_filled(), 0);
  state.Push({1.0f, 10.0f});
  state.Push({2.0f, 20.0f});
  EXPECT_FALSE(state.ready());
  EXPECT_EQ(state.min_filled(), 2);
  state.Push({3.0f, 30.0f});
  EXPECT_TRUE(state.ready());
  EXPECT_EQ(state.seen(0), 3);
}

TEST(StreamStateTest, WindowIsOldestFirstAndSlides) {
  StreamState state(/*num_sensors=*/1, /*history=*/3);
  for (float v : {1.0f, 2.0f, 3.0f, 4.0f, 5.0f}) state.Push({v});
  Tensor w = state.Window();
  ASSERT_EQ(w.shape(), (Shape{1, 1, 3, 1}));
  // Last 3 observations, oldest first: 3, 4, 5.
  EXPECT_FLOAT_EQ(w.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(w.data()[1], 4.0f);
  EXPECT_FLOAT_EQ(w.data()[2], 5.0f);
}

TEST(StreamStateTest, SensorsUpdateIndependently) {
  StreamState state(/*num_sensors=*/2, /*history=*/2);
  const float a0 = 1.0f, a1 = 2.0f;
  state.PushSensor(0, &a0);
  state.PushSensor(0, &a1);
  EXPECT_FALSE(state.ready());  // sensor 1 still empty
  EXPECT_EQ(state.min_filled(), 0);
  const float b0 = 10.0f, b1 = 20.0f;
  state.PushSensor(1, &b0);
  state.PushSensor(1, &b1);
  EXPECT_TRUE(state.ready());
  Tensor w = state.Window();
  EXPECT_FLOAT_EQ(w.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(w.data()[1], 2.0f);
  EXPECT_FLOAT_EQ(w.data()[2], 10.0f);
  EXPECT_FLOAT_EQ(w.data()[3], 20.0f);
}

TEST(StreamStateTest, WindowIntoReusesBuffer) {
  StreamState state(/*num_sensors=*/1, /*history=*/2);
  state.Push({1.0f});
  state.Push({2.0f});
  Tensor out;
  state.WindowInto(&out);
  const float* first = out.data();
  state.Push({3.0f});
  state.WindowInto(&out);
  EXPECT_EQ(out.data(), first);  // same allocation, new contents
  EXPECT_FLOAT_EQ(out.data()[0], 2.0f);
  EXPECT_FLOAT_EQ(out.data()[1], 3.0f);
}

// ---------------------------------------------------------------------------
// Serving checkpoints + InferenceSession

struct Fixture {
  data::TrafficDataset dataset;
  baselines::ModelSettings settings;
  std::unique_ptr<train::ForecastModel> model;
  ServingInfo info;
  std::string path;
};

Fixture MakeFixture(const std::string& file) {
  Fixture f;
  data::GeneratorOptions gen;
  gen.num_roads = 2;
  gen.sensors_per_road = 2;
  gen.num_days = 2;
  gen.steps_per_day = 48;
  gen.seed = 7;
  f.dataset = data::GenerateTraffic(gen);
  f.settings.history = 12;
  f.settings.horizon = 3;
  f.settings.d_model = 8;
  f.settings.window_sizes = {3, 2, 2};
  f.settings.latent_dim = 4;
  f.settings.predictor_hidden = 16;
  f.model = baselines::MakeModel("ST-WA", f.dataset, f.settings);
  f.info.model = "ST-WA";
  f.info.settings = f.settings;
  f.info.num_sensors = f.dataset.num_sensors();
  f.info.num_features = f.dataset.num_features();
  f.info.scaler_mean = 200.0f;
  f.info.scaler_std = 55.0f;
  f.path = TempPath(file);
  SaveServingCheckpoint(*f.model, f.info, f.path);
  return f;
}

TEST(ServingCheckpointTest, InfoRoundTrips) {
  Fixture f = MakeFixture("stwa_serve_info.bin");
  ServingInfo got = ReadServingInfo(f.path);
  EXPECT_EQ(got.model, "ST-WA");
  EXPECT_EQ(got.num_sensors, f.info.num_sensors);
  EXPECT_EQ(got.num_features, f.info.num_features);
  EXPECT_EQ(got.settings.history, f.settings.history);
  EXPECT_EQ(got.settings.horizon, f.settings.horizon);
  EXPECT_EQ(got.settings.d_model, f.settings.d_model);
  EXPECT_EQ(got.settings.window_sizes, f.settings.window_sizes);
  EXPECT_EQ(got.settings.latent_dim, f.settings.latent_dim);
  // Scaler statistics must round-trip bit-exactly (%.9g formatting).
  EXPECT_EQ(got.scaler_mean, f.info.scaler_mean);
  EXPECT_EQ(got.scaler_std, f.info.scaler_std);
  std::remove(f.path.c_str());
}

TEST(ServingCheckpointTest, PlainParameterCheckpointRejected) {
  Fixture f = MakeFixture("stwa_serve_plain.bin");
  // Re-save without serving metadata.
  nn::SaveParameters(*f.model, f.path);
  EXPECT_THROW(ReadServingInfo(f.path), Error);
  EXPECT_THROW(InferenceSession::Open(f.path), Error);
  std::remove(f.path.c_str());
}

TEST(InferenceSessionTest, ForecastMatchesManualPipelineBitExactly) {
  Fixture f = MakeFixture("stwa_serve_manual.bin");
  auto session = InferenceSession::Open(f.path);
  Tensor window =
      ops::Slice(f.dataset.values, 1, 5, f.settings.history);  // [N, H, F]
  Tensor got = session->Forecast(window);
  ASSERT_EQ(got.shape(),
            (Shape{f.info.num_sensors, f.settings.horizon, 1}));

  // Reference: the original (saved) model driven by hand through the same
  // scaler math the trainer uses.
  data::StandardScaler scaler(f.info.scaler_mean, f.info.scaler_std);
  Tensor x = scaler.Transform(window).Reshape(
      {1, f.info.num_sensors, f.settings.history, 1});
  ag::NoGradMode no_grad;
  Tensor y = f.model->Forward(x, /*training=*/false).value();
  Tensor want = scaler.InverseTransform(y).Reshape(
      {f.info.num_sensors, f.settings.horizon, 1});
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        sizeof(float) * static_cast<size_t>(want.size())),
            0);
  std::remove(f.path.c_str());
}

TEST(InferenceSessionTest, BatchedForecastIsBitIdenticalPerSample) {
  Fixture f = MakeFixture("stwa_serve_batch.bin");
  auto session = InferenceSession::Open(f.path);
  const int64_t n = f.info.num_sensors, h = f.settings.history;
  Tensor w0 = ops::Slice(f.dataset.values, 1, 0, h);
  Tensor w1 = ops::Slice(f.dataset.values, 1, 9, h);
  Tensor single0 = session->Forecast(w0);
  Tensor single1 = session->Forecast(w1);

  Tensor batch = Tensor::Uninit({2, n, h, 1});
  std::memcpy(batch.data(), w0.data(),
              sizeof(float) * static_cast<size_t>(w0.size()));
  std::memcpy(batch.data() + w0.size(), w1.data(),
              sizeof(float) * static_cast<size_t>(w1.size()));
  Tensor both = session->Forecast(batch);
  ASSERT_EQ(both.dim(0), 2);
  const int64_t per = single0.size();
  EXPECT_EQ(std::memcmp(both.data(), single0.data(),
                        sizeof(float) * static_cast<size_t>(per)),
            0);
  EXPECT_EQ(std::memcmp(both.data() + per, single1.data(),
                        sizeof(float) * static_cast<size_t>(per)),
            0);
  std::remove(f.path.c_str());
}

TEST(InferenceSessionTest, TwoSessionsAgreeBitExactly) {
  Fixture f = MakeFixture("stwa_serve_two.bin");
  auto s1 = InferenceSession::Open(f.path);
  auto s2 = InferenceSession::Open(f.path);
  Tensor window = ops::Slice(f.dataset.values, 1, 3, f.settings.history);
  Tensor a = s1->Forecast(window);
  Tensor b = s2->Forecast(window);
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.size())),
            0);
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// Reduced-precision sessions

TEST(PrecisionSessionTest, TiersAreDeterministicAndCloseToFp32) {
  Fixture f = MakeFixture("stwa_serve_prec.bin");
  Tensor window = ops::Slice(f.dataset.values, 1, 4, f.settings.history);
  SessionConfig fp32_cfg;
  fp32_cfg.precision = simd::Precision::kFp32;
  Tensor baseline = InferenceSession::Open(f.path, fp32_cfg)->Forecast(window);

  for (const simd::Precision tier :
       {simd::Precision::kBf16, simd::Precision::kInt8}) {
    SessionConfig cfg;
    cfg.precision = tier;
    const int64_t active_before = lowp::ActiveCount();
    Tensor a, b;
    {
      auto s1 = InferenceSession::Open(f.path, cfg);
      EXPECT_EQ(s1->precision(), tier);
      EXPECT_GT(lowp::ActiveCount(), active_before)
          << "session did not register any reduced-precision packs";
      auto s2 = InferenceSession::Open(f.path, cfg);
      a = s1->Forecast(window);
      b = s2->Forecast(window);
    }
    EXPECT_EQ(lowp::ActiveCount(), active_before)
        << "session destructor leaked packs for "
        << simd::PrecisionName(tier);
    // Two sessions of the same tier are bit-identical.
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) * static_cast<size_t>(a.size())),
              0)
        << simd::PrecisionName(tier);
    // And close to fp32: a tiny (scaled-down) model, so loose bounds.
    EXPECT_TRUE(ops::AllClose(a, baseline, 0.05f, 1.0f))
        << simd::PrecisionName(tier);
  }
  std::remove(f.path.c_str());
}

TEST(PrecisionSessionTest, V2CheckpointWithoutScalesServesIdentically) {
  // A v2-era serving checkpoint predates baked int8 scales. An int8
  // session must recompute them from the fp32 weights and serve
  // bit-identically to a session on the v3 file (the baked scales are
  // the same Int8ChannelScales formula, %.9g round-tripped).
  Fixture f = MakeFixture("stwa_serve_prec_v2.bin");
  ServingInfo v3_info = ReadServingInfo(f.path);
  EXPECT_FALSE(v3_info.int8_scales.empty())
      << "v3 serving checkpoints should bake int8 scales";

  const std::string v2_path = TempPath("stwa_serve_prec_v2_old.bin");
  // MakeServingMeta carries everything *except* the scale entries, which
  // SaveServingCheckpoint adds on top — exactly a v2 writer's output.
  nn::SaveParameters(*f.model, v2_path, MakeServingMeta(f.info));
  {
    std::fstream patch(v2_path,
                       std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(patch.good());
    const uint32_t v2 = 2;
    patch.seekp(4);  // version word sits after the u32 magic
    patch.write(reinterpret_cast<const char*>(&v2), sizeof(v2));
  }
  ServingInfo v2_info = ReadServingInfo(v2_path);
  EXPECT_TRUE(v2_info.int8_scales.empty());
  EXPECT_EQ(v2_info.model, "ST-WA");

  SessionConfig cfg;
  cfg.precision = simd::Precision::kInt8;
  Tensor window = ops::Slice(f.dataset.values, 1, 2, f.settings.history);
  Tensor from_v3 = InferenceSession::Open(f.path, cfg)->Forecast(window);
  Tensor from_v2 = InferenceSession::Open(v2_path, cfg)->Forecast(window);
  EXPECT_EQ(
      std::memcmp(from_v3.data(), from_v2.data(),
                  sizeof(float) * static_cast<size_t>(from_v3.size())),
      0)
      << "recomputed scales must match baked scales bit-for-bit";
  std::remove(f.path.c_str());
  std::remove(v2_path.c_str());
}

TEST(PrecisionSessionTest, ServerHonoursSessionPrecision) {
  Fixture f = MakeFixture("stwa_serve_prec_srv.bin");
  Tensor window = ops::Slice(f.dataset.values, 1, 0, f.settings.history);
  SessionConfig cfg;
  cfg.precision = simd::Precision::kBf16;
  Tensor want = InferenceSession::Open(f.path, cfg)->Forecast(window);

  ServerOptions opts;
  opts.workers = 2;
  opts.batching.max_batch = 4;
  opts.batching.max_delay = std::chrono::microseconds(2000);
  opts.session = cfg;
  Server server(f.path, opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.Submit(window));
  for (auto& fut : futures) {
    Response r = fut.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(
        std::memcmp(r.forecast.data(), want.data(),
                    sizeof(float) * static_cast<size_t>(want.size())),
        0)
        << "server bf16 output must match an offline bf16 session";
  }
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// BatchingQueue

TEST(BatchingQueueTest, CoalescesUpToMaxBatch) {
  BatchingOptions opts;
  opts.max_batch = 3;
  opts.max_delay = std::chrono::microseconds(60'000'000);
  BatchingQueue queue(opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(queue.Submit(Tensor(Shape{1, 1, 1}),
                                   std::chrono::microseconds(60'000'000)));
  }
  std::vector<Request> first = queue.NextBatch();
  EXPECT_EQ(first.size(), 3u);
  queue.Shutdown();  // the 2 leftovers are under max_batch and far from
                     // their flush point; shutdown releases them
  std::vector<Request> second = queue.NextBatch();
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(queue.queue_depth(), 0);
  for (auto& r : first) r.promise.set_value(Response{});
  for (auto& r : second) r.promise.set_value(Response{});
}

TEST(BatchingQueueTest, ShedsOnCapacityOverflow) {
  BatchingOptions opts;
  opts.max_batch = 8;
  opts.capacity = 2;
  BatchingQueue queue(opts);
  auto f1 = queue.Submit(Tensor(Shape{1, 1, 1}),
                         std::chrono::microseconds(1'000'000));
  auto f2 = queue.Submit(Tensor(Shape{1, 1, 1}),
                         std::chrono::microseconds(1'000'000));
  auto f3 = queue.Submit(Tensor(Shape{1, 1, 1}),
                         std::chrono::microseconds(1'000'000));
  Response shed = f3.get();  // resolved immediately, no consumer needed
  EXPECT_FALSE(shed.ok);
  EXPECT_TRUE(shed.degraded);
  EXPECT_NE(shed.error.find("queue full"), std::string::npos);
  EXPECT_EQ(queue.shed(), 1);
  EXPECT_EQ(queue.queue_depth(), 2);
  queue.Shutdown();
  // Drain so the two queued promises resolve.
  std::vector<Request> rest = queue.NextBatch();
  for (auto& r : rest) r.promise.set_value(Response{});
  (void)f1;
  (void)f2;
}

TEST(BatchingQueueTest, ShedsExpiredRequestsAsDegraded) {
  BatchingOptions opts;
  opts.max_batch = 8;
  opts.max_delay = std::chrono::microseconds(1000);
  BatchingQueue queue(opts);
  auto f = queue.Submit(Tensor(Shape{1, 1, 1}),
                        std::chrono::microseconds(500));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Shutdown();  // so NextBatch returns once the queue is drained
  std::vector<Request> batch = queue.NextBatch();  // finds it expired
  EXPECT_TRUE(batch.empty());
  Response r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.degraded);
  EXPECT_NE(r.error.find("deadline"), std::string::npos);
  EXPECT_EQ(queue.shed(), 1);
}

TEST(BatchingQueueTest, SubmitAfterShutdownIsShed) {
  BatchingQueue queue(BatchingOptions{});
  queue.Shutdown();
  Response r = queue.Submit(Tensor(Shape{1, 1, 1}),
                            std::chrono::microseconds(1000))
                   .get();
  EXPECT_FALSE(r.ok);
}

// ---------------------------------------------------------------------------
// Server: batching determinism and overload behaviour

TEST(ServerTest, ForecastsBitIdenticalAcrossWorkerAndBatchConfigs) {
  Fixture f = MakeFixture("stwa_serve_server.bin");
  const int64_t h = f.settings.history;
  std::vector<Tensor> windows;
  for (int64_t t = 0; t < 6; ++t) {
    windows.push_back(ops::Slice(f.dataset.values, 1, t * 3, h));
  }
  auto offline = InferenceSession::Open(f.path);
  std::vector<Tensor> expected;
  for (const Tensor& w : windows) expected.push_back(offline->Forecast(w));

  struct Config {
    int workers;
    int64_t max_batch;
  };
  for (const Config& c : {Config{1, 1}, Config{2, 4}, Config{3, 8}}) {
    ServerOptions opts;
    opts.workers = c.workers;
    opts.batching.max_batch = c.max_batch;
    opts.batching.max_delay = std::chrono::microseconds(2000);
    opts.default_deadline = std::chrono::seconds(60);
    Server server(f.path, opts);
    std::vector<std::future<Response>> futures;
    for (int round = 0; round < 3; ++round) {
      for (const Tensor& w : windows) futures.push_back(server.Submit(w));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      Response r = futures[i].get();
      ASSERT_TRUE(r.ok) << "workers=" << c.workers
                        << " max_batch=" << c.max_batch << ": " << r.error;
      EXPECT_FALSE(r.degraded);
      const Tensor& want = expected[i % windows.size()];
      ASSERT_EQ(r.forecast.shape(), want.shape());
      EXPECT_EQ(
          std::memcmp(r.forecast.data(), want.data(),
                      sizeof(float) * static_cast<size_t>(want.size())),
          0)
          << "workers=" << c.workers << " max_batch=" << c.max_batch
          << " request " << i;
    }
    ServerStats stats = server.Stats();
    EXPECT_EQ(stats.completed, static_cast<int64_t>(futures.size()));
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.latency.count(), stats.completed);
  }
  std::remove(f.path.c_str());
}

TEST(ServerTest, ImpossibleDeadlinesAreShedWithDegradedFlag) {
  Fixture f = MakeFixture("stwa_serve_overload.bin");
  ServerOptions opts;
  opts.workers = 1;
  opts.batching.max_batch = 1;
  // Hold batches back long enough that a 1 us deadline always expires.
  opts.batching.max_delay = std::chrono::microseconds(20'000);
  Server server(f.path, opts);
  Tensor window = ops::Slice(f.dataset.values, 1, 0, f.settings.history);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(window, std::chrono::microseconds(1)));
  }
  int64_t degraded = 0;
  for (auto& fut : futures) {
    Response r = fut.get();
    if (!r.ok) {
      EXPECT_TRUE(r.degraded);
      ++degraded;
    }
  }
  EXPECT_GT(degraded, 0);
  EXPECT_EQ(server.Stats().shed, degraded);
  std::remove(f.path.c_str());
}

TEST(ServerTest, RejectsWrongWindowShape) {
  Fixture f = MakeFixture("stwa_serve_shape.bin");
  ServerOptions opts;
  Server server(f.path, opts);
  EXPECT_THROW(server.Submit(Tensor(Shape{1, 2, 3})), Error);
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, ParsesObservations) {
  Command c = ParseCommand("obs 1.5 2 3");
  EXPECT_EQ(c.kind, Command::Kind::kObs);
  ASSERT_EQ(c.values.size(), 3u);
  EXPECT_FLOAT_EQ(c.values[0], 1.5f);

  Command s = ParseCommand("obs1 2 7.25");
  EXPECT_EQ(s.kind, Command::Kind::kObsSensor);
  EXPECT_EQ(s.sensor, 2);
  ASSERT_EQ(s.values.size(), 1u);
  EXPECT_FLOAT_EQ(s.values[0], 7.25f);
}

TEST(ProtocolTest, ParsesControlAndSkipsCommentsAndBlanks) {
  EXPECT_EQ(ParseCommand("forecast").kind, Command::Kind::kForecast);
  EXPECT_EQ(ParseCommand("stats").kind, Command::Kind::kStats);
  EXPECT_EQ(ParseCommand("quit").kind, Command::Kind::kQuit);
  Command blank = ParseCommand("   ");
  EXPECT_EQ(blank.kind, Command::Kind::kInvalid);
  EXPECT_TRUE(blank.error.empty());
  Command comment = ParseCommand("# hello");
  EXPECT_EQ(comment.kind, Command::Kind::kInvalid);
  EXPECT_TRUE(comment.error.empty());
  Command bad = ParseCommand("obs 1 two 3");
  EXPECT_EQ(bad.kind, Command::Kind::kInvalid);
  EXPECT_FALSE(bad.error.empty());
}

TEST(ProtocolTest, FormatsForecastAndShedResponses) {
  Response ok;
  ok.ok = true;
  ok.forecast = Tensor(Shape{2, 2, 1});
  ok.forecast.data()[0] = 1.0f;
  ok.forecast.data()[3] = 4.5f;
  std::string line = FormatForecastResponse(ok, 2, 2, 1);
  EXPECT_EQ(line.rfind("forecast ok=1 degraded=0 n=2 u=2 ", 0), 0u) << line;
  EXPECT_NE(line.find("4.5"), std::string::npos);

  Response shed;
  shed.degraded = true;
  shed.error = "deadline expired after 10us in queue";
  std::string bad = FormatForecastResponse(shed, 2, 2, 1);
  EXPECT_EQ(bad.rfind("forecast ok=0 degraded=1 err=", 0), 0u) << bad;
  EXPECT_EQ(bad.find(' ', bad.find("err=")), std::string::npos)
      << "shed reason must be one token: " << bad;
}

}  // namespace
}  // namespace serve
}  // namespace stwa
