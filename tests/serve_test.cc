// Tests for the serving subsystem: latency histogram, streaming state,
// serving checkpoints, inference sessions, micro-batching determinism and
// overload shedding, and the line protocol.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/no_grad.h"
#include "baselines/registry.h"
#include "common/check.h"
#include "data/traffic_generator.h"
#include "metrics/latency.h"
#include "nn/serialize.h"
#include "serve/batching_queue.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stream_state.h"
#include "simd/lowp.h"
#include "tensor/lowp_cache.h"
#include "tensor/ops.h"

namespace stwa {
namespace serve {
namespace {

std::string TempPath(const std::string& name) { return "/tmp/" + name; }

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  metrics::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean_micros(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(LatencyHistogramTest, SingleValueIsExact) {
  metrics::LatencyHistogram h;
  h.Record(500.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.mean_micros(), 500.0);
  // Percentiles clamp to the observed extremes, so a single value is
  // reported exactly at every percentile.
  EXPECT_DOUBLE_EQ(h.p50(), 500.0);
  EXPECT_DOUBLE_EQ(h.p99(), 500.0);
}

TEST(LatencyHistogramTest, PercentilesOrderedAndBounded) {
  metrics::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_NEAR(h.mean_micros(), 500.5, 1e-9);
  const double p50 = h.p50(), p95 = h.p95(), p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucketing bounds the relative error by one bucket (~9%).
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.10);
  EXPECT_NEAR(p95, 950.0, 950.0 * 0.10);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.10);
  EXPECT_GE(p50, h.min_micros());
  EXPECT_LE(p99, h.max_micros());
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  metrics::LatencyHistogram a, b, both;
  for (int i = 1; i <= 100; ++i) {
    a.Record(static_cast<double>(i));
    both.Record(static_cast<double>(i));
  }
  for (int i = 1000; i <= 1100; ++i) {
    b.Record(static_cast<double>(i));
    both.Record(static_cast<double>(i));
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.mean_micros(), both.mean_micros());
  EXPECT_DOUBLE_EQ(a.min_micros(), both.min_micros());
  EXPECT_DOUBLE_EQ(a.max_micros(), both.max_micros());
  EXPECT_DOUBLE_EQ(a.p95(), both.p95());
}

TEST(LatencyHistogramTest, OutOfRangeValuesClampInsteadOfCrashing) {
  metrics::LatencyHistogram h;
  h.Record(-5.0);
  h.Record(0.0);
  h.Record(1e12);  // far past the last bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_GT(h.p99(), 0.0);
}

// ---------------------------------------------------------------------------
// StreamState

TEST(StreamStateTest, WarmupProgressAndReady) {
  StreamState state(/*num_sensors=*/2, /*history=*/3);
  EXPECT_FALSE(state.ready());
  EXPECT_EQ(state.min_filled(), 0);
  state.Push({1.0f, 10.0f});
  state.Push({2.0f, 20.0f});
  EXPECT_FALSE(state.ready());
  EXPECT_EQ(state.min_filled(), 2);
  state.Push({3.0f, 30.0f});
  EXPECT_TRUE(state.ready());
  EXPECT_EQ(state.seen(0), 3);
}

TEST(StreamStateTest, WindowIsOldestFirstAndSlides) {
  StreamState state(/*num_sensors=*/1, /*history=*/3);
  for (float v : {1.0f, 2.0f, 3.0f, 4.0f, 5.0f}) state.Push({v});
  Tensor w = state.Window();
  ASSERT_EQ(w.shape(), (Shape{1, 1, 3, 1}));
  // Last 3 observations, oldest first: 3, 4, 5.
  EXPECT_FLOAT_EQ(w.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(w.data()[1], 4.0f);
  EXPECT_FLOAT_EQ(w.data()[2], 5.0f);
}

TEST(StreamStateTest, SensorsUpdateIndependently) {
  StreamState state(/*num_sensors=*/2, /*history=*/2);
  const float a0 = 1.0f, a1 = 2.0f;
  state.PushSensor(0, &a0);
  state.PushSensor(0, &a1);
  EXPECT_FALSE(state.ready());  // sensor 1 still empty
  EXPECT_EQ(state.min_filled(), 0);
  const float b0 = 10.0f, b1 = 20.0f;
  state.PushSensor(1, &b0);
  state.PushSensor(1, &b1);
  EXPECT_TRUE(state.ready());
  Tensor w = state.Window();
  EXPECT_FLOAT_EQ(w.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(w.data()[1], 2.0f);
  EXPECT_FLOAT_EQ(w.data()[2], 10.0f);
  EXPECT_FLOAT_EQ(w.data()[3], 20.0f);
}

TEST(StreamStateTest, WindowIntoReusesBuffer) {
  StreamState state(/*num_sensors=*/1, /*history=*/2);
  state.Push({1.0f});
  state.Push({2.0f});
  Tensor out;
  state.WindowInto(&out);
  const float* first = out.data();
  state.Push({3.0f});
  state.WindowInto(&out);
  EXPECT_EQ(out.data(), first);  // same allocation, new contents
  EXPECT_FLOAT_EQ(out.data()[0], 2.0f);
  EXPECT_FLOAT_EQ(out.data()[1], 3.0f);
}

// ---------------------------------------------------------------------------
// Serving checkpoints + InferenceSession

struct Fixture {
  data::TrafficDataset dataset;
  baselines::ModelSettings settings;
  std::unique_ptr<train::ForecastModel> model;
  ServingInfo info;
  std::string path;
};

Fixture MakeFixture(const std::string& file) {
  Fixture f;
  data::GeneratorOptions gen;
  gen.num_roads = 2;
  gen.sensors_per_road = 2;
  gen.num_days = 2;
  gen.steps_per_day = 48;
  gen.seed = 7;
  f.dataset = data::GenerateTraffic(gen);
  f.settings.history = 12;
  f.settings.horizon = 3;
  f.settings.d_model = 8;
  f.settings.window_sizes = {3, 2, 2};
  f.settings.latent_dim = 4;
  f.settings.predictor_hidden = 16;
  f.model = baselines::MakeModel("ST-WA", f.dataset, f.settings);
  f.info.model = "ST-WA";
  f.info.settings = f.settings;
  f.info.num_sensors = f.dataset.num_sensors();
  f.info.num_features = f.dataset.num_features();
  f.info.scaler_mean = 200.0f;
  f.info.scaler_std = 55.0f;
  f.path = TempPath(file);
  SaveServingCheckpoint(*f.model, f.info, f.path);
  return f;
}

TEST(ServingCheckpointTest, InfoRoundTrips) {
  Fixture f = MakeFixture("stwa_serve_info.bin");
  ServingInfo got = ReadServingInfo(f.path);
  EXPECT_EQ(got.model, "ST-WA");
  EXPECT_EQ(got.num_sensors, f.info.num_sensors);
  EXPECT_EQ(got.num_features, f.info.num_features);
  EXPECT_EQ(got.settings.history, f.settings.history);
  EXPECT_EQ(got.settings.horizon, f.settings.horizon);
  EXPECT_EQ(got.settings.d_model, f.settings.d_model);
  EXPECT_EQ(got.settings.window_sizes, f.settings.window_sizes);
  EXPECT_EQ(got.settings.latent_dim, f.settings.latent_dim);
  // Scaler statistics must round-trip bit-exactly (%.9g formatting).
  EXPECT_EQ(got.scaler_mean, f.info.scaler_mean);
  EXPECT_EQ(got.scaler_std, f.info.scaler_std);
  std::remove(f.path.c_str());
}

TEST(ServingCheckpointTest, PlainParameterCheckpointRejected) {
  Fixture f = MakeFixture("stwa_serve_plain.bin");
  // Re-save without serving metadata.
  nn::SaveParameters(*f.model, f.path);
  EXPECT_THROW(ReadServingInfo(f.path), Error);
  EXPECT_THROW(InferenceSession::Open(f.path), Error);
  std::remove(f.path.c_str());
}

TEST(InferenceSessionTest, ForecastMatchesManualPipelineBitExactly) {
  Fixture f = MakeFixture("stwa_serve_manual.bin");
  auto session = InferenceSession::Open(f.path);
  Tensor window =
      ops::Slice(f.dataset.values, 1, 5, f.settings.history);  // [N, H, F]
  Tensor got = session->Forecast(window);
  ASSERT_EQ(got.shape(),
            (Shape{f.info.num_sensors, f.settings.horizon, 1}));

  // Reference: the original (saved) model driven by hand through the same
  // scaler math the trainer uses.
  data::StandardScaler scaler(f.info.scaler_mean, f.info.scaler_std);
  Tensor x = scaler.Transform(window).Reshape(
      {1, f.info.num_sensors, f.settings.history, 1});
  ag::NoGradMode no_grad;
  Tensor y = f.model->Forward(x, /*training=*/false).value();
  Tensor want = scaler.InverseTransform(y).Reshape(
      {f.info.num_sensors, f.settings.horizon, 1});
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        sizeof(float) * static_cast<size_t>(want.size())),
            0);
  std::remove(f.path.c_str());
}

TEST(InferenceSessionTest, BatchedForecastIsBitIdenticalPerSample) {
  Fixture f = MakeFixture("stwa_serve_batch.bin");
  auto session = InferenceSession::Open(f.path);
  const int64_t n = f.info.num_sensors, h = f.settings.history;
  Tensor w0 = ops::Slice(f.dataset.values, 1, 0, h);
  Tensor w1 = ops::Slice(f.dataset.values, 1, 9, h);
  Tensor single0 = session->Forecast(w0);
  Tensor single1 = session->Forecast(w1);

  Tensor batch = Tensor::Uninit({2, n, h, 1});
  std::memcpy(batch.data(), w0.data(),
              sizeof(float) * static_cast<size_t>(w0.size()));
  std::memcpy(batch.data() + w0.size(), w1.data(),
              sizeof(float) * static_cast<size_t>(w1.size()));
  Tensor both = session->Forecast(batch);
  ASSERT_EQ(both.dim(0), 2);
  const int64_t per = single0.size();
  EXPECT_EQ(std::memcmp(both.data(), single0.data(),
                        sizeof(float) * static_cast<size_t>(per)),
            0);
  EXPECT_EQ(std::memcmp(both.data() + per, single1.data(),
                        sizeof(float) * static_cast<size_t>(per)),
            0);
  std::remove(f.path.c_str());
}

TEST(InferenceSessionTest, TwoSessionsAgreeBitExactly) {
  Fixture f = MakeFixture("stwa_serve_two.bin");
  auto s1 = InferenceSession::Open(f.path);
  auto s2 = InferenceSession::Open(f.path);
  Tensor window = ops::Slice(f.dataset.values, 1, 3, f.settings.history);
  Tensor a = s1->Forecast(window);
  Tensor b = s2->Forecast(window);
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.size())),
            0);
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// Reduced-precision sessions

TEST(PrecisionSessionTest, TiersAreDeterministicAndCloseToFp32) {
  Fixture f = MakeFixture("stwa_serve_prec.bin");
  Tensor window = ops::Slice(f.dataset.values, 1, 4, f.settings.history);
  SessionConfig fp32_cfg;
  fp32_cfg.precision = simd::Precision::kFp32;
  Tensor baseline = InferenceSession::Open(f.path, fp32_cfg)->Forecast(window);

  for (const simd::Precision tier :
       {simd::Precision::kBf16, simd::Precision::kInt8}) {
    SessionConfig cfg;
    cfg.precision = tier;
    const int64_t active_before = lowp::ActiveCount();
    Tensor a, b;
    {
      auto s1 = InferenceSession::Open(f.path, cfg);
      EXPECT_EQ(s1->precision(), tier);
      EXPECT_GT(lowp::ActiveCount(), active_before)
          << "session did not register any reduced-precision packs";
      auto s2 = InferenceSession::Open(f.path, cfg);
      a = s1->Forecast(window);
      b = s2->Forecast(window);
    }
    EXPECT_EQ(lowp::ActiveCount(), active_before)
        << "session destructor leaked packs for "
        << simd::PrecisionName(tier);
    // Two sessions of the same tier are bit-identical.
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) * static_cast<size_t>(a.size())),
              0)
        << simd::PrecisionName(tier);
    // And close to fp32: a tiny (scaled-down) model, so loose bounds.
    EXPECT_TRUE(ops::AllClose(a, baseline, 0.05f, 1.0f))
        << simd::PrecisionName(tier);
  }
  std::remove(f.path.c_str());
}

TEST(PrecisionSessionTest, V2CheckpointWithoutScalesServesIdentically) {
  // A v2-era serving checkpoint predates baked int8 scales. An int8
  // session must recompute them from the fp32 weights and serve
  // bit-identically to a session on the v3 file (the baked scales are
  // the same Int8ChannelScales formula, %.9g round-tripped).
  Fixture f = MakeFixture("stwa_serve_prec_v2.bin");
  ServingInfo v3_info = ReadServingInfo(f.path);
  EXPECT_FALSE(v3_info.int8_scales.empty())
      << "v3 serving checkpoints should bake int8 scales";

  const std::string v2_path = TempPath("stwa_serve_prec_v2_old.bin");
  // MakeServingMeta carries everything *except* the scale entries, which
  // SaveServingCheckpoint adds on top — exactly a v2 writer's output.
  nn::SaveParameters(*f.model, v2_path, MakeServingMeta(f.info));
  {
    std::fstream patch(v2_path,
                       std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(patch.good());
    const uint32_t v2 = 2;
    patch.seekp(4);  // version word sits after the u32 magic
    patch.write(reinterpret_cast<const char*>(&v2), sizeof(v2));
  }
  ServingInfo v2_info = ReadServingInfo(v2_path);
  EXPECT_TRUE(v2_info.int8_scales.empty());
  EXPECT_EQ(v2_info.model, "ST-WA");

  SessionConfig cfg;
  cfg.precision = simd::Precision::kInt8;
  Tensor window = ops::Slice(f.dataset.values, 1, 2, f.settings.history);
  Tensor from_v3 = InferenceSession::Open(f.path, cfg)->Forecast(window);
  Tensor from_v2 = InferenceSession::Open(v2_path, cfg)->Forecast(window);
  EXPECT_EQ(
      std::memcmp(from_v3.data(), from_v2.data(),
                  sizeof(float) * static_cast<size_t>(from_v3.size())),
      0)
      << "recomputed scales must match baked scales bit-for-bit";
  std::remove(f.path.c_str());
  std::remove(v2_path.c_str());
}

TEST(PrecisionSessionTest, ServerHonoursSessionPrecision) {
  Fixture f = MakeFixture("stwa_serve_prec_srv.bin");
  Tensor window = ops::Slice(f.dataset.values, 1, 0, f.settings.history);
  SessionConfig cfg;
  cfg.precision = simd::Precision::kBf16;
  Tensor want = InferenceSession::Open(f.path, cfg)->Forecast(window);

  ServerOptions opts;
  opts.workers = 2;
  opts.batching.max_batch = 4;
  opts.batching.max_delay = std::chrono::microseconds(2000);
  opts.session = cfg;
  Server server(f.path, opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.Submit(window));
  for (auto& fut : futures) {
    Response r = fut.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(
        std::memcmp(r.forecast.data(), want.data(),
                    sizeof(float) * static_cast<size_t>(want.size())),
        0)
        << "server bf16 output must match an offline bf16 session";
  }
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// BatchingQueue

TEST(BatchingQueueTest, CoalescesUpToMaxBatch) {
  BatchingOptions opts;
  opts.max_batch = 3;
  opts.max_delay = std::chrono::microseconds(60'000'000);
  BatchingQueue queue(opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(queue.Submit(Tensor(Shape{1, 1, 1}),
                                   std::chrono::microseconds(60'000'000)));
  }
  std::vector<Request> first = queue.NextBatch();
  EXPECT_EQ(first.size(), 3u);
  queue.Shutdown();  // the 2 leftovers are under max_batch and far from
                     // their flush point; shutdown releases them
  std::vector<Request> second = queue.NextBatch();
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(queue.queue_depth(), 0);
  for (auto& r : first) r.promise.set_value(Response{});
  for (auto& r : second) r.promise.set_value(Response{});
}

TEST(BatchingQueueTest, ShedsOnCapacityOverflow) {
  BatchingOptions opts;
  opts.max_batch = 8;
  opts.capacity = 2;
  BatchingQueue queue(opts);
  auto f1 = queue.Submit(Tensor(Shape{1, 1, 1}),
                         std::chrono::microseconds(1'000'000));
  auto f2 = queue.Submit(Tensor(Shape{1, 1, 1}),
                         std::chrono::microseconds(1'000'000));
  auto f3 = queue.Submit(Tensor(Shape{1, 1, 1}),
                         std::chrono::microseconds(1'000'000));
  Response shed = f3.get();  // resolved immediately, no consumer needed
  EXPECT_FALSE(shed.ok);
  EXPECT_TRUE(shed.degraded);
  EXPECT_NE(shed.error.find("queue full"), std::string::npos);
  EXPECT_EQ(queue.shed(), 1);
  EXPECT_EQ(queue.queue_depth(), 2);
  queue.Shutdown();
  // Drain so the two queued promises resolve.
  std::vector<Request> rest = queue.NextBatch();
  for (auto& r : rest) r.promise.set_value(Response{});
  (void)f1;
  (void)f2;
}

TEST(BatchingQueueTest, ShedsExpiredRequestsAsDegraded) {
  BatchingOptions opts;
  opts.max_batch = 8;
  opts.max_delay = std::chrono::microseconds(1000);
  BatchingQueue queue(opts);
  auto f = queue.Submit(Tensor(Shape{1, 1, 1}),
                        std::chrono::microseconds(500));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Shutdown();  // so NextBatch returns once the queue is drained
  std::vector<Request> batch = queue.NextBatch();  // finds it expired
  EXPECT_TRUE(batch.empty());
  Response r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.degraded);
  EXPECT_NE(r.error.find("deadline"), std::string::npos);
  EXPECT_EQ(queue.shed(), 1);
}

TEST(BatchingQueueTest, SubmitAfterShutdownIsShed) {
  BatchingQueue queue(BatchingOptions{});
  queue.Shutdown();
  Response r = queue.Submit(Tensor(Shape{1, 1, 1}),
                            std::chrono::microseconds(1000))
                   .get();
  EXPECT_FALSE(r.ok);
}

// ---------------------------------------------------------------------------
// Server: batching determinism and overload behaviour

TEST(ServerTest, ForecastsBitIdenticalAcrossWorkerAndBatchConfigs) {
  Fixture f = MakeFixture("stwa_serve_server.bin");
  const int64_t h = f.settings.history;
  std::vector<Tensor> windows;
  for (int64_t t = 0; t < 6; ++t) {
    windows.push_back(ops::Slice(f.dataset.values, 1, t * 3, h));
  }
  auto offline = InferenceSession::Open(f.path);
  std::vector<Tensor> expected;
  for (const Tensor& w : windows) expected.push_back(offline->Forecast(w));

  struct Config {
    int workers;
    int64_t max_batch;
  };
  for (const Config& c : {Config{1, 1}, Config{2, 4}, Config{3, 8}}) {
    ServerOptions opts;
    opts.workers = c.workers;
    opts.batching.max_batch = c.max_batch;
    opts.batching.max_delay = std::chrono::microseconds(2000);
    opts.default_deadline = std::chrono::seconds(60);
    Server server(f.path, opts);
    std::vector<std::future<Response>> futures;
    for (int round = 0; round < 3; ++round) {
      for (const Tensor& w : windows) futures.push_back(server.Submit(w));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      Response r = futures[i].get();
      ASSERT_TRUE(r.ok) << "workers=" << c.workers
                        << " max_batch=" << c.max_batch << ": " << r.error;
      EXPECT_FALSE(r.degraded);
      const Tensor& want = expected[i % windows.size()];
      ASSERT_EQ(r.forecast.shape(), want.shape());
      EXPECT_EQ(
          std::memcmp(r.forecast.data(), want.data(),
                      sizeof(float) * static_cast<size_t>(want.size())),
          0)
          << "workers=" << c.workers << " max_batch=" << c.max_batch
          << " request " << i;
    }
    ServerStats stats = server.Stats();
    EXPECT_EQ(stats.completed, static_cast<int64_t>(futures.size()));
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.latency.count(), stats.completed);
  }
  std::remove(f.path.c_str());
}

TEST(ServerTest, ImpossibleDeadlinesAreShedWithDegradedFlag) {
  Fixture f = MakeFixture("stwa_serve_overload.bin");
  ServerOptions opts;
  opts.workers = 1;
  opts.batching.max_batch = 1;
  // Hold batches back long enough that a 1 us deadline always expires.
  opts.batching.max_delay = std::chrono::microseconds(20'000);
  Server server(f.path, opts);
  Tensor window = ops::Slice(f.dataset.values, 1, 0, f.settings.history);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(window, std::chrono::microseconds(1)));
  }
  int64_t degraded = 0;
  for (auto& fut : futures) {
    Response r = fut.get();
    if (!r.ok) {
      EXPECT_TRUE(r.degraded);
      ++degraded;
    }
  }
  EXPECT_GT(degraded, 0);
  EXPECT_EQ(server.Stats().shed, degraded);
  std::remove(f.path.c_str());
}

TEST(ServerTest, RejectsWrongWindowShape) {
  Fixture f = MakeFixture("stwa_serve_shape.bin");
  ServerOptions opts;
  Server server(f.path, opts);
  EXPECT_THROW(server.Submit(Tensor(Shape{1, 2, 3})), Error);
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, ParsesObservations) {
  Command c = ParseCommand("obs 1.5 2 3");
  EXPECT_EQ(c.kind, Command::Kind::kObs);
  ASSERT_EQ(c.values.size(), 3u);
  EXPECT_FLOAT_EQ(c.values[0], 1.5f);

  Command s = ParseCommand("obs1 2 7.25");
  EXPECT_EQ(s.kind, Command::Kind::kObsSensor);
  EXPECT_EQ(s.sensor, 2);
  ASSERT_EQ(s.values.size(), 1u);
  EXPECT_FLOAT_EQ(s.values[0], 7.25f);
}

TEST(ProtocolTest, ParsesControlAndSkipsCommentsAndBlanks) {
  EXPECT_EQ(ParseCommand("forecast").kind, Command::Kind::kForecast);
  EXPECT_EQ(ParseCommand("stats").kind, Command::Kind::kStats);
  EXPECT_EQ(ParseCommand("quit").kind, Command::Kind::kQuit);
  Command blank = ParseCommand("   ");
  EXPECT_EQ(blank.kind, Command::Kind::kInvalid);
  EXPECT_TRUE(blank.error.empty());
  Command comment = ParseCommand("# hello");
  EXPECT_EQ(comment.kind, Command::Kind::kInvalid);
  EXPECT_TRUE(comment.error.empty());
  Command bad = ParseCommand("obs 1 two 3");
  EXPECT_EQ(bad.kind, Command::Kind::kInvalid);
  EXPECT_FALSE(bad.error.empty());
}

TEST(ProtocolTest, FormatsForecastAndShedResponses) {
  Response ok;
  ok.ok = true;
  ok.forecast = Tensor(Shape{2, 2, 1});
  ok.forecast.data()[0] = 1.0f;
  ok.forecast.data()[3] = 4.5f;
  std::string line = FormatForecastResponse(ok, 2, 2, 1);
  EXPECT_EQ(line.rfind("forecast ok=1 degraded=0 n=2 u=2 ", 0), 0u) << line;
  EXPECT_NE(line.find("4.5"), std::string::npos);

  Response shed;
  shed.degraded = true;
  shed.error = "deadline expired after 10us in queue";
  std::string bad = FormatForecastResponse(shed, 2, 2, 1);
  EXPECT_EQ(bad.rfind("forecast ok=0 degraded=1 err=", 0), 0u) << bad;
  EXPECT_EQ(bad.find(' ', bad.find("err=")), std::string::npos)
      << "shed reason must be one token: " << bad;
}

// ---------------------------------------------------------------------------
// LabeledHistograms

TEST(LabeledHistogramsTest, RecordsPerLabelInFirstUseOrder) {
  metrics::LabeledHistograms h;
  h.Record("cityB", 100.0);
  h.Record("cityA", 200.0);
  h.Record("cityB", 300.0);
  EXPECT_EQ(h.total_count(), 3);
  ASSERT_EQ(h.entries().size(), 2u);
  EXPECT_EQ(h.entries()[0].first, "cityB");
  EXPECT_EQ(h.entries()[1].first, "cityA");
  ASSERT_NE(h.Find("cityB"), nullptr);
  EXPECT_EQ(h.Find("cityB")->count(), 2);
  EXPECT_EQ(h.Find("missing"), nullptr);
}

TEST(LabeledHistogramsTest, MergeCombinesByLabel) {
  metrics::LabeledHistograms a, b;
  a.Record("x", 10.0);
  a.Record("y", 20.0);
  b.Record("y", 30.0);
  b.Record("z", 40.0);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 4);
  ASSERT_EQ(a.entries().size(), 3u);
  EXPECT_EQ(a.Find("y")->count(), 2);
  EXPECT_DOUBLE_EQ(a.Find("y")->mean_micros(), 25.0);
  EXPECT_EQ(a.Find("z")->count(), 1);
}

// ---------------------------------------------------------------------------
// ServerStats::Merge

TEST(ServerStatsTest, MergeAddsCountersAndReweightsMeanBatch) {
  ServerStats a, b;
  a.submitted = 10;
  a.completed = 8;
  a.shed = 2;
  a.batches = 4;
  a.mean_batch = 2.0;  // 8 requests over 4 batches
  a.protocol_errors = 1;
  a.latency.Record(100.0);
  a.per_worker.Record("w0", 100.0);
  b.submitted = 6;
  b.completed = 6;
  b.batches = 2;
  b.mean_batch = 3.0;  // 6 requests over 2 batches
  b.latency.Record(300.0);
  b.per_worker.Record("w0", 300.0);
  a.Merge(b);
  EXPECT_EQ(a.submitted, 16);
  EXPECT_EQ(a.completed, 14);
  EXPECT_EQ(a.shed, 2);
  EXPECT_EQ(a.batches, 6);
  EXPECT_EQ(a.protocol_errors, 1);
  EXPECT_DOUBLE_EQ(a.mean_batch, 14.0 / 6.0);
  EXPECT_EQ(a.latency.count(), 2);
  EXPECT_EQ(a.per_worker.Find("w0")->count(), 2);
}

// ---------------------------------------------------------------------------
// Protocol hardening: validation and the LineSession error paths

TEST(ProtocolTest, ValidateCommandRejectsBadShapes) {
  Command obs = ParseCommand("obs 1 2 3");
  EXPECT_TRUE(ValidateCommand(obs, /*num_sensors=*/3, /*features=*/1) ==
              std::nullopt);
  auto short_obs = ValidateCommand(obs, /*num_sensors=*/4, /*features=*/1);
  ASSERT_TRUE(short_obs.has_value());
  EXPECT_NE(short_obs->find("4"), std::string::npos);

  Command sensor_oob = ParseCommand("obs1 9 1.0");
  auto oob = ValidateCommand(sensor_oob, /*num_sensors=*/4, /*features=*/1);
  ASSERT_TRUE(oob.has_value());
  EXPECT_NE(oob->find("out of range"), std::string::npos);
  Command sensor_neg = ParseCommand("obs1 -1 1.0");
  EXPECT_TRUE(ValidateCommand(sensor_neg, 4, 1).has_value());

  Command wrong_feat = ParseCommand("obs1 0 1.0 2.0");
  EXPECT_TRUE(ValidateCommand(wrong_feat, 4, 1).has_value());
  EXPECT_TRUE(ValidateCommand(wrong_feat, 4, 2) == std::nullopt);

  // Control commands never fail shape validation.
  EXPECT_TRUE(ValidateCommand(ParseCommand("forecast"), 4, 1) ==
              std::nullopt);
  EXPECT_TRUE(ValidateCommand(ParseCommand("stats"), 4, 1) == std::nullopt);
}

TEST(LineSessionTest, MalformedLinesAreCountedNeverFatal) {
  Fixture f = MakeFixture("stwa_serve_session_err.bin");
  ServerOptions opts;
  Server server(f.path, opts);
  LineSession session(server);
  bool quit = false;

  // Blank lines and comments produce no response and no error count.
  EXPECT_FALSE(session.Handle("", &quit).has_value());
  EXPECT_FALSE(session.Handle("# comment", &quit).has_value());
  EXPECT_EQ(session.protocol_errors(), 0);

  // Each malformed line: an "err ..." response, a bumped counter, and a
  // still-usable session.
  const std::vector<std::string> bad = {
      "obs 1 two 3",        // unparsable value
      "obs 1 2",            // wrong value count (needs N*F = 4)
      "obs1 99 1.0",        // sensor out of range
      "obs1 -1 1.0",        // negative sensor
      "obs1 0 1.0 2.0",     // wrong feature count
      "frobnicate",         // unknown verb
  };
  for (size_t i = 0; i < bad.size(); ++i) {
    auto resp = session.Handle(bad[i], &quit);
    ASSERT_TRUE(resp.has_value()) << bad[i];
    EXPECT_EQ(resp->rfind("err ", 0), 0u) << *resp;
    EXPECT_EQ(session.protocol_errors(), static_cast<int64_t>(i + 1));
  }

  // The stats line reports the count.
  auto stats = session.Handle("stats", &quit);
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("protocol_errors=6"), std::string::npos) << *stats;

  // The session still serves: warm it and get a real forecast.
  std::vector<float> obs(static_cast<size_t>(f.info.num_sensors), 1.0f);
  std::string obs_line = "obs";
  for (float v : obs) obs_line += " " + std::to_string(v);
  for (int64_t s = 0; s < f.settings.history; ++s) {
    auto ok = session.Handle(obs_line, &quit);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(*ok, "ok");
  }
  auto forecast = session.Handle("forecast", &quit);
  ASSERT_TRUE(forecast.has_value());
  EXPECT_EQ(forecast->rfind("forecast ok=1", 0), 0u) << *forecast;
  EXPECT_FALSE(quit);
  auto bye = session.Handle("quit", &quit);
  EXPECT_TRUE(quit);
  EXPECT_EQ(*bye, "bye");
  std::remove(f.path.c_str());
}

TEST(LineSessionTest, WarmingForecastReportsProgress) {
  Fixture f = MakeFixture("stwa_serve_session_warm.bin");
  Server server(f.path, ServerOptions{});
  LineSession session(server);
  bool quit = false;
  auto resp = session.Handle("forecast", &quit);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->rfind("forecast ok=0 degraded=0 err=warming_up", 0), 0u)
      << *resp;
  // Not a protocol error: the line was well-formed.
  EXPECT_EQ(session.protocol_errors(), 0);
  std::remove(f.path.c_str());
}

// ---------------------------------------------------------------------------
// BatchingQueue: shutdown drains instead of dropping

TEST(BatchingQueueTest, ShutdownDrainsQueuedRequestsBeforeEmpty) {
  BatchingOptions opts;
  opts.max_batch = 4;
  opts.max_delay = std::chrono::microseconds(60'000'000);
  BatchingQueue queue(opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(queue.Submit(Tensor(Shape{1, 1, 1}),
                                   std::chrono::microseconds(60'000'000)));
  }
  queue.Shutdown();
  // Every queued request comes out of NextBatch (in batches of <= 4)
  // before the terminal empty vector — the fleet reload's drain contract.
  int64_t drained = 0;
  for (;;) {
    std::vector<Request> batch = queue.NextBatch();
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), 4u);
    drained += static_cast<int64_t>(batch.size());
    for (auto& r : batch) {
      Response resp;
      resp.ok = true;
      r.promise.set_value(std::move(resp));
    }
  }
  EXPECT_EQ(drained, 10);
  EXPECT_EQ(queue.shed(), 0);
  for (auto& fut : futures) EXPECT_TRUE(fut.get().ok);
}

// ---------------------------------------------------------------------------
// Checkpoint provenance

TEST(ServingCheckpointTest, CkptVersionRoundTripsAndDefaultsToOne) {
  Fixture f = MakeFixture("stwa_serve_ckptver.bin");
  // MakeFixture leaves the default (1).
  EXPECT_EQ(ReadServingInfo(f.path).ckpt_version, 1);
  f.info.ckpt_version = 7;
  SaveServingCheckpoint(*f.model, f.info, f.path);
  EXPECT_EQ(ReadServingInfo(f.path).ckpt_version, 7);
  // The format version word is independent of the provenance counter.
  EXPECT_EQ(nn::PeekCheckpointFormatVersion(f.path), 3u);
  std::remove(f.path.c_str());
}

TEST(ServingCheckpointTest, PeekFormatVersionRejectsNonCheckpoints) {
  const std::string path = TempPath("stwa_serve_peek_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  EXPECT_THROW(nn::PeekCheckpointFormatVersion(path), Error);
  EXPECT_THROW(nn::PeekCheckpointFormatVersion(TempPath("stwa_missing.bin")),
               Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace stwa
