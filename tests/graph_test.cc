// Tests for the sensor graph and adjacency normalisations.

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "graph/graph.h"
#include "tensor/ops.h"

namespace stwa {
namespace graph {
namespace {

SensorGraph Triangle() {
  SensorGraph g(3);
  g.AddUndirectedEdge(0, 1, 1.0f);
  g.AddUndirectedEdge(1, 2, 2.0f);
  return g;
}

TEST(GraphTest, EdgeBookkeeping) {
  SensorGraph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.Neighbors(1).size(), 2u);
  EXPECT_THROW(g.AddEdge(0, 3), Error);
  EXPECT_THROW(g.Neighbors(5), Error);
}

TEST(GraphTest, DenseAdjacencyMatchesEdges) {
  Tensor a = Triangle().DenseAdjacency();
  EXPECT_EQ((a({0, 1})), 1.0f);
  EXPECT_EQ((a({1, 0})), 1.0f);
  EXPECT_EQ((a({1, 2})), 2.0f);
  EXPECT_EQ((a({0, 2})), 0.0f);
  EXPECT_EQ((a({0, 0})), 0.0f);
}

TEST(GraphTest, RandomWalkRowsSumToOne) {
  Tensor rw = Triangle().RandomWalkNormalized();
  for (int64_t i = 0; i < 3; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 3; ++j) row += rw({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5f) << "row " << i;
  }
  // Node 1 splits 1:2 between nodes 0 and 2.
  EXPECT_NEAR((rw({1, 0})), 1.0f / 3.0f, 1e-5f);
  EXPECT_NEAR((rw({1, 2})), 2.0f / 3.0f, 1e-5f);
}

TEST(GraphTest, IsolatedNodeRowStaysZero) {
  SensorGraph g(2);  // no edges
  Tensor rw = g.RandomWalkNormalized();
  EXPECT_EQ((rw({0, 0})), 0.0f);
  EXPECT_EQ((rw({0, 1})), 0.0f);
}

TEST(GraphTest, SymNormalizedIsSymmetricWithUnitSpectralBound) {
  Tensor s = Triangle().SymNormalizedWithSelfLoops();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR((s({i, j})), (s({j, i})), 1e-5f);
      EXPECT_LE(std::fabs(s({i, j})), 1.0f + 1e-5f);
    }
    EXPECT_GT((s({i, i})), 0.0f) << "self loop present";
  }
}

TEST(GraphTest, DiffusionSupportsShapesAndStochasticity) {
  SensorGraph g = Triangle();
  auto supports = g.DiffusionSupports(2);
  ASSERT_EQ(supports.size(), 4u);  // fwd^1, bwd^1, fwd^2, bwd^2
  for (const Tensor& s : supports) {
    EXPECT_EQ(s.shape(), (Shape{3, 3}));
    // Rows of powers of a row-stochastic matrix remain row-stochastic.
    for (int64_t i = 0; i < 3; ++i) {
      float row = 0.0f;
      for (int64_t j = 0; j < 3; ++j) row += s({i, j});
      EXPECT_NEAR(row, 1.0f, 1e-4f);
    }
  }
}

TEST(GraphTest, ScaledLaplacianIsNegatedSymNormalization) {
  SensorGraph g = Triangle();
  Tensor sym = g.SymNormalizedWithSelfLoops();
  Tensor lap = g.ScaledLaplacian();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR((lap({i, j})), -(sym({i, j})), 1e-6f);
    }
  }
}

TEST(GraphTest, DiffusionSupportsRequirePositiveHops) {
  EXPECT_THROW(Triangle().DiffusionSupports(0), Error);
}

TEST(GraphTest, CorridorGraphStructure) {
  Rng rng(3);
  std::vector<int> roads;
  SensorGraph g = BuildCorridorGraph(3, 5, rng, &roads);
  EXPECT_EQ(g.num_nodes(), 15);
  ASSERT_EQ(roads.size(), 15u);
  EXPECT_EQ(roads[0], 0);
  EXPECT_EQ(roads[7], 1);
  EXPECT_EQ(roads[14], 2);
  // Chain edges: node 0 connects to node 1 but not to node 2.
  Tensor a = g.DenseAdjacency();
  EXPECT_GT((a({0, 1})), 0.0f);
  EXPECT_EQ((a({0, 2})), 0.0f);
  // Road boundaries have no chain edge: node 4 (end of road 0) to node 5.
  // (There can be a random intersection edge, so only check chain weight
  // range: intersection weights are < 0.5, chain weights >= 0.8.)
  EXPECT_LT((a({4, 5})), 0.8f);
  // Graph is connected via intersections: total edges >= chains + links.
  EXPECT_GE(g.num_edges(), 2 * (3 * 4 + 2));
}

TEST(GraphTest, CorridorGraphIsDeterministicPerSeed) {
  Rng rng1(9);
  Rng rng2(9);
  SensorGraph a = BuildCorridorGraph(2, 4, rng1);
  SensorGraph b = BuildCorridorGraph(2, 4, rng2);
  EXPECT_TRUE(ops::AllClose(a.DenseAdjacency(), b.DenseAdjacency(), 0.0f,
                            0.0f));
}

}  // namespace
}  // namespace graph
}  // namespace stwa
