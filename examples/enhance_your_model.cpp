// Model-agnostic enhancement: take a plain GRU forecaster, make it
// spatial-aware (+S) and spatio-temporal aware (+ST) with the parameter
// generation framework, and compare the three on the same data — the
// workflow of the paper's Table VII, applied to your own model.
//
//   ./examples/enhance_your_model [epochs]

#include <cstdlib>
#include <iostream>

#include "baselines/registry.h"
#include "common/string_util.h"
#include "data/traffic_generator.h"
#include "train/table.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace stwa;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 15;

  // A dataset with strong per-road heterogeneity — exactly the condition
  // under which shared parameters hurt and generated parameters help.
  data::GeneratorOptions gen;
  gen.name = "heterogeneous";
  gen.num_roads = 5;
  gen.sensors_per_road = 3;
  gen.num_days = 10;
  gen.steps_per_day = 144;
  gen.seed = 99;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 16;
  settings.latent_dim = 8;
  settings.predictor_hidden = 64;

  train::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 8;
  config.stride = 2;
  config.eval_stride = 3;

  train::TablePrinter table(
      "Enhancing a GRU forecaster with ST-aware parameter generation");
  table.SetHeader({"Variant", "MAE", "MAPE", "RMSE", "#Param"});
  for (std::string name : {"GRU", "GRU+S", "GRU+ST"}) {
    auto model = baselines::MakeModel(name, dataset, settings);
    train::Trainer trainer(dataset, settings.history, settings.horizon,
                           config);
    train::TrainResult result = trainer.Fit(*model);
    table.AddRow({name, FormatFloat(result.test.mae, 2),
                  FormatFloat(result.test.mape, 2),
                  FormatFloat(result.test.rmse, 2),
                  std::to_string(result.param_count)});
    std::cout << name << " done (" << result.epochs_run << " epochs)\n";
  }
  table.Print();
  std::cout << "\nThe same latent + decoder machinery that powers ST-WA "
               "turned the spatio-temporal agnostic GRU into +S and +ST "
               "variants — no change to the recurrence itself.\n";
  return 0;
}
