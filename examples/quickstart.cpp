// Quickstart: generate a synthetic traffic dataset, train the ST-WA model
// on it (H = 12 past steps -> U = 12 future steps), and report forecast
// accuracy next to a persistence baseline and per-horizon breakdown.
//
//   ./examples/quickstart [epochs]

#include <cstdlib>
#include <iostream>

#include "baselines/registry.h"
#include "common/string_util.h"
#include "data/traffic_generator.h"
#include "metrics/metrics.h"
#include "train/table.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace stwa;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 12;

  // 1. Generate a small PEMS-like dataset: 4 roads x 4 sensors, two weeks
  //    of 5-minute traffic flow with weekday/weekend structure.
  data::GeneratorOptions gen;
  gen.name = "quickstart";
  gen.num_roads = 4;
  gen.sensors_per_road = 4;
  gen.num_days = 10;
  gen.steps_per_day = 144;  // 10-minute sampling keeps the demo snappy
  gen.seed = 2024;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);
  std::cout << "Dataset '" << dataset.name << "': N=" << dataset.num_sensors()
            << " sensors, T=" << dataset.num_steps() << " steps\n";

  // 2. Configure the ST-WA model (paper defaults, scaled down).
  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 16;
  settings.window_sizes = {3, 2, 2};  // paper's H=12 configuration
  settings.latent_dim = 8;
  settings.predictor_hidden = 64;
  auto model = baselines::MakeModel("ST-WA", dataset, settings);
  std::cout << "Model: " << model->name() << " ("
            << model->ParameterCount() << " parameters)\n";

  // 3. Train with the paper's protocol (chronological split, Adam, Huber
  //    loss + KL, early stopping).
  train::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 8;
  config.stride = 2;
  config.eval_stride = 3;
  config.verbose = true;
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  train::TrainResult result = trainer.Fit(*model);

  // 4. Compare with a persistence baseline on the same test split.
  struct Persistence : train::ForecastModel {
    int64_t horizon;
    explicit Persistence(int64_t u) : horizon(u) {}
    ag::Var Forward(const Tensor& x, bool) override {
      ag::Var last = ag::Slice(ag::Var(x), 2, x.dim(2) - 1, 1);
      return ag::Add(last, ag::Var(Tensor(Shape{1, 1, horizon, 1})));
    }
    std::string name() const override { return "persistence"; }
  } persistence(settings.horizon);
  metrics::ForecastMetrics base =
      trainer.Evaluate(persistence, trainer.test_sampler());

  train::TablePrinter table("Quickstart results (test partition)");
  table.SetHeader({"Model", "MAE", "MAPE", "RMSE"});
  table.AddRow({"persistence", FormatFloat(base.mae, 2),
                FormatFloat(base.mape, 2), FormatFloat(base.rmse, 2)});
  table.AddRow({"ST-WA", FormatFloat(result.test.mae, 2),
                FormatFloat(result.test.mape, 2),
                FormatFloat(result.test.rmse, 2)});
  table.Print();
  std::cout << "(trained " << result.epochs_run << " epochs, "
            << FormatFloat(result.seconds_per_epoch, 2) << " s/epoch)\n";
  return 0;
}
