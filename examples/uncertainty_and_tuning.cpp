// Two workflows on top of the core API:
//   1. the paper's validation grid search (§V-A) over window
//      configurations and latent sizes;
//   2. Monte-Carlo predictive intervals from ST-WA's stochastic latents —
//      sampling Theta at inference time yields an ensemble whose spread
//      quantifies forecast uncertainty.
//
//   ./examples/uncertainty_and_tuning

#include <iostream>

#include "baselines/registry.h"
#include "common/string_util.h"
#include "core/mc_forecast.h"
#include "core/stwa_model.h"
#include "data/sampler.h"
#include "data/traffic_generator.h"
#include "train/grid_search.h"
#include "train/table.h"
#include "train/trainer.h"

int main() {
  using namespace stwa;

  data::GeneratorOptions gen;
  gen.name = "tuning-demo";
  gen.num_roads = 3;
  gen.sensors_per_road = 3;
  gen.num_days = 14;
  gen.steps_per_day = 144;
  gen.seed = 55;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  train::TrainConfig config;
  config.epochs = 10;
  config.batch_size = 8;
  config.stride = 4;
  config.eval_stride = 6;
  train::Trainer trainer(dataset, 12, 12, config);

  // --- 1. Grid search over ST-WA hyper-parameters -----------------------
  auto candidate = [&](std::vector<int64_t> windows, int64_t k) {
    std::string label = "S=";
    for (size_t i = 0; i < windows.size(); ++i) {
      label += (i ? "," : "") + std::to_string(windows[i]);
    }
    label += " k=" + std::to_string(k);
    auto windows_copy = windows;
    return train::GridCandidate{
        label, [&, windows_copy, k]() {
          baselines::ModelSettings s;
          s.history = 12;
          s.horizon = 12;
          s.d_model = 16;
          s.latent_dim = k;
          s.predictor_hidden = 64;
          s.window_sizes = windows_copy;
          return baselines::MakeModel("ST-WA", dataset, s);
        }};
  };
  std::vector<train::GridCandidate> grid = {
      candidate({3, 2, 2}, 8), candidate({2, 3, 2}, 8),
      candidate({4, 3}, 8),    candidate({3, 2, 2}, 4),
  };
  train::GridSearchResult search = train::GridSearch(trainer, grid,
                                                     /*verbose=*/true);
  std::cout << "\nBest configuration: " << search.best_label
            << " (val MAE " << FormatFloat(search.val_mae[search.best_index],
                                           2)
            << ", test MAE " << FormatFloat(search.best.test.mae, 2)
            << ")\n\n";

  // --- 2. Monte-Carlo predictive intervals ------------------------------
  baselines::ModelSettings best;
  best.history = 12;
  best.horizon = 12;
  best.d_model = 16;
  best.latent_dim = 8;
  best.predictor_hidden = 64;
  auto model_ptr = baselines::MakeModel("ST-WA", dataset, best);
  auto* model = dynamic_cast<core::StwaModel*>(model_ptr.get());
  trainer.Fit(*model);

  data::Batch batch = trainer.test_sampler().MakeBatch({0});
  core::McForecast mc = core::MonteCarloForecast(*model, batch.x, 32);
  // Report per-horizon mean spread (in original flow units).
  const auto& scaler = trainer.scaler();
  train::TablePrinter table(
      "Monte-Carlo forecast spread (32 samples, sensor 0)");
  table.SetHeader({"step ahead", "mean flow", "+/- stddev"});
  for (int64_t u = 0; u < 12; u += 3) {
    const float mean = scaler.InverseTransform(mc.mean)({0, 0, u, 0});
    const float sd = mc.stddev({0, 0, u, 0}) * scaler.stddev();
    table.AddRow({std::to_string(u + 1), FormatFloat(mean, 1),
                  FormatFloat(sd, 1)});
  }
  table.Print();
  std::cout << "\nThe spread comes from sampling the stochastic latents "
               "Theta — the uncertainty the paper's deterministic eval "
               "path discards.\n";
  return 0;
}
