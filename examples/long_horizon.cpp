// Long-horizon forecasting (the paper's Table VI scenario): predict six
// hours ahead from six hours of history (H = U = 72) and check, with the
// analytic memory model, which architectures would fit on a 16 GB GPU at
// the paper's real network sizes.
//
//   ./examples/long_horizon [epochs]

#include <cstdlib>
#include <iostream>

#include "baselines/registry.h"
#include "common/string_util.h"
#include "core/memory_model.h"
#include "data/traffic_generator.h"
#include "train/table.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace stwa;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 10;

  data::GeneratorOptions gen;
  gen.name = "long-horizon";
  gen.num_roads = 4;
  gen.sensors_per_road = 3;
  gen.num_days = 10;
  gen.steps_per_day = 144;
  gen.seed = 7;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  baselines::ModelSettings settings;
  settings.history = 72;
  settings.horizon = 72;
  settings.d_model = 16;
  settings.window_sizes = {6, 6, 2};  // paper's H=72 configuration
  settings.proxies = 2;
  settings.latent_dim = 8;
  settings.predictor_hidden = 64;

  train::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 8;
  config.stride = 3;
  config.eval_stride = 6;

  // 1. Train ST-WA on the 6h -> 6h task.
  auto model = baselines::MakeModel("ST-WA", dataset, settings);
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  train::TrainResult result = trainer.Fit(*model);
  std::cout << "ST-WA at H=U=72: MAE=" << FormatFloat(result.test.mae, 2)
            << " RMSE=" << FormatFloat(result.test.rmse, 2) << " ("
            << FormatFloat(result.seconds_per_epoch, 2) << " s/epoch)\n\n";

  // 2. Would each architecture fit on the paper's 16 GB V100 at real
  //    PEMS sizes with this setting? (Table VI's OOM analysis.)
  train::TablePrinter table(
      "Estimated training memory at paper scale, H=U=72, batch 64");
  table.SetHeader({"N (dataset)", "ST-WA", "AGCRN", "EnhanceNet",
                   "STFGNN"});
  for (auto [n, name] : {std::pair<int64_t, const char*>{170, "PEMS08"},
                         {307, "PEMS04"},
                         {358, "PEMS03"},
                         {883, "PEMS07"}}) {
    core::MemoryWorkload w;
    w.sensors = n;
    w.history = 72;
    w.horizon = 72;
    auto cell = [](double gb) {
      return core::WouldOom(gb) ? "OOM(" + FormatFloat(gb, 0) + "GB)"
                                : FormatFloat(gb, 1) + "GB";
    };
    table.AddRow({std::string(name) + " N=" + std::to_string(n),
                  cell(1.8 * core::WindowAttentionGb(w, {6, 6, 2}, 2)),
                  cell(core::AdaptiveGraphRnnGb(w)),
                  cell(core::EnhanceNetGb(w)),
                  cell(core::FusionGraphGb(w))});
  }
  table.Print();
  std::cout << "\nLinear-complexity window attention keeps ST-WA far "
               "below the budget even on the largest network, while "
               "EnhanceNet and STFGNN exceed it on PEMS07 — the Table VI "
               "OOM pattern.\n";
  return 0;
}
