// Temporal awareness under regime change: inject an incident (a sharp
// capacity drop on one road) into otherwise regular traffic and show that
// the temporal adaption variable z_t^(i) — and therefore the generated
// parameters — react to it. Exports the latent trajectory to CSV.
//
//   ./examples/incident_analysis

#include <cmath>
#include <fstream>
#include <iostream>

#include "baselines/registry.h"
#include "common/string_util.h"
#include "core/stwa_model.h"
#include "data/sampler.h"
#include "data/scaler.h"
#include "data/traffic_generator.h"
#include "tensor/ops.h"
#include "train/table.h"
#include "train/trainer.h"

int main() {
  using namespace stwa;

  // Clean dataset without incidents...
  data::GeneratorOptions gen;
  gen.name = "incident-demo";
  gen.num_roads = 3;
  gen.sensors_per_road = 3;
  gen.num_days = 10;
  gen.steps_per_day = 144;
  gen.incident_prob = 0.0f;
  gen.noise_std = 4.0f;
  gen.seed = 31;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  // ...then inject one hand-made incident into the TEST region: sensor 0's
  // road loses 60% capacity for ~2 hours on the second-to-last day.
  const int64_t spd = dataset.steps_per_day;
  const int64_t incident_start = (gen.num_days - 2) * spd + spd / 2;
  const int64_t incident_len = 12;
  for (int64_t i = 0; i < 3; ++i) {  // sensors of road 0
    for (int64_t t = incident_start; t < incident_start + incident_len;
         ++t) {
      dataset.values({i, t, 0}) *= 0.4f;
    }
  }

  // Train a small ST-WA.
  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 16;
  settings.latent_dim = 8;
  settings.predictor_hidden = 64;
  auto model_ptr = baselines::MakeModel("ST-WA", dataset, settings);
  auto* model = dynamic_cast<core::StwaModel*>(model_ptr.get());
  train::TrainConfig config;
  config.epochs = 12;
  config.batch_size = 8;
  config.stride = 2;
  config.eval_stride = 4;
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  trainer.Fit(*model);

  // Walk a window across the incident and record how far the generated
  // parameters phi_t^(0) move from their pre-incident average.
  data::StandardScaler scaler = trainer.scaler();
  Tensor normalised = scaler.Transform(dataset.values);
  auto window_at = [&](int64_t t) {
    // [1, N, H, F] window ending at t.
    Tensor x(Shape{1, dataset.num_sensors(), settings.history, 1});
    for (int64_t i = 0; i < dataset.num_sensors(); ++i) {
      for (int64_t s = 0; s < settings.history; ++s) {
        x({0, i, s, 0}) =
            normalised({i, t - settings.history + 1 + s, 0});
      }
    }
    return x;
  };

  // Reference: mean parameters over the hour before the incident.
  const int64_t probe_begin = incident_start - 24;
  const int64_t probe_end = incident_start + incident_len + 24;
  Tensor reference;
  int ref_count = 0;
  for (int64_t t = probe_begin; t < incident_start; ++t) {
    Tensor phi = model->GeneratedProjections(window_at(t), 0);
    Tensor row = ops::Slice(phi, 0, 0, 1);
    if (reference.empty()) {
      reference = row.Clone();
    } else {
      ops::AddInPlace(reference, row);
    }
    ++ref_count;
  }
  reference = ops::MulScalar(reference, 1.0f / ref_count);

  std::ofstream out("incident_latents.csv");
  out << "t,flow,param_shift\n";
  double pre_shift = 0.0;
  double during_shift = 0.0;
  int pre_n = 0;
  int during_n = 0;
  for (int64_t t = probe_begin; t < probe_end; ++t) {
    Tensor phi = model->GeneratedProjections(window_at(t), 0);
    Tensor row = ops::Slice(phi, 0, 0, 1);
    const float shift = ops::MaxAbsDiff(row, reference);
    out << t << "," << dataset.values({0, t, 0}) << "," << shift << "\n";
    const bool during = t >= incident_start + 3 &&
                        t < incident_start + incident_len;
    if (during) {
      during_shift += shift;
      ++during_n;
    } else if (t < incident_start) {
      pre_shift += shift;
      ++pre_n;
    }
  }
  pre_shift /= pre_n;
  during_shift /= during_n;

  train::TablePrinter table("Temporal adaption under an incident");
  table.SetHeader({"Phase", "mean |phi_t - phi_ref|"});
  table.AddRow({"regular traffic (before)", FormatFloat(pre_shift, 4)});
  table.AddRow({"during incident", FormatFloat(during_shift, 4)});
  table.Print();
  std::cout << "\nTrajectory written to incident_latents.csv. The "
               "generated parameters move further from their regular-"
               "traffic reference while the incident is inside the "
               "window (ratio "
            << FormatFloat(during_shift / (pre_shift + 1e-9), 2)
            << "x) — the temporal-aware behaviour the paper motivates "
               "with accidents and road closures.\n";
  return 0;
}
