// Reproduces Table XI: stochastic vs deterministic latent variables on
// PEMS04. Expected shape: the stochastic ST-WA beats the deterministic
// variant on all three metrics.

#include <iostream>

#include "bench_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
  train::TrainConfig config = MakeTrainConfig(scale);

  train::TablePrinter table(
      "Table XI: Stochastic vs deterministic latents, " + dataset.name +
      " (H=12, U=12)");
  table.SetHeader({"Variant", "MAE", "MAPE", "RMSE"});
  for (std::string name : {"ST-WA", "Det-ST-WA"}) {
    train::TrainResult result = RunModel(name, dataset, settings, config);
    std::vector<std::string> row = {
        name == "ST-WA" ? "ST-WA (stochastic)" : "Deterministic ST-WA"};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    table.AddRow(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table XI): the stochastic version "
               "outperforms the deterministic one.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
