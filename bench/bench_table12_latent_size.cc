// Reproduces Table XII: effect of the stochastic latent size k in
// {4, 8, 16, 32} on PEMS04. Expected shape: mid-range k best; too small
// underfits, too large overfits.

#include <iostream>

#include "bench_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  train::TrainConfig config = MakeTrainConfig(scale);

  train::TablePrinter table("Table XII: Effect of latent size k, " +
                            dataset.name + " (H=12, U=12)");
  table.SetHeader({"k", "MAE", "MAPE", "RMSE"});
  for (int64_t k : {4, 8, 16, 32}) {
    baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
    settings.latent_dim = k;
    train::TrainResult result =
        RunModel("ST-WA", dataset, settings, config);
    std::vector<std::string> row = {std::to_string(k)};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    table.AddRow(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table XII): a mid-range latent "
               "size wins; very small k underfits and very large k "
               "overfits.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
