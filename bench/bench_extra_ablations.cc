// Extra ablations (not in the paper's tables): the design choices
// DESIGN.md calls out beyond the paper's own ablation study —
//   * cross-window proxy chaining (Eq. 14) on/off: without it, windows
//     cannot exchange information and long-range structure is lost;
//   * sensor correlation attention (§IV-C) on/off: without it, sensors
//     forecast independently;
//   * the input start-projection on/off (implementation detail of the
//     authors' released code: raw F=1 inputs give rank-1 first-layer
//     keys).
// Expected shape: the full model wins; each removal costs accuracy.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/stwa_model.h"
#include "train/trainer.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
  train::TrainConfig config = MakeTrainConfig(scale);

  struct Variant {
    std::string name;
    bool chain;
    bool sensor_attention;
    bool input_embedding;
  };
  const std::vector<Variant> variants = {
      {"full ST-WA", true, true, true},
      {"no window chaining", false, true, true},
      {"no sensor attention", true, false, true},
      {"no input embedding", true, true, false},
  };

  train::TablePrinter table(
      "Extra ablations: design choices beyond the paper's tables (" +
      dataset.name + ", H=12, U=12)");
  table.SetHeader({"Variant", "MAE", "MAPE", "RMSE"});
  for (const Variant& v : variants) {
    core::StwaConfig c;
    c.num_sensors = dataset.num_sensors();
    c.history = settings.history;
    c.horizon = settings.horizon;
    c.window_sizes = settings.window_sizes;
    c.proxies = settings.proxies;
    c.heads = settings.heads;
    c.d_model = settings.d_model;
    c.latent_dim = settings.latent_dim;
    c.predictor_hidden = settings.predictor_hidden;
    c.kl_weight = settings.kl_weight;
    c.chain_windows = v.chain;
    c.sensor_attention = v.sensor_attention;
    c.input_embedding = v.input_embedding;
    Rng rng(settings.seed);
    core::StwaModel model(c, &rng);
    train::Trainer trainer(dataset, settings.history, settings.horizon,
                           config);
    train::TrainResult result = trainer.Fit(model);
    std::vector<std::string> row = {v.name};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    table.AddRow(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.Print();

  // Window chaining matters when windows are many and long-range structure
  // must flow across them — rerun that ablation at the H = U = 72 setting.
  train::TrainConfig long_config = config;
  long_config.epochs = std::min(long_config.epochs, 20);
  long_config.stride *= 2;
  long_config.eval_stride *= 2;
  train::TablePrinter long_table(
      "Extra ablations (cont.): window chaining at H=72, U=72");
  long_table.SetHeader({"Variant", "MAE", "MAPE", "RMSE"});
  for (bool chain : {true, false}) {
    core::StwaConfig c;
    c.num_sensors = dataset.num_sensors();
    c.history = 72;
    c.horizon = 72;
    c.window_sizes = {6, 6, 2};
    c.proxies = 2;
    c.heads = settings.heads;
    c.d_model = settings.d_model;
    c.latent_dim = settings.latent_dim;
    c.predictor_hidden = settings.predictor_hidden;
    c.chain_windows = chain;
    Rng rng(settings.seed);
    core::StwaModel model(c, &rng);
    train::Trainer trainer(dataset, 72, 72, long_config);
    train::TrainResult result = trainer.Fit(model);
    std::vector<std::string> row = {chain ? "with chaining (Eq. 14)"
                                          : "no chaining"};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    long_table.AddRow(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  long_table.Print();
  std::cout << "\nObserved shape: sensor attention is the load-bearing "
               "design choice (removing it costs several MAE). Window "
               "chaining is within noise on MAE at our synthetic scale — "
               "its benefit in the paper is entangled with depth (the "
               "WA-1 vs WA gap of Table VIII); the skip connections "
               "already carry window summaries to the predictor.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
