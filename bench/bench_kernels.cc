// Kernel microbenchmark: times the runtime-backed hot kernels (matmul,
// softmax, elementwise maps) across thread counts and writes
// bench_out/BENCH_kernels.json. This seeds the perf trajectory: later
// kernel/runtime PRs re-run it and diff the numbers.
//
// Thread counts swept: 1, 2, 4 and the runtime default (deduplicated).
// Each measurement is the best of several repetitions, so transient noise
// does not mask kernel-level changes.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace stwa {
namespace bench {
namespace {

struct Measurement {
  std::string kernel;
  int64_t size = 0;
  int threads = 0;
  double seconds = 0.0;
  double gflops = 0.0;  // 0 when the kernel has no natural flop count
};

/// Best-of-`reps` wall time of fn(), with one untimed warmup.
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 4, runtime::DefaultNumThreads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

void Run() {
  ReportRuntime();
  Rng rng(77);
  std::vector<Measurement> results;

  const std::vector<int64_t> matmul_sizes = {64, 128, 256, 512, 1024};
  for (int threads : ThreadCounts()) {
    runtime::SetNumThreads(threads);

    for (int64_t s : matmul_sizes) {
      Tensor a = Tensor::Randn({s, s}, rng);
      Tensor b = Tensor::Randn({s, s}, rng);
      const int reps = s >= 512 ? 3 : 8;
      const double secs =
          TimeBest(reps, [&] { return ops::MatMul2D(a, b); });
      const double flops = 2.0 * s * s * s;
      results.push_back({"matmul", s, threads, secs, flops / secs / 1e9});
      std::cout << "matmul " << s << "x" << s << " threads=" << threads
                << " " << secs * 1e3 << " ms (" << flops / secs / 1e9
                << " GFLOP/s)\n";
    }

    {
      // 4096 rows of 512: the shape window attention produces.
      Tensor x = Tensor::Randn({4096, 512}, rng);
      const double secs = TimeBest(8, [&] { return ops::SoftmaxLast(x); });
      results.push_back({"softmax", 4096 * 512, threads, secs, 0.0});
      std::cout << "softmax 4096x512 threads=" << threads << " "
                << secs * 1e3 << " ms\n";
    }

    {
      const int64_t n = 1 << 22;  // 4M floats
      Tensor x = Tensor::Randn({n}, rng);
      Tensor y = Tensor::Randn({n}, rng);
      double secs = TimeBest(8, [&] { return ops::Add(x, y); });
      results.push_back({"add", n, threads, secs, 0.0});
      std::cout << "add " << n << " threads=" << threads << " "
                << secs * 1e3 << " ms\n";
      secs = TimeBest(8, [&] { return ops::Tanh(x); });
      results.push_back({"tanh", n, threads, secs, 0.0});
      std::cout << "tanh " << n << " threads=" << threads << " "
                << secs * 1e3 << " ms\n";
    }
  }
  runtime::SetNumThreads(0);

  // Headline number for the PR gate: 512x512 matmul speedup over 1 thread.
  double base512 = 0.0;
  for (const Measurement& m : results) {
    if (m.kernel == "matmul" && m.size == 512 && m.threads == 1) {
      base512 = m.seconds;
    }
  }
  for (const Measurement& m : results) {
    if (m.kernel == "matmul" && m.size == 512 && m.threads != 1 &&
        base512 > 0.0) {
      std::cout << "matmul 512 speedup at " << m.threads
                << " threads: " << base512 / m.seconds << "x\n";
    }
  }

  const std::string path = BenchOutPath("BENCH_kernels.json");
  std::ofstream out(path);
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    out << "  {\"kernel\": \"" << m.kernel << "\", \"size\": " << m.size
        << ", \"threads\": " << m.threads << ", \"seconds\": " << m.seconds
        << ", \"gflops\": " << m.gflops << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
