// Kernel microbenchmark: times the runtime-backed hot kernels (matmul,
// softmax, elementwise maps) across thread counts and writes
// bench_out/BENCH_kernels.json. This seeds the perf trajectory: later
// kernel/runtime PRs re-run it and diff the numbers.
//
// Beyond wall time, every measurement records the buffer-pool counters for
// one kernel invocation: `heap_allocs` (pool misses, i.e. real heap
// allocations) and `peak_bytes` (peak outstanding pooled bytes). Two extra
// sections probe the allocation work itself:
//   * dispatch: ops::UnaryOp (type-erased std::function) vs ops::UnaryMap
//     (inlined functor) on the same data — the de-virtualisation delta;
//   * train_step: heap allocations per training step on the quickstart
//     ST-WA config, pool on vs off (STWA_DISABLE_POOL A/B in one process);
//   * graph_plan: traced vs replayed train step on a captured execution
//     plan — wall time, tape nodes/bytes and pool traffic per step, plus
//     the per-OpKind forward/backward profile. The plan summary and the
//     traced-vs-replayed comparison also land in
//     bench_out/BENCH_graph.json;
//   * graph_fusion: the plan-rewrite A/B — eval-step executed-node counts
//     with the fusion passes off vs on, fused-kernel replay timings, and a
//     region-parallel thread sweep memcmp'd against the serial reference
//     (lands in the BENCH_graph.json "graph_fusion" section).
//
// Thread counts swept: 1, 2, 4 and the runtime default (deduplicated).
// Each measurement is the best of several repetitions, so transient noise
// does not mask kernel-level changes.
//
// STWA_BENCH_SMOKE=1 shrinks sizes/reps/thread counts to a seconds-long CI
// smoke run that still exercises every section and emits the same JSON.

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "autograd/no_grad.h"
#include "autograd/ops.h"
#include "baselines/registry.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/sampler.h"
#include "data/traffic_generator.h"
#include "ir/plan.h"
#include "runtime/parallel.h"
#include "simd/gemm_lowp.h"
#include "simd/simd.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace stwa {
namespace bench {
namespace {

struct Measurement {
  std::string kernel;
  int64_t size = 0;
  int threads = 0;
  double seconds = 0.0;
  double gflops = 0.0;      // 0 when the kernel has no natural flop count
  uint64_t heap_allocs = 0;  // pool misses during one invocation
  uint64_t peak_bytes = 0;   // peak outstanding pooled bytes
};

/// Best-of-`reps` wall time of fn(), with one untimed warmup.
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

/// Runs fn() once under freshly reset pool counters and stores the
/// miss/peak columns into `m`.
template <typename Fn>
void CountAllocs(Measurement* m, Fn&& fn) {
  pool::ResetStats();
  fn();
  const pool::PoolStats s = pool::Stats();
  m->heap_allocs = s.misses;
  m->peak_bytes = s.peak_outstanding_bytes;
}

bool SmokeMode() { return GetEnvOr("STWA_BENCH_SMOKE", "") == "1"; }

std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 4, runtime::DefaultNumThreads()};
  if (SmokeMode()) counts = {1, runtime::DefaultNumThreads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

/// ops::UnaryOp (std::function) vs ops::UnaryMap (inlined functor) on the
/// same buffer: the cost of type-erased elementwise dispatch.
void BenchDispatch(Rng& rng, std::vector<Measurement>* results) {
  const int64_t n = SmokeMode() ? (1 << 18) : (1 << 22);
  const int reps = SmokeMode() ? 3 : 8;
  Tensor x = Tensor::Randn({n}, rng);
  const std::function<float(float)> erased = [](float v) {
    return v * v + 1.0f;
  };
  const auto inlined = [](float v) { return v * v + 1.0f; };

  Measurement fn_m{"dispatch_function", n, runtime::NumThreads(), 0.0, 0.0};
  fn_m.seconds = TimeBest(reps, [&] { return ops::UnaryOp(x, erased); });
  CountAllocs(&fn_m, [&] { return ops::UnaryOp(x, erased); });
  results->push_back(fn_m);

  Measurement tmpl_m{"dispatch_template", n, runtime::NumThreads(), 0.0,
                     0.0};
  tmpl_m.seconds = TimeBest(reps, [&] { return ops::UnaryMap(x, inlined); });
  CountAllocs(&tmpl_m, [&] { return ops::UnaryMap(x, inlined); });
  results->push_back(tmpl_m);

  std::cout << "dispatch n=" << n
            << " std::function=" << fn_m.seconds * 1e3
            << " ms, template=" << tmpl_m.seconds * 1e3 << " ms ("
            << fn_m.seconds / tmpl_m.seconds << "x)\n";
}

// --- GEMM section (bench_out/BENCH_gemm.json) ----------------------------

/// Single-thread legacy-style scalar GEMM (i-k-j, k-blocked, zero-skip):
/// the loop tensor/ops.cc compiled before the SIMD layer, timed in-bench
/// as the baseline for the speedup column. The compiler may autovectorize
/// it exactly as it would in an STWA_NO_SIMD build, so the column reports
/// "SIMD kernel vs legacy kernel", not "SIMD vs strict one-lane code".
void LegacyGemmNN(const float* a, const float* b, float* c, int64_t m,
                  int64_t n, int64_t k) {
  constexpr int64_t kBlockK = 512;
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k, k0 + kBlockK);
      for (int64_t kk = k0; kk < k1; ++kk) {
        const float aik = a[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

/// GEMM throughput on the shapes the quickstart ST-WA model emits
/// (projections, window-attention contractions, predictor head) plus the
/// 512^3 headline square, with a scalar-baseline speedup column. Writes
/// bench_out/BENCH_gemm.json.
void BenchGemm(Rng& rng, std::vector<Measurement>* results) {
  struct GemmRow {
    int64_t m, n, k;
    std::string variant;
    int threads;
    double seconds = 0.0;
    double gflops = 0.0;
    double scalar_seconds = 0.0;  // 0 outside the 1-thread NN rows
    double speedup = 0.0;
  };
  const bool smoke = SmokeMode();
  const int reps = smoke ? 2 : 6;
  // Smoke runs swap the 512^3 headline for a 192^3 square — still
  // packed-path territory, but seconds instead of minutes in CI.
  const int64_t square = smoke ? 192 : 512;
  const std::vector<std::array<int64_t, 3>> shapes = {
      {128, 16, 16},      // latent/projection: [batch*sensors, d, d]
      {1536, 16, 16},     // time-major projection sweep
      {128, 64, 144},     // predictor head: hidden x (horizon*12)
      {square, square, square}};  // headline square (packed-path territory)
  std::vector<GemmRow> rows;

  for (auto [m, n, k] : shapes) {
    Tensor a = Tensor::Randn({m, k}, rng);
    Tensor b = Tensor::Randn({k, n}, rng);
    Tensor bt = Tensor::Randn({n, k}, rng);
    Tensor at = Tensor::Randn({k, m}, rng);
    const double flops = 2.0 * m * n * k;

    // Scalar baseline: always single-thread, independent of the sweep.
    runtime::SetNumThreads(1);
    Tensor ref = Tensor::Uninit({m, n});
    const double scalar_sec = TimeBest(reps, [&] {
      LegacyGemmNN(a.data(), b.data(), ref.data(), m, n, k);
    });

    for (int threads : ThreadCounts()) {
      runtime::SetNumThreads(threads);
      GemmRow row{m, n, k, "nn", threads};
      row.seconds = TimeBest(reps, [&] { return ops::MatMul2D(a, b); });
      row.gflops = flops / row.seconds / 1e9;
      if (threads == 1) {
        row.scalar_seconds = scalar_sec;
        row.speedup = scalar_sec / row.seconds;
      }
      std::cout << "gemm " << m << "x" << n << "x" << k
                << " nn threads=" << threads << " " << row.seconds * 1e3
                << " ms (" << row.gflops << " GFLOP/s"
                << (threads == 1
                        ? ", " + FormatFloat(row.speedup, 2) + "x vs scalar"
                        : "")
                << ")\n";
      rows.push_back(row);

      // Transposed-operand variants (the backward-pass kernels) on the
      // headline shape only, to keep the sweep short.
      if (m == square && n == square) {
        GemmRow nt{m, n, k, "nt", threads};
        nt.seconds = TimeBest(reps, [&] { return ops::MatMulNT(a, bt); });
        nt.gflops = flops / nt.seconds / 1e9;
        rows.push_back(nt);
        GemmRow tn{m, n, k, "tn", threads};
        tn.seconds = TimeBest(reps, [&] { return ops::MatMulTN(at, b); });
        tn.gflops = flops / tn.seconds / 1e9;
        rows.push_back(tn);
        std::cout << "gemm " << m << "x" << n << "x" << k << " nt/tn threads="
                  << threads << " " << nt.gflops << " / " << tn.gflops
                  << " GFLOP/s\n";
      }
    }

    // Reduced-precision tiers on the same op(B): panels packed once (as a
    // serving session does at open) and timed across the same thread
    // sweep. The flop count stays 2mnk — the gflops column reads as
    // effective fp32 throughput, directly comparable to the nn rows.
    for (const simd::Precision tier :
         {simd::Precision::kBf16, simd::Precision::kInt8}) {
      const auto packed = simd::PackWeights(b.data(), k, n, /*trans=*/false,
                                            tier, /*scales=*/nullptr,
                                            /*bf16_trunc=*/false);
      Tensor c = Tensor::Uninit({m, n});
      for (int threads : ThreadCounts()) {
        runtime::SetNumThreads(threads);
        GemmRow row{m, n, k, simd::PrecisionName(tier), threads};
        row.seconds = TimeBest(reps, [&] {
          simd::GemmLowp(a.data(), *packed, c.data(), m, /*trans_a=*/false);
        });
        row.gflops = flops / row.seconds / 1e9;
        rows.push_back(row);
        std::cout << "gemm " << m << "x" << n << "x" << k << " "
                  << row.variant << " threads=" << threads << " "
                  << row.seconds * 1e3 << " ms (" << row.gflops
                  << " GFLOP/s)\n";
      }
    }
    // The 1-thread headline also lands in BENCH_kernels.json for the
    // cross-PR trend line.
    Measurement m_out{std::string("gemm_") + std::to_string(m) + "x" +
                          std::to_string(n) + "x" + std::to_string(k),
                      m * n, 1, 0.0, 0.0};
    for (const GemmRow& r : rows) {
      if (r.m == m && r.variant == "nn" && r.threads == 1) {
        m_out.seconds = r.seconds;
        m_out.gflops = r.gflops;
      }
    }
    results->push_back(m_out);
  }
  runtime::SetNumThreads(0);

  // Per-tier headline summary (1-thread square): the acceptance ratios
  // the lowp PR gate reads from BENCH_gemm.json.
  const auto headline = [&](const std::string& variant) {
    for (const GemmRow& r : rows) {
      if (r.m == square && r.n == square && r.variant == variant &&
          r.threads == 1) {
        return r.gflops;
      }
    }
    return 0.0;
  };
  const double fp32_g = headline("nn");
  const double bf16_g = headline("bf16");
  const double int8_g = headline("int8");
  std::cout << "gemm lowp " << square << "^3 1t: fp32 " << fp32_g
            << ", bf16 " << bf16_g << " ("
            << FormatFloat(fp32_g > 0 ? bf16_g / fp32_g : 0.0, 2)
            << "x), int8 " << int8_g << " ("
            << FormatFloat(fp32_g > 0 ? int8_g / fp32_g : 0.0, 2)
            << "x) GFLOP/s, kernel=" << simd::LowpKernelName() << "\n";

  const std::string path = BenchOutPath("BENCH_gemm.json");
  std::ofstream out(path);
  out << "{\n  \"isa\": \"" << simd::IsaName() << "\",\n  \"precision\": \""
      << RunPrecisionName() << "\",\n  \"lowp\": {\"kernel\": \""
      << simd::LowpKernelName() << "\", \"square\": " << square
      << ", \"fp32_gflops\": " << fp32_g << ", \"bf16_gflops\": " << bf16_g
      << ", \"int8_gflops\": " << int8_g << ", \"bf16_vs_fp32\": "
      << (fp32_g > 0 ? bf16_g / fp32_g : 0.0) << ", \"int8_vs_fp32\": "
      << (fp32_g > 0 ? int8_g / fp32_g : 0.0) << "},\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const GemmRow& r = rows[i];
    out << "    {\"m\": " << r.m << ", \"n\": " << r.n << ", \"k\": " << r.k
        << ", \"variant\": \"" << r.variant
        << "\", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
        << ", \"gflops\": " << r.gflops
        << ", \"scalar_seconds\": " << r.scalar_seconds
        << ", \"speedup_vs_scalar\": " << r.speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

/// Heap allocations per training step on the quickstart ST-WA config,
/// pool on vs off. Emits one `train_step` measurement per mode whose
/// `seconds` is wall time per step and `heap_allocs` is per-step.
void BenchTrainStep(std::vector<Measurement>* results) {
  data::GeneratorOptions gen;
  gen.name = "quickstart";
  gen.num_roads = 4;
  gen.sensors_per_road = 4;
  gen.num_days = SmokeMode() ? 4 : 10;
  gen.steps_per_day = 144;
  gen.seed = 2024;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 16;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 8;
  settings.predictor_hidden = 64;

  train::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.stride = 2;
  config.eval_stride = 3;
  config.max_batches_per_epoch = SmokeMode() ? 8 : 0;

  const bool pool_was_enabled = pool::Enabled();
  for (const bool pool_on : {true, false}) {
    pool::SetEnabled(pool_on);
    auto model = baselines::MakeModel("ST-WA", dataset, settings);
    train::Trainer trainer(dataset, settings.history, settings.horizon,
                           config);
    int64_t steps =
        (trainer.train_sampler().num_samples() + config.batch_size - 1) /
        config.batch_size;
    if (config.max_batches_per_epoch > 0) {
      steps = std::min(steps, config.max_batches_per_epoch);
    }
    pool::ResetStats();
    Stopwatch watch;
    train::TrainResult r = trainer.Fit(*model);
    const double secs = watch.ElapsedSeconds();
    const pool::PoolStats s = pool::Stats();
    const int64_t total_steps = steps * std::max(1, r.epochs_run);
    Measurement m{pool_on ? "train_step_pool_on" : "train_step_pool_off",
                  total_steps,
                  runtime::NumThreads(),
                  secs / total_steps,
                  0.0,
                  s.misses / static_cast<uint64_t>(total_steps),
                  s.peak_outstanding_bytes};
    results->push_back(m);
    std::cout << m.kernel << " steps=" << total_steps << " "
              << m.seconds * 1e3 << " ms/step, " << m.heap_allocs
              << " heap allocs/step, peak " << m.peak_bytes << " B\n";
  }
  pool::SetEnabled(pool_was_enabled);
}

/// Captures one ST-WA train-step execution plan on the quickstart config
/// and compares a traced (eager) step against a replayed step: wall time,
/// tape nodes/bytes and buffer-pool traffic per step. With profiling
/// enabled, the replay also yields a per-OpKind forward/backward cost
/// table. Emits `graph_*` measurements into BENCH_kernels.json and the
/// full plan summary + per-op table into bench_out/BENCH_graph.json;
/// `fusion_json` (from BenchGraphFusion) is embedded as the file's
/// "graph_fusion" section.
void BenchGraphPlan(std::vector<Measurement>* results,
                    const std::string& fusion_json) {
  data::GeneratorOptions gen;
  gen.name = "quickstart";
  gen.num_roads = 4;
  gen.sensors_per_road = 4;
  gen.num_days = SmokeMode() ? 4 : 10;
  gen.steps_per_day = 144;
  gen.seed = 2024;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 16;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 8;
  settings.predictor_hidden = 64;

  train::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;

  auto model = baselines::MakeModel("ST-WA", dataset, settings);
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  std::vector<ag::Var> params = model->Parameters();
  const data::WindowSampler& sampler = trainer.train_sampler();
  auto batches = sampler.EpochBatches(config.batch_size, nullptr);
  data::Batch batch;
  sampler.MakeBatchInto(batches[0], &batch);

  // The same step the trainer runs: forward, Huber + regulariser, backward.
  auto traced_step = [&] {
    for (ag::Var& p : params) p.ZeroGrad();
    ag::Var pred = model->Forward(batch.x, /*training=*/true);
    ag::Var loss = ag::HuberLoss(pred, ag::Var(batch.y), 1.0f);
    ag::Var reg = model->RegularizationLoss();
    if (reg.defined()) loss = ag::Add(loss, reg);
    loss.Backward();
    return loss;
  };

  std::unique_ptr<ir::ExecutionPlan> plan;
  {
    ir::GraphCapture capture;
    ag::Var loss = traced_step();
    plan = capture.Finish(loss, {batch.x, batch.y}, /*with_backward=*/true);
  }
  if (plan == nullptr) {
    std::cout << "graph_plan: capture was unplannable, section skipped\n";
    return;
  }
  const ir::PlanStats& stats = plan->stats();
  auto replayed_step = [&] {
    for (ag::Var& p : params) p.ZeroGrad();
    plan->ReplayTrainStep({batch.x, batch.y});
  };

  const int reps = SmokeMode() ? 3 : 10;
  const int threads = runtime::NumThreads();

  Measurement traced_m{"graph_traced_step", stats.forward_ops, threads, 0.0,
                       0.0};
  traced_m.seconds = TimeBest(reps, traced_step);
  pool::ResetStats();
  traced_step();
  const pool::PoolStats traced_pool = pool::Stats();
  traced_m.heap_allocs = traced_pool.misses;
  traced_m.peak_bytes = traced_pool.peak_outstanding_bytes;
  results->push_back(traced_m);

  Measurement replay_m{"graph_replayed_step", stats.forward_ops, threads,
                       0.0, 0.0};
  replay_m.seconds = TimeBest(reps, replayed_step);
  pool::ResetStats();
  replayed_step();
  const pool::PoolStats replay_pool = pool::Stats();
  replay_m.heap_allocs = replay_pool.misses;
  replay_m.peak_bytes = replay_pool.peak_outstanding_bytes;
  results->push_back(replay_m);

  std::cout << "graph_plan: " << stats.captured_nodes << " nodes captured ("
            << stats.forward_ops << " fwd ops, " << stats.backward_ops
            << " bwd ops, " << stats.pruned_ops << " pruned)\n"
            << "  traced   " << traced_m.seconds * 1e3 << " ms/step, "
            << stats.forward_ops << " tape nodes, " << stats.tape_value_bytes
            << " tape B, " << traced_pool.requests << " buffer reqs, "
            << traced_m.heap_allocs << " heap allocs\n"
            << "  replayed " << replay_m.seconds * 1e3 << " ms/step, 0 tape "
            << "nodes, " << stats.peak_live_bytes << " peak live B, "
            << replay_pool.requests << " buffer reqs, "
            << replay_m.heap_allocs << " heap allocs ("
            << traced_m.seconds / replay_m.seconds << "x)\n";

  // Per-OpKind profile over a fixed number of instrumented replays.
  const int profile_reps = SmokeMode() ? 4 : 16;
  plan->EnableProfiling(true);
  for (int r = 0; r < profile_reps; ++r) replayed_step();
  plan->EnableProfiling(false);
  std::vector<ir::OpProfile> profile = plan->Profile();
  // Costliest kinds first, so both stdout and the JSON lead with the
  // kernels that dominate the step.
  std::sort(profile.begin(), profile.end(),
            [](const ir::OpProfile& a, const ir::OpProfile& b) {
              return a.forward_seconds + a.backward_seconds >
                     b.forward_seconds + b.backward_seconds;
            });
  std::cout << "  per-op profile (" << profile_reps << " replays):\n";
  for (const ir::OpProfile& p : profile) {
    const double fwd_ms = p.forward_seconds * 1e3 / profile_reps;
    const double bwd_ms = p.backward_seconds * 1e3 / profile_reps;
    std::cout << "    " << p.name << ": fwd " << p.forward_calls / profile_reps
              << " calls " << FormatFloat(fwd_ms, 3) << " ms, bwd "
              << p.backward_calls / profile_reps << " calls "
              << FormatFloat(bwd_ms, 3) << " ms, "
              << p.buffer_requests / profile_reps << " buffer reqs\n";
    Measurement op_m{std::string("graph_op_") + p.name,
                     p.forward_calls / profile_reps,
                     threads,
                     (p.forward_seconds + p.backward_seconds) / profile_reps,
                     0.0,
                     p.heap_allocs / static_cast<uint64_t>(profile_reps),
                     0};
    results->push_back(op_m);
  }

  const std::string path = BenchOutPath("BENCH_graph.json");
  std::ofstream out(path);
  out << "{\n  \"model\": \"ST-WA\",\n  \"precision\": \""
      << RunPrecisionName() << "\",\n  \"batch_x\": \""
      << ShapeToString(batch.x.shape()) << "\",\n  \"plan\": {"
      << "\"captured_nodes\": " << stats.captured_nodes
      << ", \"forward_ops\": " << stats.forward_ops
      << ", \"backward_ops\": " << stats.backward_ops
      << ", \"pruned_ops\": " << stats.pruned_ops
      << ", \"tape_value_bytes\": " << stats.tape_value_bytes
      << ", \"peak_live_bytes\": " << stats.peak_live_bytes
      << ", \"released_buffers\": " << stats.released_buffers << "},\n"
      << "  \"traced\": {\"seconds_per_step\": " << traced_m.seconds
      << ", \"tape_nodes_per_step\": " << stats.forward_ops
      << ", \"tape_value_bytes\": " << stats.tape_value_bytes
      << ", \"buffer_requests\": " << traced_pool.requests
      << ", \"heap_allocs\": " << traced_m.heap_allocs << "},\n"
      << "  \"replayed\": {\"seconds_per_step\": " << replay_m.seconds
      << ", \"tape_nodes_per_step\": 0"
      << ", \"peak_live_bytes\": " << stats.peak_live_bytes
      << ", \"buffer_requests\": " << replay_pool.requests
      << ", \"heap_allocs\": " << replay_m.heap_allocs << "},\n"
      << "  \"replay_speedup\": " << traced_m.seconds / replay_m.seconds
      << ",\n  \"profile_replays\": " << profile_reps
      << ",\n  \"graph_fusion\": " << fusion_json << ",\n  \"ops\": [\n";
  for (size_t i = 0; i < profile.size(); ++i) {
    const ir::OpProfile& p = profile[i];
    out << "    {\"name\": \"" << p.name
        << "\", \"forward_calls\": " << p.forward_calls / profile_reps
        << ", \"backward_calls\": " << p.backward_calls / profile_reps
        << ", \"forward_seconds\": " << p.forward_seconds / profile_reps
        << ", \"backward_seconds\": " << p.backward_seconds / profile_reps
        << ", \"buffer_requests\": " << p.buffer_requests / profile_reps
        << ", \"heap_allocs\": "
        << p.heap_allocs / static_cast<uint64_t>(profile_reps) << "}"
        << (i + 1 < profile.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

/// Fusion + region-parallelism A/B on the quickstart ST-WA eval step.
/// Captures the forward-only plan with the fusion passes off and on,
/// reports the executed-node reduction and which fuser patterns fired,
/// times the serial fused-vs-unfused replays, and sweeps the
/// region-parallel replay across thread counts, memcmp-ing every output
/// against the serial single-thread reference (deterministic-join
/// evidence: the bit_mismatches count must be 0). Also captures the
/// training step to report its fused-node counts honestly — train
/// subgraphs carry gradients, so the rewriter typically leaves them
/// untouched. Returns the "graph_fusion" JSON object for BENCH_graph.json.
std::string BenchGraphFusion(std::vector<Measurement>* results) {
  data::GeneratorOptions gen;
  gen.name = "quickstart";
  gen.num_roads = 4;
  gen.sensors_per_road = 4;
  gen.num_days = SmokeMode() ? 4 : 10;
  gen.steps_per_day = 144;
  gen.seed = 2024;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 16;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 8;
  settings.predictor_hidden = 64;

  train::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;

  auto model = baselines::MakeModel("ST-WA", dataset, settings);
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  const data::WindowSampler& sampler = trainer.train_sampler();
  auto batches = sampler.EpochBatches(config.batch_size, nullptr);
  data::Batch batch;
  sampler.MakeBatchInto(batches[0], &batch);

  auto capture_eval = [&]() -> std::unique_ptr<ir::ExecutionPlan> {
    ag::NoGradMode no_grad;
    ir::GraphCapture capture;
    ag::Var pred = model->Forward(batch.x, /*training=*/false);
    return capture.Finish(pred, {batch.x}, /*with_backward=*/false);
  };

  // Serial plans (region-parallel off) isolate the fusion delta; the
  // region-parallel plan is captured separately for the thread sweep.
  ir::SetRegionParMode(false);
  ir::SetFuseMode(false);
  auto unfused = capture_eval();
  ir::SetFuseMode(true);
  auto fused = capture_eval();
  ir::SetRegionParMode(true);
  auto fused_par = capture_eval();

  // Honest train-plan numbers: the same rewrite passes run on the training
  // capture, but only gradient-free subgraphs are legal to fuse there.
  std::unique_ptr<ir::ExecutionPlan> train_plan;
  {
    std::vector<ag::Var> params = model->Parameters();
    for (ag::Var& p : params) p.ZeroGrad();
    ir::GraphCapture capture;
    ag::Var pred = model->Forward(batch.x, /*training=*/true);
    ag::Var loss = ag::HuberLoss(pred, ag::Var(batch.y), 1.0f);
    ag::Var reg = model->RegularizationLoss();
    if (reg.defined()) loss = ag::Add(loss, reg);
    loss.Backward();
    train_plan = capture.Finish(loss, {batch.x, batch.y},
                                /*with_backward=*/true);
  }
  ir::SetFuseMode(true);
  ir::SetRegionParMode(true);
  if (unfused == nullptr || fused == nullptr || fused_par == nullptr) {
    std::cout << "graph_fusion: eval capture was unplannable, section "
                 "skipped\n";
    return "null";
  }

  const ir::PlanStats& us = unfused->stats();
  const ir::PlanStats& fs = fused->stats();
  const double reduction_pct =
      us.forward_ops > 0
          ? 100.0 * static_cast<double>(us.forward_ops - fs.forward_ops) /
                static_cast<double>(us.forward_ops)
          : 0.0;

  const int reps = SmokeMode() ? 5 : 20;
  runtime::SetNumThreads(1);
  Measurement unfused_m{"graph_fusion_replay_unfused", us.forward_ops, 1,
                        0.0, 0.0};
  unfused_m.seconds =
      TimeBest(reps, [&] { unfused->ReplayForward({batch.x}); });
  results->push_back(unfused_m);
  Measurement fused_m{"graph_fusion_replay_fused", fs.forward_ops, 1, 0.0,
                      0.0};
  fused_m.seconds = TimeBest(reps, [&] { fused->ReplayForward({batch.x}); });
  results->push_back(fused_m);

  // Thread sweep: serial single-thread output is the reference; both the
  // serial and the region-parallel plans must reproduce it bit-for-bit at
  // every thread count.
  Tensor reference = unfused->ReplayForward({batch.x}).Clone();
  int64_t mismatches = 0;
  const std::array<int, 3> sweep = {1, 2, 4};
  double par_seconds_4t = 0.0;
  for (int threads : sweep) {
    runtime::SetNumThreads(threads);
    const Tensor serial = fused->ReplayForward({batch.x}).Clone();
    const Tensor parallel = fused_par->ReplayForward({batch.x}).Clone();
    for (const Tensor* t : {&serial, &parallel}) {
      if (t->shape() != reference.shape() ||
          std::memcmp(t->data(), reference.data(),
                      sizeof(float) * reference.size()) != 0) {
        ++mismatches;
      }
    }
    if (threads == 4) {
      par_seconds_4t =
          TimeBest(reps, [&] { fused_par->ReplayForward({batch.x}); });
      Measurement par_m{"graph_fusion_replay_region_par", fs.forward_ops, 4,
                        par_seconds_4t, 0.0};
      results->push_back(par_m);
    }
  }
  runtime::SetNumThreads(0);

  std::cout << "graph_fusion: eval " << us.forward_ops << " -> "
            << fs.forward_ops << " fwd ops (" << FormatFloat(reduction_pct, 1)
            << "% fewer; " << fs.fused_map_nodes << " fused_map, "
            << fs.fused_attention_nodes << " fused_attention, "
            << fs.fused_away_ops << " absorbed)\n"
            << "  regions " << fs.regions << " in " << fs.region_stages
            << " stages (max width " << fs.max_stage_width << ")\n"
            << "  replay 1t: unfused " << unfused_m.seconds * 1e3
            << " ms, fused " << fused_m.seconds * 1e3 << " ms ("
            << unfused_m.seconds / fused_m.seconds << "x); region-par 4t "
            << par_seconds_4t * 1e3 << " ms\n"
            << "  thread sweep {1,2,4}: " << mismatches
            << " bit mismatches vs serial reference\n";
  if (train_plan != nullptr) {
    std::cout << "  train plan: " << train_plan->stats().fused_map_nodes
              << " fused_map, " << train_plan->stats().fused_attention_nodes
              << " fused_attention (gradient subgraphs stay unfused)\n";
  }

  std::ostringstream json;
  json << "{\"eval_forward_ops_unfused\": " << us.forward_ops
       << ", \"eval_forward_ops_fused\": " << fs.forward_ops
       << ", \"node_reduction_pct\": " << reduction_pct
       << ", \"fused_map_nodes\": " << fs.fused_map_nodes
       << ", \"fused_attention_nodes\": " << fs.fused_attention_nodes
       << ", \"fused_away_ops\": " << fs.fused_away_ops
       << ", \"regions\": " << fs.regions
       << ", \"region_stages\": " << fs.region_stages
       << ", \"max_stage_width\": " << fs.max_stage_width
       << ", \"train_fused_map_nodes\": "
       << (train_plan ? train_plan->stats().fused_map_nodes : 0)
       << ", \"train_fused_attention_nodes\": "
       << (train_plan ? train_plan->stats().fused_attention_nodes : 0)
       << ", \"replay_seconds_unfused_1t\": " << unfused_m.seconds
       << ", \"replay_seconds_fused_1t\": " << fused_m.seconds
       << ", \"fusion_speedup\": " << unfused_m.seconds / fused_m.seconds
       << ", \"region_par_seconds_4t\": " << par_seconds_4t
       << ", \"thread_sweep\": [1, 2, 4]"
       << ", \"bit_mismatches\": " << mismatches << "}";
  return json.str();
}

void Run() {
  ReportRuntime();
  Rng rng(77);
  std::vector<Measurement> results;
  const bool smoke = SmokeMode();
  if (smoke) std::cout << "[bench] smoke mode (STWA_BENCH_SMOKE=1)\n";

  std::vector<int64_t> matmul_sizes = {64, 128, 256, 512, 1024};
  if (smoke) matmul_sizes = {64, 128, 256};
  for (int threads : ThreadCounts()) {
    runtime::SetNumThreads(threads);

    for (int64_t s : matmul_sizes) {
      Tensor a = Tensor::Randn({s, s}, rng);
      Tensor b = Tensor::Randn({s, s}, rng);
      const int reps = smoke ? 2 : (s >= 512 ? 3 : 8);
      Measurement m{"matmul", s, threads, 0.0, 0.0};
      m.seconds = TimeBest(reps, [&] { return ops::MatMul2D(a, b); });
      CountAllocs(&m, [&] { return ops::MatMul2D(a, b); });
      const double flops = 2.0 * s * s * s;
      m.gflops = flops / m.seconds / 1e9;
      results.push_back(m);
      std::cout << "matmul " << s << "x" << s << " threads=" << threads
                << " " << m.seconds * 1e3 << " ms (" << m.gflops
                << " GFLOP/s)\n";
    }

    {
      // Rows of 512: the shape window attention produces.
      const int64_t rows = smoke ? 256 : 4096;
      Tensor x = Tensor::Randn({rows, 512}, rng);
      Measurement m{"softmax", rows * 512, threads, 0.0, 0.0};
      m.seconds =
          TimeBest(smoke ? 3 : 8, [&] { return ops::SoftmaxLast(x); });
      CountAllocs(&m, [&] { return ops::SoftmaxLast(x); });
      results.push_back(m);
      std::cout << "softmax " << rows << "x512 threads=" << threads << " "
                << m.seconds * 1e3 << " ms\n";
    }

    {
      const int64_t n = smoke ? (1 << 18) : (1 << 22);  // 4M floats full
      Tensor x = Tensor::Randn({n}, rng);
      Tensor y = Tensor::Randn({n}, rng);
      Measurement add_m{"add", n, threads, 0.0, 0.0};
      add_m.seconds = TimeBest(smoke ? 3 : 8, [&] { return ops::Add(x, y); });
      CountAllocs(&add_m, [&] { return ops::Add(x, y); });
      results.push_back(add_m);
      std::cout << "add " << n << " threads=" << threads << " "
                << add_m.seconds * 1e3 << " ms\n";
      Measurement tanh_m{"tanh", n, threads, 0.0, 0.0};
      tanh_m.seconds = TimeBest(smoke ? 3 : 8, [&] { return ops::Tanh(x); });
      CountAllocs(&tanh_m, [&] { return ops::Tanh(x); });
      results.push_back(tanh_m);
      std::cout << "tanh " << n << " threads=" << threads << " "
                << tanh_m.seconds * 1e3 << " ms\n";
      // In-place vs out-of-place: the allocation-free fused path.
      Measurement axpy_m{"axpy_inplace", n, threads, 0.0, 0.0};
      Tensor dst = Tensor::Randn({n}, rng);
      axpy_m.seconds = TimeBest(smoke ? 3 : 8,
                                [&] { ops::AxpyInPlace(dst, 0.5f, y); });
      CountAllocs(&axpy_m, [&] { ops::AxpyInPlace(dst, 0.5f, y); });
      results.push_back(axpy_m);
      std::cout << "axpy_inplace " << n << " threads=" << threads << " "
                << axpy_m.seconds * 1e3 << " ms\n";
    }

    BenchDispatch(rng, &results);
  }
  runtime::SetNumThreads(0);

  BenchGemm(rng, &results);
  BenchTrainStep(&results);
  const std::string fusion_json = BenchGraphFusion(&results);
  BenchGraphPlan(&results, fusion_json);

  // Headline number for the PR gate: 512x512 matmul speedup over 1 thread.
  double base512 = 0.0;
  for (const Measurement& m : results) {
    if (m.kernel == "matmul" && m.size == 512 && m.threads == 1) {
      base512 = m.seconds;
    }
  }
  for (const Measurement& m : results) {
    if (m.kernel == "matmul" && m.size == 512 && m.threads != 1 &&
        base512 > 0.0) {
      std::cout << "matmul 512 speedup at " << m.threads
                << " threads: " << base512 / m.seconds << "x\n";
    }
  }
  // And the allocation headline: pool-off vs pool-on allocs per step.
  uint64_t allocs_on = 0, allocs_off = 0;
  for (const Measurement& m : results) {
    if (m.kernel == "train_step_pool_on") allocs_on = m.heap_allocs;
    if (m.kernel == "train_step_pool_off") allocs_off = m.heap_allocs;
  }
  if (allocs_off > 0) {
    std::cout << "train-step heap allocs: pool off " << allocs_off
              << "/step, pool on " << allocs_on << "/step ("
              << (allocs_on > 0
                      ? static_cast<double>(allocs_off) / allocs_on
                      : static_cast<double>(allocs_off))
              << "x fewer)\n";
  }

  const std::string path = BenchOutPath("BENCH_kernels.json");
  std::ofstream out(path);
  out << "{\n  \"simd\": \"" << simd::IsaName() << "\",\n  \"precision\": \""
      << RunPrecisionName() << "\",\n  \"measurements\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    out << "    {\"kernel\": \"" << m.kernel << "\", \"size\": " << m.size
        << ", \"threads\": " << m.threads << ", \"seconds\": " << m.seconds
        << ", \"gflops\": " << m.gflops
        << ", \"heap_allocs\": " << m.heap_allocs
        << ", \"peak_bytes\": " << m.peak_bytes << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
