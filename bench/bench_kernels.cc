// Kernel microbenchmark: times the runtime-backed hot kernels (matmul,
// softmax, elementwise maps) across thread counts and writes
// bench_out/BENCH_kernels.json. This seeds the perf trajectory: later
// kernel/runtime PRs re-run it and diff the numbers.
//
// Beyond wall time, every measurement records the buffer-pool counters for
// one kernel invocation: `heap_allocs` (pool misses, i.e. real heap
// allocations) and `peak_bytes` (peak outstanding pooled bytes). Two extra
// sections probe the allocation work itself:
//   * dispatch: ops::UnaryOp (type-erased std::function) vs ops::UnaryMap
//     (inlined functor) on the same data — the de-virtualisation delta;
//   * train_step: heap allocations per training step on the quickstart
//     ST-WA config, pool on vs off (STWA_DISABLE_POOL A/B in one process).
//
// Thread counts swept: 1, 2, 4 and the runtime default (deduplicated).
// Each measurement is the best of several repetitions, so transient noise
// does not mask kernel-level changes.
//
// STWA_BENCH_SMOKE=1 shrinks sizes/reps/thread counts to a seconds-long CI
// smoke run that still exercises every section and emits the same JSON.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/traffic_generator.h"
#include "runtime/parallel.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace stwa {
namespace bench {
namespace {

struct Measurement {
  std::string kernel;
  int64_t size = 0;
  int threads = 0;
  double seconds = 0.0;
  double gflops = 0.0;      // 0 when the kernel has no natural flop count
  uint64_t heap_allocs = 0;  // pool misses during one invocation
  uint64_t peak_bytes = 0;   // peak outstanding pooled bytes
};

/// Best-of-`reps` wall time of fn(), with one untimed warmup.
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

/// Runs fn() once under freshly reset pool counters and stores the
/// miss/peak columns into `m`.
template <typename Fn>
void CountAllocs(Measurement* m, Fn&& fn) {
  pool::ResetStats();
  fn();
  const pool::PoolStats s = pool::Stats();
  m->heap_allocs = s.misses;
  m->peak_bytes = s.peak_outstanding_bytes;
}

bool SmokeMode() { return GetEnvOr("STWA_BENCH_SMOKE", "") == "1"; }

std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 4, runtime::DefaultNumThreads()};
  if (SmokeMode()) counts = {1, runtime::DefaultNumThreads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

/// ops::UnaryOp (std::function) vs ops::UnaryMap (inlined functor) on the
/// same buffer: the cost of type-erased elementwise dispatch.
void BenchDispatch(Rng& rng, std::vector<Measurement>* results) {
  const int64_t n = SmokeMode() ? (1 << 18) : (1 << 22);
  const int reps = SmokeMode() ? 3 : 8;
  Tensor x = Tensor::Randn({n}, rng);
  const std::function<float(float)> erased = [](float v) {
    return v * v + 1.0f;
  };
  const auto inlined = [](float v) { return v * v + 1.0f; };

  Measurement fn_m{"dispatch_function", n, runtime::NumThreads(), 0.0, 0.0};
  fn_m.seconds = TimeBest(reps, [&] { return ops::UnaryOp(x, erased); });
  CountAllocs(&fn_m, [&] { return ops::UnaryOp(x, erased); });
  results->push_back(fn_m);

  Measurement tmpl_m{"dispatch_template", n, runtime::NumThreads(), 0.0,
                     0.0};
  tmpl_m.seconds = TimeBest(reps, [&] { return ops::UnaryMap(x, inlined); });
  CountAllocs(&tmpl_m, [&] { return ops::UnaryMap(x, inlined); });
  results->push_back(tmpl_m);

  std::cout << "dispatch n=" << n
            << " std::function=" << fn_m.seconds * 1e3
            << " ms, template=" << tmpl_m.seconds * 1e3 << " ms ("
            << fn_m.seconds / tmpl_m.seconds << "x)\n";
}

/// Heap allocations per training step on the quickstart ST-WA config,
/// pool on vs off. Emits one `train_step` measurement per mode whose
/// `seconds` is wall time per step and `heap_allocs` is per-step.
void BenchTrainStep(std::vector<Measurement>* results) {
  data::GeneratorOptions gen;
  gen.name = "quickstart";
  gen.num_roads = 4;
  gen.sensors_per_road = 4;
  gen.num_days = SmokeMode() ? 4 : 10;
  gen.steps_per_day = 144;
  gen.seed = 2024;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 16;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 8;
  settings.predictor_hidden = 64;

  train::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.stride = 2;
  config.eval_stride = 3;
  config.max_batches_per_epoch = SmokeMode() ? 8 : 0;

  const bool pool_was_enabled = pool::Enabled();
  for (const bool pool_on : {true, false}) {
    pool::SetEnabled(pool_on);
    auto model = baselines::MakeModel("ST-WA", dataset, settings);
    train::Trainer trainer(dataset, settings.history, settings.horizon,
                           config);
    int64_t steps =
        (trainer.train_sampler().num_samples() + config.batch_size - 1) /
        config.batch_size;
    if (config.max_batches_per_epoch > 0) {
      steps = std::min(steps, config.max_batches_per_epoch);
    }
    pool::ResetStats();
    Stopwatch watch;
    train::TrainResult r = trainer.Fit(*model);
    const double secs = watch.ElapsedSeconds();
    const pool::PoolStats s = pool::Stats();
    const int64_t total_steps = steps * std::max(1, r.epochs_run);
    Measurement m{pool_on ? "train_step_pool_on" : "train_step_pool_off",
                  total_steps,
                  runtime::NumThreads(),
                  secs / total_steps,
                  0.0,
                  s.misses / static_cast<uint64_t>(total_steps),
                  s.peak_outstanding_bytes};
    results->push_back(m);
    std::cout << m.kernel << " steps=" << total_steps << " "
              << m.seconds * 1e3 << " ms/step, " << m.heap_allocs
              << " heap allocs/step, peak " << m.peak_bytes << " B\n";
  }
  pool::SetEnabled(pool_was_enabled);
}

void Run() {
  ReportRuntime();
  Rng rng(77);
  std::vector<Measurement> results;
  const bool smoke = SmokeMode();
  if (smoke) std::cout << "[bench] smoke mode (STWA_BENCH_SMOKE=1)\n";

  std::vector<int64_t> matmul_sizes = {64, 128, 256, 512, 1024};
  if (smoke) matmul_sizes = {64, 128, 256};
  for (int threads : ThreadCounts()) {
    runtime::SetNumThreads(threads);

    for (int64_t s : matmul_sizes) {
      Tensor a = Tensor::Randn({s, s}, rng);
      Tensor b = Tensor::Randn({s, s}, rng);
      const int reps = smoke ? 2 : (s >= 512 ? 3 : 8);
      Measurement m{"matmul", s, threads, 0.0, 0.0};
      m.seconds = TimeBest(reps, [&] { return ops::MatMul2D(a, b); });
      CountAllocs(&m, [&] { return ops::MatMul2D(a, b); });
      const double flops = 2.0 * s * s * s;
      m.gflops = flops / m.seconds / 1e9;
      results.push_back(m);
      std::cout << "matmul " << s << "x" << s << " threads=" << threads
                << " " << m.seconds * 1e3 << " ms (" << m.gflops
                << " GFLOP/s)\n";
    }

    {
      // Rows of 512: the shape window attention produces.
      const int64_t rows = smoke ? 256 : 4096;
      Tensor x = Tensor::Randn({rows, 512}, rng);
      Measurement m{"softmax", rows * 512, threads, 0.0, 0.0};
      m.seconds =
          TimeBest(smoke ? 3 : 8, [&] { return ops::SoftmaxLast(x); });
      CountAllocs(&m, [&] { return ops::SoftmaxLast(x); });
      results.push_back(m);
      std::cout << "softmax " << rows << "x512 threads=" << threads << " "
                << m.seconds * 1e3 << " ms\n";
    }

    {
      const int64_t n = smoke ? (1 << 18) : (1 << 22);  // 4M floats full
      Tensor x = Tensor::Randn({n}, rng);
      Tensor y = Tensor::Randn({n}, rng);
      Measurement add_m{"add", n, threads, 0.0, 0.0};
      add_m.seconds = TimeBest(smoke ? 3 : 8, [&] { return ops::Add(x, y); });
      CountAllocs(&add_m, [&] { return ops::Add(x, y); });
      results.push_back(add_m);
      std::cout << "add " << n << " threads=" << threads << " "
                << add_m.seconds * 1e3 << " ms\n";
      Measurement tanh_m{"tanh", n, threads, 0.0, 0.0};
      tanh_m.seconds = TimeBest(smoke ? 3 : 8, [&] { return ops::Tanh(x); });
      CountAllocs(&tanh_m, [&] { return ops::Tanh(x); });
      results.push_back(tanh_m);
      std::cout << "tanh " << n << " threads=" << threads << " "
                << tanh_m.seconds * 1e3 << " ms\n";
      // In-place vs out-of-place: the allocation-free fused path.
      Measurement axpy_m{"axpy_inplace", n, threads, 0.0, 0.0};
      Tensor dst = Tensor::Randn({n}, rng);
      axpy_m.seconds = TimeBest(smoke ? 3 : 8,
                                [&] { ops::AxpyInPlace(dst, 0.5f, y); });
      CountAllocs(&axpy_m, [&] { ops::AxpyInPlace(dst, 0.5f, y); });
      results.push_back(axpy_m);
      std::cout << "axpy_inplace " << n << " threads=" << threads << " "
                << axpy_m.seconds * 1e3 << " ms\n";
    }

    BenchDispatch(rng, &results);
  }
  runtime::SetNumThreads(0);

  BenchTrainStep(&results);

  // Headline number for the PR gate: 512x512 matmul speedup over 1 thread.
  double base512 = 0.0;
  for (const Measurement& m : results) {
    if (m.kernel == "matmul" && m.size == 512 && m.threads == 1) {
      base512 = m.seconds;
    }
  }
  for (const Measurement& m : results) {
    if (m.kernel == "matmul" && m.size == 512 && m.threads != 1 &&
        base512 > 0.0) {
      std::cout << "matmul 512 speedup at " << m.threads
                << " threads: " << base512 / m.seconds << "x\n";
    }
  }
  // And the allocation headline: pool-off vs pool-on allocs per step.
  uint64_t allocs_on = 0, allocs_off = 0;
  for (const Measurement& m : results) {
    if (m.kernel == "train_step_pool_on") allocs_on = m.heap_allocs;
    if (m.kernel == "train_step_pool_off") allocs_off = m.heap_allocs;
  }
  if (allocs_off > 0) {
    std::cout << "train-step heap allocs: pool off " << allocs_off
              << "/step, pool on " << allocs_on << "/step ("
              << (allocs_on > 0
                      ? static_cast<double>(allocs_off) / allocs_on
                      : static_cast<double>(allocs_off))
              << "x fewer)\n";
  }

  const std::string path = BenchOutPath("BENCH_kernels.json");
  std::ofstream out(path);
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    out << "  {\"kernel\": \"" << m.kernel << "\", \"size\": " << m.size
        << ", \"threads\": " << m.threads << ", \"seconds\": " << m.seconds
        << ", \"gflops\": " << m.gflops
        << ", \"heap_allocs\": " << m.heap_allocs
        << ", \"peak_bytes\": " << m.peak_bytes << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
