// Reproduces Table IX: effect of window sizes on PEMS04 (H=12, U=12):
// three 3-layer configurations, two 2-layer configurations, and the
// single-layer S=12 configuration. Expected shape: 3-layer configs are
// close to each other and best; S=12 (one layer) is clearly worst.

#include <iostream>
#include <sstream>

#include "bench_util.h"

namespace stwa {
namespace bench {
namespace {

std::string ConfigName(const std::vector<int64_t>& sizes) {
  std::ostringstream oss;
  oss << sizes.size() << "L S=";
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) oss << ",";
    oss << sizes[i];
  }
  return oss.str();
}

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  train::TrainConfig config = MakeTrainConfig(scale);

  const std::vector<std::vector<int64_t>> configs = {
      {3, 2, 2}, {2, 3, 2}, {2, 2, 3}, {4, 3}, {6, 2}, {12}};
  train::TablePrinter table("Table IX: Effect of window sizes, " +
                            dataset.name + " (H=12, U=12)");
  table.SetHeader({"Config", "MAE", "MAPE", "RMSE"});
  for (const auto& sizes : configs) {
    baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
    settings.window_sizes = sizes;
    train::TrainResult result =
        RunModel("ST-WA", dataset, settings, config);
    std::vector<std::string> row = {ConfigName(sizes)};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    table.AddRow(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table IX): small variation among "
               "3-layer configurations; 2-layer configs slightly worse; "
               "the single-layer S=12 config clearly worst.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
