// Reproduces Table VII: model-agnostic ST-aware parameter generation.
// GRU and canonical attention (ATT) forecasters, each in base, "+S"
// (spatial-aware) and "+ST" (spatio-temporal aware) variants, across the
// four datasets. Expected shape: +S improves on the base model and +ST
// improves further, for both architectures.

#include <iostream>

#include "bench_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
  train::TrainConfig config = MakeTrainConfig(scale);

  const std::vector<std::string> models = {"GRU", "GRU+S", "GRU+ST",
                                           "ATT", "ATT+S", "ATT+ST"};
  train::TablePrinter table(
      "Table VII: Enhanced GRU / ATT variants, H=12, U=12");
  table.SetHeader({"Dataset", "Model", "MAE", "MAPE", "RMSE"});
  for (PaperDataset ds : {PaperDataset::kPems03, PaperDataset::kPems04,
                          PaperDataset::kPems07, PaperDataset::kPems08}) {
    data::TrafficDataset dataset = MakeDataset(ds, scale);
    for (const std::string& name : models) {
      train::TrainResult result = RunModel(name, dataset, settings, config);
      std::vector<std::string> row = {dataset.name, name};
      for (const std::string& cell : MetricCells(result.test)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      std::cout << "." << std::flush;
    }
    table.AddSeparator();
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table VII): +S beats the base "
               "model and +ST beats +S, for both GRU and ATT — the "
               "generation framework is model-agnostic.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
