// Reproduces Figure 10: training runtime (seconds per epoch) as the
// historical window H grows from 12 to 36 to 120, for STFGNN, EnhanceNet,
// AGCRN and ST-WA on PEMS04. Expected shape: baseline runtimes grow
// steeply with H while ST-WA grows roughly linearly and is the cheapest
// at the longest window.

#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  // Runtime measurement wants identical work per configuration: fixed
  // number of batches, few epochs.
  scale.epochs = 2;
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  train::TrainConfig config = MakeTrainConfig(scale);
  config.epochs = 2;
  config.max_batches_per_epoch = 8;
  config.eval_stride = 16;

  const std::vector<std::string> models = {"STFGNN", "EnhanceNet", "AGCRN",
                                           "ST-WA"};
  const std::vector<int64_t> histories = {12, 36, 120};

  train::TablePrinter table("Figure 10: training runtime (s/epoch) vs H, " +
                            dataset.name);
  std::vector<std::string> header = {"Model"};
  for (int64_t h : histories) header.push_back("H=" + std::to_string(h));
  table.SetHeader(header);

  std::ofstream csv(BenchOutPath("fig10_runtime.csv"));
  csv << "model,h,seconds_per_epoch\n";
  for (const std::string& name : models) {
    std::vector<std::string> row = {name};
    for (int64_t h : histories) {
      baselines::ModelSettings settings = MakeSettings(scale, h, 12);
      train::TrainResult result = RunModel(name, dataset, settings, config);
      row.push_back(FormatFloat(result.seconds_per_epoch, 2));
      csv << name << "," << h << "," << result.seconds_per_epoch << "\n";
      std::cout << "." << std::flush;
    }
    table.AddRow(row);
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nCSV written to bench_out/fig10_runtime.csv.\nExpected "
               "shape (paper Fig. 10): baseline epoch time grows steeply "
               "with H; ST-WA grows roughly linearly and wins at H=120.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
