// Reproduces Table XIII: effect of the number of proxies p in {1, 2, 3}
// at the long-horizon setting (H = U = 72) on PEMS04, with training time
// and parameter count. Expected shape: more proxies slightly improve
// accuracy at the price of training time and parameters.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  train::TrainConfig config = MakeTrainConfig(scale);
  config.epochs = std::min(config.epochs, 25);
  config.stride *= 2;
  config.eval_stride *= 2;

  train::TablePrinter table("Table XIII: Effect of number of proxies p, " +
                            dataset.name + " (H=72, U=72)");
  table.SetHeader({"p", "MAE", "MAPE", "RMSE", "s/epoch", "#Param"});
  for (int64_t p : {1, 2, 3}) {
    baselines::ModelSettings settings = MakeSettings(scale, 72, 72);
    settings.proxies = p;
    train::TrainResult result =
        RunModel("ST-WA", dataset, settings, config);
    std::vector<std::string> row = {std::to_string(p)};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    row.push_back(FormatFloat(result.seconds_per_epoch, 2));
    row.push_back(std::to_string(result.param_count));
    table.AddRow(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table XIII): accuracy improves "
               "slightly with p while training time and parameter count "
               "grow.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
