// Shared plumbing for the per-table/figure bench binaries.
//
// Every table binary trains scaled-down models on the synthetic PEMS-like
// datasets and prints rows in the paper's layout. The scale knob:
//   STWA_BENCH_SCALE=fast   (default) minutes-long run, small N / few epochs
//   STWA_BENCH_SCALE=full   larger datasets and longer training
// Absolute numbers differ from the paper (CPU, synthetic data); the bench
// output is about the *shape*: which model wins, by roughly what factor,
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured.

#ifndef STWA_BENCH_BENCH_UTIL_H_
#define STWA_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "baselines/registry.h"
#include "data/traffic_generator.h"
#include "train/table.h"
#include "train/trainer.h"

namespace stwa {
namespace bench {

/// Bench scale selected via STWA_BENCH_SCALE.
struct BenchScale {
  bool fast = true;
  int64_t steps_per_day = 144;  // 10-minute sampling in fast mode
  int64_t num_days = 14;
  int epochs = 40;
  int64_t batch_size = 8;
  int64_t stride = 4;
  int64_t eval_stride = 6;
  int64_t d_model = 16;
  int64_t predictor_hidden = 64;
  int64_t max_batches_per_epoch = 0;
  /// Worker threads for the execution runtime; resolved from
  /// STWA_NUM_THREADS / hardware_concurrency (runtime::DefaultNumThreads).
  int num_threads = 1;
};

/// Reads STWA_BENCH_SCALE and returns the corresponding scale.
BenchScale GetScale();

/// The four paper datasets at bench scale; sensor counts preserve the
/// paper's ordering PEMS07 > PEMS03 > PEMS04 > PEMS08.
enum class PaperDataset { kPems03, kPems04, kPems07, kPems08 };

/// Paper sensor count of a dataset (for the memory model's OOM column).
int64_t PaperSensorCount(PaperDataset dataset);

/// Display name ("PEMS03-like" etc.).
std::string DatasetName(PaperDataset dataset);

/// Generates the dataset at the given scale.
data::TrafficDataset MakeDataset(PaperDataset dataset,
                                 const BenchScale& scale);

/// Default model settings for a scale and forecasting setting.
baselines::ModelSettings MakeSettings(const BenchScale& scale,
                                      int64_t history, int64_t horizon);

/// Training config for a scale.
train::TrainConfig MakeTrainConfig(const BenchScale& scale);

/// Trains `model_name` on `dataset` and returns the result.
train::TrainResult RunModel(const std::string& model_name,
                            const data::TrafficDataset& dataset,
                            const baselines::ModelSettings& settings,
                            const train::TrainConfig& config);

/// Formats a metric triple as three table cells.
std::vector<std::string> MetricCells(const metrics::ForecastMetrics& m);

/// Prints the execution-runtime configuration (thread count, buffer-pool
/// state, SIMD ISA and precision tier) so every bench records what it ran
/// with.
void ReportRuntime();

/// Name of the run's default serving precision tier (STWA_PRECISION;
/// "fp32" when unset). Benches stamp this into their JSON next to the
/// "simd" field.
const char* RunPrecisionName();

/// Stamps the serving profile name and checkpoint version this run serves
/// at into the [runtime] banner (and the accessors below, for JSON).
/// Serving benches call it before ReportRuntime(); non-serving benches
/// leave the defaults ("-" / 0 = no checkpoint involved).
void SetRunCheckpoint(const std::string& profile, int64_t ckpt_version);
const std::string& RunProfileName();
int64_t RunCheckpointVersion();

/// Ensures ./bench_out exists and returns the path of `filename` in it.
std::string BenchOutPath(const std::string& filename);

}  // namespace bench
}  // namespace stwa

#endif  // STWA_BENCH_BENCH_UTIL_H_
