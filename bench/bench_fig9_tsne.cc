// Reproduces Figure 9: t-SNE visualisation of the learned stochastic
// variables. After training a small ST-WA model:
//   (a) the generated projection matrices phi_t^(i) of one sensor across
//       many time windows are embedded to 2D — they must spread (different
//       windows use different parameters) and separate by traffic regime
//       (the paper shows clusters specialising in rising/falling trends;
//       here we label windows as high- vs low-traffic periods);
//   (b) the per-sensor spatial latents z^(i) are embedded to 2D — they
//       must reflect the road structure: same-road sensors sit closer to
//       each other than cross-road sensors.
// Embeddings are written to bench_out/ as CSV for plotting.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>

#include "analysis/kmeans.h"
#include "analysis/tsne.h"
#include "bench_util.h"
#include "common/string_util.h"
#include "core/stwa_model.h"
#include "data/sampler.h"
#include "data/scaler.h"
#include "tensor/ops.h"

namespace stwa {
namespace bench {
namespace {

/// Mean same-label vs cross-label Euclidean distance ratio of rows of X;
/// ratio > 1 means same-label rows are closer (structure present).
double CrossToSameDistanceRatio(const Tensor& x,
                                const std::vector<int>& labels) {
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  double same = 0.0;
  double cross = 0.0;
  int64_t same_n = 0;
  int64_t cross_n = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (int64_t f = 0; f < d; ++f) {
        const double diff = x({i, f}) - x({j, f});
        acc += diff * diff;
      }
      const double dist = std::sqrt(acc);
      if (labels[i] == labels[j]) {
        same += dist;
        ++same_n;
      } else {
        cross += dist;
        ++cross_n;
      }
    }
  }
  if (same_n == 0 || cross_n == 0) return 1.0;
  return (cross / cross_n) / (same / same_n);
}

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
  train::TrainConfig config = MakeTrainConfig(scale);

  // Train ST-WA so the latents carry signal.
  auto model_ptr = baselines::MakeModel("ST-WA", dataset, settings);
  auto* model = dynamic_cast<core::StwaModel*>(model_ptr.get());
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  trainer.Fit(*model);

  // --- (a) phi_t^(0): generated projections across time windows --------
  const data::WindowSampler& sampler = trainer.test_sampler();
  const int64_t windows = std::min<int64_t>(sampler.num_samples(), 96);
  std::vector<Tensor> rows;
  std::vector<float> window_mean;
  for (int64_t w = 0; w < windows; ++w) {
    data::Batch batch = sampler.MakeBatch({w});
    Tensor phi = model->GeneratedProjections(batch.x, 0);  // [N, d_in*d]
    rows.push_back(ops::Slice(phi, 0, 0, 1).Reshape({phi.dim(1)}));
    // Mean normalised flow of sensor 0's window — the regime label.
    Tensor s0 = ops::Slice(batch.x, 1, 0, 1);
    window_mean.push_back(ops::MeanAll(s0).item());
  }
  // Median split: high-traffic vs low-traffic windows.
  std::vector<float> sorted = window_mean;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const float median = sorted[sorted.size() / 2];
  std::vector<int> regime(windows);
  for (int64_t w = 0; w < windows; ++w) {
    regime[w] = window_mean[w] >= median ? 1 : 0;
  }
  Tensor phi_matrix = ops::Stack(rows);
  const double phi_ratio = CrossToSameDistanceRatio(phi_matrix, regime);
  analysis::TsneOptions topt;
  topt.perplexity = 12.0;
  topt.iterations = 400;
  Tensor phi_2d = analysis::Tsne(phi_matrix, topt);
  {
    std::ofstream out(BenchOutPath("fig9a_phi_tsne.csv"));
    out << "x,y,regime\n";
    for (int64_t i = 0; i < phi_2d.dim(0); ++i) {
      out << phi_2d({i, 0}) << "," << phi_2d({i, 1}) << "," << regime[i]
          << "\n";
    }
  }

  // --- (b) z^(i): per-sensor spatial latents ----------------------------
  Tensor z = model->SpatialLatentMeans();  // [N, k]
  const double z_ratio =
      CrossToSameDistanceRatio(z, dataset.road_of_sensor);
  analysis::TsneOptions zopt;
  zopt.perplexity = std::min<double>(6.0, dataset.num_sensors() / 2.0 - 1);
  zopt.iterations = 400;
  Tensor z_2d = analysis::Tsne(z, zopt);
  {
    std::ofstream out(BenchOutPath("fig9b_z_tsne.csv"));
    out << "x,y,road\n";
    for (int64_t i = 0; i < z_2d.dim(0); ++i) {
      out << z_2d({i, 0}) << "," << z_2d({i, 1}) << ","
          << dataset.road_of_sensor[i] << "\n";
    }
  }
  const double z2d_ratio =
      CrossToSameDistanceRatio(z_2d, dataset.road_of_sensor);

  train::TablePrinter table("Figure 9: learned latents reflect regimes "
                            "and roads (" + dataset.name + ")");
  table.SetHeader({"Quantity", "Value", "Structure present if"});
  table.AddRow({"phi_t windows embedded", std::to_string(windows), ""});
  table.AddRow({"phi_t cross/same regime distance",
                FormatFloat(phi_ratio, 3), "> 1"});
  table.AddRow({"z^(i) cross/same road distance (k-dim)",
                FormatFloat(z_ratio, 3), "> 1"});
  table.AddRow({"z^(i) cross/same road distance (t-SNE 2D)",
                FormatFloat(z2d_ratio, 3), "> 1"});
  table.Print();
  std::cout << "\nCSV written to bench_out/fig9a_phi_tsne.csv and "
               "bench_out/fig9b_z_tsne.csv.\nExpected shape (paper Fig. "
               "9): the generated parameters differ by traffic regime "
               "(ratio > 1) and the spatial latents place same-road "
               "sensors closer than cross-road sensors (ratio > 1).\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
