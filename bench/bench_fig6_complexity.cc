// Reproduces the Figure 6 complexity comparison as a google-benchmark
// microbench: canonical attention (CA, O(H^2)) vs window attention
// (WA, O(H)) forward passes over growing history lengths H. Expected
// shape: CA time grows quadratically with H, WA roughly linearly, with a
// widening gap.

#include <benchmark/benchmark.h>

#include "autograd/no_grad.h"
#include "bench_util.h"
#include "core/enhanced_models.h"
#include "core/stwa_model.h"
#include "tensor/tensor.h"

namespace stwa {
namespace {

constexpr int64_t kSensors = 8;
constexpr int64_t kBatch = 4;

void BM_CanonicalAttention(benchmark::State& state) {
  const int64_t h = state.range(0);
  core::EnhancedConfig c;
  c.num_sensors = kSensors;
  c.history = h;
  c.horizon = 12;
  c.d_model = 16;
  c.predictor_hidden = 32;
  c.num_layers = 2;
  Rng rng(1);
  core::AttForecaster model(c, &rng);
  Tensor x = Tensor::Randn({kBatch, kSensors, h, 1}, rng);
  ag::NoGradMode no_grad;  // inference complexity, not training
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x, /*training=*/false));
  }
  state.SetComplexityN(h);
}
BENCHMARK(BM_CanonicalAttention)
    ->Arg(12)->Arg(24)->Arg(48)->Arg(96)->Arg(192)
    ->Complexity();

void BM_WindowAttention(benchmark::State& state) {
  const int64_t h = state.range(0);
  core::StwaConfig c;
  c.num_sensors = kSensors;
  c.history = h;
  c.horizon = 12;
  c.d_model = 16;
  c.latent_dim = 8;
  c.predictor_hidden = 32;
  // Two layers with window sizes that divide every H in the sweep
  // (every swept H is divisible by 6, and H/6 by 2).
  c.window_sizes = {6, 2};
  c.latent_mode = core::LatentMode::kSpatioTemporal;
  Rng rng(2);
  core::StwaModel model(c, &rng);
  Tensor x = Tensor::Randn({kBatch, kSensors, h, 1}, rng);
  ag::NoGradMode no_grad;  // inference complexity, not training
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x, /*training=*/false));
  }
  state.SetComplexityN(h);
}
BENCHMARK(BM_WindowAttention)
    ->Arg(12)->Arg(24)->Arg(48)->Arg(96)->Arg(192)
    ->Complexity();

}  // namespace
}  // namespace stwa

int main(int argc, char** argv) {
  stwa::bench::ReportRuntime();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
