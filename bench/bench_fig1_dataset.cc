// Reproduces Figure 1: example sensors and their time series. Exports one
// week of flow for four sensors (two on one road, two on another) to CSV
// and prints the statistics the figure's argument rests on: same-road
// sensors correlate strongly, cross-road sensors differ (one road has an
// evening peak, the other decays in the afternoon), and weekday profiles
// differ from weekend profiles.

#include <cmath>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "data/traffic_generator.h"

namespace stwa {
namespace bench {
namespace {

double Correlation(const Tensor& v, int64_t a, int64_t b, int64_t steps) {
  double ma = 0.0;
  double mb = 0.0;
  for (int64_t t = 0; t < steps; ++t) {
    ma += v({a, t, 0});
    mb += v({b, t, 0});
  }
  ma /= steps;
  mb /= steps;
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (int64_t t = 0; t < steps; ++t) {
    const double xa = v({a, t, 0}) - ma;
    const double xb = v({b, t, 0}) - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  return num / std::sqrt(da * db + 1e-12);
}

void Run() {
  ReportRuntime();
  data::GeneratorOptions o;
  o.name = "fig1";
  o.num_roads = 2;
  o.sensors_per_road = 2;
  o.num_days = 7;  // one week, as in the figure
  o.steps_per_day = 288;
  o.seed = 1001;
  data::TrafficDataset d = data::GenerateTraffic(o);
  const int64_t steps = d.num_steps();

  // Export the four series for plotting.
  const std::string path = BenchOutPath("fig1_sensors.csv");
  std::ofstream out(path);
  out << "step,sensor1,sensor2,sensor3,sensor4\n";
  for (int64_t t = 0; t < steps; ++t) {
    out << t;
    for (int64_t i = 0; i < 4; ++i) out << "," << d.values({i, t, 0});
    out << "\n";
  }

  train::TablePrinter table(
      "Figure 1: Four sensors, one week of traffic flow (sensors 1-2: "
      "road A; sensors 3-4: road B)");
  table.SetHeader({"Pair", "Correlation"});
  table.AddRow({"sensor1-sensor2 (same road)",
                FormatFloat(Correlation(d.values, 0, 1, steps), 3)});
  table.AddRow({"sensor3-sensor4 (same road)",
                FormatFloat(Correlation(d.values, 2, 3, steps), 3)});
  table.AddRow({"sensor1-sensor3 (cross road)",
                FormatFloat(Correlation(d.values, 0, 2, steps), 3)});
  table.AddRow({"sensor2-sensor4 (cross road)",
                FormatFloat(Correlation(d.values, 1, 3, steps), 3)});
  table.Print();

  // Weekday vs weekend profile distance per sensor.
  train::TablePrinter regime("Figure 1 (cont.): weekday vs weekend mean "
                             "absolute profile difference");
  regime.SetHeader({"Sensor", "|Tue - Wed|", "|Tue - Sat|"});
  const int64_t spd = d.steps_per_day;
  for (int64_t i = 0; i < 4; ++i) {
    double wd = 0.0;
    double we = 0.0;
    for (int64_t s = 0; s < spd; ++s) {
      wd += std::fabs(d.values({i, spd + s, 0}) -
                      d.values({i, 2 * spd + s, 0}));
      we += std::fabs(d.values({i, spd + s, 0}) -
                      d.values({i, 5 * spd + s, 0}));
    }
    regime.AddRow({"sensor" + std::to_string(i + 1),
                   FormatFloat(wd / spd, 1), FormatFloat(we / spd, 1)});
  }
  regime.Print();
  std::cout << "\nSeries exported to " << path
            << ". Expected shape (paper Fig. 1): same-road correlations "
               "well above cross-road ones; weekend profiles far from "
               "weekday profiles.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
