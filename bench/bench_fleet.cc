// Fleet serving load generator: two city profiles served concurrently
// from one FleetNode, >= 100k warm sensor streams (tiles x sensors), a
// hot checkpoint reload of cityA mid-run, an over-quota tenant driven
// through the fleet line protocol, and a deliberate overload phase
// against a tiny-deadline profile. Every completed forecast is memcmp'd
// against the offline InferenceSession answer for the same window — the
// shard/queue/reload machinery must never change the bytes — and a
// standalone serve::Server over the same checkpoint must agree too.
// Writes bench_out/BENCH_fleet.json with p50/p95/p99, per-shard
// throughput, reload timings, and drop/throttle/shed counts. Exit code 1
// on any bit mismatch, any dropped in-flight request around the reload,
// or a throttle phase that never throttles.
//
// STWA_BENCH_SMOKE=1 shrinks tiles and request counts to a seconds-long
// CI run that still produces the same JSON (the 100k-stream floor is only
// enforced at full scale).

#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/scaler.h"
#include "data/traffic_generator.h"
#include "fleet/protocol.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "serve/server.h"
#include "serve/stream_cache.h"
#include "serve/stream_state.h"
#include "tensor/ops.h"

namespace stwa {
namespace bench {
namespace {

/// Distinct warm-up window patterns per profile; tile t carries pattern
/// t % kPatterns, so responses are verifiable without per-tile storage.
constexpr int64_t kPatterns = 4;

struct CitySpec {
  std::string name;
  int num_roads = 0;
  int sensors_per_road = 0;
  uint64_t seed = 0;
  int64_t tiles = 0;
  int64_t shards = 0;
  int64_t requests = 0;
};

struct CityData {
  data::TrafficDataset dataset;
  std::string ckpt;
  /// Pattern windows [N, H, F] and their offline forecasts.
  std::vector<Tensor> windows;
  std::vector<Tensor> expected;
};

struct LoadResult {
  int64_t requests = 0;
  int64_t mismatches = 0;
  /// Responses that were shed or errored (must stay 0: deadlines are
  /// generous and the reload drains instead of dropping).
  int64_t dropped = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double mean_batch = 0.0;
  std::vector<double> per_shard_rps;
};

/// Random-init frozen checkpoint for one city (the bench measures fleet
/// mechanics; bit checks are equally strict for any weights).
CityData MakeCity(const CitySpec& spec,
                  const baselines::ModelSettings& settings) {
  data::GeneratorOptions gen;
  gen.name = spec.name;
  gen.num_roads = spec.num_roads;
  gen.sensors_per_road = spec.sensors_per_road;
  gen.num_days = 2;
  gen.steps_per_day = 96;
  gen.seed = spec.seed;
  CityData city{data::GenerateTraffic(gen), "", {}, {}};

  auto model = baselines::MakeModel("ST-WA", city.dataset, settings);
  data::StandardScaler scaler;
  scaler.Fit(city.dataset.values, city.dataset.num_steps() * 6 / 10);
  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = settings;
  info.num_sensors = city.dataset.num_sensors();
  info.num_features = city.dataset.num_features();
  info.scaler_mean = scaler.mean();
  info.scaler_std = scaler.stddev();
  info.ckpt_version = 1;
  city.ckpt = BenchOutPath("fleet_" + spec.name + ".bin");
  serve::SaveServingCheckpoint(*model, info, city.ckpt);

  for (int64_t p = 0; p < kPatterns; ++p) {
    const int64_t anchor =
        (p * 29 + 3) % (city.dataset.num_steps() - settings.history);
    city.windows.push_back(
        ops::Slice(city.dataset.values, 1, anchor, settings.history));
  }
  auto offline = serve::InferenceSession::Open(city.ckpt);
  for (const Tensor& w : city.windows) {
    city.expected.push_back(offline->Forecast(w));
  }
  return city;
}

/// Pushes every tile's pattern window into the profile's stream rings.
void WarmTiles(fleet::ModelProfile& profile, const CityData& city) {
  const int64_t n = profile.num_sensors();
  const int64_t h = profile.history();
  const int64_t f = profile.features();
  // Per-pattern, per-step observation rows ([N, F] flattened) extracted
  // from the [N, H, F] pattern windows once, outside the push loop.
  std::vector<std::vector<std::vector<float>>> steps(
      static_cast<size_t>(kPatterns));
  for (int64_t p = 0; p < kPatterns; ++p) {
    const float* w = city.windows[static_cast<size_t>(p)].data();
    steps[static_cast<size_t>(p)].resize(static_cast<size_t>(h));
    for (int64_t s = 0; s < h; ++s) {
      std::vector<float>& row = steps[static_cast<size_t>(p)][
          static_cast<size_t>(s)];
      row.resize(static_cast<size_t>(n * f));
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < f; ++j) {
          row[static_cast<size_t>(i * f + j)] =
              w[i * h * f + s * f + j];
        }
      }
    }
  }
  for (int64_t t = 0; t < profile.router().tiles(); ++t) {
    const auto& pattern = steps[static_cast<size_t>(t % kPatterns)];
    for (int64_t s = 0; s < h; ++s) {
      profile.PushTile(t, pattern[static_cast<size_t>(s)]);
    }
  }
}

/// Submits `requests` forecasts across all tiles (striding so every shard
/// gets traffic), optionally signalling `halfway` after half of them are
/// in flight (the reload hook), then verifies every response.
LoadResult RunLoad(fleet::ModelProfile& profile, const CityData& city,
                   int64_t requests, std::promise<void>* halfway) {
  LoadResult result;
  result.requests = requests;
  const int64_t tiles = profile.router().tiles();
  std::vector<std::pair<int64_t, std::future<serve::Response>>> futures;
  futures.reserve(static_cast<size_t>(requests));
  Stopwatch watch;
  for (int64_t i = 0; i < requests; ++i) {
    const int64_t tile = (i * 131) % tiles;
    futures.emplace_back(tile, profile.ForecastTile(tile));
    if (halfway != nullptr && i == requests / 2) {
      halfway->set_value();
      halfway = nullptr;
    }
  }
  if (halfway != nullptr) halfway->set_value();
  for (auto& [tile, future] : futures) {
    serve::Response resp = future.get();
    if (!resp.ok || resp.degraded) {
      ++result.dropped;
      continue;
    }
    const Tensor& ref = city.expected[static_cast<size_t>(tile % kPatterns)];
    if (std::memcmp(resp.forecast.data(), ref.data(),
                    sizeof(float) * static_cast<size_t>(ref.size())) != 0) {
      ++result.mismatches;
    }
  }
  result.seconds = watch.ElapsedSeconds();
  result.rps = static_cast<double>(requests) / result.seconds;
  const serve::ServerStats stats = profile.Stats();
  result.p50 = stats.latency.p50();
  result.p95 = stats.latency.p95();
  result.p99 = stats.latency.p99();
  result.mean_batch = stats.mean_batch;
  for (const serve::ServerStats& shard : profile.ShardStats()) {
    result.per_shard_rps.push_back(static_cast<double>(shard.completed) /
                                   result.seconds);
  }
  return result;
}

void Run() {
  SetRunCheckpoint("cityA+cityB", 1);
  ReportRuntime();
  const bool smoke = GetEnvIntOr("STWA_BENCH_SMOKE", 0) != 0;

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  settings.seed = 3;

  // cityA: 16 sensors x 4096 tiles = 65536 streams; cityB: 12 x 3072 =
  // 36864. Together 102400 >= the 100k floor (smoke shrinks tiles only).
  CitySpec spec_a{"cityA", 4, 4, 101, smoke ? 64 : 4096, 4,
                  smoke ? 96 : 4096};
  CitySpec spec_b{"cityB", 4, 3, 202, smoke ? 48 : 3072, 4,
                  smoke ? 64 : 3072};
  CityData city_a = MakeCity(spec_a, settings);
  CityData city_b = MakeCity(spec_b, settings);

  auto profile_config = [&](const CitySpec& spec, const CityData& city) {
    fleet::FleetProfileConfig cfg;
    cfg.name = spec.name;
    cfg.checkpoint = city.ckpt;
    cfg.tiles = spec.tiles;
    cfg.shards = spec.shards;
    cfg.workers = 2;
    cfg.max_batch = 8;
    cfg.max_delay_us = 500;
    cfg.capacity = spec.requests + 16;
    cfg.deadline_us = 300'000'000;  // load phase must never deadline-shed
    return cfg;
  };
  fleet::FleetConfig config;
  config.profiles.push_back(profile_config(spec_a, city_a));
  config.profiles.push_back(profile_config(spec_b, city_b));
  config.quotas.emplace_back("capped", fleet::TenantQuota{50.0, 10.0});

  Stopwatch startup;
  fleet::FleetNode node(config);
  fleet::ModelProfile& prof_a = node.registry().Get("cityA");
  fleet::ModelProfile& prof_b = node.registry().Get("cityB");
  const double startup_s = startup.ElapsedSeconds();
  const int64_t total_streams =
      prof_a.router().global_sensors() + prof_b.router().global_sensors();
  std::cout << "fleet node: 2 profiles, " << total_streams
            << " sensor streams ("
            << prof_a.router().tiles() << "x" << prof_a.num_sensors()
            << " + " << prof_b.router().tiles() << "x"
            << prof_b.num_sensors() << "), loaded in "
            << FormatFloat(startup_s, 2) << "s\n";

  Stopwatch warm;
  WarmTiles(prof_a, city_a);
  WarmTiles(prof_b, city_b);
  std::cout << "warmed " << prof_a.router().tiles() + prof_b.router().tiles()
            << " tiles in " << FormatFloat(warm.ElapsedSeconds(), 2)
            << "s\n";

  // Concurrent load on both profiles; cityA is hot-reloaded (same file,
  // so post-swap forecasts must be byte-identical) once half its requests
  // are in flight — the in-flight half drains on the old generation.
  LoadResult result_a, result_b;
  std::promise<void> halfway;
  fleet::ReloadResult reload;
  std::thread load_a([&] {
    result_a = RunLoad(prof_a, city_a, spec_a.requests, &halfway);
  });
  std::thread load_b([&] {
    result_b = RunLoad(prof_b, city_b, spec_b.requests, nullptr);
  });
  halfway.get_future().wait();
  reload = prof_a.Reload(city_a.ckpt);
  load_a.join();
  load_b.join();

  auto print_load = [](const std::string& name, const LoadResult& r) {
    std::cout << "  " << name << ": " << r.requests << " requests, "
              << FormatFloat(r.rps, 1) << " req/s, mean batch "
              << FormatFloat(r.mean_batch, 2) << ", p50 "
              << FormatFloat(r.p50 / 1000.0, 2) << "ms p95 "
              << FormatFloat(r.p95 / 1000.0, 2) << "ms p99 "
              << FormatFloat(r.p99 / 1000.0, 2) << "ms, mismatches "
              << r.mismatches << ", dropped " << r.dropped << "\n";
  };
  std::cout << "fleet load (reload of cityA mid-run):\n";
  print_load("cityA", result_a);
  print_load("cityB", result_b);
  std::cout << "  reload: gen=" << reload.version << " prepare "
            << FormatFloat(reload.prepare_us / 1000.0, 1) << "ms, swap stall "
            << FormatFloat(reload.swap_us, 1) << "us, drain "
            << FormatFloat(reload.drain_us / 1000.0, 1) << "ms\n";

  // Standalone serve::Server over the cityA checkpoint must produce the
  // same bytes the fleet shards did (both are checked against the same
  // offline reference, so compare directly to it).
  int64_t standalone_mismatches = 0;
  {
    serve::ServerOptions opts;
    opts.batching.max_batch = 8;
    opts.default_deadline = std::chrono::seconds(300);
    serve::Server standalone(city_a.ckpt, opts);
    for (int64_t p = 0; p < kPatterns; ++p) {
      serve::Response resp =
          standalone.Submit(city_a.windows[static_cast<size_t>(p)]).get();
      const Tensor& ref = city_a.expected[static_cast<size_t>(p)];
      if (!resp.ok ||
          std::memcmp(resp.forecast.data(), ref.data(),
                      sizeof(float) * static_cast<size_t>(ref.size())) !=
              0) {
        ++standalone_mismatches;
      }
    }
  }
  std::cout << "standalone server vs fleet reference: " << kPatterns
            << " windows, " << standalone_mismatches << " mismatches\n";

  // Over-quota tenant through the fleet line protocol: burst 10, 50/s.
  const int64_t throttle_requests = smoke ? 60 : 200;
  int64_t throttled = 0, throttle_ok = 0;
  {
    fleet::FleetLineSession session(node, "capped");
    bool quit = false;
    for (int64_t i = 0; i < throttle_requests; ++i) {
      auto resp = session.Handle(
          "cityA forecast " + std::to_string(i % prof_a.router().tiles()),
          &quit);
      if (resp && resp->rfind("throttled", 0) == 0) {
        ++throttled;
      } else if (resp && resp->rfind("forecast ok=1", 0) == 0) {
        ++throttle_ok;
      }
    }
  }
  std::cout << "over-quota tenant: " << throttle_requests << " requests, "
            << throttle_ok << " served, " << throttled << " throttled\n";

  // Overload shedding: a tiny-deadline, tiny-capacity profile must shed
  // (degraded responses), not crash or hang — the layer below admission.
  int64_t shed_submitted = smoke ? 32 : 128;
  int64_t shed_count = 0;
  {
    fleet::FleetProfileConfig cfg;
    cfg.name = "cityB-overload";
    cfg.checkpoint = city_b.ckpt;
    cfg.tiles = 8;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.capacity = 8;
    cfg.deadline_us = 1;
    fleet::ModelProfile overload(cfg);
    WarmTiles(overload, city_b);
    std::vector<std::future<serve::Response>> futures;
    for (int64_t i = 0; i < shed_submitted; ++i) {
      futures.push_back(overload.ForecastTile(i % cfg.tiles));
    }
    for (auto& f : futures) {
      if (f.get().degraded) ++shed_count;
    }
  }
  std::cout << "overload profile: " << shed_submitted << " submitted, "
            << shed_count << " shed\n";

  // Streaming phase: tiles advance one observation at a time (the fleet's
  // natural traffic shape) against dedicated cityB profiles with the
  // stream cache on and off. Every response is memcmp'd against the
  // offline session answer for a mirrored window.
  const int64_t stream_tiles = 4;
  const int64_t stream_obs = smoke ? 32 : 96;
  const int64_t stream_reads = 3;
  struct StreamPhase {
    int64_t forecasts = 0;
    double cold_rps = 0.0, warm_rps = 0.0, speedup = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    int64_t output_hits = 0, shift_hits = 0, misses = 0;
    int64_t stale = 0, bypass = 0, mismatches = 0;
  } stream_phase;
  {
    auto offline = serve::InferenceSession::Open(city_b.ckpt);
    const int64_t n = city_b.dataset.num_sensors();
    const int64_t f = city_b.dataset.num_features();
    const int64_t h = settings.history;
    auto drive = [&](bool cache_on, double* rps, serve::ServerStats* stats) {
      const bool saved = serve::StreamCacheEnabled();
      serve::SetStreamCacheMode(cache_on);
      fleet::FleetProfileConfig cfg;
      cfg.name = "cityB-stream";
      cfg.checkpoint = city_b.ckpt;
      cfg.tiles = stream_tiles;
      cfg.shards = 2;
      cfg.workers = 1;
      cfg.max_batch = 1;
      cfg.capacity = 1 << 12;
      cfg.deadline_us = 300'000'000;
      int64_t mismatches = 0;
      {
        fleet::ModelProfile profile(cfg);
        std::vector<serve::StreamState> mirrors(
            static_cast<size_t>(stream_tiles),
            serve::StreamState(n, h, f));
        std::vector<float> row(static_cast<size_t>(n * f));
        Stopwatch watch;
        int64_t served = 0;
        for (int64_t t = 0; t < stream_obs; ++t) {
          for (int64_t tile = 0; tile < stream_tiles; ++tile) {
            const float* v = city_b.dataset.values.data();
            const int64_t steps = city_b.dataset.num_steps();
            const int64_t at = (t + tile * 17) % steps;
            for (int64_t i = 0; i < n; ++i) {
              for (int64_t j = 0; j < f; ++j) {
                row[static_cast<size_t>(i * f + j)] =
                    v[i * steps * f + at * f + j];
              }
            }
            profile.PushTile(tile, row);
            mirrors[static_cast<size_t>(tile)].Push(row);
            if (!mirrors[static_cast<size_t>(tile)].ready()) continue;
            const Tensor ref = offline->Forecast(
                mirrors[static_cast<size_t>(tile)].Window().Reshape(
                    {n, h, f}));
            for (int64_t r = 0; r < stream_reads; ++r) {
              serve::Response resp = profile.ForecastTile(tile).get();
              ++served;
              if (!resp.ok ||
                  std::memcmp(resp.forecast.data(), ref.data(),
                              sizeof(float) *
                                  static_cast<size_t>(ref.size())) != 0) {
                ++mismatches;
              }
            }
          }
        }
        const double seconds = watch.ElapsedSeconds();
        *rps = static_cast<double>(served) / seconds;
        stream_phase.forecasts = served;
        *stats = profile.Stats();
      }
      serve::SetStreamCacheMode(saved);
      return mismatches;
    };
    serve::ServerStats cold_stats, warm_stats;
    stream_phase.mismatches +=
        drive(false, &stream_phase.cold_rps, &cold_stats);
    stream_phase.mismatches +=
        drive(true, &stream_phase.warm_rps, &warm_stats);
    stream_phase.speedup = stream_phase.warm_rps / stream_phase.cold_rps;
    stream_phase.p50 = warm_stats.latency.p50();
    stream_phase.p95 = warm_stats.latency.p95();
    stream_phase.p99 = warm_stats.latency.p99();
    stream_phase.output_hits = warm_stats.stream_cache.output_hits;
    stream_phase.shift_hits = warm_stats.stream_cache.shift_hits;
    stream_phase.misses = warm_stats.stream_cache.misses;
    stream_phase.stale = warm_stats.stream_cache.stale_rejected;
    stream_phase.bypass = warm_stats.stream_cache.bypass;
  }
  std::cout << "streaming tiles (cityB, reads/obs=" << stream_reads
            << "): cold " << FormatFloat(stream_phase.cold_rps, 1)
            << " -> warm " << FormatFloat(stream_phase.warm_rps, 1)
            << " req/s (" << FormatFloat(stream_phase.speedup, 2)
            << "x), hits " << stream_phase.output_hits << " output + "
            << stream_phase.shift_hits << " shift, misses "
            << stream_phase.misses << ", stale " << stream_phase.stale
            << ", mismatches " << stream_phase.mismatches << "\n";

  const fleet::FleetNodeStats node_stats = node.Stats();
  const std::string path = BenchOutPath("BENCH_fleet.json");
  {
    std::ofstream out(path);
    out << "{\n  \"precision\": \"" << RunPrecisionName()
        << "\",\n  \"profile\": \"" << RunProfileName()
        << "\",\n  \"ckpt_version\": " << RunCheckpointVersion()
        << ",\n  \"smoke\": " << (smoke ? "true" : "false")
        << ",\n  \"total_streams\": " << total_streams
        << ",\n  \"startup_seconds\": " << startup_s
        << ",\n  \"profiles\": [\n";
    const std::vector<std::pair<const CitySpec*, const LoadResult*>> rows =
        {{&spec_a, &result_a}, {&spec_b, &result_b}};
    for (size_t i = 0; i < rows.size(); ++i) {
      const CitySpec& s = *rows[i].first;
      const LoadResult& r = *rows[i].second;
      out << "    {\"name\": \"" << s.name << "\", \"tiles\": " << s.tiles
          << ", \"shards\": " << s.shards << ", \"streams\": "
          << s.tiles * (i == 0 ? prof_a.num_sensors()
                               : prof_b.num_sensors())
          << ", \"requests\": " << r.requests
          << ", \"seconds\": " << r.seconds
          << ", \"requests_per_second\": " << r.rps
          << ", \"mean_batch\": " << r.mean_batch
          << ", \"p50_us\": " << r.p50 << ", \"p95_us\": " << r.p95
          << ", \"p99_us\": " << r.p99
          << ", \"bit_mismatches\": " << r.mismatches
          << ", \"dropped\": " << r.dropped << ", \"per_shard_rps\": [";
      for (size_t k = 0; k < r.per_shard_rps.size(); ++k) {
        out << (k > 0 ? ", " : "") << r.per_shard_rps[k];
      }
      out << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"reload\": {\"profile\": \"cityA\", \"generation\": "
        << reload.version << ", \"ckpt_version\": " << reload.ckpt_version
        << ", \"prepare_us\": " << reload.prepare_us
        << ", \"swap_stall_us\": " << reload.swap_us
        << ", \"drain_us\": " << reload.drain_us
        << "},\n  \"standalone_mismatches\": " << standalone_mismatches
        << ",\n  \"throttle\": {\"tenant\": \"capped\", \"requests\": "
        << throttle_requests << ", \"served\": " << throttle_ok
        << ", \"throttled\": " << throttled
        << "},\n  \"overload\": {\"submitted\": " << shed_submitted
        << ", \"shed\": " << shed_count
        << "},\n  \"streaming\": {\"profile\": \"cityB-stream\", \"tiles\": "
        << stream_tiles << ", \"reads_per_obs\": " << stream_reads
        << ", \"forecasts\": " << stream_phase.forecasts
        << ", \"cold_rps\": " << stream_phase.cold_rps
        << ", \"warm_rps\": " << stream_phase.warm_rps
        << ", \"speedup\": " << stream_phase.speedup
        << ", \"p50_us\": " << stream_phase.p50
        << ", \"p95_us\": " << stream_phase.p95
        << ", \"p99_us\": " << stream_phase.p99
        << ", \"output_hits\": " << stream_phase.output_hits
        << ", \"shift_hits\": " << stream_phase.shift_hits
        << ", \"misses\": " << stream_phase.misses
        << ", \"stale_rejected\": " << stream_phase.stale
        << ", \"bypass\": " << stream_phase.bypass
        << ", \"bit_mismatches\": " << stream_phase.mismatches
        << "},\n  \"node\": {\"admitted\": " << node_stats.admitted
        << ", \"throttled\": " << node_stats.throttled
        << ", \"protocol_errors\": " << node_stats.protocol_errors
        << "}\n}\n";
  }
  std::cout << "wrote " << path << "\n";

  bool failed = false;
  if (result_a.mismatches + result_b.mismatches > 0) {
    std::cerr << "ERROR: fleet forecasts diverged from the offline "
                 "reference (reload or sharding changed bytes)\n";
    failed = true;
  }
  if (result_a.dropped + result_b.dropped > 0) {
    std::cerr << "ERROR: in-flight requests were dropped (reload must "
                 "drain, not shed)\n";
    failed = true;
  }
  if (standalone_mismatches > 0) {
    std::cerr << "ERROR: standalone serve::Server diverged from the fleet "
                 "profiles\n";
    failed = true;
  }
  if (throttled == 0) {
    std::cerr << "ERROR: over-quota tenant was never throttled\n";
    failed = true;
  }
  if (shed_count == 0) {
    std::cerr << "ERROR: overload profile never shed\n";
    failed = true;
  }
  if (stream_phase.mismatches > 0) {
    std::cerr << "ERROR: streaming tiles served bytes that diverged from "
                 "the offline session\n";
    failed = true;
  }
  if (stream_phase.stale > 0) {
    std::cerr << "ERROR: streaming tiles served stale cache entries\n";
    failed = true;
  }
  if (serve::StreamCacheEnabled() &&
      stream_phase.output_hits + stream_phase.shift_hits <= 0) {
    std::cerr << "ERROR: streaming tiles never hit the stream cache\n";
    failed = true;
  }
  if (!smoke && total_streams < 100'000) {
    std::cerr << "ERROR: full-scale run serves " << total_streams
              << " streams (< 100k floor)\n";
    failed = true;
  }
  if (failed) std::exit(1);
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
