// Reproduces Table VIII: ablation study on PEMS04 — SA (canonical
// self-attention), WA-1 (single window attention layer), WA (stacked),
// S-WA (spatial-aware generation), ST-WA (full model) — with accuracy,
// training time (s/epoch), analytic memory estimate and parameter count.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/memory_model.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
  train::TrainConfig config = MakeTrainConfig(scale);

  train::TablePrinter table(
      "Table VIII: Ablation study on " + dataset.name +
      " (H=12, U=12; memory is the analytic activation estimate at paper "
      "scale)");
  table.SetHeader({"Variant", "MAE", "MAPE", "RMSE", "s/epoch",
                   "Mem(GB)", "#Param"});

  core::MemoryWorkload paper_scale;
  paper_scale.sensors = PaperSensorCount(PaperDataset::kPems04);
  paper_scale.history = 12;
  paper_scale.horizon = 12;

  const std::vector<std::string> variants = {"SA", "WA-1", "WA", "S-WA",
                                             "ST-WA"};
  for (const std::string& variant : variants) {
    train::TrainResult result =
        RunModel(variant, dataset, settings, config);
    double mem_gb = 0.0;
    if (variant == "SA") {
      mem_gb = core::CanonicalAttentionGb(paper_scale);
    } else if (variant == "WA-1") {
      mem_gb = core::WindowAttentionGb(paper_scale, {3}, settings.proxies);
    } else {
      std::vector<int64_t> ws(settings.window_sizes.begin(),
                              settings.window_sizes.end());
      mem_gb = core::WindowAttentionGb(paper_scale, ws, settings.proxies);
      if (variant == "S-WA" || variant == "ST-WA") {
        // Parameter generation adds decoder activations (small).
        mem_gb *= 1.8;
      }
    }
    std::vector<std::string> row = {variant};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    row.push_back(FormatFloat(result.seconds_per_epoch, 2));
    row.push_back(FormatFloat(mem_gb, 2));
    row.push_back(std::to_string(result.param_count));
    table.AddRow(row);
  }
  table.Print();
  std::cout << "\nExpected shape (paper Table VIII): SA is the least "
               "accurate and most expensive; WA-1 is cheapest; WA improves "
               "on WA-1; S-WA and ST-WA further improve accuracy at "
               "moderate extra cost, with ST-WA best.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
