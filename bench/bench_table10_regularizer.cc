// Reproduces Table X: effect of the KL regularization term on PEMS04.
// ST-WA trained with and without the KL term of Eq. 20. Expected shape:
// removing the regularizer loses accuracy.

#include <iostream>

#include "bench_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  train::TrainConfig config = MakeTrainConfig(scale);

  train::TablePrinter table("Table X: Effect of the KL regularizer, " +
                            dataset.name + " (H=12, U=12)");
  table.SetHeader({"Variant", "MAE", "MAPE", "RMSE"});
  for (bool with_kl : {true, false}) {
    baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
    settings.kl_weight = with_kl ? 1e-3f : 0.0f;
    train::TrainResult result =
        RunModel("ST-WA", dataset, settings, config);
    std::vector<std::string> row = {with_kl ? "With" : "Without"};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    table.AddRow(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table X): the regularized model is "
               "more accurate on all three metrics.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
