// Reproduces Table V: impact of the historical window H in {12, 36, 120}
// on PEMS04 (U=12) for the top-4 models. Expected shape: ST-WA improves
// (or holds) with longer H, while the baselines plateau or degrade.

#include <iostream>

#include "bench_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  train::TrainConfig config = MakeTrainConfig(scale);

  const std::vector<std::string> models = {"STFGNN", "EnhanceNet", "AGCRN",
                                           "ST-WA"};
  const std::vector<int64_t> histories = {12, 36, 120};

  train::TablePrinter table("Table V: Impact of H on " + dataset.name +
                            " (U=12)");
  table.SetHeader({"H", "Model", "MAE", "MAPE", "RMSE"});
  for (int64_t h : histories) {
    baselines::ModelSettings settings = MakeSettings(scale, h, 12);
    train::TrainConfig h_config = config;
    if (h >= 72) {
      // Long histories multiply per-batch cost; subsample anchors.
      h_config.stride *= 2;
      h_config.eval_stride *= 2;
      h_config.epochs = std::min(h_config.epochs, 25);
    }
    for (const std::string& name : models) {
      train::TrainResult result =
          RunModel(name, dataset, settings, h_config);
      std::vector<std::string> row = {std::to_string(h), name};
      for (const std::string& cell : MetricCells(result.test)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      std::cout << "." << std::flush;
    }
    table.AddSeparator();
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table V): ST-WA benefits from "
               "longer history (H=36, H=120 at least as good as H=12); "
               "baselines do not improve and sometimes degrade.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
