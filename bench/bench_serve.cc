// Serving load generator: measures micro-batching throughput and latency
// against the batch-size-1 baseline on one frozen ST-WA checkpoint, and
// verifies that every served forecast is bit-identical to the offline
// InferenceSession answer for the same window (batching must never change
// the bytes). Writes bench_out/BENCH_serve.json with throughput and
// p50/p95/p99 latency per mode.
//
// STWA_BENCH_SMOKE=1 shrinks the request count to a seconds-long CI run
// that still produces the same JSON.

#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/traffic_generator.h"
#include "ir/plan.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace stwa {
namespace bench {
namespace {

struct ModeResult {
  std::string name;
  int64_t max_batch = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double mean_batch = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  int64_t mismatches = 0;
};

void Run() {
  ReportRuntime();
  const bool smoke = GetEnvIntOr("STWA_BENCH_SMOKE", 0) != 0;
  const int64_t num_requests = smoke ? 64 : 512;
  const int64_t distinct_windows = smoke ? 16 : 32;

  // A frozen ST-WA at quickstart-like scale. Weights are random-init:
  // the bench measures serving mechanics, and the bit-identity check is
  // equally strict for any weights.
  data::GeneratorOptions gen;
  gen.name = "serve-bench";
  gen.num_roads = 2;
  gen.sensors_per_road = 2;
  gen.num_days = 2;
  gen.steps_per_day = 96;
  gen.seed = 11;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  // Latency-bound serving scale: per-sample tensors are small, so the
  // fixed per-forward cost (op dispatch, graph walk, allocations) is the
  // dominant term that batching amortises.
  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  settings.seed = 3;
  auto model = baselines::MakeModel("ST-WA", dataset, settings);

  data::StandardScaler scaler;
  scaler.Fit(dataset.values, dataset.num_steps() * 6 / 10);
  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = settings;
  info.num_sensors = dataset.num_sensors();
  info.num_features = dataset.num_features();
  info.scaler_mean = scaler.mean();
  info.scaler_std = scaler.stddev();
  const std::string ckpt = BenchOutPath("serve_ckpt.bin");
  serve::SaveServingCheckpoint(*model, info, ckpt);

  // Distinct raw input windows sliced out of the generated series.
  std::vector<Tensor> windows;
  for (int64_t r = 0; r < distinct_windows; ++r) {
    const int64_t anchor = r * 7 % (dataset.num_steps() - settings.history);
    windows.push_back(
        ops::Slice(dataset.values, 1, anchor, settings.history));
  }

  // Offline reference: one session, batch of 1, no queueing.
  auto offline = serve::InferenceSession::Open(ckpt);
  std::vector<Tensor> expected;
  for (const Tensor& w : windows) expected.push_back(offline->Forecast(w));

  // Execution-plan A/B: the reference above ran under the ambient plan
  // mode (captured forward plans replayed per window shape). Re-forecast
  // every window with plans globally disabled — pure eager tracing — and
  // demand the same bytes. Replay must never change a served forecast.
  const bool plan_was_enabled = ir::PlanModeEnabled();
  int64_t plan_ab_mismatches = 0;
  {
    ir::SetPlanMode(!plan_was_enabled);
    auto flipped = serve::InferenceSession::Open(ckpt);
    for (size_t i = 0; i < windows.size(); ++i) {
      Tensor got = flipped->Forecast(windows[i]);
      if (std::memcmp(got.data(), expected[i].data(),
                      sizeof(float) * static_cast<size_t>(
                                          expected[i].size())) != 0) {
        ++plan_ab_mismatches;
      }
    }
    ir::SetPlanMode(plan_was_enabled);
  }
  std::cout << "plan on/off offline A/B: " << windows.size() << " windows, "
            << plan_ab_mismatches << " mismatches\n";

  // Fusion A/B: same drill for the plan-rewrite passes. A session opened
  // with fusion flipped must serve byte-identical forecasts — the fused
  // kernels reuse the unfused per-element paths, so any divergence is a
  // rewriter bug.
  const bool fuse_was_enabled = ir::FuseModeEnabled();
  int64_t fuse_ab_mismatches = 0;
  {
    ir::SetFuseMode(!fuse_was_enabled);
    auto flipped = serve::InferenceSession::Open(ckpt);
    for (size_t i = 0; i < windows.size(); ++i) {
      Tensor got = flipped->Forecast(windows[i]);
      if (std::memcmp(got.data(), expected[i].data(),
                      sizeof(float) * static_cast<size_t>(
                                          expected[i].size())) != 0) {
        ++fuse_ab_mismatches;
      }
    }
    ir::SetFuseMode(fuse_was_enabled);
  }
  std::cout << "fusion on/off offline A/B: " << windows.size()
            << " windows, " << fuse_ab_mismatches << " mismatches\n";

  auto run_mode = [&](const std::string& name, int64_t max_batch,
                      int64_t max_delay_us) {
    serve::ServerOptions opts;
    opts.workers = 1;
    opts.batching.max_batch = max_batch;
    opts.batching.max_delay = std::chrono::microseconds(max_delay_us);
    opts.batching.capacity = num_requests + 1;
    opts.default_deadline = std::chrono::seconds(300);
    serve::Server server(ckpt, opts);

    ModeResult result;
    result.name = name;
    result.max_batch = max_batch;
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<size_t>(num_requests));
    Stopwatch watch;
    for (int64_t i = 0; i < num_requests; ++i) {
      futures.push_back(server.Submit(windows[i % distinct_windows]));
    }
    for (int64_t i = 0; i < num_requests; ++i) {
      serve::Response resp = futures[static_cast<size_t>(i)].get();
      const Tensor& want = expected[i % distinct_windows];
      if (!resp.ok ||
          std::memcmp(resp.forecast.data(), want.data(),
                      sizeof(float) * static_cast<size_t>(want.size())) !=
              0) {
        ++result.mismatches;
      }
    }
    result.seconds = watch.ElapsedSeconds();
    result.rps = static_cast<double>(num_requests) / result.seconds;
    serve::ServerStats stats = server.Stats();
    result.mean_batch = stats.mean_batch;
    result.p50 = stats.latency.p50();
    result.p95 = stats.latency.p95();
    result.p99 = stats.latency.p99();
    return result;
  };

  std::vector<ModeResult> results;
  results.push_back(run_mode("batch1", 1, 0));
  results.push_back(run_mode("batch4", 4, 2000));
  results.push_back(run_mode("batch16", 16, 2000));

  const double speedup = results.back().rps / results.front().rps;
  std::cout << "\nserve load test: " << num_requests << " requests over "
            << distinct_windows << " windows, N=" << info.num_sensors
            << ", H=" << settings.history << " -> U=" << settings.horizon
            << "\n";
  for (const ModeResult& m : results) {
    std::cout << "  " << m.name << ": " << FormatFloat(m.rps, 1)
              << " req/s, mean batch " << FormatFloat(m.mean_batch, 2)
              << ", p50 " << FormatFloat(m.p50 / 1000.0, 2) << "ms p95 "
              << FormatFloat(m.p95 / 1000.0, 2) << "ms p99 "
              << FormatFloat(m.p99 / 1000.0, 2) << "ms, mismatches "
              << m.mismatches << "\n";
  }
  std::cout << "batched (16) vs batch-1 throughput: "
            << FormatFloat(speedup, 2) << "x\n";

  const std::string path = BenchOutPath("BENCH_serve.json");
  std::ofstream out(path);
  out << "{\n  \"num_requests\": " << num_requests
      << ",\n  \"distinct_windows\": " << distinct_windows
      << ",\n  \"num_sensors\": " << info.num_sensors
      << ",\n  \"history\": " << settings.history
      << ",\n  \"horizon\": " << settings.horizon
      << ",\n  \"batched_vs_batch1_speedup\": " << speedup
      << ",\n  \"plan_ab_mismatches\": " << plan_ab_mismatches
      << ",\n  \"fuse_ab_mismatches\": " << fuse_ab_mismatches
      << ",\n  \"modes\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& m = results[i];
    out << "    {\"mode\": \"" << m.name << "\", \"max_batch\": "
        << m.max_batch << ", \"seconds\": " << m.seconds
        << ", \"requests_per_second\": " << m.rps
        << ", \"mean_batch\": " << m.mean_batch << ", \"p50_us\": " << m.p50
        << ", \"p95_us\": " << m.p95 << ", \"p99_us\": " << m.p99
        << ", \"bit_mismatches\": " << m.mismatches << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
  if (results.front().mismatches + results.back().mismatches > 0) {
    std::cerr << "ERROR: served forecasts diverged from offline eval\n";
    std::exit(1);
  }
  if (plan_ab_mismatches > 0) {
    std::cerr << "ERROR: plan-replayed forecasts diverged from eager\n";
    std::exit(1);
  }
  if (fuse_ab_mismatches > 0) {
    std::cerr << "ERROR: fused-plan forecasts diverged from unfused\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
