// Serving load generator: measures micro-batching throughput and latency
// against the batch-size-1 baseline on one frozen ST-WA checkpoint, and
// verifies that every served forecast is bit-identical to the offline
// InferenceSession answer for the same window (batching must never change
// the bytes). Writes bench_out/BENCH_serve.json with throughput and
// p50/p95/p99 latency per mode.
//
// Three reduced-precision sections ride on top (DESIGN.md §4g):
//   * tier_throughput — batch-16 server throughput per weight tier
//     (fp32/bf16/int8) on a GEMM-heavier frozen ST-WA, with per-tier
//     served-vs-offline bit checks;
//   * tier_determinism — per tier, forecasts swept across {1,4} threads x
//     {single, batched} x {rewrites on, off} must reproduce the ambient
//     reference byte-for-byte (the intra-tier determinism contract);
//   * tier_accuracy — every registered Table IV model: MAE/RMSE vs ground
//     truth per tier and the relative delta vs fp32. The run fails if
//     int8 MAE drifts > 1% or bf16 > 0.1% relative, or any bit check
//     fires.
//
// STWA_BENCH_SMOKE=1 shrinks the request count and the accuracy model
// list to a seconds-long CI run that still produces the same JSON.

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/traffic_generator.h"
#include "ir/plan.h"
#include "metrics/metrics.h"
#include "runtime/parallel.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "serve/server.h"
#include "serve/stream_cache.h"
#include "serve/stream_state.h"
#include "simd/lowp.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"

namespace stwa {
namespace bench {
namespace {

struct ModeResult {
  std::string name;
  int64_t max_batch = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double mean_batch = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  int64_t mismatches = 0;
};

/// The serving tiers, fp32 first (index 0 is the accuracy reference).
constexpr std::array<simd::Precision, 3> kTiers = {
    simd::Precision::kFp32, simd::Precision::kBf16, simd::Precision::kInt8};

/// Relative MAE drift bound vs fp32, percent, per tier (fp32 trivially 0).
constexpr std::array<double, 3> kMaeDeltaBoundPct = {0.0, 0.1, 1.0};

struct TierDeterminism {
  std::string precision;
  int64_t checks = 0;
  int64_t mismatches = 0;
};

/// MAE/RMSE vs ground truth per tier for one registry model, plus the
/// relative drift vs the fp32 row.
struct TierAccuracy {
  std::string model;
  std::array<double, 3> mae = {0.0, 0.0, 0.0};
  std::array<double, 3> rmse = {0.0, 0.0, 0.0};
  std::array<double, 3> mae_delta_pct = {0.0, 0.0, 0.0};
  std::array<double, 3> rmse_delta_pct = {0.0, 0.0, 0.0};
};

/// One streaming workload arm: live streams advancing one observation at
/// a time, `reads_per_obs` forecasts per advance, cache-off vs cache-on.
struct StreamingArm {
  std::string name;
  std::string model;
  int64_t reads_per_obs = 1;
  int64_t forecasts = 0;
  double cold_rps = 0.0;
  double warm_rps = 0.0;
  double speedup = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // warm-run latency
  int64_t output_hits = 0, shift_hits = 0, cache_misses = 0;
  int64_t stale = 0, bypass = 0;
  /// Served-vs-offline byte mismatches, summed over cold + warm runs
  /// (the cache-on vs cache-off identity check).
  int64_t mismatches = 0;
  /// Pool counters across the warm timed loop: buffer requests and the
  /// subset that had to heap-allocate (steady state should recycle).
  uint64_t warm_pool_requests = 0;
  uint64_t warm_heap_allocs = 0;
};

void Run() {
  // All checkpoints this bench writes are first-generation serving
  // artifacts of the "serve-bench" profile.
  SetRunCheckpoint("serve-bench", 1);
  ReportRuntime();
  const bool smoke = GetEnvIntOr("STWA_BENCH_SMOKE", 0) != 0;
  const int64_t num_requests = smoke ? 64 : 512;
  const int64_t distinct_windows = smoke ? 16 : 32;

  // A frozen ST-WA at quickstart-like scale. Weights are random-init:
  // the bench measures serving mechanics, and the bit-identity check is
  // equally strict for any weights.
  data::GeneratorOptions gen;
  gen.name = "serve-bench";
  gen.num_roads = 2;
  gen.sensors_per_road = 2;
  gen.num_days = 2;
  gen.steps_per_day = 96;
  gen.seed = 11;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  // Latency-bound serving scale: per-sample tensors are small, so the
  // fixed per-forward cost (op dispatch, graph walk, allocations) is the
  // dominant term that batching amortises.
  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  settings.seed = 3;
  auto model = baselines::MakeModel("ST-WA", dataset, settings);

  data::StandardScaler scaler;
  scaler.Fit(dataset.values, dataset.num_steps() * 6 / 10);
  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = settings;
  info.num_sensors = dataset.num_sensors();
  info.num_features = dataset.num_features();
  info.scaler_mean = scaler.mean();
  info.scaler_std = scaler.stddev();
  const std::string ckpt = BenchOutPath("serve_ckpt.bin");
  serve::SaveServingCheckpoint(*model, info, ckpt);

  // Distinct raw input windows sliced out of the generated series.
  std::vector<Tensor> windows;
  for (int64_t r = 0; r < distinct_windows; ++r) {
    const int64_t anchor = r * 7 % (dataset.num_steps() - settings.history);
    windows.push_back(
        ops::Slice(dataset.values, 1, anchor, settings.history));
  }

  // Offline reference: one session, batch of 1, no queueing.
  auto offline = serve::InferenceSession::Open(ckpt);
  std::vector<Tensor> expected;
  for (const Tensor& w : windows) expected.push_back(offline->Forecast(w));

  // Execution-plan A/B: the reference above ran under the ambient plan
  // mode (captured forward plans replayed per window shape). Re-forecast
  // every window with plans globally disabled — pure eager tracing — and
  // demand the same bytes. Replay must never change a served forecast.
  const bool plan_was_enabled = ir::PlanModeEnabled();
  int64_t plan_ab_mismatches = 0;
  {
    ir::SetPlanMode(!plan_was_enabled);
    auto flipped = serve::InferenceSession::Open(ckpt);
    for (size_t i = 0; i < windows.size(); ++i) {
      Tensor got = flipped->Forecast(windows[i]);
      if (std::memcmp(got.data(), expected[i].data(),
                      sizeof(float) * static_cast<size_t>(
                                          expected[i].size())) != 0) {
        ++plan_ab_mismatches;
      }
    }
    ir::SetPlanMode(plan_was_enabled);
  }
  std::cout << "plan on/off offline A/B: " << windows.size() << " windows, "
            << plan_ab_mismatches << " mismatches\n";

  // Fusion A/B: same drill for the plan-rewrite passes. A session opened
  // with fusion flipped must serve byte-identical forecasts — the fused
  // kernels reuse the unfused per-element paths, so any divergence is a
  // rewriter bug.
  const bool fuse_was_enabled = ir::FuseModeEnabled();
  int64_t fuse_ab_mismatches = 0;
  {
    ir::SetFuseMode(!fuse_was_enabled);
    auto flipped = serve::InferenceSession::Open(ckpt);
    for (size_t i = 0; i < windows.size(); ++i) {
      Tensor got = flipped->Forecast(windows[i]);
      if (std::memcmp(got.data(), expected[i].data(),
                      sizeof(float) * static_cast<size_t>(
                                          expected[i].size())) != 0) {
        ++fuse_ab_mismatches;
      }
    }
    ir::SetFuseMode(fuse_was_enabled);
  }
  std::cout << "fusion on/off offline A/B: " << windows.size()
            << " windows, " << fuse_ab_mismatches << " mismatches\n";

  // One server load run: `requests` submissions over `wins`, every
  // response memcmp'd against `want` (the offline per-window reference for
  // the same session config).
  auto run_mode = [](const std::string& name, int64_t max_batch,
                     int64_t max_delay_us, const std::string& ckpt_path,
                     const std::vector<Tensor>& wins,
                     const std::vector<Tensor>& want, int64_t requests,
                     const serve::SessionConfig& session) {
    serve::ServerOptions opts;
    opts.workers = 1;
    opts.batching.max_batch = max_batch;
    opts.batching.max_delay = std::chrono::microseconds(max_delay_us);
    opts.batching.capacity = requests + 1;
    opts.default_deadline = std::chrono::seconds(300);
    opts.session = session;
    serve::Server server(ckpt_path, opts);

    const int64_t n_wins = static_cast<int64_t>(wins.size());
    ModeResult result;
    result.name = name;
    result.max_batch = max_batch;
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<size_t>(requests));
    Stopwatch watch;
    for (int64_t i = 0; i < requests; ++i) {
      futures.push_back(server.Submit(wins[i % n_wins]));
    }
    for (int64_t i = 0; i < requests; ++i) {
      serve::Response resp = futures[static_cast<size_t>(i)].get();
      const Tensor& ref = want[i % n_wins];
      if (!resp.ok ||
          std::memcmp(resp.forecast.data(), ref.data(),
                      sizeof(float) * static_cast<size_t>(ref.size())) !=
              0) {
        ++result.mismatches;
      }
    }
    result.seconds = watch.ElapsedSeconds();
    result.rps = static_cast<double>(requests) / result.seconds;
    serve::ServerStats stats = server.Stats();
    result.mean_batch = stats.mean_batch;
    result.p50 = stats.latency.p50();
    result.p95 = stats.latency.p95();
    result.p99 = stats.latency.p99();
    return result;
  };

  std::vector<ModeResult> results;
  results.push_back(run_mode("batch1", 1, 0, ckpt, windows, expected,
                             num_requests, serve::SessionConfig()));
  results.push_back(run_mode("batch4", 4, 2000, ckpt, windows, expected,
                             num_requests, serve::SessionConfig()));
  results.push_back(run_mode("batch16", 16, 2000, ckpt, windows, expected,
                             num_requests, serve::SessionConfig()));

  const double speedup = results.back().rps / results.front().rps;
  std::cout << "\nserve load test: " << num_requests << " requests over "
            << distinct_windows << " windows, N=" << info.num_sensors
            << ", H=" << settings.history << " -> U=" << settings.horizon
            << "\n";
  for (const ModeResult& m : results) {
    std::cout << "  " << m.name << ": " << FormatFloat(m.rps, 1)
              << " req/s, mean batch " << FormatFloat(m.mean_batch, 2)
              << ", p50 " << FormatFloat(m.p50 / 1000.0, 2) << "ms p95 "
              << FormatFloat(m.p95 / 1000.0, 2) << "ms p99 "
              << FormatFloat(m.p99 / 1000.0, 2) << "ms, mismatches "
              << m.mismatches << "\n";
  }
  std::cout << "batched (16) vs batch-1 throughput: "
            << FormatFloat(speedup, 2) << "x\n";

  // --- Reduced-precision tiers ------------------------------------------

  // GEMM-heavier frozen ST-WA: at d_model 32 / predictor hidden 256 the
  // projection and predictor GEMMs dominate the forward pass, so the
  // weight tier moves end-to-end throughput instead of vanishing into
  // dispatch overhead.
  baselines::ModelSettings heavy = settings;
  heavy.d_model = 32;
  heavy.predictor_hidden = 256;
  heavy.latent_dim = 8;
  heavy.seed = 5;
  auto heavy_model = baselines::MakeModel("ST-WA", dataset, heavy);
  serve::ServingInfo heavy_info = info;
  heavy_info.settings = heavy;
  const std::string heavy_ckpt = BenchOutPath("serve_ckpt_heavy.bin");
  serve::SaveServingCheckpoint(*heavy_model, heavy_info, heavy_ckpt);

  const int64_t tier_requests = smoke ? 48 : 256;
  const bool amb_fuse = ir::FuseModeEnabled();
  const bool amb_rp = ir::RegionParModeEnabled();
  std::vector<ModeResult> tier_modes;
  std::vector<TierDeterminism> tier_det;
  std::cout << "\ntier serving (d_model=" << heavy.d_model << ", hidden="
            << heavy.predictor_hidden << ", batch 16, " << tier_requests
            << " requests):\n";
  for (const simd::Precision tier : kTiers) {
    serve::SessionConfig cfg;
    cfg.precision = tier;

    // Ambient-mode offline reference for this tier: the byte pattern
    // every sweep combination below must reproduce.
    std::vector<Tensor> tier_expected;
    {
      auto session = serve::InferenceSession::Open(heavy_ckpt, cfg);
      for (const Tensor& w : windows) {
        tier_expected.push_back(session->Forecast(w));
      }
    }

    ModeResult m = run_mode(simd::PrecisionName(tier), 16, 2000, heavy_ckpt,
                            windows, tier_expected, tier_requests, cfg);
    tier_modes.push_back(m);
    std::cout << "  " << m.name << ": " << FormatFloat(m.rps, 1)
              << " req/s, mean batch " << FormatFloat(m.mean_batch, 2)
              << ", p50 " << FormatFloat(m.p50 / 1000.0, 2)
              << "ms, served-vs-offline mismatches " << m.mismatches << "\n";

    // Intra-tier determinism: {1,4} threads x {single, batched} x
    // {rewrites on, off} must all reproduce the reference bytes.
    const int64_t bs = 8;
    const int64_t sample =
        info.num_sensors * settings.history * info.num_features;
    Tensor batched = Tensor::Uninit(
        {bs, info.num_sensors, settings.history, info.num_features});
    for (int64_t i = 0; i < bs; ++i) {
      std::memcpy(batched.data() + i * sample,
                  windows[static_cast<size_t>(i % distinct_windows)].data(),
                  sizeof(float) * static_cast<size_t>(sample));
    }
    TierDeterminism det;
    det.precision = simd::PrecisionName(tier);
    for (const int threads : {1, 4}) {
      runtime::SetNumThreads(threads);
      for (const bool rewrites : {true, false}) {
        ir::SetFuseMode(rewrites);
        ir::SetRegionParMode(rewrites);
        auto s = serve::InferenceSession::Open(heavy_ckpt, cfg);
        for (size_t i = 0; i < windows.size(); ++i) {
          Tensor got = s->Forecast(windows[i]);
          ++det.checks;
          if (std::memcmp(got.data(), tier_expected[i].data(),
                          sizeof(float) * static_cast<size_t>(
                                              tier_expected[i].size())) !=
              0) {
            ++det.mismatches;
          }
        }
        Tensor bout = s->Forecast(batched);
        for (int64_t i = 0; i < bs; ++i) {
          const Tensor& ref =
              tier_expected[static_cast<size_t>(i % distinct_windows)];
          ++det.checks;
          if (std::memcmp(bout.data() + i * ref.size(), ref.data(),
                          sizeof(float) * static_cast<size_t>(ref.size())) !=
              0) {
            ++det.mismatches;
          }
        }
      }
    }
    ir::SetFuseMode(amb_fuse);
    ir::SetRegionParMode(amb_rp);
    runtime::SetNumThreads(0);
    tier_det.push_back(det);
    std::cout << "  " << det.precision
              << " determinism sweep ({1,4}t x {1," << bs
              << "}batch x rewrites on/off): " << det.checks << " checks, "
              << det.mismatches << " bit mismatches\n";
  }
  const double bf16_vs_fp32 =
      tier_modes[0].rps > 0 ? tier_modes[1].rps / tier_modes[0].rps : 0.0;
  const double int8_vs_fp32 =
      tier_modes[0].rps > 0 ? tier_modes[2].rps / tier_modes[0].rps : 0.0;
  std::cout << "  batch-16 throughput vs fp32: bf16 "
            << FormatFloat(bf16_vs_fp32, 2) << "x, int8 "
            << FormatFloat(int8_vs_fp32, 2) << "x\n";

  // Accuracy across the model registry: random-init weights (the drift
  // under quantisation is a property of the numerics, not of training),
  // forecasts scored against the series' true continuation.
  std::vector<std::string> acc_models = baselines::AllBaselineNames();
  acc_models.insert(acc_models.begin(), "ST-WA");
  if (smoke) acc_models = {"ST-WA", "STGCN", "AGCRN"};
  std::vector<std::pair<Tensor, Tensor>> eval_pairs;
  const int64_t max_anchor =
      dataset.num_steps() - settings.history - settings.horizon;
  const int64_t n_eval = smoke ? 6 : 12;
  for (int64_t e = 0; e < n_eval; ++e) {
    const int64_t anchor = e * 13 % max_anchor;
    eval_pairs.emplace_back(
        ops::Slice(dataset.values, 1, anchor, settings.history),
        ops::Slice(dataset.values, 1, anchor + settings.history,
                   settings.horizon));
  }
  std::vector<TierAccuracy> acc_rows;
  bool acc_violation = false;
  const std::string acc_ckpt = BenchOutPath("serve_acc_ckpt.bin");
  std::cout << "\ntier accuracy (" << acc_models.size() << " models, "
            << n_eval << " eval windows):\n";
  for (const std::string& name : acc_models) {
    auto acc_model = baselines::MakeModel(name, dataset, settings);
    serve::ServingInfo acc_info = info;
    acc_info.model = name;
    serve::SaveServingCheckpoint(*acc_model, acc_info, acc_ckpt);
    TierAccuracy row;
    row.model = name;
    for (size_t t = 0; t < kTiers.size(); ++t) {
      serve::SessionConfig cfg;
      cfg.precision = kTiers[t];
      auto s = serve::InferenceSession::Open(acc_ckpt, dataset, cfg);
      metrics::MetricAccumulator acc;
      for (const auto& [win, truth] : eval_pairs) {
        acc.Add(s->Forecast(win), truth);
      }
      const metrics::ForecastMetrics fm = acc.Result();
      row.mae[t] = fm.mae;
      row.rmse[t] = fm.rmse;
    }
    for (size_t t = 1; t < kTiers.size(); ++t) {
      if (row.mae[0] > 0.0) {
        row.mae_delta_pct[t] =
            100.0 * std::abs(row.mae[t] - row.mae[0]) / row.mae[0];
      }
      if (row.rmse[0] > 0.0) {
        row.rmse_delta_pct[t] =
            100.0 * std::abs(row.rmse[t] - row.rmse[0]) / row.rmse[0];
      }
      if (row.mae_delta_pct[t] > kMaeDeltaBoundPct[t]) acc_violation = true;
    }
    acc_rows.push_back(row);
    std::cout << "  " << name << ": fp32 MAE " << FormatFloat(row.mae[0], 3)
              << ", bf16 delta " << FormatFloat(row.mae_delta_pct[1], 4)
              << "%, int8 delta " << FormatFloat(row.mae_delta_pct[2], 4)
              << "%\n";
  }

  // --- Forecast hot-path allocation audit --------------------------------
  // Steady-state Forecast must not touch the heap: scaler staging and
  // output assembly reuse session buffers, kernel intermediates recycle
  // through the pool. `requests` counts pool round-trips (expected, they
  // hit free lists); `misses` counts real heap allocations (expected 0).
  double alloc_requests_per_call = 0.0;
  double alloc_heap_per_call = 0.0;
  {
    auto alloc_sess = serve::InferenceSession::Open(ckpt);
    for (int i = 0; i < 8; ++i) alloc_sess->Forecast(windows[0]);  // warm
    pool::ResetStats();
    const int64_t iters = 64;
    for (int64_t i = 0; i < iters; ++i) alloc_sess->Forecast(windows[0]);
    const pool::PoolStats ps = pool::Stats();
    alloc_requests_per_call =
        static_cast<double>(ps.requests) / static_cast<double>(iters);
    alloc_heap_per_call =
        static_cast<double>(ps.misses) / static_cast<double>(iters);
  }
  std::cout << "\nforecast hot path (steady state): "
            << FormatFloat(alloc_requests_per_call, 2)
            << " pool requests/call, " << FormatFloat(alloc_heap_per_call, 3)
            << " heap allocations/call\n";

  // --- Streaming incremental inference -----------------------------------
  // Live streams: each pushes one observation per step into a StreamState
  // and requests `reads_per_obs` forecasts per advance (dashboards poll
  // more often than sensors report). Cache-off and cache-on runs submit
  // identical traffic; every response is memcmp'd against the offline
  // plain-Forecast answer, so the cache-on bytes equal the cache-off
  // bytes transitively.
  const int64_t stream_count = 3;
  const int64_t obs_steps = smoke ? 48 : 120;
  std::vector<StreamingArm> stream_arms;
  auto run_streaming = [&](const std::string& arm_name,
                           const std::string& model_name,
                           int64_t reads_per_obs) {
    auto stream_model = baselines::MakeModel(model_name, dataset, settings);
    serve::ServingInfo stream_info = info;
    stream_info.model = model_name;
    const std::string stream_ckpt =
        BenchOutPath("serve_stream_" + arm_name + ".bin");
    serve::SaveServingCheckpoint(*stream_model, stream_info, stream_ckpt);

    StreamingArm arm;
    arm.name = arm_name;
    arm.model = model_name;
    arm.reads_per_obs = reads_per_obs;

    // One full obs->forecast loop against a fresh single-worker server.
    // Returns elapsed seconds; collects (window, forecast) pairs for the
    // post-hoc bit check so the reference recompute stays off the clock.
    auto drive = [&](bool cache_on, double* out_seconds,
                     std::vector<std::pair<Tensor, Tensor>>* served,
                     serve::ServerStats* out_stats) {
      serve::SetStreamCacheMode(cache_on);
      serve::ServerOptions opts;
      opts.workers = 1;
      opts.batching.max_batch = 1;
      opts.batching.capacity = 1 << 16;
      opts.default_deadline = std::chrono::seconds(300);
      serve::Server server(stream_ckpt, opts);
      std::vector<serve::StreamState> states;
      for (int64_t s = 0; s < stream_count; ++s) {
        states.emplace_back(info.num_sensors, settings.history,
                            info.num_features);
      }
      std::vector<float> row(static_cast<size_t>(info.num_sensors *
                                                 info.num_features));
      if (cache_on) pool::ResetStats();
      Stopwatch watch;
      for (int64_t t = 0; t < obs_steps; ++t) {
        for (int64_t s = 0; s < stream_count; ++s) {
          // Stream s walks its own slice of the generated series.
          const Tensor col =
              ops::Slice(dataset.values, 1, t + s * 29, 1);  // [N, 1, F]
          std::memcpy(row.data(), col.data(),
                      sizeof(float) * row.size());
          states[static_cast<size_t>(s)].Push(row);
          if (!states[static_cast<size_t>(s)].ready()) continue;
          Tensor window = states[static_cast<size_t>(s)].Window().Reshape(
              {info.num_sensors, settings.history, info.num_features});
          for (int64_t r = 0; r < reads_per_obs; ++r) {
            serve::Response resp =
                server
                    .Submit(window, /*stream_id=*/s,
                            states[static_cast<size_t>(s)].anchor())
                    .get();
            if (!resp.ok) {
              ++arm.mismatches;
              continue;
            }
            served->emplace_back(window, resp.forecast);
          }
        }
      }
      *out_seconds = watch.ElapsedSeconds();
      if (cache_on) {
        const pool::PoolStats ps = pool::Stats();
        arm.warm_pool_requests = ps.requests;
        arm.warm_heap_allocs = ps.misses;
      }
      *out_stats = server.Stats();
    };

    double cold_s = 0.0, warm_s = 0.0;
    std::vector<std::pair<Tensor, Tensor>> cold_served, warm_served;
    serve::ServerStats cold_stats, warm_stats;
    drive(/*cache_on=*/false, &cold_s, &cold_served, &cold_stats);
    drive(/*cache_on=*/true, &warm_s, &warm_served, &warm_stats);
    serve::SetStreamCacheMode(true);

    arm.forecasts = static_cast<int64_t>(warm_served.size());
    arm.cold_rps = static_cast<double>(cold_served.size()) / cold_s;
    arm.warm_rps = static_cast<double>(warm_served.size()) / warm_s;
    arm.speedup = arm.warm_rps > 0.0 ? arm.warm_rps / arm.cold_rps : 0.0;
    arm.p50 = warm_stats.latency.p50();
    arm.p95 = warm_stats.latency.p95();
    arm.p99 = warm_stats.latency.p99();
    arm.output_hits = warm_stats.stream_cache.output_hits;
    arm.shift_hits = warm_stats.stream_cache.shift_hits;
    arm.cache_misses = warm_stats.stream_cache.misses;
    arm.stale = warm_stats.stream_cache.stale_rejected;
    arm.bypass = warm_stats.stream_cache.bypass;

    // Bit check: cold and warm responses against the offline session's
    // plain Forecast of the very same window bytes.
    auto stream_offline = serve::InferenceSession::Open(stream_ckpt);
    for (const auto* served : {&cold_served, &warm_served}) {
      for (const auto& [window, forecast] : *served) {
        Tensor ref = stream_offline->Forecast(window);
        if (forecast.shape() != ref.shape() ||
            std::memcmp(forecast.data(), ref.data(),
                        sizeof(float) *
                            static_cast<size_t>(ref.size())) != 0) {
          ++arm.mismatches;
        }
      }
    }
    stream_arms.push_back(arm);
    std::cout << "  " << arm.name << " (" << arm.model << ", reads/obs="
              << arm.reads_per_obs << "): cold "
              << FormatFloat(arm.cold_rps, 1) << " -> warm "
              << FormatFloat(arm.warm_rps, 1) << " req/s ("
              << FormatFloat(arm.speedup, 2) << "x), hits "
              << arm.output_hits << " output + " << arm.shift_hits
              << " shift, misses " << arm.cache_misses << ", stale "
              << arm.stale << ", p50 " << FormatFloat(arm.p50 / 1000.0, 2)
              << "ms, mismatches " << arm.mismatches << ", warm heap allocs "
              << arm.warm_heap_allocs << "\n";
  };

  std::cout << "\nstreaming incremental inference (" << stream_count
            << " streams, " << obs_steps << " obs steps each):\n";
  // Read-heavy ST-WA: the acceptance arm (dashboards poll between
  // observations, repeat reads are answered from the cached output).
  run_streaming("stwa_reads3", "ST-WA", 3);
  // One read per observation: every request advances the window, so only
  // the shift/invariant machinery can save work. Honest 1:1 arm.
  run_streaming("stwa_reads1", "ST-WA", 1);
  // S-WA keeps its parameter path time-invariant, so its decoder GEMMs
  // are skipped on warm replays — the genuine shift-reuse showcase.
  run_streaming("swa_reads1", "S-WA", 1);
  const double stream_speedup = stream_arms.front().speedup;
  std::cout << "streaming repeat-forecast speedup (cache on vs off): "
            << FormatFloat(stream_speedup, 2) << "x\n";

  const std::string path = BenchOutPath("BENCH_serve.json");
  std::ofstream out(path);
  out << "{\n  \"precision\": \"" << RunPrecisionName()
      << "\",\n  \"profile\": \"" << RunProfileName()
      << "\",\n  \"ckpt_version\": " << RunCheckpointVersion()
      << ",\n  \"num_requests\": " << num_requests
      << ",\n  \"distinct_windows\": " << distinct_windows
      << ",\n  \"num_sensors\": " << info.num_sensors
      << ",\n  \"history\": " << settings.history
      << ",\n  \"horizon\": " << settings.horizon
      << ",\n  \"batched_vs_batch1_speedup\": " << speedup
      << ",\n  \"plan_ab_mismatches\": " << plan_ab_mismatches
      << ",\n  \"fuse_ab_mismatches\": " << fuse_ab_mismatches
      << ",\n  \"modes\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& m = results[i];
    out << "    {\"mode\": \"" << m.name << "\", \"max_batch\": "
        << m.max_batch << ", \"seconds\": " << m.seconds
        << ", \"requests_per_second\": " << m.rps
        << ", \"mean_batch\": " << m.mean_batch << ", \"p50_us\": " << m.p50
        << ", \"p95_us\": " << m.p95 << ", \"p99_us\": " << m.p99
        << ", \"bit_mismatches\": " << m.mismatches << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"tier_throughput\": {\"requests\": " << tier_requests
      << ", \"d_model\": " << heavy.d_model
      << ", \"predictor_hidden\": " << heavy.predictor_hidden
      << ", \"bf16_vs_fp32\": " << bf16_vs_fp32
      << ", \"int8_vs_fp32\": " << int8_vs_fp32 << ", \"modes\": [\n";
  for (size_t i = 0; i < tier_modes.size(); ++i) {
    const ModeResult& m = tier_modes[i];
    out << "    {\"precision\": \"" << m.name
        << "\", \"requests_per_second\": " << m.rps
        << ", \"mean_batch\": " << m.mean_batch << ", \"p50_us\": " << m.p50
        << ", \"bit_mismatches\": " << m.mismatches << "}"
        << (i + 1 < tier_modes.size() ? "," : "") << "\n";
  }
  out << "  ]},\n  \"tier_determinism\": [\n";
  for (size_t i = 0; i < tier_det.size(); ++i) {
    const TierDeterminism& d = tier_det[i];
    out << "    {\"precision\": \"" << d.precision
        << "\", \"checks\": " << d.checks
        << ", \"bit_mismatches\": " << d.mismatches << "}"
        << (i + 1 < tier_det.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"tier_accuracy\": [\n";
  for (size_t i = 0; i < acc_rows.size(); ++i) {
    const TierAccuracy& r = acc_rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"fp32_mae\": " << r.mae[0]
        << ", \"fp32_rmse\": " << r.rmse[0] << ", \"bf16_mae\": " << r.mae[1]
        << ", \"bf16_rmse\": " << r.rmse[1]
        << ", \"bf16_mae_delta_pct\": " << r.mae_delta_pct[1]
        << ", \"bf16_rmse_delta_pct\": " << r.rmse_delta_pct[1]
        << ", \"int8_mae\": " << r.mae[2] << ", \"int8_rmse\": " << r.rmse[2]
        << ", \"int8_mae_delta_pct\": " << r.mae_delta_pct[2]
        << ", \"int8_rmse_delta_pct\": " << r.rmse_delta_pct[2] << "}"
        << (i + 1 < acc_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"forecast_allocs\": {\"pool_requests_per_call\": "
      << alloc_requests_per_call << ", \"heap_allocs_per_call\": "
      << alloc_heap_per_call << "},\n  \"streaming\": {\"streams\": "
      << stream_count << ", \"obs_steps\": " << obs_steps
      << ", \"speedup\": " << stream_speedup << ", \"arms\": [\n";
  for (size_t i = 0; i < stream_arms.size(); ++i) {
    const StreamingArm& a = stream_arms[i];
    out << "    {\"arm\": \"" << a.name << "\", \"model\": \"" << a.model
        << "\", \"reads_per_obs\": " << a.reads_per_obs
        << ", \"forecasts\": " << a.forecasts
        << ", \"cold_rps\": " << a.cold_rps
        << ", \"warm_rps\": " << a.warm_rps << ", \"speedup\": " << a.speedup
        << ", \"p50_us\": " << a.p50 << ", \"p95_us\": " << a.p95
        << ", \"p99_us\": " << a.p99 << ", \"output_hits\": " << a.output_hits
        << ", \"shift_hits\": " << a.shift_hits
        << ", \"cache_misses\": " << a.cache_misses
        << ", \"stale_rejected\": " << a.stale
        << ", \"bypass\": " << a.bypass
        << ", \"bit_mismatches\": " << a.mismatches
        << ", \"warm_pool_requests\": " << a.warm_pool_requests
        << ", \"warm_heap_allocs\": " << a.warm_heap_allocs << "}"
        << (i + 1 < stream_arms.size() ? "," : "") << "\n";
  }
  out << "  ]}\n}\n";
  std::cout << "wrote " << path << "\n";
  if (results.front().mismatches + results.back().mismatches > 0) {
    std::cerr << "ERROR: served forecasts diverged from offline eval\n";
    std::exit(1);
  }
  if (plan_ab_mismatches > 0) {
    std::cerr << "ERROR: plan-replayed forecasts diverged from eager\n";
    std::exit(1);
  }
  if (fuse_ab_mismatches > 0) {
    std::cerr << "ERROR: fused-plan forecasts diverged from unfused\n";
    std::exit(1);
  }
  for (const ModeResult& m : tier_modes) {
    if (m.mismatches > 0) {
      std::cerr << "ERROR: " << m.name
                << " served forecasts diverged from the tier's offline "
                   "reference\n";
      std::exit(1);
    }
  }
  for (const TierDeterminism& d : tier_det) {
    if (d.mismatches > 0) {
      std::cerr << "ERROR: " << d.precision
                << " forecasts are not bit-identical across threads/"
                   "batching/rewrites\n";
      std::exit(1);
    }
  }
  if (acc_violation) {
    std::cerr << "ERROR: a tier's MAE drifted past its bound vs fp32 "
                 "(bf16 0.1%, int8 1%)\n";
    std::exit(1);
  }
  for (const StreamingArm& a : stream_arms) {
    if (a.mismatches > 0) {
      std::cerr << "ERROR: streaming arm " << a.name
                << " served bytes that diverged from the plain Forecast "
                   "path (cache must never change forecasts)\n";
      std::exit(1);
    }
    if (a.stale > 0) {
      std::cerr << "ERROR: streaming arm " << a.name
                << " hit stale-generation cache entries\n";
      std::exit(1);
    }
    if (a.output_hits + a.shift_hits <= 0) {
      std::cerr << "ERROR: streaming arm " << a.name
                << " recorded zero cache hits — the incremental path "
                   "never engaged\n";
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
