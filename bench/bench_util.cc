#include "bench_util.h"

#include <sys/stat.h>

#include <iostream>

#include "common/check.h"
#include "common/string_util.h"
#include "runtime/parallel.h"
#include "serve/stream_cache.h"
#include "simd/lowp.h"
#include "simd/simd.h"
#include "tensor/buffer_pool.h"

namespace stwa {
namespace bench {

BenchScale GetScale() {
  BenchScale s;
  const std::string mode = GetEnvOr("STWA_BENCH_SCALE", "fast");
  if (mode == "full") {
    s.fast = false;
    s.steps_per_day = 288;
    s.num_days = 21;
    s.epochs = 30;
    s.batch_size = 16;
    s.stride = 1;
    s.eval_stride = 2;
    s.d_model = 32;
    s.predictor_hidden = 256;
    s.max_batches_per_epoch = 0;
  } else if (mode != "fast") {
    std::cerr << "unknown STWA_BENCH_SCALE='" << mode
              << "', using fast\n";
  }
  s.num_threads = runtime::DefaultNumThreads();
  return s;
}

int64_t PaperSensorCount(PaperDataset dataset) {
  switch (dataset) {
    case PaperDataset::kPems03:
      return 358;
    case PaperDataset::kPems04:
      return 307;
    case PaperDataset::kPems07:
      return 883;
    case PaperDataset::kPems08:
      return 170;
  }
  STWA_FAIL("bad dataset");
}

std::string DatasetName(PaperDataset dataset) {
  switch (dataset) {
    case PaperDataset::kPems03:
      return "PEMS03-like";
    case PaperDataset::kPems04:
      return "PEMS04-like";
    case PaperDataset::kPems07:
      return "PEMS07-like";
    case PaperDataset::kPems08:
      return "PEMS08-like";
  }
  STWA_FAIL("bad dataset");
}

data::TrafficDataset MakeDataset(PaperDataset dataset,
                                 const BenchScale& scale) {
  data::GeneratorOptions o;
  o.steps_per_day = scale.steps_per_day;
  o.num_days = scale.num_days;
  switch (dataset) {
    case PaperDataset::kPems03:
      o.name = "PEMS03-like";
      o.num_roads = scale.fast ? 6 : 10;
      o.sensors_per_road = scale.fast ? 3 : 6;
      o.seed = 1003;
      break;
    case PaperDataset::kPems04:
      o.name = "PEMS04-like";
      o.num_roads = 5;
      o.sensors_per_road = scale.fast ? 3 : 6;
      o.seed = 1004;
      break;
    case PaperDataset::kPems07:
      o.name = "PEMS07-like";
      o.num_roads = scale.fast ? 8 : 11;
      o.sensors_per_road = scale.fast ? 3 : 8;
      o.seed = 1007;
      break;
    case PaperDataset::kPems08:
      o.name = "PEMS08-like";
      o.num_roads = 4;
      o.sensors_per_road = scale.fast ? 2 : 4;
      o.seed = 1008;
      break;
  }
  return data::GenerateTraffic(o);
}

baselines::ModelSettings MakeSettings(const BenchScale& scale,
                                      int64_t history, int64_t horizon) {
  baselines::ModelSettings s;
  s.history = history;
  s.horizon = horizon;
  s.d_model = scale.d_model;
  s.predictor_hidden = scale.predictor_hidden;
  s.num_layers = 2;
  s.latent_dim = scale.fast ? 8 : 16;
  // Paper defaults: H = 12 uses 3 layers with windows 3/2/2; H = 72 uses
  // windows 6/6/2; other H get a divisor chain.
  if (history == 12) {
    s.window_sizes = {3, 2, 2};
  } else if (history == 36) {
    s.window_sizes = {3, 3, 2};
  } else if (history == 72) {
    s.window_sizes = {6, 6, 2};
  } else if (history == 120) {
    s.window_sizes = {6, 5, 2};
  } else if (history % 4 == 0) {
    s.window_sizes = {2, 2};
  } else {
    s.window_sizes = {history};
  }
  return s;
}

train::TrainConfig MakeTrainConfig(const BenchScale& scale) {
  train::TrainConfig c;
  c.epochs = scale.epochs;
  c.batch_size = scale.batch_size;
  c.stride = scale.stride;
  c.eval_stride = scale.eval_stride;
  c.patience = 15;
  c.max_batches_per_epoch = scale.max_batches_per_epoch;
  c.num_threads = scale.num_threads;
  return c;
}

train::TrainResult RunModel(const std::string& model_name,
                            const data::TrafficDataset& dataset,
                            const baselines::ModelSettings& settings,
                            const train::TrainConfig& config) {
  auto model = baselines::MakeModel(model_name, dataset, settings);
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  return trainer.Fit(*model);
}

std::vector<std::string> MetricCells(const metrics::ForecastMetrics& m) {
  return {FormatFloat(m.mae, 2), FormatFloat(m.mape, 2),
          FormatFloat(m.rmse, 2)};
}

namespace {

std::string g_run_profile = "-";
int64_t g_run_ckpt_version = 0;

}  // namespace

void ReportRuntime() {
  const std::string env = GetEnvOr("STWA_NUM_THREADS", "");
  const std::string pool_env = GetEnvOr("STWA_DISABLE_POOL", "");
  std::cout << "[runtime] threads=" << runtime::NumThreads()
            << (env.empty() ? " (hardware default)"
                            : " (STWA_NUM_THREADS=" + env + ")")
            << " pool=" << (pool::Enabled() ? "on" : "off")
            << (pool_env.empty() ? ""
                                 : " (STWA_DISABLE_POOL=" + pool_env + ")")
            << " simd=" << simd::IsaName()
            << " precision=" << RunPrecisionName()
            << " stream_cache="
            << (serve::StreamCacheEnabled() ? "on" : "off")
            << " profile=" << g_run_profile
            << " ckpt_version=" << g_run_ckpt_version << "\n";
}

const char* RunPrecisionName() {
  return simd::PrecisionName(simd::EnvPrecision());
}

void SetRunCheckpoint(const std::string& profile, int64_t ckpt_version) {
  g_run_profile = profile;
  g_run_ckpt_version = ckpt_version;
}

const std::string& RunProfileName() { return g_run_profile; }

int64_t RunCheckpointVersion() { return g_run_ckpt_version; }

std::string BenchOutPath(const std::string& filename) {
  ::mkdir("bench_out", 0755);  // ignore EEXIST
  return "bench_out/" + filename;
}

}  // namespace bench
}  // namespace stwa
