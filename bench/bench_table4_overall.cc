// Reproduces Table IV: overall accuracy (MAE / MAPE / RMSE) with H=12,
// U=12 across the four PEMS-like datasets for all eleven baselines and
// ST-WA. The expected shape: ST-agnostic models trail, spatial-aware
// models (EnhanceNet, AGCRN) do better, meta-LSTM (no sensor correlation)
// is weakest, and ST-WA leads on most metrics.

#include <iostream>

#include "bench_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  baselines::ModelSettings settings = MakeSettings(scale, 12, 12);
  train::TrainConfig config = MakeTrainConfig(scale);

  std::vector<std::string> models = baselines::AllBaselineNames();
  models.push_back("ST-WA");

  train::TablePrinter table(
      "Table IV: Overall accuracy, H=12, U=12 (synthetic PEMS-like data)");
  table.SetHeader({"Dataset", "Model", "MAE", "MAPE", "RMSE"});
  for (PaperDataset ds : {PaperDataset::kPems03, PaperDataset::kPems04,
                          PaperDataset::kPems07, PaperDataset::kPems08}) {
    data::TrafficDataset dataset = MakeDataset(ds, scale);
    double best_mae = 1e18;
    std::string best_model;
    for (const std::string& name : models) {
      train::TrainResult result = RunModel(name, dataset, settings, config);
      std::vector<std::string> row = {dataset.name, name};
      for (const std::string& cell : MetricCells(result.test)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      if (result.test.mae < best_mae) {
        best_mae = result.test.mae;
        best_model = name;
      }
      std::cout << "." << std::flush;
    }
    std::cout << "\n[" << dataset.name << "] best MAE: " << best_model
              << " (" << best_mae << ")\n";
    table.AddSeparator();
  }
  table.Print();
  std::cout << "\nExpected shape (paper Table IV): ST-WA best on most "
               "metrics; spatial-aware EnhanceNet/AGCRN beat most "
               "ST-agnostic baselines; meta-LSTM (no sensor correlation) "
               "worst.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
