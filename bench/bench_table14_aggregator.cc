// Reproduces Table XIV: effect of the proxy aggregation function at the
// long-horizon setting (H = U = 72) on PEMS04: the paper's gated
// aggregator (Eq. 12-13) vs a plain mean. Expected shape: the gated
// aggregator wins clearly.

#include <iostream>

#include "bench_util.h"

namespace stwa {
namespace bench {
namespace {

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  data::TrafficDataset dataset = MakeDataset(PaperDataset::kPems04, scale);
  train::TrainConfig config = MakeTrainConfig(scale);
  config.epochs = std::min(config.epochs, 25);
  config.stride *= 2;
  config.eval_stride *= 2;

  train::TablePrinter table(
      "Table XIV: Effect of the aggregation function, " + dataset.name +
      " (H=72, U=72, p=2)");
  table.SetHeader({"Aggregator", "MAE", "MAPE", "RMSE"});
  for (std::string name : {"ST-WA-mean", "ST-WA"}) {
    baselines::ModelSettings settings = MakeSettings(scale, 72, 72);
    settings.proxies = 2;
    train::TrainResult result = RunModel(name, dataset, settings, config);
    std::vector<std::string> row = {
        name == "ST-WA" ? "Gated (ours)" : "Mean"};
    for (const std::string& cell : MetricCells(result.test)) {
      row.push_back(cell);
    }
    table.AddRow(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table XIV): the gated aggregator "
               "is clearly more accurate than the mean aggregator.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
