// Online continual-learning benchmark: a planted regime shift, three arms.
//
// A demo-scale stream is generated with a network-wide level shift at a
// known row (data::GeneratorOptions::shift_step). A base ST-WA is trained
// on the pre-shift rows only, then each arm forecasts the same stream on
// the same cadence and its raw MAE is bucketed into pre-shift and
// post-shift windows:
//
//   frozen  — the base checkpoint served as-is (what a fleet does today);
//   adapted — the base checkpoint behind a single-tile fleet::ModelProfile
//             with an online::OnlineLearner riding the same rows; every
//             drift-triggered adaptation cycle publishes adapted weights
//             and hot-reloads the profile mid-stream, so the adapted MAE
//             is measured through the real serving path;
//   oracle  — the same model retrained from scratch on the full stream,
//             shift included (the hindsight upper bound).
//
// Writes bench_out/BENCH_online.json with the per-arm MAEs, adaptation
// cycle count and latency, drift events, and per-reload swap/drain
// timings. Exit code 1 when the adapted arm fails to beat the frozen arm
// post-shift, when any fleet request is dropped around the reloads, or
// when no adaptation cycle ran at all.
//
// STWA_BENCH_SMOKE=1 shrinks the stream and training epochs to a
// seconds-long CI run producing the same JSON.

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "fleet/profile.h"
#include "online/adaptation.h"
#include "serve/checkpoint.h"
#include "serve/inference_session.h"
#include "tensor/ops.h"

namespace stwa {
namespace bench {
namespace {

/// Forecasts are requested every this many rows.
constexpr int64_t kEvalEvery = 2;

/// Raw-scale MAE bucketed around the shift row. Forecast windows that
/// straddle the shift go to neither bucket, keeping the comparison clean.
struct ArmMae {
  double pre_abs = 0.0;
  double post_abs = 0.0;
  int64_t pre_elems = 0;
  int64_t post_elems = 0;

  void Accumulate(const Tensor& pred, const Tensor& truth, int64_t target_row,
                  int64_t horizon, int64_t shift_row) {
    const float* p = pred.data();
    const float* y = truth.data();
    double abs_sum = 0.0;
    for (int64_t k = 0; k < truth.size(); ++k) {
      abs_sum += std::abs(p[k] - y[k]);
    }
    if (target_row >= shift_row) {
      post_abs += abs_sum;
      post_elems += truth.size();
    } else if (target_row + horizon <= shift_row) {
      pre_abs += abs_sum;
      pre_elems += truth.size();
    }
  }

  double pre_mae() const {
    return pre_elems > 0 ? pre_abs / static_cast<double>(pre_elems) : 0.0;
  }
  double post_mae() const {
    return post_elems > 0 ? post_abs / static_cast<double>(post_elems) : 0.0;
  }
};

/// Trains the bench's ST-WA on `dataset` and writes a serving checkpoint.
void TrainArm(const std::string& label, const data::TrafficDataset& dataset,
              const baselines::ModelSettings& settings, int epochs,
              const std::string& path) {
  auto model = baselines::MakeModel("ST-WA", dataset, settings);
  train::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 8;
  config.stride = 2;
  config.eval_stride = 4;
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  train::TrainResult result = trainer.Fit(*model);
  std::cout << label << ": trained " << result.epochs_run
            << " epochs, test MAE " << FormatFloat(result.test.mae, 3)
            << "\n";
  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = settings;
  info.num_sensors = dataset.num_sensors();
  info.num_features = dataset.num_features();
  info.scaler_mean = trainer.scaler().mean();
  info.scaler_std = trainer.scaler().stddev();
  serve::SaveServingCheckpoint(*model, info, path);
}

/// Offline arm: forecast the stream on the eval cadence through an
/// InferenceSession over `ckpt`.
ArmMae RunOffline(const std::string& ckpt,
                  const data::TrafficDataset& stream, int64_t history,
                  int64_t horizon, int64_t shift_row) {
  auto session = serve::InferenceSession::Open(ckpt);
  ArmMae mae;
  const int64_t rows = stream.num_steps();
  for (int64_t t = history - 1; t + horizon < rows; t += kEvalEvery) {
    const Tensor window =
        ops::Slice(stream.values, 1, t - history + 1, history);
    const Tensor truth = ops::Slice(stream.values, 1, t + 1, horizon);
    mae.Accumulate(session->Forecast(window), truth, t + 1, horizon,
                   shift_row);
  }
  return mae;
}

void Run() {
  SetRunCheckpoint("online", 1);
  ReportRuntime();
  const bool smoke = GetEnvIntOr("STWA_BENCH_SMOKE", 0) != 0;

  // The drifted stream: demo-scale network, shift halfway through.
  data::GeneratorOptions gen;
  gen.name = "online-bench";
  gen.num_roads = 2;
  gen.sensors_per_road = 2;
  gen.num_days = smoke ? 4 : 8;
  gen.steps_per_day = 96;
  gen.seed = 17;
  // Scale > 1: the shift raises flow levels, so the frozen model
  // under-predicts and its absolute error grows — the detectable regime.
  gen.shift_step = gen.num_days * gen.steps_per_day / 2;
  gen.shift_scale = 1.5f;
  data::ShiftSchedule schedule;
  const data::TrafficDataset stream = data::GenerateTraffic(gen, &schedule);
  const int64_t rows = stream.num_steps();
  const int64_t shift_row = gen.shift_step;
  const int epochs = smoke ? 2 : 6;

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  const int64_t history = settings.history;
  const int64_t horizon = settings.horizon;
  std::cout << "stream: " << stream.num_sensors() << " sensors x " << rows
            << " rows, shift at row " << shift_row << " x"
            << FormatFloat(gen.shift_scale, 2) << " ("
            << schedule.events.size() << " planted events)\n";

  // Base model: pre-shift rows only (the honest deployment situation).
  data::TrafficDataset pre_shift = stream;
  pre_shift.values = ops::Slice(stream.values, 1, 0, shift_row);
  const std::string base_ckpt = BenchOutPath("online_base.bin");
  TrainArm("base (pre-shift)", pre_shift, settings, epochs, base_ckpt);

  // Oracle: retrained from scratch on the full stream, shift included.
  const std::string oracle_ckpt = BenchOutPath("online_oracle.bin");
  TrainArm("oracle (full stream)", stream, settings, epochs, oracle_ckpt);

  const ArmMae frozen =
      RunOffline(base_ckpt, stream, history, horizon, shift_row);
  const ArmMae oracle =
      RunOffline(oracle_ckpt, stream, history, horizon, shift_row);

  // Adapted arm: the base checkpoint served by a single-tile fleet
  // profile, adapted mid-stream and hot-reloaded on every publish.
  online::OnlineConfig online_config;
  online_config.publish_path = BenchOutPath("online_adapted.bin");
  online::OnlineLearner learner(base_ckpt, online_config);
  fleet::FleetProfileConfig profile_config;
  profile_config.name = "online";
  profile_config.checkpoint = base_ckpt;
  fleet::ModelProfile profile(profile_config);

  ArmMae adapted;
  int64_t dropped = 0;
  int64_t forecasts = 0;
  std::vector<fleet::ReloadResult> reloads;
  std::vector<float> observation(
      static_cast<size_t>(stream.num_sensors()));
  for (int64_t t = 0; t < rows; ++t) {
    for (int64_t i = 0; i < stream.num_sensors(); ++i) {
      observation[static_cast<size_t>(i)] = stream.values({i, t, 0});
    }
    profile.PushTile(0, observation);
    if (t >= history - 1 && t + horizon < rows &&
        (t - (history - 1)) % kEvalEvery == 0) {
      serve::Response resp = profile.ForecastTile(0).get();
      ++forecasts;
      if (!resp.ok || resp.degraded) {
        ++dropped;
      } else {
        const Tensor truth = ops::Slice(stream.values, 1, t + 1, horizon);
        adapted.Accumulate(resp.forecast, truth, t + 1, horizon, shift_row);
      }
    }
    if (learner.Observe(observation)) {
      reloads.push_back(profile.Reload(learner.publish_path()));
      std::cout << "row " << t << ": adapted ("
                << FormatFloat(learner.stats().last_cycle_ms, 1)
                << " ms) and reloaded to gen " << reloads.back().version
                << " (ckpt_version " << reloads.back().ckpt_version
                << ", swap " << FormatFloat(reloads.back().swap_us, 0)
                << " us)\n";
    }
  }
  const serve::ServerStats fleet_stats = profile.Stats();
  const online::AdaptStats& adapt_stats = learner.stats();

  auto print_arm = [](const std::string& name, const ArmMae& arm) {
    std::cout << "  " << name << ": pre-shift MAE "
              << FormatFloat(arm.pre_mae(), 3) << ", post-shift MAE "
              << FormatFloat(arm.post_mae(), 3) << "\n";
  };
  std::cout << "arms (" << forecasts << " fleet forecasts, " << dropped
            << " dropped):\n";
  print_arm("frozen ", frozen);
  print_arm("adapted", adapted);
  print_arm("oracle ", oracle);
  std::cout << "  adaptation: " << adapt_stats.cycles << " cycle(s), "
            << adapt_stats.fine_tune_steps << " fine-tune steps, last "
            << FormatFloat(adapt_stats.last_cycle_ms, 1) << " ms, "
            << learner.drift().triggers() << " drift event(s)\n";

  const std::string path = BenchOutPath("BENCH_online.json");
  {
    std::ofstream out(path);
    out << "{\n  \"precision\": \"" << RunPrecisionName()
        << "\",\n  \"profile\": \"" << RunProfileName()
        << "\",\n  \"smoke\": " << (smoke ? "true" : "false")
        << ",\n  \"rows\": " << rows
        << ",\n  \"sensors\": " << stream.num_sensors()
        << ",\n  \"shift_row\": " << shift_row
        << ",\n  \"shift_scale\": " << gen.shift_scale
        << ",\n  \"planted_events\": " << schedule.events.size()
        << ",\n  \"epochs\": " << epochs << ",\n  \"arms\": {\n";
    const std::vector<std::pair<const char*, const ArmMae*>> arms = {
        {"frozen", &frozen}, {"adapted", &adapted}, {"oracle", &oracle}};
    for (size_t i = 0; i < arms.size(); ++i) {
      out << "    \"" << arms[i].first
          << "\": {\"pre_shift_mae\": " << arms[i].second->pre_mae()
          << ", \"post_shift_mae\": " << arms[i].second->post_mae() << "}"
          << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    out << "  },\n  \"adaptation\": {\"cycles\": " << adapt_stats.cycles
        << ", \"fine_tune_steps\": " << adapt_stats.fine_tune_steps
        << ", \"publishes\": " << adapt_stats.publishes
        << ", \"drift_events\": " << learner.drift().triggers()
        << ", \"last_cycle_ms\": " << adapt_stats.last_cycle_ms
        << ", \"total_ms\": " << adapt_stats.total_ms
        << ", \"replay_examples\": " << learner.replay().total_added()
        << ", \"replay_evicted\": " << learner.replay().evicted()
        << "},\n  \"reloads\": [\n";
    for (size_t i = 0; i < reloads.size(); ++i) {
      out << "    {\"generation\": " << reloads[i].version
          << ", \"ckpt_version\": " << reloads[i].ckpt_version
          << ", \"prepare_us\": " << reloads[i].prepare_us
          << ", \"swap_stall_us\": " << reloads[i].swap_us
          << ", \"drain_us\": " << reloads[i].drain_us << "}"
          << (i + 1 < reloads.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"fleet\": {\"forecasts\": " << forecasts
        << ", \"completed\": " << fleet_stats.completed
        << ", \"dropped\": " << dropped
        << ", \"shed\": " << fleet_stats.shed << "}\n}\n";
  }
  std::cout << "wrote " << path << "\n";

  bool failed = false;
  if (adapt_stats.cycles == 0) {
    std::cerr << "ERROR: no adaptation cycle ran (drift never triggered "
                 "or replay never filled)\n";
    failed = true;
  }
  if (adapted.post_mae() >= frozen.post_mae()) {
    std::cerr << "ERROR: adapted post-shift MAE "
              << FormatFloat(adapted.post_mae(), 3)
              << " does not beat frozen "
              << FormatFloat(frozen.post_mae(), 3) << "\n";
    failed = true;
  }
  if (dropped > 0 || fleet_stats.shed > 0) {
    std::cerr << "ERROR: " << dropped + fleet_stats.shed
              << " request(s) dropped — reloads must drain, not shed\n";
    failed = true;
  }
  if (failed) std::exit(1);
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
