// Reproduces Table VI: long-term forecasting with H = U = 72 across the
// four datasets for the top-3 baselines and ST-WA. The OOM cells are
// decided by the analytic memory model evaluated at the PAPER's scale
// (real sensor counts, batch 64, 16 GB budget) — see
// src/core/memory_model.h; models that would OOM are not trained.
// Expected shape: ST-WA clearly best; EnhanceNet and STFGNN OOM on the
// largest network (PEMS07); AGCRN degrades badly at long horizons.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/memory_model.h"

namespace stwa {
namespace bench {
namespace {

double EstimateGb(const std::string& model, core::MemoryWorkload w) {
  if (model == "STFGNN") return core::FusionGraphGb(w);
  if (model == "EnhanceNet") return core::EnhanceNetGb(w);
  if (model == "AGCRN") return core::AdaptiveGraphRnnGb(w);
  // ST-WA: window attention with the H=72 configuration (S=6, p=2).
  return 1.8 * core::WindowAttentionGb(w, {6, 6, 2}, 2);
}

void Run() {
  ReportRuntime();
  BenchScale scale = GetScale();
  train::TrainConfig config = MakeTrainConfig(scale);
  // H = U = 72 batches are ~6x the H=12 cost; keep the table affordable.
  config.epochs = std::min(config.epochs, 25);
  config.stride *= 2;
  config.eval_stride *= 2;
  const std::vector<std::string> models = {"STFGNN", "EnhanceNet", "AGCRN",
                                           "ST-WA"};

  train::TablePrinter table(
      "Table VI: Overall accuracy, H=72, U=72 (OOM = analytic estimate "
      "exceeds 16 GB at paper scale)");
  table.SetHeader({"Dataset", "Model", "MAE", "MAPE", "RMSE",
                   "PaperMem(GB)"});
  for (PaperDataset ds : {PaperDataset::kPems03, PaperDataset::kPems04,
                          PaperDataset::kPems07, PaperDataset::kPems08}) {
    data::TrafficDataset dataset = MakeDataset(ds, scale);
    baselines::ModelSettings settings = MakeSettings(scale, 72, 72);
    settings.proxies = 2;  // paper: p=2 for H=72
    core::MemoryWorkload paper_scale;
    paper_scale.sensors = PaperSensorCount(ds);
    paper_scale.history = 72;
    paper_scale.horizon = 72;
    for (const std::string& name : models) {
      const double gb = EstimateGb(name, paper_scale);
      std::vector<std::string> row = {dataset.name, name};
      if (core::WouldOom(gb)) {
        row.insert(row.end(), {"OOM", "OOM", "OOM"});
      } else {
        train::TrainResult result =
            RunModel(name, dataset, settings, config);
        for (const std::string& cell : MetricCells(result.test)) {
          row.push_back(cell);
        }
      }
      row.push_back(FormatFloat(gb, 1));
      table.AddRow(row);
      std::cout << "." << std::flush;
    }
    table.AddSeparator();
  }
  std::cout << "\n";
  table.Print();
  std::cout << "\nExpected shape (paper Table VI): ST-WA best everywhere; "
               "EnhanceNet and STFGNN OOM on PEMS07 (N=883); AGCRN runs "
               "but degrades at the long horizon.\n";
}

}  // namespace
}  // namespace bench
}  // namespace stwa

int main() {
  stwa::bench::Run();
  return 0;
}
