#!/usr/bin/env python3
"""Plots the CSV artefacts exported by the bench binaries.

Usage (after running the benches from the build directory):
    python3 tools/plot_results.py build/bench_out

Produces, next to each CSV:
    fig1_sensors.png     — the Figure 1 week of traffic for four sensors
    fig9a_phi_tsne.png   — t-SNE of generated parameters, coloured by regime
    fig9b_z_tsne.png     — t-SNE of spatial latents, coloured by road
    fig10_runtime.png    — s/epoch vs H per model

Requires matplotlib (not needed for any other part of the repository).
"""

import csv
import os
import sys


def load(path):
    with open(path) as f:
        reader = csv.DictReader(f)
        rows = list(reader)
    return rows


def plot_fig1(out_dir, plt):
    path = os.path.join(out_dir, "fig1_sensors.csv")
    if not os.path.exists(path):
        return
    rows = load(path)
    steps = [int(r["step"]) for r in rows]
    plt.figure(figsize=(10, 4))
    for name in ["sensor1", "sensor2", "sensor3", "sensor4"]:
        plt.plot(steps, [float(r[name]) for r in rows], label=name,
                 linewidth=0.8)
    plt.xlabel("5-minute step")
    plt.ylabel("flow")
    plt.title("Figure 1: one week, four sensors (two roads)")
    plt.legend()
    plt.tight_layout()
    plt.savefig(os.path.join(out_dir, "fig1_sensors.png"), dpi=150)
    plt.close()


def plot_scatter(out_dir, plt, csv_name, label_col, title, png_name):
    path = os.path.join(out_dir, csv_name)
    if not os.path.exists(path):
        return
    rows = load(path)
    labels = sorted({r[label_col] for r in rows})
    plt.figure(figsize=(5, 5))
    for lab in labels:
        xs = [float(r["x"]) for r in rows if r[label_col] == lab]
        ys = [float(r["y"]) for r in rows if r[label_col] == lab]
        plt.scatter(xs, ys, s=18, label=f"{label_col}={lab}")
    plt.title(title)
    plt.legend()
    plt.tight_layout()
    plt.savefig(os.path.join(out_dir, png_name), dpi=150)
    plt.close()


def plot_fig10(out_dir, plt):
    path = os.path.join(out_dir, "fig10_runtime.csv")
    if not os.path.exists(path):
        return
    rows = load(path)
    models = sorted({r["model"] for r in rows})
    plt.figure(figsize=(6, 4))
    for m in models:
        pts = sorted((int(r["h"]), float(r["seconds_per_epoch"]))
                     for r in rows if r["model"] == m)
        plt.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                 label=m)
    plt.xlabel("history H")
    plt.ylabel("s / epoch")
    plt.title("Figure 10: training runtime vs H")
    plt.legend()
    plt.tight_layout()
    plt.savefig(os.path.join(out_dir, "fig10_runtime.png"), dpi=150)
    plt.close()


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "bench_out"
    if not os.path.isdir(out_dir):
        sys.exit(f"no such directory: {out_dir} "
                 "(run the bench binaries first)")
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
    plot_fig1(out_dir, plt)
    plot_scatter(out_dir, plt, "fig9a_phi_tsne.csv", "regime",
                 "Figure 9a: t-SNE of generated parameters",
                 "fig9a_phi_tsne.png")
    plot_scatter(out_dir, plt, "fig9b_z_tsne.csv", "road",
                 "Figure 9b: t-SNE of spatial latents",
                 "fig9b_z_tsne.png")
    plot_fig10(out_dir, plt)
    print(f"wrote plots into {out_dir}/")


if __name__ == "__main__":
    main()
