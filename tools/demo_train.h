// The shared demo trainer behind every serving CLI's --train-demo mode.
//
// stwa_serve, stwa_fleet and stwa_online all need the same thing: a tiny
// quickstart-like dataset, a small ST-WA trained on it for a couple of
// epochs, and a serving checkpoint written out — self-contained
// checkpoint production for smoke tests and CI. This header is the single
// definition of that recipe; the CLIs only vary the dataset name, seed,
// network size and (for online demos) the planted regime shift.

#ifndef STWA_TOOLS_DEMO_TRAIN_H_
#define STWA_TOOLS_DEMO_TRAIN_H_

#include <string>

#include "baselines/registry.h"
#include "data/traffic_generator.h"
#include "train/trainer.h"

namespace stwa {
namespace tools {

/// Per-CLI knobs of the demo dataset. Defaults reproduce the stwa_serve
/// demo (4 sensors, 4 days x 96 steps, seed 17) byte for byte.
struct DemoTrainOptions {
  std::string dataset_name = "serve-demo";
  int64_t num_roads = 2;
  int64_t sensors_per_road = 2;
  uint64_t seed = 17;
  /// Planted regime shift forwarded to the generator (off by default;
  /// RNG-free, so enabling it leaves pre-shift rows unchanged).
  int64_t shift_step = -1;
  float shift_scale = 1.0f;
  int64_t shift_ramp_steps = 0;
};

/// Generator options of the demo dataset (4 days at 96 steps/day).
data::GeneratorOptions DemoGeneratorOptions(
    const DemoTrainOptions& options = DemoTrainOptions());

/// The demo ST-WA: paper T=12 lookback and U=12 horizon at toy widths,
/// small enough that two epochs train in seconds.
baselines::ModelSettings DemoModelSettings();

/// Trains the demo ST-WA on `dataset` and writes a serving checkpoint to
/// `path` (progress lines on stderr name `display_name`). Returns the
/// training result.
train::TrainResult TrainDemoCheckpoint(const std::string& display_name,
                                       const data::TrafficDataset& dataset,
                                       int epochs, const std::string& path);

}  // namespace tools
}  // namespace stwa

#endif  // STWA_TOOLS_DEMO_TRAIN_H_
