// stwa_serve: line-protocol forecast server over a frozen checkpoint.
//
// Modes:
//   --train-demo <ckpt> [--epochs E]
//       Generate the tiny quickstart-like dataset, train ST-WA for E
//       epochs (default 2) and write a serving checkpoint — a
//       self-contained way to produce a checkpoint for smoke tests.
//   --ckpt <path> [--workers W] [--max-batch B] [--max-delay-us D]
//          [--deadline-us D] [--port P] [--precision fp32|bf16|int8]
//       Serve the checkpoint. Default transport is the line protocol on
//       stdin/stdout (see serve/protocol.h); --port instead listens on
//       TCP with one connection thread and one StreamState per client,
//       all sharing the batching server. --precision selects the weight
//       tier every worker session serves at (default: STWA_PRECISION,
//       falling back to fp32); activations stay fp32.

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "baselines/registry.h"
#include "common/string_util.h"
#include "data/traffic_generator.h"
#include "serve/checkpoint.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stream_state.h"
#include "simd/lowp.h"
#include "train/trainer.h"

namespace stwa {
namespace {

struct Args {
  std::string train_demo_path;
  int epochs = 2;
  std::string ckpt;
  int workers = 1;
  int64_t max_batch = 8;
  int64_t max_delay_us = 2000;
  int64_t deadline_us = 1'000'000;
  int port = 0;            // 0 = stdin/stdout
  std::string precision;   // empty = STWA_PRECISION / fp32
};

void PrintUsage() {
  std::cerr <<
      "usage:\n"
      "  stwa_serve --train-demo <ckpt> [--epochs E]\n"
      "  stwa_serve --ckpt <path> [--workers W] [--max-batch B]\n"
      "             [--max-delay-us D] [--deadline-us D] [--port P]\n"
      "             [--precision fp32|bf16|int8]\n";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--train-demo") {
      if ((v = next_value(i)) == nullptr) return false;
      args->train_demo_path = v;
    } else if (flag == "--epochs") {
      if ((v = next_value(i)) == nullptr) return false;
      args->epochs = std::atoi(v);
    } else if (flag == "--ckpt") {
      if ((v = next_value(i)) == nullptr) return false;
      args->ckpt = v;
    } else if (flag == "--workers") {
      if ((v = next_value(i)) == nullptr) return false;
      args->workers = std::atoi(v);
    } else if (flag == "--max-batch") {
      if ((v = next_value(i)) == nullptr) return false;
      args->max_batch = std::atoll(v);
    } else if (flag == "--max-delay-us") {
      if ((v = next_value(i)) == nullptr) return false;
      args->max_delay_us = std::atoll(v);
    } else if (flag == "--deadline-us") {
      if ((v = next_value(i)) == nullptr) return false;
      args->deadline_us = std::atoll(v);
    } else if (flag == "--port") {
      if ((v = next_value(i)) == nullptr) return false;
      args->port = std::atoi(v);
    } else if (flag == "--precision") {
      if ((v = next_value(i)) == nullptr) return false;
      args->precision = v;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  return !args->train_demo_path.empty() || !args->ckpt.empty();
}

/// The demo dataset/model: small enough that two epochs train in seconds,
/// shaped like the quickstart (paper T=12 lookback, U=12 horizon).
int TrainDemo(const Args& args) {
  data::GeneratorOptions gen;
  gen.name = "serve-demo";
  gen.num_roads = 2;
  gen.sensors_per_road = 2;
  gen.num_days = 4;
  gen.steps_per_day = 96;
  gen.seed = 17;
  data::TrafficDataset dataset = data::GenerateTraffic(gen);

  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  auto model = baselines::MakeModel("ST-WA", dataset, settings);

  train::TrainConfig config;
  config.epochs = args.epochs;
  config.batch_size = 8;
  config.stride = 2;
  config.eval_stride = 4;
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  train::TrainResult result = trainer.Fit(*model);
  std::cerr << "trained ST-WA " << result.epochs_run << " epochs, test MAE "
            << FormatFloat(result.test.mae, 3) << "\n";

  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = settings;
  info.num_sensors = dataset.num_sensors();
  info.num_features = dataset.num_features();
  info.scaler_mean = trainer.scaler().mean();
  info.scaler_std = trainer.scaler().stddev();
  serve::SaveServingCheckpoint(*model, info, args.train_demo_path);
  std::cerr << "wrote serving checkpoint " << args.train_demo_path << "\n";
  return 0;
}

/// Handles one protocol line. Returns the response to write (nullopt to
/// skip, e.g. blank/comment lines) and sets `quit` on the quit command.
std::optional<std::string> HandleLine(const std::string& line,
                                      serve::Server& server,
                                      serve::StreamState& state,
                                      bool* quit) {
  const serve::ServingInfo& info = server.info();
  serve::Command cmd = serve::ParseCommand(line);
  using Kind = serve::Command::Kind;
  switch (cmd.kind) {
    case Kind::kInvalid:
      if (cmd.error.empty()) return std::nullopt;  // blank/comment
      return serve::FormatErrorResponse(cmd.error);
    case Kind::kObs:
      if (static_cast<int64_t>(cmd.values.size()) !=
          state.num_sensors() * state.features()) {
        return serve::FormatErrorResponse(
            "obs needs " +
            std::to_string(state.num_sensors() * state.features()) +
            " values");
      }
      state.Push(cmd.values);
      return "ok";
    case Kind::kObsSensor:
      if (cmd.sensor < 0 || cmd.sensor >= state.num_sensors()) {
        return serve::FormatErrorResponse("sensor out of range");
      }
      if (static_cast<int64_t>(cmd.values.size()) != state.features()) {
        return serve::FormatErrorResponse(
            "obs1 needs " + std::to_string(state.features()) + " value(s)");
      }
      state.PushSensor(cmd.sensor, cmd.values.data());
      return "ok";
    case Kind::kForecast: {
      if (!state.ready()) {
        return "forecast ok=0 degraded=0 err=warming_up_have_" +
               std::to_string(state.min_filled()) + "_of_" +
               std::to_string(state.history());
      }
      Tensor window = state.Window().Reshape(
          {state.num_sensors(), state.history(), state.features()});
      serve::Response resp = server.Submit(std::move(window)).get();
      return serve::FormatForecastResponse(resp, info.num_sensors,
                                           info.settings.horizon,
                                           info.num_features);
    }
    case Kind::kStats:
      return serve::FormatStatsResponse(server.Stats());
    case Kind::kQuit:
      *quit = true;
      return "bye";
  }
  return std::nullopt;
}

void ServeStdio(serve::Server& server) {
  const serve::ServingInfo& info = server.info();
  serve::StreamState state(info.num_sensors, info.settings.history,
                           info.num_features);
  std::string line;
  bool quit = false;
  while (!quit && std::getline(std::cin, line)) {
    auto resp = HandleLine(line, server, state, &quit);
    if (resp) std::cout << *resp << "\n" << std::flush;
  }
}

void ServeConnection(int fd, serve::Server& server) {
  const serve::ServingInfo& info = server.info();
  serve::StreamState state(info.num_sensors, info.settings.history,
                           info.num_features);
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while (!quit && (pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      auto resp = HandleLine(line, server, state, &quit);
      if (resp) {
        std::string out = *resp + "\n";
        size_t written = 0;
        while (written < out.size()) {
          const ssize_t w =
              write(fd, out.data() + written, out.size() - written);
          if (w <= 0) {
            quit = true;
            break;
          }
          written += static_cast<size_t>(w);
        }
      }
    }
  }
  close(fd);
}

int ServeTcp(serve::Server& server, int port) {
  const int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket() failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 16) < 0) {
    std::cerr << "bind/listen on port " << port
              << " failed: " << std::strerror(errno) << "\n";
    close(listener);
    return 1;
  }
  std::cerr << "listening on 127.0.0.1:" << port << "\n";
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    connections.emplace_back([fd, &server] { ServeConnection(fd, server); });
  }
  for (std::thread& t : connections) t.join();
  close(listener);
  return 0;
}

int Serve(const Args& args) {
  serve::ServerOptions opts;
  opts.workers = args.workers;
  opts.batching.max_batch = args.max_batch;
  opts.batching.max_delay = std::chrono::microseconds(args.max_delay_us);
  opts.default_deadline = std::chrono::microseconds(args.deadline_us);
  if (!args.precision.empty()) {
    opts.session.precision = simd::ParsePrecision(args.precision);
  }
  serve::Server server(args.ckpt, opts);
  const serve::ServingInfo& info = server.info();
  std::cerr << "serving " << info.model << " (" << info.num_sensors
            << " sensors, H=" << info.settings.history
            << " -> U=" << info.settings.horizon << ") with "
            << args.workers << " worker(s), max batch " << args.max_batch
            << ", max delay " << args.max_delay_us << "us, precision "
            << simd::PrecisionName(opts.session.precision) << "\n";
  if (args.port > 0) return ServeTcp(server, args.port);
  ServeStdio(server);
  return 0;
}

}  // namespace
}  // namespace stwa

int main(int argc, char** argv) {
  stwa::Args args;
  if (!stwa::ParseArgs(argc, argv, &args)) {
    stwa::PrintUsage();
    return 2;
  }
  try {
    if (!args.train_demo_path.empty()) return stwa::TrainDemo(args);
    return stwa::Serve(args);
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
}
