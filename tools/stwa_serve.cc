// stwa_serve: line-protocol forecast server over a frozen checkpoint.
//
// Modes:
//   --train-demo <ckpt> [--epochs E]
//       Generate the tiny quickstart-like dataset, train ST-WA for E
//       epochs (default 2) and write a serving checkpoint — a
//       self-contained way to produce a checkpoint for smoke tests.
//   --ckpt <path> [--workers W] [--max-batch B] [--max-delay-us D]
//          [--deadline-us D] [--port P] [--precision fp32|bf16|int8]
//       Serve the checkpoint. Default transport is the line protocol on
//       stdin/stdout (see serve/protocol.h); --port instead listens on
//       TCP with one connection thread and one StreamState per client,
//       all sharing the batching server. --precision selects the weight
//       tier every worker session serves at (default: STWA_PRECISION,
//       falling back to fp32); activations stay fp32.

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/traffic_generator.h"
#include "demo_train.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stream_state.h"
#include "simd/lowp.h"

namespace stwa {
namespace {

struct Args {
  std::string train_demo_path;
  int epochs = 2;
  std::string ckpt;
  int workers = 1;
  int64_t max_batch = 8;
  int64_t max_delay_us = 2000;
  int64_t deadline_us = 1'000'000;
  int port = 0;            // 0 = stdin/stdout
  std::string precision;   // empty = STWA_PRECISION / fp32
};

void PrintUsage() {
  std::cerr <<
      "usage:\n"
      "  stwa_serve --train-demo <ckpt> [--epochs E]\n"
      "  stwa_serve --ckpt <path> [--workers W] [--max-batch B]\n"
      "             [--max-delay-us D] [--deadline-us D] [--port P]\n"
      "             [--precision fp32|bf16|int8]\n";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--train-demo") {
      if ((v = next_value(i)) == nullptr) return false;
      args->train_demo_path = v;
    } else if (flag == "--epochs") {
      if ((v = next_value(i)) == nullptr) return false;
      args->epochs = std::atoi(v);
    } else if (flag == "--ckpt") {
      if ((v = next_value(i)) == nullptr) return false;
      args->ckpt = v;
    } else if (flag == "--workers") {
      if ((v = next_value(i)) == nullptr) return false;
      args->workers = std::atoi(v);
    } else if (flag == "--max-batch") {
      if ((v = next_value(i)) == nullptr) return false;
      args->max_batch = std::atoll(v);
    } else if (flag == "--max-delay-us") {
      if ((v = next_value(i)) == nullptr) return false;
      args->max_delay_us = std::atoll(v);
    } else if (flag == "--deadline-us") {
      if ((v = next_value(i)) == nullptr) return false;
      args->deadline_us = std::atoll(v);
    } else if (flag == "--port") {
      if ((v = next_value(i)) == nullptr) return false;
      args->port = std::atoi(v);
    } else if (flag == "--precision") {
      if ((v = next_value(i)) == nullptr) return false;
      args->precision = v;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  return !args->train_demo_path.empty() || !args->ckpt.empty();
}

/// The demo dataset/model (tools/demo_train.h): small enough that two
/// epochs train in seconds, shaped like the quickstart.
int TrainDemo(const Args& args) {
  data::TrafficDataset dataset =
      data::GenerateTraffic(tools::DemoGeneratorOptions());
  tools::TrainDemoCheckpoint("ST-WA", dataset, args.epochs,
                             args.train_demo_path);
  return 0;
}

void ServeStdio(serve::Server& server) {
  serve::LineSession session(server);
  std::string line;
  bool quit = false;
  while (!quit && std::getline(std::cin, line)) {
    auto resp = session.Handle(line, &quit);
    if (resp) std::cout << *resp << "\n" << std::flush;
  }
}

void ServeConnection(int fd, serve::Server& server) {
  serve::LineSession session(server);
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while (!quit && (pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      auto resp = session.Handle(line, &quit);
      if (resp) {
        std::string out = *resp + "\n";
        size_t written = 0;
        while (written < out.size()) {
          const ssize_t w =
              write(fd, out.data() + written, out.size() - written);
          if (w <= 0) {
            quit = true;
            break;
          }
          written += static_cast<size_t>(w);
        }
      }
    }
  }
  close(fd);
}

int ServeTcp(serve::Server& server, int port) {
  const int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket() failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 16) < 0) {
    std::cerr << "bind/listen on port " << port
              << " failed: " << std::strerror(errno) << "\n";
    close(listener);
    return 1;
  }
  std::cerr << "listening on 127.0.0.1:" << port << "\n";
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    connections.emplace_back([fd, &server] { ServeConnection(fd, server); });
  }
  for (std::thread& t : connections) t.join();
  close(listener);
  return 0;
}

int Serve(const Args& args) {
  serve::ServerOptions opts;
  opts.workers = args.workers;
  opts.batching.max_batch = args.max_batch;
  opts.batching.max_delay = std::chrono::microseconds(args.max_delay_us);
  opts.default_deadline = std::chrono::microseconds(args.deadline_us);
  if (!args.precision.empty()) {
    opts.session.precision = simd::ParsePrecision(args.precision);
  }
  serve::Server server(args.ckpt, opts);
  const serve::ServingInfo& info = server.info();
  std::cerr << "serving " << info.model << " (" << info.num_sensors
            << " sensors, H=" << info.settings.history
            << " -> U=" << info.settings.horizon << ") with "
            << args.workers << " worker(s), max batch " << args.max_batch
            << ", max delay " << args.max_delay_us << "us, precision "
            << simd::PrecisionName(opts.session.precision) << "\n";
  if (args.port > 0) return ServeTcp(server, args.port);
  ServeStdio(server);
  return 0;
}

}  // namespace
}  // namespace stwa

int main(int argc, char** argv) {
  stwa::Args args;
  if (!stwa::ParseArgs(argc, argv, &args)) {
    stwa::PrintUsage();
    return 2;
  }
  try {
    if (!args.train_demo_path.empty()) return stwa::TrainDemo(args);
    return stwa::Serve(args);
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
}
