#include "demo_train.h"

#include <iostream>

#include "common/string_util.h"
#include "serve/checkpoint.h"

namespace stwa {
namespace tools {

data::GeneratorOptions DemoGeneratorOptions(const DemoTrainOptions& options) {
  data::GeneratorOptions gen;
  gen.name = options.dataset_name;
  gen.num_roads = options.num_roads;
  gen.sensors_per_road = options.sensors_per_road;
  gen.num_days = 4;
  gen.steps_per_day = 96;
  gen.seed = options.seed;
  gen.shift_step = options.shift_step;
  gen.shift_scale = options.shift_scale;
  gen.shift_ramp_steps = options.shift_ramp_steps;
  return gen;
}

baselines::ModelSettings DemoModelSettings() {
  baselines::ModelSettings settings;
  settings.history = 12;
  settings.horizon = 12;
  settings.d_model = 8;
  settings.window_sizes = {3, 2, 2};
  settings.latent_dim = 4;
  settings.predictor_hidden = 16;
  return settings;
}

train::TrainResult TrainDemoCheckpoint(const std::string& display_name,
                                       const data::TrafficDataset& dataset,
                                       int epochs, const std::string& path) {
  const baselines::ModelSettings settings = DemoModelSettings();
  auto model = baselines::MakeModel("ST-WA", dataset, settings);

  train::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 8;
  config.stride = 2;
  config.eval_stride = 4;
  train::Trainer trainer(dataset, settings.history, settings.horizon,
                         config);
  train::TrainResult result = trainer.Fit(*model);
  std::cerr << "trained " << display_name << " " << result.epochs_run
            << " epochs, test MAE " << FormatFloat(result.test.mae, 3)
            << "\n";

  serve::ServingInfo info;
  info.model = "ST-WA";
  info.settings = settings;
  info.num_sensors = dataset.num_sensors();
  info.num_features = dataset.num_features();
  info.scaler_mean = trainer.scaler().mean();
  info.scaler_std = trainer.scaler().stddev();
  serve::SaveServingCheckpoint(*model, info, path);
  std::cerr << "wrote serving checkpoint " << path << "\n";
  return result;
}

}  // namespace tools
}  // namespace stwa
