// stwa_fleet: multi-profile fleet serving node (src/fleet).
//
// Modes:
//   --train-demo <dir> [--epochs E]
//       Train two tiny city models (cityA: 4 sensors, cityB: 3 sensors)
//       and write <dir>/cityA.bin and <dir>/cityB.bin — self-contained
//       checkpoints for smoke tests and the CI fleet job.
//   --config <path> [--port P]
//       Serve the profiles in a fleet config file (fleet/config.h). The
//       default transport is the fleet line protocol on stdin/stdout
//       (fleet/protocol.h); --port listens on TCP with one connection
//       thread and one FleetLineSession per client, all sharing the node.
//
// Example config (two city profiles and a capped tenant):
//   profile cityA ckpt=demo/cityA.bin tiles=8 shards=2 workers=2
//   profile cityB ckpt=demo/cityB.bin tiles=4 shards=2 precision=bf16
//   quota free rate=100 burst=200

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "data/traffic_generator.h"
#include "demo_train.h"
#include "fleet/config.h"
#include "fleet/protocol.h"
#include "serve/checkpoint.h"

namespace stwa {
namespace {

struct Args {
  std::string train_demo_dir;
  int epochs = 2;
  std::string config;
  int port = 0;  // 0 = stdin/stdout
};

void PrintUsage() {
  std::cerr <<
      "usage:\n"
      "  stwa_fleet --train-demo <dir> [--epochs E]\n"
      "  stwa_fleet --config <path> [--port P]\n";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--train-demo") {
      if ((v = next_value(i)) == nullptr) return false;
      args->train_demo_dir = v;
    } else if (flag == "--epochs") {
      if ((v = next_value(i)) == nullptr) return false;
      args->epochs = std::atoi(v);
    } else if (flag == "--config") {
      if ((v = next_value(i)) == nullptr) return false;
      args->config = v;
    } else if (flag == "--port") {
      if ((v = next_value(i)) == nullptr) return false;
      args->port = std::atoi(v);
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  return !args->train_demo_dir.empty() || !args->config.empty();
}

/// Trains one tiny city model and writes a serving checkpoint
/// (tools/demo_train.h).
void TrainCity(const std::string& name, int64_t roads,
               int64_t sensors_per_road, uint64_t seed, int epochs,
               const std::string& path) {
  tools::DemoTrainOptions options;
  options.dataset_name = name;
  options.num_roads = roads;
  options.sensors_per_road = sensors_per_road;
  options.seed = seed;
  data::TrafficDataset dataset =
      data::GenerateTraffic(tools::DemoGeneratorOptions(options));
  tools::TrainDemoCheckpoint(name, dataset, epochs, path);
}

int TrainDemo(const Args& args) {
  ::mkdir(args.train_demo_dir.c_str(), 0755);  // ignore EEXIST
  TrainCity("cityA", 2, 2, 17, args.epochs,
            args.train_demo_dir + "/cityA.bin");
  TrainCity("cityB", 3, 1, 23, args.epochs,
            args.train_demo_dir + "/cityB.bin");
  return 0;
}

void ServeStdio(fleet::FleetNode& node) {
  fleet::FleetLineSession session(node);
  std::string line;
  bool quit = false;
  while (!quit && std::getline(std::cin, line)) {
    auto resp = session.Handle(line, &quit);
    if (resp) std::cout << *resp << "\n" << std::flush;
  }
}

void ServeConnection(int fd, fleet::FleetNode& node) {
  fleet::FleetLineSession session(node);
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while (!quit && (pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      auto resp = session.Handle(line, &quit);
      if (resp) {
        std::string out = *resp + "\n";
        size_t written = 0;
        while (written < out.size()) {
          const ssize_t w =
              write(fd, out.data() + written, out.size() - written);
          if (w <= 0) {
            quit = true;
            break;
          }
          written += static_cast<size_t>(w);
        }
      }
    }
  }
  close(fd);
}

int ServeTcp(fleet::FleetNode& node, int port) {
  const int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket() failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 16) < 0) {
    std::cerr << "bind/listen on port " << port
              << " failed: " << std::strerror(errno) << "\n";
    close(listener);
    return 1;
  }
  std::cerr << "listening on 127.0.0.1:" << port << "\n";
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    connections.emplace_back([fd, &node] { ServeConnection(fd, node); });
  }
  for (std::thread& t : connections) t.join();
  close(listener);
  return 0;
}

int Serve(const Args& args) {
  const fleet::FleetConfig config = fleet::LoadFleetConfig(args.config);
  fleet::FleetNode node(config);
  for (const auto& [name, profile] : node.registry().entries()) {
    const serve::ServingInfo info = profile->Info();
    std::cerr << "profile " << name << ": " << info.model << " gen="
              << profile->Version() << " ckpt_version=" << info.ckpt_version
              << ", " << profile->router().tiles() << " tiles x "
              << info.num_sensors << " sensors over "
              << profile->router().shards() << " shard(s), "
              << profile->config().workers << " worker(s)/shard, precision "
              << simd::PrecisionName(profile->config().precision) << "\n";
  }
  if (args.port > 0) return ServeTcp(node, args.port);
  ServeStdio(node);
  return 0;
}

}  // namespace
}  // namespace stwa

int main(int argc, char** argv) {
  stwa::Args args;
  if (!stwa::ParseArgs(argc, argv, &args)) {
    stwa::PrintUsage();
    return 2;
  }
  try {
    if (!args.train_demo_dir.empty()) return stwa::TrainDemo(args);
    return stwa::Serve(args);
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
}
