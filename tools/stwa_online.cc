// stwa_online: online continual learning demo over a serving checkpoint.
//
// Modes:
//   --train-demo <ckpt> [--epochs E]
//       Train the shared demo checkpoint (tools/demo_train.h) — byte
//       identical to `stwa_serve --train-demo` — as the frozen base the
//       run mode adapts.
//   --ckpt <path> [--rows R] [--shift-step S] [--shift-scale X]
//          [--shift-ramp N] [--emit-stride K] [--no-adapt] [--no-fleet]
//          [--publish <path>]
//       Replay the demo stream with a regime shift planted at row S
//       (RNG-free: pre-shift rows match the training distribution
//       exactly) through an online::OnlineLearner. Each row also feeds a
//       single-tile fleet::ModelProfile that keeps answering forecasts
//       throughout; every adaptation cycle publishes the adapted weights
//       (default <ckpt>.adapted) and hot-reloads the profile, so the
//       run demonstrates the full drift -> fine-tune -> zero-drop swap
//       path end to end.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "data/traffic_generator.h"
#include "demo_train.h"
#include "fleet/profile.h"
#include "online/adaptation.h"

namespace stwa {
namespace {

struct Args {
  std::string train_demo_path;
  int epochs = 2;
  std::string ckpt;
  int64_t rows = 384;
  int64_t shift_step = 192;
  float shift_scale = 1.5f;
  int64_t shift_ramp = 0;
  int64_t emit_stride = 1;
  bool adapt = true;
  bool fleet = true;
  std::string publish;
};

void PrintUsage() {
  std::cerr <<
      "usage:\n"
      "  stwa_online --train-demo <ckpt> [--epochs E]\n"
      "  stwa_online --ckpt <path> [--rows R] [--shift-step S]\n"
      "              [--shift-scale X] [--shift-ramp N] [--emit-stride K]\n"
      "              [--no-adapt] [--no-fleet] [--publish <path>]\n";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--train-demo") {
      if ((v = next_value(i)) == nullptr) return false;
      args->train_demo_path = v;
    } else if (flag == "--epochs") {
      if ((v = next_value(i)) == nullptr) return false;
      args->epochs = std::atoi(v);
    } else if (flag == "--ckpt") {
      if ((v = next_value(i)) == nullptr) return false;
      args->ckpt = v;
    } else if (flag == "--rows") {
      if ((v = next_value(i)) == nullptr) return false;
      args->rows = std::atoll(v);
    } else if (flag == "--shift-step") {
      if ((v = next_value(i)) == nullptr) return false;
      args->shift_step = std::atoll(v);
    } else if (flag == "--shift-scale") {
      if ((v = next_value(i)) == nullptr) return false;
      args->shift_scale = static_cast<float>(std::atof(v));
    } else if (flag == "--shift-ramp") {
      if ((v = next_value(i)) == nullptr) return false;
      args->shift_ramp = std::atoll(v);
    } else if (flag == "--emit-stride") {
      if ((v = next_value(i)) == nullptr) return false;
      args->emit_stride = std::atoll(v);
    } else if (flag == "--no-adapt") {
      args->adapt = false;
    } else if (flag == "--no-fleet") {
      args->fleet = false;
    } else if (flag == "--publish") {
      if ((v = next_value(i)) == nullptr) return false;
      args->publish = v;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  return !args->train_demo_path.empty() || !args->ckpt.empty();
}

int TrainDemo(const Args& args) {
  data::TrafficDataset dataset =
      data::GenerateTraffic(tools::DemoGeneratorOptions());
  tools::TrainDemoCheckpoint("ST-WA", dataset, args.epochs,
                             args.train_demo_path);
  return 0;
}

int Run(const Args& args) {
  // The drifted stream: the demo generator with a shift planted at
  // --shift-step. The generator seed matches the demo checkpoint, so the
  // shadow model sees its own training distribution until the shift.
  tools::DemoTrainOptions demo;
  demo.shift_step = args.shift_step;
  demo.shift_scale = args.shift_scale;
  demo.shift_ramp_steps = args.shift_ramp;
  data::ShiftSchedule schedule;
  const data::TrafficDataset stream =
      data::GenerateTraffic(tools::DemoGeneratorOptions(demo), &schedule);
  const int64_t rows = std::min(args.rows, stream.num_steps());
  const int64_t sensors = stream.num_sensors();

  online::OnlineConfig config;
  config.emit_stride = args.emit_stride;
  config.adapt_enabled = args.adapt;
  config.publish_path =
      args.publish.empty() ? args.ckpt + ".adapted" : args.publish;
  online::OnlineLearner learner(args.ckpt, config);
  std::cerr << "online " << learner.info().model << " ("
            << learner.info().num_sensors << " sensors, ckpt_version "
            << learner.info().ckpt_version << "), streaming " << rows
            << " rows, shift at " << args.shift_step << " x"
            << FormatFloat(args.shift_scale, 2)
            << (args.adapt ? "" : ", adaptation disabled") << "\n";

  std::unique_ptr<fleet::ModelProfile> profile;
  if (args.fleet) {
    fleet::FleetProfileConfig fc;
    fc.name = "online";
    fc.checkpoint = args.ckpt;
    profile = std::make_unique<fleet::ModelProfile>(fc);
  }

  std::vector<float> observation(static_cast<size_t>(sensors));
  int64_t forecasts = 0;
  for (int64_t t = 0; t < rows; ++t) {
    for (int64_t i = 0; i < sensors; ++i) {
      observation[static_cast<size_t>(i)] = stream.values({i, t, 0});
    }
    if (profile) {
      profile->PushTile(0, observation);
      if (profile->TileReady(0) && t % 4 == 0) {
        const serve::Response resp = profile->ForecastTile(0).get();
        if (resp.ok) ++forecasts;
      }
    }
    const int64_t triggers_before = learner.drift().triggers();
    const bool adapted = learner.Observe(observation);
    if (learner.drift().triggers() > triggers_before && !adapted) {
      std::cerr << "row " << t << ": drift detected (recent MAE "
                << FormatFloat(learner.drift().recent_mean(), 2)
                << " vs baseline "
                << FormatFloat(learner.drift().baseline_mean(), 2) << ")\n";
    }
    if (adapted) {
      std::cerr << "row " << t << ": adapted in "
                << FormatFloat(learner.stats().last_cycle_ms, 1)
                << " ms (" << learner.config().adapt_steps
                << " steps, final loss "
                << FormatFloat(learner.stats().last_final_loss, 4)
                << "), published ckpt_version "
                << learner.info().ckpt_version << "\n";
      if (profile) {
        const fleet::ReloadResult reload =
            profile->Reload(learner.publish_path());
        std::cerr << "row " << t << ": fleet reloaded to gen "
                  << reload.version << " (swap "
                  << FormatFloat(reload.swap_us, 0) << " us, drain "
                  << FormatFloat(reload.drain_us, 0) << " us)\n";
      }
    }
  }

  std::cerr << "planted events: " << schedule.events.size()
            << " (next after row " << rows << ": "
            << schedule.NextEventAfter(rows) << ")\n";
  std::cerr << "stream done: " << learner.rows_seen() << " rows, "
            << learner.replay().total_added() << " examples ("
            << learner.replay().evicted() << " evicted), "
            << learner.drift().triggers()
            << " drift event(s), " << learner.stats().cycles
            << " adaptation cycle(s), " << learner.stats().publishes
            << " publish(es)\n";
  if (profile) {
    const serve::ServerStats stats = profile->Stats();
    std::cerr << "fleet: gen " << profile->Version() << ", " << forecasts
              << " forecasts, " << stats.completed << " completed, "
              << stats.shed << " shed\n";
    if (stats.shed != 0) {
      std::cerr << "error: reloads dropped requests\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace stwa

int main(int argc, char** argv) {
  stwa::Args args;
  if (!stwa::ParseArgs(argc, argv, &args)) {
    stwa::PrintUsage();
    return 2;
  }
  try {
    if (!args.train_demo_path.empty()) return stwa::TrainDemo(args);
    return stwa::Run(args);
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
}
