# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autograd_test "/root/repo/build/tests/autograd_test")
set_tests_properties(autograd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(optim_test "/root/repo/build/tests/optim_test")
set_tests_properties(optim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(metrics_test "/root/repo/build/tests/metrics_test")
set_tests_properties(metrics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(train_test "/root/repo/build/tests/train_test")
set_tests_properties(train_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serialize_test "/root/repo/build/tests/serialize_test")
set_tests_properties(serialize_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
