file(REMOVE_RECURSE
  "CMakeFiles/train_test.dir/train_test.cc.o"
  "CMakeFiles/train_test.dir/train_test.cc.o.d"
  "train_test"
  "train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
