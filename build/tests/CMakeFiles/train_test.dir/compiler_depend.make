# Empty compiler generated dependencies file for train_test.
# This may be replaced when dependencies are built.
