# Empty dependencies file for stwa.
# This may be replaced when dependencies are built.
