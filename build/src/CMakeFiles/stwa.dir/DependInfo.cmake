
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/kmeans.cc" "src/CMakeFiles/stwa.dir/analysis/kmeans.cc.o" "gcc" "src/CMakeFiles/stwa.dir/analysis/kmeans.cc.o.d"
  "/root/repo/src/analysis/pca.cc" "src/CMakeFiles/stwa.dir/analysis/pca.cc.o" "gcc" "src/CMakeFiles/stwa.dir/analysis/pca.cc.o.d"
  "/root/repo/src/analysis/tsne.cc" "src/CMakeFiles/stwa.dir/analysis/tsne.cc.o" "gcc" "src/CMakeFiles/stwa.dir/analysis/tsne.cc.o.d"
  "/root/repo/src/autograd/gradcheck.cc" "src/CMakeFiles/stwa.dir/autograd/gradcheck.cc.o" "gcc" "src/CMakeFiles/stwa.dir/autograd/gradcheck.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/stwa.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/stwa.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/var.cc" "src/CMakeFiles/stwa.dir/autograd/var.cc.o" "gcc" "src/CMakeFiles/stwa.dir/autograd/var.cc.o.d"
  "/root/repo/src/baselines/agcrn.cc" "src/CMakeFiles/stwa.dir/baselines/agcrn.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/agcrn.cc.o.d"
  "/root/repo/src/baselines/astgnn.cc" "src/CMakeFiles/stwa.dir/baselines/astgnn.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/astgnn.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/CMakeFiles/stwa.dir/baselines/common.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/common.cc.o.d"
  "/root/repo/src/baselines/dcrnn.cc" "src/CMakeFiles/stwa.dir/baselines/dcrnn.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/dcrnn.cc.o.d"
  "/root/repo/src/baselines/enhancenet.cc" "src/CMakeFiles/stwa.dir/baselines/enhancenet.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/enhancenet.cc.o.d"
  "/root/repo/src/baselines/gwn.cc" "src/CMakeFiles/stwa.dir/baselines/gwn.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/gwn.cc.o.d"
  "/root/repo/src/baselines/longformer.cc" "src/CMakeFiles/stwa.dir/baselines/longformer.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/longformer.cc.o.d"
  "/root/repo/src/baselines/meta_lstm.cc" "src/CMakeFiles/stwa.dir/baselines/meta_lstm.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/meta_lstm.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/CMakeFiles/stwa.dir/baselines/registry.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/registry.cc.o.d"
  "/root/repo/src/baselines/stfgnn.cc" "src/CMakeFiles/stwa.dir/baselines/stfgnn.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/stfgnn.cc.o.d"
  "/root/repo/src/baselines/stg2seq.cc" "src/CMakeFiles/stwa.dir/baselines/stg2seq.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/stg2seq.cc.o.d"
  "/root/repo/src/baselines/stgcn.cc" "src/CMakeFiles/stwa.dir/baselines/stgcn.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/stgcn.cc.o.d"
  "/root/repo/src/baselines/stsgcn.cc" "src/CMakeFiles/stwa.dir/baselines/stsgcn.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/stsgcn.cc.o.d"
  "/root/repo/src/baselines/var.cc" "src/CMakeFiles/stwa.dir/baselines/var.cc.o" "gcc" "src/CMakeFiles/stwa.dir/baselines/var.cc.o.d"
  "/root/repo/src/common/check.cc" "src/CMakeFiles/stwa.dir/common/check.cc.o" "gcc" "src/CMakeFiles/stwa.dir/common/check.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/stwa.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/stwa.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/stwa.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/stwa.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/stwa.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/stwa.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/enhanced_models.cc" "src/CMakeFiles/stwa.dir/core/enhanced_models.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/enhanced_models.cc.o.d"
  "/root/repo/src/core/latent.cc" "src/CMakeFiles/stwa.dir/core/latent.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/latent.cc.o.d"
  "/root/repo/src/core/loss.cc" "src/CMakeFiles/stwa.dir/core/loss.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/loss.cc.o.d"
  "/root/repo/src/core/mc_forecast.cc" "src/CMakeFiles/stwa.dir/core/mc_forecast.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/mc_forecast.cc.o.d"
  "/root/repo/src/core/memory_model.cc" "src/CMakeFiles/stwa.dir/core/memory_model.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/memory_model.cc.o.d"
  "/root/repo/src/core/param_decoder.cc" "src/CMakeFiles/stwa.dir/core/param_decoder.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/param_decoder.cc.o.d"
  "/root/repo/src/core/proxy_aggregator.cc" "src/CMakeFiles/stwa.dir/core/proxy_aggregator.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/proxy_aggregator.cc.o.d"
  "/root/repo/src/core/sensor_attention.cc" "src/CMakeFiles/stwa.dir/core/sensor_attention.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/sensor_attention.cc.o.d"
  "/root/repo/src/core/stwa_model.cc" "src/CMakeFiles/stwa.dir/core/stwa_model.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/stwa_model.cc.o.d"
  "/root/repo/src/core/window_attention.cc" "src/CMakeFiles/stwa.dir/core/window_attention.cc.o" "gcc" "src/CMakeFiles/stwa.dir/core/window_attention.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/stwa.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/stwa.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/sampler.cc" "src/CMakeFiles/stwa.dir/data/sampler.cc.o" "gcc" "src/CMakeFiles/stwa.dir/data/sampler.cc.o.d"
  "/root/repo/src/data/scaler.cc" "src/CMakeFiles/stwa.dir/data/scaler.cc.o" "gcc" "src/CMakeFiles/stwa.dir/data/scaler.cc.o.d"
  "/root/repo/src/data/traffic_generator.cc" "src/CMakeFiles/stwa.dir/data/traffic_generator.cc.o" "gcc" "src/CMakeFiles/stwa.dir/data/traffic_generator.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/stwa.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/stwa.dir/graph/graph.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/stwa.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/stwa.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/stwa.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/stwa.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/stwa.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/stwa.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/CMakeFiles/stwa.dir/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/stwa.dir/nn/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/stwa.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/stwa.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/stwa.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/stwa.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/stwa.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/stwa.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/CMakeFiles/stwa.dir/nn/rnn.cc.o" "gcc" "src/CMakeFiles/stwa.dir/nn/rnn.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/stwa.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/stwa.dir/nn/serialize.cc.o.d"
  "/root/repo/src/optim/early_stopping.cc" "src/CMakeFiles/stwa.dir/optim/early_stopping.cc.o" "gcc" "src/CMakeFiles/stwa.dir/optim/early_stopping.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/stwa.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/stwa.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/stwa.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/stwa.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/stwa.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/stwa.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/train/grid_search.cc" "src/CMakeFiles/stwa.dir/train/grid_search.cc.o" "gcc" "src/CMakeFiles/stwa.dir/train/grid_search.cc.o.d"
  "/root/repo/src/train/table.cc" "src/CMakeFiles/stwa.dir/train/table.cc.o" "gcc" "src/CMakeFiles/stwa.dir/train/table.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/stwa.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/stwa.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
