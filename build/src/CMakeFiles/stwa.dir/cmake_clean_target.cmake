file(REMOVE_RECURSE
  "libstwa.a"
)
