# Empty dependencies file for bench_table13_proxies.
# This may be replaced when dependencies are built.
