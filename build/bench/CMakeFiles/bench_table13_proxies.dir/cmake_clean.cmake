file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_proxies.dir/bench_table13_proxies.cc.o"
  "CMakeFiles/bench_table13_proxies.dir/bench_table13_proxies.cc.o.d"
  "bench_table13_proxies"
  "bench_table13_proxies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_proxies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
