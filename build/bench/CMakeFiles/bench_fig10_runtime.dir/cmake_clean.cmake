file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_runtime.dir/bench_fig10_runtime.cc.o"
  "CMakeFiles/bench_fig10_runtime.dir/bench_fig10_runtime.cc.o.d"
  "bench_fig10_runtime"
  "bench_fig10_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
