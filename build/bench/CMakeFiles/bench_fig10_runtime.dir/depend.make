# Empty dependencies file for bench_fig10_runtime.
# This may be replaced when dependencies are built.
