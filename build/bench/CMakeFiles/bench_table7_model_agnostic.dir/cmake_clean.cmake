file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_model_agnostic.dir/bench_table7_model_agnostic.cc.o"
  "CMakeFiles/bench_table7_model_agnostic.dir/bench_table7_model_agnostic.cc.o.d"
  "bench_table7_model_agnostic"
  "bench_table7_model_agnostic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_model_agnostic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
