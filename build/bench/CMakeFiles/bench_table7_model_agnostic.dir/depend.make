# Empty dependencies file for bench_table7_model_agnostic.
# This may be replaced when dependencies are built.
