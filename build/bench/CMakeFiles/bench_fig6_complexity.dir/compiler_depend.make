# Empty compiler generated dependencies file for bench_fig6_complexity.
# This may be replaced when dependencies are built.
