file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_complexity.dir/bench_fig6_complexity.cc.o"
  "CMakeFiles/bench_fig6_complexity.dir/bench_fig6_complexity.cc.o.d"
  "bench_fig6_complexity"
  "bench_fig6_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
