file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_dataset.dir/bench_fig1_dataset.cc.o"
  "CMakeFiles/bench_fig1_dataset.dir/bench_fig1_dataset.cc.o.d"
  "bench_fig1_dataset"
  "bench_fig1_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
