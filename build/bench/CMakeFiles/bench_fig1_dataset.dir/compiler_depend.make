# Empty compiler generated dependencies file for bench_fig1_dataset.
# This may be replaced when dependencies are built.
