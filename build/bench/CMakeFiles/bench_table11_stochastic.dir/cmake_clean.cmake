file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_stochastic.dir/bench_table11_stochastic.cc.o"
  "CMakeFiles/bench_table11_stochastic.dir/bench_table11_stochastic.cc.o.d"
  "bench_table11_stochastic"
  "bench_table11_stochastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_stochastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
