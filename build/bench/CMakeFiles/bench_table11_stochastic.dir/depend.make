# Empty dependencies file for bench_table11_stochastic.
# This may be replaced when dependencies are built.
