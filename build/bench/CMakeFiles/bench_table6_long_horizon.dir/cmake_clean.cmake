file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_long_horizon.dir/bench_table6_long_horizon.cc.o"
  "CMakeFiles/bench_table6_long_horizon.dir/bench_table6_long_horizon.cc.o.d"
  "bench_table6_long_horizon"
  "bench_table6_long_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_long_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
