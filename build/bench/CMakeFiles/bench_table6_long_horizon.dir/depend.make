# Empty dependencies file for bench_table6_long_horizon.
# This may be replaced when dependencies are built.
