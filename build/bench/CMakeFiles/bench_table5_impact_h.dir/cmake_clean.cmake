file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_impact_h.dir/bench_table5_impact_h.cc.o"
  "CMakeFiles/bench_table5_impact_h.dir/bench_table5_impact_h.cc.o.d"
  "bench_table5_impact_h"
  "bench_table5_impact_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_impact_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
