# Empty dependencies file for bench_table5_impact_h.
# This may be replaced when dependencies are built.
