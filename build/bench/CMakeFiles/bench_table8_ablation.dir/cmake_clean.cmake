file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_ablation.dir/bench_table8_ablation.cc.o"
  "CMakeFiles/bench_table8_ablation.dir/bench_table8_ablation.cc.o.d"
  "bench_table8_ablation"
  "bench_table8_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
