# Empty dependencies file for bench_table8_ablation.
# This may be replaced when dependencies are built.
