file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tsne.dir/bench_fig9_tsne.cc.o"
  "CMakeFiles/bench_fig9_tsne.dir/bench_fig9_tsne.cc.o.d"
  "bench_fig9_tsne"
  "bench_fig9_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
