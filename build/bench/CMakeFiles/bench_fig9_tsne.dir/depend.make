# Empty dependencies file for bench_fig9_tsne.
# This may be replaced when dependencies are built.
