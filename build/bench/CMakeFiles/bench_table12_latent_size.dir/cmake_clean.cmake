file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_latent_size.dir/bench_table12_latent_size.cc.o"
  "CMakeFiles/bench_table12_latent_size.dir/bench_table12_latent_size.cc.o.d"
  "bench_table12_latent_size"
  "bench_table12_latent_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_latent_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
