# Empty compiler generated dependencies file for bench_table12_latent_size.
# This may be replaced when dependencies are built.
