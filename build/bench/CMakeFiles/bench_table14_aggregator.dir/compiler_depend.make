# Empty compiler generated dependencies file for bench_table14_aggregator.
# This may be replaced when dependencies are built.
