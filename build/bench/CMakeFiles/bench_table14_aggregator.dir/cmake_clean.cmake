file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_aggregator.dir/bench_table14_aggregator.cc.o"
  "CMakeFiles/bench_table14_aggregator.dir/bench_table14_aggregator.cc.o.d"
  "bench_table14_aggregator"
  "bench_table14_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
