# Empty dependencies file for bench_table9_window_size.
# This may be replaced when dependencies are built.
