file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_window_size.dir/bench_table9_window_size.cc.o"
  "CMakeFiles/bench_table9_window_size.dir/bench_table9_window_size.cc.o.d"
  "bench_table9_window_size"
  "bench_table9_window_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_window_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
