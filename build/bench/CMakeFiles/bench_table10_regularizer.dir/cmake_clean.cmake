file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_regularizer.dir/bench_table10_regularizer.cc.o"
  "CMakeFiles/bench_table10_regularizer.dir/bench_table10_regularizer.cc.o.d"
  "bench_table10_regularizer"
  "bench_table10_regularizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_regularizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
