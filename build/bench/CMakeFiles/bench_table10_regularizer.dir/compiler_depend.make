# Empty compiler generated dependencies file for bench_table10_regularizer.
# This may be replaced when dependencies are built.
