file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_ablations.dir/bench_extra_ablations.cc.o"
  "CMakeFiles/bench_extra_ablations.dir/bench_extra_ablations.cc.o.d"
  "bench_extra_ablations"
  "bench_extra_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
