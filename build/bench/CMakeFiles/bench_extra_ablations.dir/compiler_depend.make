# Empty compiler generated dependencies file for bench_extra_ablations.
# This may be replaced when dependencies are built.
