# Empty dependencies file for bench_table4_overall.
# This may be replaced when dependencies are built.
