file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_overall.dir/bench_table4_overall.cc.o"
  "CMakeFiles/bench_table4_overall.dir/bench_table4_overall.cc.o.d"
  "bench_table4_overall"
  "bench_table4_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
