file(REMOVE_RECURSE
  "CMakeFiles/uncertainty_and_tuning.dir/uncertainty_and_tuning.cpp.o"
  "CMakeFiles/uncertainty_and_tuning.dir/uncertainty_and_tuning.cpp.o.d"
  "uncertainty_and_tuning"
  "uncertainty_and_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertainty_and_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
