# Empty compiler generated dependencies file for uncertainty_and_tuning.
# This may be replaced when dependencies are built.
