# Empty compiler generated dependencies file for incident_analysis.
# This may be replaced when dependencies are built.
