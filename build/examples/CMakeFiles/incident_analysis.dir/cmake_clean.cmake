file(REMOVE_RECURSE
  "CMakeFiles/incident_analysis.dir/incident_analysis.cpp.o"
  "CMakeFiles/incident_analysis.dir/incident_analysis.cpp.o.d"
  "incident_analysis"
  "incident_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
