# Empty compiler generated dependencies file for enhance_your_model.
# This may be replaced when dependencies are built.
