file(REMOVE_RECURSE
  "CMakeFiles/enhance_your_model.dir/enhance_your_model.cpp.o"
  "CMakeFiles/enhance_your_model.dir/enhance_your_model.cpp.o.d"
  "enhance_your_model"
  "enhance_your_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhance_your_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
