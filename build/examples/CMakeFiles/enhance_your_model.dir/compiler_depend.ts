# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for enhance_your_model.
