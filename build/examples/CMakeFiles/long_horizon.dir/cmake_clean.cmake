file(REMOVE_RECURSE
  "CMakeFiles/long_horizon.dir/long_horizon.cpp.o"
  "CMakeFiles/long_horizon.dir/long_horizon.cpp.o.d"
  "long_horizon"
  "long_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
