# Empty compiler generated dependencies file for long_horizon.
# This may be replaced when dependencies are built.
