#include "online/replay_buffer.h"

#include <cstring>
#include <utility>

#include "common/check.h"

namespace stwa {
namespace online {

ReplayBuffer::ReplayBuffer(int64_t capacity) : capacity_(capacity) {
  STWA_CHECK(capacity_ > 0, "replay buffer capacity must be positive");
}

void ReplayBuffer::Add(Example example) {
  STWA_CHECK(example.x.rank() == 3 && example.y.rank() == 3,
             "replay example expects x [N, H, F] and y [N, U, F]");
  STWA_CHECK(example.x.dim(0) == example.y.dim(0) &&
                 example.x.dim(2) == example.y.dim(2),
             "replay example x/y sensor or feature count mismatch");
  if (!items_.empty()) {
    STWA_CHECK(example.x.shape() == items_.front().x.shape() &&
                   example.y.shape() == items_.front().y.shape(),
               "replay examples must share one shape; buffer holds ",
               ShapeToString(items_.front().x.shape()), ", got ",
               ShapeToString(example.x.shape()));
  }
  items_.push_back(std::move(example));
  ++total_added_;
  if (static_cast<int64_t>(items_.size()) > capacity_) items_.pop_front();
}

const Example& ReplayBuffer::at(int64_t i) const {
  STWA_CHECK(i >= 0 && i < size(), "replay index ", i, " out of range [0, ",
             size(), ")");
  return items_[static_cast<size_t>(i)];
}

std::vector<int64_t> ReplayBuffer::SampleIndices(int64_t count,
                                                 Rng& rng) const {
  STWA_CHECK(size() > 0, "cannot sample from an empty replay buffer");
  std::vector<int64_t> indices(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    indices[static_cast<size_t>(i)] = rng.UniformInt(size());
  }
  return indices;
}

void ReplayBuffer::MakeBatchInto(const std::vector<int64_t>& indices,
                                 const data::StandardScaler& scaler,
                                 data::Batch* out) const {
  STWA_CHECK(!indices.empty(), "empty replay batch");
  const int64_t batch = static_cast<int64_t>(indices.size());
  const Example& first = at(indices[0]);
  const int64_t sensors = first.x.dim(0);
  const int64_t history = first.x.dim(1);
  const int64_t horizon = first.y.dim(1);
  const int64_t features = first.x.dim(2);
  const Shape x_shape{batch, sensors, history, features};
  const Shape y_shape{batch, sensors, horizon, features};
  // Same staging-reuse rule as data::WindowSampler::MakeBatchInto: every
  // element is overwritten below.
  if (out->x.shape() != x_shape || out->x.use_count() != 1) {
    out->x = Tensor::Uninit(x_shape);
  }
  if (out->y.shape() != y_shape || out->y.use_count() != 1) {
    out->y = Tensor::Uninit(y_shape);
  }
  const float mean = scaler.mean();
  const float inv_std = 1.0f / scaler.stddev();
  float* xp = out->x.data();
  float* yp = out->y.data();
  const int64_t x_len = sensors * history * features;
  const int64_t y_len = sensors * horizon * features;
  for (int64_t b = 0; b < batch; ++b) {
    const Example& e = at(indices[static_cast<size_t>(b)]);
    const float* ex = e.x.data();
    const float* ey = e.y.data();
    for (int64_t k = 0; k < x_len; ++k) {
      xp[b * x_len + k] = (ex[k] - mean) * inv_std;
    }
    for (int64_t k = 0; k < y_len; ++k) {
      yp[b * y_len + k] = (ey[k] - mean) * inv_std;
    }
  }
}

ExampleAssembler::ExampleAssembler(int64_t num_sensors, int64_t history,
                                   int64_t horizon, int64_t features,
                                   int64_t emit_stride)
    : history_(history),
      horizon_(horizon),
      emit_stride_(emit_stride),
      ring_(num_sensors, history + horizon, features) {
  STWA_CHECK(history > 0 && horizon > 0, "history/horizon must be positive");
  STWA_CHECK(emit_stride > 0, "emit_stride must be positive");
}

bool ExampleAssembler::Push(const std::vector<float>& observation,
                            Example* out) {
  ring_.Push(observation);
  ++steps_;
  const int64_t window = history_ + horizon_;
  if (steps_ < window || (steps_ - window) % emit_stride_ != 0) {
    return false;
  }
  // The ring holds exactly the last H+U rows; split the oldest H into x
  // and the newest U into y.
  ring_.WindowInto(&window_);  // [1, N, H+U, F]
  const int64_t sensors = ring_.num_sensors();
  const int64_t features = ring_.features();
  Example example;
  example.x = Tensor::Uninit({sensors, history_, features});
  example.y = Tensor::Uninit({sensors, horizon_, features});
  example.anchor_step = steps_ - horizon_ - 1;
  const float* src = window_.data();
  for (int64_t i = 0; i < sensors; ++i) {
    std::memcpy(example.x.data() + i * history_ * features,
                src + i * window * features,
                sizeof(float) * static_cast<size_t>(history_ * features));
    std::memcpy(example.y.data() + i * horizon_ * features,
                src + (i * window + history_) * features,
                sizeof(float) * static_cast<size_t>(horizon_ * features));
  }
  *out = std::move(example);
  ++emitted_;
  return true;
}

}  // namespace online
}  // namespace stwa
