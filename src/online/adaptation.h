// Online continual learning: drift-triggered fine-tuning of a shadow
// model, published back through the serving-checkpoint hot-reload path.
//
// An OnlineLearner rebuilds its own ("shadow") copy of a serving
// checkpoint's model — the fleet keeps answering from the weights already
// deployed — and rides the live observation stream:
//
//   Observe(row)  -> ExampleAssembler cuts (history, horizon) examples
//                    out of a serve::StreamState ring;
//                 -> each example is probed (shadow forecast vs realised
//                    targets, raw-scale MAE) and fed to the DriftDetector,
//                    then stored in the bounded ReplayBuffer;
//                 -> when the detector trips and enough replay has
//                    accumulated, an adaptation cycle runs: adapt_steps
//                    pooled+planned train::StepEngine fine-tune steps on
//                    seeded replay batches, then the adapted weights are
//                    re-saved with SaveServingCheckpoint under a bumped
//                    ckpt_version.
//
// The caller (tools/stwa_online, bench/bench_online, a fleet operator)
// then calls fleet::ModelProfile::Reload(publish_path()) — the
// generation-swap drains in-flight requests, so the fleet picks up the
// adapted weights with zero drops. With adapt_enabled = false the learner
// still observes, probes and publishes on request, but never steps: the
// re-saved checkpoint is bit-identical in weights, which the tests use to
// prove the swap path itself perturbs nothing.
//
// Everything is deterministic in (checkpoint bytes, config, observation
// sequence): replay sampling is seeded, the engine steps are plan-replayed
// bit-identically, and thread count does not change a single output byte.

#ifndef STWA_ONLINE_ADAPTATION_H_
#define STWA_ONLINE_ADAPTATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/scaler.h"
#include "online/drift_detector.h"
#include "online/replay_buffer.h"
#include "serve/checkpoint.h"
#include "train/step_engine.h"

namespace stwa {
namespace online {

/// Knobs of one online learner.
struct OnlineConfig {
  /// Examples kept for fine-tuning (strict FIFO beyond this).
  int64_t replay_capacity = 256;
  /// Harvest one example every this many observation rows.
  int64_t emit_stride = 1;
  /// Drift thresholds (drift_detector.h).
  DriftConfig drift;
  /// Master switch: false = observe and probe but never fine-tune.
  bool adapt_enabled = true;
  /// StepEngine updates per adaptation cycle.
  int64_t adapt_steps = 24;
  /// Replay examples per fine-tune batch.
  int64_t adapt_batch_size = 8;
  /// Fine-tune learning rate (fresh Adam state per learner, not per
  /// cycle; typically below the offline rate to stay near the optimum).
  float adapt_lr = 5e-4f;
  /// Replay examples required before a cycle may run.
  int64_t min_examples = 16;
  /// Observation rows between cycles (lets the detector re-baseline on
  /// post-adapt errors before it can trip again).
  int64_t cooldown_rows = 64;
  /// Seed of the replay-sampling stream.
  uint64_t seed = 7;
  /// Plan mode forwarded to the StepEngine (train/step_engine.h).
  int use_plan = -1;
  /// Where adapted checkpoints are re-saved; empty = overwrite the source
  /// checkpoint (the usual fleet arrangement: Reload re-reads the path it
  /// already serves).
  std::string publish_path;
};

/// Counters and timings of the adaptation cycles run so far.
struct AdaptStats {
  /// Completed fine-tune-and-publish cycles.
  int64_t cycles = 0;
  /// StepEngine updates summed over all cycles.
  int64_t fine_tune_steps = 0;
  /// Checkpoints written (cycles + explicit Publish() calls).
  int64_t publishes = 0;
  /// Wall time of the latest cycle, fine-tune through publish.
  double last_cycle_ms = 0.0;
  /// Wall time summed over all cycles.
  double total_ms = 0.0;
  /// Training loss of the last fine-tune step of the latest cycle.
  float last_final_loss = 0.0f;
};

/// Shadow-model continual learner over one serving checkpoint.
class OnlineLearner {
 public:
  /// Rebuilds the checkpoint's model from metadata alone (same
  /// dataset-free family as serve::InferenceSession::Open) and loads its
  /// weights as the shadow copy. Throws on graph-conv baselines or a bad
  /// file.
  OnlineLearner(const std::string& checkpoint_path, OnlineConfig config);

  /// Feeds one raw [N, F] observation row. When the row completes a
  /// (history, horizon) example the shadow model is probed and the replay
  /// buffer extended; when the drift detector is tripped and the cycle
  /// conditions hold (adapt_enabled, min_examples, cooldown) an
  /// adaptation cycle runs inline. Returns true when this row triggered
  /// a completed cycle.
  bool Observe(const std::vector<float>& observation);

  /// Runs one adaptation cycle now, ignoring the drift flag (still
  /// requires adapt_enabled and min_examples; returns false otherwise).
  bool Adapt();

  /// Re-saves the shadow weights under a bumped ckpt_version without any
  /// fine-tune step — the zero-delta publish the swap-path tests use.
  void Publish();

  /// Raw-scale MAE of the shadow model on one example (the probe).
  float ProbeError(const Example& example);

  const serve::ServingInfo& info() const { return info_; }
  const std::string& publish_path() const { return publish_path_; }
  const OnlineConfig& config() const { return config_; }
  const ReplayBuffer& replay() const { return replay_; }
  const DriftDetector& drift() const { return drift_; }
  const AdaptStats& stats() const { return stats_; }
  train::StepEngine& engine() { return *engine_; }

  /// Observation rows consumed.
  int64_t rows_seen() const { return assembler_.steps_seen(); }

  /// Probe error of the most recent example (-1 before the first).
  float last_probe_error() const { return last_probe_error_; }

 private:
  /// The fine-tune loop shared by Observe-triggered and forced cycles.
  void RunCycle();

  OnlineConfig config_;
  std::string publish_path_;
  serve::ServingInfo info_;
  data::StandardScaler scaler_;
  /// Shadow model: this learner's private copy of the checkpoint weights.
  std::unique_ptr<train::ForecastModel> model_;
  std::unique_ptr<train::StepEngine> engine_;
  ExampleAssembler assembler_;
  ReplayBuffer replay_;
  DriftDetector drift_;
  Rng sample_rng_;
  AdaptStats stats_;
  int64_t last_cycle_row_ = -1;
  float last_probe_error_ = -1.0f;
  /// Staging recycled across probes / fine-tune batches.
  Tensor probe_x_;
  data::Batch adapt_batch_;
};

}  // namespace online
}  // namespace stwa

#endif  // STWA_ONLINE_ADAPTATION_H_
