#include "online/adaptation.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "nn/serialize.h"
#include "serve/inference_session.h"

namespace stwa {
namespace online {

OnlineLearner::OnlineLearner(const std::string& checkpoint_path,
                             OnlineConfig config)
    : config_(std::move(config)),
      publish_path_(config_.publish_path.empty() ? checkpoint_path
                                                 : config_.publish_path),
      info_(serve::ReadServingInfo(checkpoint_path)),
      scaler_(info_.scaler_mean, info_.scaler_std),
      assembler_(info_.num_sensors, info_.settings.history,
                 info_.settings.horizon, info_.num_features,
                 config_.emit_stride),
      replay_(config_.replay_capacity),
      drift_(config_.drift),
      sample_rng_(config_.seed) {
  STWA_CHECK(serve::DatasetFreeModel(info_.model), "model '", info_.model,
             "' needs its training dataset to rebuild graph supports; "
             "online adaptation supports metadata-rebuildable models only");
  STWA_CHECK(config_.adapt_steps > 0 && config_.adapt_batch_size > 0 &&
                 config_.min_examples > 0,
             "invalid adaptation cycle parameters");
  model_ = baselines::MakeModel(info_.model, serve::StubDataset(info_),
                                info_.settings);
  nn::LoadParameters(*model_, checkpoint_path);
  train::StepEngineConfig engine_config;
  engine_config.lr = config_.adapt_lr;
  engine_config.use_plan = config_.use_plan;
  engine_ = std::make_unique<train::StepEngine>(*model_, engine_config);
}

float OnlineLearner::ProbeError(const Example& example) {
  const Shape x_shape{1, example.x.dim(0), example.x.dim(1),
                      example.x.dim(2)};
  if (probe_x_.shape() != x_shape || probe_x_.use_count() != 1) {
    probe_x_ = Tensor::Uninit(x_shape);
  }
  const float mean = scaler_.mean();
  const float stddev = scaler_.stddev();
  const float inv_std = 1.0f / stddev;
  const float* xp = example.x.data();
  float* sp = probe_x_.data();
  for (int64_t k = 0; k < example.x.size(); ++k) {
    sp[k] = (xp[k] - mean) * inv_std;
  }
  const Tensor pred = engine_->Predict(probe_x_);  // [1, N, U, F] normalised
  STWA_CHECK(pred.size() == example.y.size(),
             "probe forecast size mismatch: ", ShapeToString(pred.shape()),
             " vs target ", ShapeToString(example.y.shape()));
  const float* pp = pred.data();
  const float* yp = example.y.data();
  double abs_sum = 0.0;
  for (int64_t k = 0; k < example.y.size(); ++k) {
    abs_sum += std::abs(pp[k] * stddev + mean - yp[k]);
  }
  return static_cast<float>(abs_sum / static_cast<double>(example.y.size()));
}

bool OnlineLearner::Observe(const std::vector<float>& observation) {
  Example example;
  if (!assembler_.Push(observation, &example)) return false;
  last_probe_error_ = ProbeError(example);
  drift_.AddError(last_probe_error_);
  replay_.Add(std::move(example));
  if (!config_.adapt_enabled || !drift_.drifted()) return false;
  if (replay_.size() < config_.min_examples) return false;
  if (last_cycle_row_ >= 0 &&
      rows_seen() - last_cycle_row_ < config_.cooldown_rows) {
    return false;
  }
  RunCycle();
  return true;
}

bool OnlineLearner::Adapt() {
  if (!config_.adapt_enabled || replay_.size() < config_.min_examples) {
    return false;
  }
  RunCycle();
  return true;
}

void OnlineLearner::RunCycle() {
  Stopwatch timer;
  for (int64_t s = 0; s < config_.adapt_steps; ++s) {
    const std::vector<int64_t> indices =
        replay_.SampleIndices(config_.adapt_batch_size, sample_rng_);
    replay_.MakeBatchInto(indices, scaler_, &adapt_batch_);
    stats_.last_final_loss = engine_->Step(adapt_batch_);
  }
  Publish();
  // Rebuild the drift baseline from post-adapt errors; without the reset
  // the sticky flag would re-trigger a cycle every cooldown window.
  drift_.Reset();
  last_cycle_row_ = rows_seen();
  stats_.cycles += 1;
  stats_.fine_tune_steps += config_.adapt_steps;
  stats_.last_cycle_ms = timer.ElapsedMillis();
  stats_.total_ms += stats_.last_cycle_ms;
}

void OnlineLearner::Publish() {
  ++info_.ckpt_version;
  serve::SaveServingCheckpoint(*model_, info_, publish_path_);
  ++stats_.publishes;
}

}  // namespace online
}  // namespace stwa
