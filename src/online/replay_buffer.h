// Bounded replay storage for online continual learning.
//
// The live stream arrives one [N, F] observation row at a time (the same
// rows the serving layer pushes into its StreamState rings). The
// ExampleAssembler rides a serve::StreamState ring of depth H+U and, once
// warm, cuts a complete (history, horizon) training example out of it
// every emit_stride steps. Examples land in a ReplayBuffer — a bounded
// FIFO the adaptation loop samples fine-tune batches from, so a burst of
// drifted data is learned from repeatedly while memory stays fixed.
// Everything here is deterministic in the pushed sequence: eviction is
// strict FIFO, sampling is seeded, and batch assembly writes every byte
// it returns.

#ifndef STWA_ONLINE_REPLAY_BUFFER_H_
#define STWA_ONLINE_REPLAY_BUFFER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "data/sampler.h"
#include "data/scaler.h"
#include "serve/stream_state.h"
#include "tensor/tensor.h"

namespace stwa {
namespace online {

/// One harvested training example, raw scale.
struct Example {
  /// Input window [N, H, F].
  Tensor x;
  /// Target window [N, U, F].
  Tensor y;
  /// Stream step of the window anchor (x ends at this step, 0-based), so
  /// tests can assert exactly which slice of the stream was harvested.
  int64_t anchor_step = 0;
};

/// Bounded FIFO of training examples.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(int64_t capacity);

  /// Appends an example, evicting the oldest when full.
  void Add(Example example);

  /// Examples currently held.
  int64_t size() const { return static_cast<int64_t>(items_.size()); }

  /// Examples ever added (size() + evictions).
  int64_t total_added() const { return total_added_; }

  /// Examples evicted so far.
  int64_t evicted() const { return total_added_ - size(); }

  int64_t capacity() const { return capacity_; }

  /// Example `i`, 0 = oldest surviving.
  const Example& at(int64_t i) const;

  /// `count` uniform indices into the buffer (with replacement), drawn
  /// deterministically from `rng`.
  std::vector<int64_t> SampleIndices(int64_t count, Rng& rng) const;

  /// Builds a normalised training batch (x and y both z-scored with
  /// `scaler`, matching the offline Trainer convention) from `indices`,
  /// recycling `out`'s staging buffers when exclusively held.
  void MakeBatchInto(const std::vector<int64_t>& indices,
                     const data::StandardScaler& scaler,
                     data::Batch* out) const;

 private:
  int64_t capacity_;
  int64_t total_added_ = 0;
  std::deque<Example> items_;
};

/// Cuts (history, horizon) examples from a live observation stream via a
/// serve::StreamState ring of depth history + horizon.
class ExampleAssembler {
 public:
  ExampleAssembler(int64_t num_sensors, int64_t history, int64_t horizon,
                   int64_t features = 1, int64_t emit_stride = 1);

  /// Pushes one [N, F] observation row (raw scale). Returns true when a
  /// complete example was emitted into `*out`: the first once
  /// history + horizon rows have arrived, then every emit_stride rows.
  bool Push(const std::vector<float>& observation, Example* out);

  /// Rows pushed so far.
  int64_t steps_seen() const { return steps_; }

  /// Examples emitted so far.
  int64_t emitted() const { return emitted_; }

  const serve::StreamState& ring() const { return ring_; }

 private:
  int64_t history_;
  int64_t horizon_;
  int64_t emit_stride_;
  int64_t steps_ = 0;
  int64_t emitted_ = 0;
  serve::StreamState ring_;
  /// Staging for ring windows, recycled across emits.
  Tensor window_;
};

}  // namespace online
}  // namespace stwa

#endif  // STWA_ONLINE_REPLAY_BUFFER_H_
