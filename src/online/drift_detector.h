// Rolling-statistics drift detection over live forecast errors.
//
// The online learner probes its shadow model against every harvested
// example and feeds the raw-scale MAE here. The detector keeps the last
// baseline_window + recent_window errors; once full, it compares the
// newest recent_window errors against the baseline_window errors that
// preceded them and declares drift when the recent mean exceeds the
// baseline by both a sigma margin (robust to noisy streams) and a
// relative margin (robust to near-zero baseline variance). The flag is
// sticky: it stays raised until Reset(), which the learner calls after an
// adaptation cycle so the baseline rebuilds from post-adapt errors.
// Fully deterministic in the error sequence.

#ifndef STWA_ONLINE_DRIFT_DETECTOR_H_
#define STWA_ONLINE_DRIFT_DETECTOR_H_

#include <cstdint>
#include <deque>

namespace stwa {
namespace online {

/// Detection thresholds. Defaults suit the demo streams (errors arrive
/// once per emitted example, i.e. every emit_stride observation rows).
struct DriftConfig {
  /// Reference errors preceding the window under test.
  int64_t baseline_window = 48;
  /// Newest errors tested against the baseline.
  int64_t recent_window = 12;
  /// Trigger needs recent_mean > baseline_mean + this * baseline_std ...
  float sigma_threshold = 3.0f;
  /// ... and recent_mean > baseline_mean * (1 + this).
  float min_rel_increase = 0.25f;
};

/// Sticky threshold detector over a rolling error window.
class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig config = DriftConfig());

  /// Records one forecast error. Returns true when this observation
  /// newly raised the drift flag.
  bool AddError(float error);

  /// Sticky drift flag.
  bool drifted() const { return drifted_; }

  /// Clears the window and the flag (post-adaptation restart).
  void Reset();

  /// Errors recorded since construction / the last Reset().
  int64_t observed() const { return observed_; }

  /// Times the flag was raised over the detector's lifetime (not cleared
  /// by Reset — the drift-event count of the whole run).
  int64_t triggers() const { return triggers_; }

  /// True once the window holds baseline_window + recent_window errors
  /// (the trigger condition is only evaluated when warm).
  bool warm() const;

  /// Rolling statistics of the current window (0 until warm).
  float baseline_mean() const { return baseline_mean_; }
  float baseline_std() const { return baseline_std_; }
  float recent_mean() const { return recent_mean_; }

  const DriftConfig& config() const { return config_; }

 private:
  void RecomputeStats();

  DriftConfig config_;
  /// Newest error at the back; at most baseline_window + recent_window.
  std::deque<float> window_;
  int64_t observed_ = 0;
  int64_t triggers_ = 0;
  bool drifted_ = false;
  float baseline_mean_ = 0.0f;
  float baseline_std_ = 0.0f;
  float recent_mean_ = 0.0f;
};

}  // namespace online
}  // namespace stwa

#endif  // STWA_ONLINE_DRIFT_DETECTOR_H_
