#include "online/drift_detector.h"

#include <cmath>

#include "common/check.h"

namespace stwa {
namespace online {

DriftDetector::DriftDetector(DriftConfig config) : config_(config) {
  STWA_CHECK(config_.baseline_window > 1 && config_.recent_window > 0,
             "drift windows must hold at least 2 baseline / 1 recent errors");
  STWA_CHECK(config_.sigma_threshold >= 0.0f &&
                 config_.min_rel_increase >= 0.0f,
             "drift thresholds must be non-negative");
}

bool DriftDetector::warm() const {
  return static_cast<int64_t>(window_.size()) ==
         config_.baseline_window + config_.recent_window;
}

void DriftDetector::Reset() {
  window_.clear();
  observed_ = 0;
  drifted_ = false;
  baseline_mean_ = 0.0f;
  baseline_std_ = 0.0f;
  recent_mean_ = 0.0f;
}

void DriftDetector::RecomputeStats() {
  const int64_t base_n = config_.baseline_window;
  double base_sum = 0.0;
  double base_sq = 0.0;
  for (int64_t i = 0; i < base_n; ++i) {
    const double e = window_[static_cast<size_t>(i)];
    base_sum += e;
    base_sq += e * e;
  }
  const double base_mean = base_sum / static_cast<double>(base_n);
  const double var =
      base_sq / static_cast<double>(base_n) - base_mean * base_mean;
  baseline_mean_ = static_cast<float>(base_mean);
  baseline_std_ = static_cast<float>(std::sqrt(var > 0.0 ? var : 0.0));

  double recent_sum = 0.0;
  for (int64_t i = base_n;
       i < base_n + config_.recent_window; ++i) {
    recent_sum += window_[static_cast<size_t>(i)];
  }
  recent_mean_ =
      static_cast<float>(recent_sum / static_cast<double>(config_.recent_window));
}

bool DriftDetector::AddError(float error) {
  window_.push_back(error);
  ++observed_;
  const int64_t full = config_.baseline_window + config_.recent_window;
  if (static_cast<int64_t>(window_.size()) > full) window_.pop_front();
  if (static_cast<int64_t>(window_.size()) < full) return false;
  RecomputeStats();
  if (drifted_) return false;
  const bool sigma_hit =
      recent_mean_ >
      baseline_mean_ + config_.sigma_threshold * baseline_std_;
  const bool rel_hit =
      recent_mean_ > baseline_mean_ * (1.0f + config_.min_rel_increase);
  if (sigma_hit && rel_hit) {
    drifted_ = true;
    ++triggers_;
    return true;
  }
  return false;
}

}  // namespace online
}  // namespace stwa
