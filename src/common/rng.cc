#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace stwa {

Rng::Rng(uint64_t seed) : state_(seed) {
  // Warm up so that small seeds diverge quickly.
  NextU64();
  NextU64();
}

uint64_t Rng::NextU64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

float Rng::Uniform() {
  // 24 high-quality bits → float in [0, 1).
  return static_cast<float>(NextU64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::Uniform(float lo, float hi) { return lo + (hi - lo) * Uniform(); }

float Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on (0,1] uniforms to avoid log(0).
  float u1 = 1.0f - Uniform();
  float u2 = Uniform();
  float r = std::sqrt(-2.0f * std::log(u1));
  float theta = 2.0f * std::numbers::pi_v<float> * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::Normal(float mean, float stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::UniformInt(int64_t n) {
  STWA_CHECK(n > 0, "UniformInt requires n > 0, got ", n);
  // Rejection-free modulo is fine for our n << 2^64 use cases.
  return static_cast<int64_t>(NextU64() % static_cast<uint64_t>(n));
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    int64_t j = UniformInt(i + 1);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng& GlobalRng() {
  static Rng rng(0x5eed5eed5eed5eedULL);
  return rng;
}

void SetGlobalSeed(uint64_t seed) { GlobalRng() = Rng(seed); }

}  // namespace stwa
