// Small string helpers shared by the data loaders and the table printers.

#ifndef STWA_COMMON_STRING_UTIL_H_
#define STWA_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace stwa {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Formats a float with `decimals` fractional digits (fixed notation).
std::string FormatFloat(double value, int decimals = 2);

/// Reads an environment variable, returning `fallback` when unset/empty.
std::string GetEnvOr(const std::string& name, const std::string& fallback);

/// Reads an integer environment variable, returning `fallback` when
/// unset/empty or unparsable.
int64_t GetEnvIntOr(const std::string& name, int64_t fallback);

}  // namespace stwa

#endif  // STWA_COMMON_STRING_UTIL_H_
