#include "common/stopwatch.h"

namespace stwa {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Stopwatch::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

}  // namespace stwa
