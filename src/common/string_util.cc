#include "common/string_util.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace stwa {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream iss(s);
  while (std::getline(iss, field, delim)) out.push_back(field);
  if (!s.empty() && s.back() == delim) out.push_back("");
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatFloat(double value, int decimals) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(decimals);
  oss << value;
  return oss.str();
}

std::string GetEnvOr(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

int64_t GetEnvIntOr(const std::string& name, int64_t fallback) {
  std::string value = GetEnvOr(name, "");
  if (value.empty()) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return fallback;
  return static_cast<int64_t>(parsed);
}

}  // namespace stwa
