// Deterministic random number generation.
//
// All randomness in the library flows through explicit Rng instances (or the
// seedable global instance) so every experiment is reproducible bit-for-bit.

#ifndef STWA_COMMON_RNG_H_
#define STWA_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace stwa {

/// SplitMix64-based pseudo random generator with helpers for the
/// distributions used across the library (uniform, normal via Box-Muller,
/// integer ranges, permutations). Cheap to copy; fully deterministic from
/// its seed.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform float in [0, 1).
  float Uniform();

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  /// Standard normal via Box-Muller (caches the second sample).
  float Normal();

  /// Normal with the given mean and standard deviation.
  float Normal(float mean, float stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<int64_t> Permutation(int64_t n);

  /// Derives an independent child generator; used to give each module its
  /// own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

/// Returns the process-wide default generator (used by module initialisers
/// when no explicit Rng is supplied).
Rng& GlobalRng();

/// Reseeds the global generator; call at the start of every experiment.
void SetGlobalSeed(uint64_t seed);

}  // namespace stwa

#endif  // STWA_COMMON_RNG_H_
