#include "common/check.h"

namespace stwa {
namespace detail {

void CheckFail(const char* expr, const char* file, int line,
               const std::string& message) {
  std::ostringstream oss;
  oss << "STWA_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw Error(oss.str());
}

}  // namespace detail
}  // namespace stwa
