// Wall-clock timing helper used by the trainer and the benchmark harness.

#ifndef STWA_COMMON_STOPWATCH_H_
#define STWA_COMMON_STOPWATCH_H_

#include <chrono>

namespace stwa {

/// Monotonic stopwatch. Starts on construction; Elapsed* report time since
/// construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch();

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since start.
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since start.
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace stwa

#endif  // STWA_COMMON_STOPWATCH_H_
