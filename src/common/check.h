// Error handling primitives for the ST-WA library.
//
// API misuse (shape mismatches, invalid configuration, out-of-range access)
// throws stwa::Error via the STWA_CHECK family so that tests can assert on
// failures with EXPECT_THROW and applications can recover cleanly.

#ifndef STWA_COMMON_CHECK_H_
#define STWA_COMMON_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace stwa {

/// Exception type thrown for all precondition and invariant violations in
/// the library. Carries a human-readable message including the failing
/// expression and source location.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Concatenates a heterogeneous argument pack into a string using
/// operator<<. Used by the STWA_CHECK macros to build messages lazily.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Throws stwa::Error with a formatted message. Never returns.
[[noreturn]] void CheckFail(const char* expr, const char* file, int line,
                            const std::string& message);

}  // namespace detail
}  // namespace stwa

/// Checks a precondition; on failure throws stwa::Error with the expression,
/// source location and an optional message built from the remaining
/// arguments, e.g. STWA_CHECK(a == b, "a=", a, " b=", b).
#define STWA_CHECK(cond, ...)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::stwa::detail::CheckFail(#cond, __FILE__, __LINE__,          \
                                ::stwa::detail::StrCat(__VA_ARGS__)); \
    }                                                               \
  } while (false)

/// Unconditional failure; used for unreachable switch arms.
#define STWA_FAIL(...)                                            \
  ::stwa::detail::CheckFail("failure", __FILE__, __LINE__,        \
                            ::stwa::detail::StrCat(__VA_ARGS__))

#endif  // STWA_COMMON_CHECK_H_
