#include "ir/capture.h"

#include "common/check.h"

namespace stwa {
namespace ir {
namespace {

struct Recorder {
  bool active = false;
  std::vector<std::shared_ptr<ag::Node>> nodes;
};

Recorder& ThreadRecorder() {
  static thread_local Recorder recorder;
  return recorder;
}

}  // namespace

bool CaptureActive() { return ThreadRecorder().active; }

void CaptureRecord(const std::shared_ptr<ag::Node>& node) {
  Recorder& r = ThreadRecorder();
  if (r.active) r.nodes.push_back(node);
}

namespace detail {

void BeginCapture() {
  Recorder& r = ThreadRecorder();
  STWA_CHECK(!r.active, "graph captures do not nest");
  r.active = true;
  r.nodes.clear();
}

std::vector<std::shared_ptr<ag::Node>> EndCapture() {
  Recorder& r = ThreadRecorder();
  STWA_CHECK(r.active, "EndCapture without an active capture");
  r.active = false;
  return std::move(r.nodes);
}

}  // namespace detail

}  // namespace ir
}  // namespace stwa
