#include "ir/registry.h"

#include <array>
#include <cmath>
#include <memory>

#include "autograd/ops.h"
#include "common/check.h"
#include "common/rng.h"
#include "simd/vec_math.h"
#include "tensor/fused_ops.h"
#include "tensor/ops.h"

namespace stwa {
namespace ir {
namespace {

using ag::Node;
using ag::NodePtr;
using ag::Var;
using simd::Vec;

// --- Vectorized backward functors ----------------------------------------
// Dual-overload functors: the templated UnaryMap/BinaryMap kernels pick
// the Vec overload when SIMD is enabled (simd::kIsVecUnary/kIsVecBinary)
// and the scalar overload — the legacy lambda expression verbatim —
// otherwise, so the STWA_NO_SIMD build stays bit-identical to the
// pre-SIMD library.

struct BwdSqrtFn {
  float operator()(float g, float v) const { return 0.5f * g / v; }
  Vec operator()(Vec g, Vec v) const { return Vec::Broadcast(0.5f) * g / v; }
};

struct BwdSquareFn {
  float operator()(float g, float x) const { return g * 2.0f * x; }
  Vec operator()(Vec g, Vec x) const { return g * Vec::Broadcast(2.0f) * x; }
};

struct BwdAbsFn {
  float operator()(float g, float x) const {
    return x > 0.0f ? g : (x < 0.0f ? -g : 0.0f);
  }
  Vec operator()(Vec g, Vec x) const {
    const Vec z = Vec::Zero();
    return Vec::Select(Vec::CmpGt(x, z), g,
                       Vec::Select(Vec::CmpGt(z, x), z - g, z));
  }
};

struct BwdTanhFn {
  float operator()(float g, float v) const { return g * (1.0f - v * v); }
  Vec operator()(Vec g, Vec v) const {
    return g * (Vec::Broadcast(1.0f) - v * v);
  }
};

struct BwdSigmoidFn {
  float operator()(float g, float v) const { return g * v * (1.0f - v); }
  Vec operator()(Vec g, Vec v) const {
    return g * v * (Vec::Broadcast(1.0f) - v);
  }
};

struct BwdReluFn {
  float operator()(float g, float x) const { return x > 0.0f ? g : 0.0f; }
  Vec operator()(Vec g, Vec x) const {
    return Vec::Select(Vec::CmpGt(x, Vec::Zero()), g, Vec::Zero());
  }
};

/// Huber value: 0.5 e^2 inside |e| <= delta, linear outside.
struct FwdHuberFn {
  float delta;
  float operator()(float e) const {
    const float a = std::fabs(e);
    return a <= delta ? 0.5f * e * e : delta * (a - 0.5f * delta);
  }
  Vec operator()(Vec e) const {
    const Vec vd = Vec::Broadcast(delta);
    const Vec half = Vec::Broadcast(0.5f);
    const Vec a = Vec::Abs(e);
    return Vec::Select(Vec::CmpLe(a, vd), half * e * e,
                       vd * (a - half * vd));
  }
};

/// Huber derivative (times incoming grad): e inside, delta*sign(e) outside
/// (|e| > delta implies e != 0, so CopySign matches the scalar ternary).
struct BwdHuberFn {
  float delta;
  float operator()(float g, float e) const {
    const float de = std::fabs(e) <= delta ? e : (e > 0.0f ? delta : -delta);
    return g * de;
  }
  Vec operator()(Vec g, Vec e) const {
    const Vec vd = Vec::Broadcast(delta);
    const Vec de =
        Vec::Select(Vec::CmpLe(Vec::Abs(e), vd), e, Vec::CopySign(vd, e));
    return g * de;
  }
};

// --- Shared gradient-accumulation helpers --------------------------------

/// Accumulates `g` into `p`'s gradient, reducing over broadcast axes.
/// Exclusive temporaries are adopted by the grad buffer instead of being
/// added into a freshly zeroed allocation (Node::AccumulateGrad).
void Accum(const NodePtr& p, Tensor g) {
  if (p == nullptr || !p->requires_grad) return;
  if (g.shape() == p->value.shape()) {
    p->AccumulateGrad(std::move(g));
  } else {
    p->AccumulateGrad(ops::ReduceToShape(g, p->value.shape()));
  }
}

/// Accumulates a * b (elementwise) into `p`'s gradient. When the shapes
/// line up, the product is fused into the accumulation (AddMulInPlace) —
/// no intermediate product tensor; otherwise falls back to Mul + Accum
/// with broadcast reduction.
void AccumProduct(const NodePtr& p, const Tensor& a, const Tensor& b) {
  if (p == nullptr || !p->requires_grad) return;
  const Shape& shape = p->value.shape();
  if (a.shape() == shape && b.shape() == shape) {
    if (p->grad.empty() && !p->value.empty()) {
      p->AccumulateGrad(ops::BinaryMap(a, b, simd::MulOp{}));
    } else {
      ops::AddMulInPlace(p->grad, a, b);
    }
  } else {
    Accum(p, ops::Mul(a, b));
  }
}

const Tensor& P(const Node& n, size_t i) { return n.parents[i]->value; }

// --- Forward kernels ------------------------------------------------------
// Each one recomputes the node's value from parents + attrs. These are the
// single source of truth: trace-time construction and plan replay both run
// them, so the two execution modes are bit-identical by construction.

Tensor FwdAdd(const Node& n) { return ops::Add(P(n, 0), P(n, 1)); }
Tensor FwdSub(const Node& n) { return ops::Sub(P(n, 0), P(n, 1)); }
Tensor FwdMul(const Node& n) { return ops::Mul(P(n, 0), P(n, 1)); }
Tensor FwdDiv(const Node& n) { return ops::Div(P(n, 0), P(n, 1)); }
Tensor FwdAddScalar(const Node& n) {
  return ops::AddScalar(P(n, 0), n.attrs.scalar);
}
Tensor FwdMulScalar(const Node& n) {
  return ops::MulScalar(P(n, 0), n.attrs.scalar);
}
Tensor FwdExp(const Node& n) { return ops::Exp(P(n, 0)); }
Tensor FwdLog(const Node& n) { return ops::Log(P(n, 0)); }
Tensor FwdSqrt(const Node& n) { return ops::Sqrt(P(n, 0)); }
Tensor FwdSquare(const Node& n) { return ops::Square(P(n, 0)); }
Tensor FwdAbs(const Node& n) { return ops::Abs(P(n, 0)); }
Tensor FwdTanh(const Node& n) { return ops::Tanh(P(n, 0)); }
Tensor FwdSigmoid(const Node& n) { return ops::Sigmoid(P(n, 0)); }
Tensor FwdRelu(const Node& n) { return ops::Relu(P(n, 0)); }
Tensor FwdMatMul(const Node& n) { return ops::MatMul(P(n, 0), P(n, 1)); }
Tensor FwdTransposeLast2(const Node& n) {
  return ops::TransposeLast2(P(n, 0));
}
Tensor FwdPermute(const Node& n) { return ops::Permute(P(n, 0), n.attrs.ints); }
Tensor FwdReshape(const Node& n) { return P(n, 0).Reshape(n.attrs.shape); }
Tensor FwdConcat(const Node& n) {
  std::vector<Tensor> values;
  values.reserve(n.parents.size());
  for (const NodePtr& p : n.parents) values.push_back(p->value);
  return ops::Concat(values, n.attrs.axis);
}
Tensor FwdSlice(const Node& n) {
  return ops::Slice(P(n, 0), n.attrs.axis, n.attrs.start, n.attrs.len);
}
Tensor FwdIndexSelect0(const Node& n) {
  return ops::IndexSelect0(P(n, 0), n.attrs.ints);
}
Tensor FwdSumAll(const Node& n) { return ops::SumAll(P(n, 0)); }
Tensor FwdMeanAll(const Node& n) { return ops::MeanAll(P(n, 0)); }
Tensor FwdSum(const Node& n) {
  return ops::Sum(P(n, 0), n.attrs.axis, n.attrs.keepdims);
}
Tensor FwdSoftmaxLast(const Node& n) { return ops::SoftmaxLast(P(n, 0)); }
Tensor FwdHuberElem(const Node& n) {
  return ops::UnaryMap(P(n, 0), FwdHuberFn{n.attrs.scalar});
}
Tensor FwdDetach(const Node& n) { return P(n, 0); }
Tensor FwdRandn(const Node& n) {
  STWA_CHECK(n.attrs.rng != nullptr, "randn op lost its generator");
  return Tensor::Randn(n.attrs.shape, *n.attrs.rng);
}
Tensor FwdDropoutMask(const Node& n) {
  STWA_CHECK(n.attrs.rng != nullptr, "dropout op lost its generator");
  const float p = n.attrs.scalar;
  const float scale = 1.0f / (1.0f - p);
  Tensor mask = Tensor::Uninit(n.attrs.shape);
  float* m = mask.data();
  Rng& rng = *n.attrs.rng;
  for (int64_t i = 0; i < mask.size(); ++i) {
    m[i] = rng.Uniform() < p ? 0.0f : scale;
  }
  return mask;
}

// --- Backward kernels -----------------------------------------------------

void BwdAdd(Node& n) {
  Accum(n.parents[0], n.grad);
  Accum(n.parents[1], n.grad);
}

void BwdSub(Node& n) {
  Accum(n.parents[0], n.grad);
  Accum(n.parents[1], ops::Neg(n.grad));
}

void BwdMul(Node& n) {
  AccumProduct(n.parents[0], n.grad, n.parents[1]->value);
  AccumProduct(n.parents[1], n.grad, n.parents[0]->value);
}

void BwdDiv(Node& n) {
  const Tensor& av = n.parents[0]->value;
  const Tensor& bv = n.parents[1]->value;
  Accum(n.parents[0], ops::Div(n.grad, bv));
  Accum(n.parents[1],
        ops::Neg(ops::Div(ops::Mul(n.grad, av), ops::Mul(bv, bv))));
}

void BwdAddScalar(Node& n) { Accum(n.parents[0], n.grad); }

void BwdMulScalar(Node& n) {
  Accum(n.parents[0], ops::MulScalar(n.grad, n.attrs.scalar));
}

void BwdExp(Node& n) { AccumProduct(n.parents[0], n.grad, n.value); }

void BwdLog(Node& n) {
  Accum(n.parents[0], ops::Div(n.grad, n.parents[0]->value));
}

void BwdSqrt(Node& n) {
  // d sqrt(x)/dx = 0.5 / sqrt(x); fused single-pass map over own value.
  Accum(n.parents[0], ops::BinaryMap(n.grad, n.value, BwdSqrtFn{}));
}

void BwdSquare(Node& n) {
  Accum(n.parents[0],
        ops::BinaryMap(n.grad, n.parents[0]->value, BwdSquareFn{}));
}

void BwdAbs(Node& n) {
  Accum(n.parents[0],
        ops::BinaryMap(n.grad, n.parents[0]->value, BwdAbsFn{}));
}

void BwdTanh(Node& n) {
  // Fused g * (1 - y^2): one pooled temporary instead of two.
  Accum(n.parents[0], ops::BinaryMap(n.grad, n.value, BwdTanhFn{}));
}

void BwdSigmoid(Node& n) {
  Accum(n.parents[0], ops::BinaryMap(n.grad, n.value, BwdSigmoidFn{}));
}

void BwdRelu(Node& n) {
  Accum(n.parents[0],
        ops::BinaryMap(n.grad, n.parents[0]->value, BwdReluFn{}));
}

void BwdMatMul(Node& n) {
  // dA = g @ B^T and dB = A^T @ g via the fused transposed-operand kernels
  // (no transpose temporaries), reduced over broadcast batch dims by Accum.
  Accum(n.parents[0], ops::MatMulNT(n.grad, n.parents[1]->value));
  Accum(n.parents[1], ops::MatMulTN(n.parents[0]->value, n.grad));
}

void BwdTransposeLast2(Node& n) {
  Accum(n.parents[0], ops::TransposeLast2(n.grad));
}

void BwdPermute(Node& n) {
  const std::vector<int64_t>& axes = n.attrs.ints;
  std::vector<int64_t> inverse(axes.size());
  for (size_t d = 0; d < axes.size(); ++d) inverse[axes[d]] = d;
  Accum(n.parents[0], ops::Permute(n.grad, inverse));
}

void BwdReshape(Node& n) {
  Accum(n.parents[0], n.grad.Reshape(n.parents[0]->value.shape()));
}

void BwdConcat(Node& n) {
  const int64_t axis = n.attrs.axis;
  int64_t offset = 0;
  for (const NodePtr& p : n.parents) {
    const int64_t extent = p->value.shape()[axis];
    Accum(p, ops::Slice(n.grad, axis, offset, extent));
    offset += extent;
  }
}

void BwdSlice(Node& n) {
  if (n.parents[0] == nullptr || !n.parents[0]->requires_grad) return;
  // Scatter the slice gradient back into the parent-shaped grad buffer.
  n.parents[0]->EnsureGrad();
  const Shape& parent_shape = n.parents[0]->value.shape();
  Tensor& pg = n.parents[0]->grad;
  const int64_t axis = n.attrs.axis;
  const int64_t start = n.attrs.start;
  const int64_t len = n.attrs.len;
  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= parent_shape[d];
  for (size_t d = axis + 1; d < parent_shape.size(); ++d) {
    inner *= parent_shape[d];
  }
  const int64_t extent = parent_shape[axis];
  const float* g = n.grad.data();
  float* p = pg.data();
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = g + o * len * inner;
    float* dst = p + (o * extent + start) * inner;
    for (int64_t i = 0; i < len * inner; ++i) dst[i] += src[i];
  }
}

void BwdIndexSelect0(Node& n) {
  if (n.parents[0] == nullptr || !n.parents[0]->requires_grad) return;
  n.parents[0]->EnsureGrad();
  ops::ScatterAddRows(n.parents[0]->grad, n.attrs.ints, n.grad);
}

void BwdSumAll(Node& n) {
  const float g = n.grad.item();
  Accum(n.parents[0], Tensor(n.parents[0]->value.shape(), g));
}

void BwdMeanAll(Node& n) {
  const float inv =
      1.0f / static_cast<float>(n.parents[0]->value.size());
  const float g = n.grad.item() * inv;
  Accum(n.parents[0], Tensor(n.parents[0]->value.shape(), g));
}

void BwdSum(Node& n) {
  Shape keep_shape = n.parents[0]->value.shape();
  keep_shape[n.attrs.axis] = 1;
  // Broadcast the (possibly squeezed) grad back up — a pure copy
  // expansion, no zero tensor or add pass.
  Accum(n.parents[0], ops::BroadcastTo(n.grad.Reshape(std::move(keep_shape)),
                                       n.parents[0]->value.shape()));
}

void BwdSoftmaxLast(Node& n) {
  // Fused dx = y * (g - sum(g * y, last)): one pooled output, no
  // intermediate product/sum/difference tensors.
  Accum(n.parents[0], ops::SoftmaxLastBackward(n.value, n.grad));
}

void BwdHuberElem(Node& n) {
  // dH/de = e (|e|<=delta), else delta*sign(e); fused with the incoming
  // gradient into a single pooled temporary.
  Accum(n.parents[0],
        ops::BinaryMap(n.grad, n.parents[0]->value,
                       BwdHuberFn{n.attrs.scalar}));
}

// --- Fused super-op kernels (ir/rewrite.cc emits these nodes) -------------

Tensor FwdFusedMap(const Node& n) {
  std::vector<Tensor> sides;
  sides.reserve(n.parents.size() - 1);
  for (size_t i = 1; i < n.parents.size(); ++i) {
    sides.push_back(n.parents[i]->value);
  }
  return ops::FusedMap(P(n, 0), sides, n.attrs.ints, n.attrs.scalars);
}

Tensor FwdFusedAttention(const Node& n) {
  return ops::FusedAttention(P(n, 0), P(n, 1), P(n, 2), n.attrs.scalar);
}

/// Recomputes one stage of a fused chain with the standalone eager kernels
/// (shared by the fused backward, which needs the interior values the fused
/// forward never materialises).
Tensor FusedStageForward(const Node& n, size_t s, const Tensor& x) {
  const auto op = static_cast<simd::FusedOp>(n.attrs.ints[3 * s]);
  const int64_t slot = n.attrs.ints[3 * s + 1];
  const bool swapped = n.attrs.ints[3 * s + 2] != 0;
  const float scalar = n.attrs.scalars[s];
  switch (op) {
    case simd::FusedOp::kAddScalar: return ops::AddScalar(x, scalar);
    case simd::FusedOp::kMulScalar: return ops::MulScalar(x, scalar);
    case simd::FusedOp::kExp: return ops::Exp(x);
    case simd::FusedOp::kSqrt: return ops::Sqrt(x);
    case simd::FusedOp::kSquare: return ops::Square(x);
    case simd::FusedOp::kAbs: return ops::Abs(x);
    case simd::FusedOp::kTanh: return ops::Tanh(x);
    case simd::FusedOp::kSigmoid: return ops::Sigmoid(x);
    case simd::FusedOp::kRelu: return ops::Relu(x);
    default: {
      const Tensor& side = n.parents[1 + slot]->value;
      switch (op) {
        case simd::FusedOp::kAdd: return ops::Add(x, side);
        case simd::FusedOp::kSub:
          return swapped ? ops::Sub(side, x) : ops::Sub(x, side);
        case simd::FusedOp::kMul: return ops::Mul(x, side);
        case simd::FusedOp::kDiv:
          return swapped ? ops::Div(side, x) : ops::Div(x, side);
        default: break;
      }
    }
  }
  STWA_CHECK(false, "bad fused stage opcode");
  return Tensor();
}

/// Chain rule through the stage program, back to front. The gradient never
/// runs in production plans (the rewriter only fuses gradient-free nodes);
/// it exists so CheckAllOpKinds can finite-difference the fused kind like
/// any other.
void BwdFusedMap(Node& n) {
  const size_t stages = n.attrs.ints.size() / 3;
  // Interior stage inputs, recomputed eagerly (inputs[s] feeds stage s;
  // stage s's output is inputs[s + 1], the last stage's is n.value).
  std::vector<Tensor> inputs(stages);
  inputs[0] = P(n, 0);
  for (size_t s = 0; s + 1 < stages; ++s) {
    inputs[s + 1] = FusedStageForward(n, s, inputs[s]);
  }
  Tensor g = n.grad;
  for (size_t si = stages; si-- > 0;) {
    const auto op = static_cast<simd::FusedOp>(n.attrs.ints[3 * si]);
    const int64_t slot = n.attrs.ints[3 * si + 1];
    const bool swapped = n.attrs.ints[3 * si + 2] != 0;
    const Tensor& in = inputs[si];
    const Tensor& out = (si + 1 < stages) ? inputs[si + 1] : n.value;
    const NodePtr& side =
        simd::FusedOpIsBinary(op) ? n.parents[1 + slot] : nullptr;
    switch (op) {
      case simd::FusedOp::kAddScalar:
        break;  // g flows through unchanged
      case simd::FusedOp::kMulScalar:
        g = ops::MulScalar(g, n.attrs.scalars[si]);
        break;
      case simd::FusedOp::kExp:
        g = ops::Mul(g, out);
        break;
      case simd::FusedOp::kSqrt:
        g = ops::BinaryMap(g, out, BwdSqrtFn{});
        break;
      case simd::FusedOp::kSquare:
        g = ops::BinaryMap(g, in, BwdSquareFn{});
        break;
      case simd::FusedOp::kAbs:
        g = ops::BinaryMap(g, in, BwdAbsFn{});
        break;
      case simd::FusedOp::kTanh:
        g = ops::BinaryMap(g, out, BwdTanhFn{});
        break;
      case simd::FusedOp::kSigmoid:
        g = ops::BinaryMap(g, out, BwdSigmoidFn{});
        break;
      case simd::FusedOp::kRelu:
        g = ops::BinaryMap(g, in, BwdReluFn{});
        break;
      case simd::FusedOp::kAdd:
        Accum(side, g);
        break;
      case simd::FusedOp::kSub:
        if (swapped) {  // out = side - chain
          Accum(side, g);
          g = ops::Neg(g);
        } else {  // out = chain - side
          Accum(side, ops::Neg(g));
        }
        break;
      case simd::FusedOp::kMul:
        Accum(side, ops::Mul(g, in));
        g = ops::Mul(g, side->value);
        break;
      case simd::FusedOp::kDiv:
        if (swapped) {  // out = side / chain
          Accum(side, ops::Div(g, in));
          g = ops::Neg(
              ops::Div(ops::Mul(g, side->value), ops::Mul(in, in)));
        } else {  // out = chain / side
          const Tensor& sv = side->value;
          Accum(side, ops::Neg(ops::Div(ops::Mul(g, in), ops::Mul(sv, sv))));
          g = ops::Div(g, sv);
        }
        break;
      case simd::FusedOp::kCount:
        break;
    }
  }
  Accum(n.parents[0], std::move(g));
}

void BwdFusedAttention(Node& n) {
  const Tensor& q = P(n, 0);
  const Tensor& kt = P(n, 1);
  const Tensor& v = P(n, 2);
  const float scale = n.attrs.scalar;
  // Recompute the softmax the fused forward kept only slice-local.
  Tensor sm = ops::SoftmaxLast(ops::MulScalar(ops::MatMul(q, kt), scale));
  Tensor dsm = ops::MatMulNT(n.grad, v);
  Tensor dscores = ops::MulScalar(ops::SoftmaxLastBackward(sm, dsm), scale);
  Accum(n.parents[0], ops::MatMulNT(dscores, kt));
  Accum(n.parents[1], ops::MatMulTN(q, dscores));
  Accum(n.parents[2], ops::MatMulTN(sm, n.grad));
}

// --- Gradcheck case builders ---------------------------------------------
// Each builder creates a deterministic scalar loss exercising exactly its
// kind (plus the reduction wrapping it into a scalar, which has its own
// case). Inputs are kept away from non-differentiable points (0 for
// abs/relu, the Huber kink).

/// [rows, cols] values in +-[0.4, 1.2], alternating sign so abs/relu/sign
/// derivatives are exercised on both branches away from zero.
Tensor SignedAway(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Uninit({rows, cols});
  float* d = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    const float mag = rng.Uniform(0.4f, 1.2f);
    d[i] = (i % 2 == 0) ? mag : -mag;
  }
  return t;
}

/// Strictly positive values in [0.5, 1.5] (log/sqrt/div-safe).
Tensor PositiveAway(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Rand({rows, cols}, rng, 0.5f, 1.5f);
}

GradCheckCase GcBinary(Var (*op)(const Var&, const Var&), bool positive) {
  Var a = ag::Parameter(positive ? PositiveAway(2, 3, 11)
                                 : SignedAway(2, 3, 11));
  // Broadcasting operand: [3] against [2, 3] exercises ReduceToShape.
  Var b = ag::Parameter(positive ? PositiveAway(1, 3, 12).Reshape({3})
                                 : SignedAway(1, 3, 12).Reshape({3}));
  return {{a, b}, [a, b, op] { return ag::MeanAll(op(a, b)); }};
}

GradCheckCase GcAdd() { return GcBinary(&ag::Add, false); }
GradCheckCase GcSub() { return GcBinary(&ag::Sub, false); }
GradCheckCase GcMul() { return GcBinary(&ag::Mul, false); }
GradCheckCase GcDiv() { return GcBinary(&ag::Div, true); }

GradCheckCase GcUnary(Var (*op)(const Var&), bool positive) {
  Var a = ag::Parameter(positive ? PositiveAway(2, 3, 21)
                                 : SignedAway(2, 3, 21));
  return {{a}, [a, op] { return ag::MeanAll(op(a)); }};
}

GradCheckCase GcAddScalar() {
  Var a = ag::Parameter(SignedAway(2, 3, 22));
  return {{a}, [a] { return ag::MeanAll(ag::AddScalar(a, 0.7f)); }};
}
GradCheckCase GcMulScalar() {
  Var a = ag::Parameter(SignedAway(2, 3, 23));
  return {{a}, [a] { return ag::MeanAll(ag::MulScalar(a, -1.4f)); }};
}
GradCheckCase GcExp() { return GcUnary(&ag::Exp, false); }
GradCheckCase GcLog() { return GcUnary(&ag::Log, true); }
GradCheckCase GcSqrt() { return GcUnary(&ag::Sqrt, true); }
GradCheckCase GcSquare() { return GcUnary(&ag::Square, false); }
GradCheckCase GcAbs() { return GcUnary(&ag::Abs, false); }
GradCheckCase GcTanh() { return GcUnary(&ag::Tanh, false); }
GradCheckCase GcSigmoid() { return GcUnary(&ag::Sigmoid, false); }
GradCheckCase GcRelu() { return GcUnary(&ag::Relu, false); }

GradCheckCase GcMatMul() {
  Var a = ag::Parameter(SignedAway(2, 3, 31));
  Var b = ag::Parameter(SignedAway(3, 2, 32));
  return {{a, b}, [a, b] { return ag::MeanAll(ag::MatMul(a, b)); }};
}

GradCheckCase GcTransposeLast2() {
  Var a = ag::Parameter(SignedAway(3, 4, 33));
  return {{a}, [a] {
            return ag::MeanAll(ag::Mul(ag::TransposeLast2(a),
                                       ag::TransposeLast2(a)));
          }};
}

GradCheckCase GcPermute() {
  Rng rng(34);
  Var a = ag::Parameter(Tensor::Randn({2, 3, 4}, rng));
  return {{a}, [a] {
            Var p = ag::Permute(a, {2, 0, 1});
            return ag::MeanAll(ag::Mul(p, p));
          }};
}

GradCheckCase GcReshape() {
  Var a = ag::Parameter(SignedAway(2, 6, 35));
  return {{a}, [a] {
            Var r = ag::Reshape(a, {3, 4});
            return ag::MeanAll(ag::Mul(r, r));
          }};
}

GradCheckCase GcConcat() {
  Var a = ag::Parameter(SignedAway(2, 2, 36));
  Var b = ag::Parameter(SignedAway(2, 3, 37));
  return {{a, b}, [a, b] {
            Var c = ag::Concat({a, b}, 1);
            return ag::MeanAll(ag::Mul(c, c));
          }};
}

GradCheckCase GcSlice() {
  Var a = ag::Parameter(SignedAway(2, 4, 38));
  return {{a}, [a] {
            Var s = ag::Slice(a, 1, 1, 2);
            return ag::MeanAll(ag::Mul(s, s));
          }};
}

GradCheckCase GcIndexSelect0() {
  Var a = ag::Parameter(SignedAway(3, 2, 39));
  return {{a}, [a] {
            // Repeated rows exercise the scatter-add accumulation.
            Var s = ag::IndexSelect0(a, {0, 2, 1, 0});
            return ag::MeanAll(ag::Mul(s, s));
          }};
}

GradCheckCase GcSumAll() {
  Var a = ag::Parameter(SignedAway(2, 3, 41));
  return {{a}, [a] { return ag::SumAll(ag::Mul(a, a)); }};
}

GradCheckCase GcMeanAll() {
  Var a = ag::Parameter(SignedAway(2, 3, 42));
  return {{a}, [a] { return ag::MeanAll(ag::Mul(a, a)); }};
}

GradCheckCase GcSum() {
  Var a = ag::Parameter(SignedAway(2, 3, 43));
  return {{a}, [a] {
            Var s = ag::Sum(a, 1);
            return ag::MeanAll(ag::Mul(s, s));
          }};
}

GradCheckCase GcSoftmaxLast() {
  Var a = ag::Parameter(SignedAway(2, 4, 44));
  Var w = Var(SignedAway(2, 4, 45));  // fixed mixing weights, no grad
  return {{a}, [a, w] {
            return ag::MeanAll(ag::Mul(ag::SoftmaxLast(a), w));
          }};
}

GradCheckCase GcHuberElem() {
  // Errors straddle the delta=1 kink but stay away from it (|e| in
  // {~0.3, ~1.7}), so central differences are valid on both branches.
  Tensor pred({2, 4}, {0.3f, -0.32f, 1.7f, -1.72f, 0.28f, -0.3f, 1.68f,
                       -1.66f});
  Var p = ag::Parameter(std::move(pred));
  Var target = Var(Tensor(Shape{2, 4}));
  return {{p}, [p, target] { return ag::HuberLoss(p, target, 1.0f); }};
}

// The fused kinds are only ever built by the plan rewriter, so their cases
// assemble the node by hand: tanh → mul(side) → add_scalar exercises a
// unary, a binary (with its side-input accumulation) and a scalar stage in
// one chain; the attention case runs a full quad.

GradCheckCase GcFusedMap() {
  Var a = ag::Parameter(SignedAway(2, 4, 46));
  Var b = ag::Parameter(SignedAway(2, 4, 47));
  return {{a, b}, [a, b] {
            auto node = std::make_shared<Node>();
            node->kind = OpKind::kFusedMap;
            node->requires_grad = true;
            node->parents = {a.node(), b.node()};
            node->attrs.ints = {
                static_cast<int64_t>(simd::FusedOp::kTanh), -1, 0,
                static_cast<int64_t>(simd::FusedOp::kMul), 0, 0,
                static_cast<int64_t>(simd::FusedOp::kAddScalar), -1, 0};
            node->attrs.scalars = {0.0f, 0.0f, 0.3f};
            node->value = Kernel(OpKind::kFusedMap).forward(*node);
            return ag::MeanAll(Var(node));
          }};
}

GradCheckCase GcFusedAttention() {
  Var q = ag::Parameter(SignedAway(2, 3, 48));
  Var kt = ag::Parameter(SignedAway(3, 4, 49));
  Var v = ag::Parameter(SignedAway(4, 2, 50));
  return {{q, kt, v}, [q, kt, v] {
            auto node = std::make_shared<Node>();
            node->kind = OpKind::kFusedAttention;
            node->requires_grad = true;
            node->parents = {q.node(), kt.node(), v.node()};
            node->attrs.scalar = 0.5f;
            node->value = Kernel(OpKind::kFusedAttention).forward(*node);
            return ag::MeanAll(Var(node));
          }};
}

// --- Table ----------------------------------------------------------------

std::array<OpKernelInfo, kNumOpKinds> BuildTable() {
  std::array<OpKernelInfo, kNumOpKinds> table{};
  auto set = [&table](OpKind kind, OpKernelInfo info) {
    table[static_cast<int>(kind)] = info;
  };
  // {name, forward, backward, backward_reads_parents, make_gradcheck}
  set(OpKind::kLeaf, {"leaf", nullptr, nullptr, false, nullptr});
  set(OpKind::kAdd, {"add", FwdAdd, BwdAdd, false, GcAdd});
  set(OpKind::kSub, {"sub", FwdSub, BwdSub, false, GcSub});
  set(OpKind::kMul, {"mul", FwdMul, BwdMul, true, GcMul});
  set(OpKind::kDiv, {"div", FwdDiv, BwdDiv, true, GcDiv});
  set(OpKind::kAddScalar,
      {"add_scalar", FwdAddScalar, BwdAddScalar, false, GcAddScalar});
  set(OpKind::kMulScalar,
      {"mul_scalar", FwdMulScalar, BwdMulScalar, false, GcMulScalar});
  set(OpKind::kExp, {"exp", FwdExp, BwdExp, false, GcExp});
  set(OpKind::kLog, {"log", FwdLog, BwdLog, true, GcLog});
  set(OpKind::kSqrt, {"sqrt", FwdSqrt, BwdSqrt, false, GcSqrt});
  set(OpKind::kSquare, {"square", FwdSquare, BwdSquare, true, GcSquare});
  set(OpKind::kAbs, {"abs", FwdAbs, BwdAbs, true, GcAbs});
  set(OpKind::kTanh, {"tanh", FwdTanh, BwdTanh, false, GcTanh});
  set(OpKind::kSigmoid, {"sigmoid", FwdSigmoid, BwdSigmoid, false, GcSigmoid});
  set(OpKind::kRelu, {"relu", FwdRelu, BwdRelu, true, GcRelu});
  set(OpKind::kMatMul, {"matmul", FwdMatMul, BwdMatMul, true, GcMatMul});
  set(OpKind::kTransposeLast2,
      {"transpose_last2", FwdTransposeLast2, BwdTransposeLast2, false,
       GcTransposeLast2});
  set(OpKind::kPermute, {"permute", FwdPermute, BwdPermute, false, GcPermute});
  // Reshape/Concat/Slice/IndexSelect0 and the reductions read parent
  // *shapes* in backward; flagged as parent readers so liveness keeps the
  // parent materialised until their backward has run.
  set(OpKind::kReshape, {"reshape", FwdReshape, BwdReshape, true, GcReshape});
  set(OpKind::kConcat, {"concat", FwdConcat, BwdConcat, true, GcConcat});
  set(OpKind::kSlice, {"slice", FwdSlice, BwdSlice, true, GcSlice});
  set(OpKind::kIndexSelect0,
      {"index_select0", FwdIndexSelect0, BwdIndexSelect0, true,
       GcIndexSelect0});
  set(OpKind::kSumAll, {"sum_all", FwdSumAll, BwdSumAll, true, GcSumAll});
  set(OpKind::kMeanAll, {"mean_all", FwdMeanAll, BwdMeanAll, true, GcMeanAll});
  set(OpKind::kSum, {"sum", FwdSum, BwdSum, true, GcSum});
  set(OpKind::kSoftmaxLast,
      {"softmax_last", FwdSoftmaxLast, BwdSoftmaxLast, false, GcSoftmaxLast});
  set(OpKind::kHuberElem,
      {"huber_elem", FwdHuberElem, BwdHuberElem, true, GcHuberElem});
  set(OpKind::kDetach, {"detach", FwdDetach, nullptr, false, nullptr});
  set(OpKind::kRandn, {"randn", FwdRandn, nullptr, false, nullptr});
  set(OpKind::kDropoutMask,
      {"dropout_mask", FwdDropoutMask, nullptr, false, nullptr});
  set(OpKind::kFusedMap,
      {"fused_map", FwdFusedMap, BwdFusedMap, true, GcFusedMap});
  set(OpKind::kFusedAttention,
      {"fused_attention", FwdFusedAttention, BwdFusedAttention, true,
       GcFusedAttention});
  return table;
}

}  // namespace

const OpKernelInfo& Kernel(OpKind kind) {
  static const std::array<OpKernelInfo, kNumOpKinds> table = BuildTable();
  const int index = static_cast<int>(kind);
  STWA_CHECK(index >= 0 && index < kNumOpKinds, "bad OpKind ", index);
  const OpKernelInfo& info = table[index];
  STWA_CHECK(info.name != nullptr, "unregistered OpKind ", index);
  return info;
}

const char* OpKindName(OpKind kind) { return Kernel(kind).name; }

}  // namespace ir
}  // namespace stwa
