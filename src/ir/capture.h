// Thread-local recording of tape-node creation for plan capture.
//
// While a capture is active (ir::GraphCapture, see ir/plan.h), every node
// the autograd layer creates — ops AND leaves — is appended, in creation
// order, to the current recorder. Creation order is exactly the eager
// forward execution order, so replaying the recorded op nodes in order
// reproduces the traced forward pass bit-for-bit (including the order in
// which sampling ops consume their Rng streams).
//
// The hooks are deliberately tiny and dependency-free so autograd/var.cc
// and autograd/ops.cc can call them without pulling in the plan machinery.

#ifndef STWA_IR_CAPTURE_H_
#define STWA_IR_CAPTURE_H_

#include <memory>
#include <vector>

namespace stwa {
namespace ag {
class Node;
}  // namespace ag

namespace ir {

/// True while a GraphCapture is recording on this thread. Op construction
/// keeps full parent edges (even through non-differentiable nodes) when
/// active, so the captured graph can be re-executed.
bool CaptureActive();

/// Appends a freshly created node to the active recording; no-op when no
/// capture is active. Called by the Var leaf constructor and by every op.
void CaptureRecord(const std::shared_ptr<ag::Node>& node);

namespace detail {

/// Starts recording on this thread (captures do not nest).
void BeginCapture();

/// Stops recording and returns the nodes in creation order.
std::vector<std::shared_ptr<ag::Node>> EndCapture();

}  // namespace detail

}  // namespace ir
}  // namespace stwa

#endif  // STWA_IR_CAPTURE_H_
