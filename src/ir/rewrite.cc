#include "ir/rewrite.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "simd/fused.h"

namespace stwa {
namespace ir {
namespace {

// Consumer-edge census of one capture. `edges` counts parent edges pointing
// at the node; `consumer` is meaningful only when edges == 1 (Mul(t, t)
// contributes two edges from one consumer, so a self-use can never look
// single-consumer).
struct UseInfo {
  int64_t edges = 0;
  ag::Node* consumer = nullptr;
};

std::unordered_map<ag::Node*, UseInfo> BuildUses(
    const std::vector<ag::NodePtr>& nodes) {
  std::unordered_map<ag::Node*, UseInfo> uses;
  uses.reserve(nodes.size());
  for (const ag::NodePtr& n : nodes) {
    for (const ag::NodePtr& p : n->parents) {
      UseInfo& u = uses[p.get()];
      ++u.edges;
      u.consumer = n.get();
    }
  }
  return uses;
}

// True when `p` feeds `c` through exactly one edge and `c` is its only
// consumer — the link along which a pattern may absorb `p`.
bool SoleEdgeInto(const std::unordered_map<ag::Node*, UseInfo>& uses,
                  ag::Node* p, ag::Node* c) {
  auto it = uses.find(p);
  return it != uses.end() && it->second.edges == 1 &&
         it->second.consumer == c;
}

// Applies the collected matches of one pass: drops absorbed nodes, swaps
// each pattern tail for its replacement (which sits in the tail's schedule
// slot — creation order is topological, so every replacement input is
// already scheduled earlier), and rewires surviving consumers of the tails.
void CommitMatches(
    std::vector<ag::NodePtr>& nodes, std::vector<ag::Node*>& forward,
    const std::unordered_set<ag::Node*>& absorbed,
    const std::unordered_map<ag::Node*, ag::NodePtr>& replaced) {
  std::vector<ag::NodePtr> new_nodes;
  new_nodes.reserve(nodes.size());
  for (ag::NodePtr& n : nodes) {
    auto rit = replaced.find(n.get());
    if (rit != replaced.end()) {
      new_nodes.push_back(rit->second);
    } else if (!absorbed.count(n.get())) {
      new_nodes.push_back(std::move(n));
    }
  }
  nodes = std::move(new_nodes);

  std::vector<ag::Node*> new_forward;
  new_forward.reserve(forward.size());
  for (ag::Node* n : forward) {
    auto rit = replaced.find(n);
    if (rit != replaced.end()) {
      new_forward.push_back(rit->second.get());
    } else if (!absorbed.count(n)) {
      new_forward.push_back(n);
    }
  }
  forward = std::move(new_forward);

  for (const ag::NodePtr& n : nodes) {
    for (ag::NodePtr& p : n->parents) {
      auto rit = replaced.find(p.get());
      if (rit != replaced.end()) p = rit->second;
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 1: attention quads.
// ---------------------------------------------------------------------------

// True when q/kt/v can go through ops::FusedAttention: equal ranks >= 2 and
// equal batch dims (the fused kernel does not broadcast batch strides the
// way the standalone batched matmul does).
bool AttentionShapesFusible(const Tensor& q, const Tensor& kt,
                            const Tensor& v) {
  const Shape& qs = q.shape();
  const Shape& ks = kt.shape();
  const Shape& vs = v.shape();
  if (qs.size() < 2 || qs.size() != ks.size() || qs.size() != vs.size()) {
    return false;
  }
  for (size_t i = 0; i + 2 < qs.size(); ++i) {
    if (qs[i] != ks[i] || qs[i] != vs[i]) return false;
  }
  return true;
}

void FuseAttentionQuads(std::vector<ag::NodePtr>& nodes,
                        std::vector<ag::Node*>& forward, const ag::Node* root,
                        RewriteStats& stats) {
  auto uses = BuildUses(nodes);
  std::unordered_set<ag::Node*> taken;
  std::unordered_set<ag::Node*> absorbed;
  std::unordered_map<ag::Node*, ag::NodePtr> replaced;

  for (ag::Node* n1 : forward) {
    // n1: the score matmul. Every quad member must be gradient-free (so the
    // backward schedule never reads an absorbed value) and must not be the
    // plan root (the root pointer survives rewriting untouched).
    if (n1->kind != OpKind::kMatMul || n1->requires_grad || n1 == root ||
        taken.count(n1)) {
      continue;
    }
    auto u1 = uses.find(n1);
    if (u1 == uses.end() || u1->second.edges != 1) continue;
    ag::Node* n2 = u1->second.consumer;
    if (n2->kind != OpKind::kMulScalar || n2->requires_grad || n2 == root ||
        taken.count(n2) || !SoleEdgeInto(uses, n1, n2)) {
      continue;
    }
    auto u2 = uses.find(n2);
    if (u2 == uses.end() || u2->second.edges != 1) continue;
    ag::Node* n3 = u2->second.consumer;
    if (n3->kind != OpKind::kSoftmaxLast || n3->requires_grad || n3 == root ||
        taken.count(n3)) {
      continue;
    }
    auto u3 = uses.find(n3);
    if (u3 == uses.end() || u3->second.edges != 1) continue;
    ag::Node* n4 = u3->second.consumer;
    // n4: the value matmul, with the softmax as its LEFT operand. A quad
    // whose softmax feeds anything else (or feeds n4 on the right) has an
    // observable interior and stays unfused.
    if (n4->kind != OpKind::kMatMul || n4->requires_grad || n4 == root ||
        taken.count(n4) || n4->parents.size() != 2 ||
        n4->parents[0].get() != n3) {
      continue;
    }
    const ag::NodePtr& v = n4->parents[1];
    if (v.get() == n1 || v.get() == n2 || v.get() == n3) continue;
    if (n1->parents.size() != 2) continue;
    const ag::NodePtr& q = n1->parents[0];
    const ag::NodePtr& kt = n1->parents[1];
    if (!AttentionShapesFusible(q->value, kt->value, v->value)) continue;

    auto fused = std::make_shared<ag::Node>();
    fused->kind = OpKind::kFusedAttention;
    fused->requires_grad = false;
    fused->attrs.scalar = n2->attrs.scalar;
    fused->parents = {q, kt, v};
    // Shares the tail's buffer: liveness and stats see the real output
    // shape, and replays overwrite it like any other plan value.
    fused->value = n4->value;

    taken.insert({n1, n2, n3, n4});
    absorbed.insert({n1, n2, n3});
    replaced.emplace(n4, std::move(fused));
    ++stats.fused_attention_nodes;
    stats.fused_away_ops += 3;
  }

  if (!replaced.empty()) CommitMatches(nodes, forward, absorbed, replaced);
}

// ---------------------------------------------------------------------------
// Pass 2: elementwise chains.
// ---------------------------------------------------------------------------

// Maps a fusible OpKind to its stage opcode. Log is deliberately absent: it
// has no Vec kernel (simd/fused.h), so fusing it would change which path
// computes it.
bool FusedOpFor(OpKind kind, simd::FusedOp* out) {
  switch (kind) {
    case OpKind::kAddScalar: *out = simd::FusedOp::kAddScalar; return true;
    case OpKind::kMulScalar: *out = simd::FusedOp::kMulScalar; return true;
    case OpKind::kExp: *out = simd::FusedOp::kExp; return true;
    case OpKind::kSqrt: *out = simd::FusedOp::kSqrt; return true;
    case OpKind::kSquare: *out = simd::FusedOp::kSquare; return true;
    case OpKind::kAbs: *out = simd::FusedOp::kAbs; return true;
    case OpKind::kTanh: *out = simd::FusedOp::kTanh; return true;
    case OpKind::kSigmoid: *out = simd::FusedOp::kSigmoid; return true;
    case OpKind::kRelu: *out = simd::FusedOp::kRelu; return true;
    case OpKind::kAdd: *out = simd::FusedOp::kAdd; return true;
    case OpKind::kSub: *out = simd::FusedOp::kSub; return true;
    case OpKind::kMul: *out = simd::FusedOp::kMul; return true;
    case OpKind::kDiv: *out = simd::FusedOp::kDiv; return true;
    default: return false;
  }
}

// True when a side shaped `side` can stream against a chain shaped `out`:
// either the full shape, or a non-empty exact suffix (the bias-add pattern —
// the kernel replays it cyclically per run, matching the eager broadcast
// element-for-element).
bool SideFusible(const Shape& side, const Shape& out) {
  if (side == out) return true;
  if (side.empty() || side.size() >= out.size()) return false;
  const size_t off = out.size() - side.size();
  for (size_t i = 0; i < side.size(); ++i) {
    if (side[i] != out[i + off]) return false;
  }
  return true;
}

// A chain member must be gradient-free, not the root, and — for binaries —
// orientable: one parent carries the chain value (shaped exactly like the
// output) while the other is a fusible side (full shape or suffix).
bool ChainCandidate(ag::Node* n, const ag::Node* root, simd::FusedOp* op) {
  if (n->requires_grad || n == root || !FusedOpFor(n->kind, op)) return false;
  if (simd::FusedOpIsBinary(*op)) {
    if (n->parents.size() != 2) return false;
    const Shape& s = n->value.shape();
    const Shape& p0 = n->parents[0]->value.shape();
    const Shape& p1 = n->parents[1]->value.shape();
    if (!(p0 == s && SideFusible(p1, s)) &&
        !(p1 == s && SideFusible(p0, s))) {
      return false;
    }
  }
  return true;
}

void FuseElementwiseChains(std::vector<ag::NodePtr>& nodes,
                           std::vector<ag::Node*>& forward,
                           const ag::Node* root, RewriteStats& stats) {
  auto uses = BuildUses(nodes);
  std::unordered_set<ag::Node*> taken;
  std::unordered_set<ag::Node*> absorbed;
  std::unordered_map<ag::Node*, ag::NodePtr> replaced;

  for (ag::Node* head : forward) {
    simd::FusedOp head_op;
    if (taken.count(head) || !ChainCandidate(head, root, &head_op)) continue;

    // Grow the maximal chain from `head`. Scanning in schedule order makes
    // this the earliest member: its own producer either is not a candidate
    // or has fan-out, otherwise an earlier iteration would have taken it.
    struct Stage {
      ag::Node* node;
      simd::FusedOp op;
      ag::NodePtr side;  // null for unary/scalar stages
      bool swapped;
    };
    std::vector<Stage> chain;
    // All broadcast (suffix) sides of one chain must share a run length:
    // the kernel cycles them against a single row stride.
    int64_t bcast_size = 0;
    auto admit_side = [&](const ag::NodePtr& side, const Shape& out) {
      if (side->value.shape() == out) return true;
      const int64_t sz = side->value.size();
      if (bcast_size != 0 && bcast_size != sz) return false;
      bcast_size = sz;
      return true;
    };
    ag::NodePtr input;
    if (head->parents.empty()) continue;  // defensive; fusible kinds have
                                          // parents
    bool head_swapped = false;
    ag::NodePtr head_side;
    if (simd::FusedOpIsBinary(head_op)) {
      // The chain value flows through the full-shape parent; the other
      // operand becomes the stage side (swapped when the value is on the
      // right).
      const Shape& s = head->value.shape();
      if (head->parents[0]->value.shape() == s &&
          SideFusible(head->parents[1]->value.shape(), s)) {
        input = head->parents[0];
        head_side = head->parents[1];
      } else {
        input = head->parents[1];
        head_side = head->parents[0];
        head_swapped = true;
      }
      if (!admit_side(head_side, s)) continue;
    } else {
      input = head->parents[0];
    }
    chain.push_back({head, head_op, std::move(head_side), head_swapped});
    for (;;) {
      ag::Node* t = chain.back().node;
      auto ut = uses.find(t);
      if (ut == uses.end() || ut->second.edges != 1) break;
      ag::Node* c = ut->second.consumer;
      simd::FusedOp c_op;
      if (taken.count(c) || !ChainCandidate(c, root, &c_op)) break;
      ag::NodePtr side;
      bool swapped = false;
      if (simd::FusedOpIsBinary(c_op)) {
        // The chain value must stay the full-shape operand (a broadcast
        // would widen the running value mid-chain).
        if (c->value.shape() != t->value.shape()) break;
        if (c->parents[0].get() == t) {
          side = c->parents[1];
        } else {  // parents[1] == t (the sole edge guarantees exactly one)
          side = c->parents[0];
          swapped = true;
        }
        if (!admit_side(side, c->value.shape())) break;
      } else if (c->parents.empty() || c->parents[0].get() != t) {
        break;
      }
      chain.push_back({c, c_op, std::move(side), swapped});
    }
    if (chain.size() < 2) continue;

    // Encode the stage program; side inputs are deduplicated into the
    // fused node's parents[1..].
    auto fused = std::make_shared<ag::Node>();
    fused->kind = OpKind::kFusedMap;
    fused->requires_grad = false;
    fused->parents.push_back(input);
    std::unordered_map<ag::Node*, int64_t> side_slot;
    for (const Stage& st : chain) {
      int64_t slot = -1;
      if (st.side != nullptr) {
        auto it = side_slot.find(st.side.get());
        if (it != side_slot.end()) {
          slot = it->second;
        } else {
          slot = static_cast<int64_t>(fused->parents.size()) - 1;
          side_slot.emplace(st.side.get(), slot);
          fused->parents.push_back(st.side);
        }
      }
      fused->attrs.ints.push_back(static_cast<int64_t>(st.op));
      fused->attrs.ints.push_back(slot);
      fused->attrs.ints.push_back(st.swapped ? 1 : 0);
      fused->attrs.scalars.push_back(st.node->attrs.scalar);
    }
    ag::Node* tail = chain.back().node;
    fused->value = tail->value;

    for (const Stage& st : chain) taken.insert(st.node);
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      absorbed.insert(chain[i].node);
    }
    replaced.emplace(tail, std::move(fused));
    ++stats.fused_map_nodes;
    stats.fused_away_ops += static_cast<int64_t>(chain.size()) - 1;
  }

  if (!replaced.empty()) CommitMatches(nodes, forward, absorbed, replaced);
}

}  // namespace

RewriteStats ApplyFusionPasses(std::vector<ag::NodePtr>& nodes,
                               std::vector<ag::Node*>& forward,
                               const ag::Node* root) {
  RewriteStats stats;
  // Attention first: its interior MulScalar would otherwise be claimed as
  // an elementwise chain head and break the quad.
  FuseAttentionQuads(nodes, forward, root, stats);
  FuseElementwiseChains(nodes, forward, root, stats);
  return stats;
}

}  // namespace ir
}  // namespace stwa
