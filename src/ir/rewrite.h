// Pattern-matching rewrite passes over a frozen plan capture.
//
// ApplyFusionPasses runs after GraphCapture::Finish has frozen the forward
// schedule and (for train plans) built the backward schedule, and before
// liveness analysis. Two passes, in order:
//
//   1. Attention fuser: matmul → mul_scalar → softmax_last → matmul quads
//      collapse into one kFusedAttention node (the key transpose stays a
//      separate node — its fused-transpose GEMM kernel is not
//      bit-compatible with the plain NN path the quad uses).
//   2. Elementwise-chain fuser: maximal chains (length >= 2) of
//      shape-preserving elementwise ops — scalar arithmetic, vectorisable
//      unaries, same-shape binaries with one external side input —
//      collapse into one kFusedMap node.
//
// Legality (both passes): every fused-away node must (a) not require a
// gradient — so it is outside the backward schedule and no backward kernel
// can read its value — (b) have exactly one consumer edge inside the
// capture (the next member of its own pattern), and (c) not be the plan
// root or a feed. Rule (a) makes fusion a forward-only optimisation: train
// plans fuse just their gradient-free subgraphs, eval/serve plans (traced
// under NoGradMode) fuse everywhere. Because the fused kernels compute the
// same per-element bits as the node sequences they replace
// (tensor/fused_ops.h), rewriting never changes a replay's output.
//
// The passes mutate the capture in place: fused-away nodes are removed
// from the node list and the forward schedule, the replacement node takes
// the schedule slot of the pattern's tail (creation order is topological,
// so all of its inputs are already scheduled earlier), and every surviving
// consumer of the tail is rewired to the replacement.

#ifndef STWA_IR_REWRITE_H_
#define STWA_IR_REWRITE_H_

#include <cstdint>
#include <vector>

#include "autograd/var.h"

namespace stwa {
namespace ir {

/// What the fusion passes did to one capture.
struct RewriteStats {
  /// kFusedMap nodes emitted (one per fused chain).
  int64_t fused_map_nodes = 0;
  /// kFusedAttention nodes emitted (one per fused quad).
  int64_t fused_attention_nodes = 0;
  /// Net forward ops removed from the schedule (pattern members minus
  /// their replacements).
  int64_t fused_away_ops = 0;
};

/// Runs the fusion passes over a frozen capture, mutating `nodes` (the
/// creation-order node list, which keeps everything alive) and `forward`
/// (the forward schedule) in place. `root` is never fused.
RewriteStats ApplyFusionPasses(std::vector<ag::NodePtr>& nodes,
                               std::vector<ag::Node*>& forward,
                               const ag::Node* root);

}  // namespace ir
}  // namespace stwa

#endif  // STWA_IR_REWRITE_H_
