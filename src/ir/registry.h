// Per-OpKind kernel registry: the dispatch table of the graph IR.
//
// Each registered kind carries
//   * a forward kernel recomputing the node's value from its parents and
//     attributes (used at trace time AND on every plan replay — one code
//     path, so traced and replayed execution are bit-identical by
//     construction);
//   * a backward kernel accumulating the node's gradient into its parents
//     (null for non-differentiable kinds: leaves, detach, sampling ops);
//   * liveness metadata: whether the backward kernel reads parent *data*
//     (not just shapes), which the execution plan's liveness analysis uses
//     to decide how long forward-only values must stay materialised;
//   * a gradcheck case builder, so autograd/gradcheck can enumerate every
//     registered kind and finite-difference check it — a kind with a
//     backward kernel but no gradcheck case fails the test suite.

#ifndef STWA_IR_REGISTRY_H_
#define STWA_IR_REGISTRY_H_

#include <functional>
#include <vector>

#include "autograd/var.h"
#include "ir/op_kind.h"

namespace stwa {
namespace ir {

/// A self-contained finite-difference test case for one OpKind: `fn`
/// builds a scalar loss exercising the kind from the current values of
/// `params` (deterministically — sampling kinds reseed internally).
struct GradCheckCase {
  std::vector<ag::Var> params;
  std::function<ag::Var()> fn;
};

/// Registry entry for one OpKind.
struct OpKernelInfo {
  /// Stable short name, equal to OpKindName(kind).
  const char* name = nullptr;

  /// Recomputes the forward value from n.parents / n.attrs. Null only for
  /// kLeaf (leaves are storage, not computation).
  Tensor (*forward)(const ag::Node& n) = nullptr;

  /// Accumulates n.grad into n.parents. Null for non-differentiable kinds.
  void (*backward)(ag::Node& n) = nullptr;

  /// True when the backward kernel reads parent values (data or shape) —
  /// the plan keeps such parents materialised until this node's backward
  /// has run, even if the parent itself needs no gradient.
  bool backward_reads_parents = false;

  /// Builds a finite-difference case; required iff `backward` is set.
  GradCheckCase (*make_gradcheck)() = nullptr;

  /// Per-kind finite-difference tolerance overrides for CheckAllOpKinds;
  /// 0 means "use the CheckGradients defaults". Only kinds whose
  /// vectorized kernels (polynomial transcendentals) measurably deviate
  /// from the libm scalars set these — each override is justified at its
  /// registration site.
  float gc_rtol = 0.0f;
  float gc_atol = 0.0f;
};

/// Dispatch-table lookup. Aborts on an unregistered kind.
const OpKernelInfo& Kernel(OpKind kind);

}  // namespace ir
}  // namespace stwa

#endif  // STWA_IR_REGISTRY_H_
