#include "ir/regions.h"

#include <algorithm>
#include <unordered_map>

namespace stwa {
namespace ir {

RegionSchedule BuildRegionSchedule(const std::vector<ag::Node*>& forward) {
  RegionSchedule sched;
  if (forward.empty()) return sched;

  // Distinct-consumer census over schedule members. Parents outside the
  // schedule (leaves: feeds, parameters, constants) impose no ordering —
  // their values are bound before any step runs.
  std::unordered_map<ag::Node*, int64_t> step_of;
  step_of.reserve(forward.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    step_of.emplace(forward[i], static_cast<int64_t>(i));
  }
  std::unordered_map<ag::Node*, int64_t> distinct_consumers;
  distinct_consumers.reserve(forward.size());
  for (ag::Node* n : forward) {
    ag::Node* prev = nullptr;  // dedup repeated parents within one step
    for (const ag::NodePtr& p : n->parents) {
      ag::Node* pn = p.get();
      if (pn == prev || !step_of.count(pn)) continue;
      // A step's parent list is short (<= 3); linear re-scan for dedup.
      bool seen = false;
      for (const ag::NodePtr& q : n->parents) {
        if (q.get() == pn) {
          seen = &q != &p;
          break;
        }
      }
      if (!seen) ++distinct_consumers[pn];
      prev = pn;
    }
  }

  std::unordered_map<ag::Node*, int64_t> region_of;
  region_of.reserve(forward.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    ag::Node* n = forward[i];

    // Unique op-parent regions, in first-appearance order.
    std::vector<int64_t> parent_regions;
    bool all_sole_consumed = true;
    for (const ag::NodePtr& p : n->parents) {
      auto it = region_of.find(p.get());
      if (it == region_of.end()) continue;  // leaf parent
      if (std::find(parent_regions.begin(), parent_regions.end(),
                    it->second) == parent_regions.end()) {
        parent_regions.push_back(it->second);
      }
      if (distinct_consumers[p.get()] != 1) all_sole_consumed = false;
    }

    int64_t region;
    if (parent_regions.size() == 1 && all_sole_consumed) {
      // Extends its producers' region: every op-parent is here and nothing
      // else will ever read them, so the join is order-independent.
      region = parent_regions[0];
    } else {
      region = static_cast<int64_t>(sched.regions.size());
      sched.regions.emplace_back();
      std::sort(parent_regions.begin(), parent_regions.end());
      sched.regions.back().deps = std::move(parent_regions);
    }
    Region& r = sched.regions[region];
    r.steps.push_back(static_cast<int64_t>(i));
    if (n->kind == OpKind::kRandn || n->kind == OpKind::kDropoutMask) {
      r.has_rng = true;
    }
    region_of.emplace(n, region);
  }

  // Stage = longest dependency path; deps always point at lower-numbered
  // regions, so one ascending sweep suffices.
  for (size_t i = 0; i < sched.regions.size(); ++i) {
    Region& r = sched.regions[i];
    int64_t stage = 0;
    for (int64_t d : r.deps) {
      stage = std::max(stage, sched.regions[d].stage + 1);
    }
    r.stage = stage;
    sched.num_stages = std::max(sched.num_stages, stage + 1);
  }
  std::vector<int64_t> width(static_cast<size_t>(sched.num_stages), 0);
  for (const Region& r : sched.regions) {
    sched.max_stage_width =
        std::max(sched.max_stage_width, ++width[static_cast<size_t>(r.stage)]);
  }
  return sched;
}

}  // namespace ir
}  // namespace stwa
