#include "ir/time_slice.h"

#include <cstring>
#include <unordered_map>

#include "common/check.h"
#include "ir/registry.h"
#include "tensor/ops.h"

namespace stwa {
namespace ir {
namespace {

using ag::Node;
using ag::NodePtr;

/// Working classification of one node during the dataflow walk.
struct NodeTime {
  TimeClass cls = TimeClass::kGlobal;
  int64_t axis = -1;  // output time axis when cls == kSliced
};

int64_t Prod(const Shape& s, size_t begin, size_t end) {
  int64_t p = 1;
  for (size_t i = begin; i < end && i < s.size(); ++i) p *= s[i];
  return p;
}

bool IsElementwiseBinary(OpKind k) {
  return k == OpKind::kAdd || k == OpKind::kSub || k == OpKind::kMul ||
         k == OpKind::kDiv;
}

bool IsElementwiseUnary(OpKind k) {
  switch (k) {
    case OpKind::kAddScalar:
    case OpKind::kMulScalar:
    case OpKind::kExp:
    case OpKind::kLog:
    case OpKind::kSqrt:
    case OpKind::kSquare:
    case OpKind::kAbs:
    case OpKind::kTanh:
    case OpKind::kSigmoid:
    case OpKind::kRelu:
    case OpKind::kHuberElem:
    case OpKind::kDetach:
      return true;
    default:
      return false;
  }
}

/// Per-kind transfer function: given the parents' classifications, decide
/// the node's own. Every rule proves "output column t reads only input
/// column t (of sliced parents) plus invariant data"; anything unproven
/// falls through to kGlobal, which is always sound. Node values are still
/// live from the capture trace, so shapes are read directly.
NodeTime Transfer(const Node* n,
                  const std::unordered_map<const Node*, NodeTime>& cls,
                  int64_t window) {
  NodeTime global;  // default result
  // Gather parents. Any unknown or global parent ends the analysis here.
  // Model parameters are leaves owned by the model, not by plan.nodes();
  // an out-of-map kLeaf parent is a fixed captured value for the plan's
  // whole lifetime (weight changes arrive as a new plan), so it is
  // window-invariant by construction.
  std::vector<const Node*> parents;
  std::vector<NodeTime> ptime;
  parents.reserve(n->parents.size());
  ptime.reserve(n->parents.size());
  bool any_sliced = false;
  for (const NodePtr& p : n->parents) {
    auto it = cls.find(p.get());
    NodeTime t;
    if (it != cls.end()) {
      t = it->second;
    } else if (p->kind == OpKind::kLeaf) {
      t = {TimeClass::kInvariant, -1};
    } else {
      return global;
    }
    if (t.cls == TimeClass::kGlobal) return global;
    if (t.cls == TimeClass::kSliced) any_sliced = true;
    parents.push_back(p.get());
    ptime.push_back(t);
  }
  if (!any_sliced) {
    // Every input is window-invariant, so the (deterministic) output is
    // too. Sampling kinds never reach here: they make the plan infeasible.
    return {TimeClass::kInvariant, -1};
  }
  auto at = [&](size_t i) -> const NodeTime& { return ptime[i]; };
  auto sliced = [](int64_t axis) { return NodeTime{TimeClass::kSliced, axis}; };
  // A sliced value's time extent is the full window by construction (the
  // rules below never shrink it); verify against the live capture shapes
  // as a belt-and-suspenders guard.
  auto check_extent = [&](const Node* p, int64_t axis) {
    const Shape& s = p->value.shape();
    return axis >= 0 && axis < static_cast<int64_t>(s.size()) &&
           s[static_cast<size_t>(axis)] == window;
  };
  for (size_t i = 0; i < parents.size(); ++i) {
    if (at(i).cls == TimeClass::kSliced &&
        !check_extent(parents[i], at(i).axis)) {
      return global;
    }
  }

  const OpKind k = n->kind;
  if (IsElementwiseUnary(k)) {
    return sliced(at(0).axis);
  }
  if (IsElementwiseBinary(k)) {
    // NumPy right-aligned broadcast: parent axis a of a rank-r operand maps
    // to output axis a + (R - r). All sliced operands must land on one
    // output axis; invariant operands must broadcast across it (dim absent
    // or extent 1), else each output column would read a different slice
    // of a time-spanning constant.
    const int64_t out_rank =
        static_cast<int64_t>(n->value.shape().size());
    int64_t out_axis = -1;
    for (size_t i = 0; i < parents.size(); ++i) {
      const int64_t r = static_cast<int64_t>(parents[i]->value.shape().size());
      if (at(i).cls == TimeClass::kSliced) {
        const int64_t oa = at(i).axis + (out_rank - r);
        if (out_axis >= 0 && oa != out_axis) return global;
        out_axis = oa;
      }
    }
    if (out_axis < 0) return global;
    for (size_t i = 0; i < parents.size(); ++i) {
      if (at(i).cls != TimeClass::kInvariant) continue;
      const Shape& s = parents[i]->value.shape();
      const int64_t r = static_cast<int64_t>(s.size());
      const int64_t pos = out_axis - (out_rank - r);
      if (pos >= 0 && s[static_cast<size_t>(pos)] != 1) return global;
    }
    return sliced(out_axis);
  }

  switch (k) {
    case OpKind::kMatMul: {
      // Column independence needs the time axis on the M side of a GEMM
      // against an invariant weight: every output row (= time column) is
      // its own dot-product row, and gemm.h guarantees row bits do not
      // depend on M. Time on the K axis mixes columns; a sliced right
      // operand would transpose time into N with per-column weights.
      if (at(0).cls != TimeClass::kSliced ||
          at(1).cls != TimeClass::kInvariant) {
        return global;
      }
      const int64_t ra = static_cast<int64_t>(parents[0]->value.shape().size());
      const int64_t rb = static_cast<int64_t>(parents[1]->value.shape().size());
      const int64_t ta = at(0).axis;
      if (ta == ra - 1) return global;  // time on K
      if (ta == ra - 2) {
        // Time on M: output keeps [..., time, n].
        if (rb == 2 || rb == ra) return sliced(ta);
        return global;
      }
      // Time on a batch dim: sound only when the weight is rank-2 (shared
      // across the batch); an equal-rank invariant operand would carry a
      // window-sized batch extent of its own.
      if (rb == 2) return sliced(ta);
      return global;
    }
    case OpKind::kTransposeLast2: {
      const int64_t r = static_cast<int64_t>(parents[0]->value.shape().size());
      const int64_t a = at(0).axis;
      if (a == r - 1) return sliced(r - 2);
      if (a == r - 2) return sliced(r - 1);
      return sliced(a);
    }
    case OpKind::kPermute: {
      const std::vector<int64_t>& perm = n->attrs.ints;
      for (size_t j = 0; j < perm.size(); ++j) {
        if (perm[j] == at(0).axis) return sliced(static_cast<int64_t>(j));
      }
      return global;
    }
    case OpKind::kReshape: {
      // The time axis survives a reshape when some output dim of extent
      // `window` has the same element counts before and after it as the
      // input's time axis — then the flat layout keeps whole time blocks
      // intact. Folding time into a fused dim (e.g. [B,N,H*F]) fails the
      // test and is global, as it must be.
      const Shape& in = parents[0]->value.shape();
      const Shape& out = n->value.shape();
      const size_t a = static_cast<size_t>(at(0).axis);
      const int64_t prefix = Prod(in, 0, a);
      const int64_t suffix = Prod(in, a + 1, in.size());
      for (size_t j = 0; j < out.size(); ++j) {
        if (out[j] == window && Prod(out, 0, j) == prefix &&
            Prod(out, j + 1, out.size()) == suffix) {
          return sliced(static_cast<int64_t>(j));
        }
      }
      return global;
    }
    case OpKind::kConcat: {
      // Concat extents must match on every non-concat axis, so an
      // invariant operand would necessarily span the window — global.
      int64_t axis = -1;
      for (size_t i = 0; i < parents.size(); ++i) {
        if (at(i).cls != TimeClass::kSliced) return global;
        if (axis >= 0 && at(i).axis != axis) return global;
        axis = at(i).axis;
      }
      if (axis == n->attrs.axis) return global;
      return sliced(axis);
    }
    case OpKind::kSlice: {
      if (n->attrs.axis == at(0).axis) return global;
      return sliced(at(0).axis);
    }
    case OpKind::kSum: {
      const int64_t a = at(0).axis;
      if (n->attrs.axis == a) return global;
      if (!n->attrs.keepdims && n->attrs.axis < a) return sliced(a - 1);
      return sliced(a);
    }
    case OpKind::kSoftmaxLast: {
      const int64_t r = static_cast<int64_t>(parents[0]->value.shape().size());
      if (at(0).axis == r - 1) return global;
      return sliced(at(0).axis);
    }
    case OpKind::kIndexSelect0: {
      if (at(0).axis == 0) return global;
      return sliced(at(0).axis);
    }
    case OpKind::kFusedMap: {
      // Fusion requires every side to share the head's shape, so each
      // operand must itself be sliced on the head's axis; an invariant
      // side would span the window.
      int64_t axis = -1;
      for (size_t i = 0; i < parents.size(); ++i) {
        if (at(i).cls != TimeClass::kSliced) return global;
        if (axis >= 0 && at(i).axis != axis) return global;
        axis = at(i).axis;
      }
      return sliced(axis);
    }
    default:
      // kSumAll / kMeanAll / kFusedAttention / anything new: global.
      return global;
  }
}

}  // namespace

TimeSliceInfo AnalyzeTimeSlice(const ExecutionPlan& plan, size_t feed_index,
                               int64_t time_axis) {
  TimeSliceInfo info;
  const std::vector<Node*>& steps = plan.forward_steps();
  info.step_class.assign(steps.size(), TimeClass::kGlobal);
  info.step_axis.assign(steps.size(), -1);
  info.global_mask.assign(steps.size(), 1);
  info.non_invariant_mask.assign(steps.size(), 1);

  if (plan.with_backward()) return info;
  if (feed_index >= plan.feed_nodes().size()) return info;
  // A second feed would need its own axis story; serving plans have one.
  if (plan.feed_nodes().size() != 1) return info;
  const Node* feed = plan.feed_nodes()[feed_index];
  const Shape& fs = feed->value.shape();
  if (time_axis < 0 || time_axis >= static_cast<int64_t>(fs.size())) {
    return info;
  }
  info.window = fs[static_cast<size_t>(time_axis)];
  if (info.window < 2) return info;  // nothing to shift

  for (Node* n : steps) {
    if (n->kind == OpKind::kRandn || n->kind == OpKind::kDropoutMask) {
      info.has_rng = true;
      return info;
    }
    // Analysis reads capture-time shapes; a released value means the plan
    // has already replayed and the walk would be blind.
    if (n->value.empty()) return info;
  }

  std::unordered_map<const Node*, NodeTime> cls;
  cls.reserve(plan.nodes().size());
  for (const NodePtr& n : plan.nodes()) {
    if (n->kind == OpKind::kLeaf) {
      cls[n.get()] = {TimeClass::kInvariant, -1};
    }
  }
  cls[feed] = {TimeClass::kSliced, time_axis};

  for (size_t i = 0; i < steps.size(); ++i) {
    const NodeTime t = Transfer(steps[i], cls, info.window);
    cls[steps[i]] = t;
    info.step_class[i] = t.cls;
    info.step_axis[i] = t.axis;
    switch (t.cls) {
      case TimeClass::kInvariant:
        info.invariant_steps.push_back(i);
        ++info.invariant_count;
        info.global_mask[i] = 0;
        info.non_invariant_mask[i] = 0;
        break;
      case TimeClass::kSliced:
        info.sliced_steps.push_back(i);
        ++info.sliced_count;
        info.global_mask[i] = 0;
        break;
      case TimeClass::kGlobal:
        ++info.global_count;
        break;
    }
  }

  // Frontier: sliced steps whose full window value is read outside the
  // sliced segment — by a global step, or as the plan's root.
  std::unordered_map<const Node*, size_t> step_of;
  step_of.reserve(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) step_of[steps[i]] = i;
  std::vector<uint8_t> is_frontier(steps.size(), 0);
  for (size_t i = 0; i < steps.size(); ++i) {
    if (info.step_class[i] != TimeClass::kGlobal) continue;
    for (const NodePtr& p : steps[i]->parents) {
      auto it = step_of.find(p.get());
      if (it != step_of.end() &&
          info.step_class[it->second] == TimeClass::kSliced) {
        is_frontier[it->second] = 1;
      }
    }
  }
  {
    auto it = step_of.find(plan.root_node());
    if (it != step_of.end() &&
        info.step_class[it->second] == TimeClass::kSliced) {
      is_frontier[it->second] = 1;
    }
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    if (is_frontier[i]) info.frontier_steps.push_back(i);
  }

  for (size_t i : info.invariant_steps) info.retain_nodes.push_back(steps[i]);
  for (size_t i : info.frontier_steps) info.retain_nodes.push_back(steps[i]);

  info.feasible = true;
  return info;
}

// --- ColumnProgram --------------------------------------------------------

ColumnProgram::ColumnProgram(const ExecutionPlan& plan,
                             const TimeSliceInfo& info, size_t feed_index) {
  if (!info.feasible) return;
  const std::vector<Node*>& steps = plan.forward_steps();
  const Node* feed = plan.feed_nodes()[feed_index];

  feed_shadow_ = std::make_shared<Node>();
  feed_shadow_->kind = OpKind::kLeaf;

  std::unordered_map<const Node*, NodePtr> shadow;
  shadow.reserve(info.sliced_steps.size() + 1);
  shadow[feed] = feed_shadow_;

  for (size_t i : info.sliced_steps) {
    Node* real = steps[i];
    NodePtr s = std::make_shared<Node>();
    s->kind = real->kind;
    s->attrs = real->attrs;
    if (real->kind == OpKind::kReshape) {
      // The reshape target must name the single-column time extent; every
      // other sliced kind is shape-agnostic (kernels read parent shapes).
      const size_t a = static_cast<size_t>(info.step_axis[i]);
      if (a >= s->attrs.shape.size() ||
          s->attrs.shape[a] != info.window) {
        return;  // surgery target mismatch — leave ok_ false
      }
      s->attrs.shape[a] = 1;
    }
    s->parents.reserve(real->parents.size());
    for (const NodePtr& p : real->parents) {
      auto sh = shadow.find(p.get());
      // Parents that stay on the real plan (params, invariant steps) are
      // shared NodePtrs, so the shadow graph can never outlive them, and
      // Run() reads their current (retained) values.
      s->parents.push_back(sh != shadow.end() ? sh->second : p);
    }
    shadow[real] = s;
    order_.push_back(std::move(s));
  }

  frontier_shadow_.reserve(info.frontier_steps.size());
  for (size_t i : info.frontier_steps) {
    auto it = shadow.find(steps[i]);
    if (it == shadow.end()) return;
    frontier_shadow_.push_back(it->second);
  }
  ok_ = true;
}

void ColumnProgram::Run(const Tensor& feed_column) {
  STWA_CHECK(ok_, "ColumnProgram::Run on a failed build");
  feed_shadow_->value = feed_column;
  for (const NodePtr& n : order_) {
    n->value = Kernel(n->kind).forward(*n);
  }
}

// --- Column splicing ------------------------------------------------------

Tensor SliceTimeColumn(const Tensor& t, int64_t axis, int64_t index) {
  return ops::Slice(t, axis, index, 1);
}

Tensor ShiftAppendColumn(const Tensor& full, const Tensor& column,
                         int64_t axis) {
  const Shape& s = full.shape();
  const size_t a = static_cast<size_t>(axis);
  STWA_CHECK(a < s.size(), "ShiftAppendColumn axis ", axis, " out of rank ",
             s.size());
  const int64_t steps = s[a];
  const int64_t outer = Prod(s, 0, a);
  const int64_t inner = Prod(s, a + 1, s.size());
  STWA_CHECK(column.size() == outer * inner,
             "ShiftAppendColumn column size ", column.size(),
             " != outer*inner ", outer * inner);
  Tensor out = Tensor::Uninit(s);
  const float* src = full.data();
  const float* col = column.data();
  float* dst = out.data();
  const int64_t block = steps * inner;
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(dst + o * block, src + o * block + inner,
                static_cast<size_t>((steps - 1) * inner) * sizeof(float));
    std::memcpy(dst + o * block + (steps - 1) * inner, col + o * inner,
                static_cast<size_t>(inner) * sizeof(float));
  }
  return out;
}

}  // namespace ir
}  // namespace stwa
