// Region partitioning of a (rewritten) forward schedule.
//
// BuildRegionSchedule slices the frozen forward schedule into
// dependency-closed regions: a step joins the region of its op-parents only
// when every op-parent lives in one region and is consumed by exactly one
// distinct node — so no sibling step could have claimed the same region and
// membership never depends on visit order. Every other step opens a new
// region that records its parent regions as dependencies. Steps keep their
// schedule positions inside a region, regions are numbered in the order
// their first step appears, and dependencies always point at lower-numbered
// regions — two captures of the same graph shape therefore produce
// identical region sequences (the determinism contract the plan executor
// and ir_rewrite_test rely on).
//
// Regions are grouped into stages (longest-path depth over the dependency
// edges). Within a stage no region depends on another, so a stage's regions
// may replay concurrently; each region writes only its own steps' buffers
// and reads parent values completed in earlier stages. Sampling steps
// (kRandn / kDropoutMask) are parentless, so each opens its own region —
// at most one sampler per region — and the region's has_rng flag lets the
// executor run those serially in ascending region order, preserving the
// traced draw order exactly (runtime/parallel.h, ir/plan.cc).

#ifndef STWA_IR_REGIONS_H_
#define STWA_IR_REGIONS_H_

#include <cstdint>
#include <vector>

#include "autograd/var.h"

namespace stwa {
namespace ir {

/// One dependency-closed slice of the forward schedule.
struct Region {
  /// Indices into the forward schedule, ascending; replayed in order.
  std::vector<int64_t> steps;
  /// Regions whose last step must complete first (all lower-numbered).
  std::vector<int64_t> deps;
  /// Longest-path depth over region dependencies; regions of equal stage
  /// are independent of each other.
  int64_t stage = 0;
  /// True when the region contains a sampling step (then exactly one);
  /// such regions replay serially in region order to keep the rng stream
  /// identical to traced execution.
  bool has_rng = false;
};

/// The full partition of one forward schedule.
struct RegionSchedule {
  std::vector<Region> regions;
  /// Number of stages (max region stage + 1; 0 for an empty schedule).
  int64_t num_stages = 0;
  /// Most regions sharing one stage — the schedule's parallelism ceiling.
  int64_t max_stage_width = 0;
};

/// Partitions `forward` (the frozen, possibly rewritten schedule) into
/// regions. Pure function of the graph shape: same kinds, same edges, same
/// order in — same region sequence out.
RegionSchedule BuildRegionSchedule(const std::vector<ag::Node*>& forward);

}  // namespace ir
}  // namespace stwa

#endif  // STWA_IR_REGIONS_H_
