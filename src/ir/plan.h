// Captured, replayable execution plans over the typed graph IR.
//
// A GraphCapture records every tape node created while one training (or
// inference) step is traced eagerly. Finish() freezes the recording into an
// ExecutionPlan:
//
//   * the forward schedule is the recorded op nodes in creation order —
//     which IS the eager execution order — then runs through the fusion
//     passes (ir/rewrite.h): elementwise chains collapse into single
//     kFusedMap steps and attention quads into kFusedAttention steps, so a
//     replay executes fewer, fatter kernels that compute the exact same
//     bits (the fused kernels reuse the unfused per-element paths);
//   * the rewritten schedule is partitioned into dependency-closed regions
//     grouped into stages (ir/regions.h); regions within a stage are
//     independent and may replay concurrently on the worker pool
//     (runtime/parallel.h) with a deterministic join — each region writes
//     only its own steps' buffers, sampling regions run serially in region
//     order to preserve the traced rng stream, and buffer releases happen
//     at stage barriers on the orchestrating thread;
//   * the backward schedule is the reversed depth-first post-order of the
//     requires-grad subgraph (ag::detail::TopoSortGradGraph — the same
//     routine Var::Backward uses), pruned to nodes that actually carry a
//     backward kernel, so replayed gradient accumulation is ordered
//     bit-identically to traced Backward(). Fusion never absorbs a node the
//     backward schedule touches (only gradient-free nodes fuse), and the
//     backward schedule always runs serially;
//   * liveness analysis computes, once, the last step at which every
//     intermediate value/gradient can be read; replays release buffers at
//     those points, recycling them through the tensor pool instead of
//     re-growing a fresh tape every step.
//
// Replaying swaps new input data into the captured feed leaves (located by
// buffer identity at capture time) and re-executes the schedules — no node
// allocation, no shared_ptr churn, no topological sort, no closure
// dispatch. Traced and replayed steps are bit-identical by construction:
// same per-element arithmetic, same gradient accumulation paths, and
// per-element results independent of fusion and of region parallelism
// (the simd.h lane-independence contract).
//
// Mode gates (each env var / setter pair follows the same lazy pattern):
//   STWA_NO_PLAN=1 / SetPlanMode(false)          — no capture/replay at all;
//   STWA_NO_FUSE=1 / SetFuseMode(false)          — capture without rewriting
//     (also the compiled-in default under -DSTWA_NO_FUSE=ON);
//   STWA_NO_REGION_PAR=1 / SetRegionParMode(false) — replay serially.
// Consumers snapshot all three at capture/session setup via
// SnapshotPlanModes(), so a mid-run toggle can never produce a half-planned
// epoch or a half-fused session.

#ifndef STWA_IR_PLAN_H_
#define STWA_IR_PLAN_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autograd/var.h"
#include "ir/op_kind.h"
#include "ir/regions.h"

namespace stwa {
namespace ir {

/// Structural summary of a captured plan.
struct PlanStats {
  /// Every node recorded during capture (leaves + ops), before rewriting.
  int64_t captured_nodes = 0;
  /// Op nodes re-executed per forward replay (after fusion rewrites).
  int64_t forward_ops = 0;
  /// Backward kernel invocations per replay (after pruning subgraphs whose
  /// gradients cannot reach a parameter).
  int64_t backward_ops = 0;
  /// Forward ops whose backward never runs (pruned from the grad graph).
  int64_t pruned_ops = 0;
  /// Sum of all op-node value bytes — what a traced step keeps alive in
  /// its tape until the step ends. Baseline for peak_live_bytes.
  int64_t tape_value_bytes = 0;
  /// Analytic peak of live intermediate value + gradient bytes across one
  /// serial replay, per the liveness schedule. Upper bound: aliased buffers
  /// (reshape/detach) are counted once per node.
  int64_t peak_live_bytes = 0;
  /// Intermediate buffers released (and pool-recycled) per replay.
  int64_t released_buffers = 0;

  // --- Rewrite passes (ir/rewrite.h) ---
  /// Fused elementwise-chain nodes emitted.
  int64_t fused_map_nodes = 0;
  /// Fused attention-quad nodes emitted.
  int64_t fused_attention_nodes = 0;
  /// Forward steps removed by fusion (captured ops minus replacements).
  int64_t fused_away_ops = 0;

  // --- Region schedule (ir/regions.h) ---
  /// Dependency-closed regions in the rewritten forward schedule.
  int64_t regions = 0;
  /// Dependency depth of the region graph.
  int64_t region_stages = 0;
  /// Most regions sharing one stage — the replay parallelism ceiling.
  int64_t max_stage_width = 0;
};

/// Per-OpKind timing / allocation accumulators (EnableProfiling).
struct OpProfile {
  OpKind kind = OpKind::kLeaf;
  const char* name = nullptr;
  int64_t forward_calls = 0;
  int64_t backward_calls = 0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  /// Tensor-buffer acquisitions attributed to this kind (pool or heap).
  uint64_t buffer_requests = 0;
  /// Acquisitions that had to heap-allocate (pool misses).
  uint64_t heap_allocs = 0;
};

/// One consumer-visible snapshot of the three plan gates. Taken once per
/// capture scope / session so every decision downstream of it agrees.
struct PlanModes {
  bool plan = true;
  bool fuse = true;
  bool region_parallel = true;
};

/// A frozen forward(+backward) schedule over a captured graph. Created by
/// GraphCapture::Finish; replayed many times with swapped feed data.
class ExecutionPlan {
 public:
  /// Copies `feeds` into the captured feed leaves (same shapes as at
  /// capture), re-executes the forward schedule, seeds the root gradient
  /// and re-executes the backward schedule. Returns the loss (root value).
  /// Parameter gradients are accumulated exactly as a traced
  /// loss.Backward() would; the caller still runs ZeroGrad/clip/step.
  float ReplayTrainStep(const std::vector<Tensor>& feeds);

  /// Forward-only replay (plans captured with with_backward=false);
  /// returns the root's recomputed value.
  const Tensor& ReplayForward(const std::vector<Tensor>& feeds);

  /// True when the plan carries a backward schedule.
  bool with_backward() const { return with_backward_; }

  /// Structural summary (computed once at capture).
  const PlanStats& stats() const { return stats_; }

  /// Compact structural fingerprint of the region schedule — every region's
  /// stage, dependencies and step kinds in region order. Two captures of
  /// the same graph shape produce the same signature (determinism tests).
  std::string RegionSignature() const;

  /// Toggles per-op timing/allocation accounting on replays (off by
  /// default — the hooks cost two clock reads and two pool snapshots per
  /// op). Profiled replays run the serial schedule: the accumulators are
  /// unsynchronised, and serial timings are the ones worth reading.
  void EnableProfiling(bool on) { profiling_ = on; }

  /// Accumulated per-kind profile. Only kinds that appear in this plan's
  /// schedules have rows, and rows with zero recorded calls are omitted.
  std::vector<OpProfile> Profile() const;

  /// Read-only view of the rewritten forward schedule (tests and the
  /// benchmark harness inspect fused-node composition through this).
  const std::vector<ag::Node*>& forward_steps() const { return forward_; }

  /// Captured feed leaves, in the order Finish() received them.
  const std::vector<ag::Node*>& feed_nodes() const { return feed_nodes_; }

  /// Every node recorded by the capture (plan analyses walk leaves too).
  const std::vector<ag::NodePtr>& nodes() const { return nodes_; }

  /// The plan's output node.
  ag::Node* root_node() const { return root_.get(); }

  /// Excludes `keep` from every release list, so those nodes' values
  /// survive across replays (forward-only plans). The time-slice serving
  /// path retains window-invariant steps (computed once, reused every
  /// call) and sliced frontier steps (harvested into the stream cache
  /// after each cold replay). Idempotent; never applies to plans with a
  /// backward schedule (gradient liveness must stay exact).
  void RetainValues(const std::vector<ag::Node*>& keep);

  /// Forward-only serial replay that executes only the steps whose
  /// `execute[i]` is nonzero (parallel to forward_steps()). Skipped steps
  /// keep whatever value their node already holds — the caller guarantees
  /// it is current (retained invariant values, cache-spliced sliced
  /// values). Every release list still runs, so buffer lifetimes match
  /// the serial schedule; releasing a never-computed node just clears an
  /// empty tensor. Returns the root's value.
  const Tensor& ReplayForwardMasked(const std::vector<Tensor>& feeds,
                                    const std::vector<uint8_t>& execute);

 private:
  friend class GraphCapture;
  ExecutionPlan() = default;

  void BindFeeds(const std::vector<Tensor>& feeds);
  void RunForward();
  /// Stage-by-stage forward: sampling regions serially, then the stage's
  /// remaining regions on the worker pool, then the stage's releases.
  void RunForwardRegions();
  /// Replays one region's steps in schedule order (no releases).
  void ExecuteRegion(int64_t region);
  void RunBackward();

  /// Keeps every captured node alive (schedules hold raw pointers).
  std::vector<ag::NodePtr> nodes_;
  ag::NodePtr root_;
  std::vector<ag::Node*> feed_nodes_;
  bool with_backward_ = false;

  /// Op nodes in creation (= eager execution) order, after fusion rewrites.
  std::vector<ag::Node*> forward_;
  /// Reversed topo order over the requires-grad subgraph, pruned to nodes
  /// with backward kernels.
  std::vector<ag::Node*> backward_;

  /// Region partition of forward_ and its stage grouping
  /// (stage_regions_[s] = region indices of stage s, ascending).
  RegionSchedule regions_;
  std::vector<std::vector<int64_t>> stage_regions_;
  /// Whether replays may dispatch stage regions onto the worker pool
  /// (snapshot of the region-parallel gate at capture).
  bool region_par_ = false;

  /// release_after_forward_[i]: nodes whose buffers are dead once
  /// forward_[i] has executed (likewise for backward steps). Releasing
  /// clears value and grad; leaves, feeds and the root are never listed.
  std::vector<std::vector<ag::Node*>> release_after_forward_;
  std::vector<std::vector<ag::Node*>> release_after_backward_;
  /// The forward releases regrouped by the owning step's region stage —
  /// the region-parallel replay frees buffers only at stage barriers, so
  /// no concurrent region can observe a release.
  std::vector<std::vector<ag::Node*>> release_after_stage_;

  PlanStats stats_;
  bool profiling_ = false;
  /// Compact profile: one row per kind present in the schedules;
  /// profile_slot_[kind] maps to the row (-1 when absent).
  std::vector<OpProfile> profile_;
  std::array<int16_t, kNumOpKinds> profile_slot_{};
};

/// RAII recording scope. Construct, trace one step eagerly (build the loss
/// or prediction as usual), then Finish() to freeze a plan. If the scope
/// dies without Finish(), the recording is discarded. The fuse /
/// region-parallel gates are snapshotted at construction, so a toggle
/// between tracing and Finish() cannot split one plan across modes.
class GraphCapture {
 public:
  GraphCapture();
  /// Uses a caller-held gate snapshot instead of re-reading the globals
  /// (serving snapshots once at session open and passes it to every
  /// capture of that session).
  explicit GraphCapture(PlanModes modes);
  ~GraphCapture();

  GraphCapture(const GraphCapture&) = delete;
  GraphCapture& operator=(const GraphCapture&) = delete;

  /// Freezes the recording into a plan. `root` is the traced step's output
  /// (scalar loss for with_backward, prediction otherwise); `feeds` are
  /// the input tensors whose data will be swapped on replay, matched to
  /// captured leaves by buffer identity. Returns nullptr when the capture
  /// cannot be planned (a feed's buffer was copied rather than wrapped, or
  /// the root was created outside the capture) — callers fall back to
  /// eager tracing.
  std::unique_ptr<ExecutionPlan> Finish(const ag::Var& root,
                                        const std::vector<Tensor>& feeds,
                                        bool with_backward);

 private:
  bool finished_ = false;
  PlanModes modes_;
};

/// True when plan capture/replay is globally enabled: the default, unless
/// the STWA_NO_PLAN environment variable is set to a non-zero value or
/// SetPlanMode(false) was called.
bool PlanModeEnabled();

/// Runtime override of the STWA_NO_PLAN gate (used by A/B tests and bench).
void SetPlanMode(bool enabled);

/// True when the fusion rewrite passes run at capture. Default on, unless
/// the build sets -DSTWA_NO_FUSE=ON, the STWA_NO_FUSE environment variable
/// is non-zero, or SetFuseMode(false) was called.
bool FuseModeEnabled();

/// Runtime override of the STWA_NO_FUSE gate.
void SetFuseMode(bool enabled);

/// True when replays may execute stage regions on the worker pool. Default
/// on, unless STWA_NO_REGION_PAR is non-zero or SetRegionParMode(false)
/// was called. Serial and parallel replays are bit-identical either way.
bool RegionParModeEnabled();

/// Runtime override of the STWA_NO_REGION_PAR gate.
void SetRegionParMode(bool enabled);

/// Reads all three gates at once. Trainer and serving snapshot this at
/// setup and never consult the globals again, so every capture and replay
/// of one run agrees on the modes.
PlanModes SnapshotPlanModes();

}  // namespace ir
}  // namespace stwa

#endif  // STWA_IR_PLAN_H_
