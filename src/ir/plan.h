// Captured, replayable execution plans over the typed graph IR.
//
// A GraphCapture records every tape node created while one training (or
// inference) step is traced eagerly. Finish() freezes the recording into an
// ExecutionPlan:
//
//   * the forward schedule is the recorded op nodes in creation order —
//     which IS the eager execution order, so a replay runs the exact same
//     kernels on the exact same graph in the exact same order (including
//     the order sampling ops consume their Rng streams);
//   * the backward schedule is the reversed depth-first post-order of the
//     requires-grad subgraph (ag::detail::TopoSortGradGraph — the same
//     routine Var::Backward uses), pruned to nodes that actually carry a
//     backward kernel, so replayed gradient accumulation is ordered
//     bit-identically to traced Backward();
//   * liveness analysis computes, once, the last step at which every
//     intermediate value/gradient can be read; replays release buffers at
//     those points, recycling them through the tensor pool instead of
//     re-growing a fresh tape every step.
//
// Replaying swaps new input data into the captured feed leaves (located by
// buffer identity at capture time) and re-executes the schedules — no node
// allocation, no shared_ptr churn, no topological sort, no closure
// dispatch. Traced and replayed steps are bit-identical by construction:
// same kernels, same order, same gradient accumulation paths.
//
// STWA_NO_PLAN=1 (or SetPlanMode(false)) disables capture/replay globally;
// every consumer falls back to per-step eager tracing.

#ifndef STWA_IR_PLAN_H_
#define STWA_IR_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/var.h"
#include "ir/op_kind.h"

namespace stwa {
namespace ir {

/// Structural summary of a captured plan.
struct PlanStats {
  /// Every node recorded during capture (leaves + ops).
  int64_t captured_nodes = 0;
  /// Op nodes re-executed per forward replay.
  int64_t forward_ops = 0;
  /// Backward kernel invocations per replay (after pruning subgraphs whose
  /// gradients cannot reach a parameter).
  int64_t backward_ops = 0;
  /// Forward ops whose backward never runs (pruned from the grad graph).
  int64_t pruned_ops = 0;
  /// Sum of all op-node value bytes — what a traced step keeps alive in
  /// its tape until the step ends. Baseline for peak_live_bytes.
  int64_t tape_value_bytes = 0;
  /// Analytic peak of live intermediate value + gradient bytes across one
  /// replay, per the liveness schedule. Upper bound: aliased buffers
  /// (reshape/detach) are counted once per node.
  int64_t peak_live_bytes = 0;
  /// Intermediate buffers released (and pool-recycled) per replay.
  int64_t released_buffers = 0;
};

/// Per-OpKind timing / allocation accumulators (EnableProfiling).
struct OpProfile {
  OpKind kind = OpKind::kLeaf;
  const char* name = nullptr;
  int64_t forward_calls = 0;
  int64_t backward_calls = 0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  /// Tensor-buffer acquisitions attributed to this kind (pool or heap).
  uint64_t buffer_requests = 0;
  /// Acquisitions that had to heap-allocate (pool misses).
  uint64_t heap_allocs = 0;
};

/// A frozen forward(+backward) schedule over a captured graph. Created by
/// GraphCapture::Finish; replayed many times with swapped feed data.
class ExecutionPlan {
 public:
  /// Copies `feeds` into the captured feed leaves (same shapes as at
  /// capture), re-executes the forward schedule, seeds the root gradient
  /// and re-executes the backward schedule. Returns the loss (root value).
  /// Parameter gradients are accumulated exactly as a traced
  /// loss.Backward() would; the caller still runs ZeroGrad/clip/step.
  float ReplayTrainStep(const std::vector<Tensor>& feeds);

  /// Forward-only replay (plans captured with with_backward=false);
  /// returns the root's recomputed value.
  const Tensor& ReplayForward(const std::vector<Tensor>& feeds);

  /// True when the plan carries a backward schedule.
  bool with_backward() const { return with_backward_; }

  /// Structural summary (computed once at capture).
  const PlanStats& stats() const { return stats_; }

  /// Toggles per-op timing/allocation accounting on replays (off by
  /// default — the hooks cost two clock reads and two pool snapshots per
  /// op).
  void EnableProfiling(bool on) { profiling_ = on; }

  /// Accumulated per-kind profile (kinds with zero calls are omitted).
  std::vector<OpProfile> Profile() const;

 private:
  friend class GraphCapture;
  ExecutionPlan() = default;

  void BindFeeds(const std::vector<Tensor>& feeds);
  void RunForward();
  void RunBackward();

  /// Keeps every captured node alive (schedules hold raw pointers).
  std::vector<ag::NodePtr> nodes_;
  ag::NodePtr root_;
  std::vector<ag::Node*> feed_nodes_;
  bool with_backward_ = false;

  /// Op nodes in creation (= eager execution) order.
  std::vector<ag::Node*> forward_;
  /// Reversed topo order over the requires-grad subgraph, pruned to nodes
  /// with backward kernels.
  std::vector<ag::Node*> backward_;

  /// release_after_forward_[i]: nodes whose buffers are dead once
  /// forward_[i] has executed (likewise for backward steps). Releasing
  /// clears value and grad; leaves, feeds and the root are never listed.
  std::vector<std::vector<ag::Node*>> release_after_forward_;
  std::vector<std::vector<ag::Node*>> release_after_backward_;

  PlanStats stats_;
  bool profiling_ = false;
  std::vector<OpProfile> profile_ = std::vector<OpProfile>(kNumOpKinds);
};

/// RAII recording scope. Construct, trace one step eagerly (build the loss
/// or prediction as usual), then Finish() to freeze a plan. If the scope
/// dies without Finish(), the recording is discarded.
class GraphCapture {
 public:
  GraphCapture();
  ~GraphCapture();

  GraphCapture(const GraphCapture&) = delete;
  GraphCapture& operator=(const GraphCapture&) = delete;

  /// Freezes the recording into a plan. `root` is the traced step's output
  /// (scalar loss for with_backward, prediction otherwise); `feeds` are
  /// the input tensors whose data will be swapped on replay, matched to
  /// captured leaves by buffer identity. Returns nullptr when the capture
  /// cannot be planned (a feed's buffer was copied rather than wrapped, or
  /// the root was created outside the capture) — callers fall back to
  /// eager tracing.
  std::unique_ptr<ExecutionPlan> Finish(const ag::Var& root,
                                        const std::vector<Tensor>& feeds,
                                        bool with_backward);

 private:
  bool finished_ = false;
};

/// True when plan capture/replay is globally enabled: the default, unless
/// the STWA_NO_PLAN environment variable is set to a non-zero value or
/// SetPlanMode(false) was called.
bool PlanModeEnabled();

/// Runtime override of the STWA_NO_PLAN gate (used by A/B tests and bench).
void SetPlanMode(bool enabled);

}  // namespace ir
}  // namespace stwa

#endif  // STWA_IR_PLAN_H_
