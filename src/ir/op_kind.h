// Typed operator identities for the autograd graph IR.
//
// Every differentiable operator (autograd/ops.h) used to carry its identity
// implicitly inside a type-erased std::function backward closure. The IR
// makes that identity explicit: each tape node records an OpKind plus a
// small OpAttrs bag, and forward/backward kernels are dispatched through
// the per-kind registry (ir/registry.h). Explicit kinds are what enable
// graph-level tooling: captured execution plans (ir/plan.h), per-op
// profiling, registry-driven gradient checking, and backward-subgraph
// pruning.
//
// This header is dependency-light on purpose: autograd/var.h includes it,
// so it must not include autograd headers back.

#ifndef STWA_IR_OP_KIND_H_
#define STWA_IR_OP_KIND_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace stwa {

class Rng;

namespace ir {

/// Identity of the operator that produced a tape node. kLeaf marks nodes
/// created directly from a tensor (parameters, constants, feeds).
enum class OpKind : uint8_t {
  kLeaf = 0,

  // Elementwise binary (broadcasting).
  kAdd,
  kSub,
  kMul,
  kDiv,

  // Scalar arithmetic.
  kAddScalar,
  kMulScalar,

  // Elementwise unary.
  kExp,
  kLog,
  kSqrt,
  kSquare,
  kAbs,
  kTanh,
  kSigmoid,
  kRelu,

  // Linear algebra / data movement.
  kMatMul,
  kTransposeLast2,
  kPermute,
  kReshape,
  kConcat,
  kSlice,
  kIndexSelect0,

  // Reductions.
  kSumAll,
  kMeanAll,
  kSum,

  // Softmax / losses.
  kSoftmaxLast,
  kHuberElem,

  // Stop-gradient: value aliases the parent, gradients never flow.
  kDetach,

  // Sampling sources: no parents, forward draws from an Rng. Re-run on
  // every plan replay so the random stream matches traced execution.
  kRandn,
  kDropoutMask,

  // Fused super-ops, emitted only by the plan rewriter (ir/rewrite.cc) —
  // eager tracing never constructs them. kFusedMap runs an elementwise
  // chain (stage program in attrs.ints/scalars) in one pooled pass;
  // kFusedAttention runs a matmul→scale→softmax→matmul quad without
  // materialising the score tensor (scale in attrs.scalar).
  kFusedMap,
  kFusedAttention,

  kCount,
};

constexpr int kNumOpKinds = static_cast<int>(OpKind::kCount);

/// Short stable name ("add", "matmul", ...) for logs, bench JSON and
/// error messages.
const char* OpKindName(OpKind kind);

/// Per-node operator attributes. One flat bag shared by all kinds keeps
/// Node small and trivially copyable op-identity-wise; each kind documents
/// which fields it reads (see ir/registry.cc).
struct OpAttrs {
  /// kAddScalar / kMulScalar: the scalar. kHuberElem: delta.
  /// kDropoutMask: keep-probability complement p. kFusedAttention: the
  /// score scale.
  float scalar = 0.0f;
  /// kSum / kConcat / kSlice: the axis (already normalised to >= 0).
  int64_t axis = 0;
  /// kSlice: range start / length.
  int64_t start = 0;
  int64_t len = 0;
  /// kSum: whether the reduced axis is kept as extent 1.
  bool keepdims = false;
  /// kReshape: target shape. kRandn / kDropoutMask: sample shape.
  Shape shape;
  /// kPermute: axis order. kIndexSelect0: row indices. kFusedMap: the
  /// stage program — 3 ints per stage {simd::FusedOp opcode, side slot
  /// into parents[1..] (-1 for unary/scalar stages), swapped flag}.
  std::vector<int64_t> ints;
  /// kFusedMap: per-stage scalar operands (parallel to the stage program).
  std::vector<float> scalars;
  /// kRandn / kDropoutMask: the generator drawn from at every (re)execution.
  /// Non-owning; the model owning the op outlives its plans.
  Rng* rng = nullptr;
};

}  // namespace ir
}  // namespace stwa

#endif  // STWA_IR_OP_KIND_H_
