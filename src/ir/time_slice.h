// Time-axis dependency analysis over frozen forward plans.
//
// Serving is a sliding-window workload: each new observation shifts a
// stream's [N, H, F] history by one step, so H-1 of the per-timestep
// columns the model computes were already computed on the previous
// request. AnalyzeTimeSlice classifies every step of a forward-only
// ExecutionPlan by its dependency footprint along the feed's time axis:
//
//   kInvariant — no path from the feed at all (parameter packs, constant
//     tiles, generated projections of window-invariant latents). Computed
//     once per session and retained across replays.
//   kSliced — the step's output carries a time axis aligned 1:1 with the
//     feed's: column t depends only on feed column t plus invariant
//     inputs. The per-column results of the previous window are reusable
//     after a shift-by-one (embedding projections, per-step linears).
//   kGlobal — everything else (window reductions, attention across the
//     window, reshapes that fold time into features). Recomputed on every
//     call; this is the window-global tail.
//
// The classification is conservative: any op whose per-kind transfer
// function cannot prove column independence degrades to kGlobal, which is
// always correct (it just reuses less). Plans containing sampling ops
// (kRandn / kDropoutMask) are rejected outright — their outputs depend on
// rng stream position, so no cross-call reuse of any kind is sound.
//
// A ColumnProgram is the executable counterpart: a shadow graph of the
// sliced steps with the time extent collapsed to 1, sharing the real
// plan's invariant/parameter nodes as inputs. Running it on the newest
// feed column produces the newest column of every frontier step (a sliced
// step read by a global step or the root); splicing that column onto the
// cached previous-window values (ShiftAppendColumn) reconstructs exactly
// the tensors a cold replay would compute, bit for bit — every kernel
// involved is column-independent by the simd lane contract (GEMM row bits
// do not depend on M, elementwise ops are per-element).

#ifndef STWA_IR_TIME_SLICE_H_
#define STWA_IR_TIME_SLICE_H_

#include <cstdint>
#include <vector>

#include "autograd/var.h"
#include "ir/plan.h"
#include "tensor/tensor.h"

namespace stwa {
namespace ir {

/// Per-step time-axis footprint (see file comment).
enum class TimeClass : uint8_t { kInvariant = 0, kSliced = 1, kGlobal = 2 };

/// Result of AnalyzeTimeSlice over one forward-only plan.
struct TimeSliceInfo {
  /// False when the plan cannot support any incremental path: sampling
  /// ops present, multi-feed, or the feed/time axis did not line up.
  bool feasible = false;
  /// True when the plan contains kRandn/kDropoutMask — outputs are then
  /// rng-stream-dependent and even whole-output memoisation is unsound.
  bool has_rng = false;

  /// Classification per forward step (parallel to plan.forward_steps()).
  std::vector<TimeClass> step_class;
  /// Output time axis per step; -1 unless the step is kSliced.
  std::vector<int64_t> step_axis;

  /// Step indices by class, in schedule order.
  std::vector<size_t> invariant_steps;
  std::vector<size_t> sliced_steps;
  /// Sliced steps whose full window values must be materialised: they are
  /// read by a global step or are the plan root. These are the cacheable
  /// per-stream segment.
  std::vector<size_t> frontier_steps;

  /// Execute masks for ExecutionPlan::ReplayForwardMasked (parallel to
  /// forward_steps()): global steps only (incremental call), and
  /// everything but invariant steps (cold call with warm invariants).
  std::vector<uint8_t> global_mask;
  std::vector<uint8_t> non_invariant_mask;

  /// Nodes whose values must survive across replays: every invariant step
  /// plus every frontier step. Pass to ExecutionPlan::RetainValues.
  std::vector<ag::Node*> retain_nodes;

  int64_t invariant_count = 0;
  int64_t sliced_count = 0;
  int64_t global_count = 0;
  /// Extent of the feed's time axis at capture.
  int64_t window = 0;
};

/// Classifies `plan`'s forward steps along feed `feed_index`'s `time_axis`.
/// The plan must be forward-only. Always returns a fully populated info
/// (masks sized to the schedule) so callers can branch on `feasible`.
TimeSliceInfo AnalyzeTimeSlice(const ExecutionPlan& plan, size_t feed_index,
                               int64_t time_axis);

/// Executable single-column shadow of a plan's sliced segment. Holds
/// private shadow nodes (time extent 1) wired to the real plan's leaves
/// and invariant steps, so Run() dispatches the exact same kernels the
/// plan replays — on one column. Not thread-safe; owned per session like
/// the plan cache itself.
class ColumnProgram {
 public:
  /// Builds the shadow graph. `info` must be the analysis of `plan` with
  /// feasible == true. ok() reports whether construction succeeded.
  ColumnProgram(const ExecutionPlan& plan, const TimeSliceInfo& info,
                size_t feed_index);

  bool ok() const { return ok_; }

  /// Executes the sliced segment on `feed_column` — the feed tensor with
  /// the time axis collapsed to extent 1 (the newest observation column).
  void Run(const Tensor& feed_column);

  /// Newest-column value of frontier step `k` (index into
  /// info.frontier_steps), valid after Run().
  const Tensor& FrontierColumn(size_t k) const {
    return frontier_shadow_[k]->value;
  }

 private:
  bool ok_ = false;
  /// Shadow op nodes in sliced-schedule order.
  std::vector<ag::NodePtr> order_;
  /// Shadow leaf receiving the feed column.
  ag::NodePtr feed_shadow_;
  /// Shadow node of each frontier step, parallel to info.frontier_steps.
  std::vector<ag::NodePtr> frontier_shadow_;
};

/// Copies column `index` of `t` along `axis` (extent-1 result).
Tensor SliceTimeColumn(const Tensor& t, int64_t axis, int64_t index);

/// Returns a fresh tensor shaped like `full` holding full[..., 1:, ...]
/// shifted down one step along `axis` with `column` (extent 1 at `axis`)
/// appended as the newest step — the splice that advances a cached
/// window-aligned value by one observation.
Tensor ShiftAppendColumn(const Tensor& full, const Tensor& column,
                         int64_t axis);

}  // namespace ir
}  // namespace stwa

#endif  // STWA_IR_TIME_SLICE_H_
