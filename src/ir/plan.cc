#include "ir/plan.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "ir/capture.h"
#include "ir/registry.h"
#include "ir/rewrite.h"
#include "runtime/parallel.h"
#include "tensor/buffer_pool.h"

namespace stwa {
namespace ir {
namespace {

using ag::Node;
using ag::NodePtr;

int64_t ValueBytes(const Node* n) {
  return n->value.size() * static_cast<int64_t>(sizeof(float));
}

/// -1 unresolved, 0 disabled, 1 enabled (same lazy pattern for all gates).
int g_plan_mode = -1;
int g_fuse_mode = -1;
int g_region_par_mode = -1;

}  // namespace

bool PlanModeEnabled() {
  if (g_plan_mode < 0) {
    g_plan_mode = GetEnvIntOr("STWA_NO_PLAN", 0) != 0 ? 0 : 1;
  }
  return g_plan_mode == 1;
}

void SetPlanMode(bool enabled) { g_plan_mode = enabled ? 1 : 0; }

bool FuseModeEnabled() {
  if (g_fuse_mode < 0) {
#ifdef STWA_NO_FUSE
    g_fuse_mode = 0;  // compiled-in default for the -DSTWA_NO_FUSE=ON leg
#else
    g_fuse_mode = GetEnvIntOr("STWA_NO_FUSE", 0) != 0 ? 0 : 1;
#endif
  }
  return g_fuse_mode == 1;
}

void SetFuseMode(bool enabled) { g_fuse_mode = enabled ? 1 : 0; }

bool RegionParModeEnabled() {
  if (g_region_par_mode < 0) {
    g_region_par_mode = GetEnvIntOr("STWA_NO_REGION_PAR", 0) != 0 ? 0 : 1;
  }
  return g_region_par_mode == 1;
}

void SetRegionParMode(bool enabled) { g_region_par_mode = enabled ? 1 : 0; }

PlanModes SnapshotPlanModes() {
  return {PlanModeEnabled(), FuseModeEnabled(), RegionParModeEnabled()};
}

// --- GraphCapture ---------------------------------------------------------

GraphCapture::GraphCapture() : GraphCapture(SnapshotPlanModes()) {}

GraphCapture::GraphCapture(PlanModes modes) : modes_(modes) {
  detail::BeginCapture();
}

GraphCapture::~GraphCapture() {
  if (!finished_) detail::EndCapture();  // discard the recording
}

std::unique_ptr<ExecutionPlan> GraphCapture::Finish(
    const ag::Var& root, const std::vector<Tensor>& feeds,
    bool with_backward) {
  STWA_CHECK(!finished_, "GraphCapture::Finish called twice");
  finished_ = true;
  STWA_CHECK(root.defined(), "Finish() with an undefined root");

  std::unique_ptr<ExecutionPlan> plan(new ExecutionPlan());
  plan->nodes_ = detail::EndCapture();
  plan->root_ = root.node();
  plan->with_backward_ = with_backward;

  // The root must be a computation recorded in this capture, otherwise a
  // replay cannot recompute it.
  if (plan->root_->kind == OpKind::kLeaf) return nullptr;
  bool root_recorded = false;
  for (const NodePtr& n : plan->nodes_) {
    if (n.get() == plan->root_.get()) {
      root_recorded = true;
      break;
    }
  }
  if (!root_recorded) return nullptr;
  if (with_backward && !plan->root_->requires_grad) return nullptr;

  // Locate feed leaves by buffer identity: wrapping a batch tensor in a
  // Var shares its buffer, so the leaf whose value aliases the feed is the
  // node replays must copy fresh data into.
  for (const Tensor& feed : feeds) {
    Node* found = nullptr;
    for (const NodePtr& n : plan->nodes_) {
      if (n->kind == OpKind::kLeaf && !n->value.empty() &&
          n->value.data() == feed.data()) {
        found = n.get();
        break;
      }
    }
    if (found == nullptr) return nullptr;
    plan->feed_nodes_.push_back(found);
  }

  // Forward schedule: recorded ops in creation order == eager order.
  for (const NodePtr& n : plan->nodes_) {
    if (n->kind != OpKind::kLeaf) plan->forward_.push_back(n.get());
  }

  // Backward schedule: identical ordering to Var::Backward — reversed
  // depth-first post-order over the requires-grad subgraph, keeping only
  // nodes that dispatch a backward kernel (interior ops; leaves are
  // accumulation targets, not steps).
  if (with_backward) {
    std::vector<Node*> order;
    ag::detail::TopoSortGradGraph(plan->root_, order);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (Kernel((*it)->kind).backward != nullptr) {
        plan->backward_.push_back(*it);
      }
    }
  }

  // Fusion rewrites (after the backward schedule is frozen: only nodes
  // outside it are fusible, and rewriting never touches it). captured_nodes
  // reports the pre-rewrite recording.
  plan->stats_.captured_nodes = static_cast<int64_t>(plan->nodes_.size());
  if (modes_.fuse) {
    const RewriteStats rw =
        ApplyFusionPasses(plan->nodes_, plan->forward_, plan->root_.get());
    plan->stats_.fused_map_nodes = rw.fused_map_nodes;
    plan->stats_.fused_attention_nodes = rw.fused_attention_nodes;
    plan->stats_.fused_away_ops = rw.fused_away_ops;
  }

  // Region partition of the rewritten schedule (always built — it feeds
  // stats and the signature even when replays stay serial).
  plan->regions_ = BuildRegionSchedule(plan->forward_);
  plan->region_par_ = modes_.region_parallel;
  plan->stage_regions_.assign(
      static_cast<size_t>(plan->regions_.num_stages), {});
  for (size_t r = 0; r < plan->regions_.regions.size(); ++r) {
    plan->stage_regions_[static_cast<size_t>(plan->regions_.regions[r].stage)]
        .push_back(static_cast<int64_t>(r));
  }
  plan->stats_.regions = static_cast<int64_t>(plan->regions_.regions.size());
  plan->stats_.region_stages = plan->regions_.num_stages;
  plan->stats_.max_stage_width = plan->regions_.max_stage_width;

  const int64_t F = static_cast<int64_t>(plan->forward_.size());
  const int64_t B = static_cast<int64_t>(plan->backward_.size());
  plan->release_after_forward_.assign(plan->forward_.size(), {});
  plan->release_after_backward_.assign(plan->backward_.size(), {});

  // --- Liveness: last step at which each op node's buffers are read. ----
  // Timeline: forward steps [0, F), then backward steps [F, F+B).
  std::unordered_map<Node*, int64_t> last_use;
  std::unordered_map<Node*, int64_t> forward_step;
  for (int64_t i = 0; i < F; ++i) {
    Node* n = plan->forward_[i];
    forward_step[n] = i;
    last_use[n] = i;  // produced here
    for (const NodePtr& p : n->parents) {
      auto it = last_use.find(p.get());
      if (it != last_use.end()) it->second = i;  // read by this op
    }
  }
  for (int64_t j = 0; j < B; ++j) {
    Node* m = plan->backward_[j];
    const int64_t step = F + j;
    // m's own backward reads m.grad and (EnsureGrad / y-based kernels)
    // m.value.
    last_use[m] = step;
    const bool reads_parents = Kernel(m->kind).backward_reads_parents;
    for (const NodePtr& p : m->parents) {
      auto it = last_use.find(p.get());
      if (it == last_use.end()) continue;  // leaf — never released anyway
      // Parent data/shape reads by the kernel itself, plus the
      // AccumulateGrad shape check for gradient-receiving parents.
      if (reads_parents || p->requires_grad) it->second = step;
    }
  }

  // Nodes whose buffers survive every replay: leaves (parameters,
  // constants, feeds — not scheduled, so absent from last_use) and the
  // root (the plan's output; its grad is the backward seed).
  for (auto& [node, last] : last_use) {
    if (node == plan->root_.get()) continue;
    if (last < F) {
      plan->release_after_forward_[last].push_back(node);
    } else {
      plan->release_after_backward_[last - F].push_back(node);
    }
    ++plan->stats_.released_buffers;
  }

  // The region-parallel replay defers each forward release to the barrier
  // of the LAST stage any consumer runs in. The last-use *slot* is not
  // enough: stages do not respect slot order across regions, so a buffer's
  // final reader in schedule order can run an earlier stage than another
  // reader (release there and the later-stage reader sees a freed buffer).
  // Iterating slots in ascending order keeps the release order
  // deterministic.
  {
    std::vector<int64_t> step_stage(plan->forward_.size(), 0);
    for (const Region& region : plan->regions_.regions) {
      for (int64_t i : region.steps) {
        step_stage[static_cast<size_t>(i)] = region.stage;
      }
    }
    std::unordered_map<Node*, int64_t> release_stage;
    release_stage.reserve(plan->forward_.size());
    for (int64_t i = 0; i < F; ++i) {
      Node* n = plan->forward_[i];
      const int64_t s = step_stage[static_cast<size_t>(i)];
      auto bump = [&](Node* m) {
        auto [it, inserted] = release_stage.try_emplace(m, s);
        if (!inserted && s > it->second) it->second = s;
      };
      bump(n);
      for (const NodePtr& p : n->parents) {
        if (forward_step.count(p.get())) bump(p.get());
      }
    }
    plan->release_after_stage_.assign(
        static_cast<size_t>(plan->regions_.num_stages), {});
    for (int64_t i = 0; i < F; ++i) {
      for (Node* node : plan->release_after_forward_[i]) {
        plan->release_after_stage_[static_cast<size_t>(release_stage.at(node))]
            .push_back(node);
      }
    }
  }

  // --- Stats -------------------------------------------------------------
  plan->stats_.forward_ops = F;
  plan->stats_.backward_ops = B;
  for (Node* n : plan->forward_) {
    plan->stats_.tape_value_bytes += ValueBytes(n);
  }
  {
    std::unordered_set<Node*> scheduled(plan->backward_.begin(),
                                        plan->backward_.end());
    for (Node* n : plan->forward_) {
      if (scheduled.find(n) == scheduled.end()) ++plan->stats_.pruned_ops;
    }
  }

  // Analytic peak of live intermediate bytes across one serial replay,
  // walking the same timeline the replay executes. Gradient buffers are
  // charged when first accumulated into (a consumer's backward for parents,
  // the node's own step for the root seed).
  {
    int64_t live = 0;
    int64_t peak = 0;
    std::unordered_set<Node*> grad_live;
    auto release = [&](const std::vector<Node*>& list) {
      for (Node* r : list) {
        live -= ValueBytes(r);
        if (grad_live.erase(r) > 0) live -= ValueBytes(r);
      }
    };
    for (int64_t i = 0; i < F; ++i) {
      live += ValueBytes(plan->forward_[i]);
      if (live > peak) peak = live;
      release(plan->release_after_forward_[i]);
    }
    for (int64_t j = 0; j < B; ++j) {
      Node* m = plan->backward_[j];
      if (grad_live.insert(m).second) live += ValueBytes(m);
      for (const NodePtr& p : m->parents) {
        if (p != nullptr && p->requires_grad && p->kind != OpKind::kLeaf &&
            grad_live.insert(p.get()).second) {
          live += ValueBytes(p.get());
        }
      }
      if (live > peak) peak = live;
      release(plan->release_after_backward_[j]);
    }
    plan->stats_.peak_live_bytes = peak;
  }

  // The capture step's traced Backward() left gradients on the op nodes;
  // a replay must start from empty intermediate grads exactly like every
  // later replay does (the liveness releases clear them at the end of each
  // replay, but the capture step ran without releases). Leaves keep theirs:
  // parameter gradient lifecycle belongs to the caller.
  for (Node* n : plan->forward_) n->grad = Tensor();

  // Compact profile: a row per kind that actually appears in a schedule,
  // allocated in kind order so row order is stable across captures.
  plan->profile_slot_.fill(-1);
  {
    std::array<bool, kNumOpKinds> present{};
    for (Node* n : plan->forward_) present[static_cast<int>(n->kind)] = true;
    for (Node* n : plan->backward_) present[static_cast<int>(n->kind)] = true;
    for (int k = 0; k < kNumOpKinds; ++k) {
      if (!present[k]) continue;
      plan->profile_slot_[k] = static_cast<int16_t>(plan->profile_.size());
      OpProfile prof;
      prof.kind = static_cast<OpKind>(k);
      prof.name = OpKindName(static_cast<OpKind>(k));
      plan->profile_.push_back(prof);
    }
  }
  return plan;
}

// --- ExecutionPlan --------------------------------------------------------

void ExecutionPlan::BindFeeds(const std::vector<Tensor>& feeds) {
  STWA_CHECK(feeds.size() == feed_nodes_.size(), "plan expects ",
             feed_nodes_.size(), " feeds, got ", feeds.size());
  for (size_t i = 0; i < feeds.size(); ++i) {
    Tensor& dst = feed_nodes_[i]->value;
    STWA_CHECK(feeds[i].size() == dst.size(),
               "feed ", i, " size mismatch: plan captured ",
               ShapeToString(dst.shape()), ", got ",
               ShapeToString(feeds[i].shape()));
    if (feeds[i].data() != dst.data()) dst.CopyDataFrom(feeds[i]);
  }
}

void ExecutionPlan::ExecuteRegion(int64_t region) {
  for (int64_t i : regions_.regions[static_cast<size_t>(region)].steps) {
    Node* n = forward_[i];
    n->value = Kernel(n->kind).forward(*n);
  }
}

void ExecutionPlan::RunForwardRegions() {
  std::vector<int64_t> par;  // this stage's pool-eligible regions
  for (size_t s = 0; s < stage_regions_.size(); ++s) {
    par.clear();
    for (int64_t r : stage_regions_[s]) {
      if (regions_.regions[static_cast<size_t>(r)].has_rng) {
        // Sampling regions run here, serially, in ascending region order —
        // which is capture order — so the rng streams advance exactly as
        // they did during tracing regardless of pool scheduling.
        ExecuteRegion(r);
      } else {
        par.push_back(r);
      }
    }
    runtime::RunRegions(static_cast<int64_t>(par.size()),
                        [&](int64_t k) { ExecuteRegion(par[k]); });
    // Stage barrier passed: every region that may read a buffer released
    // here has completed. Releases stay on the orchestrating thread.
    for (Node* r : release_after_stage_[s]) {
      r->value = Tensor();
      r->grad = Tensor();
    }
  }
}

void ExecutionPlan::RunForward() {
  if (region_par_ && !profiling_) {
    RunForwardRegions();
    return;
  }
  const size_t count = forward_.size();
  for (size_t i = 0; i < count; ++i) {
    Node* n = forward_[i];
    if (profiling_) {
      OpProfile& prof = profile_[profile_slot_[static_cast<int>(n->kind)]];
      const pool::PoolStats before = pool::Stats();
      Stopwatch timer;
      n->value = Kernel(n->kind).forward(*n);
      prof.forward_seconds += timer.ElapsedSeconds();
      const pool::PoolStats after = pool::Stats();
      prof.forward_calls += 1;
      prof.buffer_requests += after.requests - before.requests;
      prof.heap_allocs += after.misses - before.misses;
    } else {
      n->value = Kernel(n->kind).forward(*n);
    }
    for (Node* r : release_after_forward_[i]) {
      r->value = Tensor();
      r->grad = Tensor();
    }
  }
}

void ExecutionPlan::RunBackward() {
  const size_t count = backward_.size();
  for (size_t j = 0; j < count; ++j) {
    Node* n = backward_[j];
    n->EnsureGrad();
    if (profiling_) {
      OpProfile& prof = profile_[profile_slot_[static_cast<int>(n->kind)]];
      const pool::PoolStats before = pool::Stats();
      Stopwatch timer;
      Kernel(n->kind).backward(*n);
      prof.backward_seconds += timer.ElapsedSeconds();
      const pool::PoolStats after = pool::Stats();
      prof.backward_calls += 1;
      prof.buffer_requests += after.requests - before.requests;
      prof.heap_allocs += after.misses - before.misses;
    } else {
      Kernel(n->kind).backward(*n);
    }
    for (Node* r : release_after_backward_[j]) {
      r->value = Tensor();
      r->grad = Tensor();
    }
  }
}

float ExecutionPlan::ReplayTrainStep(const std::vector<Tensor>& feeds) {
  STWA_CHECK(with_backward_, "ReplayTrainStep on a forward-only plan");
  BindFeeds(feeds);
  RunForward();
  const float loss = root_->value.item();
  root_->EnsureGrad();
  root_->grad.Fill(1.0f);
  RunBackward();
  return loss;
}

const Tensor& ExecutionPlan::ReplayForward(const std::vector<Tensor>& feeds) {
  STWA_CHECK(!with_backward_,
             "ReplayForward is reserved for forward-only plans (their "
             "liveness schedule frees buffers during the forward pass)");
  BindFeeds(feeds);
  RunForward();
  return root_->value;
}

void ExecutionPlan::RetainValues(const std::vector<ag::Node*>& keep) {
  STWA_CHECK(!with_backward_,
             "RetainValues is reserved for forward-only plans (training "
             "liveness must stay exact)");
  std::unordered_set<Node*> kept(keep.begin(), keep.end());
  auto filter = [&](std::vector<Node*>& list) {
    size_t w = 0;
    for (Node* n : list) {
      if (kept.find(n) == kept.end()) list[w++] = n;
    }
    list.resize(w);
  };
  for (auto& list : release_after_forward_) filter(list);
  for (auto& list : release_after_stage_) filter(list);
}

const Tensor& ExecutionPlan::ReplayForwardMasked(
    const std::vector<Tensor>& feeds, const std::vector<uint8_t>& execute) {
  STWA_CHECK(!with_backward_,
             "ReplayForwardMasked is reserved for forward-only plans");
  STWA_CHECK(execute.size() == forward_.size(),
             "execute mask covers ", execute.size(), " steps, plan has ",
             forward_.size());
  BindFeeds(feeds);
  const size_t count = forward_.size();
  for (size_t i = 0; i < count; ++i) {
    if (execute[i]) {
      Node* n = forward_[i];
      n->value = Kernel(n->kind).forward(*n);
    }
    for (Node* r : release_after_forward_[i]) {
      r->value = Tensor();
      r->grad = Tensor();
    }
  }
  return root_->value;
}

std::string ExecutionPlan::RegionSignature() const {
  std::string out;
  for (size_t r = 0; r < regions_.regions.size(); ++r) {
    const Region& region = regions_.regions[r];
    out += "r" + std::to_string(r) + "@s" + std::to_string(region.stage);
    if (!region.deps.empty()) {
      out += "<";
      for (size_t d = 0; d < region.deps.size(); ++d) {
        if (d > 0) out += ",";
        out += std::to_string(region.deps[d]);
      }
      out += ">";
    }
    out += "(";
    for (size_t i = 0; i < region.steps.size(); ++i) {
      if (i > 0) out += ",";
      out += OpKindName(forward_[region.steps[i]]->kind);
    }
    out += ");";
  }
  return out;
}

std::vector<OpProfile> ExecutionPlan::Profile() const {
  std::vector<OpProfile> out;
  for (const OpProfile& p : profile_) {
    if (p.forward_calls > 0 || p.backward_calls > 0) out.push_back(p);
  }
  return out;
}

}  // namespace ir
}  // namespace stwa
