// Window attention with learnable proxies (paper §IV-B, Fig. 6-7).
//
// The input sequence (length H_l) is split into W = H_l / S windows. Each
// window has p learnable proxies (a slice of the proxy tensor
// P in R^{W x N x p x d}) that replace the Query of canonical attention:
// every timestamp in the window computes one score per proxy, giving O(H)
// complexity instead of O(H^2) (Eq. 10-11). A weighting network aggregates
// the p proxy outputs into one window representation (Eq. 12-13), and the
// previous window's output is fused into the current window's proxies to
// restore cross-window information flow (Eq. 14).

#ifndef STWA_CORE_WINDOW_ATTENTION_H_
#define STWA_CORE_WINDOW_ATTENTION_H_

#include <memory>

#include "core/proxy_aggregator.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace stwa {
namespace core {

/// Configuration of one window attention layer.
struct WindowAttentionConfig {
  int64_t num_sensors = 0;  // N (proxy tensor is per sensor)
  int64_t input_len = 12;   // H_l; must be divisible by window
  int64_t window = 3;       // S
  int64_t proxies = 1;      // p
  int64_t d_in = 1;         // input feature width
  int64_t d_model = 32;     // d
  /// Attention heads; each head attends with its own d/heads-wide slice of
  /// the proxies and keys (the paper uses 8 heads). Must divide d_model.
  int64_t heads = 1;
  /// When true, Forward expects generated K/V projections; otherwise the
  /// layer owns static (spatio-temporal agnostic) projections.
  bool st_aware = false;
  /// Fuse the previous window's output into the current proxies (Eq. 14);
  /// disabling it removes cross-window information flow (extra ablation).
  bool chain_windows = true;
  AggregatorKind aggregator = AggregatorKind::kWeighted;
};

/// One window attention layer: [B, N, H_l, d_in] -> [B, N, W, d].
class WindowAttentionLayer : public nn::Module {
 public:
  explicit WindowAttentionLayer(WindowAttentionConfig config,
                                Rng* rng = nullptr);

  /// Applies the layer. When config.st_aware, `k_proj` and `v_proj` are the
  /// generated per-sensor projections [B, N, d_in, d] (Eq. 9/10); otherwise
  /// they must be undefined and the static projections are used.
  ag::Var Forward(const ag::Var& x, const ag::Var& k_proj = {},
                  const ag::Var& v_proj = {}) const;

  /// Number of windows W = H_l / S.
  int64_t num_windows() const { return config_.input_len / config_.window; }

  const WindowAttentionConfig& config() const { return config_; }

 private:
  WindowAttentionConfig config_;
  ag::Var proxy_;  // P [W, N, p, d]
  /// theta of Eq. 14: fuses previous window output with the proxies.
  std::unique_ptr<nn::Linear> chain_;
  std::unique_ptr<ProxyAggregator> aggregator_;
  // Static projections used when !st_aware.
  std::unique_ptr<nn::Linear> k_static_;
  std::unique_ptr<nn::Linear> v_static_;
};

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_WINDOW_ATTENTION_H_
