#include "core/sensor_attention.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace core {

SensorCorrelationAttention::SensorCorrelationAttention(int64_t d_model,
                                                       bool st_aware,
                                                       Rng* rng)
    : d_model_(d_model), st_aware_(st_aware) {
  if (!st_aware_) {
    theta1_static_ =
        std::make_unique<nn::Linear>(d_model, d_model, /*bias=*/false, rng);
    theta2_static_ =
        std::make_unique<nn::Linear>(d_model, d_model, /*bias=*/false, rng);
    RegisterModule("theta1", theta1_static_.get());
    RegisterModule("theta2", theta2_static_.get());
  }
}

ag::Var SensorCorrelationAttention::Forward(const ag::Var& h,
                                            const ag::Var& theta1,
                                            const ag::Var& theta2) const {
  STWA_CHECK(h.value().rank() == 3 && h.value().dim(-1) == d_model_,
             "sensor attention expects [B, N, d], got ",
             ShapeToString(h.value().shape()));
  const int64_t batch = h.value().dim(0);
  const int64_t sensors = h.value().dim(1);
  ag::Var e1;
  ag::Var e2;
  if (st_aware_) {
    STWA_CHECK(theta1.defined() && theta2.defined(),
               "st_aware sensor attention needs generated theta matrices");
    // Per-sensor embedding: h [B,N,1,d] @ theta [B,N,d,d] -> [B,N,1,d].
    ag::Var h4 = ag::Reshape(h, {batch, sensors, 1, d_model_});
    e1 = ag::Reshape(ag::MatMul(h4, theta1), {batch, sensors, d_model_});
    e2 = ag::Reshape(ag::MatMul(h4, theta2), {batch, sensors, d_model_});
  } else {
    STWA_CHECK(!theta1.defined() && !theta2.defined(),
               "static sensor attention must not receive generated thetas");
    e1 = theta1_static_->Forward(h);
    e2 = theta2_static_->Forward(h);
  }
  // Eq. 15: B(i, j) = softmax_j( e1(i) . e2(j) ).
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_model_));
  ag::Var scores =
      ag::MulScalar(ag::MatMul(e1, ag::TransposeLast2(e2)), scale);
  ag::Var weights = ag::SoftmaxLast(scores);  // [B, N, N]
  // Eq. 16: h_bar(i) = sum_j B(i, j) * h(j).
  return ag::MatMul(weights, h);
}

}  // namespace core
}  // namespace stwa
