#include "core/memory_model.h"

#include "common/check.h"

namespace stwa {
namespace core {
namespace {

// float32 with a x2 factor for gradient buffers.
constexpr double kBytesPerValue = 4.0 * 2.0;
constexpr double kGb = 1024.0 * 1024.0 * 1024.0;

double ToGb(double values) { return values * kBytesPerValue / kGb; }

}  // namespace

double CanonicalAttentionGb(const MemoryWorkload& w) {
  // Per layer: score matrices B*N*heads*H^2 plus q/k/v B*N*H*d each.
  const double scores = static_cast<double>(w.batch) * w.sensors * w.heads *
                        w.history * w.history;
  const double qkv = 3.0 * w.batch * w.sensors * w.history * w.d_model;
  return ToGb(w.layers * (scores + qkv));
}

double WindowAttentionGb(const MemoryWorkload& w,
                         const std::vector<int64_t>& window_sizes,
                         int64_t proxies) {
  STWA_CHECK(!window_sizes.empty(), "need window sizes");
  double total = 0.0;
  int64_t len = w.history;
  for (int64_t s : window_sizes) {
    STWA_CHECK(s > 0, "bad window size");
    // Scores B*N*p*len, k/v B*N*len*d, outputs B*N*(len/s)*d.
    total += static_cast<double>(w.batch) * w.sensors *
             (proxies * len + 2.0 * len * w.d_model +
              (len / s) * w.d_model);
    len = std::max<int64_t>(1, len / s);
  }
  return ToGb(total);
}

double SlidingWindowAttentionGb(const MemoryWorkload& w, int64_t window) {
  const double scores = static_cast<double>(w.batch) * w.sensors * w.heads *
                        w.history * window;
  const double qkv = 3.0 * w.batch * w.sensors * w.history * w.d_model;
  return ToGb(w.layers * (scores + qkv));
}

double RnnGb(const MemoryWorkload& w) {
  // Unrolled gate activations: ~4 gate tensors of B*N*d per step per layer.
  return ToGb(4.0 * w.layers * w.batch * w.sensors * w.history * w.d_model);
}

double AdaptiveGraphRnnGb(const MemoryWorkload& w) {
  const double rnn = 4.0 * w.layers * w.batch * w.sensors * w.history *
                     w.d_model;
  // The adaptive adjacency softmax(relu(E E^T)) is computed once per step,
  // not per batch element, so it adds only N^2 per layer — AGCRN stays
  // below the budget even at PEMS07 scale, matching Table VI.
  const double adj = static_cast<double>(w.sensors) * w.sensors;
  return ToGb(rnn + w.layers * adj);
}

double EnhanceNetGb(const MemoryWorkload& w) {
  const double rnn = 4.0 * w.layers * w.batch * w.sensors * w.history *
                     w.d_model;
  // Per-(batch, node, step) generated gate caches dominate: the plugin
  // generates distinct parameters for every node, cached across the unroll
  // for backprop: ~ B * N * H * d^2 / 2.
  const double generated = static_cast<double>(w.batch) * w.sensors *
                           w.history * w.d_model * w.d_model / 2.0;
  return ToGb(rnn + generated);
}

double FusionGraphGb(const MemoryWorkload& w) {
  // Localized spatio-temporal fusion graph: dense (4N)x(4N) operator
  // applied per batch element and layer.
  const double fused = 4.0 * w.sensors;
  const double adj = static_cast<double>(w.batch) * fused * fused;
  const double states = static_cast<double>(w.batch) * fused * w.history *
                        w.d_model;
  return ToGb(w.layers * (adj + states));
}

bool WouldOom(double gb, double budget_gb) { return gb > budget_gb; }

int64_t ServingWeightBytes(int64_t weights, int64_t channels,
                           simd::Precision precision) {
  STWA_CHECK(weights >= 0 && channels >= 0, "bad serving-weight counts");
  int64_t bytes = weights * simd::WeightBytes(precision);
  if (precision == simd::Precision::kInt8) bytes += 4 * channels;
  return bytes;
}

double ServingWeightsGb(int64_t weights, int64_t channels,
                        simd::Precision precision) {
  return static_cast<double>(ServingWeightBytes(weights, channels,
                                                precision)) /
         kGb;
}

}  // namespace core
}  // namespace stwa
