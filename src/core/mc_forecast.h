// Monte-Carlo predictive uncertainty from the stochastic latents.
//
// ST-WA's Theta is a distribution; sampling it at inference time yields an
// ensemble of forecasts whose spread quantifies model uncertainty — a
// natural extension of the paper's stochastic design (its deterministic
// eval uses the latent mean only). Useful for the route-planning /
// early-warning applications the paper's introduction motivates.

#ifndef STWA_CORE_MC_FORECAST_H_
#define STWA_CORE_MC_FORECAST_H_

#include "core/stwa_model.h"

namespace stwa {
namespace core {

/// Mean and elementwise standard deviation of an MC forecast ensemble.
struct McForecast {
  /// Ensemble mean [B, N, U, F].
  Tensor mean;
  /// Elementwise std-dev across samples [B, N, U, F].
  Tensor stddev;
  int64_t num_samples = 0;
};

/// Runs `num_samples` stochastic forward passes (training-mode sampling of
/// the latents, no dropout) and aggregates mean and spread. Requires a
/// stochastic ST-aware configuration; throws otherwise.
McForecast MonteCarloForecast(StwaModel& model, const Tensor& x,
                              int64_t num_samples);

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_MC_FORECAST_H_
