#include "core/window_attention.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace stwa {
namespace core {

WindowAttentionLayer::WindowAttentionLayer(WindowAttentionConfig config,
                                           Rng* rng)
    : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "window attention needs num_sensors");
  STWA_CHECK(config_.window > 0 &&
                 config_.input_len % config_.window == 0,
             "window size ", config_.window, " must divide input length ",
             config_.input_len);
  STWA_CHECK(config_.proxies > 0, "need at least one proxy");
  STWA_CHECK(config_.heads > 0 && config_.d_model % config_.heads == 0,
             "heads ", config_.heads, " must divide d_model ",
             config_.d_model);
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const int64_t windows = num_windows();
  // Each of the W windows has its own p proxies per sensor (learned query
  // prototypes capturing the window's representative temporal patterns).
  proxy_ = RegisterParameter(
      "proxy",
      ops::MulScalar(
          Tensor::Randn(
              {windows, config_.num_sensors, config_.proxies,
               config_.d_model},
              r),
          0.3f));
  if (windows > 1 && config_.chain_windows) {
    // With a single window there is no previous window to chain from
    // (Eq. 14), so the fusion network would be dead weight.
    chain_ = std::make_unique<nn::Linear>(2 * config_.d_model,
                                          config_.d_model,
                                          /*bias=*/true, &r);
    RegisterModule("chain", chain_.get());
  }
  aggregator_ =
      std::make_unique<ProxyAggregator>(config_.aggregator, config_.d_model,
                                        &r);
  RegisterModule("aggregator", aggregator_.get());
  if (!config_.st_aware) {
    k_static_ = std::make_unique<nn::Linear>(config_.d_in, config_.d_model,
                                             /*bias=*/false, &r);
    v_static_ = std::make_unique<nn::Linear>(config_.d_in, config_.d_model,
                                             /*bias=*/false, &r);
    RegisterModule("k_static", k_static_.get());
    RegisterModule("v_static", v_static_.get());
  }
}

ag::Var WindowAttentionLayer::Forward(const ag::Var& x,
                                      const ag::Var& k_proj,
                                      const ag::Var& v_proj) const {
  STWA_CHECK(x.value().rank() == 4, "window attention expects [B, N, H, F]");
  const int64_t batch = x.value().dim(0);
  const int64_t sensors = x.value().dim(1);
  STWA_CHECK(sensors == config_.num_sensors && x.value().dim(2) ==
                 config_.input_len && x.value().dim(3) == config_.d_in,
             "window attention input mismatch: got ",
             ShapeToString(x.value().shape()));
  if (config_.st_aware) {
    STWA_CHECK(k_proj.defined() && v_proj.defined(),
               "st_aware layer requires generated K/V projections");
    STWA_CHECK(k_proj.value().rank() == 4 &&
                   k_proj.value().dim(-2) == config_.d_in &&
                   k_proj.value().dim(-1) == config_.d_model,
               "bad K projection shape ",
               ShapeToString(k_proj.value().shape()));
  } else {
    STWA_CHECK(!k_proj.defined() && !v_proj.defined(),
               "static layer must not receive generated projections");
  }

  // Keys / values for the whole sequence at once:
  //   st-aware:  x [B,N,H,F] @ K^(i) [B,N,F,d]  (per-sensor matrices)
  //   static:    x [B,N,H,F] @ K [F,d]          (shared matrix)
  ag::Var keys;
  ag::Var values;
  if (config_.st_aware) {
    keys = ag::MatMul(x, k_proj);     // [B, N, H, d]
    values = ag::MatMul(x, v_proj);   // [B, N, H, d]
  } else {
    keys = k_static_->Forward(x);
    values = v_static_->Forward(x);
  }

  const int64_t windows = num_windows();
  const int64_t s = config_.window;
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.d_model));
  // Broadcast helper: zeros [B,1,1,1] lift the [N,p,d] proxy slice to
  // [B,N,p,d] through the autograd broadcast-add.
  ag::Var batch_lift{Tensor(Shape{batch, 1, 1, 1})};

  ag::Var prev_window;  // h_hat_{w-1} [B, N, d]
  std::vector<ag::Var> window_outputs;
  window_outputs.reserve(windows);
  for (int64_t w = 0; w < windows; ++w) {
    // P_w: [N, p, d] -> [B, N, p, d].
    ag::Var p_w = ag::Reshape(ag::Slice(proxy_, 0, w, 1),
                              {config_.num_sensors, config_.proxies,
                               config_.d_model});
    ag::Var proxies = ag::Add(p_w, batch_lift);
    if (prev_window.defined() && chain_ != nullptr) {
      // Eq. 14: fuse the previous window's output into every proxy.
      ag::Var prev = ag::Reshape(prev_window,
                                 {batch, sensors, 1, config_.d_model});
      // Broadcast prev over the proxy axis.
      ag::Var prev_tiled = ag::Add(
          prev, ag::Var(Tensor(Shape{1, 1, config_.proxies, 1})));
      proxies = chain_->Forward(ag::Concat({prev_tiled, proxies}, -1));
    }
    // Window slice of keys/values: [B, N, S, d].
    ag::Var k_w = ag::Slice(keys, 2, w * s, s);
    ag::Var v_w = ag::Slice(values, 2, w * s, s);
    // Eq. 10: scores = proxies @ keys^T / sqrt(d), multi-head: each head
    // uses its own d/heads-wide slice of proxies, keys and values.
    ag::Var h_w;
    if (config_.heads == 1) {
      ag::Var scores = ag::MulScalar(
          ag::MatMul(proxies, ag::TransposeLast2(k_w)), scale);
      h_w = ag::MatMul(ag::SoftmaxLast(scores), v_w);  // [B, N, p, d]
    } else {
      const int64_t heads = config_.heads;
      const int64_t dh = config_.d_model / heads;
      auto split = [&](const ag::Var& t, int64_t rows) {
        // [B, N, rows, d] -> [B, N, heads, rows, dh]
        return ag::Permute(
            ag::Reshape(t, {batch, sensors, rows, heads, dh}),
            {0, 1, 3, 2, 4});
      };
      ag::Var ph = split(proxies, config_.proxies);
      ag::Var kh = split(k_w, s);
      ag::Var vh = split(v_w, s);
      ag::Var scores = ag::MulScalar(
          ag::MatMul(ph, ag::TransposeLast2(kh)),
          1.0f / std::sqrt(static_cast<float>(dh)));
      ag::Var heads_out =
          ag::MatMul(ag::SoftmaxLast(scores), vh);  // [B,N,heads,p,dh]
      h_w = ag::Reshape(ag::Permute(heads_out, {0, 1, 3, 2, 4}),
                        {batch, sensors, config_.proxies,
                         config_.d_model});
    }
    // Eq. 12-13: aggregate the p proxies into one representation.
    ag::Var h_hat = aggregator_->Forward(h_w);  // [B, N, d]
    window_outputs.push_back(h_hat);
    prev_window = h_hat;
  }
  // [W, B, N, d] -> [B, N, W, d].
  return ag::Permute(ag::Stack(window_outputs), {1, 2, 0, 3});
}

}  // namespace core
}  // namespace stwa
