#include "core/stwa_model.h"

#include "autograd/no_grad.h"
#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace core {

StwaModel::StwaModel(StwaConfig config, Rng* rng)
    : config_(config), noise_rng_(config.noise_seed) {
  STWA_CHECK(config_.num_sensors > 0, "StwaModel needs num_sensors");
  STWA_CHECK(!config_.window_sizes.empty(), "need at least one layer");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  config_.decoder.latent_dim = config_.latent_dim;

  const bool st_aware = config_.latent_mode != LatentMode::kNone;
  if (st_aware) {
    LatentConfig lc;
    lc.num_sensors = config_.num_sensors;
    lc.history = config_.history;
    lc.features = config_.features;
    lc.latent_dim = config_.latent_dim;
    lc.encoder_hidden = config_.encoder_hidden;
    lc.mode = config_.latent_mode;
    lc.stochastic = config_.stochastic;
    latent_ = std::make_unique<StLatent>(lc, &r);
    RegisterModule("latent", latent_.get());
  }

  if (config_.input_embedding) {
    input_embed_ = std::make_unique<nn::Linear>(config_.features,
                                                config_.d_model,
                                                /*bias=*/true, &r);
    RegisterModule("input_embed", input_embed_.get());
  }

  // Stack of window attention layers. Layer l consumes a sequence of
  // length len_l with width d_in_l and emits [*, W_l, d].
  int64_t len = config_.history;
  int64_t d_in = config_.input_embedding ? config_.d_model
                                         : config_.features;
  int64_t skip_width = config_.predictor_hidden;
  for (size_t l = 0; l < config_.window_sizes.size(); ++l) {
    const int64_t s = config_.window_sizes[l];
    STWA_CHECK(s > 0 && len % s == 0, "layer ", l, ": window ", s,
               " does not divide input length ", len);
    WindowAttentionConfig wc;
    wc.num_sensors = config_.num_sensors;
    wc.input_len = len;
    wc.window = s;
    wc.proxies = config_.proxies;
    wc.heads = config_.heads;
    wc.chain_windows = config_.chain_windows;
    wc.d_in = d_in;
    wc.d_model = config_.d_model;
    wc.st_aware = st_aware;
    wc.aggregator = config_.aggregator;
    layers_.push_back(std::make_unique<WindowAttentionLayer>(wc, &r));
    RegisterModule("wa" + std::to_string(l), layers_.back().get());

    if (st_aware) {
      k_decoders_.push_back(std::make_unique<ParamDecoder>(
          config_.decoder, d_in, config_.d_model, &r));
      v_decoders_.push_back(std::make_unique<ParamDecoder>(
          config_.decoder, d_in, config_.d_model, &r));
      RegisterModule("k_dec" + std::to_string(l), k_decoders_.back().get());
      RegisterModule("v_dec" + std::to_string(l), v_decoders_.back().get());
    }
    if (config_.sensor_attention) {
      sensor_attn_.push_back(std::make_unique<SensorCorrelationAttention>(
          config_.d_model, config_.st_aware_sensor_attention, &r));
      RegisterModule("sensor" + std::to_string(l),
                     sensor_attn_.back().get());
      if (config_.st_aware_sensor_attention) {
        STWA_CHECK(st_aware,
                   "st_aware_sensor_attention requires a latent mode");
        theta1_decoders_.push_back(std::make_unique<ParamDecoder>(
            config_.decoder, config_.d_model, config_.d_model, &r));
        theta2_decoders_.push_back(std::make_unique<ParamDecoder>(
            config_.decoder, config_.d_model, config_.d_model, &r));
        RegisterModule("t1_dec" + std::to_string(l),
                       theta1_decoders_.back().get());
        RegisterModule("t2_dec" + std::to_string(l),
                       theta2_decoders_.back().get());
      }
    }
    len = len / s;  // window count becomes the next layer's length
    d_in = config_.d_model;

    // Per-layer skip connection: flatten [W_l, d] and project to the
    // shared predictor width (Eq. 18).
    skips_.push_back(std::make_unique<nn::Linear>(
        len * config_.d_model, skip_width, /*bias=*/true, &r));
    RegisterModule("skip" + std::to_string(l), skips_.back().get());
  }

  // Predictor (Eq. 19): 2 fully connected layers.
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{skip_width, config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var StwaModel::Forward(const Tensor& x, bool training) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history &&
                 x.dim(3) == config_.features,
             "StwaModel expects [B, ", config_.num_sensors, ", ",
             config_.history, ", ", config_.features, "], got ",
             ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  ag::Var input(x);

  ag::Var theta;
  const bool st_aware = config_.latent_mode != LatentMode::kNone;
  if (st_aware) {
    theta = latent_->Forward(input, training, noise_rng_);  // [B, N, k]
    last_reg_ = ag::MulScalar(latent_->last_kl(), config_.kl_weight);
  } else {
    last_reg_ = ag::Var();
  }

  ag::Var cur = input_embed_ != nullptr ? input_embed_->Forward(input)
                                        : input;
  ag::Var skip_sum;
  for (size_t l = 0; l < layers_.size(); ++l) {
    ag::Var out;
    if (st_aware) {
      ag::Var k_proj = k_decoders_[l]->Forward(theta);
      ag::Var v_proj = v_decoders_[l]->Forward(theta);
      out = layers_[l]->Forward(cur, k_proj, v_proj);
    } else {
      out = layers_[l]->Forward(cur);
    }
    // out: [B, N, W_l, d]
    if (config_.sensor_attention) {
      const int64_t windows = out.value().dim(2);
      // Fold the window axis into the batch so the sensor attention mixes
      // sensors within the same window: [B, N, W, d] -> [B*W, N, d].
      ag::Var folded = ag::Reshape(
          ag::Permute(out, {0, 2, 1, 3}),
          {batch * windows, config_.num_sensors, config_.d_model});
      if (config_.st_aware_sensor_attention) {
        // The generated thetas are per (batch, sensor); repeat them across
        // the folded window axis via IndexSelect on axis 0 after reshaping
        // would be costly — instead fold windows into the matrix batch by
        // tiling theta matrices. For W windows we reuse the same matrices,
        // so expand with a broadcast-friendly reshape.
        ag::Var t1 = theta1_decoders_[l]->Forward(theta);  // [B,N,d,d]
        ag::Var t2 = theta2_decoders_[l]->Forward(theta);
        // [B, N, d, d] -> [B, 1, N, d, d] -> tile W -> [B*W, N, d, d]
        Shape t_shape = t1.value().shape();
        ag::Var t1e = ag::Reshape(
            t1, {batch, 1, config_.num_sensors, t_shape[2], t_shape[3]});
        ag::Var t2e = ag::Reshape(
            t2, {batch, 1, config_.num_sensors, t_shape[2], t_shape[3]});
        ag::Var tile{Tensor(Shape{1, windows, 1, 1, 1})};
        t1e = ag::Reshape(ag::Add(t1e, tile),
                          {batch * windows, config_.num_sensors, t_shape[2],
                           t_shape[3]});
        t2e = ag::Reshape(ag::Add(t2e, tile),
                          {batch * windows, config_.num_sensors, t_shape[2],
                           t_shape[3]});
        folded = sensor_attn_[l]->Forward(folded, t1e, t2e);
      } else {
        folded = sensor_attn_[l]->Forward(folded);
      }
      out = ag::Permute(
          ag::Reshape(folded,
                      {batch, windows, config_.num_sensors, config_.d_model}),
          {0, 2, 1, 3});
    }
    // Skip connection (Eq. 18).
    const int64_t windows = out.value().dim(2);
    ag::Var flat = ag::Reshape(
        out, {batch, config_.num_sensors, windows * config_.d_model});
    ag::Var skip = skips_[l]->Forward(flat);
    skip_sum = skip_sum.defined() ? ag::Add(skip_sum, skip) : skip;
    cur = out;
  }

  // Predictor (Eq. 19).
  ag::Var pred = predictor_->Forward(skip_sum);  // [B, N, U*F]
  return ag::Reshape(pred, {batch, config_.num_sensors, config_.horizon,
                            config_.features});
}

ag::Var StwaModel::RegularizationLoss() const { return last_reg_; }

std::string StwaModel::name() const {
  const bool st = config_.latent_mode == LatentMode::kSpatioTemporal;
  const bool s = config_.latent_mode == LatentMode::kSpatial;
  std::string base = config_.window_sizes.size() == 1 ? "WA-1" : "WA";
  if (s) return "S-" + base;
  if (st) {
    if (!config_.stochastic) return "Det-ST-" + base;
    if (config_.aggregator == AggregatorKind::kMean) {
      return "ST-" + base + "(mean)";
    }
    return "ST-" + base;
  }
  return base;
}

Tensor StwaModel::GeneratedProjections(const Tensor& x, int64_t layer) {
  STWA_CHECK(config_.latent_mode != LatentMode::kNone,
             "no generated projections in the agnostic variant");
  STWA_CHECK(layer >= 0 && layer < static_cast<int64_t>(k_decoders_.size()),
             "layer out of range");
  ag::NoGradMode no_grad;  // analysis-only pass, no gradients needed
  ag::Var input(x);
  ag::Var theta = latent_->Forward(input, /*training=*/false, noise_rng_);
  ag::Var k_proj = k_decoders_[layer]->Forward(theta);  // [B, N, d_in, d]
  Tensor value = k_proj.value();
  const int64_t sensors = value.dim(1);
  const int64_t flat = value.dim(2) * value.dim(3);
  // Batch element 0.
  return ops::Slice(value, 0, 0, 1).Reshape({sensors, flat});
}

Tensor StwaModel::SpatialLatentMeans() const {
  STWA_CHECK(latent_ != nullptr, "no latent module in this variant");
  return latent_->spatial_mean().value().Clone();
}

StwaConfig MakeVariantConfig(const StwaConfig& base,
                             const std::string& variant) {
  StwaConfig c = base;
  if (variant == "WA-1") {
    c.latent_mode = LatentMode::kNone;
    // Single layer whose window divides H (largest of the base sizes that
    // divides the history; fall back to the first divisor).
    int64_t w = base.history;
    for (int64_t cand : base.window_sizes) {
      if (base.history % cand == 0) {
        w = cand;
        break;
      }
    }
    c.window_sizes = {w};
  } else if (variant == "WA") {
    c.latent_mode = LatentMode::kNone;
  } else if (variant == "S-WA") {
    c.latent_mode = LatentMode::kSpatial;
  } else if (variant == "ST-WA") {
    c.latent_mode = LatentMode::kSpatioTemporal;
  } else if (variant == "Det-ST-WA") {
    c.latent_mode = LatentMode::kSpatioTemporal;
    c.stochastic = false;
  } else if (variant == "ST-WA-mean") {
    c.latent_mode = LatentMode::kSpatioTemporal;
    c.aggregator = AggregatorKind::kMean;
  } else {
    STWA_FAIL("unknown ST-WA variant '", variant, "'");
  }
  return c;
}

}  // namespace core
}  // namespace stwa
