// Decoder D_omega: stochastic latent -> model parameters (paper §IV-A3).
//
// The decoder is shared across sensors; its factorised output layer (a
// weight pool contracted against the decoder code) keeps the parameter
// count at O(k*m1 + m1*m2 + m2*rows*cols), decoupling the number of
// sensors N from the dominant rows*cols term — exactly the complexity
// argument of the paper. The pool bias acts as a shared "base" projection
// matrix which the per-sensor code modulates.

#ifndef STWA_CORE_PARAM_DECODER_H_
#define STWA_CORE_PARAM_DECODER_H_

#include <memory>

#include "nn/mlp.h"
#include "nn/module.h"

namespace stwa {
namespace core {

/// Decoder widths (paper: a 3-layer fully connected network).
struct DecoderConfig {
  int64_t latent_dim = 16;  // k
  int64_t hidden1 = 16;     // m1
  int64_t hidden2 = 32;     // m2
};

/// Decodes Theta [B, N, k] into per-sensor parameter matrices
/// [B, N, rows, cols], e.g. attention projections K_t^(i), V_t^(i)
/// (rows = d_in, cols = d) or GRU weight blocks.
class ParamDecoder : public nn::Module {
 public:
  ParamDecoder(DecoderConfig config, int64_t rows, int64_t cols,
               Rng* rng = nullptr);

  /// theta [B, N, k] -> parameters [B, N, rows, cols].
  ag::Var Forward(const ag::Var& theta) const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

 private:
  DecoderConfig config_;
  int64_t rows_;
  int64_t cols_;
  std::unique_ptr<nn::Mlp> trunk_;  // k -> m1 -> m2 (ReLU)
  ag::Var pool_;                    // [m2, rows*cols]
  ag::Var base_;                    // [rows*cols] shared base parameters
};

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_PARAM_DECODER_H_
