// The full ST-WA forecasting model (paper §IV-D, Fig. 8) and its ablation
// variants.
//
// Stacked window attention layers with spatio-temporal aware generated
// projections; each layer shrinks the temporal axis by its window size,
// sensor correlation attention mixes information across sensors, per-layer
// skip connections feed a 2-layer predictor (Eq. 17-19). The configuration
// flags reproduce every ablation of §V-B:
//
//   variant            | latent_mode       | stochastic | aggregator
//   -------------------+-------------------+------------+-----------
//   WA-1 / WA          | kNone             | -          | weighted
//   S-WA               | kSpatial          | true       | weighted
//   ST-WA              | kSpatioTemporal   | true       | weighted
//   Deterministic ST-WA| kSpatioTemporal   | false      | weighted
//   Mean-agg ST-WA     | kSpatioTemporal   | true       | mean
//
// (The SA variant — canonical self-attention — lives in
// core/enhanced_models.h as AttForecaster.)

#ifndef STWA_CORE_STWA_MODEL_H_
#define STWA_CORE_STWA_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/latent.h"
#include "core/param_decoder.h"
#include "core/sensor_attention.h"
#include "core/window_attention.h"
#include "nn/mlp.h"
#include "train/trainer.h"

namespace stwa {
namespace core {

/// Full-model configuration (defaults follow the paper's H=12 setting:
/// 3 layers with windows 3/2/2, p=1, d=32, k=16).
struct StwaConfig {
  int64_t num_sensors = 0;
  int64_t history = 12;
  int64_t horizon = 12;
  int64_t features = 1;
  /// Window size per layer; layer l+1's input length is layer l's window
  /// count. Every size must divide the incoming length.
  std::vector<int64_t> window_sizes = {3, 2, 2};
  int64_t proxies = 1;
  /// Attention heads inside each window attention layer (paper: 8).
  int64_t heads = 2;
  int64_t d_model = 32;
  int64_t latent_dim = 16;
  int64_t encoder_hidden = 32;
  DecoderConfig decoder;
  LatentMode latent_mode = LatentMode::kSpatioTemporal;
  bool stochastic = true;
  AggregatorKind aggregator = AggregatorKind::kWeighted;
  /// Enable the cross-sensor attention of §IV-C.
  bool sensor_attention = true;
  /// Generate per-sensor theta_1/theta_2 for the sensor attention too.
  bool st_aware_sensor_attention = false;
  int64_t predictor_hidden = 256;
  /// Lift the raw F-dimensional input to d_model with a start projection
  /// before the first window attention layer (as in the authors' released
  /// implementation); the latent encoder still sees the raw window.
  bool input_embedding = true;
  /// Cross-window proxy chaining (Eq. 14); extra ablation knob.
  bool chain_windows = true;
  /// alpha of Eq. 20.
  float kl_weight = 1e-3f;
  /// Seed for the reparameterisation noise stream.
  uint64_t noise_seed = 42;
};

/// The ST-WA model; ablation variants are produced purely by configuration.
class StwaModel : public train::ForecastModel {
 public:
  explicit StwaModel(StwaConfig config, Rng* rng = nullptr);

  /// x [B, N, H, F] (normalised) -> forecast [B, N, U, F] (normalised).
  ag::Var Forward(const Tensor& x, bool training) override;

  /// alpha * KL of the last Forward (undefined when latent_mode == kNone).
  ag::Var RegularizationLoss() const override;

  std::string name() const override;

  const StwaConfig& config() const { return config_; }

  /// Generated K-projection matrices of layer `layer` for the given input,
  /// flattened per sensor: [N, d_in*d] (batch 0). Used by the Figure 9
  /// t-SNE analysis of phi_t^(i).
  Tensor GeneratedProjections(const Tensor& x, int64_t layer);

  /// Learned per-sensor spatial latent means mu^(i) [N, k] (Figure 9b).
  Tensor SpatialLatentMeans() const;

 private:
  StwaConfig config_;
  std::unique_ptr<StLatent> latent_;
  std::vector<std::unique_ptr<ParamDecoder>> k_decoders_;
  std::vector<std::unique_ptr<ParamDecoder>> v_decoders_;
  std::vector<std::unique_ptr<ParamDecoder>> theta1_decoders_;
  std::vector<std::unique_ptr<ParamDecoder>> theta2_decoders_;
  std::vector<std::unique_ptr<WindowAttentionLayer>> layers_;
  std::vector<std::unique_ptr<SensorCorrelationAttention>> sensor_attn_;
  std::vector<std::unique_ptr<nn::Linear>> skips_;
  std::unique_ptr<nn::Linear> input_embed_;
  std::unique_ptr<nn::Mlp> predictor_;
  ag::Var last_reg_;
  Rng noise_rng_;
};

/// Builds the paper's named ablation variants on top of a base config.
StwaConfig MakeVariantConfig(const StwaConfig& base,
                             const std::string& variant);

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_STWA_MODEL_H_
