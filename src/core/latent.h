// Spatio-temporal aware stochastic latent variables (paper §IV-A2).
//
// Theta_t^(i) = z^(i) + z_t^(i)                              (Eq. 4)
//   z^(i)   ~ N(mu^(i), Sigma^(i)),   mu/Sigma directly learnable (Eq. 5)
//   z_t^(i) ~ N(mu_t^(i), Sigma_t^(i)) = E_psi(recent H steps) (Eq. 6-7)
//
// Covariances are diagonal (as in the paper's implementation). The sum of
// the two independent Gaussians is again Gaussian, which gives an analytic
// KL divergence to the prior N(0, I) for the loss regulariser (Eq. 20).
// Sampling uses the reparameterisation trick so gradients flow to mu and
// log-variance. A deterministic variant (Table XI) uses the means directly
// and reports zero KL.

#ifndef STWA_CORE_LATENT_H_
#define STWA_CORE_LATENT_H_

#include "autograd/ops.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace stwa {
namespace core {

/// Which latent variables participate in Theta.
enum class LatentMode {
  /// No parameter generation (spatio-temporal agnostic model).
  kNone,
  /// Only the spatial-aware z^(i) (the paper's S-WA / "+S" variants).
  kSpatial,
  /// z^(i) + z_t^(i) (the full ST-aware model, "+ST").
  kSpatioTemporal,
};

/// Configuration of the latent module.
struct LatentConfig {
  int64_t num_sensors = 0;
  /// Length H of the recent window fed to the temporal encoder.
  int64_t history = 12;
  /// Input features F per timestamp.
  int64_t features = 1;
  /// Latent dimensionality k (paper default 16; Table XII sweeps it).
  int64_t latent_dim = 16;
  /// Hidden width of the 3-layer encoder E_psi (paper: 32).
  int64_t encoder_hidden = 32;
  LatentMode mode = LatentMode::kSpatioTemporal;
  /// Stochastic (reparameterised sampling + KL) vs deterministic means.
  bool stochastic = true;
};

/// Learns the stochastic latents and produces Theta samples plus the KL
/// regulariser of the most recent Forward call.
class StLatent : public nn::Module {
 public:
  StLatent(LatentConfig config, Rng* rng = nullptr);

  /// Produces Theta [B, N, k] from the recent window x [B, N, H, F].
  /// In training mode with stochastic=true, samples via reparameterisation
  /// with noise drawn from `noise_rng`; otherwise returns the mean.
  /// Also records the analytic KL(Theta || N(0, I)) (mean over elements),
  /// retrievable through last_kl() until the next Forward.
  ag::Var Forward(const ag::Var& x_recent, bool training, Rng& noise_rng);

  /// KL term of the last Forward ([] scalar; zero when deterministic or
  /// mode == kNone).
  const ag::Var& last_kl() const { return last_kl_; }

  const LatentConfig& config() const { return config_; }

  /// Learnable per-sensor means mu^(i) [N, k] (for the Fig. 9 analysis).
  const ag::Var& spatial_mean() const { return mu_; }

 private:
  LatentConfig config_;
  // Spatial latent parameters (Eq. 5).
  ag::Var mu_;       // [N, k]
  ag::Var logvar_;   // [N, k]
  // Temporal encoder E_psi (Eq. 6): 3-layer MLP -> 2k (mean, logvar).
  std::unique_ptr<nn::Mlp> encoder_;
  ag::Var last_kl_;
};

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_LATENT_H_
