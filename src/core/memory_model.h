// Analytic training-memory model (paper Table VI / Table VIII).
//
// The paper reports out-of-memory failures on a 16 GB V100 for EnhanceNet
// and STFGNN at PEMS07 scale (N = 883) with H = U = 72. We cannot allocate
// 16 GB here, so Table VI's OOM column is reproduced analytically: each
// architecture family gets a documented activation-memory formula (float32,
// x2 for gradient buffers), evaluated at the PAPER's scale (real N, batch
// 64), and a model is marked OOM when the estimate exceeds the budget.
// The formulas capture each family's dominant term:
//   * canonical attention:  L * B * N * H^2 score matrices (quadratic in H);
//   * window attention:     L * B * N * p * H (linear in H);
//   * sliding-window attn:  L * B * N * H * S;
//   * plain RNN family:     L * B * N * H * d unrolled states;
//   * adaptive-graph RNN (AGCRN): RNN states + B * N^2 adaptive adjacency;
//   * EnhanceNet:           RNN states + per-(batch, node, step) generated
//                           gate caches ~ B * N * H * d^2 / 2;
//   * fusion-graph conv (STFGNN): dense (4N)^2 localized fusion adjacency
//                           batched over B.
// Constants are calibrated so the paper-scale pattern matches Table VI
// (EnhanceNet & STFGNN exceed 16 GB only on PEMS07).

#ifndef STWA_CORE_MEMORY_MODEL_H_
#define STWA_CORE_MEMORY_MODEL_H_

#include <cstdint>
#include <vector>

#include "simd/lowp.h"

namespace stwa {
namespace core {

/// Workload dimensions at which memory is estimated.
struct MemoryWorkload {
  int64_t batch = 64;
  int64_t sensors = 0;   // N
  int64_t history = 12;  // H
  int64_t horizon = 12;  // U
  int64_t d_model = 32;  // the paper's hidden width d
  int64_t layers = 3;
  int64_t heads = 8;
};

/// Activation GB for L layers of canonical self-attention (SA / ATT /
/// ASTGNN-style encoders).
double CanonicalAttentionGb(const MemoryWorkload& w);

/// Activation GB for stacked window attention with the given per-layer
/// window sizes and p proxies (the ST-WA family).
double WindowAttentionGb(const MemoryWorkload& w,
                         const std::vector<int64_t>& window_sizes,
                         int64_t proxies);

/// Activation GB for sliding-window attention with window S (LongFormer).
double SlidingWindowAttentionGb(const MemoryWorkload& w, int64_t window);

/// Activation GB for plain RNN/TCN unrolls (DCRNN, STGCN, GWN, meta-LSTM).
double RnnGb(const MemoryWorkload& w);

/// Activation GB for AGCRN (RNN states + adaptive adjacency).
double AdaptiveGraphRnnGb(const MemoryWorkload& w);

/// Activation GB for EnhanceNet (per-node generated gate caches).
double EnhanceNetGb(const MemoryWorkload& w);

/// Activation GB for STFGNN's localized spatio-temporal fusion graph.
double FusionGraphGb(const MemoryWorkload& w);

/// True when the estimate exceeds the device budget (paper: 16 GB V100).
bool WouldOom(double gb, double budget_gb = 16.0);

/// Resident bytes for `weights` GEMM weight values served at `precision`
/// (simd/lowp.h): 4 bytes at fp32, 2 at bf16, 1 at int8 — plus one fp32
/// dequantisation scale per output channel for int8 (`channels` total
/// across all layers; ignored for the other tiers). Activations are fp32
/// in every tier and are not counted here.
int64_t ServingWeightBytes(int64_t weights, int64_t channels,
                           simd::Precision precision);

/// Same estimate in GB, for capacity statements about how many model
/// replicas fit a serving budget.
double ServingWeightsGb(int64_t weights, int64_t channels,
                        simd::Precision precision);

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_MEMORY_MODEL_H_
