// Proxy aggregation (paper Eq. 12-13, Fig. 7): weighs the p proxy outputs
// of a window with a 2-layer gate network and sums them into one window
// representation. The mean aggregator of Table XIV is the ablation.

#ifndef STWA_CORE_PROXY_AGGREGATOR_H_
#define STWA_CORE_PROXY_AGGREGATOR_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace stwa {
namespace core {

/// Aggregation strategy for the p proxies of a window.
enum class AggregatorKind {
  /// A = sigmoid(W2 tanh(W1 h)); h_hat = sum_j A_j ⊙ h_j (Eq. 12-13).
  kWeighted,
  /// h_hat = mean_j h_j (Table XIV ablation).
  kMean,
};

/// Aggregates proxy outputs [B, N, p, d] into [B, N, d].
class ProxyAggregator : public nn::Module {
 public:
  ProxyAggregator(AggregatorKind kind, int64_t d_model, Rng* rng = nullptr);

  ag::Var Forward(const ag::Var& proxy_outputs) const;

  AggregatorKind kind() const { return kind_; }

 private:
  AggregatorKind kind_;
  int64_t d_model_;
  std::unique_ptr<nn::Linear> w1_;
  std::unique_ptr<nn::Linear> w2_;
};

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_PROXY_AGGREGATOR_H_
