#include "core/mc_forecast.h"

#include <cmath>

#include "autograd/no_grad.h"
#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace core {

McForecast MonteCarloForecast(StwaModel& model, const Tensor& x,
                              int64_t num_samples) {
  STWA_CHECK(num_samples >= 2, "need at least 2 samples for a spread");
  STWA_CHECK(model.config().latent_mode != LatentMode::kNone &&
                 model.config().stochastic,
             "MonteCarloForecast requires a stochastic ST-aware model");
  // Sampling needs training=true (latent noise) but never gradients:
  // skip tape construction for all num_samples forward passes.
  ag::NoGradMode no_grad;
  McForecast out;
  out.num_samples = num_samples;
  Tensor sum;
  Tensor sum_sq;
  for (int64_t s = 0; s < num_samples; ++s) {
    // training=true activates latent sampling; parameters are not updated.
    Tensor pred = model.Forward(x, /*training=*/true).value();
    if (s == 0) {
      sum = pred.Clone();
      sum_sq = ops::Square(pred);
    } else {
      ops::AddInPlace(sum, pred);
      ops::AddInPlace(sum_sq, ops::Square(pred));
    }
  }
  const float inv = 1.0f / static_cast<float>(num_samples);
  out.mean = ops::MulScalar(sum, inv);
  // Var = E[x^2] - E[x]^2, clamped at 0 against rounding.
  Tensor var = ops::Sub(ops::MulScalar(sum_sq, inv), ops::Square(out.mean));
  out.stddev = ops::UnaryOp(
      var, [](float v) { return std::sqrt(std::max(v, 0.0f)); });
  return out;
}

}  // namespace core
}  // namespace stwa
