#include "core/param_decoder.h"

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace stwa {
namespace core {

ParamDecoder::ParamDecoder(DecoderConfig config, int64_t rows, int64_t cols,
                           Rng* rng)
    : config_(config), rows_(rows), cols_(cols) {
  STWA_CHECK(rows > 0 && cols > 0, "decoder output shape must be positive");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  trunk_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.latent_dim, config_.hidden1,
                           config_.hidden2},
      nn::Activation::kRelu, nn::Activation::kRelu, &r);
  RegisterModule("trunk", trunk_.get());
  // The shared base acts like an ordinary (spatio-temporal agnostic)
  // projection matrix; the pool contribution modulates it per sensor and
  // per window, so training starts from a sane agnostic model.
  base_ = RegisterParameter(
      "base", nn::XavierUniform({rows * cols}, rows, cols, r));
  pool_ = RegisterParameter(
      "pool",
      ops::MulScalar(nn::XavierUniform({config_.hidden2, rows * cols},
                                       config_.hidden2, rows * cols, r),
                     0.5f));
}

ag::Var ParamDecoder::Forward(const ag::Var& theta) const {
  STWA_CHECK(theta.value().rank() == 3 &&
                 theta.value().dim(-1) == config_.latent_dim,
             "decoder expects [B, N, k], got ",
             ShapeToString(theta.value().shape()));
  const int64_t batch = theta.value().dim(0);
  const int64_t sensors = theta.value().dim(1);
  ag::Var code = trunk_->Forward(theta);        // [B, N, m2]
  ag::Var flat = ag::MatMul(code, pool_);       // [B, N, rows*cols]
  flat = ag::Add(flat, base_);                  // broadcast shared base
  return ag::Reshape(flat, {batch, sensors, rows_, cols_});
}

}  // namespace core
}  // namespace stwa
