#include "core/proxy_aggregator.h"

#include "common/check.h"

namespace stwa {
namespace core {

ProxyAggregator::ProxyAggregator(AggregatorKind kind, int64_t d_model,
                                 Rng* rng)
    : kind_(kind), d_model_(d_model) {
  if (kind_ == AggregatorKind::kWeighted) {
    w1_ = std::make_unique<nn::Linear>(d_model, d_model, /*bias=*/true, rng);
    w2_ = std::make_unique<nn::Linear>(d_model, d_model, /*bias=*/true, rng);
    RegisterModule("w1", w1_.get());
    RegisterModule("w2", w2_.get());
  }
}

ag::Var ProxyAggregator::Forward(const ag::Var& proxy_outputs) const {
  STWA_CHECK(proxy_outputs.value().rank() == 4 &&
                 proxy_outputs.value().dim(-1) == d_model_,
             "aggregator expects [B, N, p, d], got ",
             ShapeToString(proxy_outputs.value().shape()));
  if (kind_ == AggregatorKind::kMean) {
    return ag::Mean(proxy_outputs, 2);
  }
  // A = sigmoid(W2 tanh(W1 h)) in [0, 1]^{p x d} gates the information flow
  // per proxy and channel; the gated proxies are summed over p.
  ag::Var gate =
      ag::Sigmoid(w2_->Forward(ag::Tanh(w1_->Forward(proxy_outputs))));
  return ag::Sum(ag::Mul(gate, proxy_outputs), 2);
}

}  // namespace core
}  // namespace stwa
