// Model-agnostic ST-aware enhancement (paper Table VII).
//
// The parameter-generation framework is model agnostic: the same latent +
// decoder machinery that powers ST-WA here generates weights for a GRU
// forecaster and for a canonical-attention (Transformer-style) forecaster.
// The plain (latent_mode = kNone) AttForecaster is also the "SA" row of the
// Table VIII ablation and the quadratic-attention baseline of the
// complexity study (Fig. 6 / Fig. 10).

#ifndef STWA_CORE_ENHANCED_MODELS_H_
#define STWA_CORE_ENHANCED_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/latent.h"
#include "core/param_decoder.h"
#include "nn/mlp.h"
#include "nn/rnn.h"
#include "train/trainer.h"

namespace stwa {
namespace core {

/// Shared configuration for the enhanced forecasters.
struct EnhancedConfig {
  int64_t num_sensors = 0;
  int64_t history = 12;
  int64_t horizon = 12;
  int64_t features = 1;
  /// Hidden width (GRU state size / attention d).
  int64_t d_model = 32;
  int64_t latent_dim = 16;
  int64_t encoder_hidden = 32;
  DecoderConfig decoder;
  /// kNone = base model, kSpatial = "+S", kSpatioTemporal = "+ST".
  LatentMode latent_mode = LatentMode::kNone;
  bool stochastic = true;
  float kl_weight = 1e-3f;
  int64_t predictor_hidden = 256;
  /// Attention layers (AttForecaster only).
  int64_t num_layers = 2;
  uint64_t noise_seed = 43;
};

/// GRU forecaster over each sensor's series; optionally with generated
/// per-sensor (and time-varying) GRU weight matrices.
class GruForecaster : public train::ForecastModel {
 public:
  explicit GruForecaster(EnhancedConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  ag::Var RegularizationLoss() const override;
  std::string name() const override;

  const EnhancedConfig& config() const { return config_; }

 private:
  EnhancedConfig config_;
  std::unique_ptr<StLatent> latent_;
  // Static cell (base model) or generated weights (+S/+ST).
  std::unique_ptr<nn::GruCell> cell_;
  std::unique_ptr<ParamDecoder> w_ih_decoder_;
  std::unique_ptr<ParamDecoder> w_hh_decoder_;
  ag::Var b_ih_;
  ag::Var b_hh_;
  std::unique_ptr<nn::Mlp> predictor_;
  ag::Var last_reg_;
  Rng noise_rng_;
};

/// Canonical (quadratic) self-attention forecaster; the spatio-temporal
/// agnostic "ATT"/"SA" baseline, or its "+S"/"+ST" enhanced variants with
/// generated projection matrices (Eq. 9).
class AttForecaster : public train::ForecastModel {
 public:
  explicit AttForecaster(EnhancedConfig config, Rng* rng = nullptr);

  ag::Var Forward(const Tensor& x, bool training) override;
  ag::Var RegularizationLoss() const override;
  std::string name() const override;

  const EnhancedConfig& config() const { return config_; }

 private:
  EnhancedConfig config_;
  std::unique_ptr<StLatent> latent_;
  // Per layer: static projections or generated ones.
  struct Layer {
    std::unique_ptr<nn::Linear> q_static;
    std::unique_ptr<nn::Linear> k_static;
    std::unique_ptr<nn::Linear> v_static;
    std::unique_ptr<ParamDecoder> q_dec;
    std::unique_ptr<ParamDecoder> k_dec;
    std::unique_ptr<ParamDecoder> v_dec;
  };
  std::vector<Layer> layers_;
  std::unique_ptr<nn::Mlp> predictor_;
  std::unique_ptr<nn::Linear> flatten_proj_;
  ag::Var last_reg_;
  Rng noise_rng_;
};

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_ENHANCED_MODELS_H_
