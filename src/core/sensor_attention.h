// Sensor correlation attention (paper §IV-C, Eq. 15-16).
//
// After window aggregation each sensor holds one d-vector per window; this
// module lets sensors attend to each other through a normalised embedded
// Gaussian similarity, optionally with per-sensor generated embedding
// matrices (the ST-aware variant of theta_1 / theta_2).

#ifndef STWA_CORE_SENSOR_ATTENTION_H_
#define STWA_CORE_SENSOR_ATTENTION_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace stwa {
namespace core {

/// Cross-sensor attention over [B, N, d] window summaries.
class SensorCorrelationAttention : public nn::Module {
 public:
  /// When st_aware, Forward expects generated theta matrices; otherwise
  /// static shared Linear embeddings are owned by the module.
  SensorCorrelationAttention(int64_t d_model, bool st_aware,
                             Rng* rng = nullptr);

  /// h [B, N, d] -> [B, N, d]. For the st_aware variant, `theta1` and
  /// `theta2` are generated per-sensor embedding matrices [B, N, d, d].
  ag::Var Forward(const ag::Var& h, const ag::Var& theta1 = {},
                  const ag::Var& theta2 = {}) const;

  bool st_aware() const { return st_aware_; }

 private:
  int64_t d_model_;
  bool st_aware_;
  std::unique_ptr<nn::Linear> theta1_static_;
  std::unique_ptr<nn::Linear> theta2_static_;
};

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_SENSOR_ATTENTION_H_
