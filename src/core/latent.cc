#include "core/latent.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace core {

StLatent::StLatent(LatentConfig config, Rng* rng) : config_(config) {
  STWA_CHECK(config_.num_sensors > 0, "latent needs num_sensors > 0");
  STWA_CHECK(config_.latent_dim > 0, "latent_dim must be positive");
  STWA_CHECK(config_.mode != LatentMode::kNone,
             "StLatent with mode kNone is meaningless; skip the module");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  // mu ~ small random, log-variance starts small (sigma ≈ 0.1) so early
  // samples stay informative rather than pure noise.
  mu_ = RegisterParameter(
      "mu", ops::MulScalar(
                Tensor::Randn({config_.num_sensors, config_.latent_dim}, r),
                0.3f));
  if (config_.stochastic) {
    logvar_ = RegisterParameter(
        "logvar",
        Tensor::Full({config_.num_sensors, config_.latent_dim}, -4.5f));
  }
  if (config_.mode == LatentMode::kSpatioTemporal) {
    // Table XI's deterministic variant replaces the stochastic latents
    // with plain vectors: the encoder then emits only the mean.
    const int64_t out = config_.stochastic ? 2 * config_.latent_dim
                                           : config_.latent_dim;
    encoder_ = std::make_unique<nn::Mlp>(
        std::vector<int64_t>{config_.history * config_.features,
                             config_.encoder_hidden, config_.encoder_hidden,
                             out},
        nn::Activation::kRelu, nn::Activation::kNone, &r);
    RegisterModule("encoder", encoder_.get());
  }
}

ag::Var StLatent::Forward(const ag::Var& x_recent, bool training,
                          Rng& noise_rng) {
  STWA_CHECK(x_recent.value().rank() == 4,
             "latent input must be [B, N, H, F], got ",
             ShapeToString(x_recent.value().shape()));
  const int64_t batch = x_recent.value().dim(0);
  const int64_t sensors = x_recent.value().dim(1);
  STWA_CHECK(sensors == config_.num_sensors, "expected ",
             config_.num_sensors, " sensors, got ", sensors);
  STWA_CHECK(x_recent.value().dim(2) == config_.history &&
                 x_recent.value().dim(3) == config_.features,
             "latent input window mismatch");
  const int64_t k = config_.latent_dim;

  // Combined mean / variance of Theta (sum of independent Gaussians).
  ag::Var mean = mu_;  // [N, k], broadcasts over batch
  ag::Var var;
  if (config_.stochastic) var = ag::Exp(logvar_);  // [N, k]
  if (config_.mode == LatentMode::kSpatioTemporal) {
    ag::Var flat =
        ag::Reshape(x_recent, {batch, sensors,
                               config_.history * config_.features});
    ag::Var enc = encoder_->Forward(flat);      // [B, N, 2k] or [B, N, k]
    ag::Var mu_t = ag::Slice(enc, -1, 0, k);    // [B, N, k]
    mean = ag::Add(mean, mu_t);                 // broadcast [N,k] + [B,N,k]
    if (config_.stochastic) {
      ag::Var logvar_t = ag::Slice(enc, -1, k, k);  // [B, N, k]
      // Shift encoder log-variances down so the temporal component starts
      // near-deterministic.
      logvar_t = ag::AddScalar(logvar_t, -4.5f);
      var = ag::Add(var, ag::Exp(logvar_t));
    }
  }

  // KL( N(mean, var) || N(0, I) ) = 0.5 * (mean^2 + var - log var - 1),
  // averaged over elements so the alpha weight is scale independent.
  if (config_.stochastic) {
    ag::Var kl = ag::MulScalar(
        ag::Sub(ag::Add(ag::Square(mean), var),
                ag::AddScalar(ag::Log(var), 1.0f)),
        0.5f);
    last_kl_ = ag::MeanAll(kl);
  } else {
    last_kl_ = ag::Scalar(0.0f);
  }

  if (!config_.stochastic || !training) {
    // Deterministic variant (Table XI) and eval mode use the mean.
    if (mean.value().rank() == 2) {
      // Broadcast [N, k] to [B, N, k].
      return ag::Add(mean, ag::Var(Tensor(Shape{batch, 1, 1})));
    }
    return mean;
  }

  // Reparameterisation: Theta = mean + sqrt(var) * eps, eps ~ N(0, I).
  // RandnVar records a kRandn op (not a frozen leaf), so a captured plan
  // redraws fresh noise from noise_rng on every replayed step, consuming
  // the stream in the same order as eager tracing.
  ag::Var eps = ag::RandnVar({batch, sensors, k}, noise_rng);
  return ag::Add(mean, ag::Mul(ag::Sqrt(var), eps));
}

}  // namespace core
}  // namespace stwa
