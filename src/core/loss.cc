#include "core/loss.h"

namespace stwa {
namespace core {

ag::Var GaussianKlToStdNormal(const ag::Var& mean, const ag::Var& var) {
  ag::Var term = ag::Sub(ag::Add(ag::Square(mean), var),
                         ag::AddScalar(ag::Log(var), 1.0f));
  return ag::MulScalar(ag::MeanAll(term), 0.5f);
}

ag::Var StwaObjective(const ag::Var& pred, const ag::Var& target,
                      float huber_delta, const ag::Var& kl, float alpha) {
  ag::Var loss = ag::HuberLoss(pred, target, huber_delta);
  if (kl.defined() && alpha != 0.0f) {
    loss = ag::Add(loss, ag::MulScalar(kl, alpha));
  }
  return loss;
}

}  // namespace core
}  // namespace stwa
