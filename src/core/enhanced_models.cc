#include "core/enhanced_models.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace core {
namespace {

std::unique_ptr<StLatent> MakeLatent(const EnhancedConfig& config, Rng& r) {
  LatentConfig lc;
  lc.num_sensors = config.num_sensors;
  lc.history = config.history;
  lc.features = config.features;
  lc.latent_dim = config.latent_dim;
  lc.encoder_hidden = config.encoder_hidden;
  lc.mode = config.latent_mode;
  lc.stochastic = config.stochastic;
  return std::make_unique<StLatent>(lc, &r);
}

std::string Suffix(LatentMode mode) {
  switch (mode) {
    case LatentMode::kNone:
      return "";
    case LatentMode::kSpatial:
      return "+S";
    case LatentMode::kSpatioTemporal:
      return "+ST";
  }
  return "";
}

}  // namespace

// --- GruForecaster ---------------------------------------------------------

GruForecaster::GruForecaster(EnhancedConfig config, Rng* rng)
    : config_(config), noise_rng_(config.noise_seed) {
  STWA_CHECK(config_.num_sensors > 0, "GruForecaster needs num_sensors");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  config_.decoder.latent_dim = config_.latent_dim;
  const int64_t h = config_.d_model;
  if (config_.latent_mode == LatentMode::kNone) {
    cell_ = std::make_unique<nn::GruCell>(config_.features, h, &r);
    RegisterModule("cell", cell_.get());
  } else {
    latent_ = MakeLatent(config_, r);
    RegisterModule("latent", latent_.get());
    w_ih_decoder_ = std::make_unique<ParamDecoder>(config_.decoder,
                                                   config_.features, 3 * h,
                                                   &r);
    w_hh_decoder_ =
        std::make_unique<ParamDecoder>(config_.decoder, h, 3 * h, &r);
    RegisterModule("w_ih_dec", w_ih_decoder_.get());
    RegisterModule("w_hh_dec", w_hh_decoder_.get());
    b_ih_ = RegisterParameter("b_ih", Tensor(Shape{3 * h}));
    b_hh_ = RegisterParameter("b_hh", Tensor(Shape{3 * h}));
  }
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{h, config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var GruForecaster::Forward(const Tensor& x, bool training) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history &&
                 x.dim(3) == config_.features,
             "GruForecaster input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t sensors = config_.num_sensors;
  const int64_t h = config_.d_model;
  ag::Var input(x);
  last_reg_ = ag::Var();

  if (config_.latent_mode == LatentMode::kNone) {
    // Sensors fold into the batch; the shared cell sees [B*N, H, F].
    ag::Var folded = ag::Reshape(input, {batch * sensors, config_.history,
                                         config_.features});
    ag::Var state(Tensor(Shape{batch * sensors, h}));
    for (int64_t t = 0; t < config_.history; ++t) {
      state = cell_->Forward(nn::TimeStep(folded, t), state);
    }
    ag::Var pred = predictor_->Forward(state);  // [B*N, U*F]
    return ag::Reshape(pred, {batch, sensors, config_.horizon,
                              config_.features});
  }

  // Generated per-sensor weights: theta -> w_ih [B,N,F,3h], w_hh [B,N,h,3h].
  ag::Var theta = latent_->Forward(input, training, noise_rng_);
  last_reg_ = ag::MulScalar(latent_->last_kl(), config_.kl_weight);
  ag::Var w_ih = w_ih_decoder_->Forward(theta);
  ag::Var w_hh = w_hh_decoder_->Forward(theta);
  // Recurrence with singleton row matrices: x_t [B, N, 1, F].
  ag::Var state(Tensor(Shape{batch, sensors, 1, h}));
  for (int64_t t = 0; t < config_.history; ++t) {
    ag::Var x_t = ag::Reshape(ag::Slice(input, 2, t, 1),
                              {batch, sensors, 1, config_.features});
    state = nn::GruCell::Step(x_t, state, w_ih, w_hh, b_ih_, b_hh_, h);
  }
  ag::Var final_state = ag::Reshape(state, {batch, sensors, h});
  ag::Var pred = predictor_->Forward(final_state);
  return ag::Reshape(pred, {batch, sensors, config_.horizon,
                            config_.features});
}

ag::Var GruForecaster::RegularizationLoss() const { return last_reg_; }

std::string GruForecaster::name() const {
  return "GRU" + Suffix(config_.latent_mode);
}

// --- AttForecaster ----------------------------------------------------------

AttForecaster::AttForecaster(EnhancedConfig config, Rng* rng)
    : config_(config), noise_rng_(config.noise_seed + 1) {
  STWA_CHECK(config_.num_sensors > 0, "AttForecaster needs num_sensors");
  STWA_CHECK(config_.num_layers >= 1, "need at least one attention layer");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  config_.decoder.latent_dim = config_.latent_dim;
  const bool st_aware = config_.latent_mode != LatentMode::kNone;
  if (st_aware) {
    latent_ = MakeLatent(config_, r);
    RegisterModule("latent", latent_.get());
  }
  int64_t d_in = config_.features;
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    Layer layer;
    if (st_aware) {
      layer.q_dec = std::make_unique<ParamDecoder>(config_.decoder, d_in,
                                                   config_.d_model, &r);
      layer.k_dec = std::make_unique<ParamDecoder>(config_.decoder, d_in,
                                                   config_.d_model, &r);
      layer.v_dec = std::make_unique<ParamDecoder>(config_.decoder, d_in,
                                                   config_.d_model, &r);
      RegisterModule("q_dec" + std::to_string(l), layer.q_dec.get());
      RegisterModule("k_dec" + std::to_string(l), layer.k_dec.get());
      RegisterModule("v_dec" + std::to_string(l), layer.v_dec.get());
    } else {
      layer.q_static = std::make_unique<nn::Linear>(d_in, config_.d_model,
                                                    /*bias=*/false, &r);
      layer.k_static = std::make_unique<nn::Linear>(d_in, config_.d_model,
                                                    /*bias=*/false, &r);
      layer.v_static = std::make_unique<nn::Linear>(d_in, config_.d_model,
                                                    /*bias=*/false, &r);
      RegisterModule("q" + std::to_string(l), layer.q_static.get());
      RegisterModule("k" + std::to_string(l), layer.k_static.get());
      RegisterModule("v" + std::to_string(l), layer.v_static.get());
    }
    layers_.push_back(std::move(layer));
    d_in = config_.d_model;
  }
  flatten_proj_ = std::make_unique<nn::Linear>(
      config_.history * config_.d_model, config_.predictor_hidden,
      /*bias=*/true, &r);
  RegisterModule("flatten", flatten_proj_.get());
  predictor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.predictor_hidden,
                           config_.predictor_hidden,
                           config_.horizon * config_.features},
      nn::Activation::kRelu, nn::Activation::kNone, &r);
  RegisterModule("predictor", predictor_.get());
}

ag::Var AttForecaster::Forward(const Tensor& x, bool training) {
  STWA_CHECK(x.rank() == 4 && x.dim(1) == config_.num_sensors &&
                 x.dim(2) == config_.history &&
                 x.dim(3) == config_.features,
             "AttForecaster input mismatch: ", ShapeToString(x.shape()));
  const int64_t batch = x.dim(0);
  const int64_t sensors = config_.num_sensors;
  ag::Var input(x);
  last_reg_ = ag::Var();

  const bool st_aware = config_.latent_mode != LatentMode::kNone;
  ag::Var theta;
  if (st_aware) {
    theta = latent_->Forward(input, training, noise_rng_);
    last_reg_ = ag::MulScalar(latent_->last_kl(), config_.kl_weight);
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.d_model));
  ag::Var cur = input;  // [B, N, H, d_in]
  for (const Layer& layer : layers_) {
    ag::Var q;
    ag::Var k;
    ag::Var v;
    if (st_aware) {
      q = ag::MatMul(cur, layer.q_dec->Forward(theta));
      k = ag::MatMul(cur, layer.k_dec->Forward(theta));
      v = ag::MatMul(cur, layer.v_dec->Forward(theta));
    } else {
      q = layer.q_static->Forward(cur);
      k = layer.k_static->Forward(cur);
      v = layer.v_static->Forward(cur);
    }
    // Canonical (quadratic) attention over the time axis (Eq. 2-3):
    // scores [B, N, H, H].
    ag::Var scores = ag::MulScalar(ag::MatMul(q, ag::TransposeLast2(k)),
                                   scale);
    cur = ag::MatMul(ag::SoftmaxLast(scores), v);  // [B, N, H, d]
  }
  ag::Var flat = ag::Reshape(
      cur, {batch, sensors, config_.history * config_.d_model});
  ag::Var pred = predictor_->Forward(
      ag::Relu(flatten_proj_->Forward(flat)));
  return ag::Reshape(pred, {batch, sensors, config_.horizon,
                            config_.features});
}

ag::Var AttForecaster::RegularizationLoss() const { return last_reg_; }

std::string AttForecaster::name() const {
  return "ATT" + Suffix(config_.latent_mode);
}

}  // namespace core
}  // namespace stwa
