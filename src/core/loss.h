// Loss helpers for the ST-WA objective (paper Eq. 20-21).

#ifndef STWA_CORE_LOSS_H_
#define STWA_CORE_LOSS_H_

#include "autograd/ops.h"

namespace stwa {
namespace core {

/// Analytic KL( N(mean, var) || N(0, I) ) for diagonal Gaussians, averaged
/// over all elements: 0.5 * mean(mean^2 + var - log(var) - 1).
ag::Var GaussianKlToStdNormal(const ag::Var& mean, const ag::Var& var);

/// The full training objective of Eq. 20: Huber(pred, target) + alpha * kl.
/// `kl` may be undefined (pure Huber).
ag::Var StwaObjective(const ag::Var& pred, const ag::Var& target,
                      float huber_delta, const ag::Var& kl, float alpha);

}  // namespace core
}  // namespace stwa

#endif  // STWA_CORE_LOSS_H_
