// Fixed-size log-bucketed latency histogram.
//
// Designed for serving statistics: recording is allocation-free and O(1),
// histograms are mergeable (each worker thread owns one and the stats
// endpoint merges them), and percentile queries interpolate inside the
// matching bucket. Buckets grow geometrically by 2^(1/8) from 1 us, so
// the quantile error is bounded by ~9% of the value over a 1 us .. 65 s
// range — plenty for p50/p95/p99 reporting.

#ifndef STWA_METRICS_LATENCY_H_
#define STWA_METRICS_LATENCY_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stwa {
namespace metrics {

/// Log-bucketed histogram of microsecond latencies.
class LatencyHistogram {
 public:
  /// 8 buckets per doubling over 16 doublings: 1 us .. ~65.5 s. Values
  /// outside the range clamp to the first/last bucket.
  static constexpr int kBucketsPerDoubling = 8;
  static constexpr int kNumBuckets = 128;

  /// Records one observation (microseconds; non-positive values clamp to
  /// the first bucket).
  void Record(double micros);

  /// Adds every observation of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  /// Number of recorded observations.
  int64_t count() const { return count_; }

  /// Exact arithmetic mean of the recorded values (0 when empty).
  double mean_micros() const;

  /// Exact extremes (0 when empty).
  double min_micros() const;
  double max_micros() const;

  /// Value at percentile `p` in [0, 100], interpolated inside the bucket
  /// (0 when empty). p50/p95/p99 convenience wrappers below.
  double Percentile(double p) const;

  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }

 private:
  static int BucketIndex(double micros);
  static double BucketLowerEdge(int bucket);

  std::array<int64_t, kNumBuckets> buckets_{};
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A small family of LatencyHistograms keyed by label — per-profile or
/// per-tenant percentiles from one mergeable struct. Labels are kept in
/// first-Record order so reports are stable; Merge combines by label, so
/// per-worker (or per-connection) copies fold into one snapshot the same
/// way the plain histogram does. Not thread-safe: each owner records into
/// its own copy and the stats endpoint merges.
class LabeledHistograms {
 public:
  /// Histogram for `label`, created empty on first use.
  LatencyHistogram& Get(const std::string& label);

  /// Histogram for `label`, or nullptr when never recorded.
  const LatencyHistogram* Find(const std::string& label) const;

  /// Records one observation under `label`.
  void Record(const std::string& label, double micros) {
    Get(label).Record(micros);
  }

  /// Merges every label of `other` into this family (label-wise).
  void Merge(const LabeledHistograms& other);

  /// Observations across all labels.
  int64_t total_count() const;

  const std::vector<std::pair<std::string, LatencyHistogram>>& entries()
      const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, LatencyHistogram>> entries_;
};

}  // namespace metrics
}  // namespace stwa

#endif  // STWA_METRICS_LATENCY_H_
