#include "metrics/metrics.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace metrics {

ForecastMetrics Evaluate(const Tensor& pred, const Tensor& target,
                         float mask_threshold, bool mask_zeros) {
  STWA_CHECK(pred.shape() == target.shape(), "metric shape mismatch: ",
             ShapeToString(pred.shape()), " vs ",
             ShapeToString(target.shape()));
  STWA_CHECK(pred.size() > 0, "empty metric input");
  const float* p = pred.data();
  const float* t = target.data();
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double ape_sum = 0.0;
  int64_t count = 0;
  int64_t mape_count = 0;
  for (int64_t i = 0; i < pred.size(); ++i) {
    const bool masked = std::fabs(t[i]) <= mask_threshold;
    if (mask_zeros && masked) continue;
    const double err = static_cast<double>(p[i]) - t[i];
    abs_sum += std::fabs(err);
    sq_sum += err * err;
    ++count;
    if (!masked) {
      ape_sum += std::fabs(err) / std::fabs(t[i]);
      ++mape_count;
    }
  }
  ForecastMetrics m;
  if (count > 0) {
    m.mae = abs_sum / count;
    m.rmse = std::sqrt(sq_sum / count);
  }
  if (mape_count > 0) {
    m.mape = 100.0 * ape_sum / mape_count;
  }
  return m;
}

std::vector<ForecastMetrics> EvaluatePerHorizon(const Tensor& pred,
                                                const Tensor& target,
                                                float mask_threshold) {
  STWA_CHECK(pred.rank() == 4 && pred.shape() == target.shape(),
             "per-horizon metrics expect matching [B, N, U, F] tensors");
  const int64_t horizon = pred.dim(2);
  std::vector<ForecastMetrics> out;
  out.reserve(horizon);
  for (int64_t u = 0; u < horizon; ++u) {
    out.push_back(Evaluate(ops::Slice(pred, 2, u, 1),
                           ops::Slice(target, 2, u, 1), mask_threshold));
  }
  return out;
}

void MetricAccumulator::Add(const Tensor& pred, const Tensor& target,
                            float mask_threshold) {
  STWA_CHECK(pred.shape() == target.shape(), "metric shape mismatch");
  const float* p = pred.data();
  const float* t = target.data();
  for (int64_t i = 0; i < pred.size(); ++i) {
    const double err = static_cast<double>(p[i]) - t[i];
    abs_sum_ += std::fabs(err);
    sq_sum_ += err * err;
    ++count_;
    if (std::fabs(t[i]) > mask_threshold) {
      ape_sum_ += std::fabs(err) / std::fabs(t[i]);
      ++mape_count_;
    }
  }
}

ForecastMetrics MetricAccumulator::Result() const {
  ForecastMetrics m;
  if (count_ > 0) {
    m.mae = abs_sum_ / count_;
    m.rmse = std::sqrt(sq_sum_ / count_);
  }
  if (mape_count_ > 0) {
    m.mape = 100.0 * ape_sum_ / mape_count_;
  }
  return m;
}

}  // namespace metrics
}  // namespace stwa
