// Forecast accuracy metrics: MAE, RMSE, MAPE (masked), as reported in every
// table of the paper.

#ifndef STWA_METRICS_METRICS_H_
#define STWA_METRICS_METRICS_H_

#include <vector>

#include "tensor/tensor.h"

namespace stwa {
namespace metrics {

/// One row of forecast metrics.
struct ForecastMetrics {
  double mae = 0.0;
  double rmse = 0.0;
  /// Mean absolute percentage error, in percent (paper convention).
  double mape = 0.0;
};

/// Computes MAE/RMSE/MAPE between pred and target (same shape). Positions
/// where |target| <= mask_threshold are excluded from MAPE (standard
/// practice on traffic flow to avoid division blow-ups), and from MAE/RMSE
/// only if mask_zeros is set.
ForecastMetrics Evaluate(const Tensor& pred, const Tensor& target,
                         float mask_threshold = 1e-1f,
                         bool mask_zeros = false);

/// Per-horizon breakdown for [B, N, U, F] tensors: element u of the result
/// is the metric over forecast step u+1.
std::vector<ForecastMetrics> EvaluatePerHorizon(const Tensor& pred,
                                                const Tensor& target,
                                                float mask_threshold = 1e-1f);

/// Streaming accumulator so evaluation loops do not need to keep all
/// predictions in memory.
class MetricAccumulator {
 public:
  /// Adds a batch of predictions/targets (same shape).
  void Add(const Tensor& pred, const Tensor& target,
           float mask_threshold = 1e-1f);

  /// Final aggregate metrics.
  ForecastMetrics Result() const;

  /// Number of accumulated elements.
  int64_t count() const { return count_; }

 private:
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double ape_sum_ = 0.0;
  int64_t count_ = 0;
  int64_t mape_count_ = 0;
};

}  // namespace metrics
}  // namespace stwa

#endif  // STWA_METRICS_METRICS_H_
