#include "metrics/latency.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stwa {
namespace metrics {

int LatencyHistogram::BucketIndex(double micros) {
  if (micros <= 1.0) return 0;
  const int bucket = static_cast<int>(
      std::floor(std::log2(micros) * kBucketsPerDoubling));
  return std::min(bucket, kNumBuckets - 1);
}

double LatencyHistogram::BucketLowerEdge(int bucket) {
  return std::exp2(static_cast<double>(bucket) / kBucketsPerDoubling);
}

void LatencyHistogram::Record(double micros) {
  ++buckets_[static_cast<size_t>(BucketIndex(micros))];
  if (count_ == 0) {
    min_ = micros;
    max_ = micros;
  } else {
    min_ = std::min(min_, micros);
    max_ = std::max(max_, micros);
  }
  ++count_;
  sum_ += micros;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::mean_micros() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::min_micros() const {
  return count_ == 0 ? 0.0 : min_;
}

double LatencyHistogram::max_micros() const {
  return count_ == 0 ? 0.0 : max_;
}

double LatencyHistogram::Percentile(double p) const {
  STWA_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
  if (count_ == 0) return 0.0;
  // Rank of the requested observation (1-based, nearest-rank method).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p / 100.0 *
                                        static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= rank) {
      // Interpolate linearly inside the bucket, clamped to the observed
      // extremes so tiny histograms don't report values never seen.
      const double lo = BucketLowerEdge(i);
      const double hi = BucketLowerEdge(i + 1);
      const double frac = static_cast<double>(rank - cumulative) /
                          static_cast<double>(buckets_[i]);
      const double v = lo + (hi - lo) * frac;
      return std::clamp(v, min_, max_);
    }
    cumulative += buckets_[i];
  }
  return max_;
}

LatencyHistogram& LabeledHistograms::Get(const std::string& label) {
  for (auto& [name, hist] : entries_) {
    if (name == label) return hist;
  }
  entries_.emplace_back(label, LatencyHistogram());
  return entries_.back().second;
}

const LatencyHistogram* LabeledHistograms::Find(
    const std::string& label) const {
  for (const auto& [name, hist] : entries_) {
    if (name == label) return &hist;
  }
  return nullptr;
}

void LabeledHistograms::Merge(const LabeledHistograms& other) {
  for (const auto& [name, hist] : other.entries_) {
    Get(name).Merge(hist);
  }
}

int64_t LabeledHistograms::total_count() const {
  int64_t total = 0;
  for (const auto& [name, hist] : entries_) total += hist.count();
  return total;
}

}  // namespace metrics
}  // namespace stwa
