#include "graph/graph.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace graph {

SensorGraph::SensorGraph(int64_t num_nodes)
    : num_nodes_(num_nodes), adj_(num_nodes) {
  STWA_CHECK(num_nodes >= 0, "negative node count");
}

void SensorGraph::AddEdge(int64_t from, int64_t to, float weight) {
  STWA_CHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_,
             "edge (", from, " -> ", to, ") out of range for ", num_nodes_,
             " nodes");
  adj_[from].push_back(Edge{to, weight});
}

void SensorGraph::AddUndirectedEdge(int64_t a, int64_t b, float weight) {
  AddEdge(a, b, weight);
  AddEdge(b, a, weight);
}

int64_t SensorGraph::num_edges() const {
  int64_t count = 0;
  for (const auto& edges : adj_) count += static_cast<int64_t>(edges.size());
  return count;
}

const std::vector<Edge>& SensorGraph::Neighbors(int64_t node) const {
  STWA_CHECK(node >= 0 && node < num_nodes_, "node ", node, " out of range");
  return adj_[node];
}

Tensor SensorGraph::DenseAdjacency() const {
  Tensor a(Shape{num_nodes_, num_nodes_});
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (const Edge& e : adj_[i]) {
      a({i, e.to}) = e.weight;
    }
  }
  return a;
}

Tensor SensorGraph::RandomWalkNormalized() const {
  Tensor a = DenseAdjacency();
  for (int64_t i = 0; i < num_nodes_; ++i) {
    float deg = 0.0f;
    for (int64_t j = 0; j < num_nodes_; ++j) deg += a({i, j});
    if (deg > 0.0f) {
      const float inv = 1.0f / deg;
      for (int64_t j = 0; j < num_nodes_; ++j) a({i, j}) *= inv;
    }
  }
  return a;
}

Tensor SensorGraph::SymNormalizedWithSelfLoops() const {
  Tensor a = DenseAdjacency();
  for (int64_t i = 0; i < num_nodes_; ++i) a({i, i}) += 1.0f;
  std::vector<float> inv_sqrt_deg(num_nodes_);
  for (int64_t i = 0; i < num_nodes_; ++i) {
    float deg = 0.0f;
    for (int64_t j = 0; j < num_nodes_; ++j) deg += a({i, j});
    inv_sqrt_deg[i] = deg > 0.0f ? 1.0f / std::sqrt(deg) : 0.0f;
  }
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (int64_t j = 0; j < num_nodes_; ++j) {
      a({i, j}) *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
    }
  }
  return a;
}

Tensor SensorGraph::ScaledLaplacian() const {
  // L = I - D^-1/2 A D^-1/2 (symmetrised); approx lambda_max = 2 gives
  // L_scaled = L - I = -D^-1/2 A D^-1/2.
  Tensor sym = SymNormalizedWithSelfLoops();
  Tensor out(Shape{num_nodes_, num_nodes_});
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (int64_t j = 0; j < num_nodes_; ++j) {
      out({i, j}) = -sym({i, j});
    }
  }
  return out;
}

std::vector<Tensor> SensorGraph::DiffusionSupports(int64_t max_hops) const {
  STWA_CHECK(max_hops >= 1, "max_hops must be >= 1");
  std::vector<Tensor> supports;
  Tensor fwd = RandomWalkNormalized();
  // Reverse random walk: D_in^-1 A^T == random-walk normalisation of the
  // transposed graph.
  Tensor at = ops::TransposeLast2(DenseAdjacency());
  for (int64_t i = 0; i < num_nodes_; ++i) {
    float deg = 0.0f;
    for (int64_t j = 0; j < num_nodes_; ++j) deg += at({i, j});
    if (deg > 0.0f) {
      const float inv = 1.0f / deg;
      for (int64_t j = 0; j < num_nodes_; ++j) at({i, j}) *= inv;
    }
  }
  Tensor fwd_power = fwd;
  Tensor bwd_power = at;
  for (int64_t k = 1; k <= max_hops; ++k) {
    supports.push_back(fwd_power);
    supports.push_back(bwd_power);
    if (k < max_hops) {
      fwd_power = ops::MatMul2D(fwd_power, fwd);
      bwd_power = ops::MatMul2D(bwd_power, at);
    }
  }
  return supports;
}

SensorGraph BuildCorridorGraph(int64_t num_roads, int64_t sensors_per_road,
                               Rng& rng,
                               std::vector<int>* road_of_sensor) {
  STWA_CHECK(num_roads > 0 && sensors_per_road > 0,
             "corridor graph needs positive sizes");
  const int64_t n = num_roads * sensors_per_road;
  SensorGraph g(n);
  if (road_of_sensor != nullptr) {
    road_of_sensor->assign(n, 0);
  }
  for (int64_t r = 0; r < num_roads; ++r) {
    for (int64_t s = 0; s < sensors_per_road; ++s) {
      const int64_t node = r * sensors_per_road + s;
      if (road_of_sensor != nullptr) (*road_of_sensor)[node] = r;
      if (s + 1 < sensors_per_road) {
        // Strong links between consecutive sensors on the same road, with
        // slight weight jitter (distance-based in real PEMS graphs).
        g.AddUndirectedEdge(node, node + 1, rng.Uniform(0.8f, 1.0f));
      }
    }
  }
  // Weak inter-road links ("intersections"): connect a random sensor of
  // each road to a random sensor of the next road.
  for (int64_t r = 0; r + 1 < num_roads; ++r) {
    const int64_t a = r * sensors_per_road + rng.UniformInt(sensors_per_road);
    const int64_t b =
        (r + 1) * sensors_per_road + rng.UniformInt(sensors_per_road);
    g.AddUndirectedEdge(a, b, rng.Uniform(0.2f, 0.4f));
  }
  return g;
}

}  // namespace graph
}  // namespace stwa
