// Sensor/road network graph and the adjacency normalisations used by the
// graph-convolutional baselines (DCRNN, STGCN, GWN, STSGCN, ...).

#ifndef STWA_GRAPH_GRAPH_H_
#define STWA_GRAPH_GRAPH_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace stwa {
namespace graph {

/// Weighted directed edge.
struct Edge {
  int64_t to = 0;
  float weight = 1.0f;
};

/// Directed weighted graph over the sensors of a traffic network.
class SensorGraph {
 public:
  SensorGraph() = default;

  /// Creates an edgeless graph with `num_nodes` nodes.
  explicit SensorGraph(int64_t num_nodes);

  /// Adds a directed edge from -> to with the given weight.
  void AddEdge(int64_t from, int64_t to, float weight = 1.0f);

  /// Adds both directions.
  void AddUndirectedEdge(int64_t a, int64_t b, float weight = 1.0f);

  int64_t num_nodes() const { return num_nodes_; }

  /// Number of directed edges.
  int64_t num_edges() const;

  /// Outgoing edges of `node`.
  const std::vector<Edge>& Neighbors(int64_t node) const;

  /// Dense adjacency matrix A [n, n] (A[i][j] = weight of i -> j).
  Tensor DenseAdjacency() const;

  /// Random-walk normalisation D_out^-1 A (rows sum to 1 where deg > 0).
  Tensor RandomWalkNormalized() const;

  /// Symmetric normalisation with self loops:
  /// D^-1/2 (A + I) D^-1/2, as in GCN.
  Tensor SymNormalizedWithSelfLoops() const;

  /// Scaled Laplacian 2 L / lambda_max - I used by Chebyshev graph
  /// convolutions (lambda_max approximated as 2).
  Tensor ScaledLaplacian() const;

  /// K-hop diffusion supports: powers (D_out^-1 A)^k and (D_in^-1 A^T)^k
  /// for k = 1..max_hops, as used by DCRNN's diffusion convolution.
  std::vector<Tensor> DiffusionSupports(int64_t max_hops) const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<std::vector<Edge>> adj_;
};

/// Builds the corridor-structured sensor network used by the synthetic
/// datasets: each road is a chain of sensors with strong consecutive links;
/// a few weaker inter-road links connect roads that "intersect".
/// `road_of_sensor` receives the road label per node when non-null.
SensorGraph BuildCorridorGraph(int64_t num_roads, int64_t sensors_per_road,
                               Rng& rng,
                               std::vector<int>* road_of_sensor = nullptr);

}  // namespace graph
}  // namespace stwa

#endif  // STWA_GRAPH_GRAPH_H_
