#include "data/dataset.h"

#include <fstream>

#include "common/check.h"
#include "common/string_util.h"

namespace stwa {
namespace data {

SplitBounds ChronologicalSplit(int64_t num_steps, double train_frac,
                               double val_frac) {
  STWA_CHECK(num_steps > 0, "empty dataset");
  STWA_CHECK(train_frac > 0 && val_frac >= 0 && train_frac + val_frac < 1.0,
             "invalid split fractions");
  SplitBounds b;
  b.num_steps = num_steps;
  b.train_end = static_cast<int64_t>(num_steps * train_frac);
  b.val_end = static_cast<int64_t>(num_steps * (train_frac + val_frac));
  STWA_CHECK(b.train_end > 0 && b.val_end > b.train_end &&
                 num_steps > b.val_end,
             "split produced an empty partition for ", num_steps, " steps");
  return b;
}

void SaveSeriesCsv(const TrafficDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  STWA_CHECK(out.good(), "cannot open '", path, "' for writing");
  const int64_t n = dataset.num_sensors();
  const int64_t t = dataset.num_steps();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t s = 0; s < t; ++s) {
      if (s > 0) out << ',';
      out << dataset.values({i, s, 0});
    }
    out << '\n';
  }
  STWA_CHECK(out.good(), "write to '", path, "' failed");
}

TrafficDataset LoadSeriesCsv(const std::string& path,
                             int64_t steps_per_day) {
  std::ifstream in(path);
  STWA_CHECK(in.good(), "cannot open '", path, "' for reading");
  std::vector<std::vector<float>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    std::vector<float> row;
    row.reserve(fields.size());
    for (const std::string& f : fields) row.push_back(std::stof(f));
    if (!rows.empty()) {
      STWA_CHECK(row.size() == rows.front().size(),
                 "ragged CSV row in '", path, "'");
    }
    rows.push_back(std::move(row));
  }
  STWA_CHECK(!rows.empty(), "empty CSV '", path, "'");
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t t = static_cast<int64_t>(rows.front().size());
  TrafficDataset dataset;
  dataset.name = path;
  dataset.steps_per_day = steps_per_day;
  dataset.values = Tensor(Shape{n, t, 1});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t s = 0; s < t; ++s) {
      dataset.values({i, s, 0}) = rows[i][s];
    }
  }
  dataset.graph = graph::SensorGraph(n);
  dataset.road_of_sensor.assign(n, 0);
  return dataset;
}

}  // namespace data
}  // namespace stwa
