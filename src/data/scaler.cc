#include "data/scaler.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace data {

StandardScaler::StandardScaler(float mean, float stddev)
    : fitted_(true), mean_(mean), std_(stddev) {
  STWA_CHECK(stddev > 0.0f, "scaler stddev must be positive, got ", stddev);
}

void StandardScaler::Fit(const Tensor& values, int64_t train_end) {
  STWA_CHECK(values.rank() == 3, "scaler expects [N, T, F]");
  STWA_CHECK(train_end > 0 && train_end <= values.dim(1),
             "train_end out of range");
  Tensor train = ops::Slice(values, 1, 0, train_end);
  double sum = 0.0;
  double sum_sq = 0.0;
  const float* p = train.data();
  const int64_t n = train.size();
  for (int64_t i = 0; i < n; ++i) {
    sum += p[i];
    sum_sq += static_cast<double>(p[i]) * p[i];
  }
  mean_ = static_cast<float>(sum / n);
  const double var = sum_sq / n - static_cast<double>(mean_) * mean_;
  std_ = static_cast<float>(std::sqrt(std::max(var, 1e-8)));
  fitted_ = true;
}

Tensor StandardScaler::Transform(const Tensor& x) const {
  STWA_CHECK(fitted_, "scaler used before Fit()");
  return ops::MulScalar(ops::AddScalar(x, -mean_), 1.0f / std_);
}

Tensor StandardScaler::InverseTransform(const Tensor& x) const {
  STWA_CHECK(fitted_, "scaler used before Fit()");
  return ops::AddScalar(ops::MulScalar(x, std_), mean_);
}

namespace {

void EnsureStaging(const Tensor& x, Tensor* out) {
  if (out->shape() != x.shape() || out->use_count() > 1) {
    *out = Tensor::Uninit(x.shape());
  }
}

}  // namespace

void StandardScaler::TransformInto(const Tensor& x, Tensor* out) const {
  STWA_CHECK(fitted_, "scaler used before Fit()");
  EnsureStaging(x, out);
  const float a = -mean_;
  const float s = 1.0f / std_;
  const float* src = x.data();
  float* dst = out->data();
  const int64_t n = x.size();
  // Two separate passes mirror AddScalar-then-MulScalar exactly — each
  // element is rounded twice, as the kernel path rounds it.
  for (int64_t i = 0; i < n; ++i) dst[i] = src[i] + a;
  for (int64_t i = 0; i < n; ++i) dst[i] = dst[i] * s;
}

void StandardScaler::InverseTransformInto(const Tensor& x,
                                          Tensor* out) const {
  STWA_CHECK(fitted_, "scaler used before Fit()");
  EnsureStaging(x, out);
  const float s = std_;
  const float m = mean_;
  const float* src = x.data();
  float* dst = out->data();
  const int64_t n = x.size();
  // Separate passes: a single x*s+m expression invites FMA contraction,
  // which would round once where MulScalar-then-AddScalar rounds twice.
  for (int64_t i = 0; i < n; ++i) dst[i] = src[i] * s;
  for (int64_t i = 0; i < n; ++i) dst[i] = dst[i] + m;
}

}  // namespace data
}  // namespace stwa
