// Z-score normalisation fitted on the training partition only.

#ifndef STWA_DATA_SCALER_H_
#define STWA_DATA_SCALER_H_

#include "tensor/tensor.h"

namespace stwa {
namespace data {

/// Standard (z-score) scaler: transform(x) = (x - mean) / std. Fitted on
/// the chronological training slice only, as in the paper's protocol, so
/// no test-set statistics leak into training.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Reconstructs an already-fitted scaler from stored statistics (e.g.
  /// serving-checkpoint metadata); bit-identical to the scaler that
  /// produced them.
  StandardScaler(float mean, float stddev);

  /// Fits mean/std on values[:, 0:train_end, :] of a [N, T, F] tensor.
  void Fit(const Tensor& values, int64_t train_end);

  /// Applies (x - mean) / std elementwise.
  Tensor Transform(const Tensor& x) const;

  /// Applies x * std + mean elementwise.
  Tensor InverseTransform(const Tensor& x) const;

  /// Transform into a caller-owned staging tensor, reusing its buffer when
  /// the shape matches and nobody else holds it (serving hot path: zero
  /// steady-state allocations). Bit-identical to Transform: the same two
  /// elementwise passes with the same constants, in separate loops so no
  /// FP contraction can fuse what the kernels round separately.
  void TransformInto(const Tensor& x, Tensor* out) const;

  /// InverseTransform into a caller-owned staging tensor (same contract).
  void InverseTransformInto(const Tensor& x, Tensor* out) const;

  float mean() const { return mean_; }
  float stddev() const { return std_; }

 private:
  bool fitted_ = false;
  float mean_ = 0.0f;
  float std_ = 1.0f;
};

}  // namespace data
}  // namespace stwa

#endif  // STWA_DATA_SCALER_H_
