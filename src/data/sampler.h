// Sliding-window sampling of forecasting examples.
//
// A sample anchored at timestamp t packs the past H steps of all sensors as
// the input and the following U steps as the target (Eq. 1 of the paper).

#ifndef STWA_DATA_SAMPLER_H_
#define STWA_DATA_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace stwa {
namespace data {

/// A mini-batch of forecasting examples.
struct Batch {
  /// Inputs [B, N, H, F] (normalised).
  Tensor x;
  /// Targets [B, N, U, F] (original scale; losses normalise as needed).
  Tensor y;
};

/// Enumerates valid window anchors in a timestamp range and materialises
/// batches. Anchor t uses inputs [t-H+1, t] and targets [t+1, t+U].
class WindowSampler {
 public:
  /// `values` is the (already normalised) [N, T, F] input tensor;
  /// `targets` the [N, T, F] target tensor (typically the raw values).
  /// Anchors are placed in [range_begin, range_end) every `stride` steps.
  WindowSampler(Tensor values, Tensor targets, int64_t history,
                int64_t horizon, int64_t range_begin, int64_t range_end,
                int64_t stride = 1);

  /// Number of available samples.
  int64_t num_samples() const {
    return static_cast<int64_t>(anchors_.size());
  }

  int64_t history() const { return history_; }
  int64_t horizon() const { return horizon_; }

  /// Materialises the batch for `anchor_indices` (indices into the anchor
  /// list, not timestamps).
  Batch MakeBatch(const std::vector<int64_t>& anchor_indices) const;

  /// Like MakeBatch but recycles `out`'s staging buffers across calls:
  /// x/y are only re-allocated when the required shape changed or the
  /// previous buffers are still shared (e.g. a live autograd tape holds
  /// them — use_count() > 1). Callers keep one Batch alive across a loop
  /// to make batch assembly allocation-free in steady state.
  void MakeBatchInto(const std::vector<int64_t>& anchor_indices,
                     Batch* out) const;

  /// Convenience: consecutive batches covering all samples in order.
  std::vector<std::vector<int64_t>> EpochBatches(int64_t batch_size,
                                                 Rng* shuffle_rng) const;

 private:
  Tensor values_;
  Tensor targets_;
  int64_t history_;
  int64_t horizon_;
  std::vector<int64_t> anchors_;
};

}  // namespace data
}  // namespace stwa

#endif  // STWA_DATA_SAMPLER_H_
