// Synthetic PEMS-like traffic flow generator.
//
// The real PEMS03/04/07/08 datasets are not redistributable; this generator
// substitutes them with synthetic flows that reproduce the statistical
// structure the paper's argument rests on (see DESIGN.md §1):
//
//   * location-specific patterns — every road has its own daily profile;
//     some corridors have both morning and evening peaks, others only a
//     morning peak with a gradual afternoon decay (exactly the Figure 1
//     contrast), and sensors along a road share their road's profile with
//     small amplitude/lag jitter;
//   * time-varying patterns — weekday and weekend regimes differ, and
//     random incidents (capacity drops) perturb single roads for 30–120
//     minutes, rewarding temporal-aware parameter adaptation;
//   * spatial correlation — road-level AR(1) noise is shared by all sensors
//     of a road, on top of per-sensor noise;
//   * 5-minute sampling, one flow attribute (F = 1), like PEMS.

#ifndef STWA_DATA_TRAFFIC_GENERATOR_H_
#define STWA_DATA_TRAFFIC_GENERATOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace stwa {
namespace data {

/// Configuration of the synthetic traffic generator.
struct GeneratorOptions {
  std::string name = "synthetic";
  int64_t num_roads = 4;
  int64_t sensors_per_road = 4;
  int64_t num_days = 14;
  int64_t steps_per_day = 288;  // 5-minute sampling
  uint64_t seed = 7;

  /// Std-dev of per-sensor observation noise (flow units).
  float noise_std = 8.0f;

  /// Probability that a given road has an incident on a given day.
  float incident_prob = 0.08f;

  /// Enable the weekday/weekend regime difference.
  bool weekend_effect = true;

  /// Planted network-wide regime shift: from `shift_step` on (when >= 0),
  /// every road's clean flow is multiplied by `shift_scale`, ramping in
  /// linearly over `shift_ramp_steps` (0 = a hard break). The shift is
  /// deterministic in the options — it draws nothing from the RNG stream,
  /// so enabling it changes no other byte of the output — and is exported
  /// in the ShiftSchedule, giving drift tests and the online-learning
  /// benches a queryable distribution change at a known timestamp.
  int64_t shift_step = -1;
  float shift_scale = 1.0f;
  int64_t shift_ramp_steps = 0;
};

/// One planted disruption in a generated dataset: the ground truth the
/// drift machinery is asked to find.
struct PlannedEvent {
  enum class Kind {
    /// A 30-120 minute capacity drop on a single road (sine window).
    kIncident,
    /// The options-planted network-wide level shift (open-ended).
    kRegimeShift,
  };
  Kind kind = Kind::kIncident;
  /// Affected road, or -1 for every road (regime shifts).
  int64_t road = -1;
  /// First perturbed step.
  int64_t start_step = 0;
  /// One past the last perturbed step (num_steps for an open-ended shift).
  int64_t end_step = 0;
  /// Peak multiplicative flow change, as |1 - factor| in [0, 1).
  float severity = 0.0f;
};

/// Seeded, queryable schedule of everything the generator planted.
/// Events are ordered by start_step; the same options always produce the
/// same schedule (it is derived from the same RNG draws as the data).
struct ShiftSchedule {
  std::vector<PlannedEvent> events;

  /// Events perturbing flow at `step` (incidents overlapping it plus an
  /// active regime shift).
  std::vector<PlannedEvent> ActiveAt(int64_t step) const;

  /// Start of the first event with start_step >= `step`, or -1.
  int64_t NextEventAfter(int64_t step) const;
};

/// Generates a synthetic dataset (values, graph, road labels, coords).
/// When `schedule` is non-null it receives the planted incident/shift
/// timeline for the generated data.
TrafficDataset GenerateTraffic(const GeneratorOptions& options,
                               ShiftSchedule* schedule);
TrafficDataset GenerateTraffic(const GeneratorOptions& options);

/// Day-of-week of a timestamp (0 = Monday ... 6 = Sunday; day 0 is Monday).
int DayOfWeek(int64_t step, int64_t steps_per_day);

/// True for Saturday/Sunday.
bool IsWeekend(int64_t step, int64_t steps_per_day);

// --- Paper dataset profiles --------------------------------------------
//
// Sensor counts keep the paper's relative ordering
// (PEMS07 > PEMS03 > PEMS04 > PEMS08; real N = 883/358/307/170) at roughly
// 1:10 scale so single-core CPU training stays tractable; durations keep
// the relative ordering of the paper's 4/3/2/2 months at a days scale.
// `scale` in [1, ...] multiplies sensor counts for larger runs.

GeneratorOptions Pems03Profile(int64_t scale = 1);
GeneratorOptions Pems04Profile(int64_t scale = 1);
GeneratorOptions Pems07Profile(int64_t scale = 1);
GeneratorOptions Pems08Profile(int64_t scale = 1);

}  // namespace data
}  // namespace stwa

#endif  // STWA_DATA_TRAFFIC_GENERATOR_H_
