// Traffic time series dataset container and CSV persistence.

#ifndef STWA_DATA_DATASET_H_
#define STWA_DATA_DATASET_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace stwa {
namespace data {

/// A multi-sensor traffic time series: values [N, T, F] plus the sensor
/// network metadata. Matches the paper's X in R^{N x T x F}.
struct TrafficDataset {
  /// Dataset name, e.g. "PEMS04-like".
  std::string name;

  /// Time series values [num_sensors, num_steps, num_features].
  Tensor values;

  /// Number of timestamps per day (PEMS: 288 at 5-minute sampling).
  int64_t steps_per_day = 288;

  /// Road label per sensor (ground truth for the Figure 9 clustering).
  std::vector<int> road_of_sensor;

  /// 2-D sensor coordinates (synthetic map layout).
  std::vector<std::pair<float, float>> coords;

  /// Sensor network graph used by graph-convolutional baselines.
  graph::SensorGraph graph;

  int64_t num_sensors() const { return values.dim(0); }
  int64_t num_steps() const { return values.dim(1); }
  int64_t num_features() const { return values.dim(2); }
};

/// Chronological split boundaries (paper: 60% / 20% / 20%).
struct SplitBounds {
  int64_t train_end = 0;  // [0, train_end)
  int64_t val_end = 0;    // [train_end, val_end)
  int64_t num_steps = 0;  // [val_end, num_steps) is test
};

/// Computes chronological split boundaries for `num_steps` timestamps.
SplitBounds ChronologicalSplit(int64_t num_steps, double train_frac = 0.6,
                               double val_frac = 0.2);

/// Writes the [N, T] first-feature matrix as CSV (one row per sensor).
void SaveSeriesCsv(const TrafficDataset& dataset, const std::string& path);

/// Loads a values-only dataset from the CSV produced by SaveSeriesCsv.
TrafficDataset LoadSeriesCsv(const std::string& path,
                             int64_t steps_per_day = 288);

}  // namespace data
}  // namespace stwa

#endif  // STWA_DATA_DATASET_H_
