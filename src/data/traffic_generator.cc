#include "data/traffic_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace stwa {
namespace data {
namespace {

/// Gaussian bump centred at `center` hours with `width` hours std-dev.
float Bump(float hour, float center, float width) {
  const float d = (hour - center) / width;
  return std::exp(-0.5f * d * d);
}

/// Per-road daily profile parameters.
struct RoadProfile {
  float base_night;       // overnight flow level
  float day_level;        // midday plateau on top of night level
  float morning_amp;      // morning peak amplitude
  float morning_center;   // hours
  float morning_width;    // hours
  bool has_evening_peak;  // Figure 1: some corridors lack the PM spike
  float evening_amp;
  float evening_center;
  float evening_width;
  float afternoon_decay;  // without an evening peak, flow decays after noon
  float weekend_scale;    // overall weekend attenuation
  float weekend_center;   // weekend midday bump centre
};

RoadProfile DrawRoadProfile(Rng& rng) {
  RoadProfile p;
  p.base_night = rng.Uniform(20.0f, 45.0f);
  p.day_level = rng.Uniform(90.0f, 160.0f);
  p.morning_amp = rng.Uniform(120.0f, 240.0f);
  p.morning_center = rng.Uniform(7.3f, 9.0f);
  p.morning_width = rng.Uniform(0.9f, 1.6f);
  p.has_evening_peak = rng.Uniform() < 0.5f;
  p.evening_amp = rng.Uniform(100.0f, 220.0f);
  p.evening_center = rng.Uniform(16.5f, 18.5f);
  p.evening_width = rng.Uniform(1.0f, 1.9f);
  p.afternoon_decay = rng.Uniform(0.25f, 0.5f);
  p.weekend_scale = rng.Uniform(0.55f, 0.75f);
  p.weekend_center = rng.Uniform(12.5f, 15.0f);
  return p;
}

/// Clean (noise-free) flow of a road at `hour` of a weekday / weekend day.
float RoadFlow(const RoadProfile& p, float hour, bool weekend) {
  // Day plateau: smooth rise ~6h, fall ~21h.
  const float rise = 1.0f / (1.0f + std::exp(-(hour - 6.0f) * 1.8f));
  const float fall = 1.0f / (1.0f + std::exp((hour - 21.0f) * 1.6f));
  float flow = p.base_night + p.day_level * rise * fall;
  if (weekend) {
    // Weekends: flatter, later midday bump, suppressed commute peaks.
    flow = p.base_night +
           p.weekend_scale * p.day_level * rise * fall +
           0.35f * p.morning_amp * Bump(hour, p.weekend_center, 2.6f);
    return flow;
  }
  flow += p.morning_amp * Bump(hour, p.morning_center, p.morning_width);
  if (p.has_evening_peak) {
    flow += p.evening_amp * Bump(hour, p.evening_center, p.evening_width);
  } else if (hour > 12.0f) {
    // Gradual afternoon decrease (Figure 1, sensors 3/4).
    flow *= 1.0f - p.afternoon_decay *
                       std::min(1.0f, (hour - 12.0f) / 9.0f);
  }
  return flow;
}

/// One planted incident: a smooth capacity drop on a single road.
struct Incident {
  int64_t start_step;
  int64_t duration_steps;
  float severity;  // multiplicative flow drop at the centre, in (0, 1)
};

/// Multiplier of the options-planted regime shift at `step` (1 before the
/// shift and when disabled; options only, no RNG).
float ShiftFactor(const GeneratorOptions& options, int64_t step) {
  if (options.shift_step < 0 || step < options.shift_step) return 1.0f;
  if (options.shift_ramp_steps > 0 &&
      step < options.shift_step + options.shift_ramp_steps) {
    const float phase =
        static_cast<float>(step - options.shift_step) /
        static_cast<float>(options.shift_ramp_steps);
    return 1.0f + (options.shift_scale - 1.0f) * phase;
  }
  return options.shift_scale;
}

float IncidentFactor(const std::vector<Incident>& incidents, int64_t step) {
  float factor = 1.0f;
  for (const Incident& inc : incidents) {
    if (step < inc.start_step || step >= inc.start_step + inc.duration_steps) {
      continue;
    }
    // Smooth ramp in and out (sine window).
    const float phase = static_cast<float>(step - inc.start_step) /
                        static_cast<float>(inc.duration_steps);
    const float window = std::sin(phase * 3.14159265f);
    factor *= 1.0f - inc.severity * window;
  }
  return factor;
}

}  // namespace

int DayOfWeek(int64_t step, int64_t steps_per_day) {
  STWA_CHECK(steps_per_day > 0, "steps_per_day must be positive");
  return static_cast<int>((step / steps_per_day) % 7);
}

bool IsWeekend(int64_t step, int64_t steps_per_day) {
  const int dow = DayOfWeek(step, steps_per_day);
  return dow == 5 || dow == 6;
}

std::vector<PlannedEvent> ShiftSchedule::ActiveAt(int64_t step) const {
  std::vector<PlannedEvent> active;
  for (const PlannedEvent& e : events) {
    if (step >= e.start_step && step < e.end_step) active.push_back(e);
  }
  return active;
}

int64_t ShiftSchedule::NextEventAfter(int64_t step) const {
  int64_t next = -1;
  for (const PlannedEvent& e : events) {
    if (e.start_step >= step && (next < 0 || e.start_step < next)) {
      next = e.start_step;
    }
  }
  return next;
}

TrafficDataset GenerateTraffic(const GeneratorOptions& options) {
  return GenerateTraffic(options, nullptr);
}

TrafficDataset GenerateTraffic(const GeneratorOptions& options,
                               ShiftSchedule* schedule) {
  STWA_CHECK(options.num_roads > 0 && options.sensors_per_road > 0 &&
                 options.num_days > 0 && options.steps_per_day > 0,
             "invalid generator options");
  Rng rng(options.seed);
  const int64_t num_sensors = options.num_roads * options.sensors_per_road;
  const int64_t num_steps = options.num_days * options.steps_per_day;

  TrafficDataset dataset;
  dataset.name = options.name;
  dataset.steps_per_day = options.steps_per_day;
  dataset.graph = graph::BuildCorridorGraph(
      options.num_roads, options.sensors_per_road, rng,
      &dataset.road_of_sensor);
  dataset.values = Tensor(Shape{num_sensors, num_steps, 1});

  // Road profiles and incident schedules.
  std::vector<RoadProfile> profiles;
  std::vector<std::vector<Incident>> incidents(options.num_roads);
  profiles.reserve(options.num_roads);
  for (int64_t r = 0; r < options.num_roads; ++r) {
    profiles.push_back(DrawRoadProfile(rng));
    for (int64_t day = 0; day < options.num_days; ++day) {
      if (rng.Uniform() < options.incident_prob) {
        Incident inc;
        const int64_t day_start = day * options.steps_per_day;
        inc.start_step =
            day_start + rng.UniformInt(options.steps_per_day - 30);
        // 30–120 minutes at 5-minute sampling.
        inc.duration_steps = 6 + rng.UniformInt(19);
        inc.severity = rng.Uniform(0.35f, 0.65f);
        incidents[r].push_back(inc);
      }
    }
  }
  if (schedule != nullptr) {
    schedule->events.clear();
    for (int64_t r = 0; r < options.num_roads; ++r) {
      for (const Incident& inc : incidents[r]) {
        PlannedEvent event;
        event.kind = PlannedEvent::Kind::kIncident;
        event.road = r;
        event.start_step = inc.start_step;
        event.end_step = inc.start_step + inc.duration_steps;
        event.severity = inc.severity;
        schedule->events.push_back(event);
      }
    }
    if (options.shift_step >= 0 && options.shift_step < num_steps) {
      PlannedEvent event;
      event.kind = PlannedEvent::Kind::kRegimeShift;
      event.road = -1;
      event.start_step = options.shift_step;
      event.end_step = num_steps;
      event.severity = std::abs(1.0f - options.shift_scale);
      schedule->events.push_back(event);
    }
    std::sort(schedule->events.begin(), schedule->events.end(),
              [](const PlannedEvent& a, const PlannedEvent& b) {
                return a.start_step < b.start_step;
              });
  }

  // Per-sensor modifiers.
  std::vector<float> amp(num_sensors);
  std::vector<float> lag_steps(num_sensors);
  dataset.coords.resize(num_sensors);
  for (int64_t i = 0; i < num_sensors; ++i) {
    const int road = dataset.road_of_sensor[i];
    const int64_t pos = i % options.sensors_per_road;
    amp[i] = rng.Uniform(0.85f, 1.15f);
    // Downstream sensors see the wave slightly later (0.2–0.6 steps per
    // hop, i.e. 1–3 minutes at 5-minute sampling).
    lag_steps[i] = static_cast<float>(pos) * rng.Uniform(0.2f, 0.6f);
    // Map layout: roads are parallel lines, sensors spaced along them.
    dataset.coords[i] = {static_cast<float>(pos) * 1.0f,
                         static_cast<float>(road) * 1.0f +
                             rng.Uniform(-0.1f, 0.1f)};
  }

  // Road-level AR(1) noise shared by the road's sensors.
  const float rho = 0.92f;
  std::vector<float> road_noise(options.num_roads, 0.0f);
  std::vector<Rng> sensor_rng;
  sensor_rng.reserve(num_sensors);
  for (int64_t i = 0; i < num_sensors; ++i) sensor_rng.push_back(rng.Fork());

  const float steps_per_hour =
      static_cast<float>(options.steps_per_day) / 24.0f;
  for (int64_t t = 0; t < num_steps; ++t) {
    const bool weekend =
        options.weekend_effect && IsWeekend(t, options.steps_per_day);
    for (int64_t r = 0; r < options.num_roads; ++r) {
      road_noise[r] = rho * road_noise[r] +
                      rng.Normal(0.0f, options.noise_std * 0.6f);
    }
    for (int64_t i = 0; i < num_sensors; ++i) {
      const int road = dataset.road_of_sensor[i];
      const float lagged_step =
          static_cast<float>(t % options.steps_per_day) - lag_steps[i];
      const float hour = lagged_step / steps_per_hour;
      float flow = amp[i] * RoadFlow(profiles[road], hour, weekend);
      flow *= IncidentFactor(incidents[road], t);
      flow *= ShiftFactor(options, t);
      flow += road_noise[road] +
              sensor_rng[i].Normal(0.0f, options.noise_std);
      dataset.values({i, t, 0}) = std::max(0.0f, flow);
    }
  }
  return dataset;
}

namespace {

GeneratorOptions Profile(const std::string& name, int64_t roads,
                         int64_t sensors_per_road, int64_t days,
                         uint64_t seed, int64_t scale) {
  GeneratorOptions o;
  o.name = name;
  o.num_roads = roads * scale;
  o.sensors_per_road = sensors_per_road;
  o.num_days = days;
  o.seed = seed;
  return o;
}

}  // namespace

GeneratorOptions Pems03Profile(int64_t scale) {
  // Paper: N=358, 3 months.
  return Profile("PEMS03-like", 6, 6, 12, 1003, scale);
}

GeneratorOptions Pems04Profile(int64_t scale) {
  // Paper: N=307, 2 months.
  return Profile("PEMS04-like", 5, 6, 10, 1004, scale);
}

GeneratorOptions Pems07Profile(int64_t scale) {
  // Paper: N=883, 4 months (largest network).
  return Profile("PEMS07-like", 8, 11, 14, 1007, scale);
}

GeneratorOptions Pems08Profile(int64_t scale) {
  // Paper: N=170, 2 months (smallest network).
  return Profile("PEMS08-like", 4, 4, 10, 1008, scale);
}

}  // namespace data
}  // namespace stwa
