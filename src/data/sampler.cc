#include "data/sampler.h"

#include <cstring>

#include "common/check.h"
#include "runtime/parallel.h"

namespace stwa {
namespace data {

WindowSampler::WindowSampler(Tensor values, Tensor targets, int64_t history,
                             int64_t horizon, int64_t range_begin,
                             int64_t range_end, int64_t stride)
    : values_(std::move(values)),
      targets_(std::move(targets)),
      history_(history),
      horizon_(horizon) {
  STWA_CHECK(values_.rank() == 3, "sampler expects [N, T, F] values");
  STWA_CHECK(values_.shape() == targets_.shape(),
             "values/targets shape mismatch");
  STWA_CHECK(history > 0 && horizon > 0, "history/horizon must be positive");
  STWA_CHECK(stride > 0, "stride must be positive");
  const int64_t steps = values_.dim(1);
  STWA_CHECK(range_begin >= 0 && range_end <= steps &&
                 range_begin <= range_end,
             "bad sample range [", range_begin, ", ", range_end, ")");
  // Anchor t needs t-H+1 >= range_begin and t+U <= range_end-1: the target
  // window [t+1, t+U] must stay inside the half-open timestamp range, so
  // the largest target index is range_end-1. (t+U == range_end would read
  // one step past the range — past the tensor itself when range_end ==
  // steps, i.e. stale out-of-bounds bytes for the last sensor.)
  for (int64_t t = range_begin + history - 1; t + horizon < range_end;
       t += stride) {
    anchors_.push_back(t);
  }
  STWA_CHECK(!anchors_.empty(), "no valid window anchors in range [",
             range_begin, ", ", range_end, ") with H=", history,
             " U=", horizon);
}

Batch WindowSampler::MakeBatch(
    const std::vector<int64_t>& anchor_indices) const {
  Batch out;
  MakeBatchInto(anchor_indices, &out);
  return out;
}

void WindowSampler::MakeBatchInto(const std::vector<int64_t>& anchor_indices,
                                  Batch* out) const {
  STWA_CHECK(!anchor_indices.empty(), "empty batch");
  const int64_t batch = static_cast<int64_t>(anchor_indices.size());
  const int64_t sensors = values_.dim(0);
  const int64_t steps = values_.dim(1);
  const int64_t features = values_.dim(2);
  // Reuse staging buffers when they are exclusively ours; every element is
  // overwritten below, so Uninit allocation is safe on the refresh path.
  const Shape x_shape{batch, sensors, history_, features};
  const Shape y_shape{batch, sensors, horizon_, features};
  if (out->x.shape() != x_shape || out->x.use_count() != 1) {
    out->x = Tensor::Uninit(x_shape);
  }
  if (out->y.shape() != y_shape || out->y.use_count() != 1) {
    out->y = Tensor::Uninit(y_shape);
  }
  const float* vp = values_.data();
  const float* tp = targets_.data();
  float* xp = out->x.data();
  float* yp = out->y.data();
  for (int64_t b = 0; b < batch; ++b) {
    STWA_CHECK(anchor_indices[b] >= 0 && anchor_indices[b] < num_samples(),
               "anchor index ", anchor_indices[b], " out of range");
  }
  // Each sample writes a disjoint [b, ...] slab of x/y, so the copies
  // parallelise freely.
  const int64_t copy_cost =
      sensors * (history_ + horizon_) * features + 1;
  const int64_t* anchors_p = anchors_.data();
  const int64_t* picks_p = anchor_indices.data();
  const int64_t history = history_;
  const int64_t horizon = horizon_;
  runtime::ParallelFor(
      0, batch, std::max<int64_t>(1, 16384 / copy_cost),
      [=](int64_t b0, int64_t b1) {
        for (int64_t b = b0; b < b1; ++b) {
          const int64_t t = anchors_p[picks_p[b]];
          for (int64_t i = 0; i < sensors; ++i) {
            // values[i, t-H+1 : t+1, :] -> x[b, i, :, :]
            std::memcpy(xp + ((b * sensors + i) * history) * features,
                        vp + (i * steps + (t - history + 1)) * features,
                        sizeof(float) * history * features);
            // targets[i, t+1 : t+U+1, :] -> y[b, i, :, :]
            std::memcpy(yp + ((b * sensors + i) * horizon) * features,
                        tp + (i * steps + (t + 1)) * features,
                        sizeof(float) * horizon * features);
          }
        }
      });
}

std::vector<std::vector<int64_t>> WindowSampler::EpochBatches(
    int64_t batch_size, Rng* shuffle_rng) const {
  STWA_CHECK(batch_size > 0, "batch_size must be positive");
  std::vector<int64_t> order(num_samples());
  for (int64_t i = 0; i < num_samples(); ++i) order[i] = i;
  if (shuffle_rng != nullptr) {
    std::vector<int64_t> perm = shuffle_rng->Permutation(num_samples());
    order = std::move(perm);
  }
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < num_samples(); start += batch_size) {
    const int64_t end = std::min(start + batch_size, num_samples());
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

}  // namespace data
}  // namespace stwa
