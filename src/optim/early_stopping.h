// Early stopping on a validation metric (paper: patience 15).

#ifndef STWA_OPTIM_EARLY_STOPPING_H_
#define STWA_OPTIM_EARLY_STOPPING_H_

#include <limits>

namespace stwa {
namespace optim {

/// Tracks the best validation metric and signals when training should stop
/// after `patience` epochs without improvement.
class EarlyStopping {
 public:
  explicit EarlyStopping(int patience = 15, float min_delta = 0.0f);

  /// Records a new validation value; returns true when the value improved
  /// on the best seen so far (by more than min_delta).
  bool Update(float value);

  /// True once `patience` consecutive non-improving updates have occurred.
  bool ShouldStop() const;

  /// Best value observed.
  float best() const { return best_; }

  /// Epoch index (0-based update counter) of the best value.
  int best_epoch() const { return best_epoch_; }

 private:
  int patience_;
  float min_delta_;
  float best_ = std::numeric_limits<float>::infinity();
  int best_epoch_ = -1;
  int epoch_ = -1;
  int bad_epochs_ = 0;
};

}  // namespace optim
}  // namespace stwa

#endif  // STWA_OPTIM_EARLY_STOPPING_H_
