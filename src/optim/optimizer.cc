#include "optim/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace stwa {
namespace optim {

Optimizer::Optimizer(std::vector<ag::Var> params)
    : params_(std::move(params)) {
  for (const ag::Var& p : params_) {
    STWA_CHECK(p.requires_grad(), "optimizer parameter must require grad");
  }
}

void Optimizer::ZeroGrad() {
  for (ag::Var& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<ag::Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const ag::Var& p : params_) {
      velocity_.emplace_back(p.value().shape());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    Tensor& value = p.node()->value;
    const Tensor& grad = p.grad();
    float* w = value.data();
    const float* g = grad.data();
    if (momentum_ > 0.0f) {
      float* vel = velocity_[i].data();
      for (int64_t j = 0; j < value.size(); ++j) {
        vel[j] = momentum_ * vel[j] + g[j];
        w[j] -= lr_ * vel[j];
      }
    } else {
      for (int64_t j = 0; j < value.size(); ++j) w[j] -= lr_ * g[j];
    }
  }
}

Adam::Adam(std::vector<ag::Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::Var& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    Tensor& value = p.node()->value;
    const Tensor& grad = p.grad();
    float* w = value.data();
    const float* g = grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (int64_t j = 0; j < value.size(); ++j) {
      float gj = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * gj;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * gj * gj;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm) {
  STWA_CHECK(max_norm > 0.0f, "max_norm must be positive");
  double total = 0.0;
  for (const ag::Var& p : params) {
    const Tensor& g = p.grad();
    const float* data = g.data();
    for (int64_t j = 0; j < g.size(); ++j) {
      total += static_cast<double>(data[j]) * data[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-6f);
    for (const ag::Var& p : params) {
      Tensor& g = p.node()->grad;
      float* data = g.data();
      for (int64_t j = 0; j < g.size(); ++j) data[j] *= scale;
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace stwa
