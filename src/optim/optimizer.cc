#include "optim/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace stwa {
namespace optim {

Optimizer::Optimizer(std::vector<ag::Var> params)
    : params_(std::move(params)) {
  for (const ag::Var& p : params_) {
    STWA_CHECK(p.requires_grad(), "optimizer parameter must require grad");
  }
}

void Optimizer::ZeroGrad() {
  for (ag::Var& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<ag::Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const ag::Var& p : params_) {
      velocity_.emplace_back(p.value().shape());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    Tensor& value = p.node()->value;
    const Tensor& grad = p.grad();
    // An empty grad means nothing was accumulated: the update is zero
    // (momentum decays a zero-initialised velocity to zero too).
    if (grad.empty()) continue;
    if (momentum_ > 0.0f) {
      float* w = value.data();
      const float* g = grad.data();
      float* vel = velocity_[i].data();
      const float momentum = momentum_;
      const float lr = lr_;
      runtime::ParallelFor(0, value.size(), ops::detail::kMinChunkWork,
                           [=](int64_t j0, int64_t j1) {
                             for (int64_t j = j0; j < j1; ++j) {
                               vel[j] = momentum * vel[j] + g[j];
                               w[j] -= lr * vel[j];
                             }
                           });
    } else {
      // Fused w -= lr * g.
      ops::AxpyInPlace(value, -lr_, grad);
    }
  }
}

Adam::Adam(std::vector<ag::Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::Var& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    Tensor& value = p.node()->value;
    const Tensor& grad = p.grad();
    // Empty grad == zero grad: with m = v = 0 the whole update is a no-op
    // (modulo weight decay, which we deliberately skip for untouched
    // parameters — no gradient, no decay step).
    if (grad.empty()) continue;
    float* w = value.data();
    const float* g = grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const float beta1 = beta1_;
    const float beta2 = beta2_;
    const float eps = eps_;
    const float wd = weight_decay_;
    const float lr = lr_;
    // Single fused pass over the parameter: moments and weight update in
    // one loop, elementwise-independent, so chunking keeps determinism.
    runtime::ParallelFor(
        0, value.size(), ops::detail::kMinChunkWork / 4,
        [=](int64_t j0, int64_t j1) {
          for (int64_t j = j0; j < j1; ++j) {
            const float gj = g[j] + wd * w[j];
            m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
            v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
            const float m_hat = m[j] / bias1;
            const float v_hat = v[j] / bias2;
            w[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
          }
        });
  }
}

float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm) {
  STWA_CHECK(max_norm > 0.0f, "max_norm must be positive");
  // The norm reduction stays serial in parameter-then-element order:
  // a cross-chunk reduction would change summation order and break the
  // bit-determinism contract.
  double total = 0.0;
  for (const ag::Var& p : params) {
    const Tensor& g = p.grad();  // empty (never accumulated) adds nothing
    const float* data = g.data();
    for (int64_t j = 0; j < g.size(); ++j) {
      total += static_cast<double>(data[j]) * data[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-6f);
    for (const ag::Var& p : params) {
      Tensor& g = p.node()->grad;
      if (!g.empty()) ops::MulScalarInPlace(g, scale);
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace stwa
