// First-order optimizers over Module parameters.

#ifndef STWA_OPTIM_OPTIMIZER_H_
#define STWA_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/var.h"

namespace stwa {
namespace optim {

/// Base optimizer: owns handles to the parameters it updates.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params);
  virtual ~Optimizer() = default;

  /// Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Current learning rate.
  float learning_rate() const { return lr_; }

  /// Updates the learning rate (for schedules).
  void set_learning_rate(float lr) { lr_ = lr; }

 protected:
  std::vector<ag::Var> params_;
  float lr_ = 1e-3f;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba). The paper trains with Adam at lr = 1e-3.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Rescales all gradients so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm);

}  // namespace optim
}  // namespace stwa

#endif  // STWA_OPTIM_OPTIMIZER_H_
