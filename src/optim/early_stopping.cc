#include "optim/early_stopping.h"

namespace stwa {
namespace optim {

EarlyStopping::EarlyStopping(int patience, float min_delta)
    : patience_(patience), min_delta_(min_delta) {}

bool EarlyStopping::Update(float value) {
  ++epoch_;
  if (value < best_ - min_delta_) {
    best_ = value;
    best_epoch_ = epoch_;
    bad_epochs_ = 0;
    return true;
  }
  ++bad_epochs_;
  return false;
}

bool EarlyStopping::ShouldStop() const { return bad_epochs_ >= patience_; }

}  // namespace optim
}  // namespace stwa
