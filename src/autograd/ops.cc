#include "autograd/ops.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "autograd/no_grad.h"
#include "common/check.h"
#include "tensor/ops.h"

namespace stwa {
namespace ag {
namespace {

/// Builds an op node. If no parent requires grad — or recording is off
/// (NoGradMode) — the node is a detached constant (no parents / backward),
/// pruning the tape.
Var MakeOp(Tensor value, std::vector<NodePtr> parents,
           std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool any = false;
  if (GradEnabled()) {
    for (const NodePtr& p : parents) {
      if (p != nullptr && p->requires_grad) {
        any = true;
        break;
      }
    }
  }
  if (any) {
    node->requires_grad = true;
    node->parents = std::move(parents);
    node->backward = std::move(backward);
  }
  return Var(std::move(node));
}

/// Accumulates `g` into `p`'s gradient, reducing over broadcast axes.
/// Exclusive temporaries are adopted by the grad buffer instead of being
/// added into a freshly zeroed allocation (Node::AccumulateGrad).
void Accum(const NodePtr& p, Tensor g) {
  if (p == nullptr || !p->requires_grad) return;
  if (g.shape() == p->value.shape()) {
    p->AccumulateGrad(std::move(g));
  } else {
    p->AccumulateGrad(ops::ReduceToShape(g, p->value.shape()));
  }
}

/// Accumulates a * b (elementwise) into `p`'s gradient. When the shapes
/// line up, the product is fused into the accumulation (AddMulInPlace) —
/// no intermediate product tensor; otherwise falls back to Mul + Accum
/// with broadcast reduction.
void AccumProduct(const NodePtr& p, const Tensor& a, const Tensor& b) {
  if (p == nullptr || !p->requires_grad) return;
  const Shape& shape = p->value.shape();
  if (a.shape() == shape && b.shape() == shape) {
    if (p->grad.empty() && !p->value.empty()) {
      p->AccumulateGrad(
          ops::BinaryMap(a, b, [](float x, float y) { return x * y; }));
    } else {
      ops::AddMulInPlace(p->grad, a, b);
    }
  } else {
    Accum(p, ops::Mul(a, b));
  }
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  return MakeOp(ops::Add(a.value(), b.value()), {a.node(), b.node()},
                [](Node& n) {
                  Accum(n.parents[0], n.grad);
                  Accum(n.parents[1], n.grad);
                });
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(ops::Sub(a.value(), b.value()), {a.node(), b.node()},
                [](Node& n) {
                  Accum(n.parents[0], n.grad);
                  Accum(n.parents[1], ops::Neg(n.grad));
                });
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(ops::Mul(a.value(), b.value()), {a.node(), b.node()},
                [](Node& n) {
                  AccumProduct(n.parents[0], n.grad, n.parents[1]->value);
                  AccumProduct(n.parents[1], n.grad, n.parents[0]->value);
                });
}

Var Div(const Var& a, const Var& b) {
  return MakeOp(
      ops::Div(a.value(), b.value()), {a.node(), b.node()}, [](Node& n) {
        const Tensor& av = n.parents[0]->value;
        const Tensor& bv = n.parents[1]->value;
        Accum(n.parents[0], ops::Div(n.grad, bv));
        Tensor gb = ops::Neg(
            ops::Div(ops::Mul(n.grad, av), ops::Mul(bv, bv)));
        Accum(n.parents[1], gb);
      });
}

Var AddScalar(const Var& a, float s) {
  return MakeOp(ops::AddScalar(a.value(), s), {a.node()},
                [](Node& n) { Accum(n.parents[0], n.grad); });
}

Var MulScalar(const Var& a, float s) {
  return MakeOp(ops::MulScalar(a.value(), s), {a.node()}, [s](Node& n) {
    Accum(n.parents[0], ops::MulScalar(n.grad, s));
  });
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

Var Exp(const Var& a) {
  Tensor y = ops::Exp(a.value());
  return MakeOp(y, {a.node()}, [y](Node& n) {
    AccumProduct(n.parents[0], n.grad, y);
  });
}

Var Log(const Var& a) {
  return MakeOp(ops::Log(a.value()), {a.node()}, [](Node& n) {
    Accum(n.parents[0], ops::Div(n.grad, n.parents[0]->value));
  });
}

Var Sqrt(const Var& a) {
  Tensor y = ops::Sqrt(a.value());
  return MakeOp(y, {a.node()}, [y](Node& n) {
    // d sqrt(x)/dx = 0.5 / sqrt(x); fused single-pass map.
    Accum(n.parents[0], ops::BinaryMap(n.grad, y, [](float g, float v) {
      return 0.5f * g / v;
    }));
  });
}

Var Square(const Var& a) {
  return MakeOp(ops::Square(a.value()), {a.node()}, [](Node& n) {
    Accum(n.parents[0],
          ops::BinaryMap(n.grad, n.parents[0]->value, [](float g, float x) {
            return g * 2.0f * x;
          }));
  });
}

Var Abs(const Var& a) {
  return MakeOp(ops::Abs(a.value()), {a.node()}, [](Node& n) {
    Accum(n.parents[0],
          ops::BinaryMap(n.grad, n.parents[0]->value, [](float g, float x) {
            return x > 0.0f ? g : (x < 0.0f ? -g : 0.0f);
          }));
  });
}

Var Tanh(const Var& a) {
  Tensor y = ops::Tanh(a.value());
  return MakeOp(y, {a.node()}, [y](Node& n) {
    // Fused g * (1 - y^2): one pooled temporary instead of two.
    Accum(n.parents[0], ops::BinaryMap(n.grad, y, [](float g, float v) {
      return g * (1.0f - v * v);
    }));
  });
}

Var Sigmoid(const Var& a) {
  Tensor y = ops::Sigmoid(a.value());
  return MakeOp(y, {a.node()}, [y](Node& n) {
    Accum(n.parents[0], ops::BinaryMap(n.grad, y, [](float g, float v) {
      return g * v * (1.0f - v);
    }));
  });
}

Var Relu(const Var& a) {
  return MakeOp(ops::Relu(a.value()), {a.node()}, [](Node& n) {
    Accum(n.parents[0],
          ops::BinaryMap(n.grad, n.parents[0]->value, [](float g, float x) {
            return x > 0.0f ? g : 0.0f;
          }));
  });
}

Var MatMul(const Var& a, const Var& b) {
  return MakeOp(ops::MatMul(a.value(), b.value()), {a.node(), b.node()},
                [](Node& n) {
                  const Tensor& av = n.parents[0]->value;
                  const Tensor& bv = n.parents[1]->value;
                  // dA = g @ B^T and dB = A^T @ g via the fused
                  // transposed-operand kernels (no transpose temporaries),
                  // reduced over broadcast batch dims by Accum.
                  Accum(n.parents[0], ops::MatMulNT(n.grad, bv));
                  Accum(n.parents[1], ops::MatMulTN(av, n.grad));
                });
}

Var TransposeLast2(const Var& a) {
  return MakeOp(ops::TransposeLast2(a.value()), {a.node()}, [](Node& n) {
    Accum(n.parents[0], ops::TransposeLast2(n.grad));
  });
}

Var Permute(const Var& a, const std::vector<int64_t>& axes) {
  std::vector<int64_t> inverse(axes.size());
  for (size_t d = 0; d < axes.size(); ++d) inverse[axes[d]] = d;
  return MakeOp(ops::Permute(a.value(), axes), {a.node()},
                [inverse](Node& n) {
                  Accum(n.parents[0], ops::Permute(n.grad, inverse));
                });
}

Var Reshape(const Var& a, Shape shape) {
  Shape original = a.value().shape();
  return MakeOp(a.value().Reshape(std::move(shape)), {a.node()},
                [original](Node& n) {
                  Accum(n.parents[0], n.grad.Reshape(original));
                });
}

Var Concat(const std::vector<Var>& parts, int64_t axis) {
  STWA_CHECK(!parts.empty(), "Concat of zero Vars");
  std::vector<Tensor> values;
  std::vector<NodePtr> nodes;
  values.reserve(parts.size());
  nodes.reserve(parts.size());
  for (const Var& v : parts) {
    values.push_back(v.value());
    nodes.push_back(v.node());
  }
  int64_t rank = parts[0].value().rank();
  if (axis < 0) axis += rank;
  std::vector<int64_t> extents;
  extents.reserve(parts.size());
  for (const Tensor& t : values) extents.push_back(t.shape()[axis]);
  return MakeOp(ops::Concat(values, axis), std::move(nodes),
                [axis, extents](Node& n) {
                  int64_t offset = 0;
                  for (size_t i = 0; i < extents.size(); ++i) {
                    Accum(n.parents[i],
                          ops::Slice(n.grad, axis, offset, extents[i]));
                    offset += extents[i];
                  }
                });
}

Var Slice(const Var& a, int64_t axis, int64_t start, int64_t len) {
  int64_t rank = a.value().rank();
  if (axis < 0) axis += rank;
  Shape parent_shape = a.value().shape();
  return MakeOp(
      ops::Slice(a.value(), axis, start, len), {a.node()},
      [axis, start, len, parent_shape](Node& n) {
        if (n.parents[0] == nullptr || !n.parents[0]->requires_grad) return;
        // Scatter the slice gradient back into a zero tensor of the parent
        // shape, then accumulate.
        n.parents[0]->EnsureGrad();
        Tensor& pg = n.parents[0]->grad;
        int64_t outer = 1;
        int64_t inner = 1;
        for (int64_t d = 0; d < axis; ++d) outer *= parent_shape[d];
        for (size_t d = axis + 1; d < parent_shape.size(); ++d) {
          inner *= parent_shape[d];
        }
        const int64_t extent = parent_shape[axis];
        const float* g = n.grad.data();
        float* p = pg.data();
        for (int64_t o = 0; o < outer; ++o) {
          const float* src = g + o * len * inner;
          float* dst = p + (o * extent + start) * inner;
          for (int64_t i = 0; i < len * inner; ++i) dst[i] += src[i];
        }
      });
}

Var Stack(const std::vector<Var>& parts) {
  STWA_CHECK(!parts.empty(), "Stack of zero Vars");
  std::vector<Var> reshaped;
  reshaped.reserve(parts.size());
  for (const Var& v : parts) {
    Shape s = v.value().shape();
    s.insert(s.begin(), 1);
    reshaped.push_back(Reshape(v, s));
  }
  return Concat(reshaped, 0);
}

Var IndexSelect0(const Var& a, std::vector<int64_t> indices) {
  // Materialise the forward value before the lambda move-captures `indices`
  // (argument evaluation order is unspecified).
  Tensor value = ops::IndexSelect0(a.value(), indices);
  return MakeOp(std::move(value), {a.node()},
                [indices = std::move(indices)](Node& n) {
                  if (n.parents[0] == nullptr ||
                      !n.parents[0]->requires_grad) {
                    return;
                  }
                  n.parents[0]->EnsureGrad();
                  ops::ScatterAddRows(n.parents[0]->grad, indices, n.grad);
                });
}

Var SumAll(const Var& a) {
  return MakeOp(ops::SumAll(a.value()), {a.node()}, [](Node& n) {
    const float g = n.grad.item();
    Accum(n.parents[0],
          Tensor(n.parents[0]->value.shape(), g));
  });
}

Var MeanAll(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return MakeOp(ops::MeanAll(a.value()), {a.node()}, [inv](Node& n) {
    const float g = n.grad.item() * inv;
    Accum(n.parents[0], Tensor(n.parents[0]->value.shape(), g));
  });
}

Var Sum(const Var& a, int64_t axis, bool keepdims) {
  int64_t rank = a.value().rank();
  if (axis < 0) axis += rank;
  Shape keep_shape = a.value().shape();
  keep_shape[axis] = 1;
  return MakeOp(ops::Sum(a.value(), axis, keepdims), {a.node()},
                [keep_shape](Node& n) {
                  // Broadcast the (possibly squeezed) grad back up —
                  // a pure copy expansion, no zero tensor or add pass.
                  Accum(n.parents[0],
                        ops::BroadcastTo(n.grad.Reshape(keep_shape),
                                         n.parents[0]->value.shape()));
                });
}

Var Mean(const Var& a, int64_t axis, bool keepdims) {
  int64_t rank = a.value().rank();
  if (axis < 0) axis += rank;
  const float inv = 1.0f / static_cast<float>(a.value().shape()[axis]);
  return MulScalar(Sum(a, axis, keepdims), inv);
}

Var SoftmaxLast(const Var& a) {
  Tensor y = ops::SoftmaxLast(a.value());
  return MakeOp(y, {a.node()}, [y](Node& n) {
    // Fused dx = y * (g - sum(g * y, last)): one pooled output, no
    // intermediate product/sum/difference tensors.
    Accum(n.parents[0], ops::SoftmaxLastBackward(y, n.grad));
  });
}

Var Dropout(const Var& a, float p, bool training, Rng& rng) {
  if (!training || p <= 0.0f) return a;
  STWA_CHECK(p < 1.0f, "Dropout probability must be < 1, got ", p);
  Tensor mask = Tensor::Uninit(a.value().shape());
  const float scale = 1.0f / (1.0f - p);
  float* m = mask.data();
  for (int64_t i = 0; i < mask.size(); ++i) {
    m[i] = rng.Uniform() < p ? 0.0f : scale;
  }
  return Mul(a, Var(std::move(mask)));
}

Var MseLoss(const Var& pred, const Var& target) {
  return MeanAll(Square(Sub(pred, target)));
}

Var MaeLoss(const Var& pred, const Var& target) {
  return MeanAll(Abs(Sub(pred, target)));
}

Var HuberLoss(const Var& pred, const Var& target, float delta) {
  STWA_CHECK(delta > 0.0f, "Huber delta must be positive");
  Var diff = Sub(pred, target);
  // Piecewise value and gradient computed directly for numerical clarity.
  Tensor d = diff.value();
  Tensor loss_value = ops::UnaryMap(d, [delta](float e) {
    const float a = std::fabs(e);
    return a <= delta ? 0.5f * e * e : delta * (a - 0.5f * delta);
  });
  const float inv = 1.0f / static_cast<float>(d.size());
  Var elem = MakeOp(loss_value, {diff.node()}, [delta](Node& n) {
    // dH/de = e (|e|<=delta), else delta*sign(e); fused with the incoming
    // gradient into a single pooled temporary.
    Accum(n.parents[0],
          ops::BinaryMap(n.grad, n.parents[0]->value,
                         [delta](float g, float e) {
                           const float de = std::fabs(e) <= delta
                                                ? e
                                                : (e > 0.0f ? delta : -delta);
                           return g * de;
                         }));
  });
  return MulScalar(SumAll(elem), inv);
}

}  // namespace ag
}  // namespace stwa
