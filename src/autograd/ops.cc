#include "autograd/ops.h"

#include <utility>

#include "autograd/no_grad.h"
#include "common/check.h"
#include "ir/capture.h"
#include "ir/registry.h"

namespace stwa {
namespace ag {
namespace {

/// Builds a typed op node: stores the kind + attrs, runs the registered
/// forward kernel to materialise the value, and decides gradient flow.
///
/// When no parent requires grad — or recording is off (NoGradMode) — the
/// node needs no backward pass; outside a plan capture its parent edges are
/// dropped to prune the tape (constant folding of the graph structure).
/// While a capture is active the edges are always kept, because a replay
/// must re-execute the op even if no gradient flows through it.
Var ApplyOp(ir::OpKind kind, std::vector<NodePtr> parents,
            ir::OpAttrs attrs = {}) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->attrs = std::move(attrs);
  node->parents = std::move(parents);
  const ir::OpKernelInfo& info = ir::Kernel(kind);
  node->value = info.forward(*node);
  bool any = false;
  if (GradEnabled() && info.backward != nullptr) {
    for (const NodePtr& p : node->parents) {
      if (p != nullptr && p->requires_grad) {
        any = true;
        break;
      }
    }
  }
  node->requires_grad = any;
  if (!any && !ir::CaptureActive()) node->parents.clear();
  ir::CaptureRecord(node);
  return Var(std::move(node));
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  return ApplyOp(ir::OpKind::kAdd, {a.node(), b.node()});
}

Var Sub(const Var& a, const Var& b) {
  return ApplyOp(ir::OpKind::kSub, {a.node(), b.node()});
}

Var Mul(const Var& a, const Var& b) {
  return ApplyOp(ir::OpKind::kMul, {a.node(), b.node()});
}

Var Div(const Var& a, const Var& b) {
  return ApplyOp(ir::OpKind::kDiv, {a.node(), b.node()});
}

Var AddScalar(const Var& a, float s) {
  ir::OpAttrs attrs;
  attrs.scalar = s;
  return ApplyOp(ir::OpKind::kAddScalar, {a.node()}, std::move(attrs));
}

Var MulScalar(const Var& a, float s) {
  ir::OpAttrs attrs;
  attrs.scalar = s;
  return ApplyOp(ir::OpKind::kMulScalar, {a.node()}, std::move(attrs));
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

Var Exp(const Var& a) { return ApplyOp(ir::OpKind::kExp, {a.node()}); }
Var Log(const Var& a) { return ApplyOp(ir::OpKind::kLog, {a.node()}); }
Var Sqrt(const Var& a) { return ApplyOp(ir::OpKind::kSqrt, {a.node()}); }
Var Square(const Var& a) { return ApplyOp(ir::OpKind::kSquare, {a.node()}); }
Var Abs(const Var& a) { return ApplyOp(ir::OpKind::kAbs, {a.node()}); }
Var Tanh(const Var& a) { return ApplyOp(ir::OpKind::kTanh, {a.node()}); }
Var Sigmoid(const Var& a) { return ApplyOp(ir::OpKind::kSigmoid, {a.node()}); }
Var Relu(const Var& a) { return ApplyOp(ir::OpKind::kRelu, {a.node()}); }

Var MatMul(const Var& a, const Var& b) {
  return ApplyOp(ir::OpKind::kMatMul, {a.node(), b.node()});
}

Var TransposeLast2(const Var& a) {
  return ApplyOp(ir::OpKind::kTransposeLast2, {a.node()});
}

Var Permute(const Var& a, const std::vector<int64_t>& axes) {
  ir::OpAttrs attrs;
  attrs.ints = axes;
  return ApplyOp(ir::OpKind::kPermute, {a.node()}, std::move(attrs));
}

Var Reshape(const Var& a, Shape shape) {
  ir::OpAttrs attrs;
  attrs.shape = std::move(shape);
  return ApplyOp(ir::OpKind::kReshape, {a.node()}, std::move(attrs));
}

Var Concat(const std::vector<Var>& parts, int64_t axis) {
  STWA_CHECK(!parts.empty(), "Concat of zero Vars");
  std::vector<NodePtr> nodes;
  nodes.reserve(parts.size());
  for (const Var& v : parts) nodes.push_back(v.node());
  int64_t rank = parts[0].value().rank();
  if (axis < 0) axis += rank;
  ir::OpAttrs attrs;
  attrs.axis = axis;
  return ApplyOp(ir::OpKind::kConcat, std::move(nodes), std::move(attrs));
}

Var Slice(const Var& a, int64_t axis, int64_t start, int64_t len) {
  int64_t rank = a.value().rank();
  if (axis < 0) axis += rank;
  ir::OpAttrs attrs;
  attrs.axis = axis;
  attrs.start = start;
  attrs.len = len;
  return ApplyOp(ir::OpKind::kSlice, {a.node()}, std::move(attrs));
}

Var Stack(const std::vector<Var>& parts) {
  STWA_CHECK(!parts.empty(), "Stack of zero Vars");
  std::vector<Var> reshaped;
  reshaped.reserve(parts.size());
  for (const Var& v : parts) {
    Shape s = v.value().shape();
    s.insert(s.begin(), 1);
    reshaped.push_back(Reshape(v, s));
  }
  return Concat(reshaped, 0);
}

Var IndexSelect0(const Var& a, std::vector<int64_t> indices) {
  ir::OpAttrs attrs;
  attrs.ints = std::move(indices);
  return ApplyOp(ir::OpKind::kIndexSelect0, {a.node()}, std::move(attrs));
}

Var SumAll(const Var& a) { return ApplyOp(ir::OpKind::kSumAll, {a.node()}); }

Var MeanAll(const Var& a) { return ApplyOp(ir::OpKind::kMeanAll, {a.node()}); }

Var Sum(const Var& a, int64_t axis, bool keepdims) {
  int64_t rank = a.value().rank();
  if (axis < 0) axis += rank;
  ir::OpAttrs attrs;
  attrs.axis = axis;
  attrs.keepdims = keepdims;
  return ApplyOp(ir::OpKind::kSum, {a.node()}, std::move(attrs));
}

Var Mean(const Var& a, int64_t axis, bool keepdims) {
  int64_t rank = a.value().rank();
  if (axis < 0) axis += rank;
  const float inv = 1.0f / static_cast<float>(a.value().shape()[axis]);
  return MulScalar(Sum(a, axis, keepdims), inv);
}

Var SoftmaxLast(const Var& a) {
  return ApplyOp(ir::OpKind::kSoftmaxLast, {a.node()});
}

Var RandnVar(Shape shape, Rng& rng) {
  ir::OpAttrs attrs;
  attrs.shape = std::move(shape);
  attrs.rng = &rng;
  return ApplyOp(ir::OpKind::kRandn, {}, std::move(attrs));
}

Var Dropout(const Var& a, float p, bool training, Rng& rng) {
  if (!training || p <= 0.0f) return a;
  STWA_CHECK(p < 1.0f, "Dropout probability must be < 1, got ", p);
  ir::OpAttrs attrs;
  attrs.scalar = p;
  attrs.shape = a.value().shape();
  attrs.rng = &rng;
  Var mask = ApplyOp(ir::OpKind::kDropoutMask, {}, std::move(attrs));
  return Mul(a, mask);
}

Var MseLoss(const Var& pred, const Var& target) {
  return MeanAll(Square(Sub(pred, target)));
}

Var MaeLoss(const Var& pred, const Var& target) {
  return MeanAll(Abs(Sub(pred, target)));
}

Var HuberLoss(const Var& pred, const Var& target, float delta) {
  STWA_CHECK(delta > 0.0f, "Huber delta must be positive");
  Var diff = Sub(pred, target);
  const float inv = 1.0f / static_cast<float>(diff.value().size());
  ir::OpAttrs attrs;
  attrs.scalar = delta;
  Var elem = ApplyOp(ir::OpKind::kHuberElem, {diff.node()}, std::move(attrs));
  return MulScalar(SumAll(elem), inv);
}

}  // namespace ag
}  // namespace stwa
