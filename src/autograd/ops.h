// Differentiable operators over ag::Var.
//
// Every function builds a typed tape node (ir::OpKind + ir::OpAttrs) whose
// forward and backward kernels live in the per-kind registry
// (ir/registry.cc). Binary elementwise ops broadcast like their
// tensor/ops.h counterparts; their backward passes sum-reduce gradients back
// to the input shapes. Every registered kind is covered by finite-difference
// gradient tests (autograd/gradcheck.h enumerates the registry).

#ifndef STWA_AUTOGRAD_OPS_H_
#define STWA_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/var.h"
#include "common/rng.h"

namespace stwa {
namespace ag {

// --- Elementwise binary (broadcasting) ----------------------------------

Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);

// --- Scalar arithmetic ----------------------------------------------------

Var AddScalar(const Var& a, float s);
Var MulScalar(const Var& a, float s);

// --- Elementwise unary ------------------------------------------------------

Var Neg(const Var& a);
Var Exp(const Var& a);
Var Log(const Var& a);
Var Sqrt(const Var& a);
Var Square(const Var& a);
Var Abs(const Var& a);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);

// --- Linear algebra ----------------------------------------------------------

/// Batched matrix product with rank-2 operand sharing (see ops::MatMul).
Var MatMul(const Var& a, const Var& b);

/// Swaps the last two axes.
Var TransposeLast2(const Var& a);

/// General axis permutation.
Var Permute(const Var& a, const std::vector<int64_t>& axes);

// --- Shape ---------------------------------------------------------------

Var Reshape(const Var& a, Shape shape);

/// Concatenates along `axis`.
Var Concat(const std::vector<Var>& parts, int64_t axis);

/// Copies range [start, start+len) of `axis`.
Var Slice(const Var& a, int64_t axis, int64_t start, int64_t len);

/// Stacks equal-shaped Vars along a new leading axis.
Var Stack(const std::vector<Var>& parts);

/// Row (axis-0) gather; backward scatter-adds (embedding lookup).
Var IndexSelect0(const Var& a, std::vector<int64_t> indices);

// --- Reductions -------------------------------------------------------------

Var SumAll(const Var& a);
Var MeanAll(const Var& a);
Var Sum(const Var& a, int64_t axis, bool keepdims = false);
Var Mean(const Var& a, int64_t axis, bool keepdims = false);

// --- Softmax / regularisers --------------------------------------------------

/// Numerically stable softmax over the last axis.
Var SoftmaxLast(const Var& a);

/// Standard-normal sample as a tape op (kRandn). Unlike wrapping
/// Tensor::Randn in a leaf, the op redraws from `rng` on every execution,
/// so captured plans replay fresh noise in the same stream order as traced
/// runs. `rng` must outlive any plan built over this op.
Var RandnVar(Shape shape, Rng& rng);

/// Inverted dropout; identity when !training or p == 0.
Var Dropout(const Var& a, float p, bool training, Rng& rng);

// --- Losses -------------------------------------------------------------------

/// Mean squared error over all elements.
Var MseLoss(const Var& pred, const Var& target);

/// Mean absolute error over all elements.
Var MaeLoss(const Var& pred, const Var& target);

/// Huber loss (Eq. 21 of the paper) with threshold delta, averaged over all
/// elements. Quadratic within |e| <= delta, linear outside.
Var HuberLoss(const Var& pred, const Var& target, float delta = 1.0f);

}  // namespace ag
}  // namespace stwa

#endif  // STWA_AUTOGRAD_OPS_H_
