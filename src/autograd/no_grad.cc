#include "autograd/no_grad.h"

namespace stwa {
namespace ag {
namespace {

thread_local bool t_grad_enabled = true;

}  // namespace

NoGradMode::NoGradMode() : prev_enabled_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradMode::~NoGradMode() { t_grad_enabled = prev_enabled_; }

bool GradEnabled() { return t_grad_enabled; }

}  // namespace ag
}  // namespace stwa
