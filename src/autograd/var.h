// Reverse-mode automatic differentiation.
//
// Var is a value-semantic handle to a node in a dynamically built tape.
// Differentiable operators (autograd/ops.h) create fresh nodes whose
// backward closures accumulate gradients into their parents. Calling
// Backward() on a scalar Var runs the tape in reverse topological order.
//
// Graph values are never mutated in place after creation, so a node's value
// can be shared freely (Tensor has shared-buffer copy semantics).

#ifndef STWA_AUTOGRAD_VAR_H_
#define STWA_AUTOGRAD_VAR_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace stwa {
namespace ag {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// A node of the autograd tape: holds the forward value, the accumulated
/// gradient, parent edges and the backward closure.
class Node {
 public:
  /// Forward value of this node.
  Tensor value;

  /// Accumulated gradient; empty until EnsureGrad() / backward touches it.
  Tensor grad;

  /// Whether gradients should flow to (and through) this node.
  bool requires_grad = false;

  /// Parent nodes in the tape (inputs of the producing op).
  std::vector<NodePtr> parents;

  /// Accumulates this node's gradient into its parents. Unset for leaves.
  std::function<void(Node&)> backward;

  /// Allocates (zeroed) grad storage matching `value` if not present.
  /// Only accumulation sites call this; read paths never allocate.
  void EnsureGrad();

  /// Adds `g` (already reduced to value's shape) into this node's grad.
  /// When the grad buffer does not exist yet and `g` owns its buffer
  /// exclusively, the buffer is adopted outright — no zero-fill, no add,
  /// no allocation. Bit-identical to EnsureGrad + AddInPlace (0 + x == x).
  void AccumulateGrad(Tensor g);
};

/// Value-semantic handle to a tape node. Copies alias the same node.
class Var {
 public:
  /// Undefined handle; defined() is false.
  Var() = default;

  /// Wraps a tensor as a leaf node.
  explicit Var(Tensor value, bool requires_grad = false);

  /// Wraps an existing node.
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  /// True when the handle points at a node.
  bool defined() const { return node_ != nullptr; }

  /// Forward value. Requires defined().
  const Tensor& value() const;

  /// Accumulated gradient. Pure read: if nothing has been accumulated yet
  /// the shared empty sentinel (size-0 tensor) is returned — a read never
  /// allocates grad storage. Callers treat an empty grad as all-zeros.
  const Tensor& grad() const;

  /// True when gradients flow to this node.
  bool requires_grad() const;

  /// Zeroes the gradient buffer if one exists (keeps the allocation);
  /// no-op — not an allocation — when no gradient was ever accumulated.
  void ZeroGrad();

  /// Runs reverse-mode accumulation from this scalar node. Requires a
  /// single-element value.
  void Backward();

  /// Returns a leaf Var sharing this value but cut off from the tape.
  Var Detach() const;

  /// Shape convenience forwarding to value().shape().
  const Shape& shape() const { return value().shape(); }

  /// Underlying node.
  const NodePtr& node() const { return node_; }

 private:
  NodePtr node_;
};

/// Creates a non-differentiable scalar constant.
Var Scalar(float v);

/// Creates a differentiable parameter leaf from a tensor.
Var Parameter(Tensor value);

}  // namespace ag
}  // namespace stwa

#endif  // STWA_AUTOGRAD_VAR_H_
