// Reverse-mode automatic differentiation.
//
// Var is a value-semantic handle to a node in a dynamically built tape.
// Differentiable operators (autograd/ops.h) create fresh nodes that record
// a typed operator identity (ir::OpKind + ir::OpAttrs) instead of an opaque
// backward closure; forward and backward kernels are dispatched through the
// per-kind registry (ir/registry.h). Calling Backward() on a scalar Var
// runs the tape in reverse topological order.
//
// Graph values are never mutated in place after creation, so a node's value
// can be shared freely (Tensor has shared-buffer copy semantics).

#ifndef STWA_AUTOGRAD_VAR_H_
#define STWA_AUTOGRAD_VAR_H_

#include <memory>
#include <vector>

#include "ir/op_kind.h"
#include "tensor/tensor.h"

namespace stwa {
namespace ag {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// A node of the autograd tape: holds the forward value, the accumulated
/// gradient, parent edges and the typed operator identity used to dispatch
/// the forward/backward kernels.
class Node {
 public:
  /// Iterative teardown of the parent chain: long tapes (RNN baselines over
  /// long horizons) would otherwise destruct Node::parents recursively and
  /// can blow the stack.
  ~Node();

  /// Forward value of this node.
  Tensor value;

  /// Accumulated gradient; empty until EnsureGrad() / backward touches it.
  Tensor grad;

  /// Whether gradients should flow to (and through) this node.
  bool requires_grad = false;

  /// Identity of the producing operator; kLeaf for tensors wrapped
  /// directly (parameters, constants, feeds).
  ir::OpKind kind = ir::OpKind::kLeaf;

  /// Operator attributes read by the kind's kernels.
  ir::OpAttrs attrs;

  /// Parent nodes in the tape (inputs of the producing op). Empty when the
  /// node was pruned (no gradient flow and no active capture).
  std::vector<NodePtr> parents;

  /// Allocates (zeroed) grad storage matching `value` if not present.
  /// Only accumulation sites call this; read paths never allocate.
  void EnsureGrad();

  /// Adds `g` (already reduced to value's shape) into this node's grad.
  /// When the grad buffer does not exist yet and `g` owns its buffer
  /// exclusively, the buffer is adopted outright — no zero-fill, no add,
  /// no allocation. Bit-identical to EnsureGrad + AddInPlace (0 + x == x).
  void AccumulateGrad(Tensor g);
};

/// Value-semantic handle to a tape node. Copies alias the same node.
class Var {
 public:
  /// Undefined handle; defined() is false.
  Var() = default;

  /// Wraps a tensor as a leaf node.
  explicit Var(Tensor value, bool requires_grad = false);

  /// Wraps an existing node.
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  /// True when the handle points at a node.
  bool defined() const { return node_ != nullptr; }

  /// Forward value. Requires defined().
  const Tensor& value() const;

  /// Accumulated gradient. Pure read: if nothing has been accumulated yet
  /// the shared empty sentinel (size-0 tensor) is returned — a read never
  /// allocates grad storage. Callers treat an empty grad as all-zeros.
  const Tensor& grad() const;

  /// True when gradients flow to this node.
  bool requires_grad() const;

  /// Zeroes the gradient buffer if one exists (keeps the allocation);
  /// no-op — not an allocation — when no gradient was ever accumulated.
  void ZeroGrad();

  /// Runs reverse-mode accumulation from this scalar node. Requires a
  /// single-element value.
  void Backward();

  /// Returns a stop-gradient Var sharing this value. Recorded as a kDetach
  /// op (with the parent edge) while a plan capture is active so replays
  /// re-alias the recomputed parent value; a plain leaf otherwise.
  Var Detach() const;

  /// Shape convenience forwarding to value().shape().
  const Shape& shape() const { return value().shape(); }

  /// Underlying node.
  const NodePtr& node() const { return node_; }

 private:
  NodePtr node_;
};

/// Creates a non-differentiable scalar constant.
Var Scalar(float v);

/// Creates a differentiable parameter leaf from a tensor.
Var Parameter(Tensor value);

namespace detail {

/// Depth-first post-order over the requires-grad subgraph rooted at
/// `root`; iterating the result in reverse yields the backward schedule.
/// Shared by Var::Backward (per-step tracing) and ir::ExecutionPlan
/// (captured schedule) so both execute — and accumulate — in exactly the
/// same order, keeping traced and replayed gradients bit-identical.
void TopoSortGradGraph(const NodePtr& root, std::vector<Node*>& order);

}  // namespace detail

}  // namespace ag
}  // namespace stwa

#endif  // STWA_AUTOGRAD_VAR_H_
