// Reverse-mode automatic differentiation.
//
// Var is a value-semantic handle to a node in a dynamically built tape.
// Differentiable operators (autograd/ops.h) create fresh nodes whose
// backward closures accumulate gradients into their parents. Calling
// Backward() on a scalar Var runs the tape in reverse topological order.
//
// Graph values are never mutated in place after creation, so a node's value
// can be shared freely (Tensor has shared-buffer copy semantics).

#ifndef STWA_AUTOGRAD_VAR_H_
#define STWA_AUTOGRAD_VAR_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace stwa {
namespace ag {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// A node of the autograd tape: holds the forward value, the accumulated
/// gradient, parent edges and the backward closure.
class Node {
 public:
  /// Forward value of this node.
  Tensor value;

  /// Accumulated gradient; empty until EnsureGrad() / backward touches it.
  Tensor grad;

  /// Whether gradients should flow to (and through) this node.
  bool requires_grad = false;

  /// Parent nodes in the tape (inputs of the producing op).
  std::vector<NodePtr> parents;

  /// Accumulates this node's gradient into its parents. Unset for leaves.
  std::function<void(Node&)> backward;

  /// Allocates (zeroed) grad storage matching `value` if not present.
  void EnsureGrad();
};

/// Value-semantic handle to a tape node. Copies alias the same node.
class Var {
 public:
  /// Undefined handle; defined() is false.
  Var() = default;

  /// Wraps a tensor as a leaf node.
  explicit Var(Tensor value, bool requires_grad = false);

  /// Wraps an existing node.
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  /// True when the handle points at a node.
  bool defined() const { return node_ != nullptr; }

  /// Forward value. Requires defined().
  const Tensor& value() const;

  /// Accumulated gradient (allocates zeros on first access).
  const Tensor& grad() const;

  /// True when gradients flow to this node.
  bool requires_grad() const;

  /// Zeroes the gradient buffer (keeps allocation).
  void ZeroGrad();

  /// Runs reverse-mode accumulation from this scalar node. Requires a
  /// single-element value.
  void Backward();

  /// Returns a leaf Var sharing this value but cut off from the tape.
  Var Detach() const;

  /// Shape convenience forwarding to value().shape().
  const Shape& shape() const { return value().shape(); }

  /// Underlying node.
  const NodePtr& node() const { return node_; }

 private:
  NodePtr node_;
};

/// Creates a non-differentiable scalar constant.
Var Scalar(float v);

/// Creates a differentiable parameter leaf from a tensor.
Var Parameter(Tensor value);

}  // namespace ag
}  // namespace stwa

#endif  // STWA_AUTOGRAD_VAR_H_
