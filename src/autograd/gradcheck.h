// Finite-difference gradient checking used by the test suite.

#ifndef STWA_AUTOGRAD_GRADCHECK_H_
#define STWA_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/var.h"

namespace stwa {
namespace ag {

/// Result of a gradient check.
struct GradCheckResult {
  bool ok = true;
  /// Largest absolute difference between analytic and numeric gradients.
  float max_abs_error = 0.0f;
  /// Human-readable description of the first failure (empty when ok).
  std::string message;
};

/// Verifies the analytic gradient of `fn` (a scalar-valued function of the
/// given leaf parameters) against central finite differences.
///
/// `fn` must be deterministic and must rebuild its graph from the current
/// parameter values on every call. Tolerance is absolute+relative:
/// |analytic - numeric| <= atol + rtol * |numeric|.
GradCheckResult CheckGradients(
    const std::function<Var()>& fn, const std::vector<Var>& params,
    float epsilon = 1e-2f, float rtol = 5e-2f, float atol = 5e-3f);

/// Enumerates every OpKind registered in the graph IR (ir/registry.h) and
/// finite-difference checks each differentiable kind through its
/// registry-provided gradcheck case. Enforces the registry invariant both
/// ways: a kind with a backward kernel but no case — or a case without a
/// backward — is reported as a failure. Returns the number of kinds
/// checked; `failures` (optional) collects one message per failing kind
/// and stays empty when everything passes.
int CheckAllOpKinds(std::vector<std::string>* failures = nullptr);

}  // namespace ag
}  // namespace stwa

#endif  // STWA_AUTOGRAD_GRADCHECK_H_
