#include "autograd/var.h"

#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "ir/capture.h"
#include "ir/registry.h"
#include "tensor/ops.h"

namespace stwa {
namespace ag {

Node::~Node() {
  // Drain the parent chain iteratively: destructing a deep tape through
  // recursive shared_ptr releases would consume one stack frame per node
  // and overflow on long unrolls. Only uniquely owned parents are drained;
  // shared ones stay alive and tear down whenever their last owner does.
  std::vector<NodePtr> stack = std::move(parents);
  while (!stack.empty()) {
    NodePtr node = std::move(stack.back());
    stack.pop_back();
    if (node != nullptr && node.use_count() == 1) {
      for (NodePtr& parent : node->parents) {
        if (parent != nullptr) stack.push_back(std::move(parent));
      }
      node->parents.clear();
    }
  }
}

void Node::EnsureGrad() {
  if (grad.empty() && !value.empty()) {
    grad = Tensor(value.shape());
  } else if (grad.shape() != value.shape()) {
    grad = Tensor(value.shape());
  }
}

void Node::AccumulateGrad(Tensor g) {
  STWA_CHECK(g.shape() == value.shape(), "AccumulateGrad shape mismatch: ",
             ShapeToString(g.shape()), " vs ", ShapeToString(value.shape()));
  if (grad.empty() && !value.empty()) {
    if (g.use_count() == 1) {
      // Exclusive temporary: adopt the buffer instead of zero-fill + add.
      grad = std::move(g);
      return;
    }
    grad = Tensor(value.shape());
  } else if (grad.shape() != value.shape()) {
    grad = Tensor(value.shape());
  }
  ops::AddInPlace(grad, g);
}

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  ir::CaptureRecord(node_);
}

const Tensor& Var::value() const {
  STWA_CHECK(defined(), "value() on undefined Var");
  return node_->value;
}

const Tensor& Var::grad() const {
  STWA_CHECK(defined(), "grad() on undefined Var");
  // Read path: never allocate. An unaccumulated grad stays the empty
  // sentinel; consumers (optimizers, clipping) treat it as all-zeros.
  return node_->grad;
}

bool Var::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Var::ZeroGrad() {
  STWA_CHECK(defined(), "ZeroGrad() on undefined Var");
  // Keep an existing allocation and clear it; don't create one just to
  // hold zeros — an empty grad already reads as zero everywhere.
  if (!node_->grad.empty()) node_->grad.Fill(0.0f);
}

namespace detail {

void TopoSortGradGraph(const NodePtr& root, std::vector<Node*>& order) {
  // Depth-first post-order over the requires-grad subgraph; iterative to
  // support deep graphs (long RNN unrolls, many chained windows).
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      Node* parent = node->parents[child].get();
      ++child;
      if (parent != nullptr && parent->requires_grad &&
          visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace detail

void Var::Backward() {
  STWA_CHECK(defined(), "Backward() on undefined Var");
  STWA_CHECK(node_->value.size() == 1,
             "Backward() requires a scalar, got shape ",
             ShapeToString(node_->value.shape()));
  STWA_CHECK(node_->requires_grad,
             "Backward() on a node that does not require grad");
  std::vector<Node*> order;
  detail::TopoSortGradGraph(node_, order);
  node_->EnsureGrad();
  node_->grad.Fill(1.0f);
  // Post-order yields parents before children; reverse it so each node's
  // grad is complete before it is pushed to its parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    const ir::OpKernelInfo& info = ir::Kernel(node->kind);
    if (info.backward != nullptr) {
      node->EnsureGrad();
      info.backward(*node);
    }
  }
}

Var Var::Detach() const {
  STWA_CHECK(defined(), "Detach() on undefined Var");
  if (ir::CaptureActive()) {
    // Record the stop-gradient as a real op so plan replays re-alias the
    // *recomputed* parent value instead of the capture-time snapshot.
    NodePtr node = std::make_shared<Node>();
    node->kind = ir::OpKind::kDetach;
    node->parents = {node_};
    node->value = node_->value;
    ir::CaptureRecord(node);
    return Var(std::move(node));
  }
  return Var(node_->value, /*requires_grad=*/false);
}

Var Scalar(float v) {
  Tensor t(Shape{});
  t.data()[0] = v;
  return Var(std::move(t), /*requires_grad=*/false);
}

Var Parameter(Tensor value) {
  return Var(std::move(value), /*requires_grad=*/true);
}

}  // namespace ag
}  // namespace stwa
