#include "autograd/gradcheck.h"

#include <cmath>

#include "common/check.h"
#include "ir/registry.h"

namespace stwa {
namespace ag {

GradCheckResult CheckGradients(const std::function<Var()>& fn,
                               const std::vector<Var>& params, float epsilon,
                               float rtol, float atol) {
  GradCheckResult result;

  // Analytic pass.
  for (const Var& p : params) {
    STWA_CHECK(p.requires_grad(), "gradcheck parameter must require grad");
    const_cast<Var&>(p).ZeroGrad();
  }
  Var loss = fn();
  STWA_CHECK(loss.value().size() == 1, "gradcheck fn must return a scalar");
  loss.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const Var& p : params) {
    // A parameter the graph never touched has an empty grad (the no-alloc
    // read sentinel); treat it as analytic zeros of the value's shape.
    analytic.push_back(p.grad().empty() ? Tensor(p.node()->value.shape())
                                        : p.grad().Clone());
  }

  // Numeric pass (central differences). We mutate the parameter's storage
  // in place; fn() rebuilds the graph from the current values.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor value = params[pi].node()->value;
    float* data = value.data();
    for (int64_t i = 0; i < value.size(); ++i) {
      const float saved = data[i];
      data[i] = saved + epsilon;
      const float up = fn().value().item();
      data[i] = saved - epsilon;
      const float down = fn().value().item();
      data[i] = saved;
      const float numeric = (up - down) / (2.0f * epsilon);
      const float got = analytic[pi].at(i);
      const float err = std::fabs(got - numeric);
      result.max_abs_error = std::max(result.max_abs_error, err);
      if (err > atol + rtol * std::fabs(numeric)) {
        result.ok = false;
        if (result.message.empty()) {
          result.message = stwa::detail::StrCat(
              "param ", pi, " element ", i, ": analytic=", got,
              " numeric=", numeric, " |err|=", err);
        }
      }
    }
  }
  return result;
}

int CheckAllOpKinds(std::vector<std::string>* failures) {
  auto fail = [failures](std::string message) {
    if (failures != nullptr) failures->push_back(std::move(message));
  };
  int checked = 0;
  for (int k = 0; k < ir::kNumOpKinds; ++k) {
    const ir::OpKind kind = static_cast<ir::OpKind>(k);
    const ir::OpKernelInfo& info = ir::Kernel(kind);
    if (info.backward == nullptr) {
      if (info.make_gradcheck != nullptr) {
        fail(stwa::detail::StrCat(info.name,
                            ": gradcheck case on a non-differentiable kind"));
      }
      continue;
    }
    if (info.make_gradcheck == nullptr) {
      fail(stwa::detail::StrCat(info.name,
                          ": backward kernel without a gradcheck case"));
      continue;
    }
    ir::GradCheckCase test_case = info.make_gradcheck();
    // Per-kind tolerance overrides (registry-declared, 0 = default) let
    // kinds whose vectorized kernels differ slightly from libm loosen the
    // comparison without weakening every other kind's check.
    const float rtol = info.gc_rtol > 0.0f ? info.gc_rtol : 5e-2f;
    const float atol = info.gc_atol > 0.0f ? info.gc_atol : 5e-3f;
    const GradCheckResult result =
        CheckGradients(test_case.fn, test_case.params, 1e-2f, rtol, atol);
    ++checked;
    if (!result.ok) {
      fail(stwa::detail::StrCat(info.name, ": ", result.message));
    }
  }
  return checked;
}

}  // namespace ag
}  // namespace stwa
