// Scoped gradient-recording switch.
//
// While a NoGradMode object is alive on a thread, differentiable operators
// (autograd/ops.h) build no tape nodes: every op result is a detached
// constant, so evaluation/inference skips the allocation and bookkeeping
// of backward closures entirely. Leaf construction (Parameter / Var with
// requires_grad) is unaffected — only op recording is suppressed, so
// training resumes normally once the scope ends.
//
// Calling Backward() on a value produced under NoGradMode throws
// stwa::Error ("does not require grad") rather than silently doing
// nothing.

#ifndef STWA_AUTOGRAD_NO_GRAD_H_
#define STWA_AUTOGRAD_NO_GRAD_H_

namespace stwa {
namespace ag {

/// RAII scope that disables tape construction on the current thread.
/// Scopes nest; recording resumes when the outermost scope ends.
class NoGradMode {
 public:
  NoGradMode();
  ~NoGradMode();

  NoGradMode(const NoGradMode&) = delete;
  NoGradMode& operator=(const NoGradMode&) = delete;

 private:
  bool prev_enabled_;
};

/// True when op recording is active (no NoGradMode scope is alive on this
/// thread).
bool GradEnabled();

}  // namespace ag
}  // namespace stwa

#endif  // STWA_AUTOGRAD_NO_GRAD_H_
