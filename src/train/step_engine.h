// The reusable core of training: one optimizer step / one forward pass
// over a frozen computation recipe, shared by offline training
// (train/trainer.h) and online continual learning (online/adaptation.h).
//
// A StepEngine owns everything that must persist *across* steps for the
// hot path to stay allocation-free and plan-replayed — the parameter
// handles, the Adam state, the captured train/eval execution plans (one
// per batch shape, ir/plan.h), and the staging buffers — while the
// caller keeps the policy: epoch order, shuffling, early stopping,
// when to evaluate, when to stop. Trainer::Fit is a thin loop over
// Step()/EvaluateOn(); the online adaptation loop drives the exact same
// engine with replay-buffer batches, so a fine-tune step is bit-identical
// in kind to an offline training step.

#ifndef STWA_TRAIN_STEP_ENGINE_H_
#define STWA_TRAIN_STEP_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "autograd/ops.h"
#include "data/sampler.h"
#include "data/scaler.h"
#include "ir/plan.h"
#include "metrics/metrics.h"
#include "nn/module.h"
#include "optim/optimizer.h"

namespace stwa {
namespace train {

/// Interface every forecasting model implements. Input x is the normalised
/// history [B, N, H, F]; the output is the normalised forecast
/// [B, N, U, F].
class ForecastModel : public nn::Module {
 public:
  virtual ag::Var Forward(const Tensor& x, bool training) = 0;

  /// Model-specific additive loss term (e.g. alpha * KL for ST-WA),
  /// valid after the most recent Forward call. Undefined Var means none.
  virtual ag::Var RegularizationLoss() const { return {}; }

  /// Short display name used by the benchmark tables.
  virtual std::string name() const = 0;
};

/// How a run used captured execution plans.
struct PlanSummary {
  /// Plans captured (one per distinct train batch shape; 0 when eager).
  int64_t plans_captured = 0;
  /// Steps run by eager tracing (plan-off runs, capture steps, fallbacks).
  int64_t traced_steps = 0;
  /// Steps run by plan replay.
  int64_t replayed_steps = 0;
  /// Stats of the largest captured plan (the full-batch step).
  int64_t captured_nodes = 0;
  int64_t forward_ops = 0;
  int64_t backward_ops = 0;
  int64_t pruned_ops = 0;
  int64_t peak_live_bytes = 0;
  /// Fusion rewrites of that plan (ir/rewrite.h): fused super-ops emitted
  /// and forward steps they absorbed.
  int64_t fused_map_nodes = 0;
  int64_t fused_attention_nodes = 0;
  int64_t fused_away_ops = 0;
  /// Region schedule of that plan (ir/regions.h).
  int64_t regions = 0;
  int64_t region_stages = 0;
};

/// Per-step hyper-parameters of the engine (the loop-level knobs — epochs,
/// batch order, patience — stay with the caller).
struct StepEngineConfig {
  float lr = 1e-3f;
  float clip_norm = 5.0f;
  float huber_delta = 1.0f;
  /// Captured execution plans: -1 follows the global gate (on unless
  /// STWA_NO_PLAN / ir::SetPlanMode(false)), 0 forces eager tracing,
  /// 1 forces capture+replay. Either setting steps to bit-identical
  /// weights.
  int use_plan = -1;
};

/// Owns the cross-step training state of one model. Not thread-safe: one
/// engine belongs to one training loop (the model carries per-forward
/// state anyway).
class StepEngine {
 public:
  /// The engine aliases `model`'s parameters; the model must outlive it.
  /// Adam state is created lazily on the first Step(), so an engine used
  /// only for evaluation costs no optimizer memory.
  StepEngine(ForecastModel& model, StepEngineConfig config);

  StepEngine(const StepEngine&) = delete;
  StepEngine& operator=(const StepEngine&) = delete;

  /// One optimizer update on a normalised (x, y) batch: forward, Huber
  /// loss plus the model's regulariser, backward, global-norm gradient
  /// clip, Adam step. The first batch of each shape is traced eagerly
  /// (capturing a replayable plan when the engine plans); later batches
  /// of that shape replay the frozen plan bit-identically. Returns the
  /// scalar training loss.
  float Step(const data::Batch& batch);

  /// Forward-only prediction for a normalised window [B, N, H, F] under
  /// NoGradMode, using (and extending) the engine's forward-plan cache.
  /// Returns the normalised forecast [B, N, U, F].
  Tensor Predict(const Tensor& x);

  /// Evaluates the model over `sampler`, inverse-transforming predictions
  /// and targets with `scaler` so metrics are in original flow units.
  /// Forward plans are cached in the engine, so repeated evaluations
  /// (e.g. per-epoch validation) replay without re-capturing.
  metrics::ForecastMetrics EvaluateOn(const data::WindowSampler& sampler,
                                      const data::StandardScaler& scaler,
                                      int64_t batch_size);

  ForecastModel& model() { return model_; }

  /// Optimizer, created on first use (for schedules: set_learning_rate).
  optim::Optimizer& optimizer();

  /// Optimizer updates applied so far.
  int64_t steps() const { return steps_; }

  /// Whether this engine captures/replays execution plans.
  bool use_plan() const { return use_plan_; }

  /// Plan usage counters, accumulated over the engine's lifetime.
  const PlanSummary& plan_summary() const { return plan_; }

 private:
  /// The eagerly traced train step (also what capture mode records).
  ag::Var TracedStep(const data::Batch& batch);

  ForecastModel& model_;
  StepEngineConfig config_;
  bool use_plan_;
  std::vector<ag::Var> params_;
  std::unique_ptr<optim::Adam> opt_;
  int64_t steps_ = 0;
  PlanSummary plan_;
  /// Captured train-step plans keyed by "xshape|yshape" (full batches
  /// plus the trailing partial batch). A null entry marks a shape whose
  /// capture could not be planned; those batches stay eager with no
  /// re-capture attempts.
  std::unordered_map<std::string, std::unique_ptr<ir::ExecutionPlan>>
      train_plans_;
  /// Forward-only plans keyed by x shape (same null convention).
  std::unordered_map<std::string, std::unique_ptr<ir::ExecutionPlan>>
      eval_plans_;
  /// Staging buffers recycled across EvaluateOn batches.
  data::Batch eval_batch_;
};

}  // namespace train
}  // namespace stwa

#endif  // STWA_TRAIN_STEP_ENGINE_H_
