#include "train/table.h"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace stwa {
namespace train {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::Render() const {
  // Column widths over header + all rows.
  std::vector<size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out << (c == 0 ? "" : "  ") << cell
          << std::string(widths[c] - cell.size(), ' ');
    }
    out << "\n";
  };
  auto print_sep = [&] {
    size_t total = 0;
    for (size_t w : widths) total += w;
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    out << std::string(total, '-') << "\n";
  };
  if (!header_.empty()) {
    print_row(header_);
    print_sep();
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
  return out.str();
}

void TablePrinter::Print() const { std::cout << Render() << std::flush; }

}  // namespace train
}  // namespace stwa
