#include "train/trainer.h"

#include "autograd/no_grad.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "optim/early_stopping.h"
#include "optim/optimizer.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"

#include <iostream>

namespace stwa {
namespace train {

Trainer::Trainer(const data::TrafficDataset& dataset, int64_t history,
                 int64_t horizon, TrainConfig config)
    : config_(config), history_(history), horizon_(horizon) {
  if (config_.num_threads > 0) {
    runtime::SetNumThreads(config_.num_threads);
  }
  data::SplitBounds split = data::ChronologicalSplit(dataset.num_steps());
  scaler_.Fit(dataset.values, split.train_end);
  Tensor normalised = scaler_.Transform(dataset.values);
  // Both inputs and targets are normalised; Evaluate() inverse-transforms
  // before computing metrics, so metrics are in original flow units.
  train_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, 0, split.train_end,
      config_.stride);
  val_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, split.train_end,
      split.val_end, config_.eval_stride);
  test_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, split.val_end,
      split.num_steps, config_.eval_stride);
}

metrics::ForecastMetrics Trainer::Evaluate(ForecastModel& model,
                                           const data::WindowSampler& sampler) {
  // Inference only: skip tape-node construction for the whole pass.
  ag::NoGradMode no_grad;
  metrics::MetricAccumulator acc;
  auto batches = sampler.EpochBatches(config_.batch_size, nullptr);
  // Staging buffers recycled across batches (MakeBatchInto reuses them
  // whenever the forward pass released its reference).
  data::Batch batch;
  for (const auto& batch_indices : batches) {
    sampler.MakeBatchInto(batch_indices, &batch);
    ag::Var pred = model.Forward(batch.x, /*training=*/false);
    STWA_CHECK(pred.value().shape() == batch.y.shape(),
               "model '", model.name(), "' produced ",
               ShapeToString(pred.value().shape()), ", expected ",
               ShapeToString(batch.y.shape()));
    acc.Add(scaler_.InverseTransform(pred.value()),
            scaler_.InverseTransform(batch.y));
  }
  return acc.Result();
}

TrainResult Trainer::Fit(ForecastModel& model) {
  TrainResult result;
  result.param_count = model.ParameterCount();
  std::vector<ag::Var> params = model.Parameters();
  optim::Adam opt(params, config_.lr);
  optim::EarlyStopping stopper(config_.patience);
  Rng shuffle_rng(config_.seed);

  Stopwatch total_watch;
  double epoch_seconds_sum = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Stopwatch epoch_watch;
    auto batches = train_->EpochBatches(config_.batch_size, &shuffle_rng);
    int64_t batch_count = 0;
    double loss_sum = 0.0;
    data::Batch batch;
    for (const auto& batch_indices : batches) {
      if (config_.max_batches_per_epoch > 0 &&
          batch_count >= config_.max_batches_per_epoch) {
        break;
      }
      train_->MakeBatchInto(batch_indices, &batch);
      opt.ZeroGrad();
      ag::Var pred = model.Forward(batch.x, /*training=*/true);
      ag::Var loss =
          ag::HuberLoss(pred, ag::Var(batch.y), config_.huber_delta);
      ag::Var reg = model.RegularizationLoss();
      if (reg.defined()) loss = ag::Add(loss, reg);
      loss.Backward();
      optim::ClipGradNorm(params, config_.clip_norm);
      opt.Step();
      loss_sum += loss.value().item();
      ++batch_count;
    }
    epoch_seconds_sum += epoch_watch.ElapsedSeconds();
    ++result.epochs_run;

    metrics::ForecastMetrics val = Evaluate(model, *val_);
    result.val_mae_history.push_back(val.mae);
    if (config_.verbose) {
      std::cout << "[" << model.name() << "] epoch " << epoch
                << " train_loss=" << loss_sum / std::max<int64_t>(1,
                                                                  batch_count)
                << " val_mae=" << val.mae << "\n";
    }
    stopper.Update(static_cast<float>(val.mae));
    if (stopper.ShouldStop()) break;
  }
  result.seconds_per_epoch =
      result.epochs_run > 0 ? epoch_seconds_sum / result.epochs_run : 0.0;
  result.total_seconds = total_watch.ElapsedSeconds();
  result.val = Evaluate(model, *val_);
  result.test = Evaluate(model, *test_);
  return result;
}

}  // namespace train
}  // namespace stwa
