#include "train/trainer.h"

#include "common/check.h"
#include "common/stopwatch.h"
#include "ir/plan.h"
#include "optim/early_stopping.h"
#include "runtime/parallel.h"

#include <iostream>

namespace stwa {
namespace train {

Trainer::Trainer(const data::TrafficDataset& dataset, int64_t history,
                 int64_t horizon, TrainConfig config)
    : config_(config),
      use_plan_(config.use_plan >= 0 ? config.use_plan != 0
                                     : ir::SnapshotPlanModes().plan),
      history_(history),
      horizon_(horizon) {
  if (config_.num_threads > 0) {
    runtime::SetNumThreads(config_.num_threads);
  }
  data::SplitBounds split = data::ChronologicalSplit(dataset.num_steps());
  scaler_.Fit(dataset.values, split.train_end);
  Tensor normalised = scaler_.Transform(dataset.values);
  // Both inputs and targets are normalised; Evaluate() inverse-transforms
  // before computing metrics, so metrics are in original flow units.
  train_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, 0, split.train_end,
      config_.stride);
  val_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, split.train_end,
      split.val_end, config_.eval_stride);
  test_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, split.val_end,
      split.num_steps, config_.eval_stride);
}

StepEngineConfig Trainer::EngineConfig() const {
  StepEngineConfig config;
  config.lr = config_.lr;
  config.clip_norm = config_.clip_norm;
  config.huber_delta = config_.huber_delta;
  config.use_plan = use_plan_ ? 1 : 0;
  return config;
}

metrics::ForecastMetrics Trainer::Evaluate(ForecastModel& model,
                                           const data::WindowSampler& sampler) {
  // A throwaway engine: Adam state is lazy, so this only costs the
  // forward-plan cache (which the old monolith also rebuilt per call).
  StepEngine engine(model, EngineConfig());
  return engine.EvaluateOn(sampler, scaler_, config_.batch_size);
}

TrainResult Trainer::Fit(ForecastModel& model) {
  TrainResult result;
  result.param_count = model.ParameterCount();
  StepEngine engine(model, EngineConfig());
  optim::EarlyStopping stopper(config_.patience);
  Rng shuffle_rng(config_.seed);

  Stopwatch total_watch;
  double epoch_seconds_sum = 0.0;
  // Staging buffers recycled across batches and epochs (MakeBatchInto
  // reuses them whenever the step released its reference).
  data::Batch batch;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Stopwatch epoch_watch;
    auto batches = train_->EpochBatches(config_.batch_size, &shuffle_rng);
    int64_t batch_count = 0;
    double loss_sum = 0.0;
    for (const auto& batch_indices : batches) {
      if (config_.max_batches_per_epoch > 0 &&
          batch_count >= config_.max_batches_per_epoch) {
        break;
      }
      train_->MakeBatchInto(batch_indices, &batch);
      loss_sum += engine.Step(batch);
      ++batch_count;
    }
    epoch_seconds_sum += epoch_watch.ElapsedSeconds();
    ++result.epochs_run;

    metrics::ForecastMetrics val =
        engine.EvaluateOn(*val_, scaler_, config_.batch_size);
    result.val_mae_history.push_back(val.mae);
    if (config_.verbose) {
      std::cout << "[" << model.name() << "] epoch " << epoch
                << " train_loss=" << loss_sum / std::max<int64_t>(1,
                                                                  batch_count)
                << " val_mae=" << val.mae << "\n";
    }
    stopper.Update(static_cast<float>(val.mae));
    if (stopper.ShouldStop()) break;
  }
  result.seconds_per_epoch =
      result.epochs_run > 0 ? epoch_seconds_sum / result.epochs_run : 0.0;
  result.total_seconds = total_watch.ElapsedSeconds();
  result.val = engine.EvaluateOn(*val_, scaler_, config_.batch_size);
  result.test = engine.EvaluateOn(*test_, scaler_, config_.batch_size);
  result.plan = engine.plan_summary();
  return result;
}

}  // namespace train
}  // namespace stwa
