#include "train/trainer.h"

#include "autograd/no_grad.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "ir/plan.h"
#include "optim/early_stopping.h"
#include "optim/optimizer.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"

#include <iostream>
#include <unordered_map>

namespace stwa {
namespace train {
namespace {

/// Plan-cache key: one plan per distinct (x shape, y shape) pair. Only the
/// final partial batch of an epoch differs from the full-batch shape, so a
/// run holds at most two train plans.
std::string PlanKey(const data::Batch& batch) {
  return ShapeToString(batch.x.shape()) + "|" + ShapeToString(batch.y.shape());
}

}  // namespace

Trainer::Trainer(const data::TrafficDataset& dataset, int64_t history,
                 int64_t horizon, TrainConfig config)
    : config_(config),
      use_plan_(config.use_plan >= 0 ? config.use_plan != 0
                                     : ir::SnapshotPlanModes().plan),
      history_(history),
      horizon_(horizon) {
  if (config_.num_threads > 0) {
    runtime::SetNumThreads(config_.num_threads);
  }
  data::SplitBounds split = data::ChronologicalSplit(dataset.num_steps());
  scaler_.Fit(dataset.values, split.train_end);
  Tensor normalised = scaler_.Transform(dataset.values);
  // Both inputs and targets are normalised; Evaluate() inverse-transforms
  // before computing metrics, so metrics are in original flow units.
  train_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, 0, split.train_end,
      config_.stride);
  val_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, split.train_end,
      split.val_end, config_.eval_stride);
  test_ = std::make_unique<data::WindowSampler>(
      normalised, normalised, history, horizon, split.val_end,
      split.num_steps, config_.eval_stride);
}

metrics::ForecastMetrics Trainer::Evaluate(ForecastModel& model,
                                           const data::WindowSampler& sampler) {
  // Inference only: skip gradient bookkeeping for the whole pass.
  ag::NoGradMode no_grad;
  const bool use_plan = use_plan_;
  metrics::MetricAccumulator acc;
  auto batches = sampler.EpochBatches(config_.batch_size, nullptr);
  // Staging buffers recycled across batches (MakeBatchInto reuses them
  // whenever the forward pass released its reference).
  data::Batch batch;
  // Forward-only plans, one per batch shape, captured from the first batch
  // of each shape and replayed for the rest of the pass. A null entry
  // means the capture could not be planned; those shapes stay eager.
  std::unordered_map<std::string, std::unique_ptr<ir::ExecutionPlan>> plans;
  for (const auto& batch_indices : batches) {
    sampler.MakeBatchInto(batch_indices, &batch);
    Tensor pred;
    if (!use_plan) {
      pred = model.Forward(batch.x, /*training=*/false).value();
    } else {
      const std::string key = ShapeToString(batch.x.shape());
      auto it = plans.find(key);
      if (it == plans.end()) {
        ir::GraphCapture capture;
        ag::Var traced = model.Forward(batch.x, /*training=*/false);
        pred = traced.value();
        plans.emplace(
            key, capture.Finish(traced, {batch.x}, /*with_backward=*/false));
      } else if (it->second != nullptr) {
        pred = it->second->ReplayForward({batch.x});
      } else {
        pred = model.Forward(batch.x, /*training=*/false).value();
      }
    }
    STWA_CHECK(pred.shape() == batch.y.shape(),
               "model '", model.name(), "' produced ",
               ShapeToString(pred.shape()), ", expected ",
               ShapeToString(batch.y.shape()));
    acc.Add(scaler_.InverseTransform(pred),
            scaler_.InverseTransform(batch.y));
  }
  return acc.Result();
}

TrainResult Trainer::Fit(ForecastModel& model) {
  TrainResult result;
  result.param_count = model.ParameterCount();
  std::vector<ag::Var> params = model.Parameters();
  optim::Adam opt(params, config_.lr);
  optim::EarlyStopping stopper(config_.patience);
  Rng shuffle_rng(config_.seed);

  const bool use_plan = use_plan_;
  // Captured train-step plans, one per batch shape (full batches plus the
  // trailing partial batch), reused across every epoch. A null entry marks
  // a shape whose capture could not be planned (feed not locatable); those
  // batches stay on the eager path with no re-capture attempts.
  std::unordered_map<std::string, std::unique_ptr<ir::ExecutionPlan>> plans;

  // One eagerly traced step: forward, Huber + regulariser, backward.
  // Capture-mode records exactly this computation, so replayed steps are
  // bit-identical to it.
  auto traced_step = [&](const data::Batch& b) {
    ag::Var pred = model.Forward(b.x, /*training=*/true);
    ag::Var loss = ag::HuberLoss(pred, ag::Var(b.y), config_.huber_delta);
    ag::Var reg = model.RegularizationLoss();
    if (reg.defined()) loss = ag::Add(loss, reg);
    loss.Backward();
    return loss;
  };

  Stopwatch total_watch;
  double epoch_seconds_sum = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Stopwatch epoch_watch;
    auto batches = train_->EpochBatches(config_.batch_size, &shuffle_rng);
    int64_t batch_count = 0;
    double loss_sum = 0.0;
    data::Batch batch;
    for (const auto& batch_indices : batches) {
      if (config_.max_batches_per_epoch > 0 &&
          batch_count >= config_.max_batches_per_epoch) {
        break;
      }
      train_->MakeBatchInto(batch_indices, &batch);
      opt.ZeroGrad();
      float loss_value = 0.0f;
      if (!use_plan) {
        loss_value = traced_step(batch).value().item();
        ++result.plan.traced_steps;
      } else {
        const std::string key = PlanKey(batch);
        auto it = plans.find(key);
        if (it == plans.end()) {
          // First batch of this shape: trace eagerly while recording, then
          // freeze the recording into a replayable plan.
          ir::GraphCapture capture;
          ag::Var loss = traced_step(batch);
          loss_value = loss.value().item();
          auto plan = capture.Finish(loss, {batch.x, batch.y},
                                     /*with_backward=*/true);
          if (plan != nullptr) {
            ++result.plan.plans_captured;
            const ir::PlanStats& s = plan->stats();
            if (s.captured_nodes > result.plan.captured_nodes) {
              result.plan.captured_nodes = s.captured_nodes;
              result.plan.forward_ops = s.forward_ops;
              result.plan.backward_ops = s.backward_ops;
              result.plan.pruned_ops = s.pruned_ops;
              result.plan.peak_live_bytes = s.peak_live_bytes;
              result.plan.fused_map_nodes = s.fused_map_nodes;
              result.plan.fused_attention_nodes = s.fused_attention_nodes;
              result.plan.fused_away_ops = s.fused_away_ops;
              result.plan.regions = s.regions;
              result.plan.region_stages = s.region_stages;
            }
          }
          plans.emplace(key, std::move(plan));
          ++result.plan.traced_steps;
        } else if (it->second != nullptr) {
          loss_value = it->second->ReplayTrainStep({batch.x, batch.y});
          ++result.plan.replayed_steps;
        } else {
          loss_value = traced_step(batch).value().item();
          ++result.plan.traced_steps;
        }
      }
      optim::ClipGradNorm(params, config_.clip_norm);
      opt.Step();
      loss_sum += loss_value;
      ++batch_count;
    }
    epoch_seconds_sum += epoch_watch.ElapsedSeconds();
    ++result.epochs_run;

    metrics::ForecastMetrics val = Evaluate(model, *val_);
    result.val_mae_history.push_back(val.mae);
    if (config_.verbose) {
      std::cout << "[" << model.name() << "] epoch " << epoch
                << " train_loss=" << loss_sum / std::max<int64_t>(1,
                                                                  batch_count)
                << " val_mae=" << val.mae << "\n";
    }
    stopper.Update(static_cast<float>(val.mae));
    if (stopper.ShouldStop()) break;
  }
  result.seconds_per_epoch =
      result.epochs_run > 0 ? epoch_seconds_sum / result.epochs_run : 0.0;
  result.total_seconds = total_watch.ElapsedSeconds();
  result.val = Evaluate(model, *val_);
  result.test = Evaluate(model, *test_);
  return result;
}

}  // namespace train
}  // namespace stwa
