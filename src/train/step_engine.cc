#include "train/step_engine.h"

#include "autograd/no_grad.h"
#include "common/check.h"
#include "ir/capture.h"

namespace stwa {
namespace train {
namespace {

/// Plan-cache key: one plan per distinct (x shape, y shape) pair. Only the
/// final partial batch of an epoch differs from the full-batch shape, so a
/// training run holds at most two train plans.
std::string PlanKey(const data::Batch& batch) {
  return ShapeToString(batch.x.shape()) + "|" + ShapeToString(batch.y.shape());
}

}  // namespace

StepEngine::StepEngine(ForecastModel& model, StepEngineConfig config)
    : model_(model),
      config_(config),
      use_plan_(config.use_plan >= 0 ? config.use_plan != 0
                                     : ir::SnapshotPlanModes().plan),
      params_(model.Parameters()) {}

optim::Optimizer& StepEngine::optimizer() {
  if (opt_ == nullptr) {
    opt_ = std::make_unique<optim::Adam>(params_, config_.lr);
  }
  return *opt_;
}

ag::Var StepEngine::TracedStep(const data::Batch& batch) {
  ag::Var pred = model_.Forward(batch.x, /*training=*/true);
  ag::Var loss =
      ag::HuberLoss(pred, ag::Var(batch.y), config_.huber_delta);
  ag::Var reg = model_.RegularizationLoss();
  if (reg.defined()) loss = ag::Add(loss, reg);
  loss.Backward();
  return loss;
}

float StepEngine::Step(const data::Batch& batch) {
  optim::Optimizer& opt = optimizer();
  opt.ZeroGrad();
  float loss_value = 0.0f;
  if (!use_plan_) {
    loss_value = TracedStep(batch).value().item();
    ++plan_.traced_steps;
  } else {
    const std::string key = PlanKey(batch);
    auto it = train_plans_.find(key);
    if (it == train_plans_.end()) {
      // First batch of this shape: trace eagerly while recording, then
      // freeze the recording into a replayable plan.
      ir::GraphCapture capture;
      ag::Var loss = TracedStep(batch);
      loss_value = loss.value().item();
      auto plan = capture.Finish(loss, {batch.x, batch.y},
                                 /*with_backward=*/true);
      if (plan != nullptr) {
        ++plan_.plans_captured;
        const ir::PlanStats& s = plan->stats();
        if (s.captured_nodes > plan_.captured_nodes) {
          plan_.captured_nodes = s.captured_nodes;
          plan_.forward_ops = s.forward_ops;
          plan_.backward_ops = s.backward_ops;
          plan_.pruned_ops = s.pruned_ops;
          plan_.peak_live_bytes = s.peak_live_bytes;
          plan_.fused_map_nodes = s.fused_map_nodes;
          plan_.fused_attention_nodes = s.fused_attention_nodes;
          plan_.fused_away_ops = s.fused_away_ops;
          plan_.regions = s.regions;
          plan_.region_stages = s.region_stages;
        }
      }
      train_plans_.emplace(key, std::move(plan));
      ++plan_.traced_steps;
    } else if (it->second != nullptr) {
      loss_value = it->second->ReplayTrainStep({batch.x, batch.y});
      ++plan_.replayed_steps;
    } else {
      loss_value = TracedStep(batch).value().item();
      ++plan_.traced_steps;
    }
  }
  optim::ClipGradNorm(params_, config_.clip_norm);
  opt.Step();
  ++steps_;
  return loss_value;
}

Tensor StepEngine::Predict(const Tensor& x) {
  // Inference only: no gradient bookkeeping, plan capture without the
  // backward half.
  ag::NoGradMode no_grad;
  if (!use_plan_) {
    return model_.Forward(x, /*training=*/false).value();
  }
  const std::string key = ShapeToString(x.shape());
  auto it = eval_plans_.find(key);
  if (it == eval_plans_.end()) {
    ir::GraphCapture capture;
    ag::Var traced = model_.Forward(x, /*training=*/false);
    Tensor pred = traced.value();
    eval_plans_.emplace(key,
                        capture.Finish(traced, {x}, /*with_backward=*/false));
    return pred;
  }
  if (it->second != nullptr) {
    return it->second->ReplayForward({x});
  }
  return model_.Forward(x, /*training=*/false).value();
}

metrics::ForecastMetrics StepEngine::EvaluateOn(
    const data::WindowSampler& sampler, const data::StandardScaler& scaler,
    int64_t batch_size) {
  metrics::MetricAccumulator acc;
  auto batches = sampler.EpochBatches(batch_size, nullptr);
  for (const auto& batch_indices : batches) {
    // MakeBatchInto recycles eval_batch_'s buffers whenever the previous
    // forward pass released its reference.
    sampler.MakeBatchInto(batch_indices, &eval_batch_);
    Tensor pred = Predict(eval_batch_.x);
    STWA_CHECK(pred.shape() == eval_batch_.y.shape(),
               "model '", model_.name(), "' produced ",
               ShapeToString(pred.shape()), ", expected ",
               ShapeToString(eval_batch_.y.shape()));
    acc.Add(scaler.InverseTransform(pred),
            scaler.InverseTransform(eval_batch_.y));
  }
  return acc.Result();
}

}  // namespace train
}  // namespace stwa
