// Generic training/evaluation harness for forecasting models.
//
// Implements the paper's protocol: chronological 60/20/20 split, z-score
// normalisation fitted on train, Adam (lr 1e-3), Huber loss plus the
// model's own regulariser (the KL term for ST-WA), gradient clipping,
// early stopping on validation MAE (patience 15), metrics reported on
// inverse-transformed predictions.
//
// The per-step mechanics (optimizer state, plan capture/replay, staging
// buffers) live in train/step_engine.h; the Trainer owns the *protocol*:
// split, scaler, samplers, epoch order, early stopping.

#ifndef STWA_TRAIN_TRAINER_H_
#define STWA_TRAIN_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/sampler.h"
#include "data/scaler.h"
#include "data/traffic_generator.h"
#include "metrics/metrics.h"
#include "train/step_engine.h"

namespace stwa {
namespace train {

/// Training hyper-parameters.
struct TrainConfig {
  int epochs = 30;
  int64_t batch_size = 16;
  float lr = 1e-3f;
  float clip_norm = 5.0f;
  int patience = 15;
  float huber_delta = 1.0f;
  /// Window anchor stride (>1 subsamples the training set for speed).
  int64_t stride = 1;
  /// Stride for the validation/test samplers.
  int64_t eval_stride = 1;
  uint64_t seed = 1;
  bool verbose = false;
  /// Worker threads for the execution runtime (0 = keep the current
  /// runtime default, i.e. STWA_NUM_THREADS / hardware_concurrency).
  int num_threads = 0;
  /// Cap on train batches per epoch (0 = no cap); keeps bench runtimes
  /// bounded on the largest synthetic networks.
  int64_t max_batches_per_epoch = 0;
  /// Captured execution plans (ir/plan.h): -1 follows the global gate
  /// (on unless STWA_NO_PLAN / ir::SetPlanMode(false)), 0 forces eager
  /// tracing, 1 forces capture+replay. Either setting trains to
  /// bit-identical weights and metrics.
  int use_plan = -1;
};

/// Outcome of a training run.
struct TrainResult {
  metrics::ForecastMetrics test;
  metrics::ForecastMetrics val;
  double seconds_per_epoch = 0.0;
  double total_seconds = 0.0;
  int64_t param_count = 0;
  int epochs_run = 0;
  std::vector<double> val_mae_history;
  PlanSummary plan;
};

/// Owns the split/scaler/samplers for one dataset + forecasting setting and
/// trains models against it.
class Trainer {
 public:
  Trainer(const data::TrafficDataset& dataset, int64_t history,
          int64_t horizon, TrainConfig config);

  /// Trains the model to convergence/early stop and evaluates on the test
  /// partition.
  TrainResult Fit(ForecastModel& model);

  /// Evaluates the model on a sampler (inverse-transformed metrics).
  metrics::ForecastMetrics Evaluate(ForecastModel& model,
                                    const data::WindowSampler& sampler);

  const data::StandardScaler& scaler() const { return scaler_; }
  const data::WindowSampler& train_sampler() const { return *train_; }
  const data::WindowSampler& val_sampler() const { return *val_; }
  const data::WindowSampler& test_sampler() const { return *test_; }
  int64_t history() const { return history_; }
  int64_t horizon() const { return horizon_; }

 private:
  /// Engine config for this trainer's hyper-parameters.
  StepEngineConfig EngineConfig() const;

  TrainConfig config_;
  /// Plan gate resolved once at construction (config override, else the
  /// global snapshot — ir::SnapshotPlanModes). Fit and Evaluate consult
  /// only this, so a mid-run SetPlanMode toggle can never split one run
  /// between planned and eager epochs.
  bool use_plan_;
  int64_t history_;
  int64_t horizon_;
  data::StandardScaler scaler_;
  std::unique_ptr<data::WindowSampler> train_;
  std::unique_ptr<data::WindowSampler> val_;
  std::unique_ptr<data::WindowSampler> test_;
};

}  // namespace train
}  // namespace stwa

#endif  // STWA_TRAIN_TRAINER_H_
