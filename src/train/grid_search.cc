#include "train/grid_search.h"

#include <iostream>
#include <limits>

#include "common/check.h"

namespace stwa {
namespace train {

GridSearchResult GridSearch(Trainer& trainer,
                            const std::vector<GridCandidate>& candidates,
                            bool verbose) {
  STWA_CHECK(!candidates.empty(), "grid search needs candidates");
  GridSearchResult result;
  double best_val = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::unique_ptr<ForecastModel> model = candidates[i].make();
    STWA_CHECK(model != nullptr, "candidate '", candidates[i].label,
               "' produced a null model");
    TrainResult run = trainer.Fit(*model);
    result.val_mae.push_back(run.val.mae);
    if (verbose) {
      std::cout << "[grid] " << candidates[i].label
                << ": val MAE=" << run.val.mae
                << " test MAE=" << run.test.mae << "\n";
    }
    if (run.val.mae < best_val) {
      best_val = run.val.mae;
      result.best_index = i;
      result.best_label = candidates[i].label;
      result.best = run;
    }
  }
  return result;
}

}  // namespace train
}  // namespace stwa
