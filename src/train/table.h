// Plain-text table printing for the benchmark harness. Every bench binary
// prints rows in the same layout as the corresponding paper table.

#ifndef STWA_TRAIN_TABLE_H_
#define STWA_TRAIN_TABLE_H_

#include <string>
#include <vector>

namespace stwa {
namespace train {

/// Accumulates rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table (e.g. "Table IV: Overall Accuracy").
  explicit TablePrinter(std::string title);

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row (cells are padded to the header width).
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator.
  void AddSeparator();

  /// Renders the table to a string.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace train
}  // namespace stwa

#endif  // STWA_TRAIN_TABLE_H_
