// Validation-set grid search, as in the paper's protocol ("we tune the
// hyper-parameters on the validation data by grid search" — §V-A): train
// one model per candidate configuration, pick the best validation MAE,
// report its test metrics.

#ifndef STWA_TRAIN_GRID_SEARCH_H_
#define STWA_TRAIN_GRID_SEARCH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "train/trainer.h"

namespace stwa {
namespace train {

/// One candidate of the grid: a display label and a factory producing a
/// fresh model for that configuration.
struct GridCandidate {
  std::string label;
  std::function<std::unique_ptr<ForecastModel>()> make;
};

/// Result of a grid search.
struct GridSearchResult {
  /// Index of the winning candidate in the input list.
  size_t best_index = 0;
  std::string best_label;
  /// Train result (with test metrics) of the winner.
  TrainResult best;
  /// Validation MAE per candidate, in input order.
  std::vector<double> val_mae;
};

/// Trains every candidate with `trainer` and returns the one with the
/// lowest validation MAE. Candidates are trained independently (fresh
/// models); ties break toward the earlier candidate.
GridSearchResult GridSearch(Trainer& trainer,
                            const std::vector<GridCandidate>& candidates,
                            bool verbose = false);

}  // namespace train
}  // namespace stwa

#endif  // STWA_TRAIN_GRID_SEARCH_H_
