#include "nn/module.h"

#include "common/check.h"

namespace stwa {
namespace nn {

ag::Var Module::RegisterParameter(const std::string& name, Tensor init) {
  for (const auto& [existing, _] : params_) {
    STWA_CHECK(existing != name, "duplicate parameter name '", name, "'");
  }
  params_.emplace_back(name, ag::Parameter(std::move(init)));
  return params_.back().second;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  STWA_CHECK(child != nullptr, "null child module '", name, "'");
  STWA_CHECK(child != this, "module cannot register itself");
  children_.emplace_back(name, child);
}

std::vector<ag::Var> Module::Parameters() const {
  std::vector<std::pair<std::string, ag::Var>> named;
  CollectNamed("", &named);
  std::vector<ag::Var> out;
  out.reserve(named.size());
  for (auto& [_, v] : named) out.push_back(v);
  return out;
}

std::vector<std::pair<std::string, ag::Var>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, ag::Var>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Var>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const ag::Var& v : Parameters()) total += v.value().size();
  return total;
}

void Module::ZeroGrad() {
  for (ag::Var& v : Parameters()) v.ZeroGrad();
}

}  // namespace nn
}  // namespace stwa
