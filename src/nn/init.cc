#include "nn/init.h"

#include <cmath>

#include "common/check.h"

namespace stwa {
namespace nn {

Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out,
                     Rng& rng) {
  STWA_CHECK(fan_in > 0 && fan_out > 0, "invalid fans");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(std::move(shape), rng, -a, a);
}

Tensor HeUniform(Shape shape, int64_t fan_in, Rng& rng) {
  STWA_CHECK(fan_in > 0, "invalid fan_in");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in));
  return Tensor::Rand(std::move(shape), rng, -a, a);
}

Tensor LecunUniform(Shape shape, int64_t fan_in, Rng& rng) {
  STWA_CHECK(fan_in > 0, "invalid fan_in");
  const float a = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return Tensor::Rand(std::move(shape), rng, -a, a);
}

}  // namespace nn
}  // namespace stwa
