#include "nn/mlp.h"

#include "common/check.h"

namespace stwa {
namespace nn {

ag::Var Activate(const ag::Var& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kTanh:
      return ag::Tanh(x);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
  }
  STWA_FAIL("unknown activation");
}

Mlp::Mlp(std::vector<int64_t> dims, Activation hidden,
         Activation output_activation, Rng* rng)
    : dims_(std::move(dims)),
      hidden_(hidden),
      output_activation_(output_activation) {
  STWA_CHECK(dims_.size() >= 2, "Mlp needs at least input and output dims");
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.push_back(
        std::make_unique<Linear>(dims_[i], dims_[i + 1], /*bias=*/true, rng));
    RegisterModule("fc" + std::to_string(i), layers_.back().get());
  }
}

ag::Var Mlp::Forward(const ag::Var& x) const {
  ag::Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      h = Activate(h, hidden_);
    } else {
      h = Activate(h, output_activation_);
    }
  }
  return h;
}

}  // namespace nn
}  // namespace stwa
