#include "nn/serialize.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/check.h"

namespace stwa {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0x53545741;  // "STWA"
// Version 3 marks checkpoints whose metadata may carry reduced-precision
// serving entries (per-channel int8 scales, see serve/checkpoint.cc); the
// byte layout is unchanged from version 2, so this build still reads both.
// Version 2 added the metadata blob and the validate-before-commit load.
// Version 1 files (pre-serving checkpoints) are rejected with a clear
// message; they were never produced outside of transient test runs.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 2;

// Test seam for the forward-compat error path: caps the version this
// reader accepts, simulating a version-2-era binary opening a version-3
// file. 0 = no cap.
uint32_t g_max_read_version_for_test = 0;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  STWA_CHECK(in.good(), "truncated checkpoint");
  return value;
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod(out, static_cast<uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::ifstream& in, uint64_t max_len,
                       const char* what) {
  const uint64_t len = ReadPod<uint64_t>(in);
  STWA_CHECK(len <= max_len, "implausible ", what, " length ", len);
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  STWA_CHECK(in.good(), "truncated checkpoint while reading ", what);
  return s;
}

/// Opens `path` and positions the stream just past the version word.
std::ifstream OpenAndCheckHeader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  STWA_CHECK(in.good(), "cannot open checkpoint '", path, "'");
  STWA_CHECK(ReadPod<uint32_t>(in) == kMagic, "'", path,
             "' is not an STWA checkpoint");
  const uint32_t version = ReadPod<uint32_t>(in);
  const uint32_t max_read = g_max_read_version_for_test != 0
                                ? g_max_read_version_for_test
                                : kVersion;
  STWA_CHECK(version >= kMinVersion, "checkpoint '", path, "' has version ",
             version, "; this build reads versions ", kMinVersion, "..",
             max_read, " — re-save the checkpoint with the current code");
  STWA_CHECK(version <= max_read, "checkpoint '", path, "' has version ",
             version, ", written by a newer build; this reader supports "
             "versions ", kMinVersion, "..", max_read,
             " — upgrade this binary, or re-save the checkpoint with a "
             "build of the same vintage as this reader");
  return in;
}

CheckpointMeta ReadMeta(std::ifstream& in) {
  CheckpointMeta meta;
  const uint64_t count = ReadPod<uint64_t>(in);
  STWA_CHECK(count < 65536, "implausible metadata entry count ", count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key = ReadString(in, 4096, "metadata key");
    std::string value = ReadString(in, 1 << 20, "metadata value");
    meta.Set(key, value);
  }
  return meta;
}

}  // namespace

namespace internal {

void SetMaxCheckpointReadVersionForTest(uint32_t version) {
  g_max_read_version_for_test = version;
}

}  // namespace internal

void CheckpointMeta::Set(const std::string& key, const std::string& value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(key, value);
}

void CheckpointMeta::SetInt(const std::string& key, int64_t value) {
  Set(key, std::to_string(value));
}

void CheckpointMeta::SetFloat(const std::string& key, float value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(value));
  Set(key, buf);
}

bool CheckpointMeta::Has(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

const std::string& CheckpointMeta::Get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  STWA_FAIL("checkpoint metadata has no entry '", key, "'");
}

std::string CheckpointMeta::GetOr(const std::string& key,
                                  const std::string& fallback) const {
  return Has(key) ? Get(key) : fallback;
}

int64_t CheckpointMeta::GetInt(const std::string& key) const {
  const std::string& s = Get(key);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  STWA_CHECK(end != nullptr && *end == '\0' && !s.empty(),
             "metadata entry '", key, "' = '", s, "' is not an integer");
  return static_cast<int64_t>(v);
}

float CheckpointMeta::GetFloat(const std::string& key) const {
  const std::string& s = Get(key);
  char* end = nullptr;
  const float v = std::strtof(s.c_str(), &end);
  STWA_CHECK(end != nullptr && *end == '\0' && !s.empty(),
             "metadata entry '", key, "' = '", s, "' is not a float");
  return v;
}

void SaveParameters(const Module& module, const std::string& path,
                    const CheckpointMeta& meta) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    STWA_CHECK(out.good(), "cannot open '", tmp, "' for writing");
    WritePod(out, kMagic);
    WritePod(out, kVersion);
    WritePod(out, static_cast<uint64_t>(meta.entries().size()));
    for (const auto& [key, value] : meta.entries()) {
      WriteString(out, key);
      WriteString(out, value);
    }
    auto named = module.NamedParameters();
    WritePod(out, static_cast<uint64_t>(named.size()));
    for (const auto& [name, var] : named) {
      WriteString(out, name);
      const Tensor& t = var.value();
      WritePod(out, static_cast<uint64_t>(t.rank()));
      for (int64_t d : t.shape()) WritePod(out, static_cast<int64_t>(d));
      out.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(sizeof(float) * t.size()));
    }
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      STWA_FAIL("write to '", tmp, "' failed");
    }
  }
  // Atomic publish: readers see either the old or the new checkpoint,
  // never a partial write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    STWA_FAIL("cannot rename '", tmp, "' to '", path, "'");
  }
}

CheckpointMeta LoadCheckpointMeta(const std::string& path) {
  std::ifstream in = OpenAndCheckHeader(path);
  return ReadMeta(in);
}

uint32_t PeekCheckpointFormatVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  STWA_CHECK(in.good(), "cannot open checkpoint '", path, "'");
  STWA_CHECK(ReadPod<uint32_t>(in) == kMagic, "'", path,
             "' is not an STWA checkpoint");
  return ReadPod<uint32_t>(in);
}

void LoadParameters(Module& module, const std::string& path) {
  std::ifstream in = OpenAndCheckHeader(path);
  const CheckpointMeta meta = ReadMeta(in);

  // Read the complete file into a staging table first; the module is not
  // touched until every name and shape has been validated.
  struct Entry {
    Shape shape;
    std::vector<float> data;
  };
  std::map<std::string, Entry> file_params;
  const uint64_t count = ReadPod<uint64_t>(in);
  for (uint64_t i = 0; i < count; ++i) {
    std::string name = ReadString(in, 4096, "parameter name");
    const uint64_t rank = ReadPod<uint64_t>(in);
    STWA_CHECK(rank <= 16, "implausible parameter rank");
    Entry entry;
    entry.shape.resize(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      entry.shape[d] = ReadPod<int64_t>(in);
      STWA_CHECK(entry.shape[d] >= 0, "negative dimension in checkpoint");
    }
    entry.data.resize(static_cast<size_t>(NumElements(entry.shape)));
    in.read(reinterpret_cast<char*>(entry.data.data()),
            static_cast<std::streamsize>(sizeof(float) *
                                         entry.data.size()));
    STWA_CHECK(in.good(), "truncated checkpoint while reading '", name,
               "'");
    STWA_CHECK(file_params.emplace(name, std::move(entry)).second,
               "duplicate parameter '", name, "' in checkpoint");
  }

  // Validate the whole architecture in one pass and report every
  // difference at once.
  auto named = module.NamedParameters();
  std::ostringstream mismatch;
  int mismatches = 0;
  auto note = [&](const std::string& line) {
    if (mismatches < 8) mismatch << "\n  " << line;
    ++mismatches;
  };
  std::map<std::string, const Entry*> unmatched;
  for (const auto& [name, entry] : file_params) {
    unmatched.emplace(name, &entry);
  }
  for (const auto& [name, var] : named) {
    auto it = file_params.find(name);
    if (it == file_params.end()) {
      note("module parameter '" + name + "' missing from checkpoint");
      continue;
    }
    unmatched.erase(name);
    if (var.value().shape() != it->second.shape) {
      note("shape mismatch for '" + name + "': module " +
           ShapeToString(var.value().shape()) + " vs file " +
           ShapeToString(it->second.shape));
    }
  }
  for (const auto& [name, entry] : unmatched) {
    note("checkpoint parameter '" + name + "' not found in the module");
  }
  if (mismatches > 0) {
    std::ostringstream msg;
    msg << "architecture mismatch loading '" << path << "'";
    if (meta.Has("model")) {
      msg << " (checkpoint was saved for model '" << meta.Get("model")
          << "')";
    }
    msg << ": " << mismatches << " difference(s)" << mismatch.str();
    if (mismatches > 8) msg << "\n  ...";
    STWA_FAIL(msg.str());
  }

  // Commit: every name and shape matched, so this cannot throw and the
  // module never ends up half-loaded.
  for (auto& [name, var] : named) {
    const Entry& entry = file_params.at(name);
    Tensor& target = var.node()->value;
    std::copy(entry.data.begin(), entry.data.end(), target.data());
  }
}

}  // namespace nn
}  // namespace stwa
