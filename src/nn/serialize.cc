#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>

#include "common/check.h"

namespace stwa {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0x53545741;  // "STWA"
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  STWA_CHECK(in.good(), "truncated checkpoint");
  return value;
}

}  // namespace

void SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  STWA_CHECK(out.good(), "cannot open '", path, "' for writing");
  auto named = module.NamedParameters();
  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(named.size()));
  for (const auto& [name, var] : named) {
    WritePod(out, static_cast<uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor& t = var.value();
    WritePod(out, static_cast<uint64_t>(t.rank()));
    for (int64_t d : t.shape()) WritePod(out, static_cast<int64_t>(d));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(sizeof(float) * t.size()));
  }
  STWA_CHECK(out.good(), "write to '", path, "' failed");
}

void LoadParameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  STWA_CHECK(in.good(), "cannot open checkpoint '", path, "'");
  STWA_CHECK(ReadPod<uint32_t>(in) == kMagic, "'", path,
             "' is not an STWA checkpoint");
  STWA_CHECK(ReadPod<uint32_t>(in) == kVersion,
             "unsupported checkpoint version");
  const uint64_t count = ReadPod<uint64_t>(in);

  std::map<std::string, ag::Var> params;
  for (auto& [name, var] : module.NamedParameters()) {
    params.emplace(name, var);
  }
  STWA_CHECK(count == params.size(), "checkpoint has ", count,
             " parameters but the module has ", params.size());

  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t name_len = ReadPod<uint64_t>(in);
    STWA_CHECK(name_len < 4096, "implausible parameter name length");
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t rank = ReadPod<uint64_t>(in);
    STWA_CHECK(rank <= 16, "implausible parameter rank");
    Shape shape(rank);
    for (uint64_t d = 0; d < rank; ++d) shape[d] = ReadPod<int64_t>(in);

    auto it = params.find(name);
    STWA_CHECK(it != params.end(), "checkpoint parameter '", name,
               "' not found in the module");
    Tensor& target = it->second.node()->value;
    STWA_CHECK(target.shape() == shape, "shape mismatch for '", name,
               "': module ", ShapeToString(target.shape()), " vs file ",
               ShapeToString(shape));
    in.read(reinterpret_cast<char*>(target.data()),
            static_cast<std::streamsize>(sizeof(float) * target.size()));
    STWA_CHECK(in.good(), "truncated checkpoint while reading '", name,
               "'");
  }
}

}  // namespace nn
}  // namespace stwa
