// Recurrent cells and sequence modules (GRU / LSTM).
//
// The cell math is exposed as static Step functions taking explicit weight
// Vars so that the spatio-temporal aware parameter generator (src/core) and
// the meta-LSTM baseline can plug generated — per-sensor or per-timestep —
// weights into the exact same recurrence.

#ifndef STWA_NN_RNN_H_
#define STWA_NN_RNN_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace stwa {
namespace nn {

/// Gated recurrent unit cell (PyTorch gate conventions).
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng* rng = nullptr);

  /// One step with this cell's own weights: x [..., in], h [..., hidden].
  ag::Var Forward(const ag::Var& x, const ag::Var& h) const;

  /// One step with externally supplied weights. `w_ih` is [.., in, 3*hidden]
  /// and `w_hh` is [.., hidden, 3*hidden]; leading axes broadcast against
  /// x/h through batched matmul, enabling per-sensor generated weights.
  static ag::Var Step(const ag::Var& x, const ag::Var& h, const ag::Var& w_ih,
                      const ag::Var& w_hh, const ag::Var& b_ih,
                      const ag::Var& b_hh, int64_t hidden_size);

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  ag::Var w_ih_;
  ag::Var w_hh_;
  ag::Var b_ih_;
  ag::Var b_hh_;
};

/// GRU over a sequence.
class Gru : public Module {
 public:
  Gru(int64_t input_size, int64_t hidden_size, Rng* rng = nullptr);

  /// x [B, T, in] -> outputs [B, T, hidden]; h0 (optional) [B, hidden].
  ag::Var Forward(const ag::Var& x, const ag::Var& h0 = {}) const;

  /// Final hidden state of the last Forward call is not cached; use
  /// ForwardWithState when the final state is needed.
  ag::Var ForwardWithState(const ag::Var& x, ag::Var* final_state,
                           const ag::Var& h0 = {}) const;

  int64_t hidden_size() const { return cell_.hidden_size(); }

 private:
  GruCell cell_;
};

/// Long short-term memory cell (PyTorch gate conventions: i, f, g, o).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng = nullptr);

  /// One step; updates (h, c) in place through the output parameters.
  void Forward(const ag::Var& x, ag::Var* h, ag::Var* c) const;

  /// One step with externally supplied weights (w_ih [.., in, 4*hidden],
  /// w_hh [.., hidden, 4*hidden]); used by the meta-LSTM baseline.
  static void Step(const ag::Var& x, ag::Var* h, ag::Var* c,
                   const ag::Var& w_ih, const ag::Var& w_hh,
                   const ag::Var& b_ih, const ag::Var& b_hh,
                   int64_t hidden_size);

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  ag::Var w_ih_;
  ag::Var w_hh_;
  ag::Var b_ih_;
  ag::Var b_hh_;
};

/// LSTM over a sequence: x [B, T, in] -> outputs [B, T, hidden].
class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng* rng = nullptr);

  ag::Var Forward(const ag::Var& x) const;

  int64_t hidden_size() const { return cell_.hidden_size(); }

 private:
  LstmCell cell_;
};

/// Slices time step `t` out of a [B, T, F] sequence as [B, F].
ag::Var TimeStep(const ag::Var& x, int64_t t);

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_RNN_H_
