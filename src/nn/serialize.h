// Parameter checkpointing: save/load a Module's named parameters to a
// versioned binary format. Loading matches by hierarchical name and checks
// every name and shape *before* touching the module, so a checkpoint
// survives construction-order refactors and an architecture mismatch is a
// single clear error instead of a half-loaded module. Saves are
// crash-safe: the file is written to `<path>.tmp` and atomically renamed
// into place, so a crash mid-save never corrupts an existing checkpoint.
//
// A checkpoint additionally carries a free-form key/value metadata blob
// (CheckpointMeta). The serving layer stores the model registry name,
// model settings and scaler statistics there so a frozen model can be
// reconstructed from the file alone (see serve/checkpoint.h).

#ifndef STWA_NN_SERIALIZE_H_
#define STWA_NN_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace stwa {
namespace nn {

/// Ordered key/value metadata stored in a checkpoint header.
class CheckpointMeta {
 public:
  /// Sets `key` to `value`, replacing an existing entry.
  void Set(const std::string& key, const std::string& value);

  /// Convenience setters for numeric values. Floats are formatted with
  /// enough digits (%.9g) that a binary32 round-trips exactly.
  void SetInt(const std::string& key, int64_t value);
  void SetFloat(const std::string& key, float value);

  /// True when `key` is present.
  bool Has(const std::string& key) const;

  /// Value of `key`; throws stwa::Error when absent.
  const std::string& Get(const std::string& key) const;

  /// Value of `key`, or `fallback` when absent.
  std::string GetOr(const std::string& key, const std::string& fallback) const;

  /// Parsed numeric accessors; throw on absent or unparsable entries.
  int64_t GetInt(const std::string& key) const;
  float GetFloat(const std::string& key) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Writes every named parameter of `module` (plus `meta`) to `path`.
/// Crash-safe: writes `<path>.tmp` then renames over `path`.
void SaveParameters(const Module& module, const std::string& path,
                    const CheckpointMeta& meta = {});

/// Reads only the metadata blob of a checkpoint. Throws if the file is
/// missing, not an STWA checkpoint, or has an unsupported version.
CheckpointMeta LoadCheckpointMeta(const std::string& path);

/// Reads only the on-disk format version word (after validating the
/// magic). Unlike LoadCheckpointMeta this accepts any version — the fleet
/// reload path and the bench banners report the format generation of a
/// file even when this build cannot load it.
uint32_t PeekCheckpointFormatVersion(const std::string& path);

/// Loads parameters by name into `module`. The whole file is read and the
/// complete parameter table (names and shapes) is validated against the
/// module first; on any architecture mismatch a single stwa::Error is
/// thrown describing every difference and the module is left untouched.
void LoadParameters(Module& module, const std::string& path);

namespace internal {

/// Test-only: caps the checkpoint version this reader accepts, simulating
/// an older binary opening a newer file (the forward-compat error path).
/// 0 restores the build default.
void SetMaxCheckpointReadVersionForTest(uint32_t version);

}  // namespace internal

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_SERIALIZE_H_
