// Parameter checkpointing: save/load a Module's named parameters to a
// simple binary format. Loading matches by hierarchical name and checks
// shapes, so a checkpoint survives construction-order refactors but not
// architecture changes.

#ifndef STWA_NN_SERIALIZE_H_
#define STWA_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"

namespace stwa {
namespace nn {

/// Writes every named parameter of `module` to `path`.
void SaveParameters(const Module& module, const std::string& path);

/// Loads parameters by name into `module`. Throws if the file is missing
/// or malformed, if a stored name is absent from the module, if a module
/// parameter is absent from the file, or if any shape differs.
void LoadParameters(Module& module, const std::string& path);

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_SERIALIZE_H_
