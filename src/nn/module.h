// Module system: parameter registration and recursive collection.
//
// A Module owns its parameters (as ag::Var leaf handles) and registers child
// modules non-owningly (children are members of the derived class).
// Parameters() walks the tree and returns aliasing Var handles, which the
// optimizers mutate through the shared tape nodes.

#ifndef STWA_NN_MODULE_H_
#define STWA_NN_MODULE_H_

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "autograd/var.h"

namespace stwa {
namespace nn {

/// Base class for all neural network building blocks.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  // Modules are identity objects: parameters alias tape nodes, so copying
  // would silently share or duplicate state. Forbid it.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Registers a trainable parameter initialised with `init`; returns a Var
  /// handle aliasing the stored parameter.
  ag::Var RegisterParameter(const std::string& name, Tensor init);

  /// Registers a child module (non-owning; the child must outlive this).
  void RegisterModule(const std::string& name, Module* child);

  /// All parameters of this module and its descendants.
  std::vector<ag::Var> Parameters() const;

  /// All parameters with hierarchical dotted names.
  std::vector<std::pair<std::string, ag::Var>> NamedParameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, ag::Var>>* out) const;

  std::deque<std::pair<std::string, ag::Var>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_MODULE_H_
