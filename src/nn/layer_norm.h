// Layer normalisation over the last axis.

#ifndef STWA_NN_LAYER_NORM_H_
#define STWA_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace stwa {
namespace nn {

/// y = (x - mean) / sqrt(var + eps) * gamma + beta, statistics taken over
/// the last axis.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  ag::Var Forward(const ag::Var& x) const;

  int64_t features() const { return features_; }

 private:
  int64_t features_;
  float eps_;
  ag::Var gamma_;
  ag::Var beta_;
};

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_LAYER_NORM_H_
