// Parameter initialisation schemes.

#ifndef STWA_NN_INIT_H_
#define STWA_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace stwa {
namespace nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

/// Kaiming/He uniform for ReLU layers: U(-a, a), a = sqrt(6 / fan_in).
Tensor HeUniform(Shape shape, int64_t fan_in, Rng& rng);

/// PyTorch-Linear-style default: U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
Tensor LecunUniform(Shape shape, int64_t fan_in, Rng& rng);

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_INIT_H_
