#include "nn/rnn.h"

#include "common/check.h"
#include "nn/init.h"

namespace stwa {
namespace nn {
namespace {

ag::Var Chunk(const ag::Var& gates, int64_t index, int64_t hidden) {
  return ag::Slice(gates, -1, index * hidden, hidden);
}

}  // namespace

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  STWA_CHECK(input_size > 0 && hidden_size > 0, "GruCell sizes must be > 0");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  w_ih_ = RegisterParameter(
      "w_ih", LecunUniform({input_size, 3 * hidden_size}, hidden_size, r));
  w_hh_ = RegisterParameter(
      "w_hh", LecunUniform({hidden_size, 3 * hidden_size}, hidden_size, r));
  b_ih_ = RegisterParameter("b_ih", Tensor(Shape{3 * hidden_size}));
  b_hh_ = RegisterParameter("b_hh", Tensor(Shape{3 * hidden_size}));
}

ag::Var GruCell::Forward(const ag::Var& x, const ag::Var& h) const {
  return Step(x, h, w_ih_, w_hh_, b_ih_, b_hh_, hidden_size_);
}

ag::Var GruCell::Step(const ag::Var& x, const ag::Var& h, const ag::Var& w_ih,
                      const ag::Var& w_hh, const ag::Var& b_ih,
                      const ag::Var& b_hh, int64_t hidden_size) {
  ag::Var gi = ag::Add(ag::MatMul(x, w_ih), b_ih);
  ag::Var gh = ag::Add(ag::MatMul(h, w_hh), b_hh);
  ag::Var r = ag::Sigmoid(ag::Add(Chunk(gi, 0, hidden_size),
                                  Chunk(gh, 0, hidden_size)));
  ag::Var z = ag::Sigmoid(ag::Add(Chunk(gi, 1, hidden_size),
                                  Chunk(gh, 1, hidden_size)));
  ag::Var n = ag::Tanh(ag::Add(Chunk(gi, 2, hidden_size),
                               ag::Mul(r, Chunk(gh, 2, hidden_size))));
  // h' = (1 - z) * n + z * h
  ag::Var one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, n), ag::Mul(z, h));
}

Gru::Gru(int64_t input_size, int64_t hidden_size, Rng* rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterModule("cell", &cell_);
}

ag::Var Gru::Forward(const ag::Var& x, const ag::Var& h0) const {
  return ForwardWithState(x, nullptr, h0);
}

ag::Var Gru::ForwardWithState(const ag::Var& x, ag::Var* final_state,
                              const ag::Var& h0) const {
  STWA_CHECK(x.value().rank() == 3, "Gru input must be [B, T, in], got ",
             ShapeToString(x.value().shape()));
  const int64_t batch = x.value().dim(0);
  const int64_t steps = x.value().dim(1);
  ag::Var h = h0.defined()
                  ? h0
                  : ag::Var(Tensor(Shape{batch, cell_.hidden_size()}));
  std::vector<ag::Var> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    h = cell_.Forward(TimeStep(x, t), h);
    outputs.push_back(h);
  }
  if (final_state != nullptr) *final_state = h;
  // [T, B, H] -> [B, T, H]
  return ag::Permute(ag::Stack(outputs), {1, 0, 2});
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  STWA_CHECK(input_size > 0 && hidden_size > 0, "LstmCell sizes must be > 0");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  w_ih_ = RegisterParameter(
      "w_ih", LecunUniform({input_size, 4 * hidden_size}, hidden_size, r));
  w_hh_ = RegisterParameter(
      "w_hh", LecunUniform({hidden_size, 4 * hidden_size}, hidden_size, r));
  b_ih_ = RegisterParameter("b_ih", Tensor(Shape{4 * hidden_size}));
  b_hh_ = RegisterParameter("b_hh", Tensor(Shape{4 * hidden_size}));
}

void LstmCell::Forward(const ag::Var& x, ag::Var* h, ag::Var* c) const {
  Step(x, h, c, w_ih_, w_hh_, b_ih_, b_hh_, hidden_size_);
}

void LstmCell::Step(const ag::Var& x, ag::Var* h, ag::Var* c,
                    const ag::Var& w_ih, const ag::Var& w_hh,
                    const ag::Var& b_ih, const ag::Var& b_hh,
                    int64_t hidden_size) {
  STWA_CHECK(h != nullptr && c != nullptr, "LstmCell::Step needs h and c");
  ag::Var gates = ag::Add(ag::Add(ag::MatMul(x, w_ih), b_ih),
                          ag::Add(ag::MatMul(*h, w_hh), b_hh));
  ag::Var i = ag::Sigmoid(Chunk(gates, 0, hidden_size));
  ag::Var f = ag::Sigmoid(Chunk(gates, 1, hidden_size));
  ag::Var g = ag::Tanh(Chunk(gates, 2, hidden_size));
  ag::Var o = ag::Sigmoid(Chunk(gates, 3, hidden_size));
  *c = ag::Add(ag::Mul(f, *c), ag::Mul(i, g));
  *h = ag::Mul(o, ag::Tanh(*c));
}

Lstm::Lstm(int64_t input_size, int64_t hidden_size, Rng* rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterModule("cell", &cell_);
}

ag::Var Lstm::Forward(const ag::Var& x) const {
  STWA_CHECK(x.value().rank() == 3, "Lstm input must be [B, T, in]");
  const int64_t batch = x.value().dim(0);
  const int64_t steps = x.value().dim(1);
  ag::Var h{Tensor(Shape{batch, cell_.hidden_size()})};
  ag::Var c{Tensor(Shape{batch, cell_.hidden_size()})};
  std::vector<ag::Var> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    cell_.Forward(TimeStep(x, t), &h, &c);
    outputs.push_back(h);
  }
  return ag::Permute(ag::Stack(outputs), {1, 0, 2});
}

ag::Var TimeStep(const ag::Var& x, int64_t t) {
  STWA_CHECK(x.value().rank() == 3, "TimeStep expects [B, T, F]");
  const int64_t batch = x.value().dim(0);
  const int64_t features = x.value().dim(2);
  return ag::Reshape(ag::Slice(x, 1, t, 1), {batch, features});
}

}  // namespace nn
}  // namespace stwa
