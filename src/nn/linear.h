// Affine layer y = x W + b.

#ifndef STWA_NN_LINEAR_H_
#define STWA_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace stwa {
namespace nn {

/// Dense affine transformation over the last axis: x [..., in] -> [..., out].
class Linear : public Module {
 public:
  /// Builds a layer with Xavier-uniform weights; `rng` defaults to the
  /// global generator.
  Linear(int64_t in_features, int64_t out_features, bool bias = true,
         Rng* rng = nullptr);

  /// Applies the layer. The input rank must be >= 2 (batched rows).
  ag::Var Forward(const ag::Var& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  /// Weight handle [in, out] (exposed for tests and weight tying).
  const ag::Var& weight() const { return weight_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ag::Var weight_;
  ag::Var bias_;
};

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_LINEAR_H_
