// Canonical multi-head self-attention, with optional sliding-window and
// causal masking. This is the spatio-temporal *agnostic* attention of
// Eq. 2–3 in the paper; LongFormer-style masking implements the related-work
// sliding-window baseline. The ST-aware and window attentions live in
// src/core.

#ifndef STWA_NN_ATTENTION_H_
#define STWA_NN_ATTENTION_H_

#include "nn/linear.h"
#include "nn/module.h"

namespace stwa {
namespace nn {

/// Configuration for MultiHeadSelfAttention.
struct AttentionConfig {
  int64_t d_model = 32;
  int64_t num_heads = 4;
  /// Sliding-window radius; timestamp i attends to |i-j| <= radius.
  /// Negative means full (quadratic) attention.
  int64_t window_radius = -1;
  /// Mask out attention to future timestamps.
  bool causal = false;
};

/// Canonical scaled dot-product multi-head self-attention over the time
/// axis: x [B, T, d_model] -> [B, T, d_model].
class MultiHeadSelfAttention : public Module {
 public:
  explicit MultiHeadSelfAttention(AttentionConfig config, Rng* rng = nullptr);

  ag::Var Forward(const ag::Var& x) const;

  const AttentionConfig& config() const { return config_; }

 private:
  /// Builds the additive mask [T, T] (0 allowed / -1e9 blocked) or an empty
  /// tensor when no masking applies.
  Tensor BuildMask(int64_t steps) const;

  AttentionConfig config_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_ATTENTION_H_
