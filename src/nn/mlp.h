// Multi-layer perceptron with a configurable activation.

#ifndef STWA_NN_MLP_H_
#define STWA_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace stwa {
namespace nn {

/// Elementwise activation choices used across the library.
enum class Activation { kNone, kRelu, kTanh, kSigmoid };

/// Applies an Activation to a Var.
ag::Var Activate(const ag::Var& x, Activation act);

/// Fully connected feed-forward stack. `dims` lists layer widths including
/// input and output, e.g. {16, 32, 8} builds 16->32->8. The hidden
/// activation is applied between layers; `output_activation` (default none)
/// after the last.
class Mlp : public Module {
 public:
  Mlp(std::vector<int64_t> dims, Activation hidden = Activation::kRelu,
      Activation output_activation = Activation::kNone, Rng* rng = nullptr);

  /// Applies the stack over the last axis of `x` (rank >= 2).
  ag::Var Forward(const ag::Var& x) const;

  int64_t in_features() const { return dims_.front(); }
  int64_t out_features() const { return dims_.back(); }

 private:
  std::vector<int64_t> dims_;
  Activation hidden_;
  Activation output_activation_;
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace nn
}  // namespace stwa

#endif  // STWA_NN_MLP_H_
