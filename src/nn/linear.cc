#include "nn/linear.h"

#include "common/check.h"
#include "nn/init.h"

namespace stwa {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias,
               Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  STWA_CHECK(in_features > 0 && out_features > 0,
             "Linear features must be positive");
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  weight_ = RegisterParameter(
      "weight",
      XavierUniform({in_features, out_features}, in_features, out_features,
                    r));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor(Shape{out_features}));
  }
}

ag::Var Linear::Forward(const ag::Var& x) const {
  STWA_CHECK(x.value().rank() >= 2, "Linear input must have rank >= 2, got ",
             ShapeToString(x.value().shape()));
  STWA_CHECK(x.value().dim(-1) == in_features_, "Linear expected ",
             in_features_, " input features, got ", x.value().dim(-1));
  ag::Var y = ag::MatMul(x, weight_);
  if (bias_.defined()) y = ag::Add(y, bias_);
  return y;
}

}  // namespace nn
}  // namespace stwa
