#include "nn/attention.h"

#include <cmath>

#include "common/check.h"

namespace stwa {
namespace nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(AttentionConfig config,
                                               Rng* rng)
    : config_(config),
      wq_(config.d_model, config.d_model, /*bias=*/false, rng),
      wk_(config.d_model, config.d_model, /*bias=*/false, rng),
      wv_(config.d_model, config.d_model, /*bias=*/false, rng),
      wo_(config.d_model, config.d_model, /*bias=*/true, rng) {
  STWA_CHECK(config_.num_heads > 0 &&
                 config_.d_model % config_.num_heads == 0,
             "d_model ", config_.d_model, " must be divisible by num_heads ",
             config_.num_heads);
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
}

Tensor MultiHeadSelfAttention::BuildMask(int64_t steps) const {
  const bool windowed = config_.window_radius >= 0;
  if (!windowed && !config_.causal) return Tensor();
  Tensor mask(Shape{steps, steps});
  float* m = mask.data();
  for (int64_t i = 0; i < steps; ++i) {
    for (int64_t j = 0; j < steps; ++j) {
      bool blocked = false;
      if (windowed && std::llabs(i - j) > config_.window_radius) {
        blocked = true;
      }
      if (config_.causal && j > i) blocked = true;
      m[i * steps + j] = blocked ? -1e9f : 0.0f;
    }
  }
  return mask;
}

ag::Var MultiHeadSelfAttention::Forward(const ag::Var& x) const {
  STWA_CHECK(x.value().rank() == 3, "attention input must be [B, T, d], got ",
             ShapeToString(x.value().shape()));
  const int64_t batch = x.value().dim(0);
  const int64_t steps = x.value().dim(1);
  const int64_t d = config_.d_model;
  const int64_t heads = config_.num_heads;
  const int64_t dh = d / heads;

  auto split_heads = [&](const ag::Var& v) {
    // [B, T, d] -> [B, heads, T, dh]
    return ag::Permute(ag::Reshape(v, {batch, steps, heads, dh}),
                       {0, 2, 1, 3});
  };
  ag::Var q = split_heads(wq_.Forward(x));
  ag::Var k = split_heads(wk_.Forward(x));
  ag::Var v = split_heads(wv_.Forward(x));

  ag::Var scores = ag::MulScalar(
      ag::MatMul(q, ag::TransposeLast2(k)),
      1.0f / std::sqrt(static_cast<float>(dh)));  // [B, heads, T, T]
  Tensor mask = BuildMask(steps);
  if (!mask.empty()) {
    scores = ag::Add(scores, ag::Var(mask));  // broadcasts over [B, heads]
  }
  ag::Var attn = ag::SoftmaxLast(scores);
  ag::Var out = ag::MatMul(attn, v);  // [B, heads, T, dh]
  out = ag::Reshape(ag::Permute(out, {0, 2, 1, 3}), {batch, steps, d});
  return wo_.Forward(out);
}

}  // namespace nn
}  // namespace stwa
