#include "nn/layer_norm.h"

#include "common/check.h"

namespace stwa {
namespace nn {

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  STWA_CHECK(features > 0, "LayerNorm features must be > 0");
  gamma_ = RegisterParameter("gamma", Tensor(Shape{features}, 1.0f));
  beta_ = RegisterParameter("beta", Tensor(Shape{features}));
}

ag::Var LayerNorm::Forward(const ag::Var& x) const {
  STWA_CHECK(x.value().dim(-1) == features_, "LayerNorm expected ",
             features_, " features, got ", x.value().dim(-1));
  ag::Var mean = ag::Mean(x, -1, /*keepdims=*/true);
  ag::Var centered = ag::Sub(x, mean);
  ag::Var var = ag::Mean(ag::Square(centered), -1, /*keepdims=*/true);
  ag::Var inv_std = ag::Div(ag::Scalar(1.0f),
                            ag::Sqrt(ag::AddScalar(var, eps_)));
  ag::Var normalised = ag::Mul(centered, inv_std);
  return ag::Add(ag::Mul(normalised, gamma_), beta_);
}

}  // namespace nn
}  // namespace stwa
